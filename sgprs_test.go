package sgprs_test

import (
	"context"
	"reflect"
	"testing"

	"sgprs"
	"sgprs/internal/runner"
	"sgprs/internal/sim"
)

// TestFacadeQuickstart exercises the public API end to end, exactly as the
// package documentation advertises.
func TestFacadeQuickstart(t *testing.T) {
	res, err := sgprs.Run(sgprs.RunConfig{
		Kind:       sgprs.KindSGPRS,
		ContextSMs: []int{34, 34},
		NumTasks:   4,
		HorizonSec: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.TotalFPS < 110 || res.Summary.TotalFPS > 130 {
		t.Errorf("fps = %v, want ~120", res.Summary.TotalFPS)
	}
	if res.Summary.Missed != 0 {
		t.Errorf("missed = %d at light load", res.Summary.Missed)
	}
}

// TestFacadeSession: repeated runs through one Session must match one-shot
// Run calls exactly — the documented reuse contract.
func TestFacadeSession(t *testing.T) {
	cfg := sgprs.RunConfig{
		Kind:       sgprs.KindSGPRS,
		ContextSMs: []int{34, 34},
		NumTasks:   4,
		HorizonSec: 2,
	}
	want, err := sgprs.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := sgprs.NewSession()
	for i := 0; i < 3; i++ {
		got, err := sess.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("session run %d = %+v, want %+v", i, got, want)
		}
	}
}

func TestFacadeSweepAndPivot(t *testing.T) {
	series, err := sgprs.SweepSeries(sgprs.RunConfig{
		Kind:       sgprs.KindSGPRS,
		Name:       "sgprs",
		ContextSMs: sgprs.ContextPool(2, 1.5, 68),
		NumTasks:   1,
		HorizonSec: 2,
	}, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := sgprs.PivotPoint(series); got != 4 {
		t.Errorf("pivot = %d, want 4", got)
	}
	if got := sgprs.SaturationFPS(series); got < 110 {
		t.Errorf("saturation = %v", got)
	}
}

// TestFacadeExperimentRegistry: the registry ships the paper's scenarios
// and the built-in studies, and RunExperiment streams results under a
// context.
func TestFacadeExperimentRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, e := range sgprs.Experiments() {
		names[e.Name] = true
	}
	for _, want := range []string{"scenario1", "scenario2", "ablation-grid", "jitter-ladder", "oversubscription"} {
		if !names[want] {
			t.Errorf("registry is missing built-in %q", want)
		}
	}

	spec, ok := sgprs.LookupExperiment("jitter-ladder")
	if !ok {
		t.Fatal("jitter-ladder not registered")
	}
	// Shrink the clone to smoke scale; the registry master is unaffected.
	spec.Axes = []sgprs.ExperimentAxis{sgprs.JitterAxis(0, 5), sgprs.TasksAxis(2)}
	for i := range spec.Variants {
		spec.Variants[i].HorizonSec = 2
	}
	var streamed int
	rs, err := sgprs.RunExperiment(context.Background(), spec, sgprs.SweepOptions{
		Progress: func(done, total int, r sgprs.SweepJobResult) { streamed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != 2 || len(rs.Results) != 2 {
		t.Errorf("streamed %d / results %d, want 2/2", streamed, len(rs.Results))
	}
	series := rs.Series()
	if len(series["sgprs@jit=0"]) != 1 || len(series["sgprs@jit=5"]) != 1 {
		t.Errorf("series = %v, want one point per jitter level", series)
	}
}

// TestFacadeLegacyWrappersBitIdentical is the pinned acceptance test at the
// facade: the spec-driven RunScenario wrapper regenerates scenarios 1 and 2
// bit-identically to the sequential reference driver at worker counts 1, 2,
// and 4.
func TestFacadeLegacyWrappersBitIdentical(t *testing.T) {
	counts := []int{2, 4}
	const horizon = 2
	for _, scenario := range []int{1, 2} {
		ref, err := sim.RunScenario(scenario, counts, horizon, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4} {
			got, err := sgprs.RunScenarioWith(scenario, counts, horizon, 1, sgprs.SweepOptions{Jobs: workers})
			if err != nil {
				t.Fatalf("scenario %d workers=%d: %v", scenario, workers, err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("scenario %d workers=%d: wrapper output differs from sequential reference", scenario, workers)
			}
		}
	}
}

// TestFacadeSweepGridDuplicates: the spec-backed grid rejects duplicate
// variant names instead of silently merging their series.
func TestFacadeSweepGridDuplicates(t *testing.T) {
	base := sgprs.RunConfig{
		Kind:       sgprs.KindSGPRS,
		Name:       "dup",
		ContextSMs: sgprs.ContextPool(2, 1.5, 68),
		NumTasks:   1,
		HorizonSec: 2,
	}
	if _, _, err := sgprs.SweepGrid([]sgprs.RunConfig{base, base}, []int{2}, sgprs.SweepOptions{}); err == nil {
		t.Fatal("duplicate variant names accepted")
	}
	// The degenerate empty-counts shape is preserved: every variant
	// present with an empty series, no error.
	series, order, err := sgprs.SweepGrid([]sgprs.RunConfig{base}, nil, sgprs.SweepOptions{})
	if err != nil || len(order) != 1 || len(series["dup"]) != 0 {
		t.Errorf("empty-counts grid = %v %v %v", series, order, err)
	}
}

// TestFacadeDecorrelateSeeds: the spec-backed wrappers translate
// DecorrelateSeeds into the spec's SeedDerived policy, stamping exactly the
// per-point seeds the pre-spec expansion did.
func TestFacadeDecorrelateSeeds(t *testing.T) {
	base := sgprs.RunConfig{
		Kind:          sgprs.KindSGPRS,
		Name:          "sgprs",
		ContextSMs:    sgprs.ContextPool(2, 1.5, 68),
		NumTasks:      1,
		HorizonSec:    2,
		Seed:          7,
		WorkVariation: 0.3, // seed-sensitive workload
	}
	counts := []int{2, 4}
	opt := sgprs.SweepOptions{DecorrelateSeeds: true}
	ref, err := runner.SweepSeries(context.Background(), base, counts, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sgprs.SweepSeriesWith(base, counts, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Error("decorrelated wrapper differs from the legacy expansion")
	}
	fixed, err := sgprs.SweepSeriesWith(base, counts, sgprs.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(fixed, got) {
		t.Error("DecorrelateSeeds had no effect on a seed-sensitive workload")
	}
}

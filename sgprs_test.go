package sgprs_test

import (
	"testing"

	"sgprs"
)

// TestFacadeQuickstart exercises the public API end to end, exactly as the
// package documentation advertises.
func TestFacadeQuickstart(t *testing.T) {
	res, err := sgprs.Run(sgprs.RunConfig{
		Kind:       sgprs.KindSGPRS,
		ContextSMs: []int{34, 34},
		NumTasks:   4,
		HorizonSec: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.TotalFPS < 110 || res.Summary.TotalFPS > 130 {
		t.Errorf("fps = %v, want ~120", res.Summary.TotalFPS)
	}
	if res.Summary.Missed != 0 {
		t.Errorf("missed = %d at light load", res.Summary.Missed)
	}
}

// TestFacadeSession: repeated runs through one Session must match one-shot
// Run calls exactly — the documented reuse contract.
func TestFacadeSession(t *testing.T) {
	cfg := sgprs.RunConfig{
		Kind:       sgprs.KindSGPRS,
		ContextSMs: []int{34, 34},
		NumTasks:   4,
		HorizonSec: 2,
	}
	want, err := sgprs.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := sgprs.NewSession()
	for i := 0; i < 3; i++ {
		got, err := sess.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("session run %d = %+v, want %+v", i, got, want)
		}
	}
}

func TestFacadeSweepAndPivot(t *testing.T) {
	series, err := sgprs.SweepSeries(sgprs.RunConfig{
		Kind:       sgprs.KindSGPRS,
		Name:       "sgprs",
		ContextSMs: sgprs.ContextPool(2, 1.5, 68),
		NumTasks:   1,
		HorizonSec: 2,
	}, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := sgprs.PivotPoint(series); got != 4 {
		t.Errorf("pivot = %d, want 4", got)
	}
	if got := sgprs.SaturationFPS(series); got < 110 {
		t.Errorf("saturation = %v", got)
	}
}

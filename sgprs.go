// Package sgprs is a library-scale reproduction of "SGPRS: Seamless GPU
// Partitioning Real-Time Scheduler for Periodic Deep Learning Workloads"
// (Fakhim Babaei and Chantem, DATE 2024).
//
// It provides, on a deterministic discrete-event model of a spatially
// partitioned GPU (an RTX 2080 Ti with CUDA-MPS-style contexts and priority
// streams):
//
//   - the SGPRS real-time scheduler — offline WCET profiling, proportional
//     virtual deadlines, two-level priority assignment with online medium
//     promotion, three-rule context assignment, EDF stage queues, and
//     zero-cost partition switching over a pre-created context pool;
//   - the paper's naive spatial-partitioning baseline;
//   - a ResNet18 operator graph (plus VGG11/TinyCNN/MLP) with a MAC-driven
//     cost model and a WCET-balanced stage partitioner;
//   - workload generation, metrics (total FPS, deadline miss rate, pivot
//     point), execution tracing, and sweep drivers that regenerate every
//     figure of the paper's evaluation.
//
// This package is a facade: it re-exports the pieces a downstream user needs
// to run experiments. The implementation lives under internal/; DESIGN.md
// documents the architecture, the hardware-substitution decisions, and the
// calibration of absolute numbers against the paper.
//
// Experiments are declarative: an Experiment spec names scheduler variants
// and crosses them with typed sweep axes (task count, over-subscription,
// frame rate, release jitter, work variation, horizon), and a process-wide
// registry ships the paper's scenarios plus built-in studies — list them
// with Experiments(), run one with RunExperiment (context cancellation and
// streaming per-job results included). The legacy RunScenario/SweepSeries/
// SweepGrid calls are thin wrappers over specs, bit-identical to their
// original output.
//
// Sweeps and scenario regenerations fan their independent runs out across a
// deterministic worker pool (internal/runner): results are bit-identical to
// a sequential execution for any worker count. See SweepOptions.
//
// Metrics stream as the simulation runs and finished jobs are recycled, so a
// run's live memory is proportional to in-flight work, not horizon length —
// hour-long stability horizons cost the same heap as two-second smokes. Use
// a Session to amortise engine/device/task setup across many runs; every
// sweep worker gets one automatically.
//
// Quick start:
//
//	res, err := sgprs.Run(sgprs.RunConfig{
//	    Kind:       sgprs.KindSGPRS,
//	    ContextSMs: []int{34, 34},
//	    NumTasks:   8,
//	})
//	fmt.Println(res.Summary)
package sgprs

import (
	"context"
	"io"

	"sgprs/internal/cluster"
	"sgprs/internal/exp"
	"sgprs/internal/memo"
	"sgprs/internal/metrics"
	"sgprs/internal/rt"
	"sgprs/internal/runner"
	"sgprs/internal/sim"
	"sgprs/internal/workload"
)

// RunConfig describes one simulation run. See sim.RunConfig for field
// documentation.
type RunConfig = sim.RunConfig

// Result is the outcome of one run.
type Result = sim.Result

// Summary holds the paper's evaluation metrics for one run.
type Summary = metrics.Summary

// Point is one sweep sample (task count plus summary).
type Point = metrics.Point

// Kind selects the scheduler implementation.
type Kind = sim.Kind

// Scheduler kinds.
const (
	KindSGPRS = sim.KindSGPRS
	KindNaive = sim.KindNaive
)

// Placement selects how a fleet run homes its task chains onto devices
// (RunConfig.Placement; meaningful only with Devices > 1). See
// internal/cluster for the policy semantics.
type Placement = cluster.Placement

// Fleet placement policies.
const (
	PlaceBinPack    = cluster.PlaceBinPack
	PlaceContextFit = cluster.PlaceContextFit
	PlaceLoadSteal  = cluster.PlaceLoadSteal
)

// ParsePlacement resolves the config-file spelling of a placement policy
// ("bin-pack", "context-fit", "load-steal"; empty means bin-pack).
func ParsePlacement(s string) (Placement, error) { return cluster.ParsePlacement(s) }

// FailoverPolicy selects what happens to chains homed on a crashed fleet
// device (RunConfig.Failover): migrate with cost, wait for the origin's
// restart, or shed the chain.
type FailoverPolicy = rt.FailoverPolicy

// Fleet failover policies. FailoverDefault means FailoverMigrate.
const (
	FailoverDefault = rt.FailoverDefault
	FailoverMigrate = rt.FailoverMigrate
	FailoverRetry   = rt.FailoverRetry
	FailoverShed    = rt.FailoverShed
)

// ParseFailoverPolicy resolves the config-file spelling of a failover policy
// ("migrate", "retry", "shed"; empty means the default).
func ParseFailoverPolicy(s string) (FailoverPolicy, error) { return rt.ParseFailoverPolicy(s) }

// FleetStats is the fleet section of a run summary (Summary.Fleet):
// per-device utilization, crash/restart/migration/shedding counters, and the
// degraded-fleet deadline accounting. All-zero on single-device runs.
type FleetStats = metrics.FleetStats

// SweepOptions configures the parallel experiment runner: worker count
// (default one per CPU), progress callbacks, and per-job seed decorrelation.
// The zero value is ready to use. Worker count never affects results.
type SweepOptions = runner.Options

// SweepJob is one unit of runner work: a run plus its sweep coordinates.
type SweepJob = runner.Job

// SweepJobResult pairs a job with its outcome (result or attributed error).
type SweepJobResult = runner.JobResult

// JobError attributes one failed run to its (variant, task count).
type JobError = runner.JobError

// JobErrors aggregates every failed job of a sweep. Sweeps return it
// alongside the completed points, never instead of them.
type JobErrors = runner.Errors

// SweepProgress observes job completions during a sweep.
type SweepProgress = runner.Progress

// OfflineCache memoizes the simulation's offline phase — the calibrated
// reference graph and the per-shape WCET profile tables — across runs and
// across the runner's workers. Cache hits are bit-identical to recomputing
// (the memo package documents the argument; tests pin it). Run and the sweep
// drivers use the process-wide default cache; pass an explicit cache through
// SweepOptions.Cache to scope reuse, or set SweepOptions.NoOfflineCache to
// measure the uncached path.
type OfflineCache = memo.Cache

// OfflineStats counts offline-cache traffic (hits and misses per table).
type OfflineStats = memo.Stats

// NewOfflineCache returns an empty offline-phase cache.
func NewOfflineCache() *OfflineCache { return memo.New() }

// DefaultOfflineCache returns the process-wide cache used by Run and the
// sweep drivers; DefaultOfflineCache().Stats() reports its traffic.
func DefaultOfflineCache() *OfflineCache { return memo.Default() }

// Session executes simulation runs over reused infrastructure — engine,
// device, job pool, task structures — so a sequence of runs (a sweep, a
// parameter search, a long measurement campaign) pays setup once instead of
// per run, and live memory stays O(in-flight jobs) whatever the horizon.
// Results are bit-identical to fresh Run calls. A Session is
// single-threaded; the sweep drivers give each pool worker its own.
type Session = sim.Session

// NewSession returns a run session backed by the process-wide offline cache.
func NewSession() *Session { return sim.NewSession(memo.Default()) }

// NewSessionWith is NewSession with an explicit offline cache (nil disables
// offline-phase memoization).
func NewSessionWith(cache *OfflineCache) *Session { return sim.NewSession(cache) }

// Run executes one simulation and returns its metrics. The offline phase is
// served from the default cache; results are bit-identical to an uncached
// run.
func Run(cfg RunConfig) (Result, error) { return sim.Run(cfg) }

// RunUncached is Run without offline-phase memoization (the reference code
// path the cached one is tested against).
func RunUncached(cfg RunConfig) (Result, error) { return sim.RunWith(cfg, nil) }

// RunJobs executes an explicit job list on the worker pool, returning
// ordered results with per-job error attribution.
func RunJobs(jobs []SweepJob, opt SweepOptions) []SweepJobResult {
	return runner.Run(context.Background(), jobs, opt)
}

// RunJobsContext is RunJobs under a context: cancellation stops dispatching
// new jobs, drains the in-flight ones, and attributes every undispatched
// job's error to the context. Completed results are always returned.
func RunJobsContext(ctx context.Context, jobs []SweepJob, opt SweepOptions) []SweepJobResult {
	return runner.Run(ctx, jobs, opt)
}

// JobsErr collects the failures of a RunJobs result set, or nil.
func JobsErr(results []SweepJobResult) error { return runner.Err(results) }

// DeriveSeed deterministically mixes a per-job seed from the base seed and
// a job's sweep coordinates.
func DeriveSeed(base uint64, variant string, tasks int) uint64 {
	return runner.DeriveSeed(base, variant, tasks)
}

// Experiment is a declarative experiment specification: named scheduler
// variants (RunConfig templates) crossed with typed sweep axes, compiled
// into the runner's job list at execution time. Specs are plain data —
// clone one from the registry, tweak an axis, register the result. See
// internal/exp for the compilation contract.
type Experiment = exp.Spec

// ExperimentAxis is one typed sweep dimension of an Experiment. Build axes
// with TasksAxis, OverSubAxis, FPSAxis, JitterAxis, WorkVarAxis, and
// HorizonAxis.
type ExperimentAxis = exp.Axis

// AxisKind identifies an axis's sweep dimension.
type AxisKind = exp.AxisKind

// Axis kinds, for inspecting or replacing a spec's axes.
const (
	AxisTasks     = exp.AxisTasks
	AxisOverSub   = exp.AxisOverSub
	AxisFPS       = exp.AxisFPS
	AxisJitter    = exp.AxisJitterMS
	AxisWorkVar   = exp.AxisWorkVar
	AxisHorizon   = exp.AxisHorizonSec
	AxisRate      = exp.AxisRate
	AxisArrival   = exp.AxisArrival
	AxisDevices   = exp.AxisDevices
	AxisPlacement = exp.AxisPlacement
)

// AxisKinds returns every axis kind in declaration order; each stringifies
// to the name validation errors use ("task-count", "arrival-rate", ...).
func AxisKinds() []AxisKind { return exp.Kinds() }

// ExperimentResults is an executed experiment: per-job outcomes in
// submission order plus the folding metadata (expanded variant labels,
// task axis) to read them back as figure series.
type ExperimentResults = exp.ResultSet

// ExperimentSeedPolicy selects how compiled jobs get their seeds:
// SeedFixed (the default, matching the sequential drivers) or SeedDerived
// (per-cell decorrelation via DeriveSeed).
type ExperimentSeedPolicy = exp.SeedPolicy

// Experiment seed policies.
const (
	SeedFixed   = exp.SeedFixed
	SeedDerived = exp.SeedDerived
)

// Experiment axis constructors. Each axis overwrites the corresponding
// RunConfig field per grid cell; the task axis is always the innermost
// expansion, giving one result series per variant × other-axis combination.
func TasksAxis(counts ...int) ExperimentAxis       { return exp.Tasks(counts...) }
func TaskRangeAxis(lo, hi int) ExperimentAxis      { return exp.TaskRange(lo, hi) }
func OverSubAxis(levels ...float64) ExperimentAxis { return exp.OverSub(levels...) }
func FPSAxis(rates ...float64) ExperimentAxis      { return exp.FPS(rates...) }
func JitterAxis(ms ...float64) ExperimentAxis      { return exp.JitterMS(ms...) }
func WorkVarAxis(fracs ...float64) ExperimentAxis  { return exp.WorkVar(fracs...) }
func HorizonAxis(secs ...float64) ExperimentAxis   { return exp.HorizonSec(secs...) }
func RateAxis(factors ...float64) ExperimentAxis   { return exp.Rate(factors...) }
func ArrivalAxis(procs ...Arrival) ExperimentAxis  { return exp.Arrivals(procs...) }

// DevicesAxis sweeps the fleet size (RunConfig.Devices); PlacementAxis
// sweeps the fleet's chain-homing policy. Both apply to fleet runs
// (Devices > 1) — a placement axis must not be crossed with device count 1.
func DevicesAxis(counts ...int) ExperimentAxis           { return exp.Devices(counts...) }
func PlacementAxis(policies ...Placement) ExperimentAxis { return exp.Placements(policies...) }

// Arrival is a pluggable release-time model: set RunConfig.Arrival to drive
// a run open-loop (nil keeps the classic closed-loop periodic releases,
// bit-identical to earlier versions), or sweep processes with ArrivalAxis
// and intensities with RateAxis. See internal/workload for the contract.
type Arrival = workload.Arrival

// TraceData is a parsed arrival trace: sorted release timestamps plus an
// optional per-row task assignment, replayed by TraceArrival.
type TraceData = workload.TraceData

// PeriodicArrival releases jobs every task period divided by rate (0 and 1
// both mean the task's own period, matching Arrival == nil bit for bit);
// deadlines stay derived from the period, so rate > 1 is open-loop overload.
func PeriodicArrival(rate float64) Arrival { return workload.Periodic{Rate: rate} }

// PoissonArrival is a memoryless open-loop stream at ratePerSec arrivals per
// second per task (0 = each task's natural closed-loop rate).
func PoissonArrival(ratePerSec float64) Arrival { return workload.Poisson{Rate: ratePerSec} }

// BurstyArrival alternates Poisson ON windows (ratePerSec, 0 = natural rate)
// with silent OFF windows — synchronized burst load.
func BurstyArrival(onSec, offSec, ratePerSec float64) Arrival {
	return workload.Bursty{OnSec: onSec, OffSec: offSec, Rate: ratePerSec}
}

// MMPPArrival is a Markov-modulated Poisson process cycling through states
// with the given per-state rates and mean exponential sojourns.
func MMPPArrival(ratesPerSec, meanSojournSec []float64) Arrival {
	return workload.MMPP{RatesPerSec: ratesPerSec, MeanSojournSec: meanSojournSec}
}

// DiurnalArrival follows a sinusoidal rate curve between minRate and maxRate
// (0 = twice the natural rate) with one cycle per periodSec.
func DiurnalArrival(periodSec, minRate, maxRate float64) Arrival {
	return workload.Diurnal{PeriodSec: periodSec, MinRate: minRate, MaxRate: maxRate}
}

// TraceArrival replays a recorded trace at the given speed (0 or 1 = as
// recorded; >1 compresses time).
func TraceArrival(data *TraceData, speed float64) Arrival {
	return workload.Trace{Data: data, Speed: speed}
}

// LoadTrace parses an arrival trace file — CSV (time_s[,task] columns) or
// JSON ({"times_s": [...], "tasks": [...]}) by extension. See README for the
// formats.
func LoadTrace(path string) (*TraceData, error) { return workload.LoadTrace(path) }

// ParseTraceCSV and ParseTraceJSON parse trace bytes from a reader, for
// traces that do not live in files.
func ParseTraceCSV(name string, r io.Reader) (*TraceData, error) {
	return workload.ParseTraceCSV(name, r)
}
func ParseTraceJSON(name string, r io.Reader) (*TraceData, error) {
	return workload.ParseTraceJSON(name, r)
}

// SyntheticTrace generates a reproducible Poisson trace (ratePerSec rows per
// second over durationSec, demultiplexed round-robin onto tasks) — handy for
// trace-replay tests and demos without shipping recorded data.
func SyntheticTrace(name string, seed uint64, ratePerSec, durationSec float64, tasks int) *TraceData {
	return workload.SyntheticTrace(name, seed, ratePerSec, durationSec, tasks)
}

// Experiments returns every registered experiment (the paper's scenario 1
// and 2 plus the built-in ablation grid, jitter ladder, and
// over-subscription sweep, and anything added via RegisterExperiment) as
// independent clones, in registration order.
func Experiments() []*Experiment { return exp.List() }

// LookupExperiment returns a clone of the named registered experiment.
// Mutating the clone (e.g. shrinking an axis for a smoke run) never
// affects the registry.
func LookupExperiment(name string) (*Experiment, bool) { return exp.Lookup(name) }

// RegisterExperiment adds a spec to the process-wide registry. The spec
// must be named, must compile, and must not collide with a registered name.
func RegisterExperiment(s *Experiment) error { return exp.Register(s) }

// ScenarioExperiment builds the spec describing one paper scenario — the
// same spec RunScenario wraps.
func ScenarioExperiment(scenario int, taskCounts []int, horizonSec float64, seed uint64) (*Experiment, error) {
	return exp.Scenario(scenario, taskCounts, horizonSec, seed)
}

// RunExperiment compiles and executes an experiment spec on the worker
// pool. Per-job results stream through opt.Progress as they finish; a
// cancelled ctx stops dispatching new jobs, drains in-flight ones, and
// attributes the skipped jobs' errors to the context
// (errors.Is(err, context.Canceled)). Completed results are returned
// alongside any aggregate error, never instead of it; only a compile
// error yields a nil result set.
func RunExperiment(ctx context.Context, spec *Experiment, opt SweepOptions) (*ExperimentResults, error) {
	return exp.Run(ctx, spec, opt)
}

// seedPolicy translates the legacy DecorrelateSeeds option into the spec's
// seed policy. The wrappers' expanded labels equal the bare variant names,
// so SeedDerived stamps exactly the DeriveSeed(base, name, n) seeds the
// pre-spec expansion did.
func seedPolicy(opt SweepOptions) ExperimentSeedPolicy {
	if opt.DecorrelateSeeds {
		return SeedDerived
	}
	return SeedFixed
}

// SweepSeries sweeps one configuration across task counts — one figure
// series — fanning the runs out across all CPUs. When individual runs fail,
// the completed points are returned alongside a JobErrors value; an invalid
// configuration fails the whole sweep up front (spec compilation validates
// every point before dispatch). It is a thin wrapper over a one-variant
// Experiment spec; output is bit-identical to the pre-spec implementation
// (equivalence tests pin it).
func SweepSeries(base RunConfig, taskCounts []int) ([]Point, error) {
	return SweepSeriesWith(base, taskCounts, SweepOptions{})
}

// SweepSeriesWith is SweepSeries with explicit runner options.
func SweepSeriesWith(base RunConfig, taskCounts []int, opt SweepOptions) ([]Point, error) {
	if len(taskCounts) == 0 {
		return []Point{}, nil
	}
	spec := exp.Series(base, taskCounts)
	spec.SeedPolicy = seedPolicy(opt)
	rs, err := exp.Run(context.Background(), spec, opt)
	if rs == nil {
		return nil, err
	}
	// One variant: every completed result is one point, already in job
	// (= task-count) order.
	series := make([]Point, 0, len(rs.Results))
	for _, r := range rs.Results {
		if r.Err == nil {
			series = append(series, Point{Tasks: r.Job.Tasks, Summary: r.Result.Summary})
		}
	}
	return series, err
}

// SweepGrid sweeps several configurations over the same task counts as one
// flat fan-out, returning per-variant series keyed by name plus the
// submission order. Configurations resolving to duplicate variant names
// are rejected (they would merge into one map key), as is any invalid
// sweep point (spec compilation validates the grid before dispatch); runs
// failing at execution time keep their finished siblings. Like the other
// legacy drivers it wraps an Experiment spec.
func SweepGrid(bases []RunConfig, taskCounts []int, opt SweepOptions) (map[string][]Point, []string, error) {
	if len(bases) == 0 {
		return map[string][]Point{}, nil, nil
	}
	if len(taskCounts) == 0 {
		// Degenerate sweep: preserve the legacy shape (every variant
		// present with an empty series) without compiling an empty
		// task axis.
		return runner.SweepGrid(context.Background(), bases, nil, opt)
	}
	spec := exp.Grid(bases, taskCounts)
	spec.SeedPolicy = seedPolicy(opt)
	rs, err := exp.Run(context.Background(), spec, opt)
	if rs == nil {
		return nil, nil, err
	}
	return rs.Series(), rs.Order, err
}

// RunScenario regenerates a full paper scenario (1 or 2): the naive baseline
// plus SGPRS at over-subscription 1.0/1.5/2.0 over the task counts, in
// parallel across all CPUs. It wraps the registry's scenario spec; output
// is bit-identical to the sequential reference driver (sim.RunScenario)
// for any worker count (equivalence tests pin it at 1, 2, and 4 workers).
func RunScenario(scenario int, taskCounts []int, horizonSec float64, seed uint64) (*sim.ScenarioRun, error) {
	return RunScenarioWith(scenario, taskCounts, horizonSec, seed, SweepOptions{})
}

// RunScenarioWith is RunScenario with explicit runner options.
func RunScenarioWith(scenario int, taskCounts []int, horizonSec float64, seed uint64, opt SweepOptions) (*sim.ScenarioRun, error) {
	spec, err := exp.Scenario(scenario, taskCounts, horizonSec, seed)
	if err != nil {
		return nil, err
	}
	spec.SeedPolicy = seedPolicy(opt)
	rs, runErr := exp.Run(context.Background(), spec, opt)
	if rs == nil {
		return nil, runErr
	}
	return &sim.ScenarioRun{
		Scenario:   scenario,
		TaskCounts: taskCounts,
		Series:     rs.Series(),
		Order:      rs.Order,
	}, runErr
}

// ContextPool computes the per-context SM allocation for np contexts at
// over-subscription level os on a device with totalSMs SMs.
func ContextPool(np int, os float64, totalSMs int) []int {
	return sim.ContextPool(np, os, totalSMs)
}

// PivotPoint reports the largest task count with zero deadline misses in a
// sweep series.
func PivotPoint(series []Point) int { return metrics.PivotPoint(series) }

// SaturationFPS reports the maximum total FPS reached in a sweep series.
func SaturationFPS(series []Point) float64 { return metrics.SaturationFPS(series) }

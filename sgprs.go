// Package sgprs is a library-scale reproduction of "SGPRS: Seamless GPU
// Partitioning Real-Time Scheduler for Periodic Deep Learning Workloads"
// (Fakhim Babaei and Chantem, DATE 2024).
//
// It provides, on a deterministic discrete-event model of a spatially
// partitioned GPU (an RTX 2080 Ti with CUDA-MPS-style contexts and priority
// streams):
//
//   - the SGPRS real-time scheduler — offline WCET profiling, proportional
//     virtual deadlines, two-level priority assignment with online medium
//     promotion, three-rule context assignment, EDF stage queues, and
//     zero-cost partition switching over a pre-created context pool;
//   - the paper's naive spatial-partitioning baseline;
//   - a ResNet18 operator graph (plus VGG11/TinyCNN/MLP) with a MAC-driven
//     cost model and a WCET-balanced stage partitioner;
//   - workload generation, metrics (total FPS, deadline miss rate, pivot
//     point), execution tracing, and sweep drivers that regenerate every
//     figure of the paper's evaluation.
//
// This package is a facade: it re-exports the pieces a downstream user needs
// to run experiments. The implementation lives under internal/; DESIGN.md
// documents the architecture, the hardware-substitution decisions, and the
// calibration of absolute numbers against the paper.
//
// Sweeps and scenario regenerations fan their independent runs out across a
// deterministic worker pool (internal/runner): results are bit-identical to
// a sequential execution for any worker count. See SweepOptions.
//
// Metrics stream as the simulation runs and finished jobs are recycled, so a
// run's live memory is proportional to in-flight work, not horizon length —
// hour-long stability horizons cost the same heap as two-second smokes. Use
// a Session to amortise engine/device/task setup across many runs; every
// sweep worker gets one automatically.
//
// Quick start:
//
//	res, err := sgprs.Run(sgprs.RunConfig{
//	    Kind:       sgprs.KindSGPRS,
//	    ContextSMs: []int{34, 34},
//	    NumTasks:   8,
//	})
//	fmt.Println(res.Summary)
package sgprs

import (
	"sgprs/internal/memo"
	"sgprs/internal/metrics"
	"sgprs/internal/runner"
	"sgprs/internal/sim"
)

// RunConfig describes one simulation run. See sim.RunConfig for field
// documentation.
type RunConfig = sim.RunConfig

// Result is the outcome of one run.
type Result = sim.Result

// Summary holds the paper's evaluation metrics for one run.
type Summary = metrics.Summary

// Point is one sweep sample (task count plus summary).
type Point = metrics.Point

// Kind selects the scheduler implementation.
type Kind = sim.Kind

// Scheduler kinds.
const (
	KindSGPRS = sim.KindSGPRS
	KindNaive = sim.KindNaive
)

// SweepOptions configures the parallel experiment runner: worker count
// (default one per CPU), progress callbacks, and per-job seed decorrelation.
// The zero value is ready to use. Worker count never affects results.
type SweepOptions = runner.Options

// SweepJob is one unit of runner work: a run plus its sweep coordinates.
type SweepJob = runner.Job

// SweepJobResult pairs a job with its outcome (result or attributed error).
type SweepJobResult = runner.JobResult

// JobError attributes one failed run to its (variant, task count).
type JobError = runner.JobError

// JobErrors aggregates every failed job of a sweep. Sweeps return it
// alongside the completed points, never instead of them.
type JobErrors = runner.Errors

// SweepProgress observes job completions during a sweep.
type SweepProgress = runner.Progress

// OfflineCache memoizes the simulation's offline phase — the calibrated
// reference graph and the per-shape WCET profile tables — across runs and
// across the runner's workers. Cache hits are bit-identical to recomputing
// (the memo package documents the argument; tests pin it). Run and the sweep
// drivers use the process-wide default cache; pass an explicit cache through
// SweepOptions.Cache to scope reuse, or set SweepOptions.NoOfflineCache to
// measure the uncached path.
type OfflineCache = memo.Cache

// OfflineStats counts offline-cache traffic (hits and misses per table).
type OfflineStats = memo.Stats

// NewOfflineCache returns an empty offline-phase cache.
func NewOfflineCache() *OfflineCache { return memo.New() }

// DefaultOfflineCache returns the process-wide cache used by Run and the
// sweep drivers; DefaultOfflineCache().Stats() reports its traffic.
func DefaultOfflineCache() *OfflineCache { return memo.Default() }

// Session executes simulation runs over reused infrastructure — engine,
// device, job pool, task structures — so a sequence of runs (a sweep, a
// parameter search, a long measurement campaign) pays setup once instead of
// per run, and live memory stays O(in-flight jobs) whatever the horizon.
// Results are bit-identical to fresh Run calls. A Session is
// single-threaded; the sweep drivers give each pool worker its own.
type Session = sim.Session

// NewSession returns a run session backed by the process-wide offline cache.
func NewSession() *Session { return sim.NewSession(memo.Default()) }

// NewSessionWith is NewSession with an explicit offline cache (nil disables
// offline-phase memoization).
func NewSessionWith(cache *OfflineCache) *Session { return sim.NewSession(cache) }

// Run executes one simulation and returns its metrics. The offline phase is
// served from the default cache; results are bit-identical to an uncached
// run.
func Run(cfg RunConfig) (Result, error) { return sim.Run(cfg) }

// RunUncached is Run without offline-phase memoization (the reference code
// path the cached one is tested against).
func RunUncached(cfg RunConfig) (Result, error) { return sim.RunWith(cfg, nil) }

// RunJobs executes an explicit job list on the worker pool, returning
// ordered results with per-job error attribution.
func RunJobs(jobs []SweepJob, opt SweepOptions) []SweepJobResult {
	return runner.Run(jobs, opt)
}

// JobsErr collects the failures of a RunJobs result set, or nil.
func JobsErr(results []SweepJobResult) error { return runner.Err(results) }

// DeriveSeed deterministically mixes a per-job seed from the base seed and
// a job's sweep coordinates.
func DeriveSeed(base uint64, variant string, tasks int) uint64 {
	return runner.DeriveSeed(base, variant, tasks)
}

// SweepSeries sweeps one configuration across task counts — one figure
// series — fanning the runs out across all CPUs. On failure the completed
// points are returned alongside a JobErrors value.
func SweepSeries(base RunConfig, taskCounts []int) ([]Point, error) {
	return runner.SweepSeries(base, taskCounts, SweepOptions{})
}

// SweepSeriesWith is SweepSeries with explicit runner options.
func SweepSeriesWith(base RunConfig, taskCounts []int, opt SweepOptions) ([]Point, error) {
	return runner.SweepSeries(base, taskCounts, opt)
}

// SweepGrid sweeps several configurations over the same task counts as one
// flat fan-out, returning per-variant series keyed by name plus the
// submission order.
func SweepGrid(bases []RunConfig, taskCounts []int, opt SweepOptions) (map[string][]Point, []string, error) {
	return runner.SweepGrid(bases, taskCounts, opt)
}

// RunScenario regenerates a full paper scenario (1 or 2): the naive baseline
// plus SGPRS at over-subscription 1.0/1.5/2.0 over the task counts, in
// parallel across all CPUs. Output is bit-identical to the sequential
// reference driver (sim.RunScenario) for any worker count.
func RunScenario(scenario int, taskCounts []int, horizonSec float64, seed uint64) (*sim.ScenarioRun, error) {
	return runner.RunScenario(scenario, taskCounts, horizonSec, seed, SweepOptions{})
}

// RunScenarioWith is RunScenario with explicit runner options.
func RunScenarioWith(scenario int, taskCounts []int, horizonSec float64, seed uint64, opt SweepOptions) (*sim.ScenarioRun, error) {
	return runner.RunScenario(scenario, taskCounts, horizonSec, seed, opt)
}

// ContextPool computes the per-context SM allocation for np contexts at
// over-subscription level os on a device with totalSMs SMs.
func ContextPool(np int, os float64, totalSMs int) []int {
	return sim.ContextPool(np, os, totalSMs)
}

// PivotPoint reports the largest task count with zero deadline misses in a
// sweep series.
func PivotPoint(series []Point) int { return metrics.PivotPoint(series) }

// SaturationFPS reports the maximum total FPS reached in a sweep series.
func SaturationFPS(series []Point) float64 { return metrics.SaturationFPS(series) }

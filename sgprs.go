// Package sgprs is a library-scale reproduction of "SGPRS: Seamless GPU
// Partitioning Real-Time Scheduler for Periodic Deep Learning Workloads"
// (Fakhim Babaei and Chantem, DATE 2024).
//
// It provides, on a deterministic discrete-event model of a spatially
// partitioned GPU (an RTX 2080 Ti with CUDA-MPS-style contexts and priority
// streams):
//
//   - the SGPRS real-time scheduler — offline WCET profiling, proportional
//     virtual deadlines, two-level priority assignment with online medium
//     promotion, three-rule context assignment, EDF stage queues, and
//     zero-cost partition switching over a pre-created context pool;
//   - the paper's naive spatial-partitioning baseline;
//   - a ResNet18 operator graph (plus VGG11/TinyCNN/MLP) with a MAC-driven
//     cost model and a WCET-balanced stage partitioner;
//   - workload generation, metrics (total FPS, deadline miss rate, pivot
//     point), execution tracing, and sweep drivers that regenerate every
//     figure of the paper's evaluation.
//
// This package is a facade: it re-exports the pieces a downstream user needs
// to run experiments. The implementation lives under internal/; DESIGN.md
// documents the architecture and the hardware-substitution decisions, and
// EXPERIMENTS.md records reproduced-versus-paper numbers.
//
// Quick start:
//
//	res, err := sgprs.Run(sgprs.RunConfig{
//	    Kind:       sgprs.KindSGPRS,
//	    ContextSMs: []int{34, 34},
//	    NumTasks:   8,
//	})
//	fmt.Println(res.Summary)
package sgprs

import (
	"sgprs/internal/metrics"
	"sgprs/internal/sim"
)

// RunConfig describes one simulation run. See sim.RunConfig for field
// documentation.
type RunConfig = sim.RunConfig

// Result is the outcome of one run.
type Result = sim.Result

// Summary holds the paper's evaluation metrics for one run.
type Summary = metrics.Summary

// Point is one sweep sample (task count plus summary).
type Point = metrics.Point

// Kind selects the scheduler implementation.
type Kind = sim.Kind

// Scheduler kinds.
const (
	KindSGPRS = sim.KindSGPRS
	KindNaive = sim.KindNaive
)

// Run executes one simulation and returns its metrics.
func Run(cfg RunConfig) (Result, error) { return sim.Run(cfg) }

// SweepSeries sweeps one configuration across task counts — one figure
// series.
func SweepSeries(base RunConfig, taskCounts []int) ([]Point, error) {
	return sim.SweepSeries(base, taskCounts)
}

// RunScenario regenerates a full paper scenario (1 or 2): the naive baseline
// plus SGPRS at over-subscription 1.0/1.5/2.0 over the task counts.
func RunScenario(scenario int, taskCounts []int, horizonSec float64, seed uint64) (*sim.ScenarioRun, error) {
	return sim.RunScenario(scenario, taskCounts, horizonSec, seed)
}

// ContextPool computes the per-context SM allocation for np contexts at
// over-subscription level os on a device with totalSMs SMs.
func ContextPool(np int, os float64, totalSMs int) []int {
	return sim.ContextPool(np, os, totalSMs)
}

// PivotPoint reports the largest task count with zero deadline misses in a
// sweep series.
func PivotPoint(series []Point) int { return metrics.PivotPoint(series) }

// SaturationFPS reports the maximum total FPS reached in a sweep series.
func SaturationFPS(series []Point) float64 { return metrics.SaturationFPS(series) }

// Package stats provides the small statistical kit the metrics and report
// layers need: online mean/variance, order statistics, and histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Online accumulates count, mean, and variance in one pass (Welford).
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds a value into the accumulator.
func (o *Online) Add(x float64) {
	if o.n == 0 {
		o.min, o.max = x, x
	} else {
		o.min = math.Min(o.min, x)
		o.max = math.Max(o.max, x)
	}
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N reports the number of samples.
func (o *Online) N() int { return o.n }

// Mean reports the sample mean (0 with no samples).
func (o *Online) Mean() float64 { return o.mean }

// Var reports the unbiased sample variance (0 with fewer than two samples).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std reports the sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min reports the smallest sample (0 with no samples).
func (o *Online) Min() float64 { return o.min }

// Max reports the largest sample (0 with no samples).
func (o *Online) Max() float64 { return o.max }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear interpolation
// between order statistics. It panics on an empty slice or out-of-range q —
// both are caller bugs, not data conditions.
func Quantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return QuantileSorted(s, q)
}

// QuantileSorted is Quantile for input already in ascending order: callers
// that need several quantiles of one sample sort once and read many, instead
// of paying Quantile's copy-and-sort per call. Same interpolation, same
// panics — Quantile delegates here, so the two cannot drift.
func QuantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		panic("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean reports the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Histogram counts values into uniform-width bins over [lo, hi]. Values
// outside the range clamp into the edge bins.
type Histogram struct {
	Lo, Hi float64
	Bins   []int
	count  int
}

// NewHistogram builds a histogram with n bins over [lo, hi].
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v)x%d", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n)}
}

// Add counts one value.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Bins) {
		i = len(h.Bins) - 1
	}
	h.Bins[i]++
	h.count++
}

// Count reports the total number of values added.
func (h *Histogram) Count() int { return h.count }

// BinCenter reports the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + w*(float64(i)+0.5)
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOnlineMoments(t *testing.T) {
	var o Online
	if o.N() != 0 || o.Mean() != 0 || o.Var() != 0 {
		t.Error("zero value should be empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Errorf("n = %d", o.N())
	}
	if math.Abs(o.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", o.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(o.Var()-32.0/7) > 1e-12 {
		t.Errorf("var = %v, want %v", o.Var(), 32.0/7)
	}
	if math.Abs(o.Std()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("std = %v", o.Std())
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Errorf("min/max = %v/%v", o.Min(), o.Max())
	}
}

func TestOnlineSingleSample(t *testing.T) {
	var o Online
	o.Add(3)
	if o.Mean() != 3 || o.Var() != 0 || o.Min() != 3 || o.Max() != 3 {
		t.Errorf("single sample stats wrong: %+v", o)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("q%.2f = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{10, 20}, 0.5); got != 15 {
		t.Errorf("median of {10,20} = %v, want 15", got)
	}
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("single-element quantile = %v", got)
	}
	// Input must not be mutated (sorted copy).
	in := []float64{3, 1, 2}
	Quantile(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 1, 3, 5, 7, 9, 9.99} {
		h.Add(x)
	}
	if h.Count() != 7 {
		t.Errorf("count = %d", h.Count())
	}
	want := []int{2, 1, 1, 1, 2}
	for i, w := range want {
		if h.Bins[i] != w {
			t.Errorf("bin %d = %d, want %d (bins %v)", i, h.Bins[i], w, h.Bins)
		}
	}
	// Out-of-range values clamp to edge bins.
	h.Add(-5)
	h.Add(50)
	if h.Bins[0] != 3 || h.Bins[4] != 3 {
		t.Errorf("clamping failed: %v", h.Bins)
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("bin 0 center = %v, want 1", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Errorf("bin 4 center = %v, want 9", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(10, 0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: Online mean/min/max agree with direct computation.
func TestOnlineAgreesWithDirect(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var o Online
		var xs []float64
		for _, r := range raw {
			x := float64(r)
			xs = append(xs, x)
			o.Add(x)
		}
		mn, mx := xs[0], xs[0]
		for _, x := range xs {
			mn = math.Min(mn, x)
			mx = math.Max(mx, x)
		}
		return math.Abs(o.Mean()-Mean(xs)) < 1e-6 && o.Min() == mn && o.Max() == mx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []int16, q1, q2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		a := float64(q1%101) / 100
		b := float64(q2%101) / 100
		if a > b {
			a, b = b, a
		}
		qa, qb := Quantile(xs, a), Quantile(xs, b)
		return qa <= qb+1e-9 &&
			qa >= Quantile(xs, 0)-1e-9 &&
			qb <= Quantile(xs, 1)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sgprs/internal/des"
	"sgprs/internal/gpu"
	"sgprs/internal/speedup"
)

func runTraced(t *testing.T) *Recorder {
	t.Helper()
	eng := des.NewEngine()
	cfg := gpu.DefaultConfig()
	dev, err := gpu.NewDevice(eng, speedup.DefaultModel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	dev.SetObserver(rec)
	ctx, _ := dev.CreateContext("cp0", 34)
	s1 := ctx.AddStream("hi0", gpu.HighPriority)
	s2 := ctx.AddStream("lo0", gpu.LowPriority)
	for i := 0; i < 3; i++ {
		s1.Submit(&gpu.Kernel{
			Label:  "k-hi",
			Shares: []speedup.WorkShare{{Class: speedup.Conv, Work: 2}},
		})
		s2.Submit(&gpu.Kernel{
			Label:  "k-lo",
			Shares: []speedup.WorkShare{{Class: speedup.ReLU, Work: 1}},
		})
	}
	eng.Run()
	return rec
}

func TestRecorderCollectsSpans(t *testing.T) {
	rec := runTraced(t)
	if got := len(rec.Spans()); got != 6 {
		t.Fatalf("spans = %d, want 6", got)
	}
	for _, s := range rec.Spans() {
		if s.End <= s.Start {
			t.Errorf("span %q has non-positive duration", s.Label)
		}
		if s.Context != "cp0" {
			t.Errorf("span context = %q", s.Context)
		}
		if !strings.Contains(s.Stream, "cp0/") {
			t.Errorf("span stream = %q", s.Stream)
		}
		if s.Duration() != s.End-s.Start {
			t.Error("Duration inconsistent")
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	rec := runTraced(t)
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) != 6 {
		t.Fatalf("events = %d", len(events))
	}
	for _, e := range events {
		if e["ph"] != "X" {
			t.Errorf("phase = %v", e["ph"])
		}
		if e["dur"].(float64) <= 0 {
			t.Errorf("duration = %v", e["dur"])
		}
		if e["pid"] != "cp0" {
			t.Errorf("pid = %v", e["pid"])
		}
	}
}

func TestCSVExport(t *testing.T) {
	rec := runTraced(t)
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7 { // header + 6 spans
		t.Fatalf("lines = %d, want 7", len(lines))
	}
	if !strings.HasPrefix(lines[0], "label,context,stream,start_ms") {
		t.Errorf("header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "k-hi,") && !strings.HasPrefix(l, "k-lo,") {
			t.Errorf("row = %q", l)
		}
	}
}

func TestFinishWithoutStartIgnored(t *testing.T) {
	rec := NewRecorder()
	// Simulate a kernel that was started before recording began.
	k := &gpu.Kernel{Label: "ghost"}
	rec.KernelFinished(k, des.Second)
	if len(rec.Spans()) != 0 {
		t.Error("ghost span recorded")
	}
}

func TestEmptyExports(t *testing.T) {
	rec := NewRecorder()
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty chrome trace = %q", buf.String())
	}
	buf.Reset()
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(buf.String()), "\n"); len(lines) != 1 {
		t.Errorf("empty csv lines = %d", len(lines))
	}
}

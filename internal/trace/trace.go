// Package trace records GPU execution timelines and exports them as Chrome
// trace JSON (load in chrome://tracing or https://ui.perfetto.dev) or CSV.
//
// A Recorder implements gpu.Observer: install it with Device.SetObserver
// before the run, then export after the engine drains.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"sgprs/internal/des"
	"sgprs/internal/gpu"
)

// Span is one completed kernel execution.
type Span struct {
	Label   string
	Context string
	Stream  string
	Start   des.Time
	End     des.Time
}

// Duration reports the span length.
func (s Span) Duration() des.Time { return s.End - s.Start }

// Recorder collects kernel spans. It implements gpu.Observer.
type Recorder struct {
	open  map[*gpu.Kernel]des.Time
	spans []Span
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{open: map[*gpu.Kernel]des.Time{}}
}

// KernelStarted implements gpu.Observer.
func (r *Recorder) KernelStarted(k *gpu.Kernel, now des.Time) {
	r.open[k] = now
}

// KernelFinished implements gpu.Observer.
func (r *Recorder) KernelFinished(k *gpu.Kernel, now des.Time) {
	start, ok := r.open[k]
	if !ok {
		return // started before recording began
	}
	delete(r.open, k)
	st := k.Stream()
	r.spans = append(r.spans, Span{
		Label:   k.Label,
		Context: st.Context().Name(),
		Stream:  st.String(),
		Start:   start,
		End:     now,
	})
}

// Spans lists completed spans in completion order.
func (r *Recorder) Spans() []Span { return r.spans }

// chromeEvent is one Chrome trace "complete" event.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	Pid  string  `json:"pid"` // context
	Tid  string  `json:"tid"` // stream
}

// WriteChromeTrace emits the spans as a Chrome trace JSON array.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, len(r.spans))
	for i, s := range r.spans {
		events[i] = chromeEvent{
			Name: s.Label,
			Ph:   "X",
			Ts:   float64(s.Start) / float64(des.Microsecond),
			Dur:  float64(s.Duration()) / float64(des.Microsecond),
			Pid:  s.Context,
			Tid:  s.Stream,
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(events); err != nil {
		return fmt.Errorf("trace: chrome export: %w", err)
	}
	return nil
}

// WriteCSV emits the spans as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"label", "context", "stream", "start_ms", "end_ms", "duration_ms"}); err != nil {
		return fmt.Errorf("trace: csv header: %w", err)
	}
	for _, s := range r.spans {
		rec := []string{
			s.Label,
			s.Context,
			s.Stream,
			strconv.FormatFloat(s.Start.Milliseconds(), 'f', 6, 64),
			strconv.FormatFloat(s.End.Milliseconds(), 'f', 6, 64),
			strconv.FormatFloat(s.Duration().Milliseconds(), 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

package des

import "testing"

// TestCancelThenRescheduleStillFires pins the retained-event contract the
// event pool must not break: a cancelled event can be revived with
// Reschedule and fires exactly once at the new instant.
func TestCancelThenRescheduleStillFires(t *testing.T) {
	e := NewEngine()
	var fired []Time
	ev := e.Schedule(Millisecond, "x", func(now Time) { fired = append(fired, now) })
	e.Cancel(ev)
	if ev.Pending() {
		t.Fatal("cancelled event still pending")
	}
	e.Reschedule(ev, 3*Millisecond)
	if !ev.Pending() {
		t.Fatal("rescheduled event not pending")
	}
	e.Run()
	if len(fired) != 1 || fired[0] != 3*Millisecond {
		t.Fatalf("fired = %v, want exactly once at 3ms", fired)
	}
}

// TestCancelAfterRemovalThenReschedule exercises the lazy-cancellation
// corner: the event is cancelled while queued (heap removal), then revived,
// then cancelled again before it can fire.
func TestCancelAfterRemovalThenReschedule(t *testing.T) {
	e := NewEngine()
	count := 0
	ev := e.Schedule(Millisecond, "x", func(Time) { count++ })
	e.Cancel(ev)
	e.Reschedule(ev, 2*Millisecond)
	e.Cancel(ev)
	e.Run()
	if count != 0 {
		t.Fatalf("doubly-cancelled event fired %d times", count)
	}
	if e.Pending() != 0 {
		t.Fatalf("queue not drained: %d pending", e.Pending())
	}
}

// TestPoolReuseNeverResurrectsFiredCallback is the pool-safety test: after a
// detached event fires and its Event struct is reused for a later schedule,
// the original callback must never run again — under plain reuse, under
// cancel, and under reschedule of unrelated retained events.
func TestPoolReuseNeverResurrectsFiredCallback(t *testing.T) {
	e := NewEngine()
	var aFired, bFired int
	e.AfterFunc(Millisecond, "a", func(Time) { aFired++ })
	e.Run()
	if aFired != 1 {
		t.Fatalf("a fired %d times, want 1", aFired)
	}
	if e.FreeEvents() != 1 {
		t.Fatalf("free list has %d events after one detached fire, want 1", e.FreeEvents())
	}
	// The next schedule reuses a's Event struct from the pool.
	e.AfterFunc(Millisecond, "b", func(Time) { bFired++ })
	if e.FreeEvents() != 0 {
		t.Fatal("pool not reused for the second detached event")
	}
	e.Run()
	if aFired != 1 {
		t.Fatalf("pool reuse resurrected a's callback (fired %d times)", aFired)
	}
	if bFired != 1 {
		t.Fatalf("b fired %d times, want 1", bFired)
	}
}

// TestRecycledEventReusedForRetainedSchedule: a retained event handed back
// with Recycle re-enters the pool, and its next occupant gets a fresh
// callback and a working cancel/reschedule lifecycle.
func TestRecycledEventReusedForRetainedSchedule(t *testing.T) {
	e := NewEngine()
	var old, next int
	ev := e.Schedule(Millisecond, "old", func(Time) { old++ })
	e.Run()
	if old != 1 {
		t.Fatal("retained event did not fire")
	}
	e.Recycle(ev) // owner is done with it
	if e.FreeEvents() != 1 {
		t.Fatalf("free list has %d events after Recycle, want 1", e.FreeEvents())
	}
	ev2 := e.Schedule(2*Millisecond, "next", func(Time) { next++ })
	if ev2 != ev {
		t.Fatal("pool did not hand back the recycled event struct")
	}
	e.Reschedule(ev2, 5*Millisecond)
	e.Run()
	if old != 1 || next != 1 {
		t.Fatalf("old=%d next=%d, want 1 and 1 (no resurrection, one fresh fire)", old, next)
	}
}

// TestRecyclePendingEventNeverFires: recycling an event that has not fired
// removes it from the queue.
func TestRecyclePendingEventNeverFires(t *testing.T) {
	e := NewEngine()
	count := 0
	ev := e.Schedule(Millisecond, "x", func(Time) { count++ })
	e.Recycle(ev)
	if e.Pending() != 0 {
		t.Fatalf("recycled pending event still queued (%d pending)", e.Pending())
	}
	e.Run()
	if count != 0 {
		t.Fatalf("recycled event fired %d times", count)
	}
	e.Recycle(nil) // no-op
}

// TestPoolStaysBoundedUnderChurn: a long schedule/fire chain must recycle
// through a bounded pool instead of growing the free list or the heap.
func TestPoolStaysBoundedUnderChurn(t *testing.T) {
	e := NewEngine()
	const rounds = 10000
	count := 0
	var tick func(now Time)
	tick = func(now Time) {
		count++
		if count < rounds {
			e.AfterFunc(Millisecond, "tick", tick)
		}
	}
	e.AfterFunc(Millisecond, "tick", tick)
	e.Run()
	if count != rounds {
		t.Fatalf("fired %d, want %d", count, rounds)
	}
	if e.FreeEvents() > 2 {
		t.Fatalf("free list grew to %d events under sequential churn, want ≤ 2", e.FreeEvents())
	}
}

// TestArgCallbacksDeliverArgAndOrder: the arg-style variants must deliver
// the scheduled argument and preserve (time, sequence) firing order mixed
// with closure events.
func TestArgCallbacksDeliverArgAndOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	record := func(_ Time, arg any) { order = append(order, arg.(int)) }
	e.ScheduleArg(2*Millisecond, "two", record, 2)
	e.AfterArg(Millisecond, "one", record, 1)
	e.Schedule(3*Millisecond, "three", func(Time) { order = append(order, 3) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

// TestRetainedRescheduleAfterFireRequeues pins the documented semantics the
// GPU engine relies on: rescheduling an already-fired retained event
// re-queues it with its original callback.
func TestRetainedRescheduleAfterFireRequeues(t *testing.T) {
	e := NewEngine()
	count := 0
	ev := e.Schedule(Millisecond, "x", func(Time) { count++ })
	e.Run()
	e.Reschedule(ev, e.Now().Add(Millisecond))
	e.Run()
	if count != 2 {
		t.Fatalf("fired %d times, want 2 (fire, requeue, fire)", count)
	}
}

// TestHeapRemoveMiddle exercises the concrete heap's remove/fix paths with
// cancellations from the middle of a large queue.
func TestHeapRemoveMiddle(t *testing.T) {
	e := NewEngine()
	const n = 200
	events := make([]*Event, n)
	var fired []int
	for i := 0; i < n; i++ {
		i := i
		events[i] = e.Schedule(Time(i+1)*Millisecond, "x", func(Time) { fired = append(fired, i) })
	}
	for i := 0; i < n; i += 3 {
		e.Cancel(events[i])
	}
	e.Run()
	want := 0
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			continue
		}
		if fired[want] != i {
			t.Fatalf("fired[%d] = %d, want %d (out of order after removals)", want, fired[want], i)
		}
		want++
	}
	if len(fired) != want {
		t.Fatalf("fired %d events, want %d", len(fired), want)
	}
}

// Package des implements a deterministic discrete-event simulation kernel.
//
// Simulated time is a 64-bit count of nanoseconds. Events scheduled for the
// same instant fire in the order of their scheduling sequence numbers, so a
// simulation run is exactly reproducible regardless of host scheduling or map
// iteration order.
package des

import (
	"fmt"
	"time"
)

// Time is an instant in simulated time, counted in nanoseconds from the start
// of the simulation. The zero Time is the simulation epoch.
type Time int64

// Common simulated-time unit constants.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Never is a sentinel Time greater than any reachable simulation instant.
const Never = Time(1<<63 - 1)

// FromDuration converts a time.Duration into simulated Time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Duration converts t into a time.Duration relative to the simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(int64(t)) }

// Seconds reports t as floating-point seconds since the epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as floating-point milliseconds since the epoch.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Add returns t shifted by the duration d, saturating at Never.
func (t Time) Add(d Time) Time {
	if t == Never || d == Never {
		return Never
	}
	s := t + d
	if d > 0 && s < t { // overflow
		return Never
	}
	return s
}

// String renders t in an engineering-friendly form ("12.345ms").
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return t.Duration().String()
}

// FromSeconds converts floating-point seconds into simulated Time, rounding
// to the nearest nanosecond.
func FromSeconds(s float64) Time {
	if s < 0 {
		panic(fmt.Sprintf("des: negative duration %v", s))
	}
	return Time(s*float64(Second) + 0.5)
}

// FromMillis converts floating-point milliseconds into simulated Time.
func FromMillis(ms float64) Time { return FromSeconds(ms / 1e3) }

// FromMicros converts floating-point microseconds into simulated Time.
func FromMicros(us float64) Time { return FromSeconds(us / 1e6) }

package des

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v, want 1.5s", got)
	}
	if got := FromMillis(2.5); got != 2500*Microsecond {
		t.Errorf("FromMillis(2.5) = %v, want 2.5ms", got)
	}
	if got := FromMicros(3); got != 3*Microsecond {
		t.Errorf("FromMicros(3) = %v, want 3us", got)
	}
	if got := FromDuration(2 * time.Second); got != 2*Second {
		t.Errorf("FromDuration(2s) = %v, want 2s", got)
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds = %v, want 1.5", got)
	}
	if got := (1500 * Microsecond).Milliseconds(); got != 1.5 {
		t.Errorf("Milliseconds = %v, want 1.5", got)
	}
}

func TestTimeAddSaturates(t *testing.T) {
	if got := Never.Add(Second); got != Never {
		t.Errorf("Never.Add = %v, want Never", got)
	}
	if got := Time(1).Add(Never); got != Never {
		t.Errorf("Add(Never) = %v, want Never", got)
	}
	big := Time(1<<63 - 10)
	if got := big.Add(100); got != Never {
		t.Errorf("overflowing Add = %v, want Never", got)
	}
	if got := Time(5).Add(7); got != 12 {
		t.Errorf("5+7 = %v, want 12", got)
	}
}

func TestTimeString(t *testing.T) {
	if got := Never.String(); got != "never" {
		t.Errorf("Never.String() = %q", got)
	}
	if got := (12 * Millisecond).String(); got != "12ms" {
		t.Errorf("12ms String = %q", got)
	}
}

func TestFromSecondsNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSeconds(-1) did not panic")
		}
	}()
	FromSeconds(-1)
}

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30*Millisecond, "c", func(Time) { order = append(order, 3) })
	e.Schedule(10*Millisecond, "a", func(Time) { order = append(order, 1) })
	e.Schedule(20*Millisecond, "b", func(Time) { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30*Millisecond {
		t.Errorf("final Now = %v, want 30ms", e.Now())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Millisecond, "tie", func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order = %v, want ascending", order)
		}
	}
}

func TestEngineScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10*Millisecond, "x", func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("schedule in the past did not panic")
		}
	}()
	e.Schedule(5*Millisecond, "past", func(Time) {})
}

func TestEngineNilCallbackPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	e.Schedule(Millisecond, "nil", nil)
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(Millisecond, "x", func(Time) { fired = true })
	if !ev.Pending() {
		t.Fatal("event not pending after schedule")
	}
	e.Cancel(ev)
	if ev.Pending() {
		t.Fatal("event pending after cancel")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	e.Cancel(ev) // double-cancel is a no-op
	e.Cancel(nil)
}

func TestEngineReschedule(t *testing.T) {
	e := NewEngine()
	var at Time
	ev := e.Schedule(Millisecond, "x", func(now Time) { at = now })
	e.Reschedule(ev, 5*Millisecond)
	e.Run()
	if at != 5*Millisecond {
		t.Errorf("fired at %v, want 5ms", at)
	}
	// Re-queue after firing.
	e.Reschedule(ev, 9*Millisecond)
	e.Run()
	if at != 9*Millisecond {
		t.Errorf("refired at %v, want 9ms", at)
	}
}

func TestEngineRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(Millisecond, "a", func(Time) { count++ })
	e.Schedule(Second, "b", func(Time) { count++ })
	e.RunUntil(100 * Millisecond)
	if count != 1 {
		t.Errorf("fired %d events, want 1", count)
	}
	if e.Now() != 100*Millisecond {
		t.Errorf("Now = %v, want horizon 100ms", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.RunUntil(2 * Second)
	if count != 2 {
		t.Errorf("fired %d events, want 2", count)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i)*Millisecond, "x", func(Time) {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Errorf("fired %d events, want 3 (stopped)", count)
	}
}

func TestEngineSelfScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func(now Time)
	tick = func(now Time) {
		count++
		if count < 100 {
			e.After(Millisecond, "tick", tick)
		}
	}
	e.After(Millisecond, "tick", tick)
	e.Run()
	if count != 100 {
		t.Errorf("ticks = %d, want 100", count)
	}
	if e.Now() != 100*Millisecond {
		t.Errorf("Now = %v, want 100ms", e.Now())
	}
	if e.Fired() != 100 {
		t.Errorf("Fired = %d, want 100", e.Fired())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds produced the same first value")
	}
}

func TestRNGForkOrderIndependent(t *testing.T) {
	a := NewRNG(7)
	a.Uint64()
	a.Uint64()
	// Fork depends on the *seed*, not on consumption. Forking after draws
	// changes the parent state, so compare forks from fresh parents.
	f1 := NewRNG(7).Fork(1).Uint64()
	f2 := NewRNG(7).Fork(1).Uint64()
	if f1 != f2 {
		t.Error("fork not deterministic")
	}
	if NewRNG(7).Fork(1).Uint64() == NewRNG(7).Fork(2).Uint64() {
		t.Error("different salts produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	varv := sum2/n - mean*mean
	if mean < 9.95 || mean > 10.05 {
		t.Errorf("mean = %v, want ~10", mean)
	}
	if varv < 3.8 || varv > 4.2 {
		t.Errorf("var = %v, want ~4", varv)
	}
}

func TestRNGTruncNormalBounds(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		v := r.TruncNormal(0, 100, -1, 1)
		if v < -1 || v > 1 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(17)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	mean := sum / n
	if mean < 4.9 || mean > 5.1 {
		t.Errorf("Exp mean = %v, want ~5", mean)
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

// Property: events always fire in non-decreasing time order, whatever the
// scheduling order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		for _, off := range offsets {
			e.Schedule(Time(off)*Microsecond, "p", func(now Time) {
				fired = append(fired, now)
			})
		}
		e.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

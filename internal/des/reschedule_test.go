package des

import (
	"math/rand"
	"sort"
	"testing"
)

// modelEvent mirrors one engine event in the reference model of the churn
// property test: the authoritative firing key the engine must respect.
type modelEvent struct {
	id        int
	at        Time
	seq       uint64
	cancelled bool
	fired     bool
}

// TestRescheduleChurnPreservesOrder drives the engine through randomized
// interleavings of Schedule, Reschedule (later, earlier, and to the same
// instant — the no-move fast path), and Cancel, then checks that events fire
// exactly in (time, sequence) order of their last effective reschedule. The
// reference model re-derives that order independently, so the lazy
// later-move deferral, the up-only earlier move, and the no-move skip all
// have to agree with eager semantics.
func TestRescheduleChurnPreservesOrder(t *testing.T) {
	trials := 200
	if testing.Short() {
		trials = 40
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 42))
		eng := NewEngine()

		var model []*modelEvent
		var handles []*Event
		var fired []int
		// modelSeq mirrors the engine's sequence counter. Every Schedule
		// consumes one; a Reschedule consumes one unless it is a no-move.
		var modelSeq uint64

		schedule := func(at Time) {
			me := &modelEvent{id: len(model), at: at, seq: modelSeq}
			modelSeq++
			model = append(model, me)
			me2 := me
			handles = append(handles, eng.Schedule(at, "churn", func(now Time) {
				if now != me2.at {
					t.Fatalf("trial %d: event %d fired at %v, model says %v", trial, me2.id, now, me2.at)
				}
				me2.fired = true
				fired = append(fired, me2.id)
			}))
		}

		// Seed a population, then churn: the engine never runs during the
		// churn phase, so every operation lands on a pending event.
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			schedule(Time(rng.Intn(1000)))
		}
		ops := 5 + rng.Intn(200)
		for i := 0; i < ops; i++ {
			switch rng.Intn(10) {
			case 0: // add another event
				schedule(Time(rng.Intn(1000)))
			case 1: // cancel one
				id := rng.Intn(len(model))
				if !model[id].cancelled {
					eng.Cancel(handles[id])
					model[id].cancelled = true
				}
			default: // reschedule one (later, earlier, or no-move)
				id := rng.Intn(len(model))
				if model[id].cancelled {
					continue
				}
				var at Time
				switch rng.Intn(4) {
				case 0:
					at = model[id].at // no-move: keeps time AND sequence
				default:
					at = Time(rng.Intn(1000))
				}
				eng.Reschedule(handles[id], at)
				if at != model[id].at {
					model[id].at = at
					model[id].seq = modelSeq
					modelSeq++
				}
			}
		}

		eng.Run()

		// The model's expected firing order: live events by (at, seq).
		var want []*modelEvent
		for _, me := range model {
			if !me.cancelled {
				want = append(want, me)
			}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].at != want[j].at {
				return want[i].at < want[j].at
			}
			return want[i].seq < want[j].seq
		})
		if len(fired) != len(want) {
			t.Fatalf("trial %d: fired %d events, model expects %d", trial, len(fired), len(want))
		}
		for i, me := range want {
			if fired[i] != me.id {
				t.Fatalf("trial %d: firing order diverges at %d: got event %d, want %d", trial, i, fired[i], me.id)
			}
			if !me.fired {
				t.Fatalf("trial %d: model event %d never fired", trial, me.id)
			}
		}
	}
}

// TestRescheduleNoMoveKeepsOrder pins the no-move fast path's tie semantics:
// an event rescheduled to its own instant keeps its original sequence
// number, so it still fires before a later-scheduled event at the same time.
func TestRescheduleNoMoveKeepsOrder(t *testing.T) {
	eng := NewEngine()
	var order []string
	first := eng.Schedule(Time(50), "first", func(Time) { order = append(order, "first") })
	eng.Schedule(Time(50), "second", func(Time) { order = append(order, "second") })
	seqBefore := eng.seq
	eng.Reschedule(first, Time(50)) // no-move: must not re-stamp the sequence
	if eng.seq != seqBefore {
		t.Fatalf("no-move reschedule consumed a sequence number")
	}
	eng.Run()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v, want [first second]", order)
	}
}

// TestRescheduleLaterIsDeferred pins the lazy later-move: the heap position
// is untouched, the event still fires at — and only at — its new instant,
// and the deferred key still orders correctly against intervening events.
func TestRescheduleLaterIsDeferred(t *testing.T) {
	eng := NewEngine()
	var order []string
	ev := eng.Schedule(Time(10), "moved", func(now Time) {
		if now != Time(300) {
			t.Fatalf("moved event fired at %v, want 300", now)
		}
		order = append(order, "moved")
	})
	eng.Reschedule(ev, Time(300))
	if ev.At() != Time(300) {
		t.Fatalf("At() = %v after deferred reschedule, want 300", ev.At())
	}
	eng.Schedule(Time(200), "mid", func(Time) { order = append(order, "mid") })
	// Same instant as the moved event but scheduled afterwards: the moved
	// event's deferred sequence number is older, so it fires first.
	eng.Schedule(Time(300), "tie", func(Time) { order = append(order, "tie") })
	eng.Run()
	if len(order) != 3 || order[0] != "mid" || order[1] != "moved" || order[2] != "tie" {
		t.Fatalf("order = %v, want [mid moved tie]", order)
	}
}

// TestRunUntilWithStaleRoot pins the horizon check against deferred moves: a
// stale heap root below the horizon whose authoritative instant lies beyond
// it must not fire, and the clock must land exactly on the horizon.
func TestRunUntilWithStaleRoot(t *testing.T) {
	eng := NewEngine()
	firedAt := Time(-1)
	ev := eng.Schedule(Time(10), "late", func(now Time) { firedAt = now })
	eng.Reschedule(ev, Time(500))
	eng.RunUntil(Time(100))
	if firedAt != Time(-1) {
		t.Fatalf("deferred event fired at %v before its instant", firedAt)
	}
	if eng.Now() != Time(100) {
		t.Fatalf("clock = %v, want horizon 100", eng.Now())
	}
	eng.RunUntil(Time(1000))
	if firedAt != Time(500) {
		t.Fatalf("deferred event fired at %v, want 500", firedAt)
	}
}

// TestAfterArgMonotoneLane covers the O(1) monotone lane: interleaving with
// heap events preserves (time, sequence) order, same-instant ties resolve by
// schedule order, and out-of-order monotone scheduling panics.
func TestAfterArgMonotoneLane(t *testing.T) {
	eng := NewEngine()
	var order []string
	noteArg := func(now Time, arg any) { order = append(order, arg.(string)) }
	note := func(label string) func(Time) {
		return func(Time) { order = append(order, label) }
	}
	// Heap event at 30, monotone at 20 and 40, heap tie at 40 scheduled
	// after the monotone event.
	eng.Schedule(Time(30), "h30", note("h30"))
	eng.AfterArgMonotone(Time(20), "m20", noteArg, "m20")
	eng.AfterArgMonotone(Time(40), "m40", noteArg, "m40")
	eng.Schedule(Time(40), "h40", note("h40"))
	eng.Run()
	want := "[m20 h30 m40 h40]"
	if got := sprint(order); got != want {
		t.Fatalf("order = %v, want %v", got, want)
	}
	if eng.Pending() != 0 {
		t.Fatalf("pending = %d after drain", eng.Pending())
	}

	// The lane contract: scheduling a monotone event before the pending
	// tail is a bug and panics.
	eng2 := NewEngine()
	eng2.Schedule(Time(1000), "hold", func(now Time) {
		// now = 1000: a monotone event at now+0 while one pends at 1005
		// violates monotonicity.
		eng2.AfterArgMonotone(Time(5), "ok", noteArg, "x")
		defer func() {
			if recover() == nil {
				t.Error("out-of-order monotone schedule did not panic")
			}
		}()
		eng2.AfterArgMonotone(Time(0), "bad", noteArg, "y")
	})
	eng2.Run()

	// Reset drains the lane back into the pool.
	eng3 := NewEngine()
	eng3.AfterArgMonotone(Time(5), "m", noteArg, "m")
	if eng3.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", eng3.Pending())
	}
	eng3.Reset()
	if eng3.Pending() != 0 || eng3.FreeEvents() != 1 {
		t.Fatalf("reset did not recycle the monotone lane: pending=%d free=%d", eng3.Pending(), eng3.FreeEvents())
	}
}

func sprint(ss []string) string {
	out := "["
	for i, s := range ss {
		if i > 0 {
			out += " "
		}
		out += s
	}
	return out + "]"
}

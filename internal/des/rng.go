package des

import "math"

// RNG is a small, fast, deterministic pseudo-random generator (splitmix64).
// Every stochastic element of the simulation draws from its own RNG stream so
// that adding or removing one consumer never perturbs another — a requirement
// for reproducible sweeps.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded from seed. Distinct seeds yield
// statistically independent streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Fork derives an independent child stream. The child is a pure function of
// the parent's seed and the salt, not of how many values the parent has
// drawn, so forks are order-independent.
func (r *RNG) Fork(salt uint64) *RNG {
	return NewRNG(mix(r.state ^ mix(salt^0x9e3779b97f4a7c15)))
}

func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("des: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns a normally distributed value with the given mean and
// standard deviation (Box-Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// TruncNormal returns a normal draw clamped to [lo, hi].
func (r *RNG) TruncNormal(mean, stddev, lo, hi float64) float64 {
	v := r.Normal(mean, stddev)
	return math.Max(lo, math.Min(hi, v))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

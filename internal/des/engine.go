package des

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. It is returned by Engine.Schedule so callers
// can cancel or reschedule it.
type Event struct {
	at     Time
	seq    uint64
	index  int // heap index, -1 when not queued
	fn     func(now Time)
	label  string
	cancel bool
}

// At reports the instant the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Label reports the diagnostic label given at scheduling time.
func (e *Event) Label() string { return e.label }

// Pending reports whether the event is still queued and not cancelled.
func (e *Event) Pending() bool { return e.index >= 0 && !e.cancel }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all callbacks run on the goroutine that calls Run.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stopped bool
	fired   uint64
}

// NewEngine returns an engine positioned at the simulation epoch.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated instant.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run at the absolute instant at. Scheduling in the
// past panics: that is always a simulation bug, and silently clamping it
// would hide ordering errors. The label is for diagnostics and traces.
func (e *Engine) Schedule(at Time, label string, fn func(now Time)) *Event {
	if at < e.now {
		panic(fmt.Sprintf("des: schedule %q at %v before now %v", label, at, e.now))
	}
	if fn == nil {
		panic("des: schedule with nil callback")
	}
	ev := &Event{at: at, seq: e.seq, fn: fn, label: label, index: -1}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After queues fn to run d after the current instant.
func (e *Engine) After(d Time, label string, fn func(now Time)) *Event {
	return e.Schedule(e.now.Add(d), label, fn)
}

// Cancel removes ev from the queue if it has not fired. Cancelling an
// already-fired or already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancel || ev.index < 0 {
		if ev != nil {
			ev.cancel = true
		}
		return
	}
	ev.cancel = true
	heap.Remove(&e.queue, ev.index)
}

// Reschedule moves a pending event to a new instant, preserving its callback.
// If the event already fired it is re-queued.
func (e *Engine) Reschedule(ev *Event, at Time) {
	if at < e.now {
		panic(fmt.Sprintf("des: reschedule %q at %v before now %v", ev.label, at, e.now))
	}
	if ev.index >= 0 {
		ev.at = at
		ev.seq = e.seq
		e.seq++
		heap.Fix(&e.queue, ev.index)
		return
	}
	ev.cancel = false
	ev.at = at
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.queue, ev)
}

// Stop makes the current Run call return after the in-flight callback.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the single earliest pending event and reports whether one fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn(e.now)
		return true
	}
	return false
}

// RunUntil fires events in timestamp order until the queue drains, Stop is
// called, or the next event would fire strictly after the horizon. The clock
// is left at min(horizon, last event time) — i.e. it advances to the horizon
// when the queue outlives it.
func (e *Engine) RunUntil(horizon Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			break
		}
		next := e.queue[0]
		if next.cancel {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > horizon {
			break
		}
		e.Step()
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// Run fires events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

package des

import "fmt"

// Event is a scheduled callback. It is returned by Engine.Schedule so callers
// can cancel or reschedule it.
//
// Events come in two ownership flavours. Retained events (Schedule, After,
// ScheduleArg) are owned by the caller: they may be cancelled, rescheduled —
// even after firing — and handed back to the engine's free list with Recycle
// once the caller holds no further references. Detached events (ScheduleFunc,
// AfterFunc, AfterArg) never escape the engine: no pointer is returned, so
// they cannot be cancelled or rescheduled, and the engine recycles them
// automatically the moment they fire. Recycling clears the callback before
// the event re-enters the pool, so a reused Event can never resurrect a
// previous occupant's callback.
type Event struct {
	at    Time
	seq   uint64
	index int // heap index, -1 when not queued
	// trueAt/trueSeq are the event's authoritative firing key. They equal
	// (at, seq) except while the event is stale: Reschedule to a later
	// instant only updates the authoritative key and leaves the heap
	// position — a lower bound — untouched, deferring the heap work until
	// the stale position surfaces at the root, where the event is
	// reinserted under its authoritative key instead of firing. Rates in
	// the GPU model drop whenever a kernel joins the running set, pushing
	// every completion later, so this turns the dominant reschedule
	// direction into O(1). The stashed key is drawn from the same sequence
	// counter at the same call as an eager reschedule would, so firing
	// order is unchanged — see pool_test.go and reschedule_test.go.
	trueAt  Time
	trueSeq uint64
	stale   bool
	// Exactly one of fn / fnArg is set. The arg variants exist so hot
	// paths can use a shared package-level function plus a context value
	// instead of allocating a fresh closure per event.
	fn     func(now Time)
	fnArg  func(now Time, arg any)
	arg    any
	label  string
	cancel bool
	// detached marks engine-owned events (no pointer escaped): they are
	// auto-recycled when they fire.
	detached bool
}

// At reports the instant the event is scheduled to fire.
func (e *Event) At() Time { return e.trueAt }

// Label reports the diagnostic label given at scheduling time.
func (e *Event) Label() string { return e.label }

// Pending reports whether the event is still queued and not cancelled.
func (e *Event) Pending() bool { return e.index >= 0 && !e.cancel }

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all callbacks run on the goroutine that calls Run.
//
// The pending-event queue is a concrete binary heap over (time, sequence)
// keys — no container/heap interface dispatch — and fired or recycled events
// return to a free list, so steady-state simulation schedules without
// allocating. Because every event carries a unique, monotonically assigned
// sequence number, heap comparisons never tie: the firing order is a pure
// function of the schedule calls, independent of the heap's internal layout
// or of event reuse.
type Engine struct {
	now   Time
	seq   uint64
	queue []*Event
	// mono is the monotone lane: a head-indexed FIFO for detached events
	// whose firing instants are nondecreasing by construction
	// (AfterArgMonotone). Constant-delay hot paths — one kernel-launch
	// event per kernel in the GPU model — enqueue and dequeue in O(1)
	// here instead of paying two heap walks each. Events in the lane
	// carry sequence numbers from the same counter as heap events, and
	// dispatch always fires the (time, sequence)-least event across both
	// structures, so the lane is invisible in the firing order.
	mono     []*Event
	monoHead int
	free     []*Event
	stopped  bool
	fired    uint64
	// encScratch is EncodePending's reused sort buffer (see warp.go).
	encScratch []*Event
}

// NewEngine returns an engine positioned at the simulation epoch.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated instant.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.queue) + len(e.mono) - e.monoHead }

// FreeEvents reports the size of the event free list (diagnostics/tests).
func (e *Engine) FreeEvents() int { return len(e.free) }

// get pops an event from the free list (or allocates one) and stamps it with
// a fresh sequence number. The returned event carries no callback yet.
func (e *Engine) get(at Time, label string) *Event {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	*ev = Event{at: at, seq: e.seq, trueAt: at, trueSeq: e.seq, index: -1, label: label}
	e.seq++
	return ev
}

// release clears ev (dropping its callback and argument so the pool never
// retains them) and pushes it onto the free list. ev must not be queued.
func (e *Engine) release(ev *Event) {
	*ev = Event{index: -1}
	e.free = append(e.free, ev)
}

func (e *Engine) checkSchedule(at Time, label string, ok bool) {
	if at < e.now {
		panic(fmt.Sprintf("des: schedule %q at %v before now %v", label, at, e.now))
	}
	if !ok {
		panic("des: schedule with nil callback")
	}
}

// Schedule queues fn to run at the absolute instant at. Scheduling in the
// past panics: that is always a simulation bug, and silently clamping it
// would hide ordering errors. The label is for diagnostics and traces.
func (e *Engine) Schedule(at Time, label string, fn func(now Time)) *Event {
	e.checkSchedule(at, label, fn != nil)
	ev := e.get(at, label)
	ev.fn = fn
	e.push(ev)
	return ev
}

// After queues fn to run d after the current instant.
func (e *Engine) After(d Time, label string, fn func(now Time)) *Event {
	return e.Schedule(e.now.Add(d), label, fn)
}

// ScheduleFunc is Schedule for fire-and-forget callbacks: no handle is
// returned, so the event cannot be cancelled or rescheduled, and the engine
// recycles it automatically when it fires.
func (e *Engine) ScheduleFunc(at Time, label string, fn func(now Time)) {
	e.checkSchedule(at, label, fn != nil)
	ev := e.get(at, label)
	ev.fn = fn
	ev.detached = true
	e.push(ev)
}

// AfterFunc is ScheduleFunc relative to the current instant.
func (e *Engine) AfterFunc(d Time, label string, fn func(now Time)) {
	e.ScheduleFunc(e.now.Add(d), label, fn)
}

// ScheduleArg queues a retained event whose callback receives arg at fire
// time. A package-level fn plus an arg avoids the per-event closure
// allocation of Schedule on hot paths.
func (e *Engine) ScheduleArg(at Time, label string, fn func(now Time, arg any), arg any) *Event {
	e.checkSchedule(at, label, fn != nil)
	ev := e.get(at, label)
	ev.fnArg = fn
	ev.arg = arg
	e.push(ev)
	return ev
}

// AfterArg queues a detached (fire-and-forget, auto-recycled) event whose
// callback receives arg, d after the current instant.
func (e *Engine) AfterArg(d Time, label string, fn func(now Time, arg any), arg any) {
	at := e.now.Add(d)
	e.checkSchedule(at, label, fn != nil)
	ev := e.get(at, label)
	ev.fnArg = fn
	ev.arg = arg
	ev.detached = true
	e.push(ev)
}

// AfterArgMonotone is AfterArg for callers that schedule with a fixed delay:
// because the clock never runs backwards, successive calls with one constant
// d produce nondecreasing firing instants, and the event can ride the O(1)
// monotone lane instead of the heap. Scheduling out of order (an instant
// before a still-pending monotone event) panics — that means the caller's
// delay is not actually constant.
func (e *Engine) AfterArgMonotone(d Time, label string, fn func(now Time, arg any), arg any) {
	at := e.now.Add(d)
	e.checkSchedule(at, label, fn != nil)
	if n := len(e.mono); n > e.monoHead && at < e.mono[n-1].at {
		panic(fmt.Sprintf("des: monotone schedule %q at %v before pending %v", label, at, e.mono[n-1].at))
	}
	ev := e.get(at, label)
	ev.fnArg = fn
	ev.arg = arg
	ev.detached = true
	e.mono = append(e.mono, ev)
}

// popMono dequeues the monotone-lane head, rewinding the backing array once
// the lane drains (the same reclaim discipline as the GPU stream FIFOs).
func (e *Engine) popMono() *Event {
	ev := e.mono[e.monoHead]
	e.mono[e.monoHead] = nil
	e.monoHead++
	if e.monoHead == len(e.mono) {
		e.mono = e.mono[:0]
		e.monoHead = 0
	}
	return ev
}

// monoBefore reports whether the monotone-lane head fires before the heap
// root (or the heap is empty). Both carry sequence numbers from the shared
// counter, so the comparison is the engine's usual total order.
func (e *Engine) monoBefore() bool {
	if e.monoHead >= len(e.mono) {
		return false
	}
	if len(e.queue) == 0 {
		return true
	}
	m, h := e.mono[e.monoHead], e.queue[0]
	if m.at != h.at {
		return m.at < h.at
	}
	return m.seq < h.seq
}

// Cancel removes ev from the queue if it has not fired. Cancelling an
// already-fired or already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancel || ev.index < 0 {
		if ev != nil {
			ev.cancel = true
		}
		return
	}
	ev.cancel = true
	e.remove(ev.index)
}

// Reschedule moves a pending event to a new instant, preserving its callback.
// If the event already fired it is re-queued. Rescheduling a pending event to
// the very instant it already occupies is a no-op: the event keeps its place
// — and its sequence number, so it still orders before any event scheduled
// after it at the same instant — and the heap is left untouched.
//
// Moving a pending event later is O(1): only the authoritative key changes
// (see Event), and the heap repair is deferred until the stale position
// reaches the root. Moving it earlier (below its heap key) decreases the
// key, so an up-sift restores order.
func (e *Engine) Reschedule(ev *Event, at Time) {
	if at < e.now {
		panic(fmt.Sprintf("des: reschedule %q at %v before now %v", ev.label, at, e.now))
	}
	if ev.index >= 0 {
		if ev.trueAt == at {
			return
		}
		if at >= ev.at {
			ev.trueAt = at
			ev.trueSeq = e.seq
			e.seq++
			ev.stale = true
			return
		}
		ev.at, ev.trueAt = at, at
		ev.seq, ev.trueSeq = e.seq, e.seq
		e.seq++
		ev.stale = false
		e.up(ev.index)
		return
	}
	ev.cancel = false
	ev.at, ev.trueAt = at, at
	ev.seq, ev.trueSeq = e.seq, e.seq
	e.seq++
	ev.stale = false
	e.push(ev)
}

// requeueStale reinserts a popped stale event under its authoritative key.
// The key was assigned when the deferring Reschedule ran, so the event
// orders against every other event exactly as an eager reschedule would
// have placed it.
func (e *Engine) requeueStale(ev *Event) {
	ev.at, ev.seq = ev.trueAt, ev.trueSeq
	ev.stale = false
	e.push(ev)
}

// Recycle returns a retained event to the engine's free list. A pending
// event is removed from the queue first (it will not fire). The caller must
// drop every reference to ev: using it after Recycle is a use-after-free
// class bug, exactly like retaining a pooled buffer. Recycling nil is a
// no-op.
func (e *Engine) Recycle(ev *Event) {
	if ev == nil {
		return
	}
	if ev.index >= 0 {
		e.remove(ev.index)
	}
	e.release(ev)
}

// Stop makes the current Run call return after the in-flight callback.
func (e *Engine) Stop() { e.stopped = true }

// Reset returns the engine to the simulation epoch while keeping its event
// free list, so a reused engine schedules without allocating from its first
// event on. Every still-pending event is recycled into the pool and every
// outstanding retained-Event handle is invalidated: callers must drop them
// all before Reset, exactly as they would before discarding the engine.
// After Reset the engine is indistinguishable from NewEngine() — clock at
// zero, sequence counter at zero — so a run on a reset engine is
// bit-identical to one on a fresh engine.
func (e *Engine) Reset() {
	for i, ev := range e.queue {
		e.queue[i] = nil
		e.release(ev)
	}
	e.queue = e.queue[:0]
	for i := e.monoHead; i < len(e.mono); i++ {
		ev := e.mono[i]
		e.mono[i] = nil
		e.release(ev)
	}
	e.mono = e.mono[:0]
	e.monoHead = 0
	e.now, e.seq, e.fired, e.stopped = 0, 0, 0, false
}

// Step fires the single earliest pending event and reports whether one fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 || e.monoHead < len(e.mono) {
		var ev *Event
		if e.monoBefore() {
			// Monotone-lane events are detached: they can never be
			// cancelled, rescheduled, or stale.
			ev = e.popMono()
		} else {
			ev = e.pop()
			if ev.cancel {
				// Cancelled retained events stay with their owner (it
				// may Reschedule or Recycle them); only the
				// engine-owned kind returns to the pool here.
				if ev.detached {
					e.release(ev)
				}
				continue
			}
			if ev.stale {
				// A deferred later-move surfaced: reinsert it under
				// its authoritative key instead of firing.
				e.requeueStale(ev)
				continue
			}
		}
		e.now = ev.at
		e.fired++
		fn, fnArg, arg := ev.fn, ev.fnArg, ev.arg
		// Detached events re-enter the pool before the callback runs, so
		// the callback itself can reuse the slot for follow-up events.
		// The callback was copied out above: a reused event never carries
		// the old callback (release cleared it).
		if ev.detached {
			e.release(ev)
		}
		if fnArg != nil {
			fnArg(e.now, arg)
		} else {
			fn(e.now)
		}
		return true
	}
	return false
}

// RunUntil fires events in timestamp order until the queue drains, Stop is
// called, or the next event would fire strictly after the horizon. The clock
// is left at min(horizon, last event time) — i.e. it advances to the horizon
// when the queue outlives it.
func (e *Engine) RunUntil(horizon Time) {
	e.stopped = false
	for !e.stopped {
		var next *Event
		if e.monoBefore() {
			next = e.mono[e.monoHead]
		} else if len(e.queue) > 0 {
			next = e.queue[0]
			if next.cancel {
				ev := e.pop()
				if ev.detached {
					e.release(ev)
				}
				continue
			}
			if next.stale {
				// Normalize before the horizon test: the stale heap
				// key is only a lower bound on the authoritative
				// firing instant.
				e.requeueStale(e.pop())
				continue
			}
		} else {
			break
		}
		if next.at > horizon {
			break
		}
		e.Step()
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// Run fires events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// less orders the heap by (time, sequence). Sequence numbers are unique, so
// the order is total and deterministic.
func (e *Engine) less(i, j int) bool {
	a, b := e.queue[i], e.queue[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) swap(i, j int) {
	q := e.queue
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (e *Engine) push(ev *Event) {
	ev.index = len(e.queue)
	e.queue = append(e.queue, ev)
	e.up(ev.index)
}

// pop removes and returns the heap minimum, marking it unqueued.
func (e *Engine) pop() *Event {
	n := len(e.queue) - 1
	e.swap(0, n)
	ev := e.queue[n]
	e.queue[n] = nil
	e.queue = e.queue[:n]
	if n > 0 {
		e.down(0)
	}
	ev.index = -1
	return ev
}

// remove deletes the event at heap index i, marking it unqueued.
func (e *Engine) remove(i int) {
	n := len(e.queue) - 1
	ev := e.queue[i]
	if i != n {
		e.swap(i, n)
	}
	e.queue[n] = nil
	e.queue = e.queue[:n]
	if i != n && n > 0 {
		if !e.down(i) {
			e.up(i)
		}
	}
	ev.index = -1
}

func (e *Engine) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.swap(i, parent)
		i = parent
	}
}

// down sifts the event at index i toward the leaves, reporting whether it
// moved.
func (e *Engine) down(i int) bool {
	n := len(e.queue)
	start := i
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && e.less(right, left) {
			least = right
		}
		if !e.less(least, i) {
			break
		}
		e.swap(i, least)
		i = least
	}
	return i > start
}

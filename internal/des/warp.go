package des

import (
	"math"
	"slices"
)

// This file is the engine half of the steady-state fast-forward layer
// (DESIGN.md §12): a canonical byte encoding of the pending-event set, the
// append helpers every package reuses for its own state fingerprint, and
// Warp, which translates the whole schedule forward in time after whole
// cycles have been extrapolated analytically.

// Canonical little-endian append helpers. All fast-forward fingerprints are
// built from these, so two encodings are byte-equal exactly when every
// encoded field is bit-equal (floats compare by their IEEE-754 bits, which
// is stricter than ==: it distinguishes -0 from +0 and never equates NaNs
// with themselves spuriously — fingerprints must never say "equal" for
// states == would treat differently).

// AppendU64 appends v in little-endian order.
func AppendU64(buf []byte, v uint64) []byte {
	return append(buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// AppendI64 appends v via its two's-complement bit pattern.
func AppendI64(buf []byte, v int64) []byte { return AppendU64(buf, uint64(v)) }

// AppendF64 appends the IEEE-754 bit pattern of v.
func AppendF64(buf []byte, v float64) []byte { return AppendU64(buf, math.Float64bits(v)) }

// AppendTime appends a simulated instant (or duration) bit pattern.
func AppendTime(buf []byte, t Time) []byte { return AppendU64(buf, uint64(t)) }

// AppendBool appends 1 or 0.
func AppendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// AppendStr appends a length-prefixed string.
func AppendStr(buf []byte, s string) []byte {
	buf = AppendU64(buf, uint64(len(s)))
	return append(buf, s...)
}

// EncodePending appends a canonical encoding of the pending-event set to buf
// and returns the extended slice. Events are encoded in authoritative firing
// order — sorted by (trueAt, trueSeq), the key dispatch actually uses, so
// stale heap positions and the monotone lane are invisible, exactly as they
// are in the firing order. Each event contributes its label, an identity tag
// resolved by the caller's tag callback (distinguishing same-label events,
// e.g. which running kernel a "gpu.finish" belongs to), and its firing
// instant relative to the current clock. Absolute times and raw sequence
// numbers are excluded: two boundaries one cycle apart must encode
// identically, and only relative times and relative order recur.
//
// Two equal encodings imply the same future dispatch sequence: the multiset
// of (label, tag, offset) triples matches and so does the relative order of
// same-instant events, while events scheduled after the snapshot draw fresh
// sequence numbers larger than every pending one in both worlds.
//
// The engine's state is untouched; scratch is retained for reuse.
func (e *Engine) EncodePending(buf []byte, tag func(label string, arg any) uint64) []byte {
	sc := e.encScratch[:0]
	for _, ev := range e.queue {
		if !ev.cancel {
			sc = append(sc, ev)
		}
	}
	for _, ev := range e.mono[e.monoHead:] {
		sc = append(sc, ev)
	}
	slices.SortFunc(sc, func(a, b *Event) int {
		if a.trueAt != b.trueAt {
			if a.trueAt < b.trueAt {
				return -1
			}
			return 1
		}
		if a.trueSeq < b.trueSeq {
			return -1
		}
		return 1
	})
	buf = AppendU64(buf, uint64(len(sc)))
	for _, ev := range sc {
		buf = AppendStr(buf, ev.label)
		buf = AppendU64(buf, tag(ev.label, ev.arg))
		buf = AppendTime(buf, ev.trueAt-e.now)
	}
	e.encScratch = sc
	return buf
}

// Warp advances the clock by delta and translates every pending event with
// it, preserving all relative offsets. The heap is untouched: adding one
// constant to every key preserves the heap order, the monotone lane stays
// nondecreasing, and a stale event's lower-bound heap position stays a lower
// bound. Sequence numbers are untouched, so pending events still order before
// anything scheduled after the warp — exactly as they would had the skipped
// interval been simulated.
func (e *Engine) Warp(delta Time) {
	e.now += delta
	for _, ev := range e.queue {
		ev.at += delta
		ev.trueAt += delta
	}
	for _, ev := range e.mono[e.monoHead:] {
		ev.at += delta
		ev.trueAt += delta
	}
}

package des

import "testing"

// TestResetReplaysFreshEngine: after Reset, the same schedule calls must
// produce the same (time, order) firing sequence a fresh engine would, and
// the clock/sequence state must match a fresh engine exactly.
func TestResetReplaysFreshEngine(t *testing.T) {
	run := func(e *Engine) []Time {
		var fired []Time
		e.Schedule(3*Millisecond, "c", func(now Time) { fired = append(fired, now) })
		e.Schedule(Millisecond, "a", func(now Time) { fired = append(fired, now) })
		e.AfterFunc(2*Millisecond, "b", func(now Time) { fired = append(fired, now) })
		e.Run()
		return fired
	}

	fresh := NewEngine()
	want := run(fresh)

	reused := NewEngine()
	// Dirty the engine: fire some events, leave others pending.
	reused.AfterFunc(Millisecond, "stale", func(Time) {})
	reused.Run()
	reused.Schedule(5*Millisecond, "pending", func(Time) { t.Error("pre-reset event fired") })
	reused.Reset()

	if reused.Now() != 0 || reused.Pending() != 0 || reused.Fired() != 0 {
		t.Fatalf("reset engine not at epoch: now=%v pending=%d fired=%d",
			reused.Now(), reused.Pending(), reused.Fired())
	}
	got := run(reused)
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("fire %d at %v, want %v", i, got[i], want[i])
		}
	}
}

// TestResetRecyclesPendingEvents: events still queued at Reset must land on
// the free list (with their callbacks cleared) and be reused by the next
// schedule — the allocation-free reuse the run session depends on.
func TestResetRecyclesPendingEvents(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 4; i++ {
		e.Schedule(Time(i+1)*Millisecond, "x", func(Time) {})
	}
	e.Reset()
	if e.FreeEvents() != 4 {
		t.Fatalf("free list has %d events after Reset, want 4", e.FreeEvents())
	}
	e.Schedule(Millisecond, "y", func(Time) {})
	if e.FreeEvents() != 3 {
		t.Fatalf("schedule after Reset did not reuse the pool (%d free)", e.FreeEvents())
	}
}

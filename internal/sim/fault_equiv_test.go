package sim

import (
	"reflect"
	"strings"
	"testing"

	"sgprs/internal/fault"
	"sgprs/internal/memo"
	"sgprs/internal/metrics"
	"sgprs/internal/speedup"
)

// TestNilFaultsBitIdenticalScenarios is the fault-layer acceptance test: an
// empty fault.Config — which installs the injection hook, the degradation
// plumbing, and the collector's degraded accounting, but injects nothing —
// must reproduce the nil-Faults run byte for byte across both paper scenario
// grids, every variant, every task count. Any perturbation from the hook call
// sites, the effective-SM indirection, or the degraded-flag bookkeeping shows
// up here. Fast-forward is disabled on both sides because eligibility itself
// differs (fault runs never warp); that interaction is pinned separately by
// TestFaultRunsIneligibleForFastForward.
func TestNilFaultsBitIdenticalScenarios(t *testing.T) {
	counts := []int{4, 12, 24}
	const horizon = 2
	cache := memo.New()
	for _, scenario := range []int{1, 2} {
		np, err := ScenarioContexts(scenario)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range ScenarioVariants() {
			for _, n := range counts {
				cfg := RunConfig{
					Kind:               v.Kind,
					Name:               v.Name,
					ContextSMs:         ContextPool(np, v.OS, speedup.DeviceSMs),
					HorizonSec:         horizon,
					Seed:               1,
					NumTasks:           n,
					DisableFastForward: true,
				}
				want, err := RunWith(cfg, cache)
				if err != nil {
					t.Fatalf("scenario %d %s n=%d nil faults: %v", scenario, v.Name, n, err)
				}
				cfg.Faults = &fault.Config{}
				got, err := RunWith(cfg, cache)
				if err != nil {
					t.Fatalf("scenario %d %s n=%d empty faults: %v", scenario, v.Name, n, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("scenario %d %s n=%d: empty fault.Config differs from nil\nwant %+v\ngot  %+v",
						scenario, v.Name, n, want.Summary, got.Summary)
				}
			}
		}
	}
}

// faultedConfig is a configuration with every injector family active at once:
// heavy-tailed overruns, transient faults under the given recovery policy,
// and an SM-degradation window inside the measurement interval.
func faultedConfig(name, policy string) RunConfig {
	return RunConfig{
		Kind: KindSGPRS, Name: name, ContextSMs: []int{23, 23, 23},
		NumTasks: 16, HorizonSec: 2, Seed: 7,
		Faults: &fault.Config{
			Overrun:   &fault.Overrun{Model: fault.OverrunHeavyTail, Factor: 2},
			Transient: &fault.Transient{Prob: 0.05, Policy: policy, MaxRetries: 2},
			Degradation: []fault.Window{
				{StartSec: 0.8, EndSec: 1.4, SMs: 20},
			},
		},
	}
}

// TestFaultRunsDeterministic pins seeded reproducibility with every injector
// family active: two fresh runs of the same faulted configuration are
// bit-identical, and a session interleaving other faulted work in between
// reproduces the same result — fault state never leaks across Session.Run
// calls.
func TestFaultRunsDeterministic(t *testing.T) {
	for _, policy := range []string{"retry", "skip-job", "kill-chain"} {
		cfg := faultedConfig("det-"+policy, policy)
		want, err := RunWith(cfg, nil)
		if err != nil {
			t.Fatalf("%s first run: %v", policy, err)
		}
		again, err := RunWith(cfg, nil)
		if err != nil {
			t.Fatalf("%s second run: %v", policy, err)
		}
		if !reflect.DeepEqual(want, again) {
			t.Errorf("%s: two fresh runs differ\nwant %+v\ngot  %+v", policy, want.Summary, again.Summary)
		}
	}
	sess := NewSession(memo.New())
	cfg := faultedConfig("det-session", "retry")
	want, err := sess.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(faultedConfig("det-other", "kill-chain")); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("session rerun differs after interleaved faulted run\nwant %+v\ngot  %+v",
			want.Summary, got.Summary)
	}
}

// TestFaultRunsIneligibleForFastForward pins the eligibility interaction: a
// steady configuration that warps thousands of cycles when fault-free must
// fully simulate — zero fast-forward activity — as soon as any Faults config
// is present, even an empty one. Injection is event-driven and seeded; a warp
// would skip launches the injector was due to see.
func TestFaultRunsIneligibleForFastForward(t *testing.T) {
	cfg := RunConfig{
		Kind: KindSGPRS, Name: "ff-faults", ContextSMs: ContextPool(2, 1.5, speedup.DeviceSMs),
		NumTasks: 6, HorizonSec: 8, Seed: 1, GPU: eligibleGPU(1),
	}
	clean, err := RunWith(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if clean.FastForward.CyclesSkipped == 0 {
		t.Fatal("reference run never fast-forwarded; the test exercises nothing")
	}
	cfg.Faults = &fault.Config{}
	faulted, err := RunWith(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.FastForward != (metrics.FFStats{}) {
		t.Errorf("fault run engaged fast-forward: %+v", faulted.FastForward)
	}
}

// TestBatchPathRejectsFaults pins that the retained-jobs batch path refuses
// fault configs instead of silently ignoring them — injection is wired only
// through the streaming session.
func TestBatchPathRejectsFaults(t *testing.T) {
	cfg := faultedConfig("batch-faults", "retry")
	_, err := runBatch(cfg, nil)
	if err == nil {
		t.Fatal("runBatch accepted a fault config")
	}
	if !strings.Contains(err.Error(), "streaming") {
		t.Errorf("error does not point at the streaming path: %v", err)
	}
}

// TestFaultInjectionActivity guards the equivalence tests against vacuity:
// each injector family, under each recovery policy, must actually fire and
// leave its fingerprint in the summary's fault accounting.
func TestFaultInjectionActivity(t *testing.T) {
	clean := faultedConfig("clean", "retry")
	clean.Faults = nil
	base, err := RunWith(clean, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []string{"retry", "skip-job", "kill-chain"} {
		res, err := RunWith(faultedConfig("act-"+policy, policy), nil)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		f := res.Summary.Faults
		if f.Overruns == 0 || f.OverrunMassMS <= 0 {
			t.Errorf("%s: no overruns injected: %+v", policy, f)
		}
		if f.TransientFaults == 0 {
			t.Errorf("%s: no transient faults injected: %+v", policy, f)
		}
		if f.DegradedReleased == 0 {
			t.Errorf("%s: degradation window saw no releases: %+v", policy, f)
		}
		if f.DegradedDMR < 0 || f.DegradedDMR > 1 {
			t.Errorf("%s: degraded DMR %v outside [0, 1]", policy, f.DegradedDMR)
		}
		switch policy {
		case "retry":
			if f.Retries == 0 || f.Recoveries == 0 {
				t.Errorf("retry: no retried or recovered jobs: %+v", f)
			}
		case "skip-job":
			if f.SkippedJobs == 0 {
				t.Errorf("skip-job: no skipped jobs: %+v", f)
			}
			if res.Summary.Dropped == 0 {
				t.Errorf("skip-job: skipped jobs not accounted as dropped: %+v", res.Summary)
			}
		case "kill-chain":
			if f.KilledChains == 0 {
				t.Errorf("kill-chain: no killed chains: %+v", f)
			}
		}
		// Injected faults must hurt, and only through the fault accounting:
		// a faulted run completing at least as much work as its clean twin
		// would mean injection is cosmetic.
		if res.Summary.Missed+res.Summary.Dropped <= base.Summary.Missed+base.Summary.Dropped {
			t.Errorf("%s: faults cost nothing (missed+dropped %d vs clean %d)",
				policy, res.Summary.Missed+res.Summary.Dropped, base.Summary.Missed+base.Summary.Dropped)
		}
	}
}

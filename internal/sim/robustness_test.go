package sim

import (
	"reflect"
	"testing"
)

// TestReleaseJitterStillSchedulable: sporadic releases at light load must
// not cause misses — the virtual-deadline machinery is anchored to actual
// release instants, not nominal periods.
func TestReleaseJitterStillSchedulable(t *testing.T) {
	res, err := Run(RunConfig{
		Kind:            KindSGPRS,
		ContextSMs:      []int{34, 34},
		NumTasks:        8,
		ReleaseJitterMS: 10,
		HorizonSec:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Missed != 0 {
		t.Errorf("jittered light load missed %d deadlines", res.Summary.Missed)
	}
	// Jitter spreads releases, so FPS stays near offered.
	if res.Summary.TotalFPS < 220 || res.Summary.TotalFPS > 250 {
		t.Errorf("fps = %v, want ~240", res.Summary.TotalFPS)
	}
}

// TestWorkVariationDegradesGracefully: WCET overruns the profile never saw
// must raise the miss rate smoothly near saturation, not collapse throughput
// — the flow-control discipline bounds the damage.
func TestWorkVariationDegradesGracefully(t *testing.T) {
	run := func(variation float64) (fps, dmr float64) {
		res, err := Run(RunConfig{
			Kind:          KindSGPRS,
			ContextSMs:    []int{34, 34, 34},
			NumTasks:      24,
			WorkVariation: variation,
			HorizonSec:    4,
			Seed:          3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.TotalFPS, res.Summary.DMR
	}
	fps0, dmr0 := run(0)
	fps3, dmr3 := run(0.3)
	if dmr3 <= dmr0 {
		t.Errorf("30%% execution variation should raise DMR: %v vs %v", dmr3, dmr0)
	}
	if dmr3 > 0.5 {
		t.Errorf("DMR under overruns = %v, want graceful (<0.5)", dmr3)
	}
	// Throughput must not collapse: the scheduler sheds, it does not stall.
	if fps3 < 0.7*fps0 {
		t.Errorf("fps collapsed under variation: %v vs %v", fps3, fps0)
	}
}

// TestWorkVariationDeterministic: the injected overruns are seeded, so runs
// replay exactly.
func TestWorkVariationDeterministic(t *testing.T) {
	cfg := RunConfig{
		Kind:          KindSGPRS,
		ContextSMs:    []int{51, 51},
		NumTasks:      20,
		WorkVariation: 0.2,
		HorizonSec:    2,
		Seed:          11,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Summary, b.Summary) {
		t.Errorf("seeded variation diverged:\n%+v\n%+v", a.Summary, b.Summary)
	}
	cfg.Seed = 12
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(c.Summary, a.Summary) {
		t.Error("different seeds produced identical varied runs")
	}
}

// TestNaiveSuffersMoreFromVariation: without per-frame flow control, the
// naive baseline amplifies overruns into cascading misses much faster than
// SGPRS at the same load.
func TestNaiveSuffersMoreFromVariation(t *testing.T) {
	run := func(kind Kind, pool []int) float64 {
		res, err := Run(RunConfig{
			Kind:          kind,
			ContextSMs:    pool,
			NumTasks:      16,
			WorkVariation: 0.35,
			HorizonSec:    4,
			Seed:          5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.DMR
	}
	naiveDMR := run(KindNaive, []int{34, 34})
	sgprsDMR := run(KindSGPRS, []int{34, 34})
	if sgprsDMR >= naiveDMR {
		t.Errorf("SGPRS DMR %v should beat naive %v under overruns", sgprsDMR, naiveDMR)
	}
}

// TestEnergyAccountingInResults: energy fields are populated and scale with
// load.
func TestEnergyAccountingInResults(t *testing.T) {
	run := func(n int) Result {
		res, err := Run(RunConfig{
			Kind:       KindSGPRS,
			ContextSMs: []int{34, 34},
			NumTasks:   n,
			HorizonSec: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	light, heavy := run(2), run(16)
	if light.EnergyJoules <= 0 || light.AvgPowerW <= 0 || light.FPSPerWatt <= 0 {
		t.Errorf("energy fields unpopulated: %+v", light)
	}
	if heavy.EnergyJoules <= light.EnergyJoules {
		t.Error("more load should cost more energy")
	}
	if heavy.FPSPerWatt <= light.FPSPerWatt {
		t.Error("amortising idle power should improve fps/W at higher load")
	}
}

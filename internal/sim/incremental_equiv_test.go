package sim

import (
	"reflect"
	"testing"

	"sgprs/internal/gpu"
)

// referenceGPU mirrors Normalize's default GPU derivation but forces the
// retained full-recompute reference engine (gpu.Config.DisableIncremental).
func referenceGPU(seed uint64) gpu.Config {
	g := gpu.DefaultConfig()
	g.Seed = seed + 1
	g.DisableIncremental = true
	return g
}

// TestIncrementalEngineBitIdenticalScenarios is the incremental rate
// engine's acceptance test (DESIGN.md §10): full scenario grids — every
// variant of both paper scenarios, swept across task counts spanning light
// load through past the pivot — must be byte-for-byte equal between the
// incremental engine and the retained full-recompute reference.
// reflect.DeepEqual over the metrics points covers every float bit of every
// summary.
func TestIncrementalEngineBitIdenticalScenarios(t *testing.T) {
	counts := []int{4, 12, 26}
	const horizon = 2
	for _, scenario := range []int{1, 2} {
		np, err := ScenarioContexts(scenario)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range ScenarioVariants() {
			base := RunConfig{
				Kind:       v.Kind,
				Name:       v.Name,
				ContextSMs: ContextPool(np, v.OS, 68),
				HorizonSec: horizon,
				Seed:       1,
				NumTasks:   1,
			}
			incremental, err := SweepSeriesWith(base, counts, nil)
			if err != nil {
				t.Fatalf("scenario %d %s incremental: %v", scenario, v.Name, err)
			}
			ref := base
			ref.GPU = referenceGPU(base.Seed)
			reference, err := SweepSeriesWith(ref, counts, nil)
			if err != nil {
				t.Fatalf("scenario %d %s reference: %v", scenario, v.Name, err)
			}
			if !reflect.DeepEqual(incremental, reference) {
				t.Errorf("scenario %d %s: incremental engine output differs from full-recompute reference", scenario, v.Name)
			}
		}
	}
}

// TestIncrementalEngineBitIdenticalStochastic covers the regimes the
// scenario grids miss: sporadic releases (jitter), WCET overruns (work
// variation), heavy over-subscription, and the naive baseline's fixed-cost
// kernels — each compared against the reference engine, full-result
// DeepEqual.
func TestIncrementalEngineBitIdenticalStochastic(t *testing.T) {
	cases := []struct {
		name string
		cfg  RunConfig
	}{
		{"jittered-oversubscribed", RunConfig{
			Kind: KindSGPRS, ContextSMs: []int{68, 68}, NumTasks: 20,
			HorizonSec: 2, ReleaseJitterMS: 2, WorkVariation: 0.2, Seed: 7,
		}},
		{"deep-oversubscription", RunConfig{
			Kind: KindSGPRS, ContextSMs: []int{68, 68, 68}, NumTasks: 30,
			HorizonSec: 2, Seed: 3,
		}},
		{"rigid-partitions", RunConfig{
			Kind: KindSGPRS, ContextSMs: []int{22, 22, 22}, NumTasks: 18,
			HorizonSec: 2, Stagger: true, Seed: 11,
		}},
		{"naive-jittered", RunConfig{
			Kind: KindNaive, ContextSMs: []int{34, 34}, NumTasks: 12,
			HorizonSec: 2, ReleaseJitterMS: 1, WorkVariation: 0.1, Seed: 5,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			incremental, err := RunWith(tc.cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			ref := tc.cfg
			ref.GPU = referenceGPU(tc.cfg.Seed)
			reference, err := RunWith(ref, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(incremental, reference) {
				t.Errorf("incremental engine output differs from full-recompute reference:\n inc: %+v\n ref: %+v", incremental, reference)
			}
		})
	}
}

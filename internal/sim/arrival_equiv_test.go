package sim

import (
	"reflect"
	"testing"

	"sgprs/internal/memo"
	"sgprs/internal/speedup"
	"sgprs/internal/workload"
)

// TestNilArrivalBitIdenticalScenarios is the arrival-layer acceptance test:
// an explicit Periodic{} arrival process must reproduce the legacy nil-
// arrival release path byte for byte across both paper scenario grids —
// every variant, every task count, every float bit. The process draws from
// the same forked RNG stream the legacy path used, so any divergence in
// draw order or instant arithmetic shows up here.
func TestNilArrivalBitIdenticalScenarios(t *testing.T) {
	counts := []int{4, 12, 24}
	const horizon = 2
	cache := memo.New()
	for _, scenario := range []int{1, 2} {
		np, err := ScenarioContexts(scenario)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range ScenarioVariants() {
			for _, n := range counts {
				cfg := RunConfig{
					Kind:       v.Kind,
					Name:       v.Name,
					ContextSMs: ContextPool(np, v.OS, speedup.DeviceSMs),
					HorizonSec: horizon,
					Seed:       1,
					NumTasks:   n,
				}
				want, err := RunWith(cfg, cache)
				if err != nil {
					t.Fatalf("scenario %d %s n=%d nil arrival: %v", scenario, v.Name, n, err)
				}
				cfg.Arrival = workload.Periodic{}
				got, err := RunWith(cfg, cache)
				if err != nil {
					t.Fatalf("scenario %d %s n=%d periodic arrival: %v", scenario, v.Name, n, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("scenario %d %s n=%d: Periodic{} differs from nil arrival\nwant %+v\ngot  %+v",
						scenario, v.Name, n, want.Summary, got.Summary)
				}
			}
		}
	}
}

// TestNilArrivalBitIdenticalJittered covers the stochastic corners: release
// jitter and work variation interleave draws on the same per-task RNG
// stream, so the Periodic process must draw jitter at exactly the legacy
// point in the stream — including the final beyond-horizon attempt.
func TestNilArrivalBitIdenticalJittered(t *testing.T) {
	cfgs := []RunConfig{
		{Kind: KindSGPRS, Name: "jittered", ContextSMs: []int{34, 34}, NumTasks: 12,
			ReleaseJitterMS: 3, WorkVariation: 0.2, HorizonSec: 2, Seed: 7},
		{Kind: KindSGPRS, Name: "staggered", ContextSMs: []int{23, 23, 23}, NumTasks: 26,
			Stagger: true, HorizonSec: 2, Seed: 3},
		{Kind: KindNaive, Name: "naive-jit", ContextSMs: []int{34, 34}, NumTasks: 20,
			ReleaseJitterMS: 2, HorizonSec: 2, Seed: 5},
	}
	for _, cfg := range cfgs {
		want, err := RunWith(cfg, nil)
		if err != nil {
			t.Fatalf("%s nil arrival: %v", cfg.Name, err)
		}
		cfg.Arrival = workload.Periodic{}
		got, err := RunWith(cfg, nil)
		if err != nil {
			t.Fatalf("%s periodic arrival: %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: Periodic{} differs from nil arrival\nwant %+v\ngot  %+v",
				cfg.Name, want.Summary, got.Summary)
		}
	}
}

// TestOpenLoopStreamingMatchesBatch extends the streaming-vs-batch identity
// to open-loop traffic: under Poisson overload with drops, an SLO, and
// backlog buildup, the Session path (streaming Collector, recycled jobs)
// must reproduce the batch path (retain all jobs, EvaluateSLO) byte for
// byte — the same invariant the closed-loop streaming tests pin.
func TestOpenLoopStreamingMatchesBatch(t *testing.T) {
	trace := workload.SyntheticTrace("equiv", 5, 90, 2, 6)
	cfgs := []RunConfig{
		{Kind: KindSGPRS, Name: "poisson-overload", ContextSMs: []int{23, 23, 23}, NumTasks: 12,
			Arrival: workload.Poisson{Rate: 50}, SLOMS: 40, HorizonSec: 2, Seed: 7},
		{Kind: KindNaive, Name: "naive-poisson", ContextSMs: []int{34, 34}, NumTasks: 8,
			Arrival: workload.Poisson{}, SLOMS: 33.4, HorizonSec: 2, Seed: 2},
		{Kind: KindSGPRS, Name: "bursty", ContextSMs: []int{34, 34}, NumTasks: 10,
			Arrival: workload.Bursty{OnSec: 0.3, OffSec: 0.3}, WorkVariation: 0.15, HorizonSec: 2, Seed: 4},
		{Kind: KindSGPRS, Name: "trace", ContextSMs: []int{34, 34}, NumTasks: 6,
			Arrival: workload.Trace{Data: trace}, SLOMS: 50, HorizonSec: 2, Seed: 9},
	}
	sess := NewSession(memo.New())
	for _, cfg := range cfgs {
		want, err := runBatch(cfg, nil)
		if err != nil {
			t.Fatalf("%s batch: %v", cfg.Name, err)
		}
		got, err := RunWith(cfg, nil)
		if err != nil {
			t.Fatalf("%s streaming: %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: streaming result differs from batch reference\nwant %+v\ngot  %+v",
				cfg.Name, want.Summary, got.Summary)
		}
		sessGot, err := sess.Run(cfg)
		if err != nil {
			t.Fatalf("%s session: %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(want, sessGot) {
			t.Errorf("%s: session result differs from batch reference\nwant %+v\ngot  %+v",
				cfg.Name, want.Summary, sessGot.Summary)
		}
	}
}

// TestOpenLoopExercisesOverloadMetrics guards the test above against
// vacuity: at least one configuration must actually drop jobs, build a
// backlog, and split completions across the SLO.
func TestOpenLoopExercisesOverloadMetrics(t *testing.T) {
	cfg := RunConfig{
		Kind: KindSGPRS, Name: "hot", ContextSMs: []int{23, 23, 23}, NumTasks: 16,
		Arrival: workload.Poisson{Rate: 60}, SLOMS: 33.4, HorizonSec: 2, Seed: 1,
	}
	res, err := RunWith(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.Dropped == 0 || s.DropRate == 0 {
		t.Errorf("overload run dropped nothing: %+v", s)
	}
	if s.QueueDepthMax == 0 || s.QueueDepthMean == 0 {
		t.Errorf("overload run shows no backlog: %+v", s)
	}
	if s.SLOHitRate <= 0 || s.SLOHitRate >= 1 {
		t.Errorf("SLO hit rate %v does not split completions", s.SLOHitRate)
	}
	if s.RespP999MS < s.RespP99MS || s.RespP99MS < s.RespP50MS {
		t.Errorf("quantiles out of order: p50=%v p99=%v p999=%v", s.RespP50MS, s.RespP99MS, s.RespP999MS)
	}
}

package sim

import "flag"

var probeFlag bool

func init() {
	flag.BoolVar(&probeFlag, "calibprobe", false, "print calibration probe series")
}

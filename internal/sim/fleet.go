package sim

import (
	"sgprs/internal/cluster"
	"sgprs/internal/des"
	"sgprs/internal/fault"
	"sgprs/internal/gpu"
	"sgprs/internal/metrics"
	"sgprs/internal/rt"
	"sgprs/internal/sched"
	"sgprs/internal/speedup"
	"sgprs/internal/workload"
)

// runFleet is Session.Run's multi-device tail (DESIGN.md §15): cfg.Devices
// identical devices on the one shared engine, each with its own scheduler
// instance attached to the full task set, behind a cluster dispatcher that
// owns placement, failover, and admission. Session.Run has already reset the
// engine, prepared s.dev (fleet position 0), built the task set, and
// profiled it; this picks up from there.
//
// Seeds: device i runs at cfg.GPU.Seed+i so the fleet's stochastic streams
// decorrelate; per-device fault injectors at faultSeed+i likewise; the
// dispatcher's reserved stream at cfg.Seed+4 (the run seed's next unclaimed
// offset after GPU +1, workload +2, faults +3). All derived streams fork
// with distinct salts, so overlapping bases cannot collide.
func (s *Session) runFleet(cfg RunConfig, model *speedup.Model, tasks []*rt.Task) (Result, error) {
	devs := make([]*gpu.Device, cfg.Devices)
	devs[0] = s.dev
	for i := 1; i < cfg.Devices; i++ {
		gi := cfg.GPU
		gi.Seed = cfg.GPU.Seed + uint64(i)
		if i-1 < len(s.fleetDevs) {
			if err := s.fleetDevs[i-1].Reset(gi); err != nil {
				return Result{}, err
			}
		} else {
			d, err := gpu.NewDevice(s.eng, model, gi)
			if err != nil {
				return Result{}, err
			}
			s.fleetDevs = append(s.fleetDevs, d)
		}
		devs[i] = s.fleetDevs[i-1]
		if cfg.Observer != nil {
			devs[i].SetObserver(cfg.Observer)
		}
	}

	members := make([]cluster.Member, cfg.Devices)
	for i, d := range devs {
		sch, err := buildScheduler(cfg)
		if err != nil {
			return Result{}, err
		}
		if err := sch.Attach(s.eng, d, tasks); err != nil {
			return Result{}, err
		}
		members[i] = cluster.Member{Dev: d, Sch: sch}
	}

	horizon := des.FromSeconds(cfg.HorizonSec)
	warmUp := des.FromSeconds(cfg.WarmUpSec)
	if s.collector == nil {
		s.collector = metrics.NewCollector(warmUp, horizon)
	} else {
		s.collector.Reset(warmUp, horizon)
	}
	s.collector.SetSLO(cfg.SLOMS)

	// The kernel-level fault families run per device: every member gets its
	// own injector (own forked streams, own device hook, its scheduler as
	// recovery handler). The degradation windows are fleet-wide — the same
	// config applies to every device — so only device 0's injector flips the
	// collector's degraded marker: the edges coincide across devices, and one
	// toggle per edge is the collector's contract.
	var injs []*fault.Injector
	var deviceFaults []fault.DeviceFault
	if cfg.Faults != nil {
		deviceFaults = cfg.Faults.DeviceFaults
		base := cfg.Faults.Seed
		if base == 0 {
			base = cfg.Seed + 3
		}
		for i, m := range members {
			handler, _ := m.Sch.(sched.FaultHandler)
			inj, err := fault.NewInjector(cfg.Faults, s.eng, m.Dev, handler, base+uint64(i))
			if err != nil {
				return Result{}, err
			}
			var marker fault.Marker
			if i == 0 {
				marker = s.collector
			}
			inj.Install(marker)
			injs = append(injs, inj)
		}
	}

	fleet, err := cluster.New(s.eng, cluster.Config{
		Placement:    cfg.Placement,
		Failover:     cfg.Failover,
		AdmitCeiling: cfg.AdmitCeiling,
		Seed:         cfg.Seed + 4,
		DeviceFaults: deviceFaults,
	}, members, tasks, horizon)
	if err != nil {
		return Result{}, err
	}
	fleet.Install(s.collector)

	gen := workload.NewGeneratorSeeded(s.eng, fleet, cfg.Seed+2)
	gen.SetSink(s.collector)
	gen.UsePool(&s.pool)
	gen.SetArrival(cfg.Arrival)
	gen.Start(tasks, horizon)
	// The fleet dispatcher is not a recognised steady-state scheduler, so
	// runToHorizon always takes the reference path here (fleet runs join the
	// fast-forward ineligibility conjunction); going through it keeps the
	// lockstep trace hooks working.
	ff := s.runToHorizon(cfg, fleet, gen, tasks, warmUp, horizon)

	sum := s.collector.Summary()
	for _, inj := range injs {
		st := inj.Stats()
		sum.Faults.Overruns += st.Overruns
		sum.Faults.OverrunMassMS += st.OverrunMassMS
		sum.Faults.TransientFaults += st.TransientFaults
		sum.Faults.Retries += st.Retries
		sum.Faults.Recoveries += st.Recoveries
		sum.Faults.SkippedJobs += st.SkippedJobs
		sum.Faults.KilledChains += st.KilledChains
	}
	// The collector filled the fleet-degraded attribution; everything else
	// in FleetStats lives in the dispatcher.
	fs := fleet.Stats()
	fs.FleetDegradedReleased = sum.Fleet.FleetDegradedReleased
	fs.FleetDegradedMissed = sum.Fleet.FleetDegradedMissed
	fs.FleetDegradedDMR = sum.Fleet.FleetDegradedDMR
	sum.Fleet = fs

	pm := gpu.DefaultPowerModel()
	res := Result{
		Name:        cfg.Name,
		Tasks:       cfg.NumTasks,
		Summary:     sum,
		FastForward: ff,
	}
	// Fleet-level rollups: utilization averages over the devices (each is
	// already a [0,1] mean over time), energy and power add up. Fixed
	// fleet-position summation order.
	var util, energy, power float64
	for _, d := range devs {
		util += d.Utilization()
		energy += d.EnergyJoules(pm)
		power += d.AveragePowerW(pm)
	}
	res.DeviceUtilization = util / float64(len(devs))
	res.EnergyJoules = energy
	res.AvgPowerW = power
	if res.AvgPowerW > 0 {
		res.FPSPerWatt = sum.TotalFPS / res.AvgPowerW
	}
	return res, nil
}

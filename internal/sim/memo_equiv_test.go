package sim

import (
	"reflect"
	"testing"

	"sgprs/internal/memo"
)

// TestCachedScenarioBitIdentical is the offline-cache acceptance test: a
// fully cached scenario regeneration (fresh cache populated during the run,
// then a second pass served entirely from hits) must be byte-for-byte equal
// to the uncached reference path, for both paper scenarios. All comparisons
// are reflect.DeepEqual over the full ScenarioRun, so every float bit of
// every metric participates.
func TestCachedScenarioBitIdentical(t *testing.T) {
	counts := []int{4, 12, 24}
	const horizon = 2
	for _, scenario := range []int{1, 2} {
		uncached, err := RunScenarioWith(scenario, counts, horizon, 1, nil)
		if err != nil {
			t.Fatalf("scenario %d uncached: %v", scenario, err)
		}
		cache := memo.New()
		cold, err := RunScenarioWith(scenario, counts, horizon, 1, cache)
		if err != nil {
			t.Fatalf("scenario %d cold cache: %v", scenario, err)
		}
		if !reflect.DeepEqual(uncached, cold) {
			t.Errorf("scenario %d: cold-cache output differs from uncached", scenario)
		}
		warm, err := RunScenarioWith(scenario, counts, horizon, 1, cache)
		if err != nil {
			t.Fatalf("scenario %d warm cache: %v", scenario, err)
		}
		if !reflect.DeepEqual(uncached, warm) {
			t.Errorf("scenario %d: warm-cache output differs from uncached", scenario)
		}
		st := cache.Stats()
		if st.ProfileMisses == 0 || st.GraphMisses == 0 {
			t.Errorf("scenario %d: cache was never populated (%v)", scenario, st)
		}
		// The warm pass and the intra-run dedup must actually hit: a
		// scenario is 4 variants × 3 counts with up to 24 identical
		// tasks each, so hits must dwarf misses.
		if st.ProfileHits <= st.ProfileMisses {
			t.Errorf("scenario %d: expected profile hits > misses, got %v", scenario, st)
		}
	}
}

// TestCachedRunBitIdentical pins single-run equality, including seed and
// GPU-config variations that must not be conflated by cache keying.
func TestCachedRunBitIdentical(t *testing.T) {
	base := RunConfig{
		Kind:       KindSGPRS,
		ContextSMs: []int{34, 34},
		NumTasks:   8,
		HorizonSec: 2,
	}
	cache := memo.New()
	for _, seed := range []uint64{1, 7} {
		cfg := base
		cfg.Seed = seed
		want, err := RunWith(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunWith(cfg, cache)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("seed %d: cached run differs from uncached", seed)
		}
	}
	// Two seeds, one task shape: the second seed must have been a pure
	// profile hit (seed is excluded from the profile key by design).
	if st := cache.Stats(); st.ProfileMisses != 1 {
		t.Errorf("expected exactly one profile miss across seeds, got %v", st)
	}
}

// TestNormalizeRejectsNegatives: negative quantities must be rejected, not
// silently defaulted like zeros are.
func TestNormalizeRejectsNegatives(t *testing.T) {
	mutations := map[string]func(*RunConfig){
		"fps":      func(c *RunConfig) { c.FPS = -30 },
		"stages":   func(c *RunConfig) { c.Stages = -1 },
		"warmup":   func(c *RunConfig) { c.WarmUpSec = -0.5 },
		"jitter":   func(c *RunConfig) { c.ReleaseJitterMS = -1 },
		"numtasks": func(c *RunConfig) { c.NumTasks = -4 },
	}
	for name, mutate := range mutations {
		cfg := RunConfig{Kind: KindSGPRS, ContextSMs: []int{34}, NumTasks: 1}
		mutate(&cfg)
		if err := cfg.Normalize(); err == nil {
			t.Errorf("%s: negative value accepted", name)
		}
	}
	// Zeros still default.
	cfg := RunConfig{Kind: KindSGPRS, ContextSMs: []int{34}, NumTasks: 1}
	if err := cfg.Normalize(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if cfg.FPS != 30 || cfg.Stages != 6 || cfg.WarmUpSec != 1 {
		t.Errorf("zero defaults changed: fps=%v stages=%d warmup=%v", cfg.FPS, cfg.Stages, cfg.WarmUpSec)
	}
}

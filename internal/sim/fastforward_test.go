package sim

import (
	"math"
	"reflect"
	"slices"
	"testing"

	"sgprs/internal/des"
	"sgprs/internal/gpu"
	"sgprs/internal/memo"
	"sgprs/internal/metrics"
	"sgprs/internal/speedup"
	"sgprs/internal/workload"
)

// eligibleGPU is the fast-forward-eligible device configuration: contention
// jitter zeroed (the only stochastic draw inside the device), everything else
// the calibrated default. The seed offset mirrors RunConfig.Normalize.
func eligibleGPU(seed uint64) gpu.Config {
	g := gpu.DefaultConfig()
	g.ContentionJitter = 0
	g.Seed = seed + 1
	return g
}

// TestFastForwardBitIdenticalScenarios is the fast-forward acceptance test:
// across both paper scenario grids — every variant, three task counts from
// linear ramp to deep overload — an eligible run with fast-forward enabled
// must reproduce the DisableFastForward reference byte for byte: every
// Summary float, quantile, counter, and device integral. Only the FFStats
// may differ (the reference never engages), so they are excluded explicitly.
func TestFastForwardBitIdenticalScenarios(t *testing.T) {
	counts := []int{2, 8, 26}
	const horizon = 6
	cache := memo.New()
	detected := false
	for _, scenario := range []int{1, 2} {
		np, err := ScenarioContexts(scenario)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range ScenarioVariants() {
			for _, n := range counts {
				cfg := RunConfig{
					Kind:       v.Kind,
					Name:       v.Name,
					ContextSMs: ContextPool(np, v.OS, speedup.DeviceSMs),
					HorizonSec: horizon,
					Seed:       1,
					NumTasks:   n,
					GPU:        eligibleGPU(1),
				}
				ref := cfg
				ref.DisableFastForward = true
				want, err := RunWith(ref, cache)
				if err != nil {
					t.Fatalf("scenario %d %s n=%d reference: %v", scenario, v.Name, n, err)
				}
				got, err := RunWith(cfg, cache)
				if err != nil {
					t.Fatalf("scenario %d %s n=%d fast-forward: %v", scenario, v.Name, n, err)
				}
				if got.FastForward.CyclesSkipped > 0 {
					detected = true
				}
				got.FastForward = metrics.FFStats{}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("scenario %d %s n=%d: fast-forward differs from full simulation\nwant %+v\ngot  %+v",
						scenario, v.Name, n, want.Summary, got.Summary)
				}
			}
		}
	}
	if !detected {
		t.Error("fast-forward never engaged on any eligible grid point")
	}
}

// TestFastForwardIneligibleZeroOverhead pins the eligibility gate: under the
// default device configuration (contention jitter on) and under stochastic
// workloads, the fast-forward layer must not hash a single boundary — the
// existing equivalence suites then cover those paths with literally zero new
// code in the loop.
func TestFastForwardIneligibleZeroOverhead(t *testing.T) {
	cfgs := []RunConfig{
		{Kind: KindSGPRS, Name: "default-gpu", ContextSMs: []int{34, 34}, NumTasks: 8,
			HorizonSec: 2, Seed: 1},
		{Kind: KindSGPRS, Name: "jittered", ContextSMs: []int{34, 34}, NumTasks: 8,
			ReleaseJitterMS: 3, HorizonSec: 2, Seed: 1, GPU: eligibleGPU(1)},
		{Kind: KindSGPRS, Name: "poisson", ContextSMs: []int{34, 34}, NumTasks: 8,
			Arrival: workload.Poisson{}, HorizonSec: 2, Seed: 1, GPU: eligibleGPU(1)},
		{Kind: KindNaive, Name: "work-var", ContextSMs: []int{34, 34}, NumTasks: 8,
			WorkVariation: 0.1, HorizonSec: 2, Seed: 1, GPU: eligibleGPU(1)},
	}
	for _, cfg := range cfgs {
		res, err := RunWith(cfg, nil)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if res.FastForward != (metrics.FFStats{}) {
			t.Errorf("%s: ineligible run engaged fast-forward: %+v", cfg.Name, res.FastForward)
		}
	}
}

// TestFastForwardLockstepCollectorState is the strongest equivalence check:
// it snapshots the collector's complete accumulated state — every counter,
// every response-time float, every backlog interval — at every release
// boundary of a fast-forwarded run and a fully simulated reference, and
// requires exact equality at every boundary both runs visit. The boundary
// right after the warp is the crucial one: there the fast-forwarded
// collector state is the product of Replay, the reference's of thousands of
// individually simulated events.
func TestFastForwardLockstepCollectorState(t *testing.T) {
	for _, kind := range []Kind{KindSGPRS, KindNaive} {
		cfg := RunConfig{
			Kind: kind, Name: "lockstep", ContextSMs: ContextPool(2, 1.5, speedup.DeviceSMs),
			NumTasks: 6, HorizonSec: 8, Seed: 1, GPU: eligibleGPU(1),
		}
		snapshots := func(cfg RunConfig) (map[des.Time]metrics.CollectorSnapshot, Result) {
			sess := NewSession(memo.New())
			snaps := map[des.Time]metrics.CollectorSnapshot{}
			sess.ffTrace = func(now des.Time) { snaps[now] = sess.collector.DebugSnapshot() }
			res, err := sess.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", cfg.Name, err)
			}
			return snaps, res
		}
		ref := cfg
		ref.DisableFastForward = true
		wantSnaps, _ := snapshots(ref)
		gotSnaps, res := snapshots(cfg)
		if res.FastForward.CyclesSkipped == 0 {
			t.Fatalf("kind=%v: fast-forward never engaged; lockstep test exercises nothing", kind)
		}
		if len(gotSnaps) >= len(wantSnaps) {
			t.Errorf("kind=%v: fast-forward visited %d boundaries, reference %d — nothing was skipped",
				kind, len(gotSnaps), len(wantSnaps))
		}
		compared := 0
		for at, got := range gotSnaps {
			want, ok := wantSnaps[at]
			if !ok {
				t.Errorf("kind=%v: fast-forward visited boundary %v the reference never saw", kind, at)
				continue
			}
			compared++
			if !snapshotsEqual(want, got) {
				t.Errorf("kind=%v: collector state diverges at boundary %v\nwant %+v\ngot  %+v",
					kind, at, want, got)
			}
		}
		if compared == 0 {
			t.Errorf("kind=%v: no common boundaries compared", kind)
		}
	}
}

// snapshotsEqual is bitwise equality over collector snapshots. Unfilled
// response slots hold NaN, which reflect.DeepEqual would declare unequal to
// itself; bit-pattern comparison is the equality the bit-identity invariant
// actually means.
func snapshotsEqual(a, b metrics.CollectorSnapshot) bool {
	if a.Released != b.Released || a.Completed != b.Completed ||
		a.CompletedReleased != b.CompletedReleased ||
		a.LateCompleted != b.LateCompleted || a.Dropped != b.Dropped {
		return false
	}
	if len(a.Resp) != len(b.Resp) {
		return false
	}
	for i := range a.Resp {
		if math.Float64bits(a.Resp[i]) != math.Float64bits(b.Resp[i]) {
			return false
		}
	}
	return slices.Equal(a.Starts, b.Starts) && slices.Equal(a.Ends, b.Ends)
}

// TestFastForwardCollisionSafety forces fingerprint hash collisions — a
// 2-bit hash makes nearly every boundary collide, and a constant hash makes
// all of them — and requires that the verify-on-match byte comparison
// rejects every false match: results stay bit-identical to full simulation
// and no extrapolation ever happens from unequal states. This is the
// property that makes the hash a pure accelerator, never a correctness
// input.
func TestFastForwardCollisionSafety(t *testing.T) {
	cfg := RunConfig{
		Kind: KindSGPRS, Name: "collide", ContextSMs: ContextPool(2, 1.5, speedup.DeviceSMs),
		NumTasks: 4, HorizonSec: 8, Seed: 1, GPU: eligibleGPU(1),
	}
	ref := cfg
	ref.DisableFastForward = true
	want, err := RunWith(ref, nil)
	if err != nil {
		t.Fatal(err)
	}
	hashes := map[string]func([]byte) uint64{
		"2-bit":    func(b []byte) uint64 { return ffHashDefault(b) & 3 },
		"constant": func([]byte) uint64 { return 0 },
	}
	for name, h := range hashes {
		sess := NewSession(nil)
		sess.ffHash = h
		got, err := sess.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.FastForward.HashCollisions == 0 {
			t.Errorf("%s hash produced no collisions; the test exercises nothing", name)
		}
		got.FastForward = metrics.FFStats{}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s hash: collision corrupted results\nwant %+v\ngot  %+v",
				name, want.Summary, got.Summary)
		}
	}
}

// TestSessionInterleavedFastForward extends the session-reuse suite: one
// Session alternating fast-forward-eligible runs with jittered and open-loop
// Poisson ones must reproduce fresh-session references for every run — the
// fast-forward scratch state (fingerprint arena, hash index, warp dedup set)
// must reset as cleanly as the engine and device do.
func TestSessionInterleavedFastForward(t *testing.T) {
	cfgs := []RunConfig{
		{Kind: KindSGPRS, Name: "eligible-1", ContextSMs: []int{34, 34}, NumTasks: 6,
			HorizonSec: 6, Seed: 1, GPU: eligibleGPU(1)},
		{Kind: KindSGPRS, Name: "jittered", ContextSMs: []int{34, 34}, NumTasks: 6,
			ReleaseJitterMS: 2, HorizonSec: 2, Seed: 1},
		{Kind: KindNaive, Name: "eligible-naive", ContextSMs: []int{34, 34}, NumTasks: 8,
			HorizonSec: 6, Seed: 1, GPU: eligibleGPU(1)},
		{Kind: KindSGPRS, Name: "poisson", ContextSMs: []int{23, 23, 23}, NumTasks: 8,
			Arrival: workload.Poisson{Rate: 45}, HorizonSec: 2, Seed: 2},
		{Kind: KindSGPRS, Name: "eligible-2", ContextSMs: []int{23, 23, 23}, NumTasks: 26,
			HorizonSec: 6, Seed: 1, GPU: eligibleGPU(1)},
	}
	cache := memo.New()
	sess := NewSession(cache)
	for _, cfg := range cfgs {
		want, err := NewSession(cache).Run(cfg)
		if err != nil {
			t.Fatalf("%s fresh session: %v", cfg.Name, err)
		}
		got, err := sess.Run(cfg)
		if err != nil {
			t.Fatalf("%s reused session: %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: reused session differs from fresh\nwant %+v\ngot  %+v",
				cfg.Name, want, got)
		}
	}
}

// Package sim wires workload, schedulers, GPU model, and metrics into
// runnable experiments, and provides the scenario/sweep drivers that
// regenerate the paper's figures.
package sim

import (
	"fmt"
	"math"
	"sync"

	"sgprs/internal/cluster"
	"sgprs/internal/core"
	"sgprs/internal/des"
	"sgprs/internal/dnn"
	"sgprs/internal/fault"
	"sgprs/internal/gpu"
	"sgprs/internal/memo"
	"sgprs/internal/metrics"
	"sgprs/internal/naive"
	"sgprs/internal/profile"
	"sgprs/internal/rt"
	"sgprs/internal/sched"
	"sgprs/internal/speedup"
	"sgprs/internal/workload"
)

// Kind selects the scheduler implementation.
type Kind int

// Scheduler kinds.
const (
	KindSGPRS Kind = iota
	KindNaive
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSGPRS:
		return "sgprs"
	case KindNaive:
		return "naive"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ReferenceLatencyMS is the calibrated full-device ResNet18 inference
// latency. It pins simulated time to the scale implied by the paper's
// saturation throughput (DESIGN.md §2).
const ReferenceLatencyMS = 1.40

// RunConfig describes one simulation run.
type RunConfig struct {
	Kind Kind
	Name string
	// ContextSMs is the context pool (SGPRS) or static partitioning
	// (naive).
	ContextSMs []int

	// Workload.
	NumTasks int
	FPS      float64
	Stages   int
	Stagger  bool
	// ReleaseJitterMS bounds uniform sporadic release jitter per job.
	ReleaseJitterMS float64
	// WorkVariation is the relative per-job execution-demand spread
	// (WCET-overrun injection); see workload.TaskSpec.
	WorkVariation float64
	// Arrival selects the release process driving every task (open-loop
	// traffic and trace replay; see workload.Arrival). Nil keeps the
	// closed-loop periodic releases of the paper, plus ReleaseJitterMS —
	// pinned bit-identical to the pre-arrival code path by the sim
	// arrival-equivalence tests.
	Arrival workload.Arrival
	// SLOMS is a response-time service-level objective, milliseconds;
	// when positive, Summary.SLOHitRate reports the fraction of released
	// jobs completing within it.
	SLOMS float64

	// Faults configures the fault-injection layer (DESIGN.md §13): WCET
	// overruns, transient kernel faults with recovery policies, and SM
	// degradation windows. Nil keeps today's fault-free dynamics — pinned
	// bit-identical by the sim fault-equivalence tests. Fault injection is
	// streaming-only (Session.Run); runBatch rejects it. A fault-injected
	// run is never eligible for steady-state fast-forward.
	Faults *fault.Config

	// Fleet (DESIGN.md §15): Devices > 1 runs the configuration on that many
	// identical devices behind a cluster dispatcher — one scheduler instance
	// per device, chains homed by Placement, device crashes (Faults'
	// DeviceFaults) survived under Failover with an optional AdmitCeiling
	// admission controller. Devices 0 or 1 is the single-device path, pinned
	// bit-identical to the pre-fleet code by the fleet-equivalence tests;
	// fleet runs are streaming-only and never fast-forward eligible.
	Devices int
	// Placement selects the chain-homing policy (fleet runs only).
	Placement cluster.Placement
	// Failover selects the device-loss policy (fleet runs only);
	// rt.FailoverDefault means migrate.
	Failover rt.FailoverPolicy
	// AdmitCeiling is the surviving-capacity fraction below which the fleet
	// sheds the lowest-priority chains' releases (0 disables; fleet only).
	AdmitCeiling float64

	// Horizon and warm-up, simulated seconds.
	HorizonSec, WarmUpSec float64

	Seed uint64

	// GPU overrides; zero value means gpu.DefaultConfig().
	GPU gpu.Config

	// SGPRS options (ablations).
	DisableMediumPromotion  bool
	DisableLateDrop         bool
	FlattenPriorities       bool
	AssignPolicy            core.AssignPolicy
	HighStreams, LowStreams int // zero means the paper's 2 and 2

	// Naive overrides; zero values mean naive.DefaultConfig().
	NaiveSyncMS, NaiveReconfigBaseMS, NaiveReconfigPerResMS float64

	// Observer, when non-nil, receives every kernel start/finish (e.g. a
	// trace.Recorder).
	Observer gpu.Observer

	// DisableFastForward forces full simulation of every cycle instead of
	// the steady-state fast-forward (DESIGN.md §12). Results are
	// bit-identical either way — the equivalence tests run both modes
	// against each other — so this exists as the retained reference those
	// tests compare to, mirroring gpu.Config.DisableIncremental.
	DisableFastForward bool
}

// Normalize fills defaults and validates. Zero values default; negative
// values for quantities that must be positive are rejected rather than
// defaulted — a negative FPS or stage count is always a caller bug, and
// letting it flow into the workload generator produces panics far from the
// mistake.
func (c *RunConfig) Normalize() error {
	if c.Name == "" {
		c.Name = c.Kind.String()
	}
	if len(c.ContextSMs) == 0 {
		return fmt.Errorf("sim: run %q has no contexts", c.Name)
	}
	if c.NumTasks <= 0 {
		return fmt.Errorf("sim: run %q needs at least one task", c.Name)
	}
	// NaN compares false against every bound, so the sign checks below
	// would wave NaN through; reject non-finite values first, with the
	// field named like every other rejection.
	for _, f := range []struct {
		field string
		v     float64
	}{
		{"FPS", c.FPS},
		{"release jitter", c.ReleaseJitterMS},
		{"work variation", c.WorkVariation},
		{"horizon", c.HorizonSec},
		{"warm-up", c.WarmUpSec},
		{"SLO", c.SLOMS},
		{"admission ceiling", c.AdmitCeiling},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("sim: run %q %s %v must be finite", c.Name, f.field, f.v)
		}
	}
	if c.FPS < 0 {
		return fmt.Errorf("sim: run %q FPS %v must be non-negative", c.Name, c.FPS)
	}
	if c.Stages < 0 {
		return fmt.Errorf("sim: run %q stage count %d must be non-negative", c.Name, c.Stages)
	}
	if c.WarmUpSec < 0 {
		return fmt.Errorf("sim: run %q warm-up %vs must be non-negative", c.Name, c.WarmUpSec)
	}
	if c.ReleaseJitterMS < 0 {
		return fmt.Errorf("sim: run %q release jitter %vms must be non-negative", c.Name, c.ReleaseJitterMS)
	}
	if c.WorkVariation < 0 {
		return fmt.Errorf("sim: run %q work variation %v must be non-negative", c.Name, c.WorkVariation)
	}
	if c.SLOMS < 0 {
		return fmt.Errorf("sim: run %q SLO %vms must be non-negative", c.Name, c.SLOMS)
	}
	if c.Arrival != nil {
		if err := c.Arrival.Validate(); err != nil {
			return fmt.Errorf("sim: run %q arrival %s: %w", c.Name, c.Arrival.Name(), err)
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("sim: run %q faults: %w", c.Name, err)
		}
	}
	if c.Devices < 0 {
		return fmt.Errorf("sim: run %q device count %d must be non-negative", c.Name, c.Devices)
	}
	if c.Devices <= 1 {
		// Fleet knobs on a single-device run are a config mistake, not a
		// no-op: reject rather than silently ignoring them, so the pinned
		// Devices≤1 path really is the zero-valued one.
		if c.Placement != 0 || c.Failover != 0 || c.AdmitCeiling != 0 {
			return fmt.Errorf("sim: run %q sets fleet options (placement/failover/admission ceiling) on a single device; set Devices > 1", c.Name)
		}
	} else {
		if c.Placement < cluster.PlaceBinPack || c.Placement > cluster.PlaceLoadSteal {
			return fmt.Errorf("sim: run %q unknown placement policy %d", c.Name, int(c.Placement))
		}
		if c.Failover < rt.FailoverDefault || c.Failover > rt.FailoverShed {
			return fmt.Errorf("sim: run %q unknown failover policy %d", c.Name, int(c.Failover))
		}
		if c.AdmitCeiling < 0 || c.AdmitCeiling > 1 {
			return fmt.Errorf("sim: run %q admission ceiling %v outside [0, 1]", c.Name, c.AdmitCeiling)
		}
	}
	if c.FPS == 0 {
		c.FPS = 30
	}
	if c.Stages == 0 {
		c.Stages = 6
	}
	if c.HorizonSec == 0 {
		c.HorizonSec = 10
	}
	if c.WarmUpSec == 0 {
		c.WarmUpSec = 1
	}
	if c.HorizonSec <= c.WarmUpSec {
		return fmt.Errorf("sim: run %q horizon %vs must exceed warm-up %vs", c.Name, c.HorizonSec, c.WarmUpSec)
	}
	if c.GPU.TotalSMs == 0 {
		g := gpu.DefaultConfig()
		g.Seed = c.Seed + 1
		c.GPU = g
	}
	// Fault windows are checked against the actual device configuration here
	// — after GPU defaulting, when the SM count is known — so an impossible
	// window fails fast as a config error instead of deep inside the run.
	if c.Faults != nil {
		for i, w := range c.Faults.Degradation {
			if w.SMs > c.GPU.TotalSMs {
				return fmt.Errorf("sim: run %q degradation window %d wants %d SMs, device has %d", c.Name, i, w.SMs, c.GPU.TotalSMs)
			}
		}
		if len(c.Faults.DeviceFaults) > 0 && c.Devices <= 1 {
			return fmt.Errorf("sim: run %q injects device faults on a single device; set Devices > 1", c.Name)
		}
		for i, df := range c.Faults.DeviceFaults {
			if df.Device >= c.Devices {
				return fmt.Errorf("sim: run %q device fault %d targets device %d, fleet has %d devices", c.Name, i, df.Device, c.Devices)
			}
		}
	}
	return nil
}

// Result is one run's outcome.
type Result struct {
	Name    string
	Tasks   int
	Summary metrics.Summary
	// DeviceUtilization is the mean effective-SM utilisation over the run.
	DeviceUtilization float64
	// EnergyJoules and AvgPowerW come from the device's linear power
	// model (gpu.DefaultPowerModel) over the whole horizon.
	EnergyJoules float64
	AvgPowerW    float64
	// FPSPerWatt is the run's efficiency: total FPS over average power.
	FPSPerWatt float64
	// FastForward reports the steady-state fast-forward layer's activity
	// (all-zero when it never engaged: ineligible workload, disabled, or
	// the batch reference path).
	FastForward metrics.FFStats
}

// ReferenceGraph builds the calibrated ResNet18 benchmark graph.
func ReferenceGraph(model *speedup.Model) *dnn.Graph {
	g := dnn.ResNet18(dnn.DefaultCostModel())
	dnn.Calibrate(g, model, float64(speedup.DeviceSMs), ReferenceLatencyMS)
	return g
}

// defaultModel returns the process-wide default speedup model. The model is
// immutable after construction and DefaultModel is deterministic, so one
// shared instance serves every run — and gives the offline cache a stable
// identity to key on.
var defaultModel = sync.OnceValue(speedup.DefaultModel)

// DefaultModel exposes the shared default speedup model. Callers that
// profile directly (cmd/sgprs-analyze) must use this instance — not a fresh
// speedup.DefaultModel() — for their measurements to share offline-cache
// entries with the run drivers, which key on model identity.
func DefaultModel() *speedup.Model { return defaultModel() }

// Run executes one simulation and returns its metrics. The offline phase
// (reference-graph calibration, WCET profiling) is served from the
// process-wide cache (memo.Default()); results are bit-identical to an
// uncached run (see memo's package comment and TestCachedRunBitIdentical).
func Run(cfg RunConfig) (Result, error) {
	return RunWith(cfg, memo.Default())
}

// RunWith is Run with an explicit offline-phase cache. A nil cache disables
// memoization entirely: the reference graph is rebuilt and every task
// profiled from scratch — the reference code path the cached one is tested
// against.
//
// Metrics stream through a metrics.Collector and jobs recycle through an
// rt.JobPool as the run progresses (via an ephemeral Session), so live
// memory is O(in-flight jobs) whatever the horizon. runBatch keeps the
// retain-everything/Evaluate reference path; the streaming-equivalence tests
// pin the two bit-identical.
func RunWith(cfg RunConfig, cache *memo.Cache) (Result, error) {
	return NewSession(cache).Run(cfg)
}

// runBatch is the post-hoc reference implementation of RunWith: every
// released job is retained and metrics.Evaluate scans them after the run.
// It allocates O(all jobs ever released) and exists as the semantic anchor
// the streaming path (Session.Run) is tested against — change the two
// together or the equivalence tests will say so.
func runBatch(cfg RunConfig, cache *memo.Cache) (Result, error) {
	if err := cfg.Normalize(); err != nil {
		return Result{}, err
	}
	if cfg.Faults != nil {
		// Fault injection needs the streaming collector (degraded-window
		// attribution happens at release time); the batch reference path
		// has no equivalent, so it refuses rather than silently dropping
		// the configuration.
		return Result{}, fmt.Errorf("sim: run %q: fault injection requires the streaming path", cfg.Name)
	}
	if cfg.Devices > 1 {
		// Fleet runs are likewise streaming-only: the dispatcher feeds the
		// collector's fleet-degraded attribution at release time.
		return Result{}, fmt.Errorf("sim: run %q: fleet runs require the streaming path", cfg.Name)
	}
	eng := des.NewEngine()
	model := defaultModel()

	dev, err := gpu.NewDevice(eng, model, cfg.GPU)
	if err != nil {
		return Result{}, err
	}
	if cfg.Observer != nil {
		dev.SetObserver(cfg.Observer)
	}

	var graph *dnn.Graph
	if cache != nil {
		key := memo.GraphKey{Model: model, Name: "resnet18-ref", SMs: speedup.DeviceSMs, TargetMS: ReferenceLatencyMS}
		graph = cache.Graph(key, func() *dnn.Graph { return ReferenceGraph(model) })
	} else {
		graph = ReferenceGraph(model)
	}
	specs := workload.Replicate(workload.Options{
		Count: cfg.NumTasks,
		Spec: workload.TaskSpec{
			Name:          "resnet18",
			Graph:         graph,
			Stages:        cfg.Stages,
			FPS:           cfg.FPS,
			ReleaseJitter: des.FromMillis(cfg.ReleaseJitterMS),
			WorkVariation: cfg.WorkVariation,
		},
		Stagger: cfg.Stagger,
	})
	tasks, err := workload.Build(specs)
	if err != nil {
		return Result{}, err
	}

	// Offline phase: profile stage WCETs in isolation on the smallest
	// context of the pool (conservative). With a cache, each distinct task
	// shape is measured once — here or in any earlier run — instead of
	// once per task.
	minSMs := cfg.ContextSMs[0]
	for _, s := range cfg.ContextSMs[1:] {
		if s < minSMs {
			minSMs = s
		}
	}
	prof := profile.New(model, cfg.GPU)
	if cache != nil {
		if err := cache.ProfileTasks(prof, tasks, minSMs); err != nil {
			return Result{}, err
		}
	} else {
		for _, t := range tasks {
			if err := prof.ProfileTask(t, minSMs); err != nil {
				return Result{}, err
			}
		}
	}

	s, err := buildScheduler(cfg)
	if err != nil {
		return Result{}, err
	}
	if err := s.Attach(eng, dev, tasks); err != nil {
		return Result{}, err
	}

	horizon := des.FromSeconds(cfg.HorizonSec)
	gen := workload.NewGeneratorSeeded(eng, s, cfg.Seed+2)
	gen.SetArrival(cfg.Arrival)
	gen.Start(tasks, horizon)
	eng.RunUntil(horizon)

	sum := metrics.EvaluateSLO(gen.Jobs(), des.FromSeconds(cfg.WarmUpSec), horizon, cfg.SLOMS)
	pm := gpu.DefaultPowerModel()
	res := Result{
		Name:              cfg.Name,
		Tasks:             cfg.NumTasks,
		Summary:           sum,
		DeviceUtilization: dev.Utilization(),
		EnergyJoules:      dev.EnergyJoules(pm),
		AvgPowerW:         dev.AveragePowerW(pm),
	}
	if res.AvgPowerW > 0 {
		res.FPSPerWatt = sum.TotalFPS / res.AvgPowerW
	}
	return res, nil
}

func buildScheduler(cfg RunConfig) (sched.Scheduler, error) {
	switch cfg.Kind {
	case KindSGPRS:
		c := core.DefaultConfig(cfg.Name, cfg.ContextSMs)
		c.DisableMediumPromotion = cfg.DisableMediumPromotion
		c.DisableLateDrop = cfg.DisableLateDrop
		c.FlattenPriorities = cfg.FlattenPriorities
		c.AssignPolicy = cfg.AssignPolicy
		if cfg.HighStreams > 0 || cfg.LowStreams > 0 {
			c.HighStreams = cfg.HighStreams
			c.LowStreams = cfg.LowStreams
		}
		return core.New(c)
	case KindNaive:
		c := naive.DefaultConfig(cfg.Name, cfg.ContextSMs)
		if cfg.NaiveSyncMS > 0 {
			c.SyncOverheadMS = cfg.NaiveSyncMS
		}
		if cfg.NaiveReconfigBaseMS > 0 {
			c.ReconfigBaseMS = cfg.NaiveReconfigBaseMS
		}
		if cfg.NaiveReconfigPerResMS > 0 {
			c.ReconfigPerResidentMS = cfg.NaiveReconfigPerResMS
		}
		return naive.New(c)
	default:
		return nil, fmt.Errorf("sim: unknown scheduler kind %v", cfg.Kind)
	}
}

// ContextPool computes the per-context SM allocation for a pool of np
// contexts at over-subscription level os on a device of totalSMs: each
// context gets round(os·total/np), clamped to [1, total].
func ContextPool(np int, os float64, totalSMs int) []int {
	if np <= 0 || os <= 0 || totalSMs <= 0 {
		panic(fmt.Sprintf("sim: invalid pool np=%d os=%v sms=%d", np, os, totalSMs))
	}
	per := int(math.Round(os * float64(totalSMs) / float64(np)))
	if per < 1 {
		per = 1
	}
	if per > totalSMs {
		per = totalSMs
	}
	out := make([]int, np)
	for i := range out {
		out[i] = per
	}
	return out
}

// Variant is one scheduler configuration of a scenario sweep.
type Variant struct {
	Kind Kind
	Name string
	OS   float64 // over-subscription level (SGPRS); 1.0 for naive
}

// ScenarioVariants returns the paper's four series per scenario: the naive
// baseline plus SGPRS at over-subscription 1.0, 1.5, and 2.0.
func ScenarioVariants() []Variant {
	return []Variant{
		{Kind: KindNaive, Name: "naive", OS: 1.0},
		{Kind: KindSGPRS, Name: "sgprs-1.0x", OS: 1.0},
		{Kind: KindSGPRS, Name: "sgprs-1.5x", OS: 1.5},
		{Kind: KindSGPRS, Name: "sgprs-2.0x", OS: 2.0},
	}
}

// ScenarioContexts reports the context-pool size of a paper scenario:
// Scenario 1 has two contexts, Scenario 2 has three.
func ScenarioContexts(scenario int) (int, error) {
	switch scenario {
	case 1:
		return 2, nil
	case 2:
		return 3, nil
	default:
		return 0, fmt.Errorf("sim: unknown scenario %d", scenario)
	}
}

// SweepSeries runs one variant across the task counts and returns the
// figure series. The offline phase is served from the default cache.
func SweepSeries(base RunConfig, taskCounts []int) ([]metrics.Point, error) {
	return SweepSeriesWith(base, taskCounts, memo.Default())
}

// SweepSeriesWith is SweepSeries with an explicit offline-phase cache (nil
// disables memoization). The whole sweep shares one Session, so engine,
// device, job pool, and task structures are reused across points.
func SweepSeriesWith(base RunConfig, taskCounts []int, cache *memo.Cache) ([]metrics.Point, error) {
	return sweepSeriesOn(NewSession(cache), base, taskCounts)
}

// sweepSeriesOn runs one variant's sweep on an existing session.
func sweepSeriesOn(sess *Session, base RunConfig, taskCounts []int) ([]metrics.Point, error) {
	series := make([]metrics.Point, 0, len(taskCounts))
	for _, n := range taskCounts {
		cfg := base
		cfg.NumTasks = n
		res, err := sess.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("sim: sweep %s n=%d: %w", base.Name, n, err)
		}
		series = append(series, metrics.Point{Tasks: n, Summary: res.Summary, FastForward: res.FastForward})
	}
	return series, nil
}

// ScenarioRun is a full figure-3 or figure-4 dataset: every variant swept
// over the task counts.
type ScenarioRun struct {
	Scenario   int
	TaskCounts []int
	Series     map[string][]metrics.Point // variant name → series
	Order      []string                   // display order
}

// RunScenario regenerates one paper scenario (Figures 3 or 4). The offline
// phase is served from the default cache.
func RunScenario(scenario int, taskCounts []int, horizonSec float64, seed uint64) (*ScenarioRun, error) {
	return RunScenarioWith(scenario, taskCounts, horizonSec, seed, memo.Default())
}

// RunScenarioWith is RunScenario with an explicit offline-phase cache (nil
// disables memoization). One Session carries the entire variant × task-count
// grid.
func RunScenarioWith(scenario int, taskCounts []int, horizonSec float64, seed uint64, cache *memo.Cache) (*ScenarioRun, error) {
	np, err := ScenarioContexts(scenario)
	if err != nil {
		return nil, err
	}
	out := &ScenarioRun{
		Scenario:   scenario,
		TaskCounts: taskCounts,
		Series:     map[string][]metrics.Point{},
	}
	sess := NewSession(cache)
	for _, v := range ScenarioVariants() {
		base := RunConfig{
			Kind:       v.Kind,
			Name:       v.Name,
			ContextSMs: ContextPool(np, v.OS, speedup.DeviceSMs),
			HorizonSec: horizonSec,
			Seed:       seed,
			NumTasks:   1, // overwritten by the sweep
		}
		series, err := sweepSeriesOn(sess, base, taskCounts)
		if err != nil {
			return nil, err
		}
		out.Series[v.Name] = series
		out.Order = append(out.Order, v.Name)
	}
	return out, nil
}

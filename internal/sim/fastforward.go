package sim

import (
	"bytes"

	"sgprs/internal/core"
	"sgprs/internal/des"
	"sgprs/internal/metrics"
	"sgprs/internal/naive"
	"sgprs/internal/rt"
	"sgprs/internal/sched"
	"sgprs/internal/workload"
)

// Steady-state fast-forward (DESIGN.md §12). A deterministic run of a
// closed-loop periodic workload is a fixed orbit: once the full dynamic state
// at one release boundary recurs at a later boundary, every subsequent cycle
// repeats the first one exactly, shifted in time. The driver below detects
// the recurrence by fingerprinting the complete dynamic state at each
// boundary, measures one cycle's metric deltas, extrapolates them over the
// remaining whole cycles analytically, warps the clock past them, and
// simulates only the horizon tail — producing results bit-identical to full
// simulation (the DisableFastForward reference mode and the equivalence
// tests pin this).
//
// Eligibility is strict: any stochastic draw that reaches the dynamics
// (release jitter, work variation, non-periodic arrivals, contention jitter)
// makes states non-recurring and the run falls back to plain simulation, as
// does any failure to detect a cycle within the probe caps. Falling back is
// always correct — fast-forward is an optimisation, never a semantic.

const (
	// ffMaxBoundaries caps how many release boundaries are fingerprinted
	// before giving up on detection (a genuinely aperiodic float orbit).
	ffMaxBoundaries = 512
	// ffMaxArenaBytes caps the retained fingerprint bytes.
	ffMaxArenaBytes = 4 << 20
)

// ffHashDefault is FNV-1a 64. The collision-safety tests swap in a truncated
// hash via Session.ffHash to force collisions and prove the verify-on-match
// byte comparison never lets one through.
func ffHashDefault(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// ffEntry locates one stored fingerprint in the session's arena.
type ffEntry struct {
	off, n int
	at     des.Time
}

// ffRun carries one run's fast-forward state.
type ffRun struct {
	s        *Session
	gen      *workload.Generator
	coreSch  *core.Scheduler
	naiveSch *naive.Scheduler
	period   des.Time
	horizon  des.Time
	// now is the boundary being encoded; job instants and frame indices are
	// encoded relative to it (and to nextIdx) so that recurring states match
	// bytewise.
	now     des.Time
	nextIdx map[int]int
	stats   metrics.FFStats
}

// runToHorizon drives the online phase from the post-Start state to the
// horizon, fast-forwarding when the run is eligible and a cycle is found.
// It replaces the plain RunUntil(horizon) in Session.Run.
func (s *Session) runToHorizon(cfg RunConfig, scheduler sched.Scheduler, gen *workload.Generator, tasks []*rt.Task, warmUp, horizon des.Time) metrics.FFStats {
	r := ffRun{s: s, gen: gen, horizon: horizon}
	period, steady := gen.SteadyPeriod()
	r.period = period
	eligible := steady &&
		!cfg.DisableFastForward &&
		cfg.Observer == nil &&
		cfg.Faults == nil &&
		cfg.Devices <= 1 &&
		cfg.GPU.ContentionJitter == 0
	switch v := scheduler.(type) {
	case *core.Scheduler:
		r.coreSch = v
	case *naive.Scheduler:
		r.naiveSch = v
	default:
		eligible = false
	}
	if !eligible {
		// Reference path. With a lockstep trace installed, run it chunked
		// at the same boundaries the fast-forward path visits — chunked
		// RunUntil is equivalent to one call, so the trace changes nothing.
		if s.ffTrace != nil && steady {
			r.chunkUntil(horizon)
		}
		s.eng.RunUntil(horizon)
		return r.stats
	}

	var maxRelDl des.Time
	for _, t := range tasks {
		if t.Deadline > maxRelDl {
			maxRelDl = t.Deadline
		}
	}

	hash := s.ffHash
	if hash == nil {
		hash = ffHashDefault
	}
	if r.nextIdx == nil {
		r.nextIdx = map[int]int{}
	}
	s.ffArena = s.ffArena[:0]
	s.ffEnts = s.ffEnts[:0]
	if s.ffHashes == nil {
		s.ffHashes = map[uint64]int{}
	} else {
		clear(s.ffHashes)
	}

	// First boundary: the smallest period multiple at or past the warm-up —
	// never extrapolate into the warm-up window.
	b := des.Time((int64(warmUp) + int64(period) - 1) / int64(period) * int64(period))
	for ; b < horizon; b += period {
		s.eng.RunUntil(b)
		if s.ffTrace != nil {
			s.ffTrace(b)
		}
		if len(s.ffEnts) >= ffMaxBoundaries {
			break
		}
		fp := r.fingerprint(b)
		r.stats.BoundariesHashed++
		h := hash(fp)
		prev, seen := s.ffHashes[h]
		if !seen {
			if len(s.ffArena)+len(fp) > ffMaxArenaBytes {
				break
			}
			s.ffHashes[h] = len(s.ffEnts)
			s.ffEnts = append(s.ffEnts, ffEntry{off: len(s.ffArena), n: len(fp), at: b})
			s.ffArena = append(s.ffArena, fp...)
			continue
		}
		ent := s.ffEnts[prev]
		if !bytes.Equal(fp, s.ffArena[ent.off:ent.off+ent.n]) {
			// Hash collision between genuinely different states: the
			// verify-on-match comparison catches it and the run continues
			// as plain simulation of this boundary.
			r.stats.HashCollisions++
			continue
		}
		// Confirmed recurrence: the state at b equals the state at ent.at,
		// so the run cycles with period D from here on.
		r.stats.CyclesDetected++
		D := b - ent.at
		// Extrapolation guard: every in-flight job must have been released
		// inside the verified periodic window (age < D) and past warm-up —
		// otherwise its collector slots would not translate uniformly.
		// Recurrence makes the in-flight age profile recur too, so if this
		// fails now it fails at every match of this orbit; plain simulation
		// of the remaining horizon is the correct fallback either way.
		if s.collector.MinOpenRelease() <= ent.at {
			continue
		}
		t3 := b + D
		// k whole cycles beyond the measurement cycle can be skipped while
		// every extrapolated release keeps its deadline strictly inside the
		// horizon — the in-window rule full simulation would apply.
		margin := int64(horizon) - int64(t3) - int64(maxRelDl)
		if margin <= int64(D) {
			break // steady state known, but nothing left worth skipping
		}
		k := int((margin - 1) / int64(D))
		// Measure one full cycle (b, t3], recording every metric write and
		// accounting operand.
		s.collector.BeginRecording()
		s.dev.BeginRecording()
		s.eng.RunUntil(t3)
		if s.ffTrace != nil {
			s.ffTrace(t3)
		}
		completedDelta := s.dev.EndRecording()
		s.collector.EndRecording()
		// Defensive re-verification: determinism guarantees the state at t3
		// matches the stored fingerprint; anything else means the
		// fingerprint missed real state, and extrapolating would corrupt
		// results. Fall back to plain simulation.
		if !bytes.Equal(r.fingerprint(t3), s.ffArena[ent.off:ent.off+ent.n]) {
			r.stats.HashCollisions++
			break
		}
		delta := des.Time(int64(D) * int64(k))
		s.collector.Replay(k, D)
		s.dev.ReplayCycles(k, completedDelta)
		r.warpJobs(delta, k)
		gen.Warp(delta, k*int(int64(D)/int64(period)))
		s.eng.Warp(delta)
		s.dev.Warp(delta)
		r.stats.CyclesSkipped += uint64(k)
		if s.ffTrace != nil {
			s.ffTrace(t3 + delta)
		}
		break
	}
	if s.ffTrace != nil {
		r.chunkUntil(horizon)
	}
	s.eng.RunUntil(horizon)
	return r.stats
}

// chunkUntil advances to the horizon boundary by boundary, firing the
// lockstep trace at each one. Chunked RunUntil is equivalent to one call: the
// engine fires the same events in the same order either way.
func (r *ffRun) chunkUntil(horizon des.Time) {
	p := int64(r.period)
	for {
		now := int64(r.s.eng.Now())
		next := des.Time((now/p + 1) * p)
		if next >= horizon {
			return
		}
		r.s.eng.RunUntil(next)
		r.s.ffTrace(next)
	}
}

// fingerprint encodes the complete dynamic state at boundary now into the
// session's reused buffer: release-chain phase, pending engine events, the
// device, and the scheduler. All instants are relative to now and all frame
// indices relative to each chain's next index, so two boundaries one cycle
// apart encode identically.
func (r *ffRun) fingerprint(now des.Time) []byte {
	r.now = now
	clear(r.nextIdx)
	buf := r.s.ffBuf[:0]
	r.gen.ForEachChain(func(taskID, nextIdx int, last des.Time) {
		r.nextIdx[taskID] = nextIdx
		buf = des.AppendU64(buf, uint64(taskID))
		buf = des.AppendI64(buf, int64(last-now))
	})
	buf = r.s.eng.EncodePending(buf, r.eventTag)
	buf = r.s.dev.EncodeState(buf, now, r.argEnc)
	if r.coreSch != nil {
		buf = r.coreSch.EncodeState(buf, r.jobEnc)
	} else {
		buf = r.naiveSch.EncodeState(buf)
	}
	r.s.ffBuf = buf
	return buf
}

// eventTag names a pending engine event's payload: release chains by task,
// kernels by execution position. The device tag space is offset so the two
// can never alias under one label.
func (r *ffRun) eventTag(label string, arg any) uint64 {
	if t, ok := r.gen.EventTag(arg); ok {
		return t
	}
	if t, ok := r.s.dev.EventTag(arg); ok {
		return 1<<48 | t
	}
	return 0
}

// argEnc encodes a kernel's scheduler payload: the SGPRS core launches
// stages, the naive baseline whole jobs.
func (r *ffRun) argEnc(buf []byte, arg any) []byte {
	switch v := arg.(type) {
	case *rt.StageJob:
		buf = append(buf, 1)
		buf = r.jobEnc(buf, v.Job)
		return des.AppendU64(buf, uint64(v.Index))
	case *rt.Job:
		buf = append(buf, 2)
		return r.jobEnc(buf, v)
	default:
		return append(buf, 0)
	}
}

// jobEnc encodes one live job: identity (task, frame index relative to the
// chain), instants relative to the boundary, and per-stage progress.
// MetricsSlot and BacklogSlot are excluded — they index collector output
// arrays and never influence dynamics.
func (r *ffRun) jobEnc(buf []byte, j *rt.Job) []byte {
	buf = des.AppendU64(buf, uint64(j.Task.ID))
	buf = des.AppendI64(buf, int64(j.Index-r.nextIdx[j.Task.ID]))
	buf = des.AppendI64(buf, int64(j.Release-r.now))
	buf = des.AppendI64(buf, int64(j.Deadline-r.now))
	buf = des.AppendF64(buf, j.WorkScale)
	buf = des.AppendBool(buf, j.Done)
	buf = des.AppendBool(buf, j.Discarded)
	buf = des.AppendU64(buf, uint64(len(j.Stages)))
	for _, st := range j.Stages {
		buf = des.AppendI64(buf, int64(st.Deadline-r.now))
		buf = des.AppendU64(buf, uint64(st.Level))
		buf = appendFlaggedInstant(buf, st.Ready, st.ReadyAt, r.now)
		buf = appendFlaggedInstant(buf, st.Started, st.StartedAt, r.now)
		buf = appendFlaggedInstant(buf, st.Finished, st.FinishedAt, r.now)
	}
	return buf
}

// appendFlaggedInstant encodes a flag and, only when set, its instant — an
// unset instant is stale pool residue, not state.
func appendFlaggedInstant(buf []byte, set bool, at, now des.Time) []byte {
	buf = des.AppendBool(buf, set)
	if set {
		buf = des.AppendI64(buf, int64(at-now))
	}
	return buf
}

// warpJobs translates every live job k cycles forward: instants shift by
// delta and collector slots retarget to the recurrence's (Job.Index is left
// alone — it feeds only EDF tie-breaks, which compare jobs of equal age, and
// diagnostics labels). Live jobs are reachable through the scheduler's
// flow-control maps and queues and through kernels the device still holds;
// the two enumerations overlap, so visits deduplicate.
func (r *ffRun) warpJobs(delta des.Time, k int) {
	if r.s.ffJobs == nil {
		r.s.ffJobs = map[*rt.Job]bool{}
	} else {
		clear(r.s.ffJobs)
	}
	visit := func(j *rt.Job) {
		if j == nil || r.s.ffJobs[j] {
			return
		}
		r.s.ffJobs[j] = true
		j.Release += delta
		j.Deadline += delta
		r.s.collector.ShiftSlots(j, k)
		for _, st := range j.Stages {
			st.Deadline += delta
			if st.Ready {
				st.ReadyAt += delta
			}
			if st.Started {
				st.StartedAt += delta
			}
			if st.Finished {
				st.FinishedAt += delta
			}
		}
	}
	if r.coreSch != nil {
		r.coreSch.ForEachJob(visit)
	}
	r.s.dev.ForEachKernelArg(func(arg any) {
		switch v := arg.(type) {
		case *rt.StageJob:
			visit(v.Job)
		case *rt.Job:
			visit(v)
		}
	})
}

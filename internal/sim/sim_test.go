package sim

import (
	"math"
	"reflect"
	"testing"

	"sgprs/internal/metrics"
	"sgprs/internal/speedup"
)

func TestContextPool(t *testing.T) {
	cases := []struct {
		np   int
		os   float64
		want int
	}{
		{2, 1.0, 34}, // Scenario 1
		{2, 1.5, 51},
		{2, 2.0, 68},
		{3, 1.0, 23}, // Scenario 2
		{3, 1.5, 34},
		{3, 2.0, 45},
	}
	for _, c := range cases {
		pool := ContextPool(c.np, c.os, 68)
		if len(pool) != c.np {
			t.Fatalf("np=%d os=%v: pool size %d", c.np, c.os, len(pool))
		}
		for _, sms := range pool {
			if sms != c.want {
				t.Errorf("np=%d os=%v: %d SMs per context, want %d", c.np, c.os, sms, c.want)
			}
		}
	}
	// Clamping.
	if got := ContextPool(1, 5.0, 68); got[0] != 68 {
		t.Errorf("over-clamp = %v", got)
	}
	if got := ContextPool(200, 0.1, 68); got[0] != 1 {
		t.Errorf("under-clamp = %v", got)
	}
}

func TestContextPoolPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { ContextPool(0, 1, 68) },
		func() { ContextPool(2, 0, 68) },
		func() { ContextPool(2, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestScenarioContexts(t *testing.T) {
	if np, err := ScenarioContexts(1); err != nil || np != 2 {
		t.Errorf("scenario 1 = %d, %v", np, err)
	}
	if np, err := ScenarioContexts(2); err != nil || np != 3 {
		t.Errorf("scenario 2 = %d, %v", np, err)
	}
	if _, err := ScenarioContexts(3); err == nil {
		t.Error("scenario 3 accepted")
	}
}

func TestScenarioVariants(t *testing.T) {
	vs := ScenarioVariants()
	if len(vs) != 4 {
		t.Fatalf("variants = %d", len(vs))
	}
	if vs[0].Kind != KindNaive || vs[0].OS != 1.0 {
		t.Errorf("first variant = %+v, want naive@1.0", vs[0])
	}
	oss := []float64{1.0, 1.5, 2.0}
	for i, v := range vs[1:] {
		if v.Kind != KindSGPRS || v.OS != oss[i] {
			t.Errorf("variant %d = %+v", i+1, v)
		}
	}
}

func TestReferenceGraphCalibration(t *testing.T) {
	m := speedup.DefaultModel()
	g := ReferenceGraph(m)
	lat := g.LatencyMS(m, speedup.DeviceSMs)
	if math.Abs(lat-ReferenceLatencyMS) > 1e-9 {
		t.Errorf("reference latency = %v, want %v", lat, ReferenceLatencyMS)
	}
}

func TestNormalizeDefaults(t *testing.T) {
	cfg := RunConfig{Kind: KindSGPRS, ContextSMs: []int{34, 34}, NumTasks: 4}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "sgprs" || cfg.FPS != 30 || cfg.Stages != 6 ||
		cfg.HorizonSec != 10 || cfg.WarmUpSec != 1 {
		t.Errorf("defaults: %+v", cfg)
	}
	if cfg.GPU.TotalSMs != 68 {
		t.Errorf("GPU config not defaulted: %+v", cfg.GPU)
	}
}

func TestNormalizeErrors(t *testing.T) {
	cases := []RunConfig{
		{Kind: KindSGPRS, NumTasks: 1},                                                       // no contexts
		{Kind: KindSGPRS, ContextSMs: []int{34}},                                             // no tasks
		{Kind: KindSGPRS, ContextSMs: []int{34}, NumTasks: 1, HorizonSec: 0.5, WarmUpSec: 1}, // bad window
	}
	for i, cfg := range cases {
		if err := cfg.Normalize(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRunSingleTask(t *testing.T) {
	res, err := Run(RunConfig{
		Kind:       KindSGPRS,
		ContextSMs: []int{34, 34},
		NumTasks:   1,
		HorizonSec: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One 30-fps task, no contention: 30 fps, zero misses.
	if math.Abs(res.Summary.TotalFPS-30) > 1.5 {
		t.Errorf("fps = %v, want ~30", res.Summary.TotalFPS)
	}
	if res.Summary.Missed != 0 {
		t.Errorf("missed = %d", res.Summary.Missed)
	}
	if res.DeviceUtilization <= 0 || res.DeviceUtilization > 1 {
		t.Errorf("utilization = %v", res.DeviceUtilization)
	}
}

func TestRunNaive(t *testing.T) {
	res, err := Run(RunConfig{
		Kind:       KindNaive,
		ContextSMs: []int{34, 34},
		NumTasks:   4,
		HorizonSec: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Summary.TotalFPS-120) > 3 {
		t.Errorf("fps = %v, want ~120", res.Summary.TotalFPS)
	}
	if res.Summary.Missed != 0 {
		t.Errorf("missed = %d at light load", res.Summary.Missed)
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := RunConfig{
		Kind:       KindSGPRS,
		ContextSMs: []int{51, 51},
		NumTasks:   26, // over-subscribed and contended: jitter active
		HorizonSec: 2,
		Seed:       9,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Summary, b.Summary) {
		t.Errorf("same seed diverged:\n%+v\n%+v", a.Summary, b.Summary)
	}
}

func TestSweepSeries(t *testing.T) {
	base := RunConfig{
		Kind:       KindSGPRS,
		Name:       "sgprs",
		ContextSMs: []int{34, 34},
		NumTasks:   1,
		HorizonSec: 2,
	}
	series, err := SweepSeries(base, []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d points", len(series))
	}
	// FPS grows linearly with task count below saturation.
	for i, p := range series {
		want := float64((i + 1) * 2 * 30)
		if math.Abs(p.Summary.TotalFPS-want) > 3 {
			t.Errorf("n=%d fps = %v, want ~%v", p.Tasks, p.Summary.TotalFPS, want)
		}
	}
}

func TestRunScenarioSmall(t *testing.T) {
	run, err := RunScenario(1, []int{2, 4}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if run.Scenario != 1 || len(run.Order) != 4 {
		t.Fatalf("scenario run = %+v", run)
	}
	for name, series := range run.Series {
		if len(series) != 2 {
			t.Errorf("%s series = %d points", name, len(series))
		}
		// At 2 and 4 tasks everything meets deadlines.
		if metrics.PivotPoint(series) != 4 {
			t.Errorf("%s pivot = %d, want 4", name, metrics.PivotPoint(series))
		}
	}
	if _, err := RunScenario(9, []int{1}, 1, 1); err == nil {
		t.Error("bad scenario accepted")
	}
}

func TestKindString(t *testing.T) {
	if KindSGPRS.String() != "sgprs" || KindNaive.String() != "naive" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Error("unknown kind name wrong")
	}
}

// TestHeadlineClaim is the repository's sanity anchor: with the default
// calibration, SGPRS beats the naive baseline on both pivot point and
// saturated FPS in scenario 1, and the naive scheduler collapses after its
// pivot — the paper's central comparison.
func TestHeadlineClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep")
	}
	counts := []int{8, 16, 20, 24, 28}
	run, err := RunScenario(1, counts, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	naive := run.Series["naive"]
	sgprs := run.Series["sgprs-2.0x"]
	if pn, ps := metrics.PivotPoint(naive), metrics.PivotPoint(sgprs); pn >= ps {
		t.Errorf("naive pivot %d should precede SGPRS pivot %d", pn, ps)
	}
	fn, fs := metrics.SaturationFPS(naive), metrics.SaturationFPS(sgprs)
	if fn >= fs {
		t.Errorf("naive saturation %v should trail SGPRS %v", fn, fs)
	}
	drop := (fs - fn) / fs
	if drop < 0.25 || drop > 0.50 {
		t.Errorf("naive FPS drop = %.0f%%, paper reports ~38%%", drop*100)
	}
	// Naive DMR collapses to ~1 past its pivot; SGPRS stays moderate.
	if dmr := naive[len(naive)-1].Summary.DMR; dmr < 0.9 {
		t.Errorf("naive terminal DMR = %v, want ~1", dmr)
	}
	if dmr := sgprs[len(sgprs)-1].Summary.DMR; dmr > 0.4 {
		t.Errorf("SGPRS terminal DMR = %v, want moderate", dmr)
	}
}

package sim

import (
	"reflect"
	"testing"

	"sgprs/internal/memo"
	"sgprs/internal/metrics"
	"sgprs/internal/speedup"
)

// TestStreamingMatchesBatchScenarios is the streaming-metrics acceptance
// test: the Session path (streaming Collector, recycled jobs, reused
// engine/device) must reproduce the batch reference path (retain every job,
// post-hoc Evaluate) byte for byte across both paper scenarios — every
// variant, every task count, every float bit of every metric. The grid spans
// the regimes where completion order differs from release order: the naive
// baseline completes FIFO per partition while SGPRS interleaves stages
// across contexts and, past the pivot, drops and replaces frames (the
// Discard path).
func TestStreamingMatchesBatchScenarios(t *testing.T) {
	counts := []int{4, 12, 24}
	const horizon = 2
	for _, scenario := range []int{1, 2} {
		want := batchScenario(t, scenario, counts, horizon)
		got, err := RunScenarioWith(scenario, counts, horizon, 1, memo.New())
		if err != nil {
			t.Fatalf("scenario %d streaming: %v", scenario, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("scenario %d: streaming output differs from batch reference", scenario)
		}
	}
}

// TestStreamingMatchesBatchJittered covers the stochastic corners the
// scenario grid misses: sporadic releases, WCET overruns, staggered offsets,
// and a tight deadline factor — all of which move completions further from
// release order.
func TestStreamingMatchesBatchJittered(t *testing.T) {
	cfgs := []RunConfig{
		{Kind: KindSGPRS, Name: "jittered", ContextSMs: []int{34, 34}, NumTasks: 12,
			ReleaseJitterMS: 3, WorkVariation: 0.2, HorizonSec: 2, Seed: 7},
		{Kind: KindSGPRS, Name: "staggered", ContextSMs: []int{23, 23, 23}, NumTasks: 26,
			Stagger: true, HorizonSec: 2, Seed: 3},
		{Kind: KindNaive, Name: "naive-jit", ContextSMs: []int{34, 34}, NumTasks: 20,
			ReleaseJitterMS: 2, HorizonSec: 2, Seed: 5},
	}
	for _, cfg := range cfgs {
		want, err := runBatch(cfg, nil)
		if err != nil {
			t.Fatalf("%s batch: %v", cfg.Name, err)
		}
		got, err := RunWith(cfg, nil)
		if err != nil {
			t.Fatalf("%s streaming: %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: streaming result differs from batch reference\nwant %+v\ngot  %+v",
				cfg.Name, want, got)
		}
	}
}

// batchScenario regenerates a scenario through runBatch — the reference
// retain-and-Evaluate path.
func batchScenario(t *testing.T, scenario int, counts []int, horizonSec float64) *ScenarioRun {
	t.Helper()
	np, err := ScenarioContexts(scenario)
	if err != nil {
		t.Fatal(err)
	}
	run := &ScenarioRun{Scenario: scenario, TaskCounts: counts, Series: map[string][]metrics.Point{}}
	cache := memo.New()
	for _, v := range ScenarioVariants() {
		var series []metrics.Point
		for _, n := range counts {
			cfg := RunConfig{
				Kind:       v.Kind,
				Name:       v.Name,
				ContextSMs: ContextPool(np, v.OS, speedup.DeviceSMs),
				HorizonSec: horizonSec,
				Seed:       1,
				NumTasks:   n,
			}
			res, err := runBatch(cfg, cache)
			if err != nil {
				t.Fatalf("%s n=%d: %v", v.Name, n, err)
			}
			series = append(series, metrics.Point{Tasks: n, Summary: res.Summary})
		}
		run.Series[v.Name] = series
		run.Order = append(run.Order, v.Name)
	}
	return run
}

// TestSessionReuseBitIdentical pins the session-reuse invariant: a single
// Session carrying a mixed sequence of configurations — different schedulers,
// pool shapes, task counts, seeds — must return, run for run, exactly what a
// fresh RunWith returns for the same configuration. This is what lets the
// runner hand each worker one long-lived session.
func TestSessionReuseBitIdentical(t *testing.T) {
	cfgs := []RunConfig{
		{Kind: KindSGPRS, Name: "a", ContextSMs: []int{34, 34}, NumTasks: 8, HorizonSec: 2, Seed: 1},
		{Kind: KindNaive, Name: "b", ContextSMs: []int{34, 34}, NumTasks: 8, HorizonSec: 2, Seed: 1},
		{Kind: KindSGPRS, Name: "c", ContextSMs: []int{23, 23, 23}, NumTasks: 26, HorizonSec: 2, Seed: 9},
		{Kind: KindSGPRS, Name: "a", ContextSMs: []int{34, 34}, NumTasks: 8, HorizonSec: 2, Seed: 1}, // repeat of the first
		{Kind: KindSGPRS, Name: "d", ContextSMs: []int{51, 51}, NumTasks: 16, HorizonSec: 3, WarmUpSec: 0.5, Seed: 2},
	}
	cache := memo.New()
	sess := NewSession(cache)
	for i, cfg := range cfgs {
		want, err := RunWith(cfg, cache)
		if err != nil {
			t.Fatalf("run %d fresh: %v", i, err)
		}
		got, err := sess.Run(cfg)
		if err != nil {
			t.Fatalf("run %d session: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("run %d (%s): session result differs from fresh run\nwant %+v\ngot  %+v",
				i, cfg.Name, want, got)
		}
	}
}

// TestSessionMemoryStaysBounded: after long-horizon runs, the session's
// recycled-object pools must be sized by in-flight work, not by the number
// of jobs or events the horizon produced — the O(active jobs) claim.
func TestSessionMemoryStaysBounded(t *testing.T) {
	cfg := RunConfig{
		Kind: KindSGPRS, Name: "long", ContextSMs: []int{23, 23, 23},
		NumTasks: 26, HorizonSec: 8, Seed: 1,
	}
	sess := NewSession(memo.New())
	if _, err := sess.Run(cfg); err != nil {
		t.Fatal(err)
	}
	// ~26 tasks × 30 fps × 8 s ≈ 6200 jobs flowed through the run. The
	// pool must hold only the handful that were in flight at once.
	if n := sess.pool.Len(); n > 200 {
		t.Errorf("job pool holds %d jobs after an 8s horizon; want O(in-flight)", n)
	}
	if n := sess.eng.FreeEvents(); n > 500 {
		t.Errorf("event free list holds %d events; want O(concurrency)", n)
	}

	// A longer horizon must not grow the pools: steady state was reached.
	before := sess.pool.Len()
	cfg.HorizonSec = 16
	if _, err := sess.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if after := sess.pool.Len(); after > before+50 {
		t.Errorf("job pool grew %d → %d with horizon; retention is not O(active)", before, after)
	}
}

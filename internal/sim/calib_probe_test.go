package sim

import (
	"fmt"
	"testing"
)

// TestCalibrationProbe is a diagnostic, not an assertion: it prints the
// FPS/DMR series for both scenarios so calibration work can see the current
// shape. Run with: go test ./internal/sim -run Probe -v -calibprobe
func TestCalibrationProbe(t *testing.T) {
	if !probeFlag {
		t.Skip("pass -calibprobe to run the calibration probe")
	}
	counts := []int{4, 8, 12, 14, 16, 18, 20, 22, 23, 24, 25, 26, 28, 30}
	for _, scenario := range []int{1, 2} {
		run, err := RunScenario(scenario, counts, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("== scenario %d ==\n", scenario)
		for _, name := range run.Order {
			fmt.Printf("%-12s", name)
			for _, p := range run.Series[name] {
				fmt.Printf(" %2d:%5.0f/%.2f", p.Tasks, p.Summary.TotalFPS, p.Summary.DMR)
			}
			fmt.Println()
		}
	}
}

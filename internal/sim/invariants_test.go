package sim

import (
	"testing"

	"sgprs/internal/des"
	"sgprs/internal/gpu"
)

// invariantChecker is a gpu.Observer that asserts execution invariants
// online: stream exclusivity (one kernel per stream at a time), causality
// (finish after start), and bounded per-context concurrency.
type invariantChecker struct {
	t           *testing.T
	running     map[*gpu.Stream]*gpu.Kernel
	perContext  map[*gpu.Context]int
	maxPerCtx   int
	started     int
	finished    int
	maxObserved int
}

func newInvariantChecker(t *testing.T, maxPerCtx int) *invariantChecker {
	return &invariantChecker{
		t:          t,
		running:    map[*gpu.Stream]*gpu.Kernel{},
		perContext: map[*gpu.Context]int{},
		maxPerCtx:  maxPerCtx,
	}
}

func (c *invariantChecker) KernelStarted(k *gpu.Kernel, now des.Time) {
	st := k.Stream()
	if prev := c.running[st]; prev != nil {
		c.t.Errorf("stream %v started %q while %q still running", st, k.Label, prev.Label)
	}
	c.running[st] = k
	ctx := st.Context()
	c.perContext[ctx]++
	if c.perContext[ctx] > c.maxPerCtx {
		c.t.Errorf("context %v exceeded %d concurrent kernels", ctx, c.maxPerCtx)
	}
	if c.perContext[ctx] > c.maxObserved {
		c.maxObserved = c.perContext[ctx]
	}
	c.started++
}

func (c *invariantChecker) KernelFinished(k *gpu.Kernel, now des.Time) {
	st := k.Stream()
	if c.running[st] != k {
		c.t.Errorf("stream %v finished %q it was not running", st, k.Label)
	}
	delete(c.running, st)
	c.perContext[st.Context()]--
	c.finished++
}

// TestExecutionInvariantsUnderOverload drives SGPRS well past saturation and
// checks the execution-level invariants the paper's design promises: at most
// four stages in parallel per context, streams strictly serialised, and
// every started kernel finished by drain time.
func TestExecutionInvariantsUnderOverload(t *testing.T) {
	chk := newInvariantChecker(t, 4) // 2 high + 2 low streams per context
	res, err := Run(RunConfig{
		Kind:       KindSGPRS,
		ContextSMs: []int{51, 51},
		NumTasks:   28,
		HorizonSec: 3,
		Observer:   chk,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Kernels still executing when the horizon cuts the run off are
	// legitimate: allow one per stream (2 contexts x 4 streams).
	if chk.started == 0 || chk.started-chk.finished > 8 {
		t.Errorf("started %d, finished %d", chk.started, chk.finished)
	}
	// The pool must actually be exercised in parallel under overload.
	if chk.maxObserved < 3 {
		t.Errorf("max concurrent kernels per context = %d, expected the streams to fill", chk.maxObserved)
	}
	if res.Summary.Completed == 0 {
		t.Error("no completions under overload")
	}
}

// TestExecutionInvariantsNaive does the same for the baseline: a single
// stream per partition means strictly one kernel at a time per context.
func TestExecutionInvariantsNaive(t *testing.T) {
	chk := newInvariantChecker(t, 1)
	_, err := Run(RunConfig{
		Kind:       KindNaive,
		ContextSMs: []int{34, 34},
		NumTasks:   20,
		HorizonSec: 3,
		Observer:   chk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if chk.started == 0 || chk.started-chk.finished > 2 {
		t.Errorf("started %d, finished %d", chk.started, chk.finished)
	}
	if chk.maxObserved != 1 {
		t.Errorf("naive max concurrency per context = %d, want 1", chk.maxObserved)
	}
}

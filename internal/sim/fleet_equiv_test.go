package sim

import (
	"reflect"
	"strings"
	"testing"

	"sgprs/internal/fault"
	"sgprs/internal/memo"
	"sgprs/internal/metrics"
	"sgprs/internal/rt"
	"sgprs/internal/speedup"
)

// fleetConfig is a 3-device fleet under pressure: a mid-run crash of device 1
// with a later restart, the kernel-level fault families active on every
// device, and an admission ceiling that bites while the fleet is degraded
// (2/3 surviving capacity < 0.7).
func fleetConfig(name string, failover rt.FailoverPolicy) RunConfig {
	return RunConfig{
		Kind: KindSGPRS, Name: name, ContextSMs: []int{23, 23, 23},
		NumTasks: 18, HorizonSec: 3, Seed: 7,
		Devices: 3, Failover: failover, AdmitCeiling: 0.7,
		Faults: &fault.Config{
			Overrun: &fault.Overrun{Model: fault.OverrunHeavyTail, Factor: 2},
			DeviceFaults: []fault.DeviceFault{
				{Device: 1, StartSec: 1.2, RestartSec: 2.2},
			},
		},
	}
}

// TestFleetDevicesOneBitIdentical is the fleet-layer acceptance pin: Devices=1
// (with every fleet knob zero) must reproduce the Devices=0 run byte for byte
// across both paper scenario grids, every variant, every task count — the
// single-device path is untouched by the fleet wiring.
func TestFleetDevicesOneBitIdentical(t *testing.T) {
	counts := []int{4, 12}
	const horizon = 2
	cache := memo.New()
	for _, scenario := range []int{1, 2} {
		np, err := ScenarioContexts(scenario)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range ScenarioVariants() {
			for _, n := range counts {
				cfg := RunConfig{
					Kind:       v.Kind,
					Name:       v.Name,
					ContextSMs: ContextPool(np, v.OS, speedup.DeviceSMs),
					HorizonSec: horizon,
					Seed:       1,
					NumTasks:   n,
				}
				want, err := RunWith(cfg, cache)
				if err != nil {
					t.Fatalf("scenario %d %s n=%d devices=0: %v", scenario, v.Name, n, err)
				}
				cfg.Devices = 1
				got, err := RunWith(cfg, cache)
				if err != nil {
					t.Fatalf("scenario %d %s n=%d devices=1: %v", scenario, v.Name, n, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("scenario %d %s n=%d: Devices=1 differs from Devices=0\nwant %+v\ngot  %+v",
						scenario, v.Name, n, want.Summary, got.Summary)
				}
			}
		}
	}
}

// TestFleetRunsDeterministic pins seeded reproducibility of fleet runs under
// every failover policy: two fresh runs are bit-identical, and a session
// interleaving fleet, faulted single-device, and clean work reproduces the
// fleet result exactly — no dispatcher or extra-device state leaks across
// Session.Run calls.
func TestFleetRunsDeterministic(t *testing.T) {
	for _, fo := range []rt.FailoverPolicy{rt.FailoverMigrate, rt.FailoverRetry, rt.FailoverShed} {
		cfg := fleetConfig("det-"+fo.String(), fo)
		want, err := RunWith(cfg, nil)
		if err != nil {
			t.Fatalf("%s first run: %v", fo, err)
		}
		again, err := RunWith(cfg, nil)
		if err != nil {
			t.Fatalf("%s second run: %v", fo, err)
		}
		if !reflect.DeepEqual(want, again) {
			t.Errorf("%s: two fresh fleet runs differ\nwant %+v\ngot  %+v", fo, want.Summary, again.Summary)
		}
	}
	sess := NewSession(memo.New())
	cfg := fleetConfig("det-session", rt.FailoverMigrate)
	want, err := sess.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(faultedConfig("det-single", "retry")); err != nil {
		t.Fatal(err)
	}
	clean := faultedConfig("det-clean", "retry")
	clean.Faults = nil
	if _, err := sess.Run(clean); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("session rerun differs after interleaved single-device runs\nwant %+v\ngot  %+v",
			want.Summary, got.Summary)
	}
}

// TestFleetIneligibleForFastForward pins the eligibility conjunct: a steady
// configuration that warps when single-device must fully simulate as a fleet
// — crash edges and placement are event-driven, and a warp would skip
// releases the dispatcher was due to route.
func TestFleetIneligibleForFastForward(t *testing.T) {
	cfg := RunConfig{
		Kind: KindSGPRS, Name: "ff-fleet", ContextSMs: ContextPool(2, 1.5, speedup.DeviceSMs),
		NumTasks: 6, HorizonSec: 8, Seed: 1, GPU: eligibleGPU(1),
	}
	clean, err := RunWith(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if clean.FastForward.CyclesSkipped == 0 {
		t.Fatal("reference run never fast-forwarded; the test exercises nothing")
	}
	cfg.Devices = 2
	fleet, err := RunWith(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.FastForward != (metrics.FFStats{}) {
		t.Errorf("fleet run engaged fast-forward: %+v", fleet.FastForward)
	}
}

// TestBatchPathRejectsFleet pins that the retained-jobs batch path refuses
// fleet configs instead of silently running one device.
func TestBatchPathRejectsFleet(t *testing.T) {
	cfg := fleetConfig("batch-fleet", rt.FailoverMigrate)
	_, err := runBatch(cfg, nil)
	if err == nil {
		t.Fatal("runBatch accepted a fleet config")
	}
	if !strings.Contains(err.Error(), "streaming") {
		t.Errorf("error does not point at the streaming path: %v", err)
	}
}

// TestFleetFailoverActivity guards the determinism tests against vacuity: the
// pinned device-crash scenario must actually crash, restart, and — per
// policy — migrate or shed, with the admission controller and the
// fleet-degraded attribution leaving fingerprints, all against a clean fleet
// twin that does none of it.
func TestFleetFailoverActivity(t *testing.T) {
	clean := fleetConfig("clean-fleet", rt.FailoverMigrate)
	clean.Faults = nil
	base, err := RunWith(clean, nil)
	if err != nil {
		t.Fatal(err)
	}
	bf := base.Summary.Fleet
	if bf.Devices != 3 || len(bf.PerDeviceUtilization) != 3 {
		t.Fatalf("clean fleet shape: %+v", bf)
	}
	if bf.Crashes != 0 || bf.Migrations != 0 || bf.ShedChains != 0 || bf.ShedReleases != 0 ||
		bf.FleetDegradedReleased != 0 {
		t.Fatalf("clean fleet shows failure activity: %+v", bf)
	}
	for _, d := range bf.PerDeviceUtilization {
		if d <= 0 || d > 1 {
			t.Errorf("clean per-device utilization %v outside (0, 1]", d)
		}
	}
	for _, fo := range []rt.FailoverPolicy{rt.FailoverMigrate, rt.FailoverRetry, rt.FailoverShed} {
		res, err := RunWith(fleetConfig("act-"+fo.String(), fo), nil)
		if err != nil {
			t.Fatalf("%s: %v", fo, err)
		}
		f := res.Summary.Fleet
		if f.Crashes != 1 || f.Restarts != 1 {
			t.Errorf("%s: crash/restart = %d/%d, want 1/1", fo, f.Crashes, f.Restarts)
		}
		if f.ShedReleases == 0 {
			t.Errorf("%s: no releases shed while degraded: %+v", fo, f)
		}
		if f.FleetDegradedReleased == 0 {
			t.Errorf("%s: degraded window saw no releases: %+v", fo, f)
		}
		if f.FleetDegradedDMR < 0 || f.FleetDegradedDMR > 1 {
			t.Errorf("%s: fleet-degraded DMR %v outside [0, 1]", fo, f.FleetDegradedDMR)
		}
		if f.FailoverLatencyMeanMS < 0 {
			t.Errorf("%s: negative failover latency %v", fo, f.FailoverLatencyMeanMS)
		}
		switch fo {
		case rt.FailoverMigrate:
			if f.Migrations == 0 || f.MigrationCostMS <= 0 {
				t.Errorf("migrate: no migrations: %+v", f)
			}
			if f.FailoverLatencyMeanMS == 0 {
				t.Errorf("migrate: zero failover latency: %+v", f)
			}
		case rt.FailoverRetry:
			if f.Migrations != 0 {
				t.Errorf("retry: unexpected migrations: %+v", f)
			}
			if f.FailoverLatencyMeanMS == 0 {
				t.Errorf("retry: zero failover latency: %+v", f)
			}
		case rt.FailoverShed:
			if f.ShedChains == 0 {
				t.Errorf("shed: no chains shed: %+v", f)
			}
		}
		// The crash must hurt relative to the clean twin, through the fleet
		// accounting alone.
		if res.Summary.Missed+res.Summary.Dropped <= base.Summary.Missed+base.Summary.Dropped {
			t.Errorf("%s: device loss cost nothing (missed+dropped %d vs clean %d)",
				fo, res.Summary.Missed+res.Summary.Dropped, base.Summary.Missed+base.Summary.Dropped)
		}
	}
}

// TestFleetConfigValidation pins the fail-fast config errors: impossible
// degradation windows name their index against the actual device, device
// faults require a fleet and an in-range target, and fleet knobs on a single
// device are rejected rather than ignored.
func TestFleetConfigValidation(t *testing.T) {
	base := func() RunConfig {
		return RunConfig{Kind: KindSGPRS, ContextSMs: []int{34, 34}, NumTasks: 4}
	}
	cases := []struct {
		name string
		mut  func(*RunConfig)
		want string
	}{
		{
			"degradation window exceeds device",
			func(c *RunConfig) {
				c.Faults = &fault.Config{Degradation: []fault.Window{
					{StartSec: 0.1, EndSec: 0.2, SMs: 10},
					{StartSec: 0.5, EndSec: 0.9, SMs: 1000},
				}}
			},
			"degradation window 1",
		},
		{
			"device faults on single device",
			func(c *RunConfig) {
				c.Faults = &fault.Config{DeviceFaults: []fault.DeviceFault{{Device: 0, StartSec: 1}}}
			},
			"single device",
		},
		{
			"device fault target out of range",
			func(c *RunConfig) {
				c.Devices = 2
				c.Faults = &fault.Config{DeviceFaults: []fault.DeviceFault{{Device: 2, StartSec: 1}}}
			},
			"device fault 0",
		},
		{
			"placement on single device",
			func(c *RunConfig) { c.Placement = 1 },
			"single device",
		},
		{
			"failover on single device",
			func(c *RunConfig) { c.Failover = rt.FailoverShed },
			"single device",
		},
		{
			"admission ceiling out of range",
			func(c *RunConfig) { c.Devices = 2; c.AdmitCeiling = 1.5 },
			"admission ceiling",
		},
		{
			"negative device count",
			func(c *RunConfig) { c.Devices = -1 },
			"device count",
		},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mut(&cfg)
		err := cfg.Normalize()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

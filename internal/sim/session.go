package sim

import (
	"sgprs/internal/des"
	"sgprs/internal/dnn"
	"sgprs/internal/fault"
	"sgprs/internal/gpu"
	"sgprs/internal/memo"
	"sgprs/internal/metrics"
	"sgprs/internal/profile"
	"sgprs/internal/rt"
	"sgprs/internal/sched"
	"sgprs/internal/speedup"
	"sgprs/internal/workload"
)

// Session executes simulation runs over reused infrastructure: one
// discrete-event engine (whose event free list survives across runs), one
// device (scratch buffers and slice capacities retained), one job pool, one
// streaming metrics collector, a profiler, and a cache of built task sets
// keyed by workload shape. A sweep that previously rebuilt all of this per
// point now pays for it once per worker, so steady-state sweep points run
// the online phase with almost no allocation.
//
// Reuse is invisible in the results: des.Engine.Reset and gpu.Device.Reset
// restore fresh-equivalent state (clock, sequence numbers, stochastic
// streams), recycled jobs and events are fully reinitialised before reuse,
// and cached task sets are re-profiled per run from the memoized WCET
// tables. TestSessionReuseBitIdentical pins Session.Run == RunWith for
// mixed-configuration sequences.
//
// A Session is single-threaded, like the engine it wraps: the parallel
// runner gives each worker its own. The zero value is not usable; call
// NewSession.
type Session struct {
	cache *memo.Cache

	eng       *des.Engine
	dev       *gpu.Device
	pool      rt.JobPool
	collector *metrics.Collector

	prof    *profile.Profiler
	profCfg gpu.Config

	// fleetDevs caches the extra fleet devices (positions 1..Devices-1;
	// position 0 is s.dev) across fleet runs, Reset per run like s.dev.
	fleetDevs []*gpu.Device

	tasks map[taskSetKey][]*rt.Task

	// Fast-forward state (fastforward.go), reused across runs: the
	// fingerprint build buffer, the arena of stored boundary fingerprints
	// with their hash index, and the live-job warp dedup set. ffHash and
	// ffTrace are test hooks: ffHash overrides the fingerprint hash (the
	// collision-safety tests truncate it to force collisions) and ffTrace,
	// when set, fires at every release boundary — on the fast-forward and
	// the reference path alike — so the lockstep equivalence tests can
	// compare collector state boundary by boundary.
	ffBuf    []byte
	ffArena  []byte
	ffEnts   []ffEntry
	ffHashes map[uint64]int
	ffJobs   map[*rt.Job]bool
	ffHash   func([]byte) uint64
	ffTrace  func(now des.Time)
}

// taskSetKey identifies a built task set: everything Build derives tasks
// from. The graph is compared by identity, which the offline cache also
// relies on; with the default memoized reference graph, equal configurations
// share one pointer.
type taskSetKey struct {
	graph    *dnn.Graph
	tasks    int
	stages   int
	fps      float64
	jitterMS float64
	workVar  float64
	stagger  bool
}

// NewSession builds a session around the given offline-phase cache. A nil
// cache reproduces the uncached reference path: the reference graph is
// rebuilt and every task profiled from scratch each run (and, because task
// sets are keyed by graph identity, never reused across runs).
func NewSession(cache *memo.Cache) *Session {
	return &Session{
		cache: cache,
		eng:   des.NewEngine(),
		tasks: map[taskSetKey][]*rt.Task{},
	}
}

// Run executes one simulation on the session's reused infrastructure and
// returns its metrics, exactly as RunWith would for the same configuration
// and cache.
func (s *Session) Run(cfg RunConfig) (Result, error) {
	if err := cfg.Normalize(); err != nil {
		return Result{}, err
	}
	model := defaultModel()

	s.eng.Reset()
	if s.dev == nil {
		dev, err := gpu.NewDevice(s.eng, model, cfg.GPU)
		if err != nil {
			return Result{}, err
		}
		s.dev = dev
	} else if err := s.dev.Reset(cfg.GPU); err != nil {
		return Result{}, err
	}
	if cfg.Observer != nil {
		s.dev.SetObserver(cfg.Observer)
	}

	var graph *dnn.Graph
	if s.cache != nil {
		key := memo.GraphKey{Model: model, Name: "resnet18-ref", SMs: speedup.DeviceSMs, TargetMS: ReferenceLatencyMS}
		graph = s.cache.Graph(key, func() *dnn.Graph { return ReferenceGraph(model) })
	} else {
		graph = ReferenceGraph(model)
	}

	tasks, err := s.taskSet(graph, cfg)
	if err != nil {
		return Result{}, err
	}

	// Offline phase: profile stage WCETs in isolation on the smallest
	// context of the pool (conservative). Cached task sets are
	// re-profiled every run — the pool's minimum may differ between
	// configurations sharing a task shape — but with a cache that is a
	// table lookup, not a measurement.
	minSMs := cfg.ContextSMs[0]
	for _, c := range cfg.ContextSMs[1:] {
		if c < minSMs {
			minSMs = c
		}
	}
	if s.prof == nil || s.profCfg != cfg.GPU {
		s.prof = profile.New(model, cfg.GPU)
		s.profCfg = cfg.GPU
	}
	if s.cache != nil {
		if err := s.cache.ProfileTasks(s.prof, tasks, minSMs); err != nil {
			return Result{}, err
		}
	} else {
		for _, t := range tasks {
			if err := s.prof.ProfileTask(t, minSMs); err != nil {
				return Result{}, err
			}
		}
	}

	if cfg.Devices > 1 {
		return s.runFleet(cfg, model, tasks)
	}

	scheduler, err := buildScheduler(cfg)
	if err != nil {
		return Result{}, err
	}
	if err := scheduler.Attach(s.eng, s.dev, tasks); err != nil {
		return Result{}, err
	}

	horizon := des.FromSeconds(cfg.HorizonSec)
	warmUp := des.FromSeconds(cfg.WarmUpSec)
	if s.collector == nil {
		s.collector = metrics.NewCollector(warmUp, horizon)
	} else {
		s.collector.Reset(warmUp, horizon)
	}
	s.collector.SetSLO(cfg.SLOMS)

	// Fault injection (DESIGN.md §13): the injector draws from a dedicated
	// forked RNG stream, so installing it never perturbs the workload or
	// contention-jitter cursors; with cfg.Faults nil none of this runs and
	// the dynamics are bit-identical to the pre-fault code path.
	var inj *fault.Injector
	if cfg.Faults != nil {
		handler, _ := scheduler.(sched.FaultHandler)
		seed := cfg.Faults.Seed
		if seed == 0 {
			seed = cfg.Seed + 3
		}
		inj, err = fault.NewInjector(cfg.Faults, s.eng, s.dev, handler, seed)
		if err != nil {
			return Result{}, err
		}
		inj.Install(s.collector)
	}

	gen := workload.NewGeneratorSeeded(s.eng, scheduler, cfg.Seed+2)
	gen.SetSink(s.collector)
	gen.UsePool(&s.pool)
	gen.SetArrival(cfg.Arrival)
	gen.Start(tasks, horizon)
	ff := s.runToHorizon(cfg, scheduler, gen, tasks, warmUp, horizon)

	sum := s.collector.Summary()
	if inj != nil {
		// The collector filled the Degraded* fields of sum.Faults; the
		// injection counters live in the injector.
		st := inj.Stats()
		sum.Faults.Overruns = st.Overruns
		sum.Faults.OverrunMassMS = st.OverrunMassMS
		sum.Faults.TransientFaults = st.TransientFaults
		sum.Faults.Retries = st.Retries
		sum.Faults.Recoveries = st.Recoveries
		sum.Faults.SkippedJobs = st.SkippedJobs
		sum.Faults.KilledChains = st.KilledChains
	}
	pm := gpu.DefaultPowerModel()
	res := Result{
		Name:              cfg.Name,
		Tasks:             cfg.NumTasks,
		Summary:           sum,
		FastForward:       ff,
		DeviceUtilization: s.dev.Utilization(),
		EnergyJoules:      s.dev.EnergyJoules(pm),
		AvgPowerW:         s.dev.AveragePowerW(pm),
	}
	if res.AvgPowerW > 0 {
		res.FPSPerWatt = sum.TotalFPS / res.AvgPowerW
	}
	return res, nil
}

// taskSet returns the built task set for the configuration, reusing a
// previous run's when the workload shape matches. Tasks are immutable during
// the online phase (schedulers and jobs only read them) and re-profiled per
// run, so sharing them across runs cannot alter results.
//
// Without an offline cache the reference graph is rebuilt per run, so the
// graph-keyed lookup could never hit; caching would only accumulate dead
// entries for the session's lifetime. The uncached session builds fresh and
// stores nothing.
func (s *Session) taskSet(graph *dnn.Graph, cfg RunConfig) ([]*rt.Task, error) {
	key := taskSetKey{
		graph:    graph,
		tasks:    cfg.NumTasks,
		stages:   cfg.Stages,
		fps:      cfg.FPS,
		jitterMS: cfg.ReleaseJitterMS,
		workVar:  cfg.WorkVariation,
		stagger:  cfg.Stagger,
	}
	if tasks, ok := s.tasks[key]; ok {
		return tasks, nil
	}
	specs := workload.Replicate(workload.Options{
		Count: cfg.NumTasks,
		Spec: workload.TaskSpec{
			Name:          "resnet18",
			Graph:         graph,
			Stages:        cfg.Stages,
			FPS:           cfg.FPS,
			ReleaseJitter: des.FromMillis(cfg.ReleaseJitterMS),
			WorkVariation: cfg.WorkVariation,
		},
		Stagger: cfg.Stagger,
	})
	tasks, err := workload.Build(specs)
	if err != nil {
		return nil, err
	}
	if s.cache != nil {
		s.tasks[key] = tasks
	}
	return tasks, nil
}

package core

import (
	"slices"

	"sgprs/internal/des"
	"sgprs/internal/rt"
)

// Fast-forward hooks (DESIGN.md §12). The scheduler's dynamic state is the
// per-context queues and estimates, the per-task frame flow control, and the
// pipeline-latency EWMA; everything else it holds is configuration or
// diagnostics. Durations (pendingWCET, ewmaPipeMS) are time-invariant and
// encode directly; absolute instants live inside jobs and are encoded
// relative to the boundary by the caller's job encoder. No scheduler field
// holds an absolute instant, so warping a run shifts only jobs and events —
// the scheduler itself needs no warp.

// EncodeState appends a canonical encoding of the scheduler's dynamic state
// to buf and returns the extended slice. jobEnc encodes one live job (its
// identity, per-stage state, and instants relative to the boundary).
func (s *Scheduler) EncodeState(buf []byte, jobEnc func(buf []byte, j *rt.Job) []byte) []byte {
	// The round-robin cursor grows without bound but is only ever read
	// modulo the context count.
	buf = des.AppendU64(buf, uint64(s.rrNext%len(s.ctxs)))
	buf = des.AppendF64(buf, s.ewmaPipeMS)
	buf = des.AppendI64(buf, int64(s.inflight))
	for _, c := range s.ctxs {
		buf = des.AppendTime(buf, c.pendingWCET)
		buf = des.AppendI64(buf, int64(c.inFlight))
		// Queue contents in pop order — the canonical order; the heap's
		// internal layout is unobservable (sched.EDFQueue.Snapshot).
		s.encStages = c.queue.Snapshot(s.encStages[:0])
		buf = des.AppendU64(buf, uint64(len(s.encStages)))
		for _, st := range s.encStages {
			buf = jobEnc(buf, st.Job)
			buf = des.AppendU64(buf, uint64(st.Index))
		}
	}
	// Flow-control maps, iterated in sorted task-ID order (map iteration
	// order must never leak into a fingerprint). Entries with nil jobs are
	// semantically absent but kept by jobOver; encode presence explicitly.
	s.encIDs = s.encIDs[:0]
	//sgprs:allow maporder — task IDs are collected then sorted before any byte is encoded
	for id := range s.active {
		s.encIDs = append(s.encIDs, id)
	}
	slices.Sort(s.encIDs)
	buf = des.AppendU64(buf, uint64(len(s.encIDs)))
	for _, id := range s.encIDs {
		buf = des.AppendU64(buf, uint64(id))
		if j := s.active[id]; j != nil {
			buf = append(buf, 1)
			buf = jobEnc(buf, j)
		} else {
			buf = append(buf, 0)
		}
	}
	s.encIDs = s.encIDs[:0]
	//sgprs:allow maporder — task IDs are collected then sorted before any byte is encoded
	for id := range s.held {
		s.encIDs = append(s.encIDs, id)
	}
	slices.Sort(s.encIDs)
	buf = des.AppendU64(buf, uint64(len(s.encIDs)))
	for _, id := range s.encIDs {
		buf = des.AppendU64(buf, uint64(id))
		if j := s.held[id]; j != nil {
			buf = append(buf, 1)
			buf = jobEnc(buf, j)
		} else {
			buf = append(buf, 0)
		}
	}
	buf = des.AppendU64(buf, uint64(len(s.heldOrder)))
	for _, id := range s.heldOrder {
		buf = des.AppendU64(buf, uint64(id))
	}
	return buf
}

// ForEachJob visits every live job the scheduler itself references: active
// frames in the stage pipeline and held frames awaiting admission. Jobs
// referenced only through device kernels are a subset of the active ones,
// but the fast-forward layer deduplicates across both enumerations anyway.
func (s *Scheduler) ForEachJob(f func(j *rt.Job)) {
	for _, j := range s.active {
		if j != nil {
			f(j)
		}
	}
	for _, j := range s.held {
		if j != nil {
			f(j)
		}
	}
}

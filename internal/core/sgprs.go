// Package core implements SGPRS — the Seamless GPU Partitioning Real-Time
// Scheduler, the paper's contribution (Section IV).
//
// Offline phase (before Attach): tasks are partitioned into stages, stage
// WCETs are profiled in isolation, virtual deadlines are assigned in
// proportion to WCET, and the two-level priority assignment marks each
// task's final stage high-priority (package rt + package profile).
//
// Online phase (this package):
//
//  1. Absolute deadline assignment — rt.Task.NewJob stamps every released
//     stage with its absolute virtual deadline.
//  2. Context assignment — a released stage goes to: a context with an empty
//     queue first; otherwise the context that can still meet the stage's
//     deadline with the shortest queue; otherwise the context with the
//     earliest estimated finish time.
//  3. Stage queuing — each context runs two high- and two low-priority CUDA
//     streams (≤ 4 concurrent stages per context). A third, medium, level is
//     assigned online to low-priority stages whose predecessor missed its
//     virtual deadline. Within a level, stages dispatch in EDF order.
//
// Because the context pool is created once up front, moving a stage between
// contexts carries zero reconfiguration cost — the seamless partition switch
// that distinguishes SGPRS from the naive spatial baseline.
package core

import (
	"fmt"

	"sgprs/internal/des"
	"sgprs/internal/gpu"
	"sgprs/internal/rt"
	"sgprs/internal/sched"
	"sgprs/internal/speedup"
)

// Config parameterises an SGPRS instance.
type Config struct {
	// Name labels the instance in reports (e.g. "sgprs-1.5x").
	Name string
	// ContextSMs is the SM allocation of each context in the pool. The
	// sum may exceed the device: that is over-subscription.
	ContextSMs []int
	// HighStreams and LowStreams are the per-context stream counts. The
	// paper fixes them at 2 and 2.
	HighStreams, LowStreams int
	// DisableMediumPromotion turns off the third priority level
	// (ablation A2 in DESIGN.md).
	DisableMediumPromotion bool
	// DisableLateDrop keeps executing stages of jobs whose final deadline
	// has already passed. The paper's scheduler sustains total FPS past
	// the pivot point, which requires not burning GPU time on frames that
	// can no longer meet their deadline; dropping them is the temporal-
	// partitioning discipline the naive baseline lacks. Set this for the
	// ablation that shows the resulting domino effect.
	DisableLateDrop bool
	// MaxInflight caps concurrently admitted frames. Zero sizes the
	// window by Little's law at attach time: with the device retiring at
	// most G single-SM milliseconds of work per wall millisecond (its
	// aggregate gain cap) and an average admitted frame costing W
	// single-SM milliseconds, pipeline latency is ≈ in-flight·W/G, so
	// the largest window whose admitted frames still fit a deadline D is
	// ⌊D·G/W⌋. Admissions beyond the window are held (newest frame per
	// task) and skipped if they go stale — that is what converts
	// overload into skipped frames instead of a backlog of late ones.
	MaxInflight int
	// AssignPolicy selects the context-assignment rule (ablation A3).
	// Default is the paper's three-rule policy.
	AssignPolicy AssignPolicy
	// FlattenPriorities collapses the two-level offline priority
	// assignment into pure EDF across all stages (ablation A1): every
	// stage queues at the low level and promotion is off.
	FlattenPriorities bool
}

// AssignPolicy selects how released stages map to contexts.
type AssignPolicy int

// Context-assignment policies. PolicyPaper is the three-rule policy from
// Section IV-B2; the others are ablation baselines.
const (
	PolicyPaper AssignPolicy = iota
	PolicyShortestQueue
	PolicyEarliestFinish
	PolicyRoundRobin
)

// String names the policy.
func (p AssignPolicy) String() string {
	switch p {
	case PolicyPaper:
		return "paper"
	case PolicyShortestQueue:
		return "shortest-queue"
	case PolicyEarliestFinish:
		return "earliest-finish"
	case PolicyRoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// DefaultConfig returns the paper's configuration over the given context
// pool: two high- and two low-priority streams per context, medium promotion
// on, three-rule assignment.
func DefaultConfig(name string, contextSMs []int) Config {
	return Config{
		Name:        name,
		ContextSMs:  contextSMs,
		HighStreams: 2,
		LowStreams:  2,
	}
}

// ctxState is the scheduler's bookkeeping for one pool context.
type ctxState struct {
	ctx   *gpu.Context
	queue sched.MultiLevelQueue
	// pendingWCET is the summed WCET of stages assigned to this context
	// and not yet finished — the scheduler's finish-time estimate.
	pendingWCET des.Time
	// inFlight counts stages dispatched onto streams and not finished.
	inFlight int
}

// estFinish is the conservative serialised finish-time estimate for new work.
func (c *ctxState) estFinish(now des.Time) des.Time { return now.Add(c.pendingWCET) }

// queueLen is the paper's "queue length": stages waiting or running here.
func (c *ctxState) queueLen() int { return c.queue.Len() + c.inFlight }

// Scheduler is an online SGPRS instance. Create with New, wire with Attach.
type Scheduler struct {
	cfg   Config
	eng   *des.Engine
	dev   *gpu.Device
	ctxs  []*ctxState
	tasks []*rt.Task // admission-ordered attach set (EvictAll iteration order)

	rrNext int // round-robin cursor (ablation policy)

	// Per-task frame flow control: each task pipelines one frame at a
	// time. active is the job currently in the stage pipeline; held is
	// the newest released job waiting for the pipeline to free. A fresh
	// release replaces a still-waiting held frame (the replaced frame
	// counts as missed without ever costing GPU time).
	active map[int]*rt.Job
	held   map[int]*rt.Job
	// heldOrder queues task IDs with held frames in arrival order so
	// freed admission slots go to the oldest waiting frame.
	heldOrder   []int
	inflight    int
	maxInflight int
	// ewmaPipeMS tracks recent activation-to-finish latency. A held
	// frame whose remaining deadline budget is below this estimate is
	// skipped at activation time instead of completing hopelessly late.
	ewmaPipeMS float64

	// kernelPool recycles gpu.Kernel structs across stage launches, and
	// stateOf maps a kernel's context (by device ID, which is dense and
	// assigned in creation order) back to its ctxState; together with the
	// shared doneFn callback, a stage launch allocates no kernel and no
	// closure, and a stage completion is a slice index, not a map probe.
	kernelPool []*gpu.Kernel
	stateOf    []*ctxState
	doneFn     func(k *gpu.Kernel, now des.Time)
	retryFn    func(now des.Time, arg any)
	// tokenPool recycles the retry tokens backed-off retries travel in. A
	// token pins the stage pointer together with its job's generation so a
	// retry that outlives a device-loss drain (EvictAll discarded the job;
	// the JobPool may already have recycled the struct) detects staleness
	// at fire time instead of re-enqueuing a foreign frame.
	tokenPool []*retryToken

	// Stats.
	promotions uint64
	assigned   uint64
	dropped    uint64
	replaced   uint64

	// EncodeState scratch (ff.go), reused across fingerprint boundaries.
	encStages []*rt.StageJob
	encIDs    []int
}

// New validates cfg and returns an unattached scheduler.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("core: config needs a name")
	}
	if len(cfg.ContextSMs) == 0 {
		return nil, fmt.Errorf("core: config needs at least one context")
	}
	if cfg.HighStreams < 0 || cfg.LowStreams < 0 || cfg.HighStreams+cfg.LowStreams == 0 {
		return nil, fmt.Errorf("core: need at least one stream per context")
	}
	return &Scheduler{
		cfg:    cfg,
		active: map[int]*rt.Job{},
		held:   map[int]*rt.Job{},
	}, nil
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return s.cfg.Name }

// Promotions reports how many stages were promoted to the medium level.
func (s *Scheduler) Promotions() uint64 { return s.promotions }

// Dropped reports how many stages were shed because their job's final
// deadline had already passed at dispatch time.
func (s *Scheduler) Dropped() uint64 { return s.dropped }

// Attach creates the context pool and streams on the device. Tasks must be
// profiled; Attach rejects unprofiled tasks because the online phase cannot
// estimate finish times without WCETs.
func (s *Scheduler) Attach(eng *des.Engine, dev *gpu.Device, tasks []*rt.Task) error {
	if s.eng != nil {
		return fmt.Errorf("core: scheduler %q attached twice", s.cfg.Name)
	}
	if len(tasks) == 0 {
		return fmt.Errorf("core: scheduler %q attached with no tasks", s.cfg.Name)
	}
	for _, t := range tasks {
		if !t.Profiled() {
			return fmt.Errorf("core: task %s not profiled", t)
		}
	}
	s.eng = eng
	s.dev = dev
	s.maxInflight = s.cfg.MaxInflight
	if s.maxInflight == 0 {
		// Little's-law sizing (see Config.MaxInflight): the widest
		// admission window whose frames still fit the tightest
		// deadline, floored at the pool's hardware concurrency.
		minDeadlineMS := 0.0
		avgWorkMS := 0.0
		for _, t := range tasks {
			d := float64(t.Deadline) / float64(des.Millisecond)
			if minDeadlineMS == 0 || d < minDeadlineMS {
				minDeadlineMS = d
			}
			avgWorkMS += t.Graph.TotalWorkMS()
		}
		avgWorkMS /= float64(len(tasks))
		if avgWorkMS > 0 {
			s.maxInflight = int(minDeadlineMS * dev.Config().AggregateGainCap / avgWorkMS)
		}
		streams := (s.cfg.HighStreams + s.cfg.LowStreams) * len(s.cfg.ContextSMs)
		if s.maxInflight < streams {
			s.maxInflight = streams
		}
	}
	if s.maxInflight < 1 {
		s.maxInflight = 1
	}
	s.tasks = tasks
	s.doneFn = s.kernelDone
	s.retryFn = s.retryFire
	for i, sms := range s.cfg.ContextSMs {
		ctx, err := dev.CreateContext(fmt.Sprintf("cp%d", i), sms)
		if err != nil {
			return fmt.Errorf("core: context pool: %w", err)
		}
		for h := 0; h < s.cfg.HighStreams; h++ {
			ctx.AddStream(fmt.Sprintf("hi%d", h), gpu.HighPriority)
		}
		for l := 0; l < s.cfg.LowStreams; l++ {
			ctx.AddStream(fmt.Sprintf("lo%d", l), gpu.LowPriority)
		}
		c := &ctxState{ctx: ctx}
		s.ctxs = append(s.ctxs, c)
		for len(s.stateOf) <= ctx.ID() {
			s.stateOf = append(s.stateOf, nil)
		}
		s.stateOf[ctx.ID()] = c
	}
	return nil
}

// OnRelease implements sched.Scheduler. Each task pipelines one frame at a
// time: if the previous frame is still in the stage pipeline the new one is
// held back, and a fresh release replaces a frame still held (the replaced
// frame counts as missed without ever costing GPU time). This bounded-depth
// flow control is what lets SGPRS sustain total FPS past the pivot point
// instead of dragging an ever-growing backlog of doomed frames behind it —
// the naive baseline's domino effect.
func (s *Scheduler) OnRelease(job *rt.Job, now des.Time) {
	id := job.Task.ID
	if s.active[id] != nil || s.inflight >= s.maxInflight {
		if old := s.held[id]; old != nil {
			s.replaced++
			// The replaced frame will never run: report it abandoned
			// so its owner can record and recycle it.
			old.Discard(now)
		} else {
			s.heldOrder = append(s.heldOrder, id)
		}
		s.held[id] = job
		return
	}
	s.activate(job, now)
}

// activate pushes a job's first stage into the online pipeline.
func (s *Scheduler) activate(job *rt.Job, now des.Time) {
	s.active[job.Task.ID] = job
	s.inflight++
	st := job.Stages[0]
	st.MarkReady(now)
	s.enqueue(st, now)
}

// enqueue applies context assignment (Section IV-B2) and stage queuing
// (IV-B3) to a ready stage, then tries to dispatch.
func (s *Scheduler) enqueue(st *rt.StageJob, now des.Time) {
	if s.cfg.FlattenPriorities {
		st.Level = rt.LevelLow
	}
	c := s.assign(st, now)
	c.queue.Push(st)
	c.pendingWCET += st.Job.Task.StageWCET(st.Index)
	s.assigned++
	s.dispatch(c, now)
}

// assign picks the context for a ready stage.
func (s *Scheduler) assign(st *rt.StageJob, now des.Time) *ctxState {
	switch s.cfg.AssignPolicy {
	case PolicyShortestQueue:
		return s.pickShortestQueue()
	case PolicyEarliestFinish:
		return s.pickEarliestFinish()
	case PolicyRoundRobin:
		c := s.ctxs[s.rrNext%len(s.ctxs)]
		s.rrNext++
		return c
	case PolicyPaper:
		// Falls out to the paper rules below — shared with any policy
		// value Config validation did not catch.
	}
	// The paper's three rules, in order.
	// Rule 1: empty queues first.
	var empty *ctxState
	for _, c := range s.ctxs {
		if c.queueLen() == 0 {
			if empty == nil || c.ctx.SMs() > empty.ctx.SMs() {
				empty = c
			}
		}
	}
	if empty != nil {
		return empty
	}
	// Rule 2: among contexts that still meet the stage deadline, the one
	// with the shortest queue.
	wcet := st.Job.Task.StageWCET(st.Index)
	var meet *ctxState
	for _, c := range s.ctxs {
		if c.estFinish(now).Add(wcet) > st.Deadline {
			continue
		}
		if meet == nil || c.queueLen() < meet.queueLen() ||
			(c.queueLen() == meet.queueLen() && c.pendingWCET < meet.pendingWCET) {
			meet = c
		}
	}
	if meet != nil {
		return meet
	}
	// Rule 3: earliest estimated finish time.
	return s.pickEarliestFinish()
}

func (s *Scheduler) pickShortestQueue() *ctxState {
	best := s.ctxs[0]
	for _, c := range s.ctxs[1:] {
		if c.queueLen() < best.queueLen() {
			best = c
		}
	}
	return best
}

func (s *Scheduler) pickEarliestFinish() *ctxState {
	best := s.ctxs[0]
	for _, c := range s.ctxs[1:] {
		if c.pendingWCET < best.pendingWCET {
			best = c
		}
	}
	return best
}

// dispatch fills idle streams of context c from its three-level queue in
// priority-then-EDF order. Streams are visited in creation order — high-
// priority streams first — so the most urgent stages land on the streams
// with the larger SM share, while dispatch stays work-conserving: an idle
// high-priority stream picks up low work rather than letting a quarter of
// the context's concurrency rot.
func (s *Scheduler) dispatch(c *ctxState, now des.Time) {
	if c.queue.Len() == 0 {
		// Nothing to place: the stream scan below only acts by popping.
		return
	}
	for _, stream := range c.ctx.Streams() {
		// Busy is rechecked every iteration: a gate drop can activate a
		// held frame, which may recursively dispatch onto this stream.
		for !stream.Busy() {
			st := c.queue.Pop()
			if st == nil {
				break
			}
			// Entrance gate: a frame whose FIRST stage has not
			// started by the frame's final deadline is certainly
			// lost — it counts as missed either way, and running
			// it would starve frames that can still make it.
			// Frames already in flight are never abandoned: a
			// late predecessor promotes its successor instead.
			if !s.cfg.DisableLateDrop && st.Index == 0 && now > st.Job.Deadline {
				c.pendingWCET -= st.Job.Task.StageWCET(st.Index)
				if c.pendingWCET < 0 {
					c.pendingWCET = 0
				}
				s.dropped++
				st.Job.Discard(now)
				s.jobOver(st.Job.Task.ID, now)
				continue
			}
			s.launch(c, stream, st, now)
			break
		}
	}
}

// launch submits one stage kernel. Stage executions carry no fixed
// reconfiguration cost: the context pool is pre-created (seamless switch).
// Kernels come from the scheduler's free list and carry the shared
// completion callback, so a launch performs no kernel or closure allocation;
// the per-stage label string is only built when an observer will read it.
func (s *Scheduler) launch(c *ctxState, stream *gpu.Stream, st *rt.StageJob, now des.Time) {
	st.MarkStarted(now)
	c.inFlight++
	task := st.Job.Task
	k := s.getKernel()
	if s.dev.HasObserver() {
		k.Label = st.Label()
	} else {
		k.Label = "stage"
	}
	k.Shares = scaleShares(task.Stages[st.Index].Shares, st.Job.WorkScale)
	k.Arg = st
	k.OnDone = s.doneFn
	stream.Submit(k)
}

// getKernel pops a kernel from the free list or allocates one.
func (s *Scheduler) getKernel() *gpu.Kernel {
	if n := len(s.kernelPool); n > 0 {
		k := s.kernelPool[n-1]
		s.kernelPool[n-1] = nil
		s.kernelPool = s.kernelPool[:n-1]
		return k
	}
	return &gpu.Kernel{}
}

// kernelDone is the shared completion callback: it unpacks the stage, hands
// the kernel back to the free list (the device guarantees it no longer
// touches it), and retires the stage. Recycling before onStageDone lets the
// dispatches it triggers reuse the kernel immediately.
func (s *Scheduler) kernelDone(k *gpu.Kernel, now des.Time) {
	st := k.Arg.(*rt.StageJob)
	c := s.stateOf[k.Stream().Context().ID()]
	k.Reset()
	s.kernelPool = append(s.kernelPool, k)
	s.onStageDone(c, st, now)
}

// scaleShares applies a job's execution-demand scale to stage work. Scale 1
// returns the shared slice untouched (the common case allocates nothing).
func scaleShares(shares []speedup.WorkShare, scale float64) []speedup.WorkShare {
	if scale == 1 || scale <= 0 {
		return shares
	}
	out := make([]speedup.WorkShare, len(shares))
	for i, ws := range shares {
		out[i] = speedup.WorkShare{Class: ws.Class, Work: ws.Work * scale}
	}
	return out
}

// onStageDone retires a stage, releases its successor (with medium promotion
// when the predecessor ran past its virtual deadline), and refills streams.
func (s *Scheduler) onStageDone(c *ctxState, st *rt.StageJob, now des.Time) {
	st.MarkFinished(now)
	c.inFlight--
	c.pendingWCET -= st.Job.Task.StageWCET(st.Index)
	if c.pendingWCET < 0 {
		c.pendingWCET = 0
	}

	if next := st.Index + 1; next < len(st.Job.Stages) {
		ns := st.Job.Stages[next]
		ns.MarkReady(now)
		// A late predecessor promotes the successor to the medium
		// level so the frame can catch up (Section IV-B3).
		if !s.cfg.DisableMediumPromotion && !s.cfg.FlattenPriorities &&
			ns.Level == rt.LevelLow && st.MissedBy(now) {
			ns.Level = rt.LevelMedium
			s.promotions++
		}
		s.enqueue(ns, now)
	} else {
		// Fold the finished job's pipeline latency into the admission
		// estimate before handing out the freed slot.
		pipeMS := (now - st.Job.Stages[0].ReadyAt).Milliseconds()
		const alpha = 0.1
		if s.ewmaPipeMS == 0 {
			s.ewmaPipeMS = pipeMS
		} else {
			s.ewmaPipeMS += alpha * (pipeMS - s.ewmaPipeMS)
		}
		s.jobOver(st.Job.Task.ID, now)
	}
	s.dispatch(c, now)
}

// RecoverKernel implements sched.FaultHandler: the fault injector has
// aborted one of this scheduler's stage kernels mid-flight (the device
// already evicted it and recomputed rates) and hands back the orphaned
// kernel with the resolved recovery decision. The launch's charges against
// the context — its in-flight slot and pending WCET — are unwound first, so
// a retry re-enters the pipeline through the ordinary enqueue path (fresh
// context assignment, queue discipline, entrance gate) exactly like a newly
// ready stage, and a discarded frame leaves no residue in the finish-time
// estimates.
func (s *Scheduler) RecoverKernel(k *gpu.Kernel, stream *gpu.Stream, action sched.RecoveryAction, backoff des.Time, now des.Time) {
	st := k.Arg.(*rt.StageJob)
	c := s.stateOf[stream.Context().ID()]
	k.Reset()
	s.kernelPool = append(s.kernelPool, k)
	c.inFlight--
	c.pendingWCET -= st.Job.Task.StageWCET(st.Index)
	if c.pendingWCET < 0 {
		c.pendingWCET = 0
	}
	switch action {
	case sched.ActionRetry:
		// Re-execution restarts the stage from scratch; the backoff
		// models fault detection and relaunch latency.
		if backoff <= 0 {
			s.enqueue(st, now)
		} else {
			tok := s.getToken()
			tok.st, tok.gen = st, st.Job.Gen
			s.eng.AfterArg(backoff, "core.retry", s.retryFn, tok)
		}
	case sched.ActionKillChain:
		// Shed the task's backlog too: a held frame of the faulted task
		// dies with the faulted frame.
		if h := s.held[st.Job.Task.ID]; h != nil {
			s.held[st.Job.Task.ID] = nil
			s.dropped++
			h.Discard(now)
		}
		fallthrough
	case sched.ActionSkipJob:
		s.dropped++
		st.Job.Discard(now)
		s.jobOver(st.Job.Task.ID, now)
	}
	s.dispatch(c, now)
}

// retryToken carries a backed-off retry through the event queue alongside the
// generation of the job it belongs to (see Scheduler.tokenPool).
type retryToken struct {
	st  *rt.StageJob
	gen uint64
}

// getToken pops a retry token from the free list or allocates one.
func (s *Scheduler) getToken() *retryToken {
	if n := len(s.tokenPool); n > 0 {
		tok := s.tokenPool[n-1]
		s.tokenPool[n-1] = nil
		s.tokenPool = s.tokenPool[:n-1]
		return tok
	}
	return &retryToken{}
}

// retryFire is the shared backed-off retry callback. A stale token — the job
// was discarded, or the struct has since been recycled into a different frame
// (generation mismatch) — dissolves silently; otherwise the stage re-enters
// the pipeline through the ordinary enqueue path.
func (s *Scheduler) retryFire(now des.Time, arg any) {
	tok := arg.(*retryToken)
	st, gen := tok.st, tok.gen
	tok.st = nil
	s.tokenPool = append(s.tokenPool, tok)
	if st.Job.Discarded || st.Job.Gen != gen {
		return
	}
	s.enqueue(st, now)
}

// EvictAll implements sched.Evictor: the device hosting this scheduler was
// lost (fleet failover, DESIGN.md §15), so every resident kernel is aborted
// or cancelled, every queue drained, and every live frame discarded. Streams
// are flushed before their running kernel is evicted so the abort-side pump
// finds nothing to relaunch. Launch-window kernels (dispatched, not started)
// are cancelled and deliberately leaked: the detached gpu.launch event still
// references them, so pooling would let a later stage race the stale start.
// On return the scheduler is quiescent and can accept releases again after a
// device restart.
func (s *Scheduler) EvictAll(now des.Time) {
	for _, c := range s.ctxs {
		for _, stream := range c.ctx.Streams() {
			stream.Flush(func(k *gpu.Kernel) {
				k.Reset()
				s.kernelPool = append(s.kernelPool, k)
			})
			if k := stream.Running(); k != nil {
				if k.Running() {
					s.dev.Abort(k, now)
					k.Reset()
					s.kernelPool = append(s.kernelPool, k)
				} else {
					s.dev.CancelLaunch(k)
				}
			}
		}
		for st := c.queue.Pop(); st != nil; st = c.queue.Pop() {
		}
		c.pendingWCET = 0
		c.inFlight = 0
	}
	for _, t := range s.tasks {
		if j := s.active[t.ID]; j != nil {
			s.active[t.ID] = nil
			s.inflight--
			s.dropped++
			if !j.Discarded {
				j.Discard(now)
			}
		}
		if h := s.held[t.ID]; h != nil {
			s.held[t.ID] = nil
			s.dropped++
			h.Discard(now)
		}
	}
	s.heldOrder = s.heldOrder[:0]
}

// jobOver frees a task's pipeline slot and hands freed admission capacity to
// the oldest held frame whose task is idle.
func (s *Scheduler) jobOver(taskID int, now des.Time) {
	s.active[taskID] = nil
	s.inflight--
	kept := s.heldOrder[:0]
	for i, id := range s.heldOrder {
		if s.inflight >= s.maxInflight {
			kept = append(kept, s.heldOrder[i:]...)
			break
		}
		h := s.held[id]
		switch {
		case h == nil:
			// Stale entry; drop it.
		case s.active[id] != nil:
			// Task still busy; keep its place in line.
			kept = append(kept, id)
		case !s.cfg.DisableLateDrop &&
			now.Add(des.FromMillis(s.ewmaPipeMS)) > h.Deadline:
			// The frame's remaining budget is below the current
			// pipeline latency: it would finish late. Skipping
			// it now (it counts as missed either way) lets the
			// task's next frame start fresh and on time.
			s.held[id] = nil
			s.dropped++
			h.Discard(now)
		default:
			s.held[id] = nil
			s.activate(h, now)
		}
	}
	s.heldOrder = kept
}

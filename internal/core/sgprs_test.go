package core

import (
	"testing"

	"sgprs/internal/des"
	"sgprs/internal/dnn"
	"sgprs/internal/gpu"
	"sgprs/internal/profile"
	"sgprs/internal/rt"
	"sgprs/internal/speedup"
)

// rig is a fully wired single-device test environment.
type rig struct {
	eng   *des.Engine
	dev   *gpu.Device
	sched *Scheduler
	tasks []*rt.Task
}

// newRig builds n profiled ResNet18 tasks at 30 fps with 6 stages and an
// attached SGPRS scheduler over the given context pool.
func newRig(t *testing.T, cfg Config, n int) *rig {
	t.Helper()
	eng := des.NewEngine()
	model := speedup.DefaultModel()
	gcfg := gpu.DefaultConfig()
	dev, err := gpu.NewDevice(eng, model, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	g := dnn.ResNet18(dnn.DefaultCostModel())
	dnn.Calibrate(g, model, speedup.DeviceSMs, 1.40)
	stages, err := dnn.Partition(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	period := des.FromSeconds(1.0 / 30)
	var tasks []*rt.Task
	prof := profile.New(model, gcfg)
	for i := 0; i < n; i++ {
		task, err := rt.NewTask(i, "resnet18", g, stages, period, period, 0)
		if err != nil {
			t.Fatal(err)
		}
		minSMs := cfg.ContextSMs[0]
		for _, s := range cfg.ContextSMs[1:] {
			if s < minSMs {
				minSMs = s
			}
		}
		if err := prof.ProfileTask(task, minSMs); err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, task)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Attach(eng, dev, tasks); err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, dev: dev, sched: s, tasks: tasks}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{ContextSMs: []int{34}}); err == nil {
		t.Error("nameless config accepted")
	}
	if _, err := New(Config{Name: "x"}); err == nil {
		t.Error("contextless config accepted")
	}
	if _, err := New(Config{Name: "x", ContextSMs: []int{34}}); err == nil {
		t.Error("streamless config accepted")
	}
	if _, err := New(Config{Name: "x", ContextSMs: []int{34}, HighStreams: -1, LowStreams: 3}); err == nil {
		t.Error("negative stream count accepted")
	}
	if _, err := New(DefaultConfig("ok", []int{34, 34})); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig("x", []int{34, 34})
	if cfg.HighStreams != 2 || cfg.LowStreams != 2 {
		t.Errorf("streams = %d/%d, want paper's 2/2", cfg.HighStreams, cfg.LowStreams)
	}
	if cfg.DisableMediumPromotion || cfg.AssignPolicy != PolicyPaper {
		t.Error("default must enable promotion and the paper policy")
	}
}

func TestAttachBuildsContextPool(t *testing.T) {
	r := newRig(t, DefaultConfig("sgprs", []int{34, 34}), 1)
	ctxs := r.dev.Contexts()
	if len(ctxs) != 2 {
		t.Fatalf("contexts = %d", len(ctxs))
	}
	for _, c := range ctxs {
		if c.SMs() != 34 {
			t.Errorf("%v SMs = %d", c, c.SMs())
		}
		var hi, lo int
		for _, s := range c.Streams() {
			if s.Priority() == gpu.HighPriority {
				hi++
			} else {
				lo++
			}
		}
		if hi != 2 || lo != 2 {
			t.Errorf("%v has %d high / %d low streams, want 2/2", c, hi, lo)
		}
	}
}

func TestAttachErrors(t *testing.T) {
	r := newRig(t, DefaultConfig("sgprs", []int{34}), 1)
	if err := r.sched.Attach(r.eng, r.dev, r.tasks); err == nil {
		t.Error("double attach accepted")
	}
	s, _ := New(DefaultConfig("x", []int{34}))
	if err := s.Attach(des.NewEngine(), r.dev, nil); err == nil {
		t.Error("attach with no tasks accepted")
	}
	// Unprofiled task.
	g := dnn.TinyCNN(dnn.DefaultCostModel())
	stages, _ := dnn.Partition(g, 2)
	task, _ := rt.NewTask(0, "t", g, stages, des.Second, des.Second, 0)
	s2, _ := New(DefaultConfig("y", []int{34}))
	if err := s2.Attach(des.NewEngine(), r.dev, []*rt.Task{task}); err == nil {
		t.Error("unprofiled task accepted")
	}
	// Context larger than the device.
	s3, _ := New(DefaultConfig("z", []int{999}))
	eng := des.NewEngine()
	dev, _ := gpu.NewDevice(eng, speedup.DefaultModel(), gpu.DefaultConfig())
	if err := s3.Attach(eng, dev, r.tasks); err == nil {
		t.Error("oversized context accepted")
	}
}

func TestSingleJobMeetsDeadline(t *testing.T) {
	r := newRig(t, DefaultConfig("sgprs", []int{34, 34}), 1)
	task := r.tasks[0]
	job := task.NewJob(0, 0)
	r.sched.OnRelease(job, 0)
	r.eng.Run()
	if !job.Done {
		t.Fatal("job did not complete")
	}
	if job.Missed(r.eng.Now()) {
		t.Errorf("isolated job missed its deadline: response %v", job.ResponseTime())
	}
	// All stages ran in order.
	prev := des.Time(0)
	for _, st := range job.Stages {
		if !st.Finished {
			t.Fatalf("stage %d unfinished", st.Index)
		}
		if st.FinishedAt < prev {
			t.Fatalf("stage %d finished before predecessor", st.Index)
		}
		prev = st.FinishedAt
	}
}

func TestStagesOfOneJobChainSequentially(t *testing.T) {
	r := newRig(t, DefaultConfig("sgprs", []int{68}), 1)
	job := r.tasks[0].NewJob(0, 0)
	r.sched.OnRelease(job, 0)
	r.eng.Run()
	for j := 1; j < len(job.Stages); j++ {
		if job.Stages[j].StartedAt < job.Stages[j-1].FinishedAt {
			t.Fatalf("stage %d started at %v before stage %d finished at %v",
				j, job.Stages[j].StartedAt, j-1, job.Stages[j-1].FinishedAt)
		}
	}
}

func TestEmptyQueueRulePrefersLargestEmptyContext(t *testing.T) {
	cfg := DefaultConfig("sgprs", []int{20, 51})
	r := newRig(t, cfg, 1)
	job := r.tasks[0].NewJob(0, 0)
	r.sched.OnRelease(job, 0)
	r.eng.Run()
	// With both contexts empty, rule 1 picks the larger (51 SMs), so the
	// first stage must have executed there. Verify via completed kernel
	// accounting: context 1 should have run at least one kernel.
	if r.dev.Contexts()[1].QueuedKernels() != 0 {
		t.Error("work left behind")
	}
	if !job.Done {
		t.Fatal("job incomplete")
	}
}

func TestMediumPromotionHappens(t *testing.T) {
	// Overload a tiny context pool so predecessors run late.
	cfg := DefaultConfig("sgprs", []int{10})
	r := newRig(t, cfg, 22)
	for _, task := range r.tasks {
		r.sched.OnRelease(task.NewJob(0, 0), 0)
	}
	r.eng.RunUntil(des.FromSeconds(1))
	if r.sched.Promotions() == 0 {
		t.Error("no medium promotions under overload")
	}
}

func TestMediumPromotionCanBeDisabled(t *testing.T) {
	cfg := DefaultConfig("sgprs", []int{10})
	cfg.DisableMediumPromotion = true
	r := newRig(t, cfg, 22)
	for _, task := range r.tasks {
		r.sched.OnRelease(task.NewJob(0, 0), 0)
	}
	r.eng.RunUntil(des.FromSeconds(1))
	if r.sched.Promotions() != 0 {
		t.Errorf("promotions = %d with promotion disabled", r.sched.Promotions())
	}
}

func TestFrameReplacementUnderOverload(t *testing.T) {
	cfg := DefaultConfig("sgprs", []int{10})
	r := newRig(t, cfg, 20)
	// Release three periods of jobs for every task at once; the pipeline
	// depth bound must replace stale held frames.
	for _, task := range r.tasks {
		for k := 0; k < 3; k++ {
			at := des.Time(k) * task.Period
			task := task
			k := k
			r.eng.Schedule(at, "rel", func(now des.Time) {
				r.sched.OnRelease(task.NewJob(k, now), now)
			})
		}
	}
	r.eng.RunUntil(des.FromSeconds(2))
	if r.sched.replaced == 0 && r.sched.Dropped() == 0 {
		t.Error("overload produced neither replacements nor drops")
	}
}

func TestLittleLawWindowSizing(t *testing.T) {
	r := newRig(t, DefaultConfig("sgprs", []int{34, 34}), 1)
	// Window = deadline · aggCap / jobWork ≈ 33.3 · 23.3 / (1.40·gain).
	g := dnn.ResNet18(dnn.DefaultCostModel())
	dnn.Calibrate(g, speedup.DefaultModel(), speedup.DeviceSMs, 1.40)
	wantApprox := 33.333 * r.dev.Config().AggregateGainCap / g.TotalWorkMS()
	got := float64(r.sched.maxInflight)
	if got < wantApprox-1.5 || got > wantApprox+0.5 {
		t.Errorf("maxInflight = %v, want ≈ %.1f", got, wantApprox)
	}
	// Explicit override wins.
	cfg := DefaultConfig("sgprs", []int{34, 34})
	cfg.MaxInflight = 7
	r2 := newRig(t, cfg, 1)
	if r2.sched.maxInflight != 7 {
		t.Errorf("override maxInflight = %d, want 7", r2.sched.maxInflight)
	}
}

func TestSustainedThroughputUnderOverload(t *testing.T) {
	// The headline SGPRS property: past the pivot, completions per second
	// hold near the window bound instead of collapsing.
	cfg := DefaultConfig("sgprs", []int{34, 34})
	r := newRig(t, cfg, 30)
	var jobs []*rt.Job
	for _, task := range r.tasks {
		task := task
		var release func(k int)
		release = func(k int) {
			at := des.Time(int64(task.Period) * int64(k))
			if at >= des.FromSeconds(3) {
				return
			}
			r.eng.Schedule(at, "rel", func(now des.Time) {
				j := task.NewJob(k, now)
				jobs = append(jobs, j)
				r.sched.OnRelease(j, now)
				release(k + 1)
			})
		}
		release(0)
	}
	r.eng.RunUntil(des.FromSeconds(3))
	done := 0
	for _, j := range jobs {
		if j.Done && j.FinishedAt >= des.Second {
			done++
		}
	}
	fps := float64(done) / 2 // window [1s,3s)
	if fps < 600 || fps > 850 {
		t.Errorf("overload FPS = %.0f, want sustained ~750", fps)
	}
}

func TestAssignPolicies(t *testing.T) {
	for _, pol := range []AssignPolicy{PolicyPaper, PolicyShortestQueue, PolicyEarliestFinish, PolicyRoundRobin} {
		cfg := DefaultConfig("sgprs", []int{34, 34})
		cfg.AssignPolicy = pol
		r := newRig(t, cfg, 4)
		for _, task := range r.tasks {
			r.sched.OnRelease(task.NewJob(0, 0), 0)
		}
		r.eng.Run()
		for _, task := range r.tasks {
			_ = task
		}
		if got := r.dev.CompletedKernels(); got != 4*6 {
			t.Errorf("policy %v completed %d kernels, want 24", pol, got)
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	names := map[AssignPolicy]string{
		PolicyPaper:          "paper",
		PolicyShortestQueue:  "shortest-queue",
		PolicyEarliestFinish: "earliest-finish",
		PolicyRoundRobin:     "round-robin",
		AssignPolicy(9):      "policy(9)",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestName(t *testing.T) {
	s, _ := New(DefaultConfig("sgprs-1.5x", []int{34}))
	if s.Name() != "sgprs-1.5x" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestZeroMissesAtLightLoad(t *testing.T) {
	cfg := DefaultConfig("sgprs", []int{34, 34})
	r := newRig(t, cfg, 8)
	var jobs []*rt.Job
	for _, task := range r.tasks {
		task := task
		var release func(k int)
		release = func(k int) {
			at := des.Time(int64(task.Period) * int64(k))
			if at >= des.FromSeconds(2) {
				return
			}
			r.eng.Schedule(at, "rel", func(now des.Time) {
				j := task.NewJob(k, now)
				jobs = append(jobs, j)
				r.sched.OnRelease(j, now)
				release(k + 1)
			})
		}
		release(0)
	}
	r.eng.RunUntil(des.FromSeconds(2))
	for _, j := range jobs {
		if j.Deadline < des.FromSeconds(2) && j.Missed(des.FromSeconds(2)) {
			t.Fatalf("job %s missed at light load (8 tasks)", j)
		}
	}
}

func TestFlattenPrioritiesPureEDF(t *testing.T) {
	cfg := DefaultConfig("sgprs", []int{10})
	cfg.FlattenPriorities = true
	r := newRig(t, cfg, 22)
	for _, task := range r.tasks {
		r.sched.OnRelease(task.NewJob(0, 0), 0)
	}
	r.eng.RunUntil(des.FromSeconds(1))
	if r.sched.Promotions() != 0 {
		t.Errorf("flattened scheduler promoted %d stages", r.sched.Promotions())
	}
	// Work still flows: kernels completed despite the flat queue.
	if r.dev.CompletedKernels() == 0 {
		t.Error("no kernels completed under flat EDF")
	}
}

func TestWorkScaleStretchesExecution(t *testing.T) {
	run := func(scale float64) des.Time {
		r := newRig(t, DefaultConfig("sgprs", []int{68}), 1)
		job := r.tasks[0].NewJob(0, 0)
		job.WorkScale = scale
		r.sched.OnRelease(job, 0)
		r.eng.Run()
		if !job.Done {
			t.Fatal("job incomplete")
		}
		return job.FinishedAt
	}
	base := run(1)
	double := run(2)
	ratio := float64(double) / float64(base)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("2x work scale changed latency by %.2fx, want ~2", ratio)
	}
}

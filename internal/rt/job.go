package rt

import (
	"fmt"
	"strconv"

	"sgprs/internal/des"
)

// Job is one periodic instance (one frame) of a task.
type Job struct {
	Task     *Task
	Index    int      // instance number, 0-based
	Release  des.Time // absolute release instant
	Deadline des.Time // absolute deadline dᵢ = release + Dᵢ

	// WorkScale multiplies the job's execution demand relative to the
	// profiled nominal (1.0). Values above 1 model WCET overruns and
	// input-dependent execution-time variation; schedulers apply it when
	// building kernels but never see it in advance — exactly like real
	// inference-time variation.
	WorkScale float64

	Stages []*StageJob

	FinishedAt des.Time
	Done       bool

	// Retries counts how many times a stage of this job was re-executed
	// after an injected transient fault (RecoverRetry); the fault injector
	// owns it. A job that completes with Retries > 0 is a recovery.
	Retries int

	// Discarded marks a job the scheduler permanently abandoned (a
	// dropped or replaced frame), with the instant Discard recorded.
	// The batch metrics path reads these fields off retained jobs where
	// the streaming collector observes the JobDiscarded callback.
	Discarded   bool
	DiscardedAt des.Time

	// Watcher, when non-nil, observes the job's end of life: completion
	// (fired by MarkFinished of the last stage) and abandonment (fired by
	// Discard). The workload generator installs itself here to stream
	// metrics and recycle finished jobs without retaining them.
	Watcher JobWatcher

	// MetricsSlot is the streaming metrics collector's released-order
	// index for this job, or -1 when the job lies outside the measurement
	// window. Owned by metrics.Collector; everything else treats it as
	// opaque.
	MetricsSlot int

	// BacklogSlot is the collector's admission-backlog interval index,
	// assigned to every released job (unlike MetricsSlot, which covers
	// only in-window ones). Owned by metrics.Collector; -1 until the
	// release is recorded.
	BacklogSlot int

	// pooled marks a job that currently sits in a JobPool free list; a
	// second Put before the next Get is a use-after-recycle bug.
	pooled bool

	// Gen counts the struct's reincarnations through a JobPool: initJob
	// increments it each time the struct is (re)initialised as a new
	// instance. Deferred references — a backed-off retry event holding a
	// *StageJob across a device-loss drain — capture it alongside the
	// pointer and compare at fire time, because a recycled struct can look
	// valid (Discarded reset to false) while belonging to a different frame.
	Gen uint64
}

// JobWatcher observes the two ways a job's lifecycle can end. Callbacks run
// synchronously on the simulation goroutine, from inside the scheduler's own
// call stack: a watcher may record the job and hand it to a JobPool (deferred
// reuse keeps the fields readable until the next release), but must not
// mutate it.
type JobWatcher interface {
	// JobDone fires exactly once, when the job's final stage finishes.
	JobDone(j *Job, now des.Time)
	// JobDiscarded fires when a scheduler permanently abandons an
	// unfinished job (a dropped or replaced frame); the job will never
	// complete and no further callback follows.
	JobDiscarded(j *Job, now des.Time)
}

// StageJob is one stage instance τᵢʲ of a job, the unit the online scheduler
// dispatches. Its absolute deadline dᵢʲ is assigned at release from the
// relative virtual deadlines (Section IV-B1).
type StageJob struct {
	Job      *Job
	Index    int      // stage index j
	Deadline des.Time // absolute virtual deadline dᵢʲ

	Level      Level // current logical priority (may be promoted to medium)
	ReadyAt    des.Time
	StartedAt  des.Time
	FinishedAt des.Time
	Ready      bool
	Started    bool
	Finished   bool
}

// NewJob releases instance index of the task at the given instant, assigning
// every stage its absolute virtual deadline: stage j's deadline is the
// release plus the cumulative virtual deadlines through j, so the last
// stage's deadline coincides with the job deadline. The task must have been
// profiled first.
func (t *Task) NewJob(index int, release des.Time) *Job {
	j := &Job{}
	t.initJob(j, index, release)
	return j
}

// initJob (re)initialises j as instance index of the task, reusing j's Stages
// slice and StageJob structs when their capacity allows — the JobPool's reuse
// path. Every field of the job and of each stage is written, so a recycled
// job is indistinguishable from a freshly allocated one.
func (t *Task) initJob(j *Job, index int, release des.Time) {
	if !t.Profiled() {
		panic(fmt.Sprintf("rt: NewJob on unprofiled task %s", t))
	}
	old := j.Stages[:cap(j.Stages)]
	gen := j.Gen + 1
	*j = Job{
		Task:        t,
		Index:       index,
		Release:     release,
		Deadline:    release.Add(t.Deadline),
		WorkScale:   1,
		MetricsSlot: -1,
		BacklogSlot: -1,
		Stages:      old[:0],
		Gen:         gen,
	}
	var cum des.Time
	for s := range t.Stages {
		cum += t.virtualDls[s]
		var sj *StageJob
		if s < len(old) && old[s] != nil {
			sj = old[s]
		} else {
			sj = &StageJob{}
		}
		*sj = StageJob{
			Job:      j,
			Index:    s,
			Deadline: release.Add(cum),
			Level:    t.StageLevel(s),
		}
		j.Stages = append(j.Stages, sj)
	}
}

// MarkReady records that the stage's predecessor finished (or, for stage 0,
// that the job was released) and it is eligible for dispatch.
func (s *StageJob) MarkReady(now des.Time) {
	s.Ready = true
	s.ReadyAt = now
}

// MarkStarted records dispatch onto the GPU.
func (s *StageJob) MarkStarted(now des.Time) {
	s.Started = true
	s.StartedAt = now
}

// MarkFinished records completion; for the last stage it completes the job
// and notifies the job's watcher.
func (s *StageJob) MarkFinished(now des.Time) {
	s.Finished = true
	s.FinishedAt = now
	if s.Index == len(s.Job.Stages)-1 {
		j := s.Job
		j.Done = true
		j.FinishedAt = now
		if j.Watcher != nil {
			j.Watcher.JobDone(j, now)
		}
	}
}

// Discard notifies the job's watcher that the scheduler has permanently
// abandoned this unfinished job — a dropped or replaced frame that will
// never complete. Discarding a completed job is a scheduler bug.
func (j *Job) Discard(now des.Time) {
	if j.Done {
		panic(fmt.Sprintf("rt: discard of completed job %s", j))
	}
	j.Discarded = true
	j.DiscardedAt = now
	if j.Watcher != nil {
		j.Watcher.JobDiscarded(j, now)
	}
}

// MissedBy reports whether the stage's deadline has passed at the instant
// now without the stage having finished.
func (s *StageJob) MissedBy(now des.Time) bool {
	if s.Finished {
		return s.FinishedAt > s.Deadline
	}
	return now > s.Deadline
}

// Missed reports whether the job finished after its deadline (or has not
// finished although the deadline passed at instant now).
func (j *Job) Missed(now des.Time) bool {
	if j.Done {
		return j.FinishedAt > j.Deadline
	}
	return now > j.Deadline
}

// ResponseTime reports finish − release for completed jobs, and 0 otherwise.
func (j *Job) ResponseTime() des.Time {
	if !j.Done {
		return 0
	}
	return j.FinishedAt - j.Release
}

// Lateness reports finish − deadline (negative when early). Only meaningful
// for completed jobs.
func (j *Job) Lateness() des.Time { return j.FinishedAt - j.Deadline }

// Label renders "τ2#17". It is String without the fmt machinery: schedulers
// stamp every launched kernel with a label, which makes this a hot path.
func (j *Job) Label() string { return string(j.appendLabel(make([]byte, 0, 16))) }

func (j *Job) appendLabel(b []byte) []byte {
	b = append(b, "τ"...)
	b = strconv.AppendInt(b, int64(j.Task.ID), 10)
	b = append(b, '#')
	b = strconv.AppendInt(b, int64(j.Index), 10)
	return b
}

// String renders "τ2#17".
func (j *Job) String() string { return j.Label() }

// Label renders "τ2#17.s3" (see Job.Label).
func (s *StageJob) Label() string {
	b := s.Job.appendLabel(make([]byte, 0, 20))
	b = append(b, ".s"...)
	b = strconv.AppendInt(b, int64(s.Index), 10)
	return string(b)
}

// String renders "τ2#17.s3".
func (s *StageJob) String() string { return s.Label() }

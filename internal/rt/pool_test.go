package rt

import (
	"testing"

	"sgprs/internal/des"
)

// profiledTask builds a profiled 3-stage task for pool tests.
func profiledTask(t *testing.T, id int) *Task {
	t.Helper()
	task := testTask(t, 3)
	task.ID = id
	wcets := []des.Time{des.FromMillis(2), des.FromMillis(3), des.FromMillis(1)}
	if err := task.SetWCETs(wcets); err != nil {
		t.Fatal(err)
	}
	return task
}

// TestPoolReuseMatchesFreshJob: a job from the reuse path must be field-for-
// field identical to a freshly allocated one, including every stage.
func TestPoolReuseMatchesFreshJob(t *testing.T) {
	task := profiledTask(t, 0)
	var p JobPool

	old := p.Get(task, 0, des.FromMillis(10))
	// Dirty every mutable field the online phase touches.
	old.WorkScale = 1.7
	old.MetricsSlot = 42
	for _, st := range old.Stages {
		st.MarkReady(des.FromMillis(11))
		st.MarkStarted(des.FromMillis(12))
		st.Level = LevelMedium
	}
	old.Stages[len(old.Stages)-1].MarkFinished(des.FromMillis(20))
	p.Put(old)

	got := p.Get(task, 7, des.FromMillis(50))
	if got != old {
		t.Fatal("pool did not hand back the recycled job struct")
	}
	want := task.NewJob(7, des.FromMillis(50))
	if got.Task != want.Task || got.Index != want.Index || got.Release != want.Release ||
		got.Deadline != want.Deadline || got.WorkScale != want.WorkScale ||
		got.Done || got.FinishedAt != 0 || got.MetricsSlot != -1 || got.Watcher != nil {
		t.Fatalf("recycled job not reinitialised: %+v", got)
	}
	if len(got.Stages) != len(want.Stages) {
		t.Fatalf("recycled job has %d stages, want %d", len(got.Stages), len(want.Stages))
	}
	for s := range got.Stages {
		g, w := got.Stages[s], want.Stages[s]
		if g.Job != got || g.Index != w.Index || g.Deadline != w.Deadline || g.Level != w.Level ||
			g.Ready || g.Started || g.Finished || g.ReadyAt != 0 || g.StartedAt != 0 || g.FinishedAt != 0 {
			t.Fatalf("recycled stage %d not reinitialised: %+v", s, g)
		}
	}
}

// TestPoolDoubleRecyclePanics: putting a job twice before reuse is the
// use-after-recycle bug the pool must surface loudly.
func TestPoolDoubleRecyclePanics(t *testing.T) {
	task := profiledTask(t, 0)
	var p JobPool
	j := p.Get(task, 0, 0)
	p.Put(j)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic")
		}
	}()
	p.Put(j)
}

// countingWatcher records lifecycle callbacks per (task, index) identity.
type countingWatcher struct {
	done      map[[2]int]int
	discarded int
	pool      *JobPool
}

func (w *countingWatcher) JobDone(j *Job, now des.Time) {
	if w.done == nil {
		w.done = map[[2]int]int{}
	}
	w.done[[2]int{j.Task.ID, j.Index}]++
	if w.pool != nil {
		w.pool.Put(j)
	}
}

func (w *countingWatcher) JobDiscarded(j *Job, now des.Time) {
	w.discarded++
	if w.pool != nil {
		w.pool.Put(j)
	}
}

// TestRecycledJobCannotCorruptLiveJob is the metrics-safety test: after a
// finished job is recorded and recycled, its struct's next occupant carries
// fresh identity and a live lifecycle, and completing the new occupant can
// never re-fire the old occupant's completion. The recycled struct's slate
// (slot, watcher, flags) is wiped before the new job is visible to anyone.
func TestRecycledJobCannotCorruptLiveJob(t *testing.T) {
	task := profiledTask(t, 3)
	var p JobPool
	w := &countingWatcher{pool: &p}

	a := p.Get(task, 0, 0)
	a.Watcher = w
	a.MetricsSlot = 0
	for _, st := range a.Stages {
		st.MarkFinished(des.FromMillis(5)) // last stage fires JobDone → Put
	}
	if w.done[[2]int{3, 0}] != 1 {
		t.Fatalf("job a completed %d times, want 1", w.done[[2]int{3, 0}])
	}
	if p.Len() != 1 {
		t.Fatalf("pool holds %d jobs after completion, want 1", p.Len())
	}

	// b reuses a's struct. Its slot and watcher must start clean, so a
	// collector that assigned slot 0 to a can never see b under a's slot.
	b := p.Get(task, 1, des.FromMillis(40))
	if b != a {
		t.Fatal("pool did not reuse the recycled struct")
	}
	if b.MetricsSlot != -1 || b.Watcher != nil || b.Done {
		t.Fatalf("recycled struct leaked state into new job: slot=%d watcher=%v done=%v",
			b.MetricsSlot, b.Watcher, b.Done)
	}
	b.Watcher = w
	b.MetricsSlot = 1
	for _, st := range b.Stages {
		st.MarkFinished(des.FromMillis(45))
	}
	if w.done[[2]int{3, 0}] != 1 || w.done[[2]int{3, 1}] != 1 {
		t.Fatalf("completion counts corrupted: %v", w.done)
	}
}

// TestDiscardNotifiesWatcherOnce: discarding an unfinished job fires
// JobDiscarded (recycling it), and discarding a done job panics.
func TestDiscardNotifiesWatcherOnce(t *testing.T) {
	task := profiledTask(t, 0)
	var p JobPool
	w := &countingWatcher{pool: &p}

	j := p.Get(task, 0, 0)
	j.Watcher = w
	j.Discard(des.FromMillis(1))
	if w.discarded != 1 || p.Len() != 1 {
		t.Fatalf("discard: %d callbacks, %d pooled; want 1 and 1", w.discarded, p.Len())
	}

	done := task.NewJob(1, 0)
	done.Stages[len(done.Stages)-1].MarkFinished(des.FromMillis(2))
	defer func() {
		if recover() == nil {
			t.Fatal("Discard of a completed job did not panic")
		}
	}()
	done.Discard(des.FromMillis(3))
}

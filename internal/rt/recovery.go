package rt

import "fmt"

// RecoveryPolicy selects what a scheduler does with a job whose kernel
// suffered a transient fault mid-flight (the fault-injection layer,
// DESIGN.md §13). The policy is per-task: a safety-critical perception task
// may retry while a best-effort preview task skips the frame.
type RecoveryPolicy int

const (
	// RecoverDefault defers to the run-level default in the fault
	// configuration (which itself defaults to RecoverRetry).
	RecoverDefault RecoveryPolicy = iota
	// RecoverRetry re-executes the faulted stage from scratch, up to the
	// task's retry budget per job; an exhausted budget falls back to
	// RecoverSkipJob.
	RecoverRetry
	// RecoverSkipJob discards the faulted frame and moves on.
	RecoverSkipJob
	// RecoverKillChain discards the faulted frame and the task's held
	// backlog — the load-shedding response.
	RecoverKillChain
)

// String names the policy for reports and config round-trips.
func (p RecoveryPolicy) String() string {
	switch p {
	case RecoverDefault:
		return "default"
	case RecoverRetry:
		return "retry"
	case RecoverSkipJob:
		return "skip-job"
	case RecoverKillChain:
		return "kill-chain"
	default:
		return fmt.Sprintf("recovery(%d)", int(p))
	}
}

// ParseRecoveryPolicy resolves the config-file spelling of a policy; the
// empty string means RecoverDefault.
func ParseRecoveryPolicy(s string) (RecoveryPolicy, error) {
	switch s {
	case "", "default":
		return RecoverDefault, nil
	case "retry":
		return RecoverRetry, nil
	case "skip-job", "skip":
		return RecoverSkipJob, nil
	case "kill-chain", "kill":
		return RecoverKillChain, nil
	default:
		return RecoverDefault, fmt.Errorf("rt: unknown recovery policy %q (want retry, skip-job, or kill-chain)", s)
	}
}

// Package rt implements the paper's real-time task model (Section II): a
// task set S = {τ₁ … τ|S|} of periodic DNN inference tasks, each a chain of
// stages (sub-tasks τᵢʲ) with measured WCETs, a relative deadline Dᵢ fixed by
// the designer, and per-stage virtual deadlines Dᵢʲ derived offline in
// proportion to stage WCET (Section IV-A2).
package rt

import (
	"fmt"

	"sgprs/internal/des"
	"sgprs/internal/dnn"
)

// Level is a logical scheduling priority (Section IV-B3). The paper uses two
// offline levels — the last stage of every task is high, the rest low — plus
// an online medium level for stages whose predecessor missed its deadline.
type Level int

// Priority levels, ordered so that a larger value means more urgent.
const (
	LevelLow Level = iota
	LevelMedium
	LevelHigh
)

// String names the level for traces and reports.
func (l Level) String() string {
	switch l {
	case LevelLow:
		return "low"
	case LevelMedium:
		return "medium"
	case LevelHigh:
		return "high"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Task is a periodic DNN inference task τᵢ.
type Task struct {
	ID       int
	Name     string
	Graph    *dnn.Graph
	Stages   []*dnn.Stage
	Period   des.Time
	Deadline des.Time // relative deadline Dᵢ
	Offset   des.Time // first release instant

	// ReleaseJitter bounds the uniform arrival jitter the release
	// generator applies (0 = strictly periodic); WorkVariation is the
	// relative spread of per-job execution demand (0 = deterministic).
	// Both describe workload behaviour, not scheduler policy; the
	// workload generator fills them from its TaskSpec.
	ReleaseJitter des.Time
	WorkVariation float64

	// Recovery selects how a scheduler reacts when one of this task's
	// kernels suffers an injected transient fault; RecoverDefault defers
	// to the run-level fault configuration. MaxRetries bounds
	// RecoverRetry's re-executions per job (0 = use the run-level
	// default). Like the fields above these are filled from the workload
	// TaskSpec and are inert unless the run injects faults.
	Recovery   RecoveryPolicy
	MaxRetries int

	// Offline-measured timing (filled by the profiler).
	wcet       []des.Time // per-stage WCET Cᵢʲ
	totalWCET  des.Time   // task WCET Cᵢ
	virtualDls []des.Time // per-stage relative virtual deadline Dᵢʲ
}

// NewTask builds a task over pre-partitioned stages. WCETs and virtual
// deadlines are unset until SetWCETs is called (the offline phase).
func NewTask(id int, name string, g *dnn.Graph, stages []*dnn.Stage, period, deadline, offset des.Time) (*Task, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("rt: task %q has no stages", name)
	}
	if period <= 0 {
		return nil, fmt.Errorf("rt: task %q period %v must be positive", name, period)
	}
	if deadline <= 0 || deadline > period {
		return nil, fmt.Errorf("rt: task %q deadline %v must be in (0, period %v] (constrained-deadline model)", name, deadline, period)
	}
	if offset < 0 {
		return nil, fmt.Errorf("rt: task %q offset %v must be non-negative", name, offset)
	}
	return &Task{
		ID:       id,
		Name:     name,
		Graph:    g,
		Stages:   stages,
		Period:   period,
		Deadline: deadline,
		Offset:   offset,
	}, nil
}

// NumStages reports the number of stages.
func (t *Task) NumStages() int { return len(t.Stages) }

// SetWCETs installs offline-measured per-stage WCETs and derives the virtual
// deadlines: Dᵢʲ = Dᵢ · Cᵢʲ / Cᵢ (Section IV-A2). The split always sums to
// exactly Dᵢ; the last stage absorbs rounding.
func (t *Task) SetWCETs(stageWCET []des.Time) error {
	if len(stageWCET) != len(t.Stages) {
		return fmt.Errorf("rt: task %q has %d stages, got %d WCETs", t.Name, len(t.Stages), len(stageWCET))
	}
	var total des.Time
	for j, c := range stageWCET {
		if c <= 0 {
			return fmt.Errorf("rt: task %q stage %d WCET %v must be positive", t.Name, j, c)
		}
		total += c
	}
	t.wcet = append([]des.Time(nil), stageWCET...)
	t.totalWCET = total

	t.virtualDls = make([]des.Time, len(stageWCET))
	var assigned des.Time
	for j, c := range stageWCET {
		if j == len(stageWCET)-1 {
			t.virtualDls[j] = t.Deadline - assigned
			continue
		}
		d := des.Time(float64(t.Deadline) * float64(c) / float64(total))
		t.virtualDls[j] = d
		assigned += d
	}
	return nil
}

// Profiled reports whether the offline phase has run.
func (t *Task) Profiled() bool { return t.wcet != nil }

// WCET reports the task's total worst-case execution time Cᵢ.
func (t *Task) WCET() des.Time { return t.totalWCET }

// StageWCET reports stage j's worst-case execution time Cᵢʲ.
func (t *Task) StageWCET(j int) des.Time { return t.wcet[j] }

// VirtualDeadline reports stage j's relative virtual deadline Dᵢʲ.
func (t *Task) VirtualDeadline(j int) des.Time { return t.virtualDls[j] }

// StageLevel reports the offline priority level of stage j: the last stage
// of every task is high priority, all earlier stages low (Section IV-A1).
func (t *Task) StageLevel(j int) Level {
	if j == len(t.Stages)-1 {
		return LevelHigh
	}
	return LevelLow
}

// Utilization reports Cᵢ/Tᵢ. It is zero until the task is profiled.
func (t *Task) Utilization() float64 {
	if t.Period == 0 {
		return 0
	}
	return float64(t.totalWCET) / float64(t.Period)
}

// String renders "τ3(resnet18,T=33.3ms)".
func (t *Task) String() string {
	return fmt.Sprintf("τ%d(%s,T=%v)", t.ID, t.Name, t.Period)
}

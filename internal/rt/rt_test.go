package rt

import (
	"testing"
	"testing/quick"

	"sgprs/internal/des"
	"sgprs/internal/dnn"
)

func testTask(t *testing.T, nStages int) *Task {
	t.Helper()
	g := dnn.ResNet18(dnn.DefaultCostModel())
	stages, err := dnn.Partition(g, nStages)
	if err != nil {
		t.Fatal(err)
	}
	task, err := NewTask(0, "resnet18", g, stages, des.FromMillis(33.333), des.FromMillis(33.333), 0)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestNewTaskValidation(t *testing.T) {
	g := dnn.ResNet18(dnn.DefaultCostModel())
	stages, _ := dnn.Partition(g, 6)
	period := des.FromMillis(33.3)

	if _, err := NewTask(0, "x", g, nil, period, period, 0); err == nil {
		t.Error("no stages accepted")
	}
	if _, err := NewTask(0, "x", g, stages, 0, period, 0); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewTask(0, "x", g, stages, period, 0, 0); err == nil {
		t.Error("zero deadline accepted")
	}
	if _, err := NewTask(0, "x", g, stages, period, period+1, 0); err == nil {
		t.Error("deadline beyond period accepted (constrained-deadline model)")
	}
	if _, err := NewTask(0, "x", g, stages, period, period, -1); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := NewTask(0, "x", g, stages, period, period, 0); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
}

func TestSetWCETsAndVirtualDeadlines(t *testing.T) {
	task := testTask(t, 6)
	if task.Profiled() {
		t.Fatal("unprofiled task claims profiled")
	}
	wcets := []des.Time{
		des.FromMillis(1.0), des.FromMillis(2.0), des.FromMillis(3.0),
		des.FromMillis(2.0), des.FromMillis(1.0), des.FromMillis(1.0),
	}
	if err := task.SetWCETs(wcets); err != nil {
		t.Fatal(err)
	}
	if !task.Profiled() {
		t.Fatal("profiled task claims unprofiled")
	}
	if task.WCET() != des.FromMillis(10) {
		t.Errorf("total WCET = %v, want 10ms", task.WCET())
	}
	// Virtual deadlines are proportional to WCET and sum exactly to D.
	var sum des.Time
	for j := range wcets {
		sum += task.VirtualDeadline(j)
		if task.StageWCET(j) != wcets[j] {
			t.Errorf("stage %d WCET = %v, want %v", j, task.StageWCET(j), wcets[j])
		}
	}
	if sum != task.Deadline {
		t.Errorf("virtual deadlines sum to %v, want %v", sum, task.Deadline)
	}
	// Stage 2 has 3/10 of the WCET: its virtual deadline must be ~3/10 D.
	want := des.Time(float64(task.Deadline) * 0.3)
	got := task.VirtualDeadline(2)
	if got < want-1000 || got > want+1000 { // 1µs slack for integer math
		t.Errorf("stage 2 virtual deadline = %v, want ~%v", got, want)
	}
	// Utilization = 10ms / 33.333ms.
	if u := task.Utilization(); u < 0.29 || u > 0.31 {
		t.Errorf("utilization = %v, want ~0.3", u)
	}
}

func TestSetWCETsErrors(t *testing.T) {
	task := testTask(t, 6)
	if err := task.SetWCETs([]des.Time{1, 2}); err == nil {
		t.Error("wrong WCET count accepted")
	}
	if err := task.SetWCETs(make([]des.Time, 6)); err == nil {
		t.Error("zero WCET accepted")
	}
}

func TestStageLevels(t *testing.T) {
	task := testTask(t, 6)
	for j := 0; j < 5; j++ {
		if task.StageLevel(j) != LevelLow {
			t.Errorf("stage %d level = %v, want low", j, task.StageLevel(j))
		}
	}
	if task.StageLevel(5) != LevelHigh {
		t.Errorf("last stage level = %v, want high", task.StageLevel(5))
	}
	if LevelHigh <= LevelMedium || LevelMedium <= LevelLow {
		t.Error("level ordering broken")
	}
	if LevelLow.String() != "low" || LevelMedium.String() != "medium" || LevelHigh.String() != "high" {
		t.Error("level names wrong")
	}
	if Level(42).String() != "level(42)" {
		t.Error("unknown level name wrong")
	}
}

func TestNewJobDeadlines(t *testing.T) {
	task := testTask(t, 6)
	wcets := make([]des.Time, 6)
	for i := range wcets {
		wcets[i] = des.FromMillis(1)
	}
	if err := task.SetWCETs(wcets); err != nil {
		t.Fatal(err)
	}
	release := des.FromMillis(100)
	job := task.NewJob(3, release)
	if job.Deadline != release.Add(task.Deadline) {
		t.Errorf("job deadline = %v", job.Deadline)
	}
	if len(job.Stages) != 6 {
		t.Fatalf("job has %d stages", len(job.Stages))
	}
	// Monotone stage deadlines, last equals job deadline.
	prev := release
	for _, s := range job.Stages {
		if s.Deadline <= prev {
			t.Errorf("stage %d deadline %v not after %v", s.Index, s.Deadline, prev)
		}
		prev = s.Deadline
	}
	if last := job.Stages[5].Deadline; last != job.Deadline {
		t.Errorf("last stage deadline %v != job deadline %v", last, job.Deadline)
	}
	// Levels copied from the offline assignment.
	if job.Stages[0].Level != LevelLow || job.Stages[5].Level != LevelHigh {
		t.Error("stage job levels wrong")
	}
}

func TestNewJobUnprofiledPanics(t *testing.T) {
	task := testTask(t, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("NewJob on unprofiled task did not panic")
		}
	}()
	task.NewJob(0, 0)
}

func TestJobLifecycle(t *testing.T) {
	task := testTask(t, 3)
	task.SetWCETs([]des.Time{des.FromMillis(2), des.FromMillis(2), des.FromMillis(2)})
	job := task.NewJob(0, 0)

	s0 := job.Stages[0]
	s0.MarkReady(0)
	if !s0.Ready || s0.ReadyAt != 0 {
		t.Error("MarkReady")
	}
	s0.MarkStarted(des.FromMillis(1))
	if !s0.Started {
		t.Error("MarkStarted")
	}
	s0.MarkFinished(des.FromMillis(3))
	if !s0.Finished || job.Done {
		t.Error("first stage finish should not complete job")
	}
	job.Stages[1].MarkFinished(des.FromMillis(6))
	last := job.Stages[2]
	last.MarkFinished(des.FromMillis(9))
	if !job.Done || job.FinishedAt != des.FromMillis(9) {
		t.Error("last stage finish should complete job")
	}
	if job.ResponseTime() != des.FromMillis(9) {
		t.Errorf("response time = %v", job.ResponseTime())
	}
	if job.Missed(des.FromMillis(9)) {
		t.Error("job met its 33.3ms deadline but reported missed")
	}
	if job.Lateness() >= 0 {
		t.Errorf("lateness = %v, want negative", job.Lateness())
	}
}

func TestMissedSemantics(t *testing.T) {
	task := testTask(t, 2)
	task.SetWCETs([]des.Time{des.FromMillis(5), des.FromMillis(5)})
	job := task.NewJob(0, 0)

	// Unfinished job: missed only once now passes the deadline.
	if job.Missed(job.Deadline) {
		t.Error("job reported missed exactly at deadline")
	}
	if !job.Missed(job.Deadline + 1) {
		t.Error("job not reported missed after deadline")
	}
	// Finished late: missed regardless of query instant.
	job.Stages[1].MarkFinished(job.Deadline + des.FromMillis(1))
	if !job.Missed(0) {
		t.Error("late-finished job not reported missed")
	}

	s := job.Stages[0]
	if s.MissedBy(s.Deadline) {
		t.Error("stage reported missed exactly at deadline")
	}
	if !s.MissedBy(s.Deadline + 1) {
		t.Error("stage not reported missed after deadline")
	}
	s.MarkFinished(s.Deadline - 1)
	if s.MissedBy(des.FromMillis(1e6)) {
		t.Error("stage that finished early reported missed later")
	}
}

func TestStringers(t *testing.T) {
	task := testTask(t, 2)
	task.SetWCETs([]des.Time{des.FromMillis(5), des.FromMillis(5)})
	job := task.NewJob(17, 0)
	if got := job.String(); got != "τ0#17" {
		t.Errorf("job string = %q", got)
	}
	if got := job.Stages[1].String(); got != "τ0#17.s1" {
		t.Errorf("stage string = %q", got)
	}
	if got := task.String(); got == "" {
		t.Error("task string empty")
	}
}

// Property: for any positive WCET vector, virtual deadlines are positive,
// ordered, and sum exactly to the task deadline.
func TestVirtualDeadlinePartitionProperty(t *testing.T) {
	g := dnn.ResNet18(dnn.DefaultCostModel())
	f := func(raw []uint16) bool {
		n := len(raw)
		if n == 0 || n > 12 {
			return true
		}
		stages, err := dnn.Partition(g, n)
		if err != nil {
			return true // graph may not admit n stages; not this property
		}
		task, err := NewTask(0, "p", g, stages, des.FromMillis(40), des.FromMillis(33), 0)
		if err != nil {
			return false
		}
		wcets := make([]des.Time, n)
		for i, r := range raw[:n] {
			wcets[i] = des.Time(r)*des.Microsecond + des.Microsecond
		}
		if err := task.SetWCETs(wcets); err != nil {
			return false
		}
		var sum des.Time
		for j := 0; j < n; j++ {
			d := task.VirtualDeadline(j)
			if d <= 0 {
				return false
			}
			sum += d
		}
		return sum == task.Deadline
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestJobWorkScaleDefaultsToOne(t *testing.T) {
	task := testTask(t, 2)
	task.SetWCETs([]des.Time{des.Millisecond, des.Millisecond})
	if job := task.NewJob(0, 0); job.WorkScale != 1 {
		t.Errorf("WorkScale = %v, want 1", job.WorkScale)
	}
}

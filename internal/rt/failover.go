package rt

import "fmt"

// FailoverPolicy selects what the fleet dispatcher does with the chains homed
// on a device that crashes (the cluster layer, DESIGN.md §15). Unlike
// RecoveryPolicy — which answers for one faulted kernel — failover answers
// for a whole failure domain: every chain resident on the lost device needs a
// new plan at once.
type FailoverPolicy int

const (
	// FailoverDefault defers to the run-level default (FailoverMigrate).
	FailoverDefault FailoverPolicy = iota
	// FailoverMigrate re-places each affected chain on the least-loaded
	// surviving device, paying a per-chain migration cost (weights and
	// state re-staged) before releases flow again.
	FailoverMigrate
	// FailoverRetry keeps each affected chain homed on the origin device
	// and blacks it out until the device restarts plus a backoff; a
	// permanent loss degenerates to shedding the chain.
	FailoverRetry
	// FailoverShed drops the affected chains outright — their releases are
	// discarded until the end of the run (graceful degradation by load
	// shedding, lowest-index chains kept by the admission controller).
	FailoverShed
)

// String names the policy for reports and config round-trips.
func (p FailoverPolicy) String() string {
	switch p {
	case FailoverDefault:
		return "default"
	case FailoverMigrate:
		return "migrate"
	case FailoverRetry:
		return "retry"
	case FailoverShed:
		return "shed"
	default:
		return fmt.Sprintf("failover(%d)", int(p))
	}
}

// ParseFailoverPolicy resolves the config-file spelling of a policy; the
// empty string means FailoverDefault.
func ParseFailoverPolicy(s string) (FailoverPolicy, error) {
	switch s {
	case "", "default":
		return FailoverDefault, nil
	case "migrate":
		return FailoverMigrate, nil
	case "retry":
		return FailoverRetry, nil
	case "shed":
		return FailoverShed, nil
	default:
		return FailoverDefault, fmt.Errorf("rt: unknown failover policy %q (want migrate, retry, or shed)", s)
	}
}

package rt

import (
	"fmt"

	"sgprs/internal/des"
)

// JobPool recycles Job and StageJob structs so a long simulation's live heap
// is proportional to the number of in-flight jobs, not to every job ever
// released. It mirrors the des.Engine event free list (see des/pool_test.go
// for the contract both pools share): recycling never clears the job's
// fields — callers deeper in the completion call stack may still read them —
// and the next Get rewrites every field instead, so a reused job can never
// leak state from its previous occupant.
//
// The pool is single-threaded like the engine that drives it. Ownership rule:
// a job may be Put exactly once, after its watcher callbacks fired, and must
// not be touched once a later Get may have reused it (the generator's next
// release event). Putting a job twice panics — that is the use-after-recycle
// bug this type exists to surface.
type JobPool struct {
	free []*Job
}

// Get returns a job initialised as instance index of the task released at the
// given instant — from the free list when possible, freshly allocated
// otherwise. Recycled jobs reuse their StageJob structs and Stages slice.
func (p *JobPool) Get(t *Task, index int, release des.Time) *Job {
	var j *Job
	if n := len(p.free); n > 0 {
		j = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	} else {
		j = &Job{}
	}
	t.initJob(j, index, release)
	return j
}

// Put hands a finished-and-recorded (or discarded) job back to the pool. The
// job's fields stay readable until the pool reuses it; putting the same job
// twice before that reuse panics.
func (p *JobPool) Put(j *Job) {
	if j == nil {
		return
	}
	if j.pooled {
		panic(fmt.Sprintf("rt: job %s recycled twice", j))
	}
	j.pooled = true
	p.free = append(p.free, j)
}

// Len reports the free-list size (diagnostics/tests).
func (p *JobPool) Len() int { return len(p.free) }

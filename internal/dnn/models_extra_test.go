package dnn

import (
	"testing"

	"sgprs/internal/speedup"
)

func TestZooAllValid(t *testing.T) {
	zoo := Zoo(DefaultCostModel())
	if len(zoo) != 8 {
		t.Fatalf("zoo has %d entries", len(zoo))
	}
	for name, g := range zoo {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if g.Name != name && name != "mlp" { // MLP keeps its generic name
			if g.Name != name {
				t.Errorf("zoo key %q has graph name %q", name, g.Name)
			}
		}
		// Every network must be partitionable into the paper's six
		// stages except the tiny ones.
		want := 6
		if name == "tinycnn" || name == "mlp" {
			want = 2
		}
		if _, err := Partition(g, want); err != nil {
			t.Errorf("%s: cannot partition into %d stages: %v", name, want, err)
		}
	}
}

func TestResNetFamilyMACs(t *testing.T) {
	cm := DefaultCostModel()
	cases := []struct {
		g        *Graph
		lo, hi   float64 // GMACs
		numConvs int
	}{
		{ResNet18(cm), 1.7, 2.0, 20},
		{ResNet34(cm), 3.4, 3.8, 36},
		{ResNet50(cm), 3.8, 4.3, 53},
	}
	for _, c := range cases {
		macs := float64(c.g.TotalMACs()) / 1e9
		if macs < c.lo || macs > c.hi {
			t.Errorf("%s MACs = %.2fG, want [%.1f, %.1f]", c.g.Name, macs, c.lo, c.hi)
		}
		convs := 0
		for _, op := range c.g.Ops {
			if op.Class == speedup.Conv {
				convs++
			}
		}
		if convs != c.numConvs {
			t.Errorf("%s convs = %d, want %d", c.g.Name, convs, c.numConvs)
		}
	}
}

func TestMobileNetV1Shape(t *testing.T) {
	g := MobileNetV1(DefaultCostModel())
	// ~0.57 GMACs for width-1.0 MobileNetV1.
	macs := float64(g.TotalMACs()) / 1e9
	if macs < 0.5 || macs > 0.7 {
		t.Errorf("MobileNetV1 MACs = %.2fG, want ~0.57", macs)
	}
	// Depthwise networks are memory-lean on compute: far cheaper than
	// ResNet18 but with a lower composed speedup (less conv dominance).
	r18 := ResNet18(DefaultCostModel())
	if g.TotalMACs() >= r18.TotalMACs()/2 {
		t.Error("MobileNetV1 should be much cheaper than ResNet18")
	}
	m := speedup.DefaultModel()
	if g.Gain(m, 68) >= r18.Gain(m, 68) {
		t.Errorf("MobileNetV1 gain %.1f should trail ResNet18 %.1f (memory-bound mix)",
			g.Gain(m, 68), r18.Gain(m, 68))
	}
}

func TestAlexNetFCHeavy(t *testing.T) {
	g := AlexNet(DefaultCostModel())
	var fcWork, total float64
	for _, ws := range g.WorkByClass() {
		total += ws.Work
		if ws.Class == speedup.Linear {
			fcWork = ws.Work
		}
	}
	if frac := fcWork / total; frac < 0.05 {
		t.Errorf("AlexNet FC share = %.3f, expected a substantial FC component", frac)
	}
}

func TestResNet50DeeperThanResNet34(t *testing.T) {
	cm := DefaultCostModel()
	if len(ResNet50(cm).Ops) <= len(ResNet34(cm).Ops) {
		t.Error("ResNet50 should have more ops than ResNet34")
	}
	if ResNet50(cm).TotalWorkMS() <= ResNet34(cm).TotalWorkMS() {
		t.Error("ResNet50 should cost more than ResNet34")
	}
}

func TestBottleneckChainProperty(t *testing.T) {
	// Partition must keep the chain property on bottleneck graphs too.
	g := ResNet50(DefaultCostModel())
	stages, err := Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	stageOf := map[int]int{}
	for _, st := range stages {
		for _, op := range st.Ops {
			stageOf[op.ID] = st.Index
		}
	}
	for _, st := range stages {
		for _, op := range st.Ops {
			for _, in := range op.Inputs {
				if d := st.Index - stageOf[in]; d != 0 && d != 1 {
					t.Fatalf("edge %d->%d spans stages %d->%d", in, op.ID, stageOf[in], st.Index)
				}
			}
		}
	}
}

package dnn

import (
	"math"
	"testing"
	"testing/quick"

	"sgprs/internal/speedup"
)

func TestShape(t *testing.T) {
	s := Shape{C: 64, H: 56, W: 56}
	if s.Elems() != 64*56*56 {
		t.Errorf("Elems = %d", s.Elems())
	}
	if s.String() != "64x56x56" {
		t.Errorf("String = %q", s.String())
	}
}

func TestResNet18Structure(t *testing.T) {
	g := ResNet18(DefaultCostModel())
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Standard ResNet18: 20 convolutions (stem + 16 block convs + 3
	// downsample projections), 1 FC.
	var convs, fcs, adds int
	for _, op := range g.Ops {
		switch op.Class {
		case speedup.Conv:
			convs++
		case speedup.Linear:
			fcs++
		case speedup.Add:
			adds++
		}
	}
	if convs != 20 {
		t.Errorf("conv count = %d, want 20", convs)
	}
	if fcs != 1 {
		t.Errorf("fc count = %d, want 1", fcs)
	}
	if adds != 8 {
		t.Errorf("residual add count = %d, want 8", adds)
	}
	// ~1.82 GMACs for ResNet18 at 224x224.
	macs := float64(g.TotalMACs())
	if macs < 1.7e9 || macs < 0 || macs > 2.0e9 {
		t.Errorf("total MACs = %.3g, want ~1.82e9", macs)
	}
	// Final op is the classifier softmax over 1000 classes.
	last := g.Ops[len(g.Ops)-1]
	if last.Class != speedup.Softmax || last.Out.C != 1000 {
		t.Errorf("last op = %s (%v, %v)", last.Name, last.Class, last.Out)
	}
}

func TestResNet18ComposedSpeedupNearPaper(t *testing.T) {
	g := ResNet18(DefaultCostModel())
	m := speedup.DefaultModel()
	gain := g.Gain(m, speedup.DeviceSMs)
	// Paper: ResNet18 composes to "only 23x" at 68 SMs.
	if gain < 20 || gain > 26 {
		t.Errorf("ResNet18 gain at 68 SMs = %.2f, want ~23", gain)
	}
	// Conv must dominate single-SM work for the composition to behave
	// like the paper's Figure 1.
	var convWork float64
	for _, ws := range g.WorkByClass() {
		if ws.Class == speedup.Conv {
			convWork = ws.Work
		}
	}
	if frac := convWork / g.TotalWorkMS(); frac < 0.8 || frac > 0.97 {
		t.Errorf("conv work fraction = %.3f, want ~0.9", frac)
	}
}

func TestResNet18LatencyScale(t *testing.T) {
	g := ResNet18(DefaultCostModel())
	m := speedup.DefaultModel()
	lat := g.LatencyMS(m, speedup.DeviceSMs)
	// The calibration target is ~1.4 ms full-device; the raw cost model
	// should land in the same decade before Calibrate fine-tunes it.
	if lat < 0.5 || lat > 5 {
		t.Errorf("full-device latency = %.3f ms, want O(1ms)", lat)
	}
}

func TestCalibratePinsLatency(t *testing.T) {
	g := ResNet18(DefaultCostModel())
	m := speedup.DefaultModel()
	factor := Calibrate(g, m, speedup.DeviceSMs, 1.40)
	if factor <= 0 {
		t.Fatalf("factor = %v", factor)
	}
	if lat := g.LatencyMS(m, speedup.DeviceSMs); math.Abs(lat-1.40) > 1e-9 {
		t.Errorf("calibrated latency = %v, want 1.40", lat)
	}
}

func TestCalibratePanics(t *testing.T) {
	g := ResNet18(DefaultCostModel())
	m := speedup.DefaultModel()
	defer func() {
		if recover() == nil {
			t.Fatal("Calibrate with non-positive target did not panic")
		}
	}()
	Calibrate(g, m, 68, 0)
}

func TestOtherModelsValidate(t *testing.T) {
	cm := DefaultCostModel()
	for _, g := range []*Graph{VGG11(cm), TinyCNN(cm), MLP(cm, 784, 256, 10)} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
		if g.TotalWorkMS() <= 0 {
			t.Errorf("%s: no work", g.Name)
		}
	}
	// VGG11 is far heavier than ResNet18; TinyCNN far lighter.
	r := ResNet18(cm).TotalWorkMS()
	if v := VGG11(cm).TotalWorkMS(); v < 2*r {
		t.Errorf("VGG11 work %v should be >> ResNet18 %v", v, r)
	}
	if c := TinyCNN(cm).TotalWorkMS(); c > r/10 {
		t.Errorf("TinyCNN work %v should be << ResNet18 %v", c, r)
	}
}

func TestValidateCatchesCorruptGraphs(t *testing.T) {
	cm := DefaultCostModel()
	g := ResNet18(cm)

	g.Ops[3].Inputs = []int{99999}
	if err := g.Validate(); err == nil {
		t.Error("dangling input not caught")
	}

	g = ResNet18(cm)
	g.Ops[5].Inputs = []int{5}
	if err := g.Validate(); err == nil {
		t.Error("self-loop not caught")
	}

	g = ResNet18(cm)
	g.Ops[2].WorkMS = -1
	if err := g.Validate(); err == nil {
		t.Error("negative work not caught")
	}

	g = ResNet18(cm)
	g.Ops[7].ID = 3
	if err := g.Validate(); err == nil {
		t.Error("ID mismatch not caught")
	}

	if err := (&Graph{Name: "empty"}).Validate(); err == nil {
		t.Error("empty graph not caught")
	}
	if err := (&Graph{}).Validate(); err == nil {
		t.Error("unnamed graph not caught")
	}
}

func TestCutPointsRespectResiduals(t *testing.T) {
	g := ResNet18(DefaultCostModel())
	cuts := g.CutPoints()
	if len(cuts) < 10 {
		t.Fatalf("ResNet18 has %d cut points, expected at least one per block boundary", len(cuts))
	}
	// No cut may sit strictly inside a residual block: for every op with
	// two inputs (the adds), no cut point can lie strictly between the
	// block input (which is itself a legal single-tensor boundary) and
	// the add.
	cutSet := make(map[int]bool, len(cuts))
	for _, c := range cuts {
		cutSet[c] = true
	}
	for _, op := range g.Ops {
		if op.Class != speedup.Add {
			continue
		}
		lo := op.Inputs[0]
		if op.Inputs[1] < lo {
			lo = op.Inputs[1]
		}
		for c := lo + 1; c < op.ID; c++ {
			if cutSet[c] {
				t.Errorf("cut point %d inside residual block ending at %s", c, op.Name)
			}
		}
	}
}

func TestPartitionSixStages(t *testing.T) {
	g := ResNet18(DefaultCostModel())
	stages, err := Partition(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 6 {
		t.Fatalf("got %d stages", len(stages))
	}
	// Stages cover all ops exactly once, in order.
	next := 0
	var total float64
	for _, st := range stages {
		if len(st.Ops) == 0 {
			t.Fatalf("%s empty", st.Name())
		}
		for _, op := range st.Ops {
			if op.ID != next {
				t.Fatalf("op %d out of order in %s (want %d)", op.ID, st.Name(), next)
			}
			next++
		}
		total += st.WorkMS
	}
	if next != len(g.Ops) {
		t.Fatalf("stages cover %d ops, graph has %d", next, len(g.Ops))
	}
	if math.Abs(total-g.TotalWorkMS()) > 1e-9 {
		t.Errorf("stage work sums to %v, graph has %v", total, g.TotalWorkMS())
	}
	// Balance: the largest stage is within 3x of the smallest. (Perfect
	// balance is impossible — cuts are constrained to block boundaries.)
	lo, hi := math.Inf(1), 0.0
	for _, st := range stages {
		lo = math.Min(lo, st.WorkMS)
		hi = math.Max(hi, st.WorkMS)
	}
	if hi > 3*lo {
		t.Errorf("stage imbalance: min %v max %v", lo, hi)
	}
}

func TestPartitionChainProperty(t *testing.T) {
	// Every cross-stage edge must land exactly one stage later — the
	// chain structure the schedulers rely on.
	g := ResNet18(DefaultCostModel())
	for _, k := range []int{1, 2, 3, 4, 6, 8, 12} {
		stages, err := Partition(g, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		stageOf := make(map[int]int)
		for _, st := range stages {
			for _, op := range st.Ops {
				stageOf[op.ID] = st.Index
			}
		}
		for _, st := range stages {
			for _, op := range st.Ops {
				for _, in := range op.Inputs {
					d := st.Index - stageOf[in]
					if d != 0 && d != 1 {
						t.Errorf("k=%d: edge %d->%d spans stages %d->%d", k, in, op.ID, stageOf[in], st.Index)
					}
				}
			}
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	g := ResNet18(DefaultCostModel())
	if _, err := Partition(g, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Partition(g, -1); err == nil {
		t.Error("k=-1 accepted")
	}
	if _, err := Partition(g, 10000); err == nil {
		t.Error("k larger than atoms accepted")
	}
	if _, err := Partition(&Graph{}, 2); err == nil {
		t.Error("invalid graph accepted")
	}
}

func TestPartitionSingleStageIsWholeGraph(t *testing.T) {
	g := TinyCNN(DefaultCostModel())
	stages, err := Partition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 1 || len(stages[0].Ops) != len(g.Ops) {
		t.Fatalf("single stage should hold every op")
	}
	if stages[0].Kernels() != len(g.Ops) {
		t.Errorf("Kernels = %d, want %d", stages[0].Kernels(), len(g.Ops))
	}
}

func TestStageLatencyComposition(t *testing.T) {
	g := ResNet18(DefaultCostModel())
	m := speedup.DefaultModel()
	stages, err := Partition(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, st := range stages {
		l := st.LatencyMS(m, 34)
		if l <= 0 {
			t.Fatalf("%s latency %v", st.Name(), l)
		}
		sum += l
	}
	whole := g.LatencyMS(m, 34)
	// Sequential stage latencies must sum to the whole-network latency
	// (same work, same gains, just regrouped) within a modest tolerance —
	// grouping changes the harmonic weighting slightly.
	if math.Abs(sum-whole)/whole > 0.05 {
		t.Errorf("stage latency sum %v vs whole %v", sum, whole)
	}
}

func TestScalePanicsOnNonPositive(t *testing.T) {
	g := TinyCNN(DefaultCostModel())
	defer func() {
		if recover() == nil {
			t.Fatal("Scale(0) did not panic")
		}
	}()
	g.Scale(0)
}

func TestCostModelPanicsWhenInvalid(t *testing.T) {
	cm := CostModel{}
	defer func() {
		if recover() == nil {
			t.Fatal("zero cost model did not panic")
		}
	}()
	cm.WorkMS(1, 1)
}

// Property: balancedPartition always produces exactly k non-empty groups
// covering the input, with max group sum no worse than twice the flat bound
// for any input (a loose sanity bound; optimality is checked by construction
// of the DP).
func TestBalancedPartitionProperty(t *testing.T) {
	f := func(raw []uint8, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		work := make([]float64, len(raw))
		var total float64
		for i, r := range raw {
			work[i] = float64(r) + 1
			total += work[i]
		}
		k := int(kRaw)%len(work) + 1
		sizes := balancedPartition(work, k)
		if len(sizes) != k {
			return false
		}
		sum := 0
		var maxGroup float64
		idx := 0
		for _, sz := range sizes {
			if sz <= 0 {
				return false
			}
			var gs float64
			for j := 0; j < sz; j++ {
				gs += work[idx]
				idx++
			}
			if gs > maxGroup {
				maxGroup = gs
			}
			sum += sz
		}
		if sum != len(work) {
			return false
		}
		// Any partition's max group is at least total/k and at most
		// total; the DP result must sit in that range.
		return maxGroup >= total/float64(k)-1e-9 && maxGroup <= total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

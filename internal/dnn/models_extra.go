package dnn

import (
	"fmt"

	"sgprs/internal/speedup"
)

// This file extends the model zoo beyond the paper's ResNet18 benchmark so
// heterogeneous multi-tenant workloads (the introduction's motivating case)
// have realistic tenants to draw from.

// ResNet34 builds the 34-layer basic-block ResNet for a 224x224x3 input:
// the same stem and head as ResNet18 with 3/4/6/3 blocks per layer.
func ResNet34(cm CostModel) *Graph {
	return resNetBasic("resnet34", cm, [4]int{3, 4, 6, 3})
}

// resNetBasic builds a basic-block ResNet with the given per-layer block
// counts.
func resNetBasic(name string, cm CostModel, blocks [4]int) *Graph {
	b := newBuilder(name, cm)
	in := Shape{C: 3, H: 224, W: 224}
	b.conv("conv1", in, 64, 7, 2, 3)
	s := Shape{C: 64, H: 112, W: 112}
	b.batchNorm("bn1", s)
	b.relu("relu1", s)
	b.maxPool("maxpool", s, 3, 2, 1)
	s = Shape{C: 64, H: 56, W: 56}

	channels := [4]int{64, 128, 256, 512}
	for li := 0; li < 4; li++ {
		stride := 2
		if li == 0 {
			stride = 1
		}
		for bi := 0; bi < blocks[li]; bi++ {
			st := 1
			if bi == 0 {
				st = stride
			}
			s = basicBlock(b, fmt.Sprintf("layer%d.%d", li+1, bi), s, channels[li], st)
		}
	}
	b.globalAvgPool("avgpool", s)
	b.linear("fc", s.C, 1000)
	b.softmax("softmax", 1000)
	return b.finish()
}

// ResNet50 builds the 50-layer bottleneck ResNet for a 224x224x3 input
// (3/4/6/3 bottleneck blocks with 4x channel expansion).
func ResNet50(cm CostModel) *Graph {
	b := newBuilder("resnet50", cm)
	in := Shape{C: 3, H: 224, W: 224}
	b.conv("conv1", in, 64, 7, 2, 3)
	s := Shape{C: 64, H: 112, W: 112}
	b.batchNorm("bn1", s)
	b.relu("relu1", s)
	b.maxPool("maxpool", s, 3, 2, 1)
	s = Shape{C: 64, H: 56, W: 56}

	blocks := [4]int{3, 4, 6, 3}
	mid := [4]int{64, 128, 256, 512}
	for li := 0; li < 4; li++ {
		stride := 2
		if li == 0 {
			stride = 1
		}
		for bi := 0; bi < blocks[li]; bi++ {
			st := 1
			if bi == 0 {
				st = stride
			}
			s = bottleneckBlock(b, fmt.Sprintf("layer%d.%d", li+1, bi), s, mid[li], st)
		}
	}
	b.globalAvgPool("avgpool", s)
	b.linear("fc", s.C, 1000)
	b.softmax("softmax", 1000)
	return b.finish()
}

// bottleneckBlock appends a ResNet bottleneck (1x1 reduce, 3x3, 1x1 expand
// to 4·mid channels) with a projection shortcut on shape change.
func bottleneckBlock(b *builder, name string, in Shape, mid, stride int) Shape {
	blockIn := b.last
	outC := 4 * mid
	out := Shape{C: outC, H: (in.H-1)/stride + 1, W: (in.W-1)/stride + 1}
	midShape := Shape{C: mid, H: out.H, W: out.W}

	b.conv(name+".conv1", in, mid, 1, stride, 0)
	b.batchNorm(name+".bn1", midShape)
	b.relu(name+".relu1", midShape)
	b.conv(name+".conv2", midShape, mid, 3, 1, 1)
	b.batchNorm(name+".bn2", midShape)
	b.relu(name+".relu2", midShape)
	b.conv(name+".conv3", midShape, outC, 1, 1, 0)
	main := b.batchNorm(name+".bn3", out)

	shortcut := blockIn
	if stride != 1 || in.C != outC {
		b.conv(name+".downsample.conv", in, outC, 1, stride, 0, blockIn)
		shortcut = b.batchNorm(name+".downsample.bn", out)
	}
	b.addResidual(name+".add", out, main, shortcut)
	b.relu(name+".relu3", out)
	return out
}

// MobileNetV1 builds the depthwise-separable MobileNet (width 1.0) for a
// 224x224x3 input. Depthwise convolutions are modelled as convolution-class
// work with MACs = elems·K² (one input channel per output channel) — their
// low arithmetic intensity shows up as a larger memory-traffic share.
func MobileNetV1(cm CostModel) *Graph {
	b := newBuilder("mobilenetv1", cm)
	s := Shape{C: 3, H: 224, W: 224}
	b.conv("conv1", s, 32, 3, 2, 1)
	s = Shape{C: 32, H: 112, W: 112}
	b.batchNorm("bn1", s)
	b.relu("relu1", s)

	plan := []struct {
		outC   int
		stride int
	}{
		{64, 1},
		{128, 2}, {128, 1},
		{256, 2}, {256, 1},
		{512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
		{1024, 2}, {1024, 1},
	}
	for i, p := range plan {
		s = depthwiseSeparable(b, fmt.Sprintf("ds%d", i+1), s, p.outC, p.stride)
	}
	b.globalAvgPool("avgpool", s)
	b.linear("fc", s.C, 1000)
	b.softmax("softmax", 1000)
	return b.finish()
}

// depthwiseSeparable appends a depthwise 3x3 + pointwise 1x1 pair, each with
// batch norm and ReLU.
func depthwiseSeparable(b *builder, name string, in Shape, outC, stride int) Shape {
	dwOut := Shape{C: in.C, H: (in.H-1)/stride + 1, W: (in.W-1)/stride + 1}
	// Depthwise: one filter per channel.
	macs := dwOut.Elems() * 9
	bytes := int64(elemBytes) * (in.Elems() + dwOut.Elems() + int64(in.C)*9)
	b.add(name+".dw", speedup.Conv, dwOut, macs, bytes)
	b.batchNorm(name+".dwbn", dwOut)
	b.relu(name+".dwrelu", dwOut)
	// Pointwise expansion.
	b.conv(name+".pw", dwOut, outC, 1, 1, 0)
	out := Shape{C: outC, H: dwOut.H, W: dwOut.W}
	b.batchNorm(name+".pwbn", out)
	b.relu(name+".pwrelu", out)
	return out
}

// AlexNet builds the classic five-conv/three-FC network for a 224x224x3
// input — a useful tenant with an unusually FC-heavy op mix.
func AlexNet(cm CostModel) *Graph {
	b := newBuilder("alexnet", cm)
	s := Shape{C: 3, H: 224, W: 224}
	b.conv("conv1", s, 64, 11, 4, 2)
	s = Shape{C: 64, H: 55, W: 55}
	b.relu("relu1", s)
	b.maxPool("pool1", s, 3, 2, 0)
	s = Shape{C: 64, H: 27, W: 27}
	b.conv("conv2", s, 192, 5, 1, 2)
	s = Shape{C: 192, H: 27, W: 27}
	b.relu("relu2", s)
	b.maxPool("pool2", s, 3, 2, 0)
	s = Shape{C: 192, H: 13, W: 13}
	b.conv("conv3", s, 384, 3, 1, 1)
	s = Shape{C: 384, H: 13, W: 13}
	b.relu("relu3", s)
	b.conv("conv4", s, 256, 3, 1, 1)
	s = Shape{C: 256, H: 13, W: 13}
	b.relu("relu4", s)
	b.conv("conv5", s, 256, 3, 1, 1)
	b.relu("relu5", s)
	b.maxPool("pool5", s, 3, 2, 0)
	s = Shape{C: 256, H: 6, W: 6}
	b.linear("fc1", int(s.Elems()), 4096)
	b.relu("relufc1", Shape{C: 4096, H: 1, W: 1})
	b.linear("fc2", 4096, 4096)
	b.relu("relufc2", Shape{C: 4096, H: 1, W: 1})
	b.linear("fc3", 4096, 1000)
	b.softmax("softmax", 1000)
	return b.finish()
}

// Zoo lists every network builder by name; tools use it for -net flags.
func Zoo(cm CostModel) map[string]*Graph {
	return map[string]*Graph{
		"resnet18":    ResNet18(cm),
		"resnet34":    ResNet34(cm),
		"resnet50":    ResNet50(cm),
		"mobilenetv1": MobileNetV1(cm),
		"alexnet":     AlexNet(cm),
		"vgg11":       VGG11(cm),
		"tinycnn":     TinyCNN(cm),
		"mlp":         MLP(cm, 784, 512, 10),
	}
}

package dnn

import (
	"fmt"

	"sgprs/internal/speedup"
)

// Stage is one pipeline stage (the paper's sub-task τᵢʲ): a contiguous run of
// operations whose only external interface is the final tensor of the
// previous stage. Stages of one network form a chain.
type Stage struct {
	Index  int
	Ops    []*Op
	WorkMS float64             // total single-SM milliseconds
	Shares []speedup.WorkShare // per-class work, for composed speedup
}

// Kernels reports how many kernels (operations) the stage launches.
func (s *Stage) Kernels() int { return len(s.Ops) }

// Gain reports the stage's composed speedup at n effective SMs.
func (s *Stage) Gain(m *speedup.Model, n float64) float64 {
	return m.Aggregate(s.Shares, n)
}

// LatencyMS reports the stage's isolated latency at n effective SMs.
func (s *Stage) LatencyMS(m *speedup.Model, n float64) float64 {
	g := s.Gain(m, n)
	if g <= 0 {
		return 0
	}
	return s.WorkMS / g
}

// Name returns a compact identifier: the names of the first and last ops.
func (s *Stage) Name() string {
	if len(s.Ops) == 0 {
		return fmt.Sprintf("stage%d(empty)", s.Index)
	}
	return fmt.Sprintf("stage%d(%s..%s)", s.Index, s.Ops[0].Name, s.Ops[len(s.Ops)-1].Name)
}

// Partition splits g into exactly k chained stages, cutting only at valid cut
// points (single-tensor interfaces) and balancing single-SM work so the
// largest stage is as small as possible. The paper divides ResNet18 into six
// stages; Partition generalises that to any network and stage count.
//
// It returns an error when k exceeds the number of cuttable segments: the
// caller asked for more pipeline stages than the DAG structure admits.
func Partition(g *Graph, k int) ([]*Stage, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("dnn: stage count %d must be positive", k)
	}
	cuts := g.CutPoints()
	// Atom boundaries: ops (start..cut0], (cut0..cut1], ..., (cutM..end].
	bounds := make([]int, 0, len(cuts)+1)
	bounds = append(bounds, cuts...)
	bounds = append(bounds, len(g.Ops)-1)
	numAtoms := len(bounds)
	if k > numAtoms {
		return nil, fmt.Errorf("dnn: graph %q admits at most %d stages, requested %d", g.Name, numAtoms, k)
	}

	atomWork := make([]float64, numAtoms)
	prev := -1
	for i, b := range bounds {
		for j := prev + 1; j <= b; j++ {
			atomWork[i] += g.Ops[j].WorkMS
		}
		prev = b
	}

	groups := balancedPartition(atomWork, k)

	stages := make([]*Stage, k)
	atom := 0
	opStart := 0
	for si, take := range groups {
		last := bounds[atom+take-1]
		st := &Stage{Index: si}
		for j := opStart; j <= last; j++ {
			st.Ops = append(st.Ops, g.Ops[j])
			st.WorkMS += g.Ops[j].WorkMS
		}
		st.Shares = workShares(st.Ops)
		stages[si] = st
		atom += take
		opStart = last + 1
	}
	return stages, nil
}

func workShares(ops []*Op) []speedup.WorkShare {
	acc := make(map[speedup.Class]float64)
	for _, op := range ops {
		acc[op.Class] += op.WorkMS
	}
	var out []speedup.WorkShare
	for _, cl := range speedup.Classes() {
		if w := acc[cl]; w > 0 {
			out = append(out, speedup.WorkShare{Class: cl, Work: w})
		}
	}
	return out
}

// balancedPartition splits the atom sequence into exactly k contiguous
// non-empty groups minimising the maximum group sum (classic linear
// partition DP), returning the group sizes in order.
func balancedPartition(work []float64, k int) []int {
	n := len(work)
	prefix := make([]float64, n+1)
	for i, w := range work {
		prefix[i+1] = prefix[i] + w
	}
	sum := func(i, j int) float64 { return prefix[j] - prefix[i] } // [i, j)

	const inf = 1e308
	// dp[m][i] = minimal max-sum splitting work[:i] into m groups.
	dp := make([][]float64, k+1)
	cut := make([][]int, k+1)
	for m := range dp {
		dp[m] = make([]float64, n+1)
		cut[m] = make([]int, n+1)
		for i := range dp[m] {
			dp[m][i] = inf
		}
	}
	dp[0][0] = 0
	for m := 1; m <= k; m++ {
		for i := m; i <= n-(k-m); i++ {
			for j := m - 1; j < i; j++ {
				if dp[m-1][j] == inf {
					continue
				}
				cand := dp[m-1][j]
				if s := sum(j, i); s > cand {
					cand = s
				}
				if cand < dp[m][i] {
					dp[m][i] = cand
					cut[m][i] = j
				}
			}
		}
	}
	sizes := make([]int, k)
	i := n
	for m := k; m >= 1; m-- {
		j := cut[m][i]
		sizes[m-1] = i - j
		i = j
	}
	return sizes
}

package dnn

import (
	"fmt"

	"sgprs/internal/speedup"
)

// CostModel converts operation arithmetic (MACs) and memory traffic (bytes)
// into single-SM execution time:
//
//	work_ms = 1000 · (MACs/MACRate + Bytes/MemRate)
//
// Rates are per-SM. The defaults are calibrated — not microarchitecturally
// derived — so that (a) convolution dominates ResNet18's single-SM time with
// roughly a 9:1 share, which is what makes the composed network speedup land
// at the paper's 23x rather than convolution's 32x, and (b) the full-device
// ResNet18 latency lands near 1.4 ms, the scale implied by the paper's
// saturation throughput (≈750 inferences/s on a fully loaded device).
type CostModel struct {
	MACRate float64 // multiply-accumulates per second per SM
	MemRate float64 // DRAM bytes per second per SM
}

// DefaultCostModel returns the calibrated RTX 2080 Ti single-SM rates.
func DefaultCostModel() CostModel {
	return CostModel{
		MACRate: 64e9, // 64 GMAC/s per SM
		MemRate: 17e9, // 17 GB/s per SM
	}
}

// WorkMS reports single-SM milliseconds for an op with the given demands.
func (cm CostModel) WorkMS(macs, bytes int64) float64 {
	if cm.MACRate <= 0 || cm.MemRate <= 0 {
		panic(fmt.Sprintf("dnn: invalid cost model %+v", cm))
	}
	return 1000 * (float64(macs)/cm.MACRate + float64(bytes)/cm.MemRate)
}

// builder incrementally constructs a Graph with cost annotations. The last
// added op is the implicit input of the next one unless explicit inputs are
// given, which keeps network definitions compact and linear to read.
type builder struct {
	g    *Graph
	cm   CostModel
	last int
}

func newBuilder(name string, cm CostModel) *builder {
	return &builder{g: &Graph{Name: name}, cm: cm, last: -1}
}

// add appends an op consuming the given inputs (default: previous op).
func (b *builder) add(name string, class speedup.Class, out Shape, macs, bytes int64, inputs ...int) int {
	if len(inputs) == 0 && b.last >= 0 {
		inputs = []int{b.last}
	}
	op := &Op{
		ID:     len(b.g.Ops),
		Name:   name,
		Class:  class,
		Out:    out,
		MACs:   macs,
		Bytes:  bytes,
		WorkMS: b.cm.WorkMS(macs, bytes),
		Inputs: inputs,
	}
	b.g.Ops = append(b.g.Ops, op)
	b.last = op.ID
	return op.ID
}

const elemBytes = 4 // fp32 activations and weights

// conv adds a KxK convolution (with bias folded away; networks here use BN).
func (b *builder) conv(name string, in Shape, outC, k, stride, pad int, inputs ...int) int {
	outH := (in.H+2*pad-k)/stride + 1
	outW := (in.W+2*pad-k)/stride + 1
	out := Shape{C: outC, H: outH, W: outW}
	macs := out.Elems() * int64(in.C) * int64(k) * int64(k)
	weights := int64(outC) * int64(in.C) * int64(k) * int64(k)
	bytes := elemBytes * (in.Elems() + out.Elems() + weights)
	return b.add(name, speedup.Conv, out, macs, bytes, inputs...)
}

// batchNorm adds an inference-mode batch normalisation over the input shape.
func (b *builder) batchNorm(name string, s Shape, inputs ...int) int {
	macs := 2 * s.Elems() // scale + shift
	bytes := elemBytes * (2*s.Elems() + 2*int64(s.C))
	return b.add(name, speedup.BatchNorm, s, macs, bytes, inputs...)
}

// relu adds an elementwise rectifier.
func (b *builder) relu(name string, s Shape, inputs ...int) int {
	return b.add(name, speedup.ReLU, s, s.Elems(), elemBytes*2*s.Elems(), inputs...)
}

// maxPool adds a KxK max pooling.
func (b *builder) maxPool(name string, in Shape, k, stride, pad int, inputs ...int) int {
	outH := (in.H+2*pad-k)/stride + 1
	outW := (in.W+2*pad-k)/stride + 1
	out := Shape{C: in.C, H: outH, W: outW}
	macs := out.Elems() * int64(k) * int64(k) // comparisons, counted as ops
	bytes := elemBytes * (in.Elems() + out.Elems())
	return b.add(name, speedup.MaxPool, out, macs, bytes, inputs...)
}

// globalAvgPool reduces HxW to 1x1 per channel.
func (b *builder) globalAvgPool(name string, in Shape, inputs ...int) int {
	out := Shape{C: in.C, H: 1, W: 1}
	bytes := elemBytes * (in.Elems() + out.Elems())
	return b.add(name, speedup.AvgPool, out, in.Elems(), bytes, inputs...)
}

// addResidual adds an elementwise sum of two tensors of shape s.
func (b *builder) addResidual(name string, s Shape, a, c int) int {
	return b.add(name, speedup.Add, s, s.Elems(), elemBytes*3*s.Elems(), a, c)
}

// linear adds a fully connected layer from in features to out features.
func (b *builder) linear(name string, in, out int, inputs ...int) int {
	macs := int64(in) * int64(out)
	bytes := elemBytes * (int64(in) + int64(out) + int64(in)*int64(out))
	return b.add(name, speedup.Linear, Shape{C: out, H: 1, W: 1}, macs, bytes, inputs...)
}

// softmax adds a softmax over a vector of n features.
func (b *builder) softmax(name string, n int, inputs ...int) int {
	s := Shape{C: n, H: 1, W: 1}
	return b.add(name, speedup.Softmax, s, 3*s.Elems(), elemBytes*2*s.Elems(), inputs...)
}

// finish validates and returns the graph.
func (b *builder) finish() *Graph {
	if err := b.g.Validate(); err != nil {
		panic(err) // builder bug, not caller input
	}
	return b.g
}

// Package dnn models deep neural networks as DAGs of costed operations.
//
// The scheduler in this reproduction never executes real tensor math; what it
// needs from a network is (1) the DAG of operations, (2) each operation's
// single-SM work and speedup class, and (3) a partition of the DAG into
// pipeline stages (the paper's sub-tasks τᵢʲ). This package provides all
// three, with an analytic cost model driven by MAC counts and memory traffic
// so that the relative operation costs — and therefore the composed speedup
// behaviour of whole networks (Figure 1's 23x for ResNet18) — are realistic.
package dnn

import (
	"fmt"

	"sgprs/internal/speedup"
)

// Shape is a CHW feature-map shape (batch size is always 1: the paper
// schedules single-frame inference). Vectors use C=length, H=W=1.
type Shape struct {
	C, H, W int
}

// Elems reports the number of elements in the shape.
func (s Shape) Elems() int64 { return int64(s.C) * int64(s.H) * int64(s.W) }

// String renders the shape as "CxHxW".
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// Op is one operation (kernel) of a network. Ops are identified by their
// index in Graph.Ops; Inputs always reference lower indices, so the op slice
// is a topological order by construction.
type Op struct {
	ID     int
	Name   string
	Class  speedup.Class
	Out    Shape
	MACs   int64 // multiply-accumulate count
	Bytes  int64 // DRAM traffic (activations + weights), bytes
	WorkMS float64
	Inputs []int
}

// Graph is a validated DAG of operations for one network.
type Graph struct {
	Name string
	Ops  []*Op
}

// Validate checks the DAG invariants: non-empty, inputs strictly precede
// their consumers, no dangling references, positive work.
func (g *Graph) Validate() error {
	if g.Name == "" {
		return fmt.Errorf("dnn: graph has no name")
	}
	if len(g.Ops) == 0 {
		return fmt.Errorf("dnn: graph %q has no operations", g.Name)
	}
	for i, op := range g.Ops {
		if op.ID != i {
			return fmt.Errorf("dnn: %q op %d has ID %d", g.Name, i, op.ID)
		}
		if op.WorkMS < 0 {
			return fmt.Errorf("dnn: %q op %s has negative work %v", g.Name, op.Name, op.WorkMS)
		}
		if i > 0 && len(op.Inputs) == 0 {
			return fmt.Errorf("dnn: %q op %s (id %d) has no inputs", g.Name, op.Name, i)
		}
		for _, in := range op.Inputs {
			if in < 0 || in >= i {
				return fmt.Errorf("dnn: %q op %s input %d out of range [0,%d)", g.Name, op.Name, in, i)
			}
		}
	}
	return nil
}

// TotalWorkMS reports the network's total single-SM work in milliseconds.
func (g *Graph) TotalWorkMS() float64 {
	var sum float64
	for _, op := range g.Ops {
		sum += op.WorkMS
	}
	return sum
}

// TotalMACs reports the network's multiply-accumulate count.
func (g *Graph) TotalMACs() int64 {
	var sum int64
	for _, op := range g.Ops {
		sum += op.MACs
	}
	return sum
}

// WorkByClass aggregates single-SM work per speedup class, in class order.
// It is the WorkShare vector feeding speedup.Model.Aggregate.
func (g *Graph) WorkByClass() []speedup.WorkShare {
	acc := make(map[speedup.Class]float64)
	for _, op := range g.Ops {
		acc[op.Class] += op.WorkMS
	}
	var out []speedup.WorkShare
	for _, cl := range speedup.Classes() {
		if w := acc[cl]; w > 0 {
			out = append(out, speedup.WorkShare{Class: cl, Work: w})
		}
	}
	return out
}

// Gain reports the whole-network speedup at n effective SMs under model m —
// the "ResNet18" series of Figure 1.
func (g *Graph) Gain(m *speedup.Model, n float64) float64 {
	return m.Aggregate(g.WorkByClass(), n)
}

// LatencyMS reports the isolated single-inference latency at n effective SMs:
// total work divided by the composed gain.
func (g *Graph) LatencyMS(m *speedup.Model, n float64) float64 {
	gain := g.Gain(m, n)
	if gain <= 0 {
		return 0
	}
	return g.TotalWorkMS() / gain
}

// CutPoints lists the indices i such that the graph can be split after op i:
// every edge crossing the cut originates at op i itself, so the stage
// interface is a single tensor and stages form a simple chain (the structure
// the paper's stage pipeline assumes). The final op is never a cut point.
func (g *Graph) CutPoints() []int {
	n := len(g.Ops)
	// maxReach[i] = highest consumer index of op i (or i if none).
	maxReach := make([]int, n)
	for i := range maxReach {
		maxReach[i] = i
	}
	for _, op := range g.Ops {
		for _, in := range op.Inputs {
			if op.ID > maxReach[in] {
				maxReach[in] = op.ID
			}
		}
	}
	var cuts []int
	for i := 0; i < n-1; i++ {
		ok := true
		for j := 0; j < i; j++ {
			if maxReach[j] > i {
				ok = false
				break
			}
		}
		if ok {
			cuts = append(cuts, i)
		}
	}
	return cuts
}

// Scale multiplies every op's work by factor, returning g for chaining. It is
// the calibration hook that pins a network's absolute latency to a measured
// target without disturbing relative op costs.
func (g *Graph) Scale(factor float64) *Graph {
	if factor <= 0 {
		panic(fmt.Sprintf("dnn: scale factor %v must be positive", factor))
	}
	for _, op := range g.Ops {
		op.WorkMS *= factor
	}
	return g
}

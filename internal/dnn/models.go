package dnn

import (
	"fmt"

	"sgprs/internal/speedup"
)

// ResNet18 builds the benchmark network of the paper — ResNet18 [He et al.
// 2016] for a 224x224x3 input — with per-operation cost annotations. The
// structure is the standard one: a 7x7 stem, four two-block residual layers,
// global average pooling, and a 1000-way classifier head.
func ResNet18(cm CostModel) *Graph {
	b := newBuilder("resnet18", cm)
	in := Shape{C: 3, H: 224, W: 224}

	b.conv("conv1", in, 64, 7, 2, 3)
	s := Shape{C: 64, H: 112, W: 112}
	b.batchNorm("bn1", s)
	b.relu("relu1", s)
	b.maxPool("maxpool", s, 3, 2, 1)
	s = Shape{C: 64, H: 56, W: 56}

	cfg := []struct {
		name   string
		outC   int
		stride int
	}{
		{"layer1", 64, 1},
		{"layer2", 128, 2},
		{"layer3", 256, 2},
		{"layer4", 512, 2},
	}
	for _, layer := range cfg {
		s = basicBlock(b, layer.name+".0", s, layer.outC, layer.stride)
		s = basicBlock(b, layer.name+".1", s, layer.outC, 1)
	}

	b.globalAvgPool("avgpool", s)
	b.linear("fc", s.C, 1000)
	b.softmax("softmax", 1000)
	return b.finish()
}

// basicBlock appends a ResNet basic block (two 3x3 convolutions plus a
// residual connection, with a strided 1x1 projection when the shape changes)
// and returns the output shape.
func basicBlock(b *builder, name string, in Shape, outC, stride int) Shape {
	blockIn := b.last
	out := Shape{C: outC, H: (in.H-1)/stride + 1, W: (in.W-1)/stride + 1}

	b.conv(name+".conv1", in, outC, 3, stride, 1)
	b.batchNorm(name+".bn1", out)
	b.relu(name+".relu1", out)
	b.conv(name+".conv2", out, outC, 3, 1, 1)
	main := b.batchNorm(name+".bn2", out)

	shortcut := blockIn
	if stride != 1 || in.C != outC {
		b.conv(name+".downsample.conv", in, outC, 1, stride, 0, blockIn)
		shortcut = b.batchNorm(name+".downsample.bn", out)
	}
	b.addResidual(name+".add", out, main, shortcut)
	b.relu(name+".relu2", out)
	return out
}

// VGG11 builds a VGG-11 network for a 224x224x3 input — a purely sequential
// convolutional network used by the multi-tenant example as a second tenant
// class with a heavier, less residual op mix.
func VGG11(cm CostModel) *Graph {
	b := newBuilder("vgg11", cm)
	s := Shape{C: 3, H: 224, W: 224}
	plan := []struct {
		outC int
		pool bool
	}{
		{64, true},
		{128, true},
		{256, false}, {256, true},
		{512, false}, {512, true},
		{512, false}, {512, true},
	}
	for i, p := range plan {
		name := fmt.Sprintf("conv%d", i+1)
		b.conv(name, s, p.outC, 3, 1, 1)
		s = Shape{C: p.outC, H: s.H, W: s.W}
		b.batchNorm("bn"+name[4:], s)
		b.relu("relu"+name[4:], s)
		if p.pool {
			b.maxPool("pool"+name[4:], s, 2, 2, 0)
			s = Shape{C: s.C, H: s.H / 2, W: s.W / 2}
		}
	}
	b.globalAvgPool("avgpool", s)
	b.linear("fc1", s.C, 4096)
	b.relu("relufc1", Shape{C: 4096, H: 1, W: 1})
	b.linear("fc2", 4096, 4096)
	b.relu("relufc2", Shape{C: 4096, H: 1, W: 1})
	b.linear("fc3", 4096, 1000)
	b.softmax("softmax", 1000)
	return b.finish()
}

// TinyCNN builds a small LeNet-style network for a 32x32x3 input. It is the
// lightweight tenant in mixed workloads and keeps unit tests fast.
func TinyCNN(cm CostModel) *Graph {
	b := newBuilder("tinycnn", cm)
	s := Shape{C: 3, H: 32, W: 32}
	b.conv("conv1", s, 32, 5, 1, 2)
	s = Shape{C: 32, H: 32, W: 32}
	b.relu("relu1", s)
	b.maxPool("pool1", s, 2, 2, 0)
	s = Shape{C: 32, H: 16, W: 16}
	b.conv("conv2", s, 64, 5, 1, 2)
	s = Shape{C: 64, H: 16, W: 16}
	b.relu("relu2", s)
	b.maxPool("pool2", s, 2, 2, 0)
	s = Shape{C: 64, H: 8, W: 8}
	b.linear("fc1", int(s.Elems()), 384)
	b.relu("relufc1", Shape{C: 384, H: 1, W: 1})
	b.linear("fc2", 384, 10)
	b.softmax("softmax", 10)
	return b.finish()
}

// MLP builds a plain three-layer perceptron — a degenerate "network" with no
// convolution at all, useful for exercising the scheduler with launch-bound
// stages.
func MLP(cm CostModel, in, hidden, out int) *Graph {
	b := newBuilder("mlp", cm)
	b.linear("fc1", in, hidden)
	b.relu("relu1", Shape{C: hidden, H: 1, W: 1})
	b.linear("fc2", hidden, hidden)
	b.relu("relu2", Shape{C: hidden, H: 1, W: 1})
	b.linear("fc3", hidden, out)
	b.softmax("softmax", out)
	return b.finish()
}

// Calibrate scales the graph's work so that its isolated latency on n
// effective SMs equals targetMS under the speedup model, and returns the
// applied factor. This pins simulated absolute time to a measured reference
// point (the paper's full-device ResNet18 latency) while keeping every
// relative cost intact.
func Calibrate(g *Graph, m *speedup.Model, n, targetMS float64) float64 {
	if targetMS <= 0 {
		panic(fmt.Sprintf("dnn: target latency %v must be positive", targetMS))
	}
	cur := g.LatencyMS(m, n)
	if cur <= 0 {
		panic(fmt.Sprintf("dnn: graph %q has zero latency, cannot calibrate", g.Name))
	}
	factor := targetMS / cur
	g.Scale(factor)
	return factor
}

// Package linttest is the fixture harness for the determinism suite — the
// analysistest idiom on the stdlib-only framework. A fixture is a directory
// of Go files under testdata/src/<pkg>; expected findings are trailing
// comments of the form
//
//	x += v[k] // want "accumulates into float"
//
// where each quoted string is a regular expression that must match a
// diagnostic reported on that line. The harness fails on unexpected
// diagnostics and on expectations nothing matched — so deleting an
// analyzer's check makes its fixture test fail, which is the anti-vacuity
// property CI leans on.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sgprs/internal/lint"
)

// Run loads testdata/src/<pkg> (pkg doubles as the fixture's import path, so
// a fixture named "gpu" is bound by the simulation-package rules and one
// named "outside" is not), runs the given analyzers plus the allow layer,
// and compares against the fixture's want expectations.
func Run(t *testing.T, testdata, pkg string, analyzers ...*lint.Analyzer) {
	t.Helper()
	diags := RunDiagnostics(t, testdata, pkg, analyzers...)
	checkWants(t, filepath.Join(testdata, "src", pkg), diags)
}

// RunDiagnostics loads and lints the fixture, returning the surviving
// diagnostics without checking want expectations — for driver-level tests
// that assert on the diagnostics themselves.
func RunDiagnostics(t *testing.T, testdata, pkg string, analyzers ...*lint.Analyzer) []lint.Diagnostic {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	p, err := lint.LoadFixture(dir, pkg)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := lint.Run([]*lint.Package{p}, analyzers)
	if err != nil {
		t.Fatalf("linting fixture %s: %v", dir, err)
	}
	return diags
}

// wantRE extracts the quoted expectations of a want comment — double-quoted
// or backquoted, the latter convenient for regexps with escapes.
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// expectation is one want clause, keyed by file and line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// checkWants parses `// want "re"...` comments from every fixture file and
// reconciles them with the reported diagnostics.
func checkWants(t *testing.T, dir string, diags []lint.Diagnostic) {
	t.Helper()
	expects, err := parseWants(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		hit := false
		for _, e := range expects {
			if !e.matched && sameFile(e.file, d.Pos.Filename) && e.line == d.Pos.Line && e.re.MatchString(d.Message) {
				e.matched = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", e.file, e.line, e.re)
		}
	}
}

// parseWants scans fixture sources line by line; want comments always sit on
// the line they describe.
func parseWants(dir string) ([]*expectation, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var expects []*expectation
	for _, file := range files {
		lines, err := readLines(file)
		if err != nil {
			return nil, err
		}
		for i, line := range lines {
			_, comment, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			ms := wantRE.FindAllStringSubmatch(comment, -1)
			if len(ms) == 0 {
				return nil, fmt.Errorf("%s:%d: malformed want comment %q", file, i+1, comment)
			}
			for _, m := range ms {
				pat := m[1]
				if m[2] != "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp: %v", file, i+1, err)
				}
				expects = append(expects, &expectation{file: file, line: i + 1, re: re})
			}
		}
	}
	return expects, nil
}

func readLines(path string) ([]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return strings.Split(string(b), "\n"), nil
}

// sameFile compares by base name: the loader reports absolute positions
// while expectations carry the glob's relative path.
func sameFile(a, b string) bool { return filepath.Base(a) == filepath.Base(b) }

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// FloatFold flags float variables and fields that are maintained
// incrementally — the same object receives both `+=` and `-=` somewhere in
// the package. An add-only fold over an admission-ordered slice recomputes
// the sum in one deterministic pass and is fine; a sum that is patched up
// and down as entities come and go accumulates rounding that depends on the
// full history of operations, the drift class PR 5's int64 fixed-point gain
// bound was built to kill (DESIGN.md §10). The exact escape: keep the
// increments provably exact (small integer floats, like the priority
// weights) or move the fold to integer fixed point — and write the proof
// into a //sgprs:allow on each `-=` site.
//
// Diagnostics land on the `-=` sites: every decrement implies a matching
// increment, and it is the subtraction that turns a fold into an
// order-sensitive history.
var FloatFold = &Analyzer{
	Name: "floatfold",
	Doc: "float64 objects maintained with paired += / -= (reordering-sensitive " +
		"incremental folds) in a simulation package",
	Run: runFloatFold,
}

func runFloatFold(pass *Pass) error {
	if !pass.InSimPackage() {
		return nil
	}
	type sites struct {
		adds []ast.Expr
		subs []ast.Expr
	}
	folds := map[types.Object]*sites{}
	var order []types.Object // first-touch order keeps reporting deterministic
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || (as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN) {
				return true
			}
			for _, lhs := range as.Lhs {
				t := pass.TypeOf(lhs)
				if t == nil || !isFloat(t) {
					continue
				}
				obj := foldObject(pass, lhs)
				if obj == nil {
					continue
				}
				s := folds[obj]
				if s == nil {
					s = &sites{}
					folds[obj] = s
					order = append(order, obj)
				}
				if as.Tok == token.ADD_ASSIGN {
					s.adds = append(s.adds, lhs)
				} else {
					s.subs = append(s.subs, lhs)
				}
			}
			return true
		})
	}
	for _, obj := range order {
		s := folds[obj]
		if len(s.adds) == 0 || len(s.subs) == 0 {
			continue
		}
		addPos := pass.Fset.Position(s.adds[0].Pos())
		for _, sub := range s.subs {
			pass.Reportf(sub.Pos(),
				"float %s is maintained incrementally (-= here, += at %s:%d); the fold is reordering-sensitive — recompute from an admission-ordered slice, use integer fixed point, or annotate the exactness proof",
				exprString(sub), filepath.Base(addPos.Filename), addPos.Line)
		}
	}
	return nil
}

// foldObject resolves the accumulated object behind an lvalue: the variable
// for identifiers, the field object for selectors (shared across all
// instances of the struct, so a += in start and a -= in finish pair up).
// Index expressions have no stable object identity and are skipped.
func foldObject(pass *Pass, lhs ast.Expr) types.Object {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if obj := pass.Info.Uses[lhs]; obj != nil {
			return obj
		}
		return pass.Info.Defs[lhs]
	case *ast.SelectorExpr:
		if sel := pass.Info.Selections[lhs]; sel != nil {
			return sel.Obj()
		}
		return pass.Info.Uses[lhs.Sel] // package-qualified var
	default:
		return nil
	}
}

package lint_test

import (
	"strings"
	"testing"

	"sgprs/internal/lint"
	"sgprs/internal/lint/linttest"
)

// The five analyzer fixtures. Each carries positive `// want` expectations,
// so these tests are anti-vacuous by construction: weaken or delete an
// analyzer's check and its unmatched wants fail the test.

func TestMapOrder(t *testing.T)     { linttest.Run(t, "testdata", "gpu", lint.MapOrder) }
func TestRNGPurity(t *testing.T)    { linttest.Run(t, "testdata", "des", lint.RNGPurity) }
func TestGoroutineBan(t *testing.T) { linttest.Run(t, "testdata", "core", lint.GoroutineBan) }
func TestFloatFold(t *testing.T)    { linttest.Run(t, "testdata", "sim", lint.FloatFold) }
func TestTagSwitch(t *testing.T)    { linttest.Run(t, "testdata", "workload", lint.TagSwitch) }

// TestScopedRulesIgnoreNonSimPackages is the clean-file negative for every
// package-scoped rule: the "outside" fixture commits all four sins in a
// package the discipline does not bind, and nothing is reported.
func TestScopedRulesIgnoreNonSimPackages(t *testing.T) {
	diags := linttest.RunDiagnostics(t, "testdata", "outside",
		lint.MapOrder, lint.RNGPurity, lint.GoroutineBan, lint.FloatFold)
	for _, d := range diags {
		t.Errorf("unexpected diagnostic outside the simulation packages: %s", d)
	}
}

// TestAllowSuppresses proves the escape hatch: annotated violations are
// silent and the annotations count as used.
func TestAllowSuppresses(t *testing.T) {
	diags := linttest.RunDiagnostics(t, "testdata", "metrics", lint.All()...)
	for _, d := range diags {
		t.Errorf("allowed violation still reported: %s", d)
	}
}

// TestUnusedAllowFails proves the hatch is load-bearing: an allow that
// suppresses nothing is a finding of its own, so stale exemptions cannot
// survive the code they excused.
func TestUnusedAllowFails(t *testing.T) {
	diags := linttest.RunDiagnostics(t, "testdata", "naive", lint.All()...)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the unused allow: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "allow" || !strings.Contains(d.Message, "unused //sgprs:allow maporder") {
		t.Fatalf("unexpected diagnostic for a stale allow: %s", d)
	}
}

// TestMalformedAllowsFail: an allow must name a real analyzer and carry a
// reason; a malformed one suppresses nothing, so the underlying violation
// surfaces too.
func TestMalformedAllowsFail(t *testing.T) {
	diags := linttest.RunDiagnostics(t, "testdata", "fault", lint.All()...)
	var unknown, noReason, violations int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "unknown analyzer"):
			unknown++
		case strings.Contains(d.Message, "has no reason"):
			noReason++
		case d.Analyzer == "maporder":
			violations++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if unknown != 1 || noReason != 1 || violations != 2 {
		t.Fatalf("got unknown=%d noReason=%d violations=%d, want 1/1/2: %v",
			unknown, noReason, violations, diags)
	}
}

// TestTreeIsClean is the acceptance gate in test form: the committed tree
// lints clean under the full suite, with every deliberate violation
// annotated in place. This is what `sgprs-lint ./...` asserts in CI, pulled
// into `go test` so a violation cannot land even where CI is not running.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(pkgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

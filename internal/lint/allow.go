package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The escape hatch. A violation that is deliberate — a map iteration whose
// keys are sorted before use, a float maintained with provably exact
// arithmetic — is annotated in place:
//
//	//sgprs:allow maporder — keys are collected then sorted before use
//
// The annotation names exactly one analyzer and must carry a reason after an
// "—" (or "--") separator. It suppresses that analyzer's diagnostics on the
// same line or the line directly below (the usual comment-above-statement
// position). The driver verifies every allow is load-bearing: an allow that
// matches no diagnostic is itself an error, so stale exemptions cannot
// outlive the code they excused.

const allowPrefix = "//sgprs:allow"

// An allow is one parsed //sgprs:allow comment.
type allow struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

// collectAllows parses every //sgprs:allow comment in the package. Malformed
// annotations (unknown analyzer, missing reason) are returned as diagnostics
// attributed to the driver — they fail the run like any finding.
func collectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]*allow, []Diagnostic) {
	var allows []*allow
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				a, err := parseAllow(c.Text, known)
				if err != nil {
					diags = append(diags, Diagnostic{
						Analyzer: "allow",
						Pos:      pos,
						Message:  err.Error(),
					})
					continue
				}
				a.pos = pos
				allows = append(allows, a)
			}
		}
	}
	return allows, diags
}

// parseAllow validates "//sgprs:allow <analyzer> — <reason>".
func parseAllow(text string, known map[string]bool) (*allow, error) {
	body := strings.TrimPrefix(text, allowPrefix)
	if body != "" && body[0] != ' ' && body[0] != '\t' {
		return nil, fmt.Errorf("malformed %s comment: want %q", allowPrefix, allowPrefix+" <analyzer> — <reason>")
	}
	name, reason := body, ""
	for _, sep := range []string{"—", "--"} {
		if i := strings.Index(body, sep); i >= 0 {
			name, reason = body[:i], body[i+len(sep):]
			break
		}
	}
	name = strings.TrimSpace(name)
	reason = strings.TrimSpace(reason)
	if name == "" || !known[name] {
		return nil, fmt.Errorf("%s names unknown analyzer %q", allowPrefix, name)
	}
	if reason == "" {
		return nil, fmt.Errorf("%s %s has no reason: want %q", allowPrefix, name, allowPrefix+" "+name+" — <reason>")
	}
	return &allow{analyzer: name, reason: reason}, nil
}

// applyAllows suppresses diagnostics covered by an allow, marks the allows
// that earned their keep, and reports every unused allow as a diagnostic of
// its own. Only allows naming an analyzer in the active set are checked for
// use — an allow for an analyzer excluded from this run proves nothing
// either way.
func applyAllows(diags []Diagnostic, allows []*allow, active map[string]bool) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, a := range allows {
			if a.analyzer == d.Analyzer && a.pos.Filename == d.Pos.Filename &&
				(a.pos.Line == d.Pos.Line || a.pos.Line+1 == d.Pos.Line) {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, a := range allows {
		if !a.used && active[a.analyzer] {
			kept = append(kept, Diagnostic{
				Analyzer: "allow",
				Pos:      a.pos,
				Message:  fmt.Sprintf("unused %s %s — it suppresses no diagnostic; delete it or fix the annotation position", allowPrefix, a.analyzer),
			})
		}
	}
	return kept
}

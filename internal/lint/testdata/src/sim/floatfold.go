// Package sim is a floatfold fixture: a float object receiving both += and
// -= is an incremental fold whose value depends on operation history.
package sim

type device struct {
	weightSum float64
	busySMs   int
	load      float32
}

func (d *device) admit(w float64, sms int) {
	d.weightSum += w
	d.busySMs += sms
	d.load += float32(sms)
}

func (d *device) retire(w float64, sms int) {
	d.weightSum -= w // want "float d.weightSum is maintained incrementally"
	d.busySMs -= sms
	d.load -= float32(sms) // want "float d.load is maintained incrementally"
}

func localFold(deltas []float64) float64 {
	level := 0.0
	for _, d := range deltas {
		if d > 0 {
			level += d
		} else {
			level -= -d // want "float level is maintained incrementally"
		}
	}
	return level
}

// Add-only folds over ordered slices are the house pattern, integer
// maintenance is exact, and a decrement-only countdown has no pair.
func clean(ordered []float64, budget float64) (float64, int) {
	sum := 0.0
	for _, v := range ordered {
		sum += v
	}
	count := 0
	count++
	count -= 1
	for _, v := range ordered {
		budget -= v
	}
	return sum + budget, count
}

// Package gpu is a maporder fixture: its name places it inside the
// simulation-package scope, like the real sgprs/internal/gpu.
package gpu

import "sort"

type engine struct{ events []int }

func (e *engine) Schedule(at int)      { e.events = append(e.events, at) }
func (e *engine) AfterFunc(delay int)  { e.events = append(e.events, delay) }
func (e *engine) Reschedule(at int)    { e.events = append(e.events, at) }
func (e *engine) Lookup(key int) bool  { return key >= 0 }
func (e *engine) Observe(sample int)   {}
func (e *engine) helperSchedules() int { return len(e.events) }

func floatAccumulation(weights map[int]float64) float64 {
	sum := 0.0
	for _, w := range weights { // want "accumulates into float sum"
		sum += w
	}
	return sum
}

func floatSubtraction(weights map[int]float64) float64 {
	budget := 100.0
	for _, w := range weights { // want "accumulates into float budget"
		budget -= w
	}
	return budget
}

func sliceAppend(jobs map[int]string) []string {
	var order []string
	for _, j := range jobs { // want "appends to a slice"
		order = append(order, j)
	}
	return order
}

func eventScheduling(e *engine, releases map[int]int) {
	for _, at := range releases { // want `schedules events \(Schedule\)`
		e.Schedule(at)
	}
}

func nestedAccumulation(groups map[int][]float64) float64 {
	total := 0.0
	for _, g := range groups { // want "accumulates into float total"
		for _, v := range g {
			total += v
		}
	}
	return total
}

// collectThenSort is the blessed escape: the keys are sorted before any
// order-sensitive use, and the allow documents exactly that.
func collectThenSort(weights map[int]float64) float64 {
	var keys []int
	//sgprs:allow maporder — keys are collected then sorted before use
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	sum := 0.0
	for _, k := range keys {
		sum += weights[k]
	}
	return sum
}

// Order-insensitive map loops stay clean: integer counting, lookups,
// max-tracking, and folds over slices.
func cleanLoops(weights map[int]float64, ordered []float64, e *engine) (int, float64) {
	n := 0
	for range weights {
		n++
	}
	maxW := 0.0
	for _, w := range weights {
		if w > maxW {
			maxW = w
		}
	}
	sum := 0.0
	for _, w := range ordered {
		sum += w
	}
	for k := range weights {
		if e.Lookup(k) {
			e.Observe(k)
		}
	}
	return n, maxW + sum
}

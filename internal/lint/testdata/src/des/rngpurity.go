// Package des is an rngpurity fixture: a simulation package must draw all
// randomness from forked streams and all time from the DES clock.
package des

import (
	"math/rand"
	"os"
	"time"
)

func globalRandomness() float64 {
	u := rand.Float64()                // want "draws from the process-global generator"
	n := rand.Intn(10)                 // want "draws from the process-global generator"
	rand.Shuffle(n, func(i, j int) {}) // want "draws from the process-global generator"
	return u + float64(n)
}

func wallClock() time.Duration {
	start := time.Now()      // want `time.Now reads ambient state`
	return time.Since(start) // want `time.Since reads ambient state`
}

func environment() string {
	v := os.Getenv("SGPRS_SEED")                  // want `os.Getenv reads ambient state`
	if w, ok := os.LookupEnv("SGPRS_DEBUG"); ok { // want `os.LookupEnv reads ambient state`
		return w
	}
	return v
}

// Seeded generators are the house pattern: constructors and methods on a
// forked *rand.Rand are clean, as are time constants and arithmetic on
// simulated instants.
func seededRandomness(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	d := 5 * time.Millisecond
	return r.Float64() * float64(r.Intn(10)) * d.Seconds()
}

// Package metrics is the load-bearing-allow fixture: every violation here
// carries a written exemption, so the run comes back clean.
package metrics

import "sort"

func sortedFold(weights map[int]float64) float64 {
	var keys []int
	//sgprs:allow maporder — keys are collected then sorted before use
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	sum := 0.0
	for _, k := range keys {
		sum += weights[k]
	}
	return sum
}

type counter struct{ exact float64 }

func (c *counter) up() { c.exact += 1 }
func (c *counter) down() { //sgprs:allow floatfold — increments are the exact integer 1; integer floats never round below 2^53
	c.exact -= 1
}

// Package fault is the malformed-annotation fixture: an allow must name a
// real analyzer and carry a reason.
package fault

func unknownAnalyzer(weights map[int]float64) float64 {
	sum := 0.0
	//sgprs:allow mapiteration — no analyzer has this name
	for _, w := range weights {
		sum += w
	}
	return sum
}

func missingReason(weights map[int]float64) float64 {
	sum := 0.0
	//sgprs:allow maporder
	for _, w := range weights {
		sum += w
	}
	return sum
}

// Package naive is the stale-exemption fixture: its allow suppresses
// nothing, and the driver reports the annotation itself.
package naive

func cleanSum(ordered []float64) float64 {
	sum := 0.0
	//sgprs:allow maporder — stale exemption left behind after a refactor
	for _, v := range ordered {
		sum += v
	}
	return sum
}

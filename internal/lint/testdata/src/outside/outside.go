// Package outside is the shared negative fixture for the scoped rules: it
// is not a simulation package, so the very patterns the sim packages reject
// — map-order accumulation, ambient randomness, wall-clock reads,
// goroutines, incremental float folds — report nothing here. Reporting,
// tooling, and the runner legitimately do all of these.
package outside

import (
	"math/rand"
	"os"
	"time"
)

func mapAccumulation(weights map[int]float64) float64 {
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	return sum
}

func ambientState() float64 {
	_ = os.Getenv("HOME")
	_ = time.Now()
	return rand.Float64()
}

func concurrency(vals []int) int {
	ch := make(chan int)
	go func() {
		total := 0
		for _, v := range vals {
			total += v
		}
		ch <- total
	}()
	return <-ch
}

type pool struct{ level float64 }

func (p *pool) fill(v float64)  { p.level += v }
func (p *pool) drain(v float64) { p.level -= v }

// Package workload is a tagswitch fixture: switches over a tag enum must
// name every constant; a default clause does not excuse a missing tag.
package workload

import "fmt"

// EventTag is a tag enum: a defined integer type with a declared constant
// set.
type EventTag int

// Event origin tags.
const (
	TagRelease EventTag = iota
	TagLaunch
	TagFinish
	TagDiscard
)

// priority has exactly one constant — not an enum, never checked.
type priority int

const defaultPriority priority = 0

func route(t EventTag) string {
	switch t { // want "switch over EventTag is not exhaustive: missing TagDiscard"
	case TagRelease:
		return "release"
	case TagLaunch:
		return "launch"
	case TagFinish:
		return "finish"
	}
	return ""
}

func routeWithDefault(t EventTag) string {
	switch t { // want "switch over EventTag is not exhaustive: missing TagFinish"
	case TagRelease, TagLaunch, TagDiscard:
		return "known"
	default:
		return "silently swallowed"
	}
}

// Exhaustive switches are clean, with or without an out-of-range default,
// and non-enum subjects (plain ints, single-constant types, strings) are
// out of scope.
func clean(t EventTag, p priority, n int, s string) string {
	switch t {
	case TagRelease, TagLaunch:
		return "early"
	case TagFinish, TagDiscard:
		return "late"
	default:
		return fmt.Sprintf("tag(%d)", int(t))
	}
}

func cleanNonEnums(p priority, n int, s string) string {
	switch p {
	case defaultPriority:
		return "default"
	}
	switch n {
	case 1:
		return "one"
	}
	switch s {
	case "a":
		return "a"
	}
	return ""
}

// Package core is a goroutineban fixture: the simulation core is
// single-threaded by construction; concurrency belongs to internal/runner.
package core

func spawns() {
	go func() {}() // want "go statement in a simulation package"
}

func channels(n int) int {
	ch := make(chan int, 1) // want `make\(chan\) in a simulation package`
	ch <- n                 // want "channel send in a simulation package"
	v := <-ch               // want "channel receive in a simulation package"
	close(ch)               // want "close of a channel in a simulation package"
	return v
}

func selects(a, b chan int) int {
	select { // want "select statement in a simulation package"
	case v := <-a: // want "channel receive in a simulation package"
		return v
	case v := <-b: // want "channel receive in a simulation package"
		return v
	}
}

func drains(ch chan int) int {
	sum := 0
	for v := range ch { // want "range over a channel in a simulation package"
		sum += v
	}
	return sum
}

// Single-threaded work is untouched: closures, defers, and plain loops.
func clean(vals []int) int {
	total := 0
	f := func(v int) { total += v }
	for _, v := range vals {
		f(v)
	}
	defer f(0)
	return total
}

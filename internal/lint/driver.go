package lint

import "fmt"

// Run executes analyzers over pkgs, applies the //sgprs:allow escape hatch,
// and returns the surviving diagnostics in (file, line, column, analyzer)
// order. A nil analyzer list means All(). The returned error is reserved
// for analyzer-internal failures; findings are diagnostics, not errors.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	if analyzers == nil {
		analyzers = All()
	}
	// Allow comments may name any analyzer of the suite, not just the ones
	// selected for this run (sgprs-lint -run subsets); an allow for an
	// analyzer that did not run is neither unknown nor unused.
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	active := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
		active[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		pd, err := runPackage(pkg, analyzers, known, active)
		if err != nil {
			return nil, err
		}
		diags = append(diags, pd...)
	}
	sortDiags(diags)
	return diags, nil
}

// runPackage runs every analyzer over one package and settles its allows.
// Allows are package-scoped: an exemption must suppress a diagnostic from
// the same run that sees the comment, or it is reported as unused.
func runPackage(pkg *Package, analyzers []*Analyzer, known, active map[string]bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			ImportPath: pkg.ImportPath,
			ModulePath: pkg.ModulePath,
			diags:      &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	allows, allowDiags := collectAllows(pkg.Fset, pkg.Files, known)
	diags = applyAllows(diags, allows, active)
	return append(diags, allowDiags...), nil
}

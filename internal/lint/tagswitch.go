package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// TagSwitch requires switches over the module's tag enums — defined integer
// types with a declared constant set, like event origin tags, scheduler
// kinds, recovery actions, or axis kinds — to name every constant of the
// type explicitly. A `default` clause is exactly the silent fall-through
// this rule exists to close: when a new origin tag is added for state
// fingerprinting (DESIGN.md §12) or a new recovery action for fault
// injection (§13), every switch that routes on the enum must be revisited,
// and the compiler has no exhaustiveness check of its own. A default is
// still permitted for out-of-range values, but only in addition to the full
// constant set.
//
// Unlike the simulation-package rules this one is module-wide: registry,
// config, and CLI routing over the same enums drift just as silently.
var TagSwitch = &Analyzer{
	Name: "tagswitch",
	Doc: "non-exhaustive switch over a tag enum (a defined integer type with " +
		"a declared constant set); every constant must appear as a case",
	Run: runTagSwitch,
}

func runTagSwitch(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named := enumType(pass, pass.TypeOf(sw.Tag))
			if named == nil {
				return true
			}
			consts := enumConsts(named)
			if len(consts) < 2 {
				return true // a type with 0 or 1 constants is not an enum
			}
			missing := missingCases(pass, sw, consts)
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(),
					"switch over %s is not exhaustive: missing %s (a default clause does not count — new tags must not fall through silently)",
					named.Obj().Name(), strings.Join(missing, ", "))
			}
			return true
		})
	}
	return nil
}

// enumType resolves t to a defined integer type declared in the module under
// analysis, or nil.
func enumType(pass *Pass, t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	named, ok := t.(*types.Named)
	if !ok {
		if alias, isAlias := t.(*types.Alias); isAlias {
			return enumType(pass, types.Unalias(alias))
		}
		return nil
	}
	b, ok := named.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return nil
	}
	if !pass.inModule(named.Obj().Pkg()) {
		return nil
	}
	return named
}

// enumConsts lists the package-level constants of exactly type named, in
// declaration-scope order.
func enumConsts(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var consts []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && types.Identical(c.Type(), named) {
			consts = append(consts, c)
		}
	}
	return consts
}

// missingCases names the enum constants no case expression covers. Coverage
// is by constant value: a case naming one of two aliased constants covers
// both, and a case computing the value covers the constant it equals.
func missingCases(pass *Pass, sw *ast.SwitchStmt, consts []*types.Const) []string {
	var covered []constant.Value
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
				covered = append(covered, tv.Value)
			}
		}
	}
	var missing []string
	for _, c := range consts {
		hit := false
		for _, v := range covered {
			if constant.Compare(c.Val(), token.EQL, v) {
				hit = true
				break
			}
		}
		if !hit {
			missing = append(missing, c.Name())
		}
	}
	return missing
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// RNGPurity forbids ambient-state reads in simulation packages: math/rand's
// top-level functions (the process-global generator), time.Now/time.Since
// (the wall clock), and os.Getenv/os.LookupEnv (the environment). Inside the
// event loop, all randomness must flow through forked des.RNG streams — one
// per consumer, seeded from the run seed — and all time through the DES
// clock, or two runs with the same seed diverge the moment goroutine
// interleaving, host load, or environment differs. rand.New(rand.NewSource)
// values are untouched: the rule bans the shared global, not seeded
// generators.
var RNGPurity = &Analyzer{
	Name: "rngpurity",
	Doc: "math/rand globals, wall-clock reads (time.Now/Since), or environment " +
		"reads (os.Getenv) in a simulation package",
	Run: runRNGPurity,
}

// bannedFuncs maps (package path, function) to the replacement the
// diagnostic suggests.
var bannedFuncs = map[[2]string]string{
	{"time", "Now"}:      "the DES clock (des.Engine.Now)",
	{"time", "Since"}:    "durations of des.Time instants",
	{"os", "Getenv"}:     "explicit configuration",
	{"os", "LookupEnv"}:  "explicit configuration",
	{"os", "Environ"}:    "explicit configuration",
	{"time", "Tick"}:     "scheduled des events",
	{"time", "After"}:    "scheduled des events",
	{"time", "Sleep"}:    "scheduled des events",
	{"time", "NewTimer"}: "scheduled des events",
}

func runRNGPurity(pass *Pass) error {
	if !pass.InSimPackage() {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand) are fine
			}
			switch pkg := fn.Pkg().Path(); pkg {
			case "math/rand", "math/rand/v2":
				if strings.HasPrefix(fn.Name(), "New") {
					return true // constructors build seeded generators
				}
				pass.Reportf(sel.Pos(),
					"%s.%s draws from the process-global generator; fork a stream from the run seed (des.RNG) instead",
					pkg, fn.Name())
			default:
				if repl, banned := bannedFuncs[[2]string{pkg, fn.Name()}]; banned {
					pass.Reportf(sel.Pos(),
						"%s.%s reads ambient state invisible to the run seed; use %s instead",
						pkg, fn.Name(), repl)
				}
			}
			return true
		})
	}
	return nil
}

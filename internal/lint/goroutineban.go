package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineBan forbids `go` statements and channel operations in simulation
// packages. The simulation core is single-threaded by construction — one
// event loop, one goroutine — and every parallel speedup comes from running
// independent simulations side by side in internal/runner, which owns all
// concurrency (worker pools, result ordering, progress fan-in). A goroutine
// or channel inside the core reintroduces scheduler-interleaving
// nondeterminism that no seed controls, and -race cannot prove ordering,
// only the absence of unsynchronized access.
var GoroutineBan = &Analyzer{
	Name: "goroutineban",
	Doc: "go statements or channel operations in a simulation package; " +
		"concurrency belongs to internal/runner only",
	Run: runGoroutineBan,
}

func runGoroutineBan(pass *Pass) error {
	if !pass.InSimPackage() {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in a simulation package; move concurrency to internal/runner")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select statement in a simulation package; move concurrency to internal/runner")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in a simulation package; move concurrency to internal/runner")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive in a simulation package; move concurrency to internal/runner")
				}
			case *ast.RangeStmt:
				if t := pass.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						pass.Reportf(n.Pos(), "range over a channel in a simulation package; move concurrency to internal/runner")
					}
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && isBuiltin(pass, id) {
					switch id.Name {
					case "make":
						if len(n.Args) > 0 {
							if t := pass.TypeOf(n.Args[0]); t != nil {
								if _, isChan := t.Underlying().(*types.Chan); isChan {
									pass.Reportf(n.Pos(), "make(chan) in a simulation package; move concurrency to internal/runner")
								}
							}
						}
					case "close":
						if len(n.Args) == 1 {
							if t := pass.TypeOf(n.Args[0]); t != nil {
								if _, isChan := t.Underlying().(*types.Chan); isChan {
									pass.Reportf(n.Pos(), "close of a channel in a simulation package; move concurrency to internal/runner")
								}
							}
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

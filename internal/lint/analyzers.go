package lint

// All returns the full determinism suite in reporting order. The slice is
// freshly allocated; callers may subset it (sgprs-lint's -run flag does).
func All() []*Analyzer {
	return []*Analyzer{MapOrder, RNGPurity, GoroutineBan, FloatFold, TagSwitch}
}

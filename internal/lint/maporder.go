package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `for range` over a map in a simulation package whose body
// accumulates into floats, appends to a slice, or schedules events — the
// exact pattern that breaks cross-worker bit-identity. Go randomizes map
// iteration order per process, so any order-sensitive fold over a map
// produces different float rounding (and different event sequence numbers)
// from run to run; the 26-worker DeepEqual sweeps in runner and the lockstep
// cross-checks in gpu exist to catch precisely this class hours later. The
// house pattern is an admission-ordered slice, or collect-keys-then-sort
// (which earns a written //sgprs:allow — the allow marks where the sort is).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "range over a map feeding order-sensitive accumulation (float folds, " +
		"appends, event scheduling) in a simulation package",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	if !pass.InSimPackage() {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if why := orderSensitive(pass, rng.Body); why != "" {
				pass.Reportf(rng.Pos(),
					"range over map %s %s inside the loop; map iteration order is randomized — iterate an admission-ordered slice (or sort the keys and annotate)",
					exprString(rng.X), why)
			}
			return true
		})
	}
	return nil
}

// orderSensitive reports how body depends on iteration order: a float
// compound accumulation, an append, or an event-scheduling call. The first
// hit names the diagnostic; one finding per loop keeps the allow annotation
// one line.
func orderSensitive(pass *Pass, body *ast.BlockStmt) string {
	why := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.ADD_ASSIGN && n.Tok != token.SUB_ASSIGN && n.Tok != token.MUL_ASSIGN {
				return true
			}
			for _, lhs := range n.Lhs {
				if t := pass.TypeOf(lhs); t != nil && isFloat(t) {
					why = "accumulates into float " + exprString(lhs)
					return false
				}
			}
		case *ast.CallExpr:
			switch fn := n.Fun.(type) {
			case *ast.Ident:
				if fn.Name == "append" && isBuiltin(pass, fn) {
					why = "appends to a slice"
					return false
				}
			case *ast.SelectorExpr:
				if isSchedulingCall(fn.Sel.Name) {
					why = "schedules events (" + fn.Sel.Name + ")"
					return false
				}
			}
		}
		return true
	})
	return why
}

// isSchedulingCall matches the des.Engine scheduling surface by method name
// (Schedule, ScheduleFunc, AfterFunc, AfterArg, AfterArgMonotone,
// Reschedule) — name-based so fixtures need no des import, and wide enough
// that a future scheduling entry point following the naming convention is
// covered automatically.
func isSchedulingCall(name string) bool {
	return strings.HasPrefix(name, "Schedule") ||
		strings.HasPrefix(name, "After") ||
		strings.HasPrefix(name, "Reschedule")
}

// isBuiltin reports whether id resolves to a universe-scope builtin (append
// shadowed by a local function does not count).
func isBuiltin(pass *Pass, id *ast.Ident) bool {
	obj := pass.Info.Uses[id]
	if obj == nil {
		return false
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// exprString renders a short source form of simple expressions for messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return "expression"
	}
}

// Package lint is the determinism discipline, enforced at compile time.
//
// Every figure this repository reproduces rests on one invariant: simulation
// output is bit-identical across worker counts, cache states, fast-forward,
// and fault-free injection. The house rules that keep the runtime
// equivalence tests green — admission-ordered slices instead of
// map-iteration accumulation, forked RNG streams instead of process globals,
// no wall clock in the event loop, single-goroutine simulation cores,
// exhaustive tag switches — used to live only in DESIGN.md prose and be
// caught hours later by a 26-worker DeepEqual sweep. This package moves them
// left: a suite of static analyzers (see DESIGN.md §14), run by
// cmd/sgprs-lint as part of `make lint` and CI, rejects the pattern at push
// time.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is built on the standard library alone —
// go/parser for syntax, go/types fed by `go list -export` export data for
// type information — because the toolchain image carries no external
// modules. Analyzers are pure functions from a type-checked package to
// diagnostics; the driver (Run) layers the //sgprs:allow escape hatch on
// top and turns an allow that suppresses nothing into an error of its own.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
)

// An Analyzer is one named check of the determinism discipline.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //sgprs:allow comments. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph description printed by `sgprs-lint -list`.
	Doc string
	// Run inspects one type-checked package and reports findings through
	// pass.Report. A returned error aborts the whole lint run (reserved
	// for internal failures, not findings).
	Run func(pass *Pass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// ImportPath is the package's import path ("sgprs/internal/gpu", or
	// the bare fixture name in analysistest runs).
	ImportPath string
	// ModulePath is the module the package belongs to ("sgprs");
	// empty for fixtures, which are treated as their own module.
	ModulePath string

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf resolves the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// simPackages is the set of simulation packages the determinism discipline
// binds — everything that executes inside (or feeds state into) the
// deterministic event loop. Concurrency lives in runner, reporting in
// report/analysis; neither is listed. Packages are matched by the base name
// of their import path so analysistest fixtures (import path "gpu") bind the
// same rules as the real tree ("sgprs/internal/gpu").
var simPackages = map[string]bool{
	"des":      true,
	"gpu":      true,
	"core":     true,
	"naive":    true,
	"sched":    true,
	"sim":      true,
	"metrics":  true,
	"workload": true,
	"fault":    true,
	"cluster":  true,
}

// InSimPackage reports whether the pass's package is bound by the
// simulation-package rules (maporder, rngpurity, goroutineban, floatfold).
func (p *Pass) InSimPackage() bool { return simPackages[path.Base(p.ImportPath)] }

// inModule reports whether pkg (the defining package of some object) belongs
// to the module under analysis. Fixtures have no module path; there the
// package under analysis is the only in-module package.
func (p *Pass) inModule(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	if p.ModulePath == "" {
		return pkg == p.Pkg
	}
	mp := pkg.Path()
	return mp == p.ModulePath || len(mp) > len(p.ModulePath) &&
		mp[:len(p.ModulePath)] == p.ModulePath && mp[len(p.ModulePath)] == '/'
}

// isFloat reports whether t's underlying type is a floating-point kind —
// the accumulation domain whose summation order the discipline pins.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sortDiags orders diagnostics by position then analyzer — the stable
// presentation order of the driver and the fixture harness.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

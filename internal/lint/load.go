package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader: `go list -export` resolves package patterns and compiles
// export data for every dependency, then each target package is parsed and
// type-checked from source against that export data. This is the standard
// library's half of what golang.org/x/tools/go/packages does — sufficient
// here because the module has no cgo, no vendoring, and no external
// dependencies, and it keeps the lint suite importable with the baked-in
// toolchain alone.

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	ModulePath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
}

// Load resolves patterns (e.g. "./...") relative to dir, type-checks every
// matched package, and returns them in `go list` order. Only the matched
// packages are returned; dependencies contribute export data but are not
// re-analyzed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, exports, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		p, err := typeCheck(fset, imp, t.ImportPath, t.Dir, t.GoFiles, modulePath(t))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func modulePath(p listPackage) string {
	if p.Module != nil {
		return p.Module.Path
	}
	return ""
}

// LoadFixture type-checks a single directory of Go files as the package
// importPath — the analysistest path. Fixture imports (standard library
// only) are resolved by asking `go list -export` for exactly the paths the
// fixture names; the fixture itself needs no module context. ModulePath is
// left empty, which makes the fixture its own module: tagswitch treats
// enums declared in the fixture as in-module and everything imported as
// foreign, exactly like the real tree.
func LoadFixture(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no fixture files in %s", dir)
	}
	// A throwaway parse discovers the imports the real load must cover.
	exports := map[string]string{}
	if imports := fixtureImports(dir, files); len(imports) > 0 {
		args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, imports...)
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(imports, " "), err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listPackage
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, fmt.Errorf("lint: decoding go list output: %v", err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset := token.NewFileSet()
	return typeCheck(fset, newExportImporter(fset, exports), importPath, dir, files, "")
}

// fixtureImports lists the distinct import paths named by the fixture files.
func fixtureImports(dir string, files []string) []string {
	fset := token.NewFileSet()
	seen := map[string]bool{}
	var paths []string
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			continue // the real parse will report it
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if !seen[p] {
				seen[p] = true
				paths = append(paths, p)
			}
		}
	}
	return paths
}

// goList runs `go list -export -deps -json` and splits the result into the
// pattern-matched targets and the import-path → export-data index covering
// every dependency.
func goList(dir string, patterns []string) ([]listPackage, map[string]string, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("lint: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	return targets, exports, nil
}

// newExportImporter builds a go/types importer that serves every import from
// the compiler export data `go list -export` produced. One importer is
// shared across all packages of a load so imported package identities are
// consistent.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(importPath string) (io.ReadCloser, error) {
		e, ok := exports[importPath]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", importPath)
		}
		return os.Open(e)
	})
}

// typeCheck parses files and runs go/types over them with full Info maps.
func typeCheck(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string, modPath string) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		ModulePath: modPath,
		Dir:        dir,
		Fset:       fset,
		Files:      syntax,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// Package speedup models how GPU kernel throughput scales with the number of
// streaming multiprocessors (SMs) assigned to it.
//
// The paper's Section III measures, on an RTX 2080 Ti (68 SMs) with ResNet18
// kernels running in isolation, that convolution reaches a 32x gain, max
// pooling 14x, every other operation stays below 7x, and the full ResNet18
// composes to only 23x. Linear speedup is not realistic on GPUs; this package
// captures that with saturating rational curves
//
//	gain(n) = A·n / (n + B)
//
// where B is the SM count at which the curve reaches half of its asymptote A.
// Compute-bound kernels (convolution) have large B (they keep scaling);
// memory- or launch-bound kernels saturate early (small B).
package speedup

import (
	"fmt"
	"math"
	"sort"
)

// DeviceSMs is the SM count of the modelled device (NVIDIA RTX 2080 Ti).
const DeviceSMs = 68

// Class identifies the scaling behaviour of an operation. All operations of
// one class share a speedup curve, mirroring the per-operation measurement in
// the paper's Figure 1.
type Class int

// Operation classes, ordered as in the paper's Figure 1 legend.
const (
	Conv Class = iota
	MaxPool
	AvgPool
	ReLU
	BatchNorm
	Linear
	Add
	Softmax
	numClasses
)

var classNames = [...]string{
	Conv:      "conv",
	MaxPool:   "maxpool",
	AvgPool:   "avgpool",
	ReLU:      "relu",
	BatchNorm: "batchnorm",
	Linear:    "linear",
	Add:       "add",
	Softmax:   "softmax",
}

// String returns the lower-case operation name used in reports.
func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// Classes lists every operation class in display order.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// Curve is a saturating speedup curve gain(n) = A·n/(n+B). The zero Curve is
// invalid; construct curves with NewCurve or take them from a Model.
type Curve struct {
	A float64 // asymptotic gain as n → ∞
	B float64 // SM count at half of the asymptote
}

// NewCurve builds the unique saturating curve anchored at gain(1) = 1 that
// passes through gain(DeviceSMs) = gainAtFull. Anchoring at one SM makes the
// modelled gain directly comparable to a measured speedup ratio
// t(1 SM)/t(n SMs), which is how the paper's Figure 1 is produced. It panics
// unless 1 < gainAtFull < DeviceSMs: gains at or below 1 mean the operation
// does not scale at all, and super-linear gains are not representable by a
// saturating curve (nor realistic on GPUs, as the paper argues).
func NewCurve(gainAtFull float64) Curve {
	if gainAtFull <= 1 || gainAtFull >= DeviceSMs {
		panic(fmt.Sprintf("speedup: gain at full device must be in (1, %d), got %v", DeviceSMs, gainAtFull))
	}
	// Solve A·1/(1+B) = 1 and A·68/(68+B) = g: B = 68(g−1)/(68−g).
	b := DeviceSMs * (gainAtFull - 1) / (DeviceSMs - gainAtFull)
	return Curve{A: 1 + b, B: b}
}

// Gain reports the speedup over a single SM when the kernel holds n effective
// SMs. Fractional n is meaningful: it models a partition share under
// contention. Curves from NewCurve satisfy Gain(1) = 1 exactly.
func (c Curve) Gain(n float64) float64 {
	if n <= 0 {
		return 0
	}
	return c.A * n / (n + c.B)
}

// GainAtFull reports the gain with every SM of the device.
func (c Curve) GainAtFull() float64 { return c.Gain(DeviceSMs) }

// Model maps every operation class to its speedup curve.
type Model struct {
	curves [numClasses]Curve
}

// NewModel builds a model from explicit per-class curves. Classes absent from
// the map panic: silently defaulting a class would skew every WCET downstream.
func NewModel(curves map[Class]Curve) *Model {
	m := &Model{}
	for _, cl := range Classes() {
		c, ok := curves[cl]
		if !ok {
			panic(fmt.Sprintf("speedup: model missing class %v", cl))
		}
		m.curves[cl] = c
	}
	return m
}

// DefaultModel returns the RTX 2080 Ti fit used throughout the reproduction.
// Full-device gains: conv 32x, maxpool 14x, avgpool 7x, and the remaining
// classes between 3x and 6x — matching the paper's Figure 1 ("the convolution
// operation reaches the best speedup gain (32x) followed by max pooling
// (14x); other operations failed to exceed 7x").
func DefaultModel() *Model {
	return NewModel(map[Class]Curve{
		Conv:      NewCurve(32), // compute-bound: keeps scaling
		MaxPool:   NewCurve(14),
		AvgPool:   NewCurve(7),
		ReLU:      NewCurve(6), // memory-bound: early saturation
		BatchNorm: NewCurve(5.5),
		Linear:    NewCurve(3), // tiny kernel: launch-bound
		Add:       NewCurve(4.5),
		Softmax:   NewCurve(3.5),
	})
}

// Curve returns the curve for class cl.
func (m *Model) Curve(cl Class) Curve {
	if cl < 0 || cl >= numClasses {
		panic(fmt.Sprintf("speedup: unknown class %v", cl))
	}
	return m.curves[cl]
}

// Gain reports the speedup of class cl at n effective SMs.
func (m *Model) Gain(cl Class, n float64) float64 { return m.Curve(cl).Gain(n) }

// WorkShare is one component of a composite kernel: Work single-SM
// milliseconds of class Class.
type WorkShare struct {
	Class Class
	Work  float64
}

// Aggregate reports the effective speedup of a composite kernel — a weighted
// harmonic mean, because the components execute sequentially:
//
//	gain = ΣW / Σ(Wᵢ / gainᵢ(n))
//
// This is how the whole-ResNet18 curve of Figure 1 (23x, below conv's 32x)
// emerges from the per-operation curves. Zero total work yields zero gain.
func (m *Model) Aggregate(parts []WorkShare, n float64) float64 {
	var total, scaled float64
	for _, p := range parts {
		if p.Work < 0 {
			panic(fmt.Sprintf("speedup: negative work %v for %v", p.Work, p.Class))
		}
		if p.Work == 0 {
			continue
		}
		g := m.Gain(p.Class, n)
		if g <= 0 {
			return 0
		}
		total += p.Work
		scaled += p.Work / g
	}
	if total == 0 || scaled == 0 {
		return 0
	}
	return total / scaled
}

// Table samples gain curves at the given SM counts for every class, in class
// order — the data series behind Figure 1.
func (m *Model) Table(smCounts []int) map[Class][]float64 {
	out := make(map[Class][]float64, numClasses)
	for _, cl := range Classes() {
		row := make([]float64, len(smCounts))
		for i, n := range smCounts {
			row[i] = m.Gain(cl, float64(n))
		}
		out[cl] = row
	}
	return out
}

// FitCurve least-squares fits a Curve to measured (sms, gain) points by
// linear regression on the transformed model 1/g = (1/A) + (B/A)·(1/n).
// It returns an error when fewer than two distinct points are given or the
// fit degenerates (non-positive A or B).
func FitCurve(sms, gains []float64) (Curve, error) {
	if len(sms) != len(gains) {
		return Curve{}, fmt.Errorf("speedup: mismatched fit inputs (%d vs %d)", len(sms), len(gains))
	}
	var xs, ys []float64
	for i := range sms {
		if sms[i] <= 0 || gains[i] <= 0 {
			continue
		}
		xs = append(xs, 1/sms[i])
		ys = append(ys, 1/gains[i])
	}
	if len(xs) < 2 {
		return Curve{}, fmt.Errorf("speedup: need at least two positive points, got %d", len(xs))
	}
	distinct := append([]float64(nil), xs...)
	sort.Float64s(distinct)
	if distinct[0] == distinct[len(distinct)-1] {
		return Curve{}, fmt.Errorf("speedup: all points share one SM count")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return Curve{}, fmt.Errorf("speedup: degenerate fit")
	}
	slope := (n*sxy - sx*sy) / den   // B/A
	intercept := (sy - slope*sx) / n // 1/A
	if intercept <= 0 || slope <= 0 {
		return Curve{}, fmt.Errorf("speedup: fit produced non-saturating curve (A⁻¹=%v, B/A=%v)", intercept, slope)
	}
	a := 1 / intercept
	return Curve{A: a, B: slope * a}, nil
}

package speedup

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultModelFigure1Targets(t *testing.T) {
	m := DefaultModel()
	tests := []struct {
		class Class
		want  float64
		tol   float64
	}{
		{Conv, 32, 0.01},
		{MaxPool, 14, 0.01},
		{AvgPool, 7, 0.01},
	}
	for _, tc := range tests {
		got := m.Gain(tc.class, DeviceSMs)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("%v gain at 68 SMs = %.3f, want %.1f", tc.class, got, tc.want)
		}
	}
	// "Other operations failed to exceed 7x."
	for _, cl := range []Class{ReLU, BatchNorm, Linear, Add, Softmax} {
		if g := m.Gain(cl, DeviceSMs); g > 7 {
			t.Errorf("%v gain at 68 SMs = %.3f, want <= 7", cl, g)
		}
	}
	// Ordering: conv > maxpool > everything else.
	conv := m.Gain(Conv, DeviceSMs)
	pool := m.Gain(MaxPool, DeviceSMs)
	if conv <= pool {
		t.Errorf("conv (%v) should beat maxpool (%v)", conv, pool)
	}
	for _, cl := range []Class{AvgPool, ReLU, BatchNorm, Linear, Add, Softmax} {
		if g := m.Gain(cl, DeviceSMs); g >= pool {
			t.Errorf("%v (%v) should be below maxpool (%v)", cl, g, pool)
		}
	}
}

func TestCurveMonotoneAndSaturating(t *testing.T) {
	m := DefaultModel()
	for _, cl := range Classes() {
		prev := 0.0
		for n := 1; n <= DeviceSMs; n++ {
			g := m.Gain(cl, float64(n))
			if g <= prev {
				t.Fatalf("%v gain not strictly increasing at %d SMs (%v <= %v)", cl, n, g, prev)
			}
			prev = g
		}
		c := m.Curve(cl)
		if c.GainAtFull() >= c.A {
			t.Errorf("%v gain at full device (%v) should be below asymptote %v", cl, c.GainAtFull(), c.A)
		}
		// Diminishing returns: second half of SMs adds less than the first.
		firstHalf := m.Gain(cl, 34)
		secondHalf := c.GainAtFull() - firstHalf
		if secondHalf >= firstHalf {
			t.Errorf("%v not saturating: first 34 SMs give %v, next 34 give %v", cl, firstHalf, secondHalf)
		}
	}
}

func TestCurveGainNearOneAtSingleSM(t *testing.T) {
	m := DefaultModel()
	for _, cl := range Classes() {
		g := m.Gain(cl, 1)
		if math.Abs(g-1) > 1e-9 {
			t.Errorf("%v gain at 1 SM = %v, want exactly 1", cl, g)
		}
	}
}

func TestGainAtZeroOrNegative(t *testing.T) {
	c := NewCurve(32)
	if g := c.Gain(0); g != 0 {
		t.Errorf("Gain(0) = %v, want 0", g)
	}
	if g := c.Gain(-5); g != 0 {
		t.Errorf("Gain(-5) = %v, want 0", g)
	}
}

func TestNewCurvePanicsOnBadInput(t *testing.T) {
	for _, gain := range []float64{0, 1, -1, 68, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCurve(%v) did not panic", gain)
				}
			}()
			NewCurve(gain)
		}()
	}
}

func TestNewModelMissingClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewModel with missing class did not panic")
		}
	}()
	NewModel(map[Class]Curve{Conv: NewCurve(32)})
}

func TestAggregateHarmonicComposition(t *testing.T) {
	m := DefaultModel()
	// A conv-dominated mix must land between the slowest component and conv.
	parts := []WorkShare{
		{Conv, 89},
		{MaxPool, 3},
		{BatchNorm, 4},
		{ReLU, 2},
		{Add, 1.5},
		{Linear, 0.5},
	}
	g := m.Aggregate(parts, DeviceSMs)
	if g <= m.Gain(Linear, DeviceSMs) || g >= m.Gain(Conv, DeviceSMs) {
		t.Errorf("aggregate %v outside (linear, conv) bounds", g)
	}
	// The ResNet18-like mix should land near the paper's 23x.
	if g < 18 || g > 28 {
		t.Errorf("ResNet18-like aggregate = %v, want ~23", g)
	}
}

func TestAggregateSingleClassMatchesCurve(t *testing.T) {
	m := DefaultModel()
	g := m.Aggregate([]WorkShare{{Conv, 10}}, 40)
	if math.Abs(g-m.Gain(Conv, 40)) > 1e-12 {
		t.Errorf("single-class aggregate %v != curve %v", g, m.Gain(Conv, 40))
	}
}

func TestAggregateEdgeCases(t *testing.T) {
	m := DefaultModel()
	if g := m.Aggregate(nil, 68); g != 0 {
		t.Errorf("empty aggregate = %v, want 0", g)
	}
	if g := m.Aggregate([]WorkShare{{Conv, 0}}, 68); g != 0 {
		t.Errorf("zero-work aggregate = %v, want 0", g)
	}
	if g := m.Aggregate([]WorkShare{{Conv, 5}}, 0); g != 0 {
		t.Errorf("zero-SM aggregate = %v, want 0", g)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative work did not panic")
		}
	}()
	m.Aggregate([]WorkShare{{Conv, -1}}, 68)
}

func TestTableShape(t *testing.T) {
	m := DefaultModel()
	sms := []int{1, 2, 4, 8, 16, 32, 68}
	tab := m.Table(sms)
	if len(tab) != int(numClasses) {
		t.Fatalf("table has %d classes, want %d", len(tab), numClasses)
	}
	for cl, row := range tab {
		if len(row) != len(sms) {
			t.Fatalf("%v row has %d entries, want %d", cl, len(row), len(sms))
		}
	}
	if math.Abs(tab[Conv][len(sms)-1]-32) > 0.01 {
		t.Errorf("conv at 68 = %v, want 32", tab[Conv][len(sms)-1])
	}
}

func TestClassString(t *testing.T) {
	if Conv.String() != "conv" || MaxPool.String() != "maxpool" {
		t.Error("class names wrong")
	}
	if Class(99).String() != "class(99)" {
		t.Errorf("out-of-range class string = %q", Class(99).String())
	}
	if len(Classes()) != int(numClasses) {
		t.Errorf("Classes() returned %d entries", len(Classes()))
	}
}

func TestFitCurveRecoversKnownCurve(t *testing.T) {
	want := NewCurve(32)
	var sms, gains []float64
	for _, n := range []float64{1, 2, 4, 8, 16, 32, 48, 68} {
		sms = append(sms, n)
		gains = append(gains, want.Gain(n))
	}
	got, err := FitCurve(sms, gains)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.A-want.A) > 1e-6*want.A || math.Abs(got.B-want.B) > 1e-6*want.B {
		t.Errorf("fit = %+v, want %+v", got, want)
	}
}

func TestFitCurveErrors(t *testing.T) {
	if _, err := FitCurve([]float64{1}, []float64{1}); err == nil {
		t.Error("single point fit should fail")
	}
	if _, err := FitCurve([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := FitCurve([]float64{4, 4, 4}, []float64{2, 2, 2}); err == nil {
		t.Error("single distinct SM count should fail")
	}
	if _, err := FitCurve([]float64{-1, 0}, []float64{1, 1}); err == nil {
		t.Error("no positive points should fail")
	}
}

// Property: for any valid curve, gain is monotone in n and bounded by A.
func TestCurveBoundsProperty(t *testing.T) {
	f := func(rawGain, rawN uint16) bool {
		gain := 1.5 + float64(rawGain%66)
		if gain >= DeviceSMs {
			gain = 67
		}
		n := float64(rawN%200) + 0.5
		c := NewCurve(gain)
		g := c.Gain(n)
		return g > 0 && g < c.A && c.Gain(n+1) > g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: aggregate gain always lies within [min, max] of component gains.
func TestAggregateBoundsProperty(t *testing.T) {
	m := DefaultModel()
	f := func(w1, w2, w3 uint8, rawN uint16) bool {
		n := 1 + float64(rawN%68)
		parts := []WorkShare{
			{Conv, float64(w1) + 0.1},
			{MaxPool, float64(w2) + 0.1},
			{ReLU, float64(w3) + 0.1},
		}
		g := m.Aggregate(parts, n)
		lo := math.Inf(1)
		hi := math.Inf(-1)
		for _, p := range parts {
			pg := m.Gain(p.Class, n)
			lo = math.Min(lo, pg)
			hi = math.Max(hi, pg)
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

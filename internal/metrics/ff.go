package metrics

import (
	"math"

	"sgprs/internal/des"
	"sgprs/internal/rt"
)

// This file is the collector half of the steady-state fast-forward layer
// (DESIGN.md §12): once the simulation state is proven to recur with period
// D, the collector records every metric-visible operation of one measurement
// cycle and replays the sequence over the k skipped cycles — appending the
// identical slots, writing the identical response-time floats (a response
// time is a difference of two instants that both shift by c·D, so the float
// is reused verbatim), and bumping the counters exactly as full simulation
// would have. Slot indices translate by the per-cycle append counts: a cycle
// appends a fixed number of backlog intervals and response slots, so the
// recurrence of slot b sits at b + c·perCycle.

// FFStats reports what the steady-state fast-forward layer did during a run.
// All-zero means it never engaged (ineligible workload or disabled).
type FFStats struct {
	// BoundariesHashed counts release-boundary states fingerprinted.
	BoundariesHashed uint64
	// HashCollisions counts fingerprint hash matches whose verify-on-match
	// byte comparison failed — the collision safety net engaging.
	HashCollisions uint64
	// CyclesDetected counts confirmed state recurrences.
	CyclesDetected uint64
	// CyclesSkipped counts whole hyperperiod cycles extrapolated
	// analytically instead of simulated.
	CyclesSkipped uint64
}

// opKind is the origin tag of one recorded metric operation. It is a named
// enum on purpose: the replay switch must stay exhaustive (tagswitch,
// DESIGN.md §14), so a new op kind recorded for fingerprinting cannot
// silently fall through the extrapolation and desynchronize the collector
// from the full simulation it stands in for.
type opKind uint8

// Recorded-op origin tags.
const (
	opRelease opKind = iota
	opDone
	opDiscard
)

// ffOp is one recorded metric operation of the measurement cycle.
type ffOp struct {
	kind opKind
	// inWin carries JobReleased's in-window decision (release ops) or
	// JobDone's window test (done ops).
	inWin bool
	// late and val carry JobDone's deadline verdict and response-time
	// milliseconds, reused verbatim (see file comment).
	late bool
	// hasResp records MetricsSlot >= 0 for done/discard ops.
	hasResp bool
	// slot and respSlot are the op's absolute BacklogSlot / MetricsSlot in
	// the recorded cycle; replay translates them by c·perCycle.
	slot     int
	respSlot int
	// at is the op's absolute instant in the recorded cycle.
	at  des.Time
	val float64
}

// BeginRecording starts capturing metric operations. The caller records
// exactly one cycle (t, t+D] and must EndRecording at its close.
func (c *Collector) BeginRecording() {
	c.recording = true
	c.recOps = c.recOps[:0]
	c.recStartsBase = len(c.starts)
	c.recRespBase = len(c.resp)
}

// EndRecording stops capturing and fixes the per-cycle append counts.
func (c *Collector) EndRecording() {
	c.recording = false
	c.recPerCycleStarts = len(c.starts) - c.recStartsBase
	c.recPerCycleResp = len(c.resp) - c.recRespBase
}

// Replay applies the recorded cycle k more times, each shifted one further
// cycle of length D. Replayed cycle c covers simulated time (t+c·D,
// t+(c+1)·D]; done/discard ops may close backlog intervals opened before
// their own cycle (a pipelined job finishing one cycle after its release),
// which is exactly why slots are translated rather than re-derived.
func (c *Collector) Replay(k int, cycle des.Time) {
	for cyc := 1; cyc <= k; cyc++ {
		shift := des.Time(int64(cycle) * int64(cyc))
		ds := cyc * c.recPerCycleStarts
		dr := cyc * c.recPerCycleResp
		for i := range c.recOps {
			op := &c.recOps[i]
			switch op.kind {
			case opRelease:
				c.starts = append(c.starts, op.at+shift)
				c.ends = append(c.ends, des.Never)
				if op.inWin {
					c.released++
					c.resp = append(c.resp, math.NaN())
				}
			case opDone:
				c.ends[op.slot+ds] = op.at + shift
				if op.inWin {
					c.completed++
				}
				if op.hasResp {
					c.completedReleased++
					if op.late {
						c.lateCompleted++
					}
					c.resp[op.respSlot+dr] = op.val
				}
			case opDiscard:
				c.ends[op.slot+ds] = op.at + shift
				if op.hasResp {
					c.dropped++
				}
			}
		}
	}
}

// ShiftSlots retargets a live job's collector slots to those of its
// recurrence k cycles later. A warped job stands in for the job full
// simulation would have released k cycles after it; every cycle appends the
// same number of backlog intervals and response slots, so the recurrence's
// slots sit exactly k per-cycle counts higher. Valid only between
// EndRecording and the resumed tail simulation.
func (c *Collector) ShiftSlots(j *rt.Job, k int) {
	j.BacklogSlot += k * c.recPerCycleStarts
	if j.MetricsSlot >= 0 {
		j.MetricsSlot += k * c.recPerCycleResp
	}
}

// MinOpenRelease reports the earliest release instant among jobs whose
// backlog interval is still open — the oldest in-flight job — or des.Never
// when nothing is in flight. The fast-forward layer requires it to be at or
// past the warm-up before extrapolating: a straggler released before warm-up
// has no response slot, and its recorded completion would not replay the way
// in-window completions do.
func (c *Collector) MinOpenRelease() des.Time {
	min := des.Never
	for i, end := range c.ends {
		if end == des.Never && c.starts[i] < min {
			min = c.starts[i]
		}
	}
	return min
}

// CollectorSnapshot is a copy of the collector's accumulated state, for the
// fast-forward lockstep equivalence tests (boundary-by-boundary comparison of
// an extrapolated run against a fully simulated one).
type CollectorSnapshot struct {
	Released          int
	Completed         int
	CompletedReleased int
	LateCompleted     int
	Dropped           int
	Resp              []float64
	Starts, Ends      []des.Time
}

// DebugSnapshot copies the collector's counters and slot arrays.
func (c *Collector) DebugSnapshot() CollectorSnapshot {
	return CollectorSnapshot{
		Released:          c.released,
		Completed:         c.completed,
		CompletedReleased: c.completedReleased,
		LateCompleted:     c.lateCompleted,
		Dropped:           c.dropped,
		Resp:              append([]float64(nil), c.resp...),
		Starts:            append([]des.Time(nil), c.starts...),
		Ends:              append([]des.Time(nil), c.ends...),
	}
}

// recordRelease, recordDone, and recordDiscard are the collector's recording
// taps, called by the lifecycle methods while recording is on.
func (c *Collector) recordRelease(j *rt.Job) {
	c.recOps = append(c.recOps, ffOp{
		kind:  opRelease,
		inWin: j.MetricsSlot >= 0,
		at:    j.Release,
	})
}

func (c *Collector) recordDone(j *rt.Job, now des.Time, inWin bool) {
	op := ffOp{
		kind:    opDone,
		inWin:   inWin,
		hasResp: j.MetricsSlot >= 0,
		slot:    j.BacklogSlot,
		at:      now,
	}
	if op.hasResp {
		op.respSlot = j.MetricsSlot
		op.late = now > j.Deadline
		op.val = c.resp[j.MetricsSlot]
	}
	c.recOps = append(c.recOps, op)
}

func (c *Collector) recordDiscard(j *rt.Job, now des.Time) {
	c.recOps = append(c.recOps, ffOp{
		kind:    opDiscard,
		hasResp: j.MetricsSlot >= 0,
		slot:    j.BacklogSlot,
		at:      now,
	})
}

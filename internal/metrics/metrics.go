// Package metrics computes the paper's evaluation metrics from completed
// simulation runs: total FPS, deadline miss rate (DMR), response-time
// statistics, and the pivot point of a task-count sweep.
package metrics

import (
	"fmt"

	"sgprs/internal/des"
	"sgprs/internal/rt"
	"sgprs/internal/stats"
)

// Summary is the measured outcome of one simulation run.
type Summary struct {
	// Window is the measurement interval (warm-up excluded).
	WarmUp, Horizon des.Time

	// Released counts jobs released inside the window whose deadline also
	// falls inside it (so "missed" is decidable for each of them).
	Released int
	// Completed counts inferences finished inside the window, late or
	// not — the paper's total-FPS numerator.
	Completed int
	// Missed counts released jobs that finished after their deadline or
	// did not finish at all.
	Missed int

	// TotalFPS is Completed per second of window.
	TotalFPS float64
	// DMR is Missed/Released in [0,1].
	DMR float64

	// Response-time statistics over completed released jobs, milliseconds.
	RespMeanMS, RespP50MS, RespP99MS, RespMaxMS float64
}

// String renders a one-line summary.
func (s Summary) String() string {
	return fmt.Sprintf("fps=%.1f dmr=%.4f released=%d completed=%d missed=%d resp(mean=%.2fms p99=%.2fms)",
		s.TotalFPS, s.DMR, s.Released, s.Completed, s.Missed, s.RespMeanMS, s.RespP99MS)
}

// Evaluate computes the run summary over [warmUp, horizon). Jobs released
// during warm-up still count toward FPS if they complete inside the window
// (the device was busy with them), but DMR is judged only on jobs whose
// entire deadline window lies inside the measurement interval.
func Evaluate(jobs []*rt.Job, warmUp, horizon des.Time) Summary {
	if horizon <= warmUp {
		panic(fmt.Sprintf("metrics: horizon %v not after warm-up %v", horizon, warmUp))
	}
	s := Summary{WarmUp: warmUp, Horizon: horizon}
	var resp []float64
	for _, j := range jobs {
		if j.Done && j.FinishedAt >= warmUp && j.FinishedAt < horizon {
			s.Completed++
		}
		if j.Release < warmUp || j.Deadline >= horizon {
			continue
		}
		s.Released++
		if j.Missed(horizon) {
			s.Missed++
		}
		if j.Done {
			resp = append(resp, j.ResponseTime().Milliseconds())
		}
	}
	window := (horizon - warmUp).Seconds()
	s.TotalFPS = float64(s.Completed) / window
	if s.Released > 0 {
		s.DMR = float64(s.Missed) / float64(s.Released)
	}
	if len(resp) > 0 {
		s.RespMeanMS = stats.Mean(resp)
		s.RespP50MS = stats.Quantile(resp, 0.50)
		s.RespP99MS = stats.Quantile(resp, 0.99)
		s.RespMaxMS = stats.Quantile(resp, 1.0)
	}
	return s
}

// Point is one sweep sample: a task count and its run summary.
type Point struct {
	Tasks   int
	Summary Summary
}

// PivotPoint reports the paper's pivot: the largest task count that the
// scheduler handles without a single deadline miss, scanning the sweep in
// ascending task order and stopping at the first miss. Zero means even one
// task misses.
func PivotPoint(series []Point) int {
	pivot := 0
	for _, p := range series {
		if p.Summary.Missed > 0 {
			break
		}
		pivot = p.Tasks
	}
	return pivot
}

// SaturationFPS reports the maximum total FPS reached anywhere in the sweep.
func SaturationFPS(series []Point) float64 {
	var best float64
	for _, p := range series {
		if p.Summary.TotalFPS > best {
			best = p.Summary.TotalFPS
		}
	}
	return best
}

// FinalFPS reports the FPS at the largest task count of the sweep — the
// paper's "drops to 468 fps" style endpoint.
func FinalFPS(series []Point) float64 {
	if len(series) == 0 {
		return 0
	}
	return series[len(series)-1].Summary.TotalFPS
}

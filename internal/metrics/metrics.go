// Package metrics computes the paper's evaluation metrics from completed
// simulation runs: total FPS, deadline miss rate (DMR), response-time
// statistics, and the pivot point of a task-count sweep.
package metrics

import (
	"fmt"
	"slices"

	"sgprs/internal/des"
	"sgprs/internal/rt"
	"sgprs/internal/stats"
)

// Summary is the measured outcome of one simulation run.
type Summary struct {
	// Window is the measurement interval (warm-up excluded).
	WarmUp, Horizon des.Time

	// Released counts jobs released inside the window whose deadline also
	// falls inside it (so "missed" is decidable for each of them).
	Released int
	// Completed counts inferences finished inside the window, late or
	// not — the paper's total-FPS numerator.
	Completed int
	// Missed counts released jobs that finished after their deadline or
	// did not finish at all.
	Missed int
	// Dropped counts released jobs the scheduler permanently abandoned
	// (bounded-admission drops and frame replacements) — a subset of
	// Missed, and the open-loop overload signal.
	Dropped int

	// TotalFPS is Completed per second of window.
	TotalFPS float64
	// DMR is Missed/Released in [0,1].
	DMR float64
	// DropRate is Dropped/Released in [0,1].
	DropRate float64

	// Response-time statistics over completed released jobs, milliseconds.
	RespMeanMS, RespP50MS, RespP99MS, RespMaxMS float64
	// RespP999MS extends the tail for open-loop studies, where the p99.9
	// separates schedulers the p99 no longer does.
	RespP999MS float64

	// QueueDepthMax and QueueDepthMean describe the admission backlog —
	// jobs released but not yet completed or discarded — as its maximum
	// and time-weighted mean over the window. Under closed-loop periodic
	// load the backlog is bounded by the in-flight frames; under open-loop
	// overload it is the queue the bounded-admission scheduler is holding
	// back.
	QueueDepthMax  int
	QueueDepthMean float64

	// SLOMS echoes the configured response-time objective, milliseconds
	// (0 = none); SLOHitRate is the fraction of released jobs that
	// completed within it.
	SLOMS      float64
	SLOHitRate float64

	// Faults is the fault-injection accounting (DESIGN.md §13): all-zero
	// unless the run configured sim.RunConfig.Faults. The batch Evaluate
	// path never fills it — fault injection is a streaming-only feature —
	// so the streaming-equivalence invariant is untouched.
	Faults FaultStats

	// Fleet is the multi-device dispatcher accounting (DESIGN.md §15):
	// all-zero unless the run configured sim.RunConfig.Devices > 1, so
	// single-device summaries — and their DeepEqual pins — are untouched.
	Fleet FleetStats
}

// FleetStats aggregates what the cluster layer did to a run: the dispatcher
// fills the placement/failover counters, the collector the fleet-degraded
// deadline accounting (releases while at least one device was down).
type FleetStats struct {
	// Devices is the fleet size (0 on single-device runs).
	Devices int
	// PerDeviceUtilization is each device's busy-SM utilization over the
	// run, indexed by fleet position.
	PerDeviceUtilization []float64
	// Crashes and Restarts count device-level failure events; a permanent
	// loss is a crash with no matching restart.
	Crashes  int
	Restarts int
	// Migrations counts chains re-placed onto a surviving device, and
	// MigrationCostMS the total re-staging cost they paid.
	Migrations      int
	MigrationCostMS float64
	// ShedChains counts chains permanently dropped by failover or the
	// admission controller; ShedReleases counts individual releases
	// discarded while their chain was shed, blacked out, or unadmitted.
	ShedChains   int
	ShedReleases int
	// FailoverLatencyMeanMS is the mean blackout a failed-over chain
	// experienced (migration cost, or restart wait plus backoff).
	FailoverLatencyMeanMS float64
	// FleetDegradedReleased counts in-window released jobs that arrived
	// while at least one device was down; FleetDegradedMissed and
	// FleetDegradedDMR judge deadline misses over exactly that subset.
	FleetDegradedReleased int
	FleetDegradedMissed   int
	FleetDegradedDMR      float64
}

// FaultStats aggregates what the fault-injection layer did to a run: the
// injector fills the injection counters, the collector the degraded-window
// deadline accounting.
type FaultStats struct {
	// Overruns counts kernels whose work was inflated; OverrunMassMS is
	// the extra single-SM milliseconds injected in total.
	Overruns      int
	OverrunMassMS float64
	// TransientFaults counts kernels aborted mid-flight; Retries,
	// SkippedJobs, and KilledChains partition the recovery decisions, and
	// Recoveries counts jobs completing despite at least one retry.
	TransientFaults int
	Retries         int
	Recoveries      int
	SkippedJobs     int
	KilledChains    int
	// DegradedReleased counts in-window released jobs that arrived inside
	// an SM-degradation window; DegradedMissed and DegradedDMR judge
	// deadline misses over exactly that subset — the degraded-time DMR.
	DegradedReleased int
	DegradedMissed   int
	DegradedDMR      float64
}

// String renders a one-line summary.
func (s Summary) String() string {
	return fmt.Sprintf("fps=%.1f dmr=%.4f released=%d completed=%d missed=%d resp(mean=%.2fms p99=%.2fms)",
		s.TotalFPS, s.DMR, s.Released, s.Completed, s.Missed, s.RespMeanMS, s.RespP99MS)
}

// Evaluate computes the run summary over [warmUp, horizon). Jobs released
// during warm-up still count toward FPS if they complete inside the window
// (the device was busy with them), but DMR is judged only on jobs whose
// entire deadline window lies inside the measurement interval. No SLO is
// configured; EvaluateSLO adds one.
func Evaluate(jobs []*rt.Job, warmUp, horizon des.Time) Summary {
	return EvaluateSLO(jobs, warmUp, horizon, 0)
}

// EvaluateSLO is Evaluate with a response-time service-level objective in
// milliseconds (0 = none): Summary.SLOHitRate reports the fraction of
// released jobs completing within it. This is the batch reference the
// streaming Collector is pinned bit-identical to.
func EvaluateSLO(jobs []*rt.Job, warmUp, horizon des.Time, sloMS float64) Summary {
	if horizon <= warmUp {
		panic(fmt.Sprintf("metrics: horizon %v not after warm-up %v", horizon, warmUp))
	}
	s := Summary{WarmUp: warmUp, Horizon: horizon}
	var resp []float64
	starts := make([]des.Time, 0, len(jobs))
	ends := make([]des.Time, 0, len(jobs))
	sloHits := 0
	for _, j := range jobs {
		starts = append(starts, j.Release)
		ends = append(ends, jobEnd(j))
		if j.Done && j.FinishedAt >= warmUp && j.FinishedAt < horizon {
			s.Completed++
		}
		if j.Release < warmUp || j.Deadline >= horizon {
			continue
		}
		s.Released++
		if j.Missed(horizon) {
			s.Missed++
		}
		if j.Discarded {
			s.Dropped++
		}
		if j.Done {
			r := j.ResponseTime().Milliseconds()
			resp = append(resp, r)
			if sloMS > 0 && r <= sloMS {
				sloHits++
			}
		}
	}
	s.finish(resp, nil, starts, ends, sloMS, sloHits)
	return s
}

// jobEnd reports the instant a job left the admission backlog: completion,
// discard, or never (still pending — clipped to the horizon by the depth
// profile). The streaming collector records exactly these instants from its
// callbacks, which is what keeps the two depth profiles identical.
func jobEnd(j *rt.Job) des.Time {
	switch {
	case j.Done:
		return j.FinishedAt
	case j.Discarded:
		return j.DiscardedAt
	default:
		return des.Never
	}
}

// finish folds the per-job accumulations into the summary's derived fields.
// Both metric paths — EvaluateSLO over retained jobs and Collector.Summary
// over streamed slots — call it with identically ordered inputs, so every
// float operation happens in the same order and the results are
// bit-identical (the house streaming-equivalence invariant).
//
// resp must be in release order; starts/ends are the backlog intervals of
// all jobs (sorted in place — callers pass scratch). sortBuf, when
// non-nil, is reused for the sorted response copy; the (possibly grown)
// buffer is returned so streaming callers can keep it across runs.
func (s *Summary) finish(resp, sortBuf []float64, starts, ends []des.Time, sloMS float64, sloHits int) []float64 {
	window := (s.Horizon - s.WarmUp).Seconds()
	s.TotalFPS = float64(s.Completed) / window
	if s.Released > 0 {
		s.DMR = float64(s.Missed) / float64(s.Released)
		s.DropRate = float64(s.Dropped) / float64(s.Released)
	}
	if len(resp) > 0 {
		s.RespMeanMS = stats.Mean(resp)
		sortBuf = append(sortBuf[:0], resp...)
		slices.Sort(sortBuf)
		s.RespP50MS = stats.QuantileSorted(sortBuf, 0.50)
		s.RespP99MS = stats.QuantileSorted(sortBuf, 0.99)
		s.RespP999MS = stats.QuantileSorted(sortBuf, 0.999)
		s.RespMaxMS = stats.QuantileSorted(sortBuf, 1.0)
	}
	integral, maxDepth := queueDepth(starts, ends, s.WarmUp, s.Horizon)
	s.QueueDepthMax = maxDepth
	s.QueueDepthMean = float64(integral) / float64(s.Horizon-s.WarmUp)
	if sloMS > 0 {
		s.SLOMS = sloMS
		if s.Released > 0 {
			s.SLOHitRate = float64(sloHits) / float64(s.Released)
		}
	}
	return sortBuf
}

// queueDepth computes the admission-backlog profile over [warmUp, horizon):
// the exact time-weighted integral (nanosecond·jobs, in int64) and the
// maximum instantaneous depth. A job occupies the half-open interval
// [start, end) — an end coinciding with another start never overlaps it —
// and pending jobs (end == des.Never) clip to the horizon.
//
// Both results are pure functions of the interval multiset, independent of
// the order events were observed in; that is what lets the streaming
// collector match the batch path bit for bit even though completions arrive
// out of release order. Sorts starts and ends in place.
func queueDepth(starts, ends []des.Time, warmUp, horizon des.Time) (integral int64, maxDepth int) {
	for i := range starts {
		s, e := starts[i], ends[i]
		if s < warmUp {
			s = warmUp
		}
		if e > horizon {
			e = horizon
		}
		if e > s {
			integral += int64(e - s)
		}
	}
	slices.Sort(starts)
	slices.Sort(ends)
	// Sweep the starts in time order, popping ends that precede them; the
	// depth right after each start inside the window is a candidate
	// maximum, as is the depth at warmUp itself (jobs can straddle it).
	depth, j := 0, 0
	warm := false
	for i := 0; i < len(starts) && starts[i] < horizon; i++ {
		s := starts[i]
		if !warm && s >= warmUp {
			for j < len(ends) && ends[j] <= warmUp {
				depth--
				j++
			}
			if depth > maxDepth {
				maxDepth = depth
			}
			warm = true
		}
		for j < len(ends) && ends[j] <= s {
			depth--
			j++
		}
		depth++
		if warm && depth > maxDepth {
			maxDepth = depth
		}
	}
	if !warm {
		// No start inside the window: the only candidate is the depth
		// carried across warmUp by straddling jobs.
		for j < len(ends) && ends[j] <= warmUp {
			depth--
			j++
		}
		if depth > maxDepth {
			maxDepth = depth
		}
	}
	return integral, maxDepth
}

// Point is one sweep sample: a task count and its run summary.
type Point struct {
	Tasks   int
	Summary Summary
	// FastForward reports the steady-state fast-forward layer's activity
	// for this point (all-zero when it never engaged).
	FastForward FFStats
}

// PivotPoint reports the paper's pivot: the largest task count that the
// scheduler handles without a single deadline miss, scanning the sweep in
// ascending task order and stopping at the first miss. Zero means even one
// task misses.
func PivotPoint(series []Point) int {
	pivot := 0
	for _, p := range series {
		if p.Summary.Missed > 0 {
			break
		}
		pivot = p.Tasks
	}
	return pivot
}

// SaturationFPS reports the maximum total FPS reached anywhere in the sweep.
func SaturationFPS(series []Point) float64 {
	var best float64
	for _, p := range series {
		if p.Summary.TotalFPS > best {
			best = p.Summary.TotalFPS
		}
	}
	return best
}

// FinalFPS reports the FPS at the largest task count of the sweep — the
// paper's "drops to 468 fps" style endpoint.
func FinalFPS(series []Point) float64 {
	if len(series) == 0 {
		return 0
	}
	return series[len(series)-1].Summary.TotalFPS
}

package metrics

import (
	"math/rand"
	"reflect"
	"testing"

	"sgprs/internal/des"
	"sgprs/internal/dnn"
	"sgprs/internal/rt"
)

// mkTask builds a profiled 2-stage synthetic task.
func mkTask(t *testing.T, id int, period des.Time) *rt.Task {
	t.Helper()
	g := dnn.TinyCNN(dnn.DefaultCostModel())
	stages, err := dnn.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	task, err := rt.NewTask(id, "t", g, stages, period, period, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := task.SetWCETs([]des.Time{des.Millisecond, des.Millisecond}); err != nil {
		t.Fatal(err)
	}
	return task
}

// replay feeds the jobs' lifecycle into a fresh collector: releases in
// release order (as the generator would), end-of-life events in the order
// given by perm. Completed jobs report JobDone, discarded ones
// JobDiscarded; jobs still pending at the horizon get no callback — the
// three end states the schedulers produce. Returns the streaming summary.
func replay(jobs []*rt.Job, perm []int, warmUp, horizon des.Time, sloMS float64) Summary {
	c := NewCollector(warmUp, horizon)
	c.SetSLO(sloMS)
	for _, j := range jobs {
		c.JobReleased(j, j.Release)
	}
	for _, i := range perm {
		j := jobs[i]
		switch {
		case j.Done:
			c.JobDone(j, j.FinishedAt)
		case j.Discarded:
			c.JobDiscarded(j, j.DiscardedAt)
		}
	}
	return c.Summary()
}

// TestCollectorMatchesEvaluate is the bit-identity test: over a mixed
// workload (on-time, late, discarded, and never-finishing jobs from two
// interleaved tasks), the streaming summary must equal the batch Evaluate
// byte for byte — with completions delivered in release order AND in
// reverse/shuffled order, since the device finishes jobs in neither order
// in general.
func TestCollectorMatchesEvaluate(t *testing.T) {
	pA := des.FromMillis(100)
	pB := des.FromMillis(130)
	taskA := mkTask(t, 0, pA)
	taskB := mkTask(t, 1, pB)

	var jobs []*rt.Job
	for i := 0; i < 80; i++ {
		j := taskA.NewJob(i, des.Time(int64(pA)*int64(i)))
		switch i % 4 {
		case 0, 1: // on time
			j.Stages[1].MarkFinished(j.Release.Add(des.FromMillis(20)))
		case 2: // late
			j.Stages[1].MarkFinished(j.Release.Add(des.FromMillis(150)))
		case 3: // dropped by the scheduler mid-flight
			j.Discard(j.Release.Add(des.FromMillis(60)))
		}
		jobs = append(jobs, j)
	}
	for i := 0; i < 61; i++ {
		j := taskB.NewJob(i, des.Time(int64(pB)*int64(i)))
		if i%3 != 0 {
			j.Stages[1].MarkFinished(j.Release.Add(des.FromMillis(float64(40 + 7*(i%11)))))
		} else if i%6 == 0 {
			// Discarded; the remaining third stays pending forever.
			j.Discard(j.Release.Add(des.FromMillis(25)))
		}
		jobs = append(jobs, j)
	}
	// Evaluate walks jobs in release order.
	byRelease := append([]*rt.Job(nil), jobs...)
	for i := 1; i < len(byRelease); i++ {
		for k := i; k > 0 && byRelease[k].Release < byRelease[k-1].Release; k-- {
			byRelease[k], byRelease[k-1] = byRelease[k-1], byRelease[k]
		}
	}

	warmUp, horizon := des.Second, des.FromSeconds(7)
	// SLO at 50 ms splits taskB's completions into hits and misses.
	const sloMS = 50
	want := EvaluateSLO(byRelease, warmUp, horizon, sloMS)
	if want.Dropped == 0 || want.QueueDepthMax == 0 || want.SLOHitRate == 0 {
		t.Fatalf("workload exercises no overload metrics: %+v", want)
	}

	inOrder := make([]int, len(byRelease))
	reversed := make([]int, len(byRelease))
	for i := range inOrder {
		inOrder[i] = i
		reversed[len(reversed)-1-i] = i
	}
	shuffled := append([]int(nil), inOrder...)
	rand.New(rand.NewSource(42)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})

	for name, perm := range map[string][]int{
		"release-order": inOrder, "reverse-order": reversed, "shuffled": shuffled,
	} {
		got := replay(byRelease, perm, warmUp, horizon, sloMS)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: streaming summary differs from Evaluate:\nwant %+v\ngot  %+v", name, want, got)
		}
	}
}

// TestCollectorWindowing pins the window-edge semantics Evaluate has: warm-up
// releases count toward FPS but not DMR, and a deadline at or past the
// horizon keeps a job out of the released count.
func TestCollectorWindowing(t *testing.T) {
	period := des.FromMillis(100)
	task := mkTask(t, 0, period)
	var jobs []*rt.Job
	for i := 0; i < 100; i++ {
		j := task.NewJob(i, des.Time(int64(period)*int64(i)))
		j.Stages[1].MarkFinished(j.Release.Add(des.FromMillis(10)))
		jobs = append(jobs, j)
	}
	warmUp, horizon := des.FromSeconds(2), des.FromSeconds(4)
	want := Evaluate(jobs, warmUp, horizon)
	perm := make([]int, len(jobs))
	for i := range perm {
		perm[i] = i
	}
	got := replay(jobs, perm, warmUp, horizon, 0)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("windowed summary differs:\nwant %+v\ngot  %+v", want, got)
	}
	if got.Released != 19 {
		t.Errorf("released = %d, want 19", got.Released)
	}
}

// TestCollectorResetReuses: a reset collector over a new window must behave
// like a fresh one and reuse its buffers.
func TestCollectorResetReuses(t *testing.T) {
	period := des.FromMillis(100)
	task := mkTask(t, 0, period)
	c := NewCollector(des.Second, des.FromSeconds(3))
	for i := 0; i < 25; i++ {
		j := task.NewJob(i, des.Time(int64(period)*int64(i)))
		c.JobReleased(j, j.Release)
		j.Stages[1].MarkFinished(j.Release.Add(des.FromMillis(10)))
		c.JobDone(j, j.FinishedAt)
	}
	first := c.Summary()

	c.Reset(des.Second, des.FromSeconds(3))
	for i := 0; i < 25; i++ {
		j := task.NewJob(i, des.Time(int64(period)*int64(i)))
		c.JobReleased(j, j.Release)
		j.Stages[1].MarkFinished(j.Release.Add(des.FromMillis(10)))
		c.JobDone(j, j.FinishedAt)
	}
	if second := c.Summary(); !reflect.DeepEqual(first, second) {
		t.Errorf("summary after Reset differs:\nfirst  %+v\nsecond %+v", first, second)
	}
}

// TestCollectorPanicsOnBadWindow mirrors Evaluate's contract.
func TestCollectorPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad window did not panic")
		}
	}()
	NewCollector(des.Second, des.Second)
}

package metrics

import (
	"math"
	"strings"
	"testing"

	"sgprs/internal/des"
	"sgprs/internal/dnn"
	"sgprs/internal/rt"
)

// mkJobs builds n jobs of one synthetic task released every period from
// offset 0, optionally finishing each after resp (zero means unfinished).
func mkJobs(t *testing.T, n int, period, resp des.Time) []*rt.Job {
	t.Helper()
	g := dnn.TinyCNN(dnn.DefaultCostModel())
	stages, err := dnn.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	task, err := rt.NewTask(0, "t", g, stages, period, period, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := task.SetWCETs([]des.Time{des.Millisecond, des.Millisecond}); err != nil {
		t.Fatal(err)
	}
	jobs := make([]*rt.Job, n)
	for i := range jobs {
		release := des.Time(int64(period) * int64(i))
		jobs[i] = task.NewJob(i, release)
		if resp > 0 {
			jobs[i].Stages[1].MarkFinished(release.Add(resp))
		}
	}
	return jobs
}

func TestEvaluateAllOnTime(t *testing.T) {
	period := des.FromMillis(100)
	jobs := mkJobs(t, 100, period, des.FromMillis(20)) // 10 s of releases
	sum := Evaluate(jobs, des.Second, des.FromSeconds(9))
	if sum.Missed != 0 || sum.DMR != 0 {
		t.Errorf("missed=%d dmr=%v, want zero", sum.Missed, sum.DMR)
	}
	// 80 completions in an 8-second window → 10 FPS.
	if math.Abs(sum.TotalFPS-10) > 0.2 {
		t.Errorf("fps = %v, want ~10", sum.TotalFPS)
	}
	if sum.RespMeanMS < 19.9 || sum.RespMeanMS > 20.1 {
		t.Errorf("mean response = %v, want 20ms", sum.RespMeanMS)
	}
	if sum.RespP99MS < 19.9 || sum.RespMaxMS < 19.9 {
		t.Errorf("percentiles wrong: %+v", sum)
	}
}

func TestEvaluateAllLate(t *testing.T) {
	period := des.FromMillis(100)
	jobs := mkJobs(t, 100, period, des.FromMillis(150)) // responses beyond deadline
	sum := Evaluate(jobs, des.Second, des.FromSeconds(9))
	if sum.Released == 0 {
		t.Fatal("nothing released")
	}
	if sum.Missed != sum.Released {
		t.Errorf("missed=%d of %d, want all", sum.Missed, sum.Released)
	}
	if sum.DMR != 1 {
		t.Errorf("dmr = %v, want 1", sum.DMR)
	}
	// Late completions still count toward FPS.
	if sum.Completed == 0 || sum.TotalFPS == 0 {
		t.Error("late completions must count toward total FPS")
	}
}

func TestEvaluateUnfinishedCountMissed(t *testing.T) {
	period := des.FromMillis(100)
	jobs := mkJobs(t, 100, period, 0) // never finish
	sum := Evaluate(jobs, des.Second, des.FromSeconds(9))
	if sum.Completed != 0 || sum.TotalFPS != 0 {
		t.Error("unfinished jobs counted as completed")
	}
	if sum.Missed != sum.Released || sum.DMR != 1 {
		t.Errorf("unfinished jobs must be missed: %+v", sum)
	}
}

func TestEvaluateWindowing(t *testing.T) {
	period := des.FromMillis(100)
	jobs := mkJobs(t, 100, period, des.FromMillis(10))
	sum := Evaluate(jobs, des.FromSeconds(2), des.FromSeconds(4))
	// Released window: release ≥ 2 s and deadline < 4 s → releases in
	// [2.0, 3.9): 19 jobs.
	if sum.Released != 19 {
		t.Errorf("released = %d, want 19", sum.Released)
	}
	// Completions within [2, 4): releases 2.0..3.9 finish at +10ms, plus
	// release 1.99s finishing at 2.0s boundary is inside too.
	if sum.Completed < 19 || sum.Completed > 21 {
		t.Errorf("completed = %d", sum.Completed)
	}
}

func TestEvaluatePanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad window did not panic")
		}
	}()
	Evaluate(nil, des.Second, des.Second)
}

func TestEvaluateEmpty(t *testing.T) {
	sum := Evaluate(nil, 0, des.Second)
	if sum.TotalFPS != 0 || sum.DMR != 0 || sum.Released != 0 {
		t.Errorf("empty evaluate = %+v", sum)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{TotalFPS: 750.4, DMR: 0.17, Released: 100, Completed: 90, Missed: 17}
	if got := s.String(); !strings.Contains(got, "fps=750.4") || !strings.Contains(got, "dmr=0.1700") {
		t.Errorf("summary string = %q", got)
	}
}

func TestPivotPoint(t *testing.T) {
	series := []Point{
		{Tasks: 4, Summary: Summary{Missed: 0}},
		{Tasks: 8, Summary: Summary{Missed: 0}},
		{Tasks: 12, Summary: Summary{Missed: 0}},
		{Tasks: 16, Summary: Summary{Missed: 5}},
		{Tasks: 20, Summary: Summary{Missed: 0}}, // noise after the pivot is ignored
	}
	if got := PivotPoint(series); got != 12 {
		t.Errorf("pivot = %d, want 12", got)
	}
	if got := PivotPoint(nil); got != 0 {
		t.Errorf("empty pivot = %d, want 0", got)
	}
	allMiss := []Point{{Tasks: 1, Summary: Summary{Missed: 1}}}
	if got := PivotPoint(allMiss); got != 0 {
		t.Errorf("all-missing pivot = %d, want 0", got)
	}
}

func TestSaturationAndFinalFPS(t *testing.T) {
	series := []Point{
		{Tasks: 10, Summary: Summary{TotalFPS: 300}},
		{Tasks: 20, Summary: Summary{TotalFPS: 600}},
		{Tasks: 30, Summary: Summary{TotalFPS: 550}},
	}
	if got := SaturationFPS(series); got != 600 {
		t.Errorf("saturation = %v", got)
	}
	if got := FinalFPS(series); got != 550 {
		t.Errorf("final = %v", got)
	}
	if FinalFPS(nil) != 0 || SaturationFPS(nil) != 0 {
		t.Error("empty series should yield 0")
	}
}

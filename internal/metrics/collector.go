package metrics

import (
	"fmt"
	"math"
	"sort"

	"sgprs/internal/des"
	"sgprs/internal/rt"
	"sgprs/internal/stats"
)

// Collector is the streaming counterpart of Evaluate: it consumes job
// lifecycle events as the simulation produces them — releases from the
// workload generator, completions from the schedulers via rt.JobWatcher —
// and retains only counters plus one response-time float per released job.
// The jobs themselves can be recycled the moment they are recorded, so a
// run's live memory is O(in-flight jobs) instead of O(all jobs ever
// released).
//
// Bit-identity with Evaluate is a hard invariant (the repository's
// sim-determinism rule: no order-sensitive float accumulation may change).
// Evaluate walks the generator's job list in release order, so its
// response-time mean sums floats in release order and its quantiles sort
// that same multiset. The collector pins the identical order by assigning
// every in-window released job a slot (Job.MetricsSlot) at release time and
// writing the response time into that slot at completion time: completions
// may arrive in any order, but Summary folds the slots back in release
// order. Unfilled slots (jobs that never finished) hold NaN and are skipped,
// exactly as Evaluate skips jobs with Done unset. TestCollectorMatchesEvaluate
// and the sim streaming-equivalence tests pin this.
//
// Missed-job accounting needs no deadline timers: an in-window released job
// has Deadline < horizon by construction, so at the horizon every such job
// is either completed (late or not — lateness is decided at completion) or
// missed. Summary therefore derives
//
//	Missed = lateCompleted + (released − completedReleased)
//
// which equals Evaluate's per-job Missed scan.
type Collector struct {
	warmUp, horizon des.Time

	released          int // in-window released jobs (deadline decidable)
	completed         int // finishes inside the window, released or not
	completedReleased int // in-window released jobs that finished
	lateCompleted     int // …of which after their deadline

	// resp holds one response-time slot per in-window released job, in
	// release order; NaN marks a job that has not (yet) finished.
	resp []float64
	// scratch and sorted are Summary's reused buffers: the release-order
	// compaction (mean summation order) and its sorted copy (quantiles).
	scratch []float64
	sorted  []float64
}

// NewCollector builds a collector for the measurement window [warmUp,
// horizon). Like Evaluate, a horizon at or before the warm-up panics.
func NewCollector(warmUp, horizon des.Time) *Collector {
	c := &Collector{}
	c.Reset(warmUp, horizon)
	return c
}

// Reset rearms the collector for a new run over [warmUp, horizon), retaining
// its buffers.
func (c *Collector) Reset(warmUp, horizon des.Time) {
	if horizon <= warmUp {
		panic(fmt.Sprintf("metrics: horizon %v not after warm-up %v", horizon, warmUp))
	}
	c.warmUp, c.horizon = warmUp, horizon
	c.released, c.completed, c.completedReleased, c.lateCompleted = 0, 0, 0, 0
	c.resp = c.resp[:0]
}

// JobReleased records a release. It must be called once per job, in release
// order (the workload generator's event order), before the job reaches a
// scheduler. In-window jobs get a response-time slot; jobs whose deadline
// window extends past the measurement interval are marked out-of-window.
func (c *Collector) JobReleased(j *rt.Job, now des.Time) {
	if j.Release < c.warmUp || j.Deadline >= c.horizon {
		j.MetricsSlot = -1
		return
	}
	j.MetricsSlot = len(c.resp)
	c.released++
	c.resp = append(c.resp, math.NaN())
}

// JobDone implements rt.JobWatcher: it records a completion. Completions
// inside the window count toward FPS whether or not the job was released
// inside it (the device was busy with it either way); response times are
// recorded for in-window released jobs only, into their release-order slot.
func (c *Collector) JobDone(j *rt.Job, now des.Time) {
	if now >= c.warmUp && now < c.horizon {
		c.completed++
	}
	if j.MetricsSlot >= 0 {
		c.completedReleased++
		if now > j.Deadline {
			c.lateCompleted++
		}
		c.resp[j.MetricsSlot] = j.ResponseTime().Milliseconds()
	}
}

// JobDiscarded implements rt.JobWatcher. A discarded in-window job simply
// never fills its slot: it is counted missed at Summary time, exactly like a
// job still unfinished at the horizon.
func (c *Collector) JobDiscarded(j *rt.Job, now des.Time) {}

// Summary folds the counters into the run summary. It may be called once the
// simulation has run to the horizon; calling it earlier summarises the
// prefix seen so far.
func (c *Collector) Summary() Summary {
	s := Summary{
		WarmUp:    c.warmUp,
		Horizon:   c.horizon,
		Released:  c.released,
		Completed: c.completed,
		Missed:    c.lateCompleted + (c.released - c.completedReleased),
	}
	window := (c.horizon - c.warmUp).Seconds()
	s.TotalFPS = float64(s.Completed) / window
	if s.Released > 0 {
		s.DMR = float64(s.Missed) / float64(s.Released)
	}
	resp := c.scratch[:0]
	for _, r := range c.resp {
		if !math.IsNaN(r) {
			resp = append(resp, r)
		}
	}
	c.scratch = resp
	if len(resp) > 0 {
		// Mean sums in release order — Evaluate's order. Quantiles read
		// one sorted copy; sorting yields the same order statistics as
		// Quantile's internal per-call sort, so the values are
		// bit-identical to Evaluate's (Quantile delegates to
		// QuantileSorted).
		s.RespMeanMS = stats.Mean(resp)
		sorted := append(c.sorted[:0], resp...)
		sort.Float64s(sorted)
		c.sorted = sorted
		s.RespP50MS = stats.QuantileSorted(sorted, 0.50)
		s.RespP99MS = stats.QuantileSorted(sorted, 0.99)
		s.RespMaxMS = stats.QuantileSorted(sorted, 1.0)
	}
	return s
}

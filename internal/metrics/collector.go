package metrics

import (
	"fmt"
	"math"

	"sgprs/internal/des"
	"sgprs/internal/rt"
)

// Collector is the streaming counterpart of Evaluate: it consumes job
// lifecycle events as the simulation produces them — releases from the
// workload generator, completions from the schedulers via rt.JobWatcher —
// and retains only counters, one response-time float per released job, and
// one backlog interval per job. The jobs themselves can be recycled the
// moment they are recorded, so a run's live memory is O(in-flight jobs)
// instead of O(all jobs ever released).
//
// Bit-identity with EvaluateSLO is a hard invariant (the repository's
// sim-determinism rule: no order-sensitive float accumulation may change).
// Evaluate walks the generator's job list in release order, so its
// response-time mean sums floats in release order and its quantiles sort
// that same multiset. The collector pins the identical order by assigning
// every in-window released job a slot (Job.MetricsSlot) at release time and
// writing the response time into that slot at completion time: completions
// may arrive in any order, but Summary folds the slots back in release
// order. Unfilled slots (jobs that never finished) hold NaN and are skipped,
// exactly as Evaluate skips jobs with Done unset. The admission-backlog
// profile is likewise order-independent: every released job gets an
// interval record (Job.BacklogSlot) whose endpoints match what EvaluateSLO
// reads off retained jobs, and queueDepth derives the depth statistics from
// the interval multiset alone. TestCollectorMatchesEvaluate and the sim
// streaming-equivalence tests pin all of this.
//
// Missed-job accounting needs no deadline timers: an in-window released job
// has Deadline < horizon by construction, so at the horizon every such job
// is either completed (late or not — lateness is decided at completion) or
// missed. Summary therefore derives
//
//	Missed = lateCompleted + (released − completedReleased)
//
// which equals Evaluate's per-job Missed scan.
type Collector struct {
	warmUp, horizon des.Time
	sloMS           float64

	released          int // in-window released jobs (deadline decidable)
	completed         int // finishes inside the window, released or not
	completedReleased int // in-window released jobs that finished
	lateCompleted     int // …of which after their deadline
	dropped           int // in-window released jobs discarded

	// resp holds one response-time slot per in-window released job, in
	// release order; NaN marks a job that has not (yet) finished.
	resp []float64
	// starts and ends hold one backlog interval per released job (all of
	// them, unlike resp), in release order: the release instant paired
	// with the completion/discard instant, des.Never while pending.
	starts, ends []des.Time
	// scratch and sorted are Summary's reused buffers: the release-order
	// compaction (mean summation order) and its sorted copy (quantiles).
	scratch []float64
	sorted  []float64
	// depthStarts and depthEnds are queueDepth's reused sort scratch —
	// the live interval slices cannot be sorted in place without breaking
	// the BacklogSlot indexing.
	depthStarts, depthEnds []des.Time

	// Degraded-window attribution (fault injection, DESIGN.md §13): the
	// injector toggles degraded at each SM-degradation window edge, and
	// every in-window released job records the flag in degFlags — parallel
	// to resp — so completions can be judged against the degraded subset.
	degraded             bool
	degFlags             []bool
	degReleased          int
	degCompletedReleased int
	degLateCompleted     int

	// Fleet-degraded attribution (cluster layer, DESIGN.md §15): the
	// dispatcher raises fleetDegraded while at least one device is down,
	// and releases record the flag in fleetFlags — parallel to resp — so
	// completions can be judged against the degraded-fleet subset.
	fleetDegraded        bool
	fleetFlags           []bool
	fltReleased          int
	fltCompletedReleased int
	fltLateCompleted     int

	// Fast-forward measurement-cycle recording (ff.go): while recording,
	// every lifecycle call appends an op so Replay can re-apply the cycle's
	// metric writes over extrapolated cycles.
	recording         bool
	recOps            []ffOp
	recStartsBase     int
	recRespBase       int
	recPerCycleStarts int
	recPerCycleResp   int
}

// NewCollector builds a collector for the measurement window [warmUp,
// horizon). Like Evaluate, a horizon at or before the warm-up panics.
func NewCollector(warmUp, horizon des.Time) *Collector {
	c := &Collector{}
	c.Reset(warmUp, horizon)
	return c
}

// Reset rearms the collector for a new run over [warmUp, horizon), retaining
// its buffers. The SLO is cleared; call SetSLO after Reset to configure one.
func (c *Collector) Reset(warmUp, horizon des.Time) {
	if horizon <= warmUp {
		panic(fmt.Sprintf("metrics: horizon %v not after warm-up %v", horizon, warmUp))
	}
	c.warmUp, c.horizon = warmUp, horizon
	c.sloMS = 0
	c.released, c.completed, c.completedReleased, c.lateCompleted, c.dropped = 0, 0, 0, 0, 0
	c.resp = c.resp[:0]
	c.starts = c.starts[:0]
	c.ends = c.ends[:0]
	c.recording = false
	c.recOps = c.recOps[:0]
	c.degraded = false
	c.degFlags = c.degFlags[:0]
	c.degReleased, c.degCompletedReleased, c.degLateCompleted = 0, 0, 0
	c.fleetDegraded = false
	c.fleetFlags = c.fleetFlags[:0]
	c.fltReleased, c.fltCompletedReleased, c.fltLateCompleted = 0, 0, 0
}

// SetDegraded flips the degraded-capacity flag; the fault injector calls it
// at each SM-degradation window edge. Releases while the flag is on are
// attributed to the degraded subset of the deadline accounting.
func (c *Collector) SetDegraded(on bool) { c.degraded = on }

// SetFleetDegraded flips the fleet-degraded flag; the cluster dispatcher
// calls it when the first device goes down and when the last one comes back.
// Releases while the flag is on are attributed to the degraded-fleet subset
// of the deadline accounting.
func (c *Collector) SetFleetDegraded(on bool) { c.fleetDegraded = on }

// SetSLO configures the response-time objective, milliseconds (0 = none),
// matching EvaluateSLO's parameter. Call after Reset, before the run.
func (c *Collector) SetSLO(ms float64) { c.sloMS = ms }

// JobReleased records a release. It must be called once per job, in release
// order (the workload generator's event order), before the job reaches a
// scheduler. Every job gets a backlog-interval record; in-window jobs
// additionally get a response-time slot, and jobs whose deadline window
// extends past the measurement interval are marked out-of-window.
func (c *Collector) JobReleased(j *rt.Job, now des.Time) {
	j.BacklogSlot = len(c.starts)
	c.starts = append(c.starts, j.Release)
	c.ends = append(c.ends, des.Never)
	if j.Release < c.warmUp || j.Deadline >= c.horizon {
		j.MetricsSlot = -1
	} else {
		j.MetricsSlot = len(c.resp)
		c.released++
		c.resp = append(c.resp, math.NaN())
		c.degFlags = append(c.degFlags, c.degraded)
		if c.degraded {
			c.degReleased++
		}
		c.fleetFlags = append(c.fleetFlags, c.fleetDegraded)
		if c.fleetDegraded {
			c.fltReleased++
		}
	}
	if c.recording {
		c.recordRelease(j)
	}
}

// JobDone implements rt.JobWatcher: it records a completion. Completions
// inside the window count toward FPS whether or not the job was released
// inside it (the device was busy with it either way); response times are
// recorded for in-window released jobs only, into their release-order slot.
func (c *Collector) JobDone(j *rt.Job, now des.Time) {
	if j.BacklogSlot >= 0 {
		c.ends[j.BacklogSlot] = now
	}
	inWin := now >= c.warmUp && now < c.horizon
	if inWin {
		c.completed++
	}
	if j.MetricsSlot >= 0 {
		c.completedReleased++
		if now > j.Deadline {
			c.lateCompleted++
		}
		c.resp[j.MetricsSlot] = j.ResponseTime().Milliseconds()
		// Slots appended by fast-forward Replay have no degFlags entry:
		// fault-injected runs are FF-ineligible, so a replayed slot is
		// never degraded and treating it as false is exact.
		if j.MetricsSlot < len(c.degFlags) && c.degFlags[j.MetricsSlot] {
			c.degCompletedReleased++
			if now > j.Deadline {
				c.degLateCompleted++
			}
		}
		if j.MetricsSlot < len(c.fleetFlags) && c.fleetFlags[j.MetricsSlot] {
			c.fltCompletedReleased++
			if now > j.Deadline {
				c.fltLateCompleted++
			}
		}
	}
	if c.recording {
		c.recordDone(j, now, inWin)
	}
}

// JobDiscarded implements rt.JobWatcher. A discarded job leaves the
// backlog at the discard instant and counts as dropped when it was released
// in-window; its response slot stays unfilled, so it is counted missed at
// Summary time, exactly like a job still unfinished at the horizon.
func (c *Collector) JobDiscarded(j *rt.Job, now des.Time) {
	if j.BacklogSlot >= 0 {
		c.ends[j.BacklogSlot] = now
	}
	if j.MetricsSlot >= 0 {
		c.dropped++
	}
	if c.recording {
		c.recordDiscard(j, now)
	}
}

// Summary folds the counters into the run summary. It may be called once the
// simulation has run to the horizon; calling it earlier summarises the
// prefix seen so far.
func (c *Collector) Summary() Summary {
	s := Summary{
		WarmUp:    c.warmUp,
		Horizon:   c.horizon,
		Released:  c.released,
		Completed: c.completed,
		Missed:    c.lateCompleted + (c.released - c.completedReleased),
		Dropped:   c.dropped,
	}
	// Degraded-subset deadline accounting, derived exactly like Missed:
	// a degraded release either completed (lateness decided then) or not.
	s.Faults.DegradedReleased = c.degReleased
	s.Faults.DegradedMissed = c.degLateCompleted + (c.degReleased - c.degCompletedReleased)
	if c.degReleased > 0 {
		s.Faults.DegradedDMR = float64(s.Faults.DegradedMissed) / float64(c.degReleased)
	}
	// Fleet-degraded subset, derived identically.
	s.Fleet.FleetDegradedReleased = c.fltReleased
	s.Fleet.FleetDegradedMissed = c.fltLateCompleted + (c.fltReleased - c.fltCompletedReleased)
	if c.fltReleased > 0 {
		s.Fleet.FleetDegradedDMR = float64(s.Fleet.FleetDegradedMissed) / float64(c.fltReleased)
	}
	// Compact the slots in release order — Evaluate's iteration order —
	// and count SLO hits over the identical float comparisons.
	resp := c.scratch[:0]
	sloHits := 0
	for _, r := range c.resp {
		if !math.IsNaN(r) {
			resp = append(resp, r)
			if c.sloMS > 0 && r <= c.sloMS {
				sloHits++
			}
		}
	}
	c.scratch = resp
	c.depthStarts = append(c.depthStarts[:0], c.starts...)
	c.depthEnds = append(c.depthEnds[:0], c.ends...)
	c.sorted = s.finish(resp, c.sorted[:0], c.depthStarts, c.depthEnds, c.sloMS, sloHits)
	return s
}

package sched

import (
	"testing"
	"testing/quick"

	"sgprs/internal/des"
	"sgprs/internal/dnn"
	"sgprs/internal/rt"
)

// mkStage builds a standalone stage job with the given deadline and level.
func mkStage(t *testing.T, taskID, jobIdx, stageIdx int, deadline des.Time, level rt.Level) *rt.StageJob {
	t.Helper()
	g := dnn.TinyCNN(dnn.DefaultCostModel())
	stages, err := dnn.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	task, err := rt.NewTask(taskID, "t", g, stages, des.FromMillis(100), des.FromMillis(100), 0)
	if err != nil {
		t.Fatal(err)
	}
	wcets := make([]des.Time, 4)
	for i := range wcets {
		wcets[i] = des.Millisecond
	}
	if err := task.SetWCETs(wcets); err != nil {
		t.Fatal(err)
	}
	job := task.NewJob(jobIdx, 0)
	st := job.Stages[stageIdx]
	st.Deadline = deadline
	st.Level = level
	return st
}

func TestEDFQueueOrdersByDeadline(t *testing.T) {
	var q EDFQueue
	deadlines := []des.Time{30, 10, 20, 5, 25}
	for i, d := range deadlines {
		q.Push(mkStage(t, i, 0, 0, d*des.Millisecond, rt.LevelLow))
	}
	if q.Len() != 5 {
		t.Fatalf("len = %d", q.Len())
	}
	prev := des.Time(-1)
	for q.Len() > 0 {
		s := q.Pop()
		if s.Deadline < prev {
			t.Fatalf("popped %v after %v", s.Deadline, prev)
		}
		prev = s.Deadline
	}
	if q.Pop() != nil || q.Peek() != nil {
		t.Error("empty queue should return nil")
	}
}

func TestEDFQueueDeterministicTieBreak(t *testing.T) {
	// Same deadline: order by task ID, then job index, then stage index.
	var q EDFQueue
	d := des.FromMillis(10)
	s3 := mkStage(t, 3, 0, 0, d, rt.LevelLow)
	s1a := mkStage(t, 1, 1, 0, d, rt.LevelLow)
	s1b := mkStage(t, 1, 0, 2, d, rt.LevelLow)
	s1c := mkStage(t, 1, 0, 1, d, rt.LevelLow)
	q.Push(s3)
	q.Push(s1a)
	q.Push(s1b)
	q.Push(s1c)
	want := []*rt.StageJob{s1c, s1b, s1a, s3} // job 0 stage1, job 0 stage2, job 1, task 3
	for i, w := range want {
		got := q.Pop()
		if got != w {
			t.Fatalf("pop %d = %v, want %v", i, got, w)
		}
	}
}

func TestEDFQueuePeek(t *testing.T) {
	var q EDFQueue
	a := mkStage(t, 0, 0, 0, des.FromMillis(20), rt.LevelLow)
	b := mkStage(t, 1, 0, 0, des.FromMillis(10), rt.LevelLow)
	q.Push(a)
	q.Push(b)
	if q.Peek() != b {
		t.Error("peek should return earliest deadline")
	}
	if q.Len() != 2 {
		t.Error("peek must not remove")
	}
}

func TestMultiLevelQueuePriorityOrder(t *testing.T) {
	var m MultiLevelQueue
	lo := mkStage(t, 0, 0, 0, des.FromMillis(1), rt.LevelLow) // earliest deadline overall
	md := mkStage(t, 1, 0, 0, des.FromMillis(50), rt.LevelMedium)
	hi := mkStage(t, 2, 0, 3, des.FromMillis(99), rt.LevelHigh)
	m.Push(lo)
	m.Push(md)
	m.Push(hi)
	if m.Len() != 3 || m.LenLevel(rt.LevelHigh) != 1 {
		t.Fatalf("len=%d high=%d", m.Len(), m.LenLevel(rt.LevelHigh))
	}
	// Level beats deadline: high first despite the latest deadline.
	if got := m.Pop(); got != hi {
		t.Fatalf("first pop = %v, want high", got)
	}
	if got := m.Pop(); got != md {
		t.Fatalf("second pop = %v, want medium", got)
	}
	if got := m.Pop(); got != lo {
		t.Fatalf("third pop = %v, want low", got)
	}
	if m.Pop() != nil {
		t.Error("empty multilevel pop should be nil")
	}
}

func TestMultiLevelQueuePopAtMost(t *testing.T) {
	var m MultiLevelQueue
	hi := mkStage(t, 0, 0, 3, des.FromMillis(5), rt.LevelHigh)
	lo := mkStage(t, 1, 0, 0, des.FromMillis(5), rt.LevelLow)
	m.Push(hi)
	m.Push(lo)
	// A pop capped below high must skip the high stage.
	if got := m.PopAtMost(rt.LevelMedium, rt.LevelLow); got != lo {
		t.Fatalf("PopAtMost(medium,low) = %v, want low stage", got)
	}
	// A pop floored above low must not return low stages.
	m.Push(lo)
	if got := m.PopAtMost(rt.LevelHigh, rt.LevelMedium); got != hi {
		t.Fatalf("PopAtMost(high,medium) = %v, want high stage", got)
	}
	if got := m.PopAtMost(rt.LevelHigh, rt.LevelMedium); got != nil {
		t.Fatalf("PopAtMost should not reach the low level, got %v", got)
	}
}

func TestMultiLevelQueuePeek(t *testing.T) {
	var m MultiLevelQueue
	if m.Peek() != nil {
		t.Error("empty peek should be nil")
	}
	lo := mkStage(t, 0, 0, 0, des.FromMillis(1), rt.LevelLow)
	hi := mkStage(t, 1, 0, 3, des.FromMillis(90), rt.LevelHigh)
	m.Push(lo)
	m.Push(hi)
	if m.Peek() != hi {
		t.Error("peek should see highest level first")
	}
	if m.Len() != 2 {
		t.Error("peek must not remove")
	}
}

// Property: the EDF queue is a total order — popping returns deadlines in
// non-decreasing order for arbitrary insertions.
func TestEDFOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 40 {
			raw = raw[:40]
		}
		var q EDFQueue
		for i, r := range raw {
			q.Push(mkStage(t, i, 0, 0, des.Time(r)*des.Microsecond, rt.LevelLow))
		}
		prev := des.Time(-1)
		for q.Len() > 0 {
			s := q.Pop()
			if s.Deadline < prev {
				return false
			}
			prev = s.Deadline
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

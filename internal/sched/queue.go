package sched

import (
	"container/heap"

	"sgprs/internal/rt"
)

// EDFQueue is a deterministic earliest-deadline-first priority queue of stage
// jobs. Ties on the absolute deadline break by (task ID, job index, stage
// index) so simulations replay identically.
type EDFQueue struct {
	h edfHeap
}

type edfHeap []*rt.StageJob

func (h edfHeap) Len() int { return len(h) }

func (h edfHeap) Less(i, j int) bool { return edfBefore(h[i], h[j]) }

func edfBefore(a, b *rt.StageJob) bool {
	if a.Deadline != b.Deadline {
		return a.Deadline < b.Deadline
	}
	if a.Job.Task.ID != b.Job.Task.ID {
		return a.Job.Task.ID < b.Job.Task.ID
	}
	if a.Job.Index != b.Job.Index {
		return a.Job.Index < b.Job.Index
	}
	return a.Index < b.Index
}

func (h edfHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *edfHeap) Push(x any)   { *h = append(*h, x.(*rt.StageJob)) }
func (h *edfHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}

// Len reports the number of queued stages.
func (q *EDFQueue) Len() int { return len(q.h) }

// Push enqueues a stage job.
func (q *EDFQueue) Push(s *rt.StageJob) { heap.Push(&q.h, s) }

// Pop removes and returns the earliest-deadline stage, or nil when empty.
func (q *EDFQueue) Pop() *rt.StageJob {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*rt.StageJob)
}

// Peek returns the earliest-deadline stage without removing it, or nil.
func (q *EDFQueue) Peek() *rt.StageJob {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// MultiLevelQueue is the paper's three-level stage queue (Section IV-B3):
// high, medium, and low logical priorities, EDF order within each level.
type MultiLevelQueue struct {
	levels [3]EDFQueue
}

// Len reports the total queued stages across levels.
func (m *MultiLevelQueue) Len() int {
	return m.levels[0].Len() + m.levels[1].Len() + m.levels[2].Len()
}

// LenLevel reports the queued stages at one level.
func (m *MultiLevelQueue) LenLevel(l rt.Level) int { return m.levels[l].Len() }

// Push enqueues the stage at its current level.
func (m *MultiLevelQueue) Push(s *rt.StageJob) { m.levels[s.Level].Push(s) }

// Pop removes the most urgent stage: highest non-empty level, EDF within.
func (m *MultiLevelQueue) Pop() *rt.StageJob {
	for l := rt.LevelHigh; l >= rt.LevelLow; l-- {
		if s := m.levels[l].Pop(); s != nil {
			return s
		}
	}
	return nil
}

// PopAtMost removes the most urgent stage whose level does not exceed max —
// used to keep high-priority hardware streams from draining low work.
func (m *MultiLevelQueue) PopAtMost(max, min rt.Level) *rt.StageJob {
	for l := max; l >= min; l-- {
		if s := m.levels[l].Pop(); s != nil {
			return s
		}
	}
	return nil
}

// Peek returns the most urgent stage without removing it, or nil.
func (m *MultiLevelQueue) Peek() *rt.StageJob {
	for l := rt.LevelHigh; l >= rt.LevelLow; l-- {
		if s := m.levels[l].Peek(); s != nil {
			return s
		}
	}
	return nil
}

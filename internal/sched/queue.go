package sched

import (
	"slices"

	"sgprs/internal/rt"
)

// EDFQueue is a deterministic earliest-deadline-first priority queue of stage
// jobs. Ties on the absolute deadline break by (task ID, job index, stage
// index) so simulations replay identically.
//
// The heap is concrete — no container/heap interface dispatch — mirroring the
// des.Engine event queue: stage push/pop is on the per-dispatch hot path, and
// the ordering key is total (no two distinct stage jobs compare equal), so
// the pop sequence is a pure function of the pushes whatever the heap's
// internal layout.
type EDFQueue struct {
	h []*rt.StageJob
}

func edfBefore(a, b *rt.StageJob) bool {
	if a.Deadline != b.Deadline {
		return a.Deadline < b.Deadline
	}
	if a.Job.Task.ID != b.Job.Task.ID {
		return a.Job.Task.ID < b.Job.Task.ID
	}
	if a.Job.Index != b.Job.Index {
		return a.Job.Index < b.Job.Index
	}
	return a.Index < b.Index
}

// Len reports the number of queued stages.
func (q *EDFQueue) Len() int { return len(q.h) }

// Push enqueues a stage job.
func (q *EDFQueue) Push(s *rt.StageJob) {
	q.h = append(q.h, s)
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !edfBefore(q.h[i], q.h[parent]) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// Pop removes and returns the earliest-deadline stage, or nil when empty.
func (q *EDFQueue) Pop() *rt.StageJob {
	n := len(q.h)
	if n == 0 {
		return nil
	}
	s := q.h[0]
	n--
	q.h[0] = q.h[n]
	q.h[n] = nil
	q.h = q.h[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && edfBefore(q.h[right], q.h[left]) {
			least = right
		}
		if !edfBefore(q.h[least], q.h[i]) {
			break
		}
		q.h[i], q.h[least] = q.h[least], q.h[i]
		i = least
	}
	return s
}

// Peek returns the earliest-deadline stage without removing it, or nil.
func (q *EDFQueue) Peek() *rt.StageJob {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// MultiLevelQueue is the paper's three-level stage queue (Section IV-B3):
// high, medium, and low logical priorities, EDF order within each level.
type MultiLevelQueue struct {
	levels [3]EDFQueue
}

// Len reports the total queued stages across levels.
func (m *MultiLevelQueue) Len() int {
	return m.levels[0].Len() + m.levels[1].Len() + m.levels[2].Len()
}

// LenLevel reports the queued stages at one level.
func (m *MultiLevelQueue) LenLevel(l rt.Level) int { return m.levels[l].Len() }

// Push enqueues the stage at its current level.
func (m *MultiLevelQueue) Push(s *rt.StageJob) { m.levels[s.Level].Push(s) }

// Pop removes the most urgent stage: highest non-empty level, EDF within.
func (m *MultiLevelQueue) Pop() *rt.StageJob {
	for l := rt.LevelHigh; l >= rt.LevelLow; l-- {
		if s := m.levels[l].Pop(); s != nil {
			return s
		}
	}
	return nil
}

// PopAtMost removes the most urgent stage whose level does not exceed
// maxLevel — used to keep high-priority hardware streams from draining low
// work.
func (m *MultiLevelQueue) PopAtMost(maxLevel, minLevel rt.Level) *rt.StageJob {
	for l := maxLevel; l >= minLevel; l-- {
		if s := m.levels[l].Pop(); s != nil {
			return s
		}
	}
	return nil
}

// Snapshot appends the queue's stages to dst in pop order (EDF, ties by the
// total key). The heap's internal layout is a function of its push/pop
// history, which never influences pop order — the key is total — so the
// fast-forward fingerprint must not depend on it either: two queues with
// equal contents but different layouts behave identically and must encode
// identically. The queue is unchanged.
func (q *EDFQueue) Snapshot(dst []*rt.StageJob) []*rt.StageJob {
	n := len(dst)
	dst = append(dst, q.h...)
	slices.SortFunc(dst[n:], func(a, b *rt.StageJob) int {
		if edfBefore(a, b) {
			return -1
		}
		return 1
	})
	return dst
}

// Snapshot appends the queue's stages level by level (high to low), each
// level in pop order; see EDFQueue.Snapshot.
func (m *MultiLevelQueue) Snapshot(dst []*rt.StageJob) []*rt.StageJob {
	for l := rt.LevelHigh; l >= rt.LevelLow; l-- {
		dst = m.levels[l].Snapshot(dst)
	}
	return dst
}

// Peek returns the most urgent stage without removing it, or nil.
func (m *MultiLevelQueue) Peek() *rt.StageJob {
	for l := rt.LevelHigh; l >= rt.LevelLow; l-- {
		if s := m.levels[l].Peek(); s != nil {
			return s
		}
	}
	return nil
}

// Package sched defines the scheduler abstraction shared by SGPRS and the
// baselines, plus the queue primitives they build on: deterministic EDF
// heaps and the paper's three-level priority queue.
package sched

import (
	"sgprs/internal/des"
	"sgprs/internal/gpu"
	"sgprs/internal/rt"
)

// Scheduler is a GPU inference scheduler. The experiment runner attaches it
// to a device and task set, then feeds it released jobs; everything else —
// stage chaining, context/stream selection, queueing — is the scheduler's.
type Scheduler interface {
	// Name identifies the scheduler in reports ("sgprs-1.5x", "naive").
	Name() string
	// Attach binds the scheduler to the simulation before any release.
	// The scheduler creates its contexts and streams here; tasks must be
	// profiled (WCETs set) before Attach.
	Attach(eng *des.Engine, dev *gpu.Device, tasks []*rt.Task) error
	// OnRelease hands the scheduler a newly released job.
	OnRelease(job *rt.Job, now des.Time)
}

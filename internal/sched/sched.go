// Package sched defines the scheduler abstraction shared by SGPRS and the
// baselines, plus the queue primitives they build on: deterministic EDF
// heaps and the paper's three-level priority queue.
package sched

import (
	"sgprs/internal/des"
	"sgprs/internal/gpu"
	"sgprs/internal/rt"
)

// Scheduler is a GPU inference scheduler. The experiment runner attaches it
// to a device and task set, then feeds it released jobs; everything else —
// stage chaining, context/stream selection, queueing — is the scheduler's.
type Scheduler interface {
	// Name identifies the scheduler in reports ("sgprs-1.5x", "naive").
	Name() string
	// Attach binds the scheduler to the simulation before any release.
	// The scheduler creates its contexts and streams here; tasks must be
	// profiled (WCETs set) before Attach.
	Attach(eng *des.Engine, dev *gpu.Device, tasks []*rt.Task) error
	// OnRelease hands the scheduler a newly released job.
	OnRelease(job *rt.Job, now des.Time)
}

// RecoveryAction is the fault injector's resolved decision for one transient
// kernel fault — the task's rt.RecoveryPolicy after applying run-level
// defaults and the retry budget (an exhausted budget downgrades retry to
// skip). See DESIGN.md §13.
type RecoveryAction int

const (
	// ActionRetry re-executes the faulted stage from scratch after the
	// configured backoff.
	ActionRetry RecoveryAction = iota
	// ActionSkipJob discards the faulted frame.
	ActionSkipJob
	// ActionKillChain discards the faulted frame and the task's held
	// backlog.
	ActionKillChain
)

// FaultHandler is the scheduler half of transient-fault recovery. The fault
// injector aborts the kernel on the device (gpu.Device.Abort — the kernel is
// already detached, bookkeeping unwound, rates recomputed) and then hands the
// scheduler the orphaned kernel to reconcile its own state: queue occupancy,
// in-flight windows, job lifecycle, and the freed stream. stream is the
// stream the kernel was running on before the abort detached it. Schedulers
// that support fault injection implement this; the injector refuses to run
// against one that does not.
type FaultHandler interface {
	RecoverKernel(k *gpu.Kernel, stream *gpu.Stream, action RecoveryAction, backoff des.Time, now des.Time)
}

// Evictor is the device-loss drain half of fleet failover (DESIGN.md §15):
// the whole device disappeared, so the scheduler must abandon everything —
// abort running kernels, cancel launch-window kernels, flush stream queues,
// drain its own ready queues, and Discard every live job — leaving itself
// quiescent (able to accept releases again after a restart). Schedulers that
// can serve as fleet members implement this; the cluster dispatcher refuses
// devices whose scheduler does not.
type Evictor interface {
	EvictAll(now des.Time)
}

package exp

import (
	"context"

	"sgprs/internal/metrics"
	"sgprs/internal/runner"
	"sgprs/internal/sim"
)

// ResultSet is an executed experiment: the full per-job outcomes in
// submission order plus the folding metadata (expanded labels, task axis)
// needed to read them back as figure series.
type ResultSet struct {
	Spec *Spec
	// Order lists the expanded variant labels in submission order.
	Order []string
	// TaskCounts is the shared task axis.
	TaskCounts []int
	// Results holds one entry per compiled job, in job order, each with
	// the full sim.Result (metrics summary, utilization, energy) or an
	// attributed error.
	Results []runner.JobResult
}

// Run compiles and executes a spec on the runner's worker pool. Results
// stream through opt.Progress as jobs finish; a cancelled ctx stops
// dispatching new jobs, drains in-flight ones, and attributes the skipped
// jobs' errors to the context. Like the sweep drivers, Run returns the
// completed results alongside any aggregate error (runner.Errors), never
// instead of them; only a compile error yields a nil ResultSet.
func Run(ctx context.Context, spec *Spec, opt runner.Options) (*ResultSet, error) {
	c, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	results := runner.Run(ctx, c.Jobs, opt)
	rs := &ResultSet{Spec: spec, Order: c.Order, TaskCounts: c.TaskCounts, Results: results}
	return rs, rs.Err()
}

// Err collects the failed jobs into a runner.Errors value, or nil.
func (r *ResultSet) Err() error { return runner.Err(r.Results) }

// Series folds the completed results into per-label figure series keyed by
// expanded variant label. Every label in Order has an entry; failed jobs
// leave gaps rather than zero points.
func (r *ResultSet) Series() map[string][]metrics.Point {
	series := make(map[string][]metrics.Point, len(r.Order))
	for _, label := range r.Order {
		series[label] = []metrics.Point{}
	}
	for _, res := range r.Results {
		if res.Err != nil {
			continue
		}
		series[res.Job.Variant] = append(series[res.Job.Variant], metrics.Point{
			Tasks:       res.Job.Tasks,
			Summary:     res.Result.Summary,
			FastForward: res.Result.FastForward,
		})
	}
	return series
}

// Series builds the spec a SweepSeries call describes: one variant swept
// across the task counts.
func Series(base sim.RunConfig, taskCounts []int) *Spec {
	return &Spec{
		Name:     "series",
		Variants: []sim.RunConfig{base},
		Axes:     []Axis{Tasks(taskCounts...)},
	}
}

// Grid builds the spec a SweepGrid call describes: several variants swept
// over the same task counts as one flat fan-out.
func Grid(bases []sim.RunConfig, taskCounts []int) *Spec {
	return &Spec{
		Name:     "grid",
		Variants: append([]sim.RunConfig(nil), bases...),
		Axes:     []Axis{Tasks(taskCounts...)},
	}
}

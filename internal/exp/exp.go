// Package exp is the declarative experiment layer: an experiment is data —
// a named Spec of scheduler variants crossed with typed sweep axes — not a
// hand-written driver. Compile expands a Spec into the runner's job list
// (validating every grid cell up front, so a bad axis value fails at compile
// time with its variant and axis named, never deep inside a pool worker),
// Run executes it with context cancellation and streaming per-job results,
// and a process-wide registry (Register/Lookup/List) names the paper's
// scenarios and the built-in studies so new experiments are registry entries
// instead of new code paths.
//
// Determinism is inherited from the runner: a compiled job's seed is fixed
// at compile time (SeedFixed keeps each variant's configured seed, matching
// the sequential drivers bit-for-bit; SeedDerived decorrelates per grid
// cell via runner.DeriveSeed), so results are bit-identical across worker
// counts. The legacy facade entry points (RunScenario, SweepSeries,
// SweepGrid) are thin wrappers over Specs; equivalence tests pin their
// output to the sequential reference drivers in package sim.
package exp

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"sgprs/internal/cluster"
	"sgprs/internal/fault"
	"sgprs/internal/runner"
	"sgprs/internal/sim"
	"sgprs/internal/speedup"
	"sgprs/internal/workload"
)

// AxisKind identifies a sweep dimension of the run configuration.
type AxisKind int

// Axis kinds. AxisTasks is the classic figure abscissa (task count); the
// others sweep load shape (over-subscription, frame rate, release jitter,
// execution-demand variation, arrival intensity, the arrival process
// itself) or measurement length (horizon).
const (
	AxisTasks AxisKind = iota
	AxisOverSub
	AxisFPS
	AxisJitterMS
	AxisWorkVar
	AxisHorizonSec
	AxisRate
	AxisArrival
	AxisFaultRate
	AxisDegradation
	AxisDevices
	AxisPlacement
)

// Kinds lists every axis kind in declaration order — the facade's
// AxisKinds and the CLIs' -list output build on it.
func Kinds() []AxisKind {
	return []AxisKind{
		AxisTasks, AxisOverSub, AxisFPS, AxisJitterMS,
		AxisWorkVar, AxisHorizonSec, AxisRate, AxisArrival,
		AxisFaultRate, AxisDegradation, AxisDevices, AxisPlacement,
	}
}

// String names the axis the way validation errors report it.
func (k AxisKind) String() string {
	switch k {
	case AxisTasks:
		return "task-count"
	case AxisOverSub:
		return "over-subscription"
	case AxisFPS:
		return "fps"
	case AxisJitterMS:
		return "release-jitter-ms"
	case AxisWorkVar:
		return "work-variation"
	case AxisHorizonSec:
		return "horizon-sec"
	case AxisRate:
		return "arrival-rate"
	case AxisArrival:
		return "arrival"
	case AxisFaultRate:
		return "fault-rate"
	case AxisDegradation:
		return "degradation-sms"
	case AxisDevices:
		return "devices"
	case AxisPlacement:
		return "placement"
	default:
		return fmt.Sprintf("axis(%d)", int(k))
	}
}

// key is the short form used in expanded variant labels ("sgprs@os=1.5")
// and -list summaries.
func (k AxisKind) key() string {
	switch k {
	case AxisTasks:
		return "n"
	case AxisOverSub:
		return "os"
	case AxisFPS:
		return "fps"
	case AxisJitterMS:
		return "jit"
	case AxisWorkVar:
		return "var"
	case AxisHorizonSec:
		return "h"
	case AxisRate:
		return "rate"
	case AxisArrival:
		return "arr"
	case AxisFaultRate:
		return "fr"
	case AxisDegradation:
		return "deg"
	case AxisDevices:
		return "dev"
	case AxisPlacement:
		return "pl"
	default:
		return k.String()
	}
}

// Axis is one typed sweep dimension: a kind plus its value list. Use the
// constructors (Tasks, OverSub, FPS, JitterMS, WorkVar, HorizonSec, Rate,
// Arrivals) — they document the units. Task counts are stored as float64
// like every other axis but must be integral; Compile rejects fractional
// values. The arrival axis alone is non-numeric: its points live in
// Arrivals and Values stays empty.
type Axis struct {
	Kind   AxisKind
	Values []float64
	// Arrivals are the points of an AxisArrival axis (exclusive with
	// Values).
	Arrivals []workload.Arrival
}

// len reports the number of sweep points on the axis.
func (a Axis) len() int {
	if a.Kind == AxisArrival {
		return len(a.Arrivals)
	}
	return len(a.Values)
}

// String renders the axis with its value range — "task-count=1..30",
// "arrival-rate=1,1.25,1.5", "arrival=poisson,bursty-1/1" — the form
// sgprs-sweep -list prints per experiment.
func (a Axis) String() string {
	if a.Kind == AxisArrival {
		names := make([]string, len(a.Arrivals))
		for i, p := range a.Arrivals {
			if p == nil {
				names[i] = "nil"
				continue
			}
			names[i] = p.Name()
		}
		return a.Kind.String() + "=" + strings.Join(names, ",")
	}
	if n := len(a.Values); n > 2 && contiguousInts(a.Values) {
		return fmt.Sprintf("%s=%g..%g", a.Kind, a.Values[0], a.Values[n-1])
	}
	parts := make([]string, len(a.Values))
	for i, v := range a.Values {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return a.Kind.String() + "=" + strings.Join(parts, ",")
}

// contiguousInts reports whether vs is an ascending run of consecutive
// integers — collapsible to "lo..hi" in display.
func contiguousInts(vs []float64) bool {
	for i, v := range vs {
		if v != math.Trunc(v) {
			return false
		}
		if i > 0 && v != vs[i-1]+1 {
			return false
		}
	}
	return true
}

// Tasks is the task-count axis (sets RunConfig.NumTasks).
func Tasks(counts ...int) Axis {
	vs := make([]float64, len(counts))
	for i, n := range counts {
		vs[i] = float64(n)
	}
	return Axis{Kind: AxisTasks, Values: vs}
}

// TaskRange is Tasks over the inclusive range lo..hi.
func TaskRange(lo, hi int) Axis {
	var counts []int
	for n := lo; n <= hi; n++ {
		counts = append(counts, n)
	}
	return Tasks(counts...)
}

// OverSub sweeps the context pool's over-subscription level: each value
// rescales the variant's pool (keeping its context count) via
// sim.ContextPool.
func OverSub(levels ...float64) Axis { return Axis{Kind: AxisOverSub, Values: levels} }

// FPS sweeps the per-task frame rate.
func FPS(rates ...float64) Axis { return Axis{Kind: AxisFPS, Values: rates} }

// JitterMS sweeps the per-job uniform release-jitter bound, milliseconds.
func JitterMS(ms ...float64) Axis { return Axis{Kind: AxisJitterMS, Values: ms} }

// WorkVar sweeps the relative per-job execution-demand spread (WCET-overrun
// injection; 0.15 means ±15%).
func WorkVar(fracs ...float64) Axis { return Axis{Kind: AxisWorkVar, Values: fracs} }

// HorizonSec sweeps the simulated measurement horizon, seconds.
func HorizonSec(secs ...float64) Axis { return Axis{Kind: AxisHorizonSec, Values: secs} }

// Rate sweeps the arrival intensity: each value multiplies the variant's
// arrival process via workload.Arrival.Scale (1.0 = the template's own
// rate). The variant must carry a non-nil Arrival — set one on the
// template or add an Arrivals axis; Compile rejects the combination
// otherwise. Applied after the arrival axis, so the two compose.
func Rate(factors ...float64) Axis { return Axis{Kind: AxisRate, Values: factors} }

// Arrivals sweeps the arrival process itself — e.g. periodic vs Poisson vs
// bursty at matched average rate. Points are labeled by Arrival.Name.
func Arrivals(procs ...workload.Arrival) Axis { return Axis{Kind: AxisArrival, Arrivals: procs} }

// FaultRate sweeps the per-launch transient-fault probability: each value
// overwrites Faults.Transient.Prob on a deep copy of the variant's fault
// configuration (a nil Faults gains a minimal one whose recovery settings
// are the package defaults). Zero disables transient faults for that point.
func FaultRate(probs ...float64) Axis { return Axis{Kind: AxisFaultRate, Values: probs} }

// DegradationSMs sweeps the degraded capacity: each value overwrites the SM
// count of every degradation window of the variant's fault configuration.
// The variant must carry at least one window in Faults.Degradation — the
// axis sweeps how deep the dip goes, the template says when it happens;
// Compile rejects the combination otherwise.
func DegradationSMs(sms ...int) Axis {
	vs := make([]float64, len(sms))
	for i, n := range sms {
		vs[i] = float64(n)
	}
	return Axis{Kind: AxisDegradation, Values: vs}
}

// Devices sweeps the fleet size (sets RunConfig.Devices; 1 is the
// single-device path, larger values run behind the cluster dispatcher).
func Devices(counts ...int) Axis {
	vs := make([]float64, len(counts))
	for i, n := range counts {
		vs[i] = float64(n)
	}
	return Axis{Kind: AxisDevices, Values: vs}
}

// Placements sweeps the fleet chain-placement policy (fleet runs only; a
// placement axis crossed with a Devices axis must keep every device count
// above 1, since single-device runs reject fleet knobs).
func Placements(policies ...cluster.Placement) Axis {
	vs := make([]float64, len(policies))
	for i, p := range policies {
		vs[i] = float64(p)
	}
	return Axis{Kind: AxisPlacement, Values: vs}
}

// validate checks the axis's value ranges. Variant-dependent constraints
// (an over-subscription axis needs a context pool to rescale, a rate axis
// an arrival process) are checked during expansion, where the variant can
// be named.
func (a Axis) validate(spec string) error {
	if a.Kind == AxisArrival {
		if len(a.Values) > 0 {
			return fmt.Errorf("exp: spec %q: arrival axis carries numeric Values; its points go in Arrivals", spec)
		}
		if len(a.Arrivals) == 0 {
			return fmt.Errorf("exp: spec %q: empty %s axis", spec, a.Kind)
		}
		for i, p := range a.Arrivals {
			if p == nil {
				return fmt.Errorf("exp: spec %q: arrival axis point %d is nil", spec, i)
			}
			if err := p.Validate(); err != nil {
				return fmt.Errorf("exp: spec %q: arrival axis %s: %w", spec, p.Name(), err)
			}
		}
		return nil
	}
	if len(a.Arrivals) > 0 {
		return fmt.Errorf("exp: spec %q: %s axis carries Arrivals; only the arrival axis may", spec, a.Kind)
	}
	if len(a.Values) == 0 {
		return fmt.Errorf("exp: spec %q: empty %s axis", spec, a.Kind)
	}
	for _, v := range a.Values {
		bad := ""
		//sgprs:allow tagswitch — AxisArrival returned above: an arrival axis has no numeric values to validate
		switch a.Kind {
		case AxisTasks:
			if v != math.Trunc(v) || v < 1 {
				bad = "must be an integer >= 1"
			}
		case AxisOverSub, AxisFPS, AxisHorizonSec:
			if !(v > 0) {
				bad = "must be positive"
			}
		case AxisRate:
			if !(v > 0) || math.IsInf(v, 0) {
				bad = "must be positive and finite"
			}
		case AxisJitterMS, AxisWorkVar:
			if !(v >= 0) {
				bad = "must be non-negative"
			}
		case AxisFaultRate:
			if !(v >= 0 && v <= 1) {
				bad = "must be a probability in [0,1]"
			}
		case AxisDegradation:
			if v != math.Trunc(v) || v < 1 {
				bad = "must be an integer SM count >= 1"
			}
		case AxisDevices:
			if v != math.Trunc(v) || v < 1 {
				bad = "must be an integer device count >= 1"
			}
		case AxisPlacement:
			if v != math.Trunc(v) || v < float64(cluster.PlaceBinPack) || v > float64(cluster.PlaceLoadSteal) {
				bad = "must be a placement policy (0 bin-pack, 1 context-fit, 2 load-steal)"
			}
		default:
			bad = "unknown axis kind"
		}
		if bad != "" {
			return fmt.Errorf("exp: spec %q: %s axis value %v %s", spec, a.Kind, v, bad)
		}
	}
	return nil
}

// SeedPolicy selects how compiled jobs get their seeds.
type SeedPolicy int

const (
	// SeedFixed keeps each variant's configured seed on every grid cell —
	// the sequential drivers' behavior, and the default.
	SeedFixed SeedPolicy = iota
	// SeedDerived gives every grid cell a distinct seed mixed from the
	// variant's base seed and the cell's (label, task count) via
	// runner.DeriveSeed; exactly reproducible, never scheduling-dependent.
	SeedDerived
)

// Spec is a declarative experiment: named variants (RunConfig templates)
// crossed with sweep axes. Compile expands the cross product into the
// runner's job list; Run executes it. Specs are plain data — copy one,
// tweak an axis, and register the result as a new experiment.
type Spec struct {
	// Name identifies the spec in the registry and in CLI -experiment
	// flags. Required by Register; Compile allows anonymous specs.
	Name string
	// Description is the one-line summary -list prints.
	Description string
	// Variants are the scheduler configurations to sweep. Each needs a
	// unique name (empty Name falls back to the Kind's name). Axis values
	// overwrite the corresponding template fields per grid cell.
	Variants []sim.RunConfig
	// Axes are the sweep dimensions, at most one per kind. The task-count
	// axis is always the innermost expansion (one result series per
	// variant × other-axis combination); if absent, each variant runs at
	// its template's NumTasks. An axis with no values is a compile error.
	Axes []Axis
	// SeedPolicy is SeedFixed (default) or SeedDerived.
	SeedPolicy SeedPolicy
}

// Clone returns an independent deep copy: mutating the copy's variants or
// axes never affects the original (or the registry's master copy).
func (s *Spec) Clone() *Spec {
	c := *s
	c.Variants = make([]sim.RunConfig, len(s.Variants))
	for i, v := range s.Variants {
		c.Variants[i] = v
		c.Variants[i].ContextSMs = append([]int(nil), v.ContextSMs...)
		c.Variants[i].Faults = v.Faults.Clone()
	}
	c.Axes = make([]Axis, len(s.Axes))
	for i, a := range s.Axes {
		c.Axes[i] = Axis{
			Kind:   a.Kind,
			Values: append([]float64(nil), a.Values...),
		}
		// Arrival implementations are immutable values (trace data is
		// shared read-only), so copying the slice is a deep copy.
		if len(a.Arrivals) > 0 {
			c.Axes[i].Arrivals = append([]workload.Arrival(nil), a.Arrivals...)
		}
	}
	return &c
}

// Compiled is a Spec expanded into executable form.
type Compiled struct {
	Spec *Spec
	// Jobs is the flat job list, grouped per expanded variant label with
	// the task axis innermost — the submission order the runner preserves
	// in its results.
	Jobs []runner.Job
	// Order lists the expanded variant labels (variant × non-task axis
	// combination) in submission order; with no non-task axes these are
	// the bare variant names.
	Order []string
	// TaskCounts is the task axis (or, without one, the distinct template
	// task counts) — the abscissa shared by every series.
	TaskCounts []int
}

// variantName labels a configuration the way sim.RunConfig.Normalize would.
func variantName(cfg sim.RunConfig) string {
	if cfg.Name != "" {
		return cfg.Name
	}
	return cfg.Kind.String()
}

// Compile expands the spec into the runner's job list, validating every
// grid cell: duplicate variant names, empty or out-of-range axes, and any
// configuration sim.RunConfig.Normalize would reject (zero task counts,
// horizon not exceeding warm-up, ...) are reported here — naming the spec,
// the expanded variant, and where applicable the axis — instead of failing
// inside a pool worker. The returned job configs are left un-normalized, so
// compiled specs execute exactly like hand-built job lists.
func (s *Spec) Compile() (*Compiled, error) {
	if len(s.Variants) == 0 {
		return nil, fmt.Errorf("exp: spec %q has no variants", s.Name)
	}
	seen := make(map[string]bool, len(s.Variants))
	for _, v := range s.Variants {
		name := variantName(v)
		if seen[name] {
			return nil, fmt.Errorf("exp: spec %q: duplicate variant name %q", s.Name, name)
		}
		seen[name] = true
	}

	var tasksAxis *Axis
	var sweep []Axis // non-task axes, in spec order
	kinds := make(map[AxisKind]bool, len(s.Axes))
	for i := range s.Axes {
		a := s.Axes[i]
		if kinds[a.Kind] {
			return nil, fmt.Errorf("exp: spec %q has two %s axes", s.Name, a.Kind)
		}
		kinds[a.Kind] = true
		if err := a.validate(s.Name); err != nil {
			return nil, err
		}
		if a.Kind == AxisTasks {
			tasksAxis = &a
		} else {
			sweep = append(sweep, a)
		}
	}

	c := &Compiled{Spec: s}
	if tasksAxis != nil {
		c.TaskCounts = make([]int, len(tasksAxis.Values))
		for i, v := range tasksAxis.Values {
			c.TaskCounts[i] = int(v)
		}
	} else {
		counts := map[int]bool{}
		for _, v := range s.Variants {
			if !counts[v.NumTasks] {
				counts[v.NumTasks] = true
				c.TaskCounts = append(c.TaskCounts, v.NumTasks)
			}
		}
	}

	// Expansion: variant-major, then the non-task axes as a mixed-radix
	// counter (first axis slowest), task counts innermost — one contiguous
	// job block per expanded label.
	combo := make([]int, len(sweep))
	for _, v := range s.Variants {
		for i := range combo {
			combo[i] = 0
		}
		for {
			label := variantName(v)
			if len(sweep) > 0 {
				parts := make([]string, len(sweep))
				for i, a := range sweep {
					if a.Kind == AxisArrival {
						parts[i] = a.Kind.key() + "=" + a.Arrivals[combo[i]].Name()
					} else {
						parts[i] = a.Kind.key() + "=" + strconv.FormatFloat(a.Values[combo[i]], 'g', -1, 64)
					}
				}
				label += "@" + strings.Join(parts, ",")
			}
			cfg := v
			cfg.Name = label
			// Two passes: the rate axis scales cfg.Arrival, so it must
			// see the arrival axis's assignment first regardless of the
			// axes' declaration order.
			for pass := 0; pass < 2; pass++ {
				for i, a := range sweep {
					if (a.Kind == AxisRate) != (pass == 1) {
						continue
					}
					if err := applyAxis(&cfg, a, combo[i]); err != nil {
						return nil, fmt.Errorf("exp: spec %q variant %q: %w", s.Name, label, err)
					}
				}
			}
			counts := c.TaskCounts
			if tasksAxis == nil {
				counts = []int{cfg.NumTasks}
			}
			for _, n := range counts {
				jc := cfg
				jc.NumTasks = n
				if s.SeedPolicy == SeedDerived {
					jc.Seed = runner.DeriveSeed(v.Seed, label, n)
				}
				// Dry-run the run-time validation on a copy: every
				// rejection a worker would hit surfaces here, with
				// the expanded label in the message.
				dry := jc
				if err := dry.Normalize(); err != nil {
					return nil, fmt.Errorf("exp: spec %q: %w", s.Name, err)
				}
				c.Jobs = append(c.Jobs, runner.Job{Variant: label, Tasks: n, Config: jc})
			}
			c.Order = append(c.Order, label)

			i := len(sweep) - 1
			for ; i >= 0; i-- {
				combo[i]++
				if combo[i] < sweep[i].len() {
					break
				}
				combo[i] = 0
			}
			if i < 0 {
				break
			}
		}
	}
	return c, nil
}

// applyAxis writes the axis's idx-th point into a run configuration. The
// switch is exhaustive over AxisKind (tagswitch enforces it): the arrival
// axis applies its process points, the task axis is the grid's own
// dimension and never routes through here, and every numeric axis reads
// a.Values[idx].
func applyAxis(cfg *sim.RunConfig, a Axis, idx int) error {
	switch a.Kind {
	case AxisArrival:
		cfg.Arrival = a.Arrivals[idx]
		return nil
	case AxisTasks:
		// The task count is the grid's own dimension: compile expands it
		// into per-cell jobs and never routes it through applyAxis.
		return fmt.Errorf("cannot apply %s axis", a.Kind)
	case AxisOverSub:
		v := a.Values[idx]
		np := len(cfg.ContextSMs)
		if np == 0 {
			return fmt.Errorf("%s axis needs a context pool on the variant template", a.Kind)
		}
		total := cfg.GPU.TotalSMs
		if total == 0 {
			total = speedup.DeviceSMs
		}
		if total < 0 {
			return fmt.Errorf("%s axis cannot rescale a device with %d SMs", a.Kind, total)
		}
		cfg.ContextSMs = sim.ContextPool(np, v, total)
	case AxisFPS:
		cfg.FPS = a.Values[idx]
	case AxisJitterMS:
		cfg.ReleaseJitterMS = a.Values[idx]
	case AxisWorkVar:
		cfg.WorkVariation = a.Values[idx]
	case AxisHorizonSec:
		cfg.HorizonSec = a.Values[idx]
	case AxisRate:
		if cfg.Arrival == nil {
			return fmt.Errorf("%s axis needs an arrival process on the variant (set RunConfig.Arrival or add an arrival axis)", a.Kind)
		}
		cfg.Arrival = cfg.Arrival.Scale(a.Values[idx])
	case AxisFaultRate:
		// cfg is a shallow copy of the variant template, so the Faults
		// pointer aliases it (and every other grid cell): deep-copy
		// before writing the cell's probability.
		fc := cfg.Faults.Clone()
		if fc == nil {
			fc = &fault.Config{}
		}
		if fc.Transient == nil {
			fc.Transient = &fault.Transient{}
		}
		fc.Transient.Prob = a.Values[idx]
		cfg.Faults = fc
	case AxisDegradation:
		if cfg.Faults == nil || len(cfg.Faults.Degradation) == 0 {
			return fmt.Errorf("%s axis needs degradation windows on the variant (set RunConfig.Faults.Degradation)", a.Kind)
		}
		fc := cfg.Faults.Clone()
		for i := range fc.Degradation {
			fc.Degradation[i].SMs = int(a.Values[idx])
		}
		cfg.Faults = fc
	case AxisDevices:
		cfg.Devices = int(a.Values[idx])
	case AxisPlacement:
		cfg.Placement = cluster.Placement(a.Values[idx])
	default:
		return fmt.Errorf("cannot apply %s axis", a.Kind)
	}
	return nil
}

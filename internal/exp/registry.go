package exp

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// registry is the process-wide experiment catalogue. Specs are stored as
// master copies; Lookup and List hand out clones, so callers can scale a
// built-in down (shorter horizon, fewer points) without corrupting the
// registry for everyone else.
var registry = struct {
	sync.RWMutex
	specs map[string]*Spec
	order []string // registration order, the -list display order
}{specs: map[string]*Spec{}}

// Register adds a spec to the process-wide registry. The spec must have a
// name, must compile (so every registered experiment is runnable by
// construction), and must not collide with an already-registered name.
// Register stores a clone: later mutation of the argument does not affect
// the registry.
func Register(s *Spec) error {
	if s == nil || s.Name == "" {
		return fmt.Errorf("exp: cannot register a spec without a name")
	}
	if _, err := s.Compile(); err != nil {
		return fmt.Errorf("exp: register %q: %w", s.Name, err)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.specs[s.Name]; dup {
		return fmt.Errorf("exp: experiment %q is already registered", s.Name)
	}
	registry.specs[s.Name] = s.Clone()
	registry.order = append(registry.order, s.Name)
	return nil
}

// MustRegister is Register for init-time built-ins: it panics on error.
func MustRegister(s *Spec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Lookup returns a clone of the named experiment, or false. Mutating the
// clone (e.g. swapping in a shorter task axis) never affects the registry.
func Lookup(name string) (*Spec, bool) {
	registry.RLock()
	defer registry.RUnlock()
	s, ok := registry.specs[name]
	if !ok {
		return nil, false
	}
	return s.Clone(), true
}

// List returns clones of every registered experiment in registration order
// (built-ins first, in the order builtins.go declares them).
func List() []*Spec {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]*Spec, 0, len(registry.order))
	for _, name := range registry.order {
		out = append(out, registry.specs[name].Clone())
	}
	return out
}

// Names returns the sorted registered experiment names — for "unknown
// experiment" error messages.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := append([]string(nil), registry.order...)
	sort.Strings(out)
	return out
}

// Summarize renders one line of shape metadata for a spec — variant and
// axis counts plus the expanded job total — used by CLI -list output.
func Summarize(s *Spec) string {
	c, err := s.Compile()
	if err != nil {
		return fmt.Sprintf("invalid: %v", err)
	}
	axes := make([]string, 0, len(s.Axes))
	for _, a := range s.Axes {
		axes = append(axes, fmt.Sprintf("%s[%d]", a.Kind.key(), a.len()))
	}
	if len(axes) == 0 {
		axes = append(axes, "fixed")
	}
	return fmt.Sprintf("%d variants × %s = %d runs", len(s.Variants), strings.Join(axes, "×"), len(c.Jobs))
}

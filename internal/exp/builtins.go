package exp

import (
	"fmt"

	"sgprs/internal/cluster"
	"sgprs/internal/fault"
	"sgprs/internal/rt"
	"sgprs/internal/sim"
	"sgprs/internal/speedup"
	"sgprs/internal/workload"
)

// Scenario builds the spec for one paper scenario (1 or 2): the naive
// baseline plus SGPRS at over-subscription 1.0/1.5/2.0, swept over the task
// counts. Compiling it yields exactly the job list the legacy drivers
// built by hand (the equivalence tests pin this), so the facade's
// RunScenario is a wrapper over this spec.
func Scenario(scenario int, taskCounts []int, horizonSec float64, seed uint64) (*Spec, error) {
	np, err := sim.ScenarioContexts(scenario)
	if err != nil {
		return nil, err
	}
	s := &Spec{
		Name: fmt.Sprintf("scenario%d", scenario),
		Description: fmt.Sprintf(
			"paper scenario %d (%d contexts): naive baseline + SGPRS at 1.0/1.5/2.0x over-subscription (Figures %da/%db)",
			scenario, np, scenario+2, scenario+2),
		Axes: []Axis{Tasks(taskCounts...)},
	}
	for _, v := range sim.ScenarioVariants() {
		s.Variants = append(s.Variants, sim.RunConfig{
			Kind:       v.Kind,
			Name:       v.Name,
			ContextSMs: sim.ContextPool(np, v.OS, speedup.DeviceSMs),
			HorizonSec: horizonSec,
			Seed:       seed,
			NumTasks:   1, // overwritten by the task axis
		})
	}
	return s, nil
}

// Built-in experiments. The paper's two scenarios ship as registry entries
// next to three studies from its evaluation discussion (§V): an ablation
// grid over the scheduler's design features, a release-jitter ladder, and
// an over-subscription sweep. All use the full 10 s evaluation horizon;
// Lookup returns clones, so callers wanting a smoke-scale run can shrink
// the axes of their copy freely.
func init() {
	var fullRamp []int
	for n := 1; n <= 30; n++ {
		fullRamp = append(fullRamp, n)
	}
	for _, scenario := range []int{1, 2} {
		s, err := Scenario(scenario, fullRamp, 10, 1)
		if err != nil {
			panic(err)
		}
		MustRegister(s)
	}

	sgprs15 := func(name string, np int) sim.RunConfig {
		return sim.RunConfig{
			Kind:       sim.KindSGPRS,
			Name:       name,
			ContextSMs: sim.ContextPool(np, 1.5, speedup.DeviceSMs),
			HorizonSec: 10,
			Seed:       1,
			NumTasks:   1,
		}
	}

	// Ablation grid: each SGPRS design feature toggled off in isolation
	// against the full scheduler, across the load ramp's decision points.
	full := sgprs15("sgprs-full", 3)
	noProm := sgprs15("no-medium-promotion", 3)
	noProm.DisableMediumPromotion = true
	noDrop := sgprs15("no-late-drop", 3)
	noDrop.DisableLateDrop = true
	flat := sgprs15("flat-priorities", 3)
	flat.FlattenPriorities = true
	MustRegister(&Spec{
		Name:        "ablation-grid",
		Description: "SGPRS 1.5x (3 contexts) vs each design feature disabled, over the pivot-region loads",
		Variants:    []sim.RunConfig{full, noProm, noDrop, flat},
		Axes:        []Axis{Tasks(8, 16, 23, 26, 30)},
	})

	// Jitter ladder: how much sporadic release jitter the schedule
	// absorbs before the pivot point recedes.
	MustRegister(&Spec{
		Name:        "jitter-ladder",
		Description: "SGPRS 1.5x (2 contexts) under growing release jitter: 0/2/5/10 ms bounds over the load ramp",
		Variants:    []sim.RunConfig{sgprs15("sgprs", 2)},
		Axes:        []Axis{JitterMS(0, 2, 5, 10), Tasks(4, 8, 12, 16, 20, 24, 28)},
	})

	// Over-subscription sweep: the Figure 4 trade-off as a first-class
	// axis — predictability versus contention around the saturation knee.
	MustRegister(&Spec{
		Name:        "oversubscription",
		Description: "SGPRS (3 contexts) across over-subscription 1.0..2.0 at saturating loads",
		Variants:    []sim.RunConfig{sgprs15("sgprs", 3)},
		Axes:        []Axis{OverSub(1.0, 1.25, 1.5, 1.75, 2.0), Tasks(20, 22, 24, 26, 28)},
	})

	// Overload tail study: open-loop Poisson arrivals at each task's
	// natural rate, pushed past saturation by the rate axis. The overload
	// metrics — drop rate, p99/p999 response, SLO hit rate, backlog depth
	// — separate SGPRS's late-drop shedding from the naive scheduler's
	// unbounded queueing. SLO = one frame period at 30 fps.
	overSGPRS := sgprs15("sgprs-1.5x", 3)
	overSGPRS.Arrival = workload.Poisson{}
	overSGPRS.SLOMS = 1000.0 / 30.0
	overNaive := sim.RunConfig{
		Kind:       sim.KindNaive,
		Name:       "naive",
		ContextSMs: sim.ContextPool(3, 1.0, speedup.DeviceSMs),
		HorizonSec: 10,
		Seed:       1,
		NumTasks:   1,
		Arrival:    workload.Poisson{},
		SLOMS:      1000.0 / 30.0,
	}
	MustRegister(&Spec{
		Name:        "overload-tail",
		Description: "SGPRS 1.5x vs naive (3 contexts) under open-loop Poisson arrivals, rate-swept past saturation: drop rate and tail latency",
		Variants:    []sim.RunConfig{overSGPRS, overNaive},
		Axes:        []Axis{Rate(1.0, 1.25, 1.5, 2.0), Tasks(8, 16, 24)},
	})

	// Trace replay: both schedulers driven by one shared synthetic arrival
	// log (Poisson at 60 rows/s over 8 s, pre-generated so every variant
	// and worker count replays the identical timestamps). Swapping in a
	// production trace is a LoadTrace call on a copy of this spec.
	trace := workload.SyntheticTrace("synthetic-60", 7, 60, 8, 8)
	traceSGPRS := sgprs15("sgprs-1.5x", 2)
	traceSGPRS.Arrival = workload.Trace{Data: trace}
	traceSGPRS.SLOMS = 1000.0 / 30.0
	traceNaive := sim.RunConfig{
		Kind:       sim.KindNaive,
		Name:       "naive",
		ContextSMs: sim.ContextPool(2, 1.0, speedup.DeviceSMs),
		HorizonSec: 10,
		Seed:       1,
		NumTasks:   1,
		Arrival:    workload.Trace{Data: trace},
		SLOMS:      1000.0 / 30.0,
	}
	MustRegister(&Spec{
		Name:        "trace-replay",
		Description: "SGPRS 1.5x vs naive (2 contexts) replaying a shared synthetic arrival trace (60 rows/s, 8 s)",
		Variants:    []sim.RunConfig{traceSGPRS, traceNaive},
		Axes:        []Axis{Tasks(4, 8)},
	})

	// Fault resilience (DESIGN.md §13): each recovery policy against a
	// rising transient-fault rate, plus the naive baseline (whose static
	// partitions can only retry or drop). The fault-rate axis deep-copies
	// each variant's fault block per grid cell, so the policies stay
	// distinct across the sweep.
	// A mild heavy-tailed overrun rides along on every variant: it stretches
	// job responses enough that held successor frames are still viable when
	// a fault hits, which is exactly the regime where skip-job and
	// kill-chain diverge (without it they coincide — underloaded tasks hold
	// nothing, and deep overload's held frames are doomed either way).
	faultVariant := func(name, policy string) sim.RunConfig {
		cfg := sgprs15(name, 3)
		cfg.Faults = &fault.Config{
			Overrun:   &fault.Overrun{Model: fault.OverrunHeavyTail, Factor: 1.5},
			Transient: &fault.Transient{Policy: policy},
		}
		return cfg
	}
	faultNaive := sim.RunConfig{
		Kind:       sim.KindNaive,
		Name:       "naive-retry",
		ContextSMs: sim.ContextPool(3, 1.0, speedup.DeviceSMs),
		HorizonSec: 10,
		Seed:       1,
		NumTasks:   1,
		Faults: &fault.Config{
			Overrun:   &fault.Overrun{Model: fault.OverrunHeavyTail, Factor: 1.5},
			Transient: &fault.Transient{Policy: "retry"},
		},
	}
	MustRegister(&Spec{
		Name:        "fault-resilience",
		Description: "recovery policies (retry/skip-job/kill-chain) + naive baseline under rising transient-fault rates",
		Variants: []sim.RunConfig{
			faultVariant("sgprs-retry", "retry"),
			faultVariant("sgprs-skip", "skip-job"),
			faultVariant("sgprs-kill", "kill-chain"),
			faultNaive,
		},
		Axes: []Axis{FaultRate(0, 0.01, 0.05, 0.10), Tasks(8, 16, 24, 30)},
	})

	// Overrun sweep: the three WCET-overrun models at matched worst-case
	// inflation — does the rate engine absorb a constant tax better than a
	// heavy tail or synchronized Nth-frame spikes?
	overrunVariant := func(name string, o *fault.Overrun) sim.RunConfig {
		cfg := sgprs15(name, 3)
		cfg.Faults = &fault.Config{Overrun: o}
		return cfg
	}
	MustRegister(&Spec{
		Name:        "overrun-sweep",
		Description: "WCET-overrun models (constant/heavy-tail/spike) at matched 1.5x worst case over the load ramp",
		Variants: []sim.RunConfig{
			sgprs15("no-overrun", 3),
			overrunVariant("constant-1.5x", &fault.Overrun{Model: fault.OverrunConstant, Factor: 1.5}),
			overrunVariant("heavy-tail-1.5x", &fault.Overrun{Model: fault.OverrunHeavyTail, Factor: 1.5}),
			overrunVariant("spike-1.5x", &fault.Overrun{Model: fault.OverrunSpike, Factor: 1.5, Every: 10}),
		},
		Axes: []Axis{Tasks(8, 16, 23, 26)},
	})

	// Fleet failover (DESIGN.md §15): a 3-device fleet loses device 1
	// mid-measurement and gets it back 2 s later; each failover policy
	// against a clean fleet twin, over the load ramp. The admission ceiling
	// bites while degraded (2/3 surviving capacity < 0.7), so shed releases
	// and the fleet-degraded DMR separate the policies.
	fleetVariant := func(name string, fo rt.FailoverPolicy, faulted bool) sim.RunConfig {
		cfg := sgprs15(name, 3)
		cfg.Devices = 3
		cfg.Failover = fo
		cfg.AdmitCeiling = 0.7
		if faulted {
			cfg.Faults = &fault.Config{
				DeviceFaults: []fault.DeviceFault{{Device: 1, StartSec: 3, RestartSec: 5}},
			}
		}
		return cfg
	}
	MustRegister(&Spec{
		Name:        "fleet-failover",
		Description: "3-device fleet, device 1 crashes at 3 s and restarts at 5 s: migrate/retry/shed failover vs a clean fleet",
		Variants: []sim.RunConfig{
			fleetVariant("fleet-clean", rt.FailoverDefault, false),
			fleetVariant("fleet-migrate", rt.FailoverMigrate, true),
			fleetVariant("fleet-retry", rt.FailoverRetry, true),
			fleetVariant("fleet-shed", rt.FailoverShed, true),
		},
		Axes: []Axis{Tasks(12, 24, 36, 48)},
	})

	// Fleet shootout: placement policies crossed with fleet sizes on a clean
	// fleet — how much of the single-device pivot survives scale-out, and
	// which homing heuristic spreads the load best.
	MustRegister(&Spec{
		Name:        "fleet-shootout",
		Description: "placement policies (bin-pack/context-fit/load-steal) across 2/3/4-device fleets at scaling loads",
		Variants:    []sim.RunConfig{sgprs15("sgprs-fleet", 3)},
		Axes: []Axis{
			Devices(2, 3, 4),
			Placements(cluster.PlaceBinPack, cluster.PlaceContextFit, cluster.PlaceLoadSteal),
			Tasks(16, 32, 48),
		},
	})
}

package exp

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"sgprs/internal/runner"
	"sgprs/internal/sim"
	"sgprs/internal/workload"
)

// TestTraceReplayDeterministicAcrossWorkers is the trace-replay acceptance
// test: the registry's trace-replay experiment — shrunk to a 3 s horizon —
// produces bit-identical series at 1, 2, and 4 workers. Trace arrivals are
// pure data, so worker scheduling has nothing stochastic to leak into.
func TestTraceReplayDeterministicAcrossWorkers(t *testing.T) {
	spec, ok := Lookup("trace-replay")
	if !ok {
		t.Fatal("trace-replay not registered")
	}
	for i := range spec.Variants {
		spec.Variants[i].HorizonSec = 3
	}
	var ref *ResultSet
	for _, workers := range []int{1, 2, 4} {
		rs, err := Run(context.Background(), spec, runner.Options{Jobs: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = rs
			// Vacuity guard: the replay must actually complete work on
			// both variants.
			for name, series := range rs.Series() {
				for _, p := range series {
					if p.Summary.Completed == 0 {
						t.Fatalf("%s n=%d completed nothing", name, p.Tasks)
					}
				}
			}
			continue
		}
		if !reflect.DeepEqual(ref.Series(), rs.Series()) || !reflect.DeepEqual(ref.Order, rs.Order) {
			t.Errorf("workers=%d: results differ from single-worker reference", workers)
		}
	}
}

// TestOverloadTailCompiles: the overload-tail builtin expands rate-major
// with the task axis innermost, labeling each cell with its rate factor.
func TestOverloadTailCompiles(t *testing.T) {
	spec, ok := Lookup("overload-tail")
	if !ok {
		t.Fatal("overload-tail not registered")
	}
	c, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 4 * 3; len(c.Jobs) != want {
		t.Errorf("compiled %d jobs, want %d", len(c.Jobs), want)
	}
	if c.Order[0] != "sgprs-1.5x@rate=1" {
		t.Errorf("first label = %q", c.Order[0])
	}
	for _, j := range c.Jobs {
		if j.Config.Arrival == nil {
			t.Fatalf("job %q has no arrival process", j.Config.Name)
		}
		if j.Config.SLOMS <= 0 {
			t.Fatalf("job %q has no SLO", j.Config.Name)
		}
	}
	// The rate axis scales the template's Poisson: cell rate=2 must carry
	// a process distinct from the rate=1 template.
	if name := c.Jobs[len(c.Jobs)-1].Config.Arrival.Name(); !strings.Contains(name, "2") {
		t.Errorf("last cell arrival %q does not reflect the 2.0 rate factor", name)
	}
}

// TestRateAxisNeedsArrival: a rate axis over a variant without an arrival
// process is a compile error naming the variant, not a worker panic.
func TestRateAxisNeedsArrival(t *testing.T) {
	spec := &Spec{
		Name: "rate-no-arrival",
		Variants: []sim.RunConfig{{
			Kind: sim.KindSGPRS, Name: "s", ContextSMs: []int{34, 34},
			NumTasks: 2, HorizonSec: 2,
		}},
		Axes: []Axis{Rate(1, 2)},
	}
	_, err := spec.Compile()
	if err == nil {
		t.Fatal("rate axis without arrival compiled")
	}
	if !strings.Contains(err.Error(), "arrival") || !strings.Contains(err.Error(), `"s@rate=1"`) {
		t.Errorf("error %q does not name the variant and the missing arrival", err)
	}
}

// TestArrivalAxisCompile: an arrival axis sweeps the process per cell, is
// labeled by process name, and composes with a rate axis regardless of the
// axes' declaration order (rate applies after arrival).
func TestArrivalAxisCompile(t *testing.T) {
	spec := &Spec{
		Name: "arrival-sweep",
		Variants: []sim.RunConfig{{
			Kind: sim.KindSGPRS, Name: "s", ContextSMs: []int{34, 34},
			NumTasks: 2, HorizonSec: 2,
		}},
		Axes: []Axis{
			Rate(1, 2), // declared before the arrival axis on purpose
			Arrivals(workload.Periodic{}, workload.Poisson{}),
		},
	}
	c, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Jobs) != 4 {
		t.Fatalf("compiled %d jobs, want 4", len(c.Jobs))
	}
	byLabel := map[string]runnerJob{}
	for _, j := range c.Jobs {
		byLabel[j.Variant] = runnerJob{arrival: j.Config.Arrival.Name()}
	}
	for label, want := range map[string]string{
		"s@rate=1,arr=periodic": "periodic",
		"s@rate=2,arr=periodic": "periodic-2x",
		"s@rate=1,arr=poisson":  "poisson",
		"s@rate=2,arr=poisson":  "poisson-2x",
	} {
		got, ok := byLabel[label]
		if !ok {
			t.Errorf("missing cell %q (have %v)", label, c.Order)
			continue
		}
		if got.arrival != want {
			t.Errorf("%s: arrival = %q, want %q", label, got.arrival, want)
		}
	}
}

type runnerJob struct{ arrival string }

// TestArrivalAxisValidation: malformed axes fail at compile time with the
// axis named.
func TestArrivalAxisValidation(t *testing.T) {
	base := sim.RunConfig{
		Kind: sim.KindSGPRS, Name: "s", ContextSMs: []int{34, 34},
		NumTasks: 2, HorizonSec: 2,
	}
	for name, axes := range map[string][]Axis{
		"empty-arrivals": {Arrivals()},
		"nil-point":      {Arrivals(nil)},
		"invalid-point":  {Arrivals(workload.Poisson{Rate: -1})},
		"values-on-arrival": {{
			Kind: AxisArrival, Values: []float64{1},
			Arrivals: []workload.Arrival{workload.Poisson{}},
		}},
		"arrivals-on-tasks": {{
			Kind: AxisTasks, Values: []float64{2},
			Arrivals: []workload.Arrival{workload.Poisson{}},
		}},
		"zero-rate":     {Arrivals(workload.Poisson{}), Rate(0)},
		"infinite-rate": {Arrivals(workload.Poisson{}), Rate(math.Inf(1))},
	} {
		spec := &Spec{Name: name, Variants: []sim.RunConfig{base}, Axes: axes}
		if _, err := spec.Compile(); err == nil {
			t.Errorf("%s: compiled", name)
		}
	}
}

// TestAxisStringAndKinds pins the -list rendering contract: every kind is
// enumerated, and axes render with their value ranges.
func TestAxisStringAndKinds(t *testing.T) {
	kinds := Kinds()
	if len(kinds) != 12 {
		t.Fatalf("Kinds() lists %d kinds", len(kinds))
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] || strings.HasPrefix(s, "axis(") {
			t.Errorf("kind %d renders %q", int(k), s)
		}
		seen[s] = true
	}
	for want, axis := range map[string]Axis{
		"task-count=1..30":          TaskRange(1, 30),
		"task-count=8,16,23":        Tasks(8, 16, 23),
		"arrival-rate=1,1.25,1.5":   Rate(1, 1.25, 1.5),
		"arrival=periodic,poisson":  Arrivals(workload.Periodic{}, workload.Poisson{}),
		"over-subscription=1.5":     OverSub(1.5),
		"release-jitter-ms=0,2,5":   JitterMS(0, 2, 5),
		"horizon-sec=10":            HorizonSec(10),
		"arrival=trace:synthetic-1": Arrivals(workload.Trace{Data: workload.SyntheticTrace("synthetic-1", 1, 10, 1, 1)}),
	} {
		if got := axis.String(); got != want {
			t.Errorf("Axis.String() = %q, want %q", got, want)
		}
	}
}

package exp

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"sgprs/internal/fault"
	"sgprs/internal/runner"
)

// faultSmokeSpec shrinks the fault-resilience builtin to a fast grid: the
// same four variants and both fault axes' machinery, but two rates, two task
// counts, and a two-second horizon.
func faultSmokeSpec(t *testing.T) *Spec {
	t.Helper()
	spec, ok := Lookup("fault-resilience")
	if !ok {
		t.Fatal("fault-resilience builtin not registered")
	}
	s := spec.Clone()
	s.Axes = []Axis{FaultRate(0, 0.1), Tasks(4, 8)}
	for i := range s.Variants {
		s.Variants[i].HorizonSec = 2
	}
	return s
}

// TestFaultResilienceDeterministicAcrossWorkers is the acceptance criterion:
// a seeded fault-resilience sweep is bit-identical at 1, 2, and 4 workers.
// Fault injection draws from streams forked per run at expansion-fixed seeds,
// so worker scheduling must never reach the injectors.
func TestFaultResilienceDeterministicAcrossWorkers(t *testing.T) {
	ref, err := Run(context.Background(), faultSmokeSpec(t), runner.Options{Jobs: 1})
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	for _, workers := range []int{2, 4} {
		rs, err := Run(context.Background(), faultSmokeSpec(t), runner.Options{Jobs: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(ref.Results, rs.Results) {
			t.Errorf("workers=%d: fault-resilience results differ from the single-worker run", workers)
		}
	}
	// Anti-vacuity: the nonzero-rate cells must actually inject.
	faults := 0
	for _, r := range ref.Results {
		faults += r.Result.Summary.Faults.TransientFaults
	}
	if faults == 0 {
		t.Error("sweep injected no transient faults; determinism test exercises nothing")
	}
}

// TestFaultAxesValidate pins the fault axes' rejection surface and the
// clone-before-mutate discipline: expanding a fault-rate axis must not write
// through to the variant's shared Config.
func TestFaultAxesValidate(t *testing.T) {
	if err := FaultRate(0, 1.5).validate("t"); err == nil || !strings.Contains(err.Error(), "probability") {
		t.Errorf("FaultRate(1.5) validate = %v", err)
	}
	if err := DegradationSMs(0).validate("t"); err == nil || !strings.Contains(err.Error(), "SM count") {
		t.Errorf("DegradationSMs(0) validate = %v", err)
	}
	spec := faultSmokeSpec(t)
	before := spec.Variants[0].Faults.Clone()
	if _, err := spec.Compile(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, spec.Variants[0].Faults) {
		t.Errorf("compiling mutated the variant's fault config: %+v", spec.Variants[0].Faults)
	}

	// A degradation axis over a variant with no windows has nothing to
	// scale — compiling must fail loudly, not silently produce a no-op.
	spec.Axes = []Axis{DegradationSMs(10, 20)}
	if _, err := spec.Compile(); err == nil || !strings.Contains(err.Error(), "degradation windows") {
		t.Errorf("degradation axis without windows: Compile = %v", err)
	}
	spec.Variants = spec.Variants[:1]
	spec.Variants[0].Faults = &fault.Config{Degradation: []fault.Window{{StartSec: 0.5, EndSec: 1, SMs: 40}}}
	c, err := spec.Compile()
	if err != nil {
		t.Fatalf("degradation axis with windows: %v", err)
	}
	if c.Jobs[0].Config.Faults.Degradation[0].SMs != 10 {
		t.Errorf("axis did not stamp the window SM count: %+v", c.Jobs[0].Config.Faults.Degradation)
	}
	if spec.Variants[0].Faults.Degradation[0].SMs != 40 {
		t.Errorf("axis wrote through to the variant: %+v", spec.Variants[0].Faults.Degradation)
	}
}

package exp

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"sgprs/internal/runner"
	"sgprs/internal/sim"
)

func sgprsBase(name string) sim.RunConfig {
	return sim.RunConfig{
		Kind:       sim.KindSGPRS,
		Name:       name,
		ContextSMs: sim.ContextPool(2, 1.5, 68),
		NumTasks:   1,
		HorizonSec: 2,
		Seed:       1,
	}
}

// TestCompileExpansion: variant-major order, non-task axes as labelled
// combinations, task counts innermost, template fields overwritten.
func TestCompileExpansion(t *testing.T) {
	s := &Spec{
		Name:     "t",
		Variants: []sim.RunConfig{sgprsBase("a"), sgprsBase("b")},
		Axes:     []Axis{JitterMS(0, 2), Tasks(2, 4)},
	}
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{"a@jit=0", "a@jit=2", "b@jit=0", "b@jit=2"}
	if !reflect.DeepEqual(c.Order, wantOrder) {
		t.Errorf("order = %v, want %v", c.Order, wantOrder)
	}
	if !reflect.DeepEqual(c.TaskCounts, []int{2, 4}) {
		t.Errorf("task counts = %v", c.TaskCounts)
	}
	if len(c.Jobs) != 8 {
		t.Fatalf("jobs = %d, want 8", len(c.Jobs))
	}
	// Second block: variant a, jitter 2, tasks 2 then 4.
	j := c.Jobs[2]
	if j.Variant != "a@jit=2" || j.Tasks != 2 || j.Config.ReleaseJitterMS != 2 || j.Config.NumTasks != 2 {
		t.Errorf("job[2] = %+v", j)
	}
	if j.Config.Name != "a@jit=2" {
		t.Errorf("job config name = %q, want expanded label", j.Config.Name)
	}
}

// TestCompileOverSubAxis: the over-subscription axis rescales each
// variant's pool while keeping its context count.
func TestCompileOverSubAxis(t *testing.T) {
	base := sgprsBase("s")
	base.ContextSMs = sim.ContextPool(3, 1.0, 68)
	s := &Spec{Name: "t", Variants: []sim.RunConfig{base}, Axes: []Axis{OverSub(1.0, 2.0), Tasks(4)}}
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.Jobs[0].Config.ContextSMs, sim.ContextPool(3, 1.0, 68); !reflect.DeepEqual(got, want) {
		t.Errorf("os=1.0 pool = %v, want %v", got, want)
	}
	if got, want := c.Jobs[1].Config.ContextSMs, sim.ContextPool(3, 2.0, 68); !reflect.DeepEqual(got, want) {
		t.Errorf("os=2.0 pool = %v, want %v", got, want)
	}
}

// TestCompileValidation: every rejected shape names the spec and the
// offending variant or axis, at compile time.
func TestCompileValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"no variants", Spec{Name: "x"}, "no variants"},
		{"duplicate variants", Spec{Name: "x",
			Variants: []sim.RunConfig{sgprsBase("dup"), sgprsBase("dup")},
			Axes:     []Axis{Tasks(2)}}, `duplicate variant name "dup"`},
		{"empty task axis", Spec{Name: "x",
			Variants: []sim.RunConfig{sgprsBase("a")},
			Axes:     []Axis{Tasks()}}, "empty task-count axis"},
		{"fractional task count", Spec{Name: "x",
			Variants: []sim.RunConfig{sgprsBase("a")},
			Axes:     []Axis{{Kind: AxisTasks, Values: []float64{1.5}}}}, "task-count axis value 1.5"},
		{"negative oversub", Spec{Name: "x",
			Variants: []sim.RunConfig{sgprsBase("a")},
			Axes:     []Axis{OverSub(-1), Tasks(2)}}, "over-subscription axis value -1"},
		{"zero horizon axis", Spec{Name: "x",
			Variants: []sim.RunConfig{sgprsBase("a")},
			Axes:     []Axis{HorizonSec(0), Tasks(2)}}, "horizon-sec axis value 0"},
		{"duplicate axes", Spec{Name: "x",
			Variants: []sim.RunConfig{sgprsBase("a")},
			Axes:     []Axis{Tasks(2), Tasks(4)}}, "two task-count axes"},
		{"oversub without pool", Spec{Name: "x",
			Variants: []sim.RunConfig{{Kind: sim.KindSGPRS, Name: "bare", NumTasks: 1, HorizonSec: 2}},
			Axes:     []Axis{OverSub(1.5), Tasks(2)}}, `variant "bare@os=1.5"`},
		{"horizon under warmup", Spec{Name: "x",
			Variants: func() []sim.RunConfig {
				v := sgprsBase("w")
				v.WarmUpSec = 3
				return []sim.RunConfig{v}
			}(),
			Axes: []Axis{HorizonSec(2), Tasks(2)}}, `run "w@h=2" horizon`},
		{"no contexts", Spec{Name: "x",
			Variants: []sim.RunConfig{{Kind: sim.KindSGPRS, Name: "bare", NumTasks: 1}},
			Axes:     []Axis{Tasks(2)}}, "no contexts"},
	}
	for _, tc := range cases {
		_, err := tc.spec.Compile()
		if err == nil {
			t.Errorf("%s: compile succeeded, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if tc.spec.Name != "" && !strings.Contains(err.Error(), `"`+tc.spec.Name+`"`) {
			t.Errorf("%s: error %q does not name the spec", tc.name, err)
		}
	}
}

// TestCompileWithoutTaskAxis: a spec without a task axis runs each variant
// at its template task count.
func TestCompileWithoutTaskAxis(t *testing.T) {
	a := sgprsBase("a")
	a.NumTasks = 4
	b := sgprsBase("b")
	b.NumTasks = 8
	c, err := (&Spec{Name: "fixed", Variants: []sim.RunConfig{a, b}}).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Jobs) != 2 || c.Jobs[0].Tasks != 4 || c.Jobs[1].Tasks != 8 {
		t.Errorf("jobs = %+v", c.Jobs)
	}
	if !reflect.DeepEqual(c.TaskCounts, []int{4, 8}) {
		t.Errorf("task counts = %v", c.TaskCounts)
	}
}

// TestSeedPolicies: SeedFixed keeps the template seed on every cell;
// SeedDerived stamps runner.DeriveSeed(variant seed, label, tasks).
func TestSeedPolicies(t *testing.T) {
	s := Series(sgprsBase("s"), []int{2, 4})
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range c.Jobs {
		if j.Config.Seed != 1 {
			t.Errorf("fixed-seed job %v has seed %d", j.Tasks, j.Config.Seed)
		}
	}
	s.SeedPolicy = SeedDerived
	c, err = s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range c.Jobs {
		if want := runner.DeriveSeed(1, "s", j.Tasks); j.Config.Seed != want {
			t.Errorf("derived seed for n=%d = %d, want %d", j.Tasks, j.Config.Seed, want)
		}
	}
}

// TestRegistry: built-ins present, lookups are isolated clones, duplicate
// and invalid registrations rejected.
func TestRegistry(t *testing.T) {
	for _, name := range []string{"scenario1", "scenario2", "ablation-grid", "jitter-ladder", "oversubscription"} {
		s, ok := Lookup(name)
		if !ok {
			t.Fatalf("built-in %q missing from registry", name)
		}
		if _, err := s.Compile(); err != nil {
			t.Errorf("built-in %q does not compile: %v", name, err)
		}
	}
	if got := len(List()); got < 5 {
		t.Errorf("List() returned %d specs, want >= 5 built-ins", got)
	}

	// Clone isolation: mutating a lookup must not corrupt the registry.
	s, _ := Lookup("jitter-ladder")
	s.Variants[0].ContextSMs[0] = 1
	s.Axes[0].Values[0] = 99
	fresh, _ := Lookup("jitter-ladder")
	if fresh.Variants[0].ContextSMs[0] == 1 || fresh.Axes[0].Values[0] == 99 {
		t.Error("mutating a Lookup clone leaked into the registry")
	}

	if err := Register(&Spec{}); err == nil {
		t.Error("nameless spec registered")
	}
	if err := Register(&Spec{Name: "scenario1"}); err == nil {
		t.Error("duplicate name registered")
	}
	if err := Register(&Spec{Name: "broken-test-spec"}); err == nil {
		t.Error("non-compiling spec registered")
	}
}

// TestRunStreamsAndCancels: exp.Run streams per-job results in finalization
// order and honours cancellation with partial results (single worker keeps
// it deterministic on the single-core container).
func TestRunStreamsAndCancels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var streamed []string
	opt := runner.Options{Jobs: 1, Progress: func(done, total int, r runner.JobResult) {
		streamed = append(streamed, r.Job.Variant)
		if done == 3 {
			cancel()
		}
	}}
	rs, err := Run(ctx, Series(sgprsBase("s"), []int{1, 2, 3, 4, 5}), opt)
	if rs == nil {
		t.Fatalf("cancelled run returned no results: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if len(streamed) != 5 {
		t.Errorf("streamed %d results, want all 5 finalized", len(streamed))
	}
	series := rs.Series()["s"]
	if len(series) != 3 {
		t.Errorf("completed points = %d, want 3", len(series))
	}
}

// TestRunCompileError: an uncompilable spec is rejected before any job
// runs.
func TestRunCompileError(t *testing.T) {
	rs, err := Run(context.Background(), &Spec{Name: "bad"}, runner.Options{})
	if rs != nil || err == nil {
		t.Fatalf("Run(bad spec) = %v, %v; want nil + compile error", rs, err)
	}
}

// TestSeriesFoldsByLabel: multi-axis result sets fold into one series per
// expanded label, each over the task axis.
func TestSeriesFoldsByLabel(t *testing.T) {
	s := &Spec{
		Name:     "fold",
		Variants: []sim.RunConfig{sgprsBase("s")},
		Axes:     []Axis{FPS(20, 30), Tasks(2, 4)},
	}
	rs, err := Run(context.Background(), s, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	series := rs.Series()
	if len(series) != 2 {
		t.Fatalf("series = %v", series)
	}
	for _, label := range []string{"s@fps=20", "s@fps=30"} {
		pts := series[label]
		if len(pts) != 2 || pts[0].Tasks != 2 || pts[1].Tasks != 4 {
			t.Errorf("series[%q] = %+v", label, pts)
		}
	}
	// Lower frame rate offers less load, so it completes fewer frames.
	if series["s@fps=20"][0].Summary.TotalFPS >= series["s@fps=30"][0].Summary.TotalFPS {
		t.Error("fps axis had no effect on results")
	}
}

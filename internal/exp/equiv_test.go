package exp

import (
	"context"
	"reflect"
	"testing"

	"sgprs/internal/runner"
	"sgprs/internal/sim"
)

// equivCounts/equivHorizon keep the equivalence sweeps fast while still
// crossing every variant (see runner's determinism tests for the scale
// rationale).
var equivCounts = []int{2, 4}

const equivHorizon = 2

// TestScenarioSpecCompilesToLegacyJobs: the scenario spec expands to
// byte-for-byte the job list the legacy hand-written expansion built —
// the strongest form of the wrapper equivalence claim, without running a
// single simulation.
func TestScenarioSpecCompilesToLegacyJobs(t *testing.T) {
	for _, scenario := range []int{1, 2} {
		legacy, err := runner.ScenarioJobs(scenario, equivCounts, equivHorizon, 1, runner.Options{})
		if err != nil {
			t.Fatal(err)
		}
		spec, err := Scenario(scenario, equivCounts, equivHorizon, 1)
		if err != nil {
			t.Fatal(err)
		}
		c, err := spec.Compile()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(c.Jobs, legacy) {
			t.Errorf("scenario %d: compiled jobs differ from the legacy expansion\n spec:   %+v\n legacy: %+v",
				scenario, c.Jobs, legacy)
		}
	}
}

// TestScenarioSpecBitIdentical is the pinned acceptance test: the
// spec-driven regeneration of scenarios 1 and 2 is bit-identical to the
// sequential reference driver (sim.RunScenario) at worker counts 1, 2,
// and 4.
func TestScenarioSpecBitIdentical(t *testing.T) {
	for _, scenario := range []int{1, 2} {
		ref, err := sim.RunScenario(scenario, equivCounts, equivHorizon, 1)
		if err != nil {
			t.Fatalf("scenario %d reference: %v", scenario, err)
		}
		spec, err := Scenario(scenario, equivCounts, equivHorizon, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4} {
			rs, err := Run(context.Background(), spec, runner.Options{Jobs: workers})
			if err != nil {
				t.Fatalf("scenario %d workers=%d: %v", scenario, workers, err)
			}
			got := &sim.ScenarioRun{
				Scenario:   scenario,
				TaskCounts: rs.TaskCounts,
				Series:     rs.Series(),
				Order:      rs.Order,
			}
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("scenario %d workers=%d: spec-driven output differs from the sequential reference",
					scenario, workers)
			}
		}
	}
}

// TestSeriesSpecBitIdentical pins the SweepSeries wrapper the same way.
func TestSeriesSpecBitIdentical(t *testing.T) {
	base := sim.RunConfig{
		Kind:       sim.KindSGPRS,
		Name:       "sgprs",
		ContextSMs: sim.ContextPool(2, 1.5, 68),
		NumTasks:   1,
		HorizonSec: equivHorizon,
		Seed:       1,
	}
	ref, err := sim.SweepSeries(base, equivCounts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		rs, err := Run(context.Background(), Series(base, equivCounts), runner.Options{Jobs: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got := rs.Series()["sgprs"]; !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d: series spec differs from sequential reference", workers)
		}
	}
}

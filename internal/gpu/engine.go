package gpu

import (
	"fmt"

	"sgprs/internal/des"
)

// workEpsilon absorbs floating-point residue when deciding that a kernel's
// remaining work has hit zero.
const workEpsilon = 1e-9

// kernelStart and kernelFinish are the shared event callbacks for kernel
// launch and completion. Using arg-style events with package-level functions
// (the device is reachable through the kernel's stream) avoids a closure
// allocation per kernel on both paths.
func kernelStart(now des.Time, arg any) {
	k := arg.(*Kernel)
	k.stream.ctx.device.start(k, now)
}

func kernelFinish(now des.Time, arg any) {
	k := arg.(*Kernel)
	k.stream.ctx.device.complete(k, now)
}

// pump starts the next queued kernel on s if the stream is idle. The kernel
// begins executing after the device's launch overhead. Popping advances the
// queue's head index and rewinds the slice once drained, keeping the backing
// array for the next burst.
func (d *Device) pump(s *Stream) {
	if s.running != nil || s.head == len(s.queue) {
		return
	}
	k := s.queue[s.head]
	s.queue[s.head] = nil
	s.head++
	if s.head == len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
	}
	s.running = k
	d.eng.AfterArg(d.cfg.LaunchOverhead, "gpu.launch", kernelStart, k)
}

// start admits k into the running set and recomputes all rates.
func (d *Device) start(k *Kernel, now des.Time) {
	d.advance(now)
	k.started = true
	k.startedAt = now
	k.jitterU = d.rng.Float64()
	k.stream.ctx.activeKernels++
	d.running = append(d.running, k)
	if d.observer != nil {
		d.observer.KernelStarted(k, now)
	}
	if k.OnStart != nil {
		k.OnStart(now)
	}
	d.recompute(now)
}

// advance banks every running kernel's progress for the interval
// [lastUpdate, now] at the rates fixed by the previous recompute.
func (d *Device) advance(now des.Time) {
	dtMS := float64(now-d.lastUpdate) / float64(des.Millisecond)
	d.lastUpdate = now
	if dtMS <= 0 {
		return
	}
	for _, k := range d.running {
		remaining := dtMS
		if k.remainingFixed > 0 {
			df := remaining
			if df > k.remainingFixed {
				df = k.remainingFixed
			}
			k.remainingFixed -= df
			remaining -= df
		}
		if remaining > 0 && k.remainingWork > 0 {
			done := remaining * k.rate
			if done > k.remainingWork {
				done = k.remainingWork
			}
			k.remainingWork -= done
			d.workDone += done
			d.busySMTime += k.effSMs * remaining / 1000
		}
	}
}

// recompute reassigns effective SM shares and rates to every running kernel
// and reschedules their completion events. It implements the four-layer
// sharing model described in the package comment.
func (d *Device) recompute(now des.Time) {
	// Per-context priority-weight sums and total demand.
	weightSum := d.scratchFloats(&d.weightScratch)
	demand := 0
	for _, ctx := range d.contexts {
		if ctx.activeKernels > 0 {
			demand += ctx.sms
		}
	}
	for _, k := range d.running {
		weightSum[k.stream.ctx.id] += k.stream.priority.weight()
	}
	ratio := float64(demand) / float64(d.cfg.TotalSMs)

	// SM allocation per context by two-level waterfilling: the device's
	// SMs go to busy contexts in proportion to their active kernel
	// weight, but a context can never exceed its own SM allocation.
	// When the pool is not over-subscribed every busy context simply
	// receives its full allocation; when it is, SMs follow the load —
	// which is exactly the benefit of larger (over-subscribed) contexts:
	// a context with more runnable work can soak up SMs a rigid small
	// partition could not.
	alloc := d.waterfill(weightSum)

	// First pass: raw gains from intra-context weighted splits.
	var gainSum float64
	for _, k := range d.running {
		ctx := k.stream.ctx
		share := alloc[ctx.id] * k.stream.priority.weight() / weightSum[ctx.id]
		k.effSMs = share
		gain := k.aggregateGain(d.model, k.effSMs)
		if k.remainingWork > workEpsilon && gain <= 0 {
			panic(fmt.Sprintf("gpu: kernel %q has work but zero gain at %.2f SMs", k.Label, k.effSMs))
		}
		k.rate = gain
		gainSum += gain
	}

	// Bandwidth ceiling: proportional scale-down when the sum of gains
	// exceeds the device's aggregate cap. It models cross-kernel DRAM
	// contention and therefore never binds a lone kernel — a single
	// kernel's memory limits are already encoded in its class curve
	// (that is what Figure 1 measures in isolation). Over-subscription
	// wastes a slice of the ceiling itself (context interleaving,
	// thrashed L2): the deterministic contention penalty shrinks the
	// effective cap as the demand ratio grows.
	if len(d.running) >= 2 {
		cap := d.cfg.AggregateGainCap
		if ratio > 1 {
			over := ratio - 1
			cap /= 1 + d.cfg.ContentionPenalty*over*over
		}
		if gainSum > cap {
			f := cap / gainSum
			for _, k := range d.running {
				k.rate *= f
			}
		}
	}

	// Per-kernel contention jitter applies after the ceiling: it is
	// variance the ceiling cannot renormalise away — the paper's "poor
	// predictability" under heavy over-subscription.
	if ratio > 1 {
		over := ratio - 1
		for _, k := range d.running {
			k.rate /= 1 + d.cfg.ContentionJitter*over*k.jitterU
		}
	}

	// Reschedule completions. A kernel whose rate did not change since its
	// finish event was last scheduled keeps that event untouched: progress
	// is linear in time at a fixed rate, so the finish instant computed
	// back then is still the finish instant now — re-deriving it from the
	// banked remainder would only replay the same arithmetic (modulo
	// sub-nanosecond rounding) while paying a heap fix per kernel per
	// running-set change.
	for _, k := range d.running {
		if k.finishEv != nil && k.rate == k.schedRate {
			continue
		}
		var msLeft float64
		switch {
		case k.remainingWork > workEpsilon:
			msLeft = k.remainingFixed + k.remainingWork/k.rate
		default:
			msLeft = k.remainingFixed
		}
		// Ceil to the next nanosecond so the finish event never fires
		// before the work is actually done.
		at := now.Add(des.Time(msLeft*float64(des.Millisecond)) + 1)
		k.schedRate = k.rate
		if k.finishEv == nil {
			k.finishEv = d.eng.ScheduleArg(at, "gpu.finish", kernelFinish, k)
		} else {
			d.eng.Reschedule(k.finishEv, at)
		}
	}
}

// scratchFloats returns *buf resized to the context count and zeroed.
func (d *Device) scratchFloats(buf *[]float64) []float64 {
	n := len(d.contexts)
	if cap(*buf) < n {
		*buf = make([]float64, n)
	} else {
		*buf = (*buf)[:n]
		clear(*buf)
	}
	return *buf
}

// waterfill distributes the device's SMs across busy contexts in proportion
// to their active kernel weights, capping each context at its own SM
// allocation and redistributing the surplus until it is absorbed. The result
// is indexed by context ID; idle contexts get zero. The returned slice is a
// scratch buffer owned by the device, valid until the next recompute.
func (d *Device) waterfill(weightSum []float64) []float64 {
	alloc := d.scratchFloats(&d.allocScratch)
	capped := d.cappedScratch
	if cap(capped) < len(d.contexts) {
		capped = make([]bool, len(d.contexts))
		d.cappedScratch = capped
	} else {
		capped = capped[:len(d.contexts)]
		clear(capped)
	}
	remaining := float64(d.cfg.TotalSMs)
	for {
		var openWeight float64
		for _, ctx := range d.contexts {
			if weightSum[ctx.id] > 0 && !capped[ctx.id] {
				openWeight += weightSum[ctx.id]
			}
		}
		if openWeight == 0 || remaining <= 0 {
			return alloc
		}
		progress := false
		for _, ctx := range d.contexts {
			if weightSum[ctx.id] == 0 || capped[ctx.id] {
				continue
			}
			want := remaining * weightSum[ctx.id] / openWeight
			if want >= float64(ctx.sms) {
				alloc[ctx.id] = float64(ctx.sms)
				capped[ctx.id] = true
				progress = true
			}
		}
		if !progress {
			// Nobody hit a cap: the proportional split stands.
			for _, ctx := range d.contexts {
				if weightSum[ctx.id] > 0 && !capped[ctx.id] {
					alloc[ctx.id] = remaining * weightSum[ctx.id] / openWeight
				}
			}
			return alloc
		}
		// Recompute the pot after removing capped contexts.
		remaining = float64(d.cfg.TotalSMs)
		for _, ctx := range d.contexts {
			if capped[ctx.id] {
				remaining -= float64(ctx.sms)
			}
		}
	}
}

// complete retires k, recomputes the remaining kernels, and pumps the stream.
func (d *Device) complete(k *Kernel, now des.Time) {
	d.advance(now)
	// The finish instant is rounded to nanoseconds, so up to ~1ns of rate
	// can remain numerically; anything beyond that is an engine bug.
	slack := 1e-5 * (1 + k.rate)
	if k.remainingWork > slack || k.remainingFixed > slack {
		panic(fmt.Sprintf("gpu: kernel %q completed with %.3g ms work and %.3g ms fixed left",
			k.Label, k.remainingWork, k.remainingFixed))
	}
	for i, r := range d.running {
		if r == k {
			d.running = append(d.running[:i], d.running[i+1:]...)
			break
		}
	}
	k.started = false
	// The finish event has just fired and the device is its only holder:
	// hand it back to the engine's pool for the next kernel.
	d.eng.Recycle(k.finishEv)
	k.finishEv = nil
	k.stream.ctx.activeKernels--
	s := k.stream
	s.running = nil
	d.completedKernels++
	d.recompute(now)
	if d.observer != nil {
		d.observer.KernelFinished(k, now)
	}
	if k.OnComplete != nil {
		k.OnComplete(now)
	}
	// OnDone runs last and hands ownership back to the scheduler: the
	// kernel may be reset and reused before it returns, so no field of k
	// is read past this point.
	if k.OnDone != nil {
		k.OnDone(k, now)
	}
	d.pump(s)
}

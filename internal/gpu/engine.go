package gpu

import (
	"fmt"
	"math"

	"sgprs/internal/des"
)

// workEpsilon absorbs floating-point residue when deciding that a kernel's
// remaining work has hit zero.
const workEpsilon = 1e-9

// gainQScale is the fixed-point scale of the conservative gain-sum bound
// (DESIGN.md §10). Quantized gains are integers, so the bound can be
// maintained with exact += / -= arithmetic across millions of running-set
// transitions — a float accumulator would drift, and a drifted bound could
// claim the aggregate ceiling is slack when the exact sweep would find it
// binding.
const gainQScale = 1 << 20

// quantizeGain rounds a gain up onto the fixed-point grid, plus one extra
// quantum (≈1e-6) that dominates every float-rounding effect separating the
// tracked bound from the slow path's exact admission-ordered summation.
func quantizeGain(g float64) int64 {
	q := math.Ceil(g * gainQScale)
	if q >= math.MaxInt64/4 {
		return math.MaxInt64 / 4
	}
	return int64(q) + 1
}

// quantizeCeiling rounds the aggregate ceiling down onto the same grid, so
// bound ≤ ceilingQ implies the exact gain sum cannot exceed the ceiling.
func quantizeCeiling(ceiling float64) int64 {
	f := ceiling * gainQScale
	if f >= math.MaxInt64/4 {
		return math.MaxInt64 / 4
	}
	return int64(f)
}

// kernelStart and kernelFinish are the shared event callbacks for kernel
// launch and completion. Using arg-style events with package-level functions
// (the device is reachable through the kernel's stream) avoids a closure
// allocation per kernel on both paths.
func kernelStart(now des.Time, arg any) {
	k := arg.(*Kernel)
	// A nil stream means the launch was cancelled while the kernel sat in
	// its launch-overhead window (Device.CancelLaunch): the detached event
	// still fires, but the kernel no longer belongs to any device.
	if k.stream == nil {
		return
	}
	k.stream.ctx.device.start(k, now)
}

func kernelFinish(now des.Time, arg any) {
	k := arg.(*Kernel)
	k.stream.ctx.device.complete(k, now)
}

// pump starts the next queued kernel on s if the stream is idle. The kernel
// begins executing after the device's launch overhead. Popping advances the
// queue's head index and rewinds the slice once drained, keeping the backing
// array for the next burst.
func (d *Device) pump(s *Stream) {
	if s.running != nil || s.head == len(s.queue) {
		return
	}
	k := s.queue[s.head]
	s.queue[s.head] = nil
	s.head++
	if s.head == len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
	}
	s.running = k
	d.eng.AfterArgMonotone(d.cfg.LaunchOverhead, "gpu.launch", kernelStart, k)
}

// start admits k into the running set, updates the incrementally maintained
// per-context aggregates, and recomputes rates.
func (d *Device) start(k *Kernel, now des.Time) {
	d.advance(now)
	k.started = true
	k.startedAt = now
	d.kernelSeq++
	k.launchSeq = d.kernelSeq
	k.jitterU = d.rng.Float64()
	ctx := k.stream.ctx
	if ctx.activeKernels == 0 {
		d.busyDemand += ctx.sms
	}
	ctx.activeKernels++
	ctx.weightSum += k.stream.priority.weight()
	ctx.running = append(ctx.running, k)
	d.running = append(d.running, k)
	if d.observer != nil {
		d.observer.KernelStarted(k, now)
	}
	if k.OnStart != nil {
		k.OnStart(now)
	}
	if k.OnBegin != nil {
		k.OnBegin(k, now)
	}
	// The fault hook runs last before rates are derived: work it inflates
	// (WCET overruns) flows into this launch's very first rate assignment.
	if d.hook != nil {
		d.hook.KernelLaunched(k, now)
	}
	d.recompute(now, ctx)
}

// advance banks every running kernel's progress for the interval
// [lastUpdate, now] at the rates fixed by the previous recompute.
func (d *Device) advance(now des.Time) {
	dtMS := float64(now-d.lastUpdate) / float64(des.Millisecond)
	d.lastUpdate = now
	if dtMS <= 0 {
		return
	}
	// Accumulate through locals: the adds happen in the identical order
	// with identical operands, but the compiler cannot keep the device
	// fields in registers across the kernel writes on its own.
	workDone, busySMTime := d.workDone, d.busySMTime
	for _, k := range d.running {
		remaining := dtMS
		if k.remainingFixed > 0 {
			df := remaining
			if df > k.remainingFixed {
				df = k.remainingFixed
			}
			k.remainingFixed -= df
			remaining -= df
		}
		if remaining > 0 && k.remainingWork > 0 {
			done := remaining * k.rate
			if done > k.remainingWork {
				done = k.remainingWork
			}
			//sgprs:allow floatfold — per-kernel countdown: the lone += (fault-injection work inflation, Kernel.InflateWork) happens at launch, before any decrement
			k.remainingWork -= done
			busy := k.effSMs * remaining / 1000
			workDone += done
			busySMTime += busy
			if d.recording {
				d.recWork = append(d.recWork, done)
				d.recBusy = append(d.recBusy, busy)
			}
		}
	}
	d.workDone, d.busySMTime = workDone, busySMTime
}

// recompute reassigns effective SM shares and rates after the running set
// changed in the touched context, implementing the four-layer sharing model
// described in the package comment.
//
// It is incremental (DESIGN.md §10). When the device is not over-subscribed
// and the previous recompute was too (d.shapeValid), untouched contexts are
// provably unaffected by the transition: at demand ≤ TotalSMs waterfilling
// hands every busy context exactly its own allocation, so a context's shares
// — and therefore its kernels' pure gains — depend only on its own weight
// sum, which only the touched context changed. Only the touched context's
// gains are re-derived; three tiers then finish the transition:
//
//  1. Fast path: the incrementally tracked fixed-point bound proves the
//     aggregate ceiling cannot bind. Only touched kernels get new rates and
//     reschedules; untouched contexts keep their rates and their scheduled
//     finish events.
//  2. Lean ceiling path: the bound cannot rule the ceiling out, so the exact
//     admission-ordered gain sum is rebuilt from the cached per-kernel pure
//     gains — the same floats the full sweep would add in the same order —
//     and the ceiling factor is applied without waterfilling or re-deriving
//     any untouched gain.
//  3. Full sweep (fullRecompute): over-subscription (ratio > 1) or a
//     reference-mode device. Float arithmetic there is byte-for-byte the
//     original engine's.
//
// Every tier assigns bit-identical rates to what the full sweep would, so
// the path taken can never alter simulation output. The tentative shares
// written while refreshing the touched context are safe: fullRecompute
// overwrites every kernel from scratch.
func (d *Device) recompute(now des.Time, touched *Context) {
	if d.cfg.DisableIncremental || !d.shapeValid || d.busyDemand > d.effSMs {
		d.fullRecompute(now)
		return
	}
	// Refresh the touched context's shares and pure gains (the only ones
	// the transition can have changed) and its slice of the ceiling bound.
	var ctxGainQ int64
	if touched.weightSum > 0 {
		touched.setShares(float64(touched.sms))
		for _, k := range touched.running {
			share := touched.share(k)
			k.effSMs = share
			gain := k.gainV0
			if !k.aggOK || share != k.gainN0 {
				gain = k.gainAt(d.model, share)
			}
			if k.remainingWork > workEpsilon && gain <= 0 {
				panic(fmt.Sprintf("gpu: kernel %q has work but zero gain at %.2f SMs", k.Label, k.effSMs))
			}
			k.pureGain = gain
			ctxGainQ += quantizeGain(gain)
		}
	}
	d.gainBoundQ += ctxGainQ - touched.gainQ
	touched.gainQ = ctxGainQ

	if len(d.running) < 2 || d.gainBoundQ <= d.ceilingQ {
		// Tier 1: the ceiling provably cannot bind, so every rate is its
		// pure gain. If the previous assignment was ceiling-scaled, the
		// stored rates of untouched kernels are stale and every kernel
		// reverts; otherwise only the touched context moves.
		d.fastRecomputes++
		if d.lastScaled {
			d.lastScaled = false
			for _, k := range d.running {
				k.rate = k.pureGain
			}
			d.reschedule(now, d.running)
			return
		}
		for _, k := range touched.running {
			k.rate = k.pureGain
		}
		d.reschedule(now, touched.running)
		return
	}

	// Tier 2: decide the ceiling exactly, summing the cached pure gains in
	// admission order — the identical floats, added in the identical
	// order, as the full sweep's first pass.
	d.leanRecomputes++
	var gainSum float64
	for _, k := range d.running {
		gainSum += k.pureGain
	}
	ceiling := d.cfg.AggregateGainCap
	if gainSum > ceiling {
		d.lastScaled = true
		f := ceiling / gainSum
		for _, k := range d.running {
			k.rate = k.pureGain * f
		}
		d.reschedule(now, d.running)
		return
	}
	if d.lastScaled {
		d.lastScaled = false
		for _, k := range d.running {
			k.rate = k.pureGain
		}
		d.reschedule(now, d.running)
		return
	}
	for _, k := range touched.running {
		k.rate = k.pureGain
	}
	d.reschedule(now, touched.running)
}

// fullRecompute is the reference sweep over every running kernel. Its float
// arithmetic — the per-kernel share and gain expressions and the
// admission-ordered gainSum accumulation — is byte-for-byte the original
// full-recompute engine's, so slow-path results never depend on how many
// fast-path transitions preceded them.
func (d *Device) fullRecompute(now des.Time) {
	d.fullRecomputes++
	ratio := float64(d.busyDemand) / float64(d.effSMs)

	// SM allocation per context by two-level waterfilling: the device's
	// SMs go to busy contexts in proportion to their active kernel
	// weight, but a context can never exceed its own SM allocation.
	// When the pool is not over-subscribed every busy context simply
	// receives its full allocation; when it is, SMs follow the load —
	// which is exactly the benefit of larger (over-subscribed) contexts:
	// a context with more runnable work can soak up SMs a rigid small
	// partition could not.
	alloc := d.waterfill()

	// First pass: raw gains from intra-context weighted splits. The
	// fixed-point gain bound is only consumed by the incremental tiers,
	// which require ratio ≤ 1, so quantization is skipped entirely under
	// over-subscription (the bound goes stale there; the next ratio ≤ 1
	// full sweep rebuilds it before any tier reads it).
	var gainSum float64
	for _, c := range d.contexts {
		if c.weightSum > 0 {
			c.setShares(alloc[c.id])
		}
	}
	if ratio <= 1 {
		for _, c := range d.contexts {
			c.gainQ = 0
		}
		for _, k := range d.running {
			c := k.stream.ctx
			share := c.share(k)
			k.effSMs = share
			gain := k.gainV0
			if !k.aggOK || share != k.gainN0 {
				gain = k.gainAt(d.model, share)
			}
			if k.remainingWork > workEpsilon && gain <= 0 {
				panic(fmt.Sprintf("gpu: kernel %q has work but zero gain at %.2f SMs", k.Label, k.effSMs))
			}
			k.rate = gain
			k.pureGain = gain
			c.gainQ += quantizeGain(gain)
			gainSum += gain
		}
		d.gainBoundQ = 0
		for _, c := range d.contexts {
			d.gainBoundQ += c.gainQ
		}
	} else {
		for _, k := range d.running {
			c := k.stream.ctx
			share := c.share(k)
			k.effSMs = share
			gain := k.gainV0
			if !k.aggOK || share != k.gainN0 {
				gain = k.gainAt(d.model, share)
			}
			if k.remainingWork > workEpsilon && gain <= 0 {
				panic(fmt.Sprintf("gpu: kernel %q has work but zero gain at %.2f SMs", k.Label, k.effSMs))
			}
			k.rate = gain
			k.pureGain = gain
			gainSum += gain
		}
	}

	// Bandwidth ceiling: proportional scale-down when the sum of gains
	// exceeds the device's aggregate cap. It models cross-kernel DRAM
	// contention and therefore never binds a lone kernel — a single
	// kernel's memory limits are already encoded in its class curve
	// (that is what Figure 1 measures in isolation). Over-subscription
	// wastes a slice of the ceiling itself (context interleaving,
	// thrashed L2): the deterministic contention penalty shrinks the
	// effective cap as the demand ratio grows.
	scaled := false
	var f float64
	if len(d.running) >= 2 {
		ceiling := d.cfg.AggregateGainCap
		if ratio > 1 {
			over := ratio - 1
			ceiling /= 1 + d.cfg.ContentionPenalty*over*over
		}
		if gainSum > ceiling {
			scaled = true
			f = ceiling / gainSum
		}
	}

	// Per-kernel contention jitter applies after the ceiling: it is
	// variance the ceiling cannot renormalise away — the paper's "poor
	// predictability" under heavy over-subscription. Both adjustments are
	// per-kernel-independent, so one fused pass applies them in the same
	// per-kernel order as two separate sweeps would.
	// The incremental tiers may run next only if this sweep used the rigid
	// demand-fits allocation (their share reuse depends on it), and must
	// know whether the stored rates are pure share-gains or ceiling-scaled.
	d.shapeValid = ratio <= 1
	d.lastScaled = scaled || ratio > 1

	// Apply the adjustments fused with the reschedule sweep. Every
	// adjustment is per-kernel-independent and runs in the same per-kernel
	// order as separate sweeps would, so the arithmetic — and the engine
	// calls' sequence numbering — is unchanged.
	switch {
	case scaled && ratio > 1:
		cj := d.cfg.ContentionJitter * (ratio - 1)
		for _, k := range d.running {
			k.rate *= f
			k.rate /= 1 + cj*k.jitterU
			d.rescheduleOne(now, k)
		}
	case scaled:
		for _, k := range d.running {
			k.rate *= f
			d.rescheduleOne(now, k)
		}
	case ratio > 1:
		cj := d.cfg.ContentionJitter * (ratio - 1)
		for _, k := range d.running {
			k.rate /= 1 + cj*k.jitterU
			d.rescheduleOne(now, k)
		}
	default:
		d.reschedule(now, d.running)
	}
}

// reschedule refreshes the completion events of the given kernels. A kernel
// whose rate did not change since its finish event was last scheduled keeps
// that event untouched: progress is linear in time at a fixed rate, so the
// finish instant computed back then is still the finish instant now —
// re-deriving it from the banked remainder would only replay the same
// arithmetic (modulo sub-nanosecond rounding) while paying a heap fix per
// kernel per running-set change.
func (d *Device) reschedule(now des.Time, kernels []*Kernel) {
	for _, k := range kernels {
		d.rescheduleOne(now, k)
	}
}

// rescheduleOne refreshes one kernel's completion event (see reschedule).
func (d *Device) rescheduleOne(now des.Time, k *Kernel) {
	if k.finishEv != nil && k.rate == k.schedRate {
		return
	}
	var msLeft float64
	switch {
	case k.remainingWork > workEpsilon:
		msLeft = k.remainingFixed + k.remainingWork/k.rate
	default:
		msLeft = k.remainingFixed
	}
	// Ceil to the next nanosecond so the finish event never fires
	// before the work is actually done.
	at := now.Add(des.Time(msLeft*float64(des.Millisecond)) + 1)
	k.schedRate = k.rate
	if k.finishEv == nil {
		k.finishEv = d.eng.ScheduleArg(at, "gpu.finish", kernelFinish, k)
	} else {
		d.eng.Reschedule(k.finishEv, at)
	}
}

// scratchFloats returns *buf resized to the context count and zeroed.
func (d *Device) scratchFloats(buf *[]float64) []float64 {
	n := len(d.contexts)
	if cap(*buf) < n {
		*buf = make([]float64, n)
	} else {
		*buf = (*buf)[:n]
		clear(*buf)
	}
	return *buf
}

// waterfill distributes the device's SMs across busy contexts (weightSum > 0)
// in proportion to their active kernel weights, capping each context at its
// own SM allocation and redistributing the surplus until it is absorbed. The
// result is indexed by context ID; idle contexts get zero. The returned slice
// is a scratch buffer owned by the device, valid until the next recompute.
//
// When the busy contexts' summed allocations fit the device, the loop is
// skipped entirely: every busy context receives exactly its full allocation.
// That early out is bit-identical to running the loop. Weight sums are exact
// small integers (priority weights are 1 and 3), so each round's
// want = remaining·w/openWeight rounds to a float ≥ ctx.sms whenever its
// rational value is — ctx.sms is exactly representable — and since the wants
// of the uncapped contexts sum to remaining ≥ their summed allocations, some
// context caps (at exactly float64(ctx.sms)) in every round until none
// remain. The loop can never fall through to a proportional split below a
// busy context's allocation when demand fits.
func (d *Device) waterfill() []float64 {
	alloc := d.scratchFloats(&d.allocScratch)
	demand := 0
	for _, ctx := range d.contexts {
		if ctx.weightSum > 0 {
			demand += ctx.sms
		}
	}
	if demand <= d.effSMs {
		for _, ctx := range d.contexts {
			if ctx.weightSum > 0 {
				alloc[ctx.id] = float64(ctx.sms)
			}
		}
		return alloc
	}
	capped := d.cappedScratch
	if cap(capped) < len(d.contexts) {
		capped = make([]bool, len(d.contexts))
		d.cappedScratch = capped
	} else {
		capped = capped[:len(d.contexts)]
		clear(capped)
	}
	remaining := float64(d.effSMs)
	for {
		var openWeight float64
		for _, ctx := range d.contexts {
			if ctx.weightSum > 0 && !capped[ctx.id] {
				openWeight += ctx.weightSum
			}
		}
		if openWeight == 0 || remaining <= 0 {
			return alloc
		}
		progress := false
		for _, ctx := range d.contexts {
			if ctx.weightSum == 0 || capped[ctx.id] {
				continue
			}
			want := remaining * ctx.weightSum / openWeight
			if want >= float64(ctx.sms) {
				alloc[ctx.id] = float64(ctx.sms)
				capped[ctx.id] = true
				progress = true
			}
		}
		if !progress {
			// Nobody hit a cap: the proportional split stands.
			for _, ctx := range d.contexts {
				if ctx.weightSum > 0 && !capped[ctx.id] {
					alloc[ctx.id] = remaining * ctx.weightSum / openWeight
				}
			}
			return alloc
		}
		// Recompute the pot after removing capped contexts.
		remaining = float64(d.effSMs)
		for _, ctx := range d.contexts {
			if capped[ctx.id] {
				remaining -= float64(ctx.sms)
			}
		}
	}
}

// complete retires k, recomputes the remaining kernels, and pumps the stream.
func (d *Device) complete(k *Kernel, now des.Time) {
	d.advance(now)
	// The finish instant is rounded to nanoseconds, so up to ~1ns of rate
	// can remain numerically; anything beyond that is an engine bug.
	slack := 1e-5 * (1 + k.rate)
	if k.remainingWork > slack || k.remainingFixed > slack {
		panic(fmt.Sprintf("gpu: kernel %q completed with %.3g ms work and %.3g ms fixed left",
			k.Label, k.remainingWork, k.remainingFixed))
	}
	for i, r := range d.running {
		if r == k {
			d.running = append(d.running[:i], d.running[i+1:]...)
			break
		}
	}
	ctx := k.stream.ctx
	for i, r := range ctx.running {
		if r == k {
			ctx.running = append(ctx.running[:i], ctx.running[i+1:]...)
			break
		}
	}
	k.started = false
	// The finish event has just fired and the device is its only holder:
	// hand it back to the engine's pool for the next kernel.
	d.eng.Recycle(k.finishEv)
	k.finishEv = nil
	ctx.activeKernels--
	if ctx.activeKernels == 0 {
		d.busyDemand -= ctx.sms
	}
	//sgprs:allow floatfold — priority weights are small exact integers; integer-float += / -= never rounds (DESIGN.md §10)
	ctx.weightSum -= k.stream.priority.weight()
	s := k.stream
	s.running = nil
	d.completedKernels++
	d.recompute(now, ctx)
	if d.observer != nil {
		d.observer.KernelFinished(k, now)
	}
	if k.OnComplete != nil {
		k.OnComplete(now)
	}
	// The fault hook must see the kernel before OnDone can Reset it.
	if d.hook != nil {
		d.hook.KernelRetired(k, now)
	}
	// OnDone runs last and hands ownership back to the scheduler: the
	// kernel may be reset and reused before it returns, so no field of k
	// is read past this point.
	if k.OnDone != nil {
		k.OnDone(k, now)
	}
	d.pump(s)
}

// Abort removes a running kernel from the device mid-flight — the transient
// kernel-fault injection point. Progress up to now is banked (the work was
// genuinely executed before the fault), then the kernel is evicted exactly as
// complete would evict it — running-set removal, finish-event recycling,
// context aggregates, rate recompute, stream pump — except that no completion
// accounting or lifecycle callback fires: the fault injector drives recovery
// explicitly through the scheduler. On return the kernel is detached
// (Stream() == nil) with its partial remainders intact, so a recovery policy
// may Submit it again (a fresh run from scratch: Submit re-derives the
// remainders) or Reset it for the free list. Aborting a kernel that is not
// running is a programming error and panics.
func (d *Device) Abort(k *Kernel, now des.Time) {
	if !k.started {
		panic(fmt.Sprintf("gpu: abort of non-running kernel %q", k.Label))
	}
	d.advance(now)
	for i, r := range d.running {
		if r == k {
			d.running = append(d.running[:i], d.running[i+1:]...)
			break
		}
	}
	ctx := k.stream.ctx
	for i, r := range ctx.running {
		if r == k {
			ctx.running = append(ctx.running[:i], ctx.running[i+1:]...)
			break
		}
	}
	k.started = false
	// Unlike complete, the finish event is still pending: Recycle removes
	// it from the queue before pooling it.
	if k.finishEv != nil {
		d.eng.Recycle(k.finishEv)
		k.finishEv = nil
	}
	ctx.activeKernels--
	if ctx.activeKernels == 0 {
		d.busyDemand -= ctx.sms
	}
	//sgprs:allow floatfold — priority weights are small exact integers; integer-float += / -= never rounds (DESIGN.md §10)
	ctx.weightSum -= k.stream.priority.weight()
	s := k.stream
	s.running = nil
	k.stream = nil
	d.recompute(now, ctx)
	d.pump(s)
}

// CancelLaunch retracts a kernel that pump has dispatched but that has not
// started executing — it is sitting in its launch-overhead window, with a
// detached gpu.launch event already in flight. The event cannot be retracted
// (monotone events are engine-owned), so cancellation detaches the kernel
// instead: the stream slot is freed and the pending kernelStart finds a nil
// stream and returns. The caller must treat the kernel as leaked — the
// in-flight event still references it, so recycling it through a free list
// would let a later Submit race the stale start. Cancelling a kernel that is
// already running (use Abort) or not dispatched is a programming error.
func (d *Device) CancelLaunch(k *Kernel) {
	if k.started {
		panic(fmt.Sprintf("gpu: cancel of running kernel %q (use Abort)", k.Label))
	}
	if k.stream == nil || k.stream.running != k {
		panic(fmt.Sprintf("gpu: cancel of undispatched kernel %q", k.Label))
	}
	s := k.stream
	s.running = nil
	k.stream = nil
	// Deliberately no pump: cancellation is only used while draining a
	// stream, and the caller empties the queue in the same pass.
}

package gpu

import "sgprs/internal/des"

// This file is the device half of the steady-state fast-forward layer
// (DESIGN.md §12): the canonical encoding of all dynamic device state, the
// identity tags for pending gpu events, the clock warp, and the
// record/replay machinery that extrapolates the accounting integrals
// bit-identically over skipped cycles.
//
// Fast-forward eligibility requires ContentionJitter == 0: each kernel's
// jitterU draw is then divided in as 1 + 0·(ratio−1)·u ≡ 1.0 exactly — a
// bit-exact no-op even over-subscribed — so neither jitterU nor the device
// RNG stream is observable and neither is fingerprinted or warped.

// EncodeState appends a canonical encoding of the device's dynamic state to
// buf and returns the extended slice. argEnc encodes a kernel's scheduler
// payload (the job/stage it executes — the gpu package cannot name rt
// types); it must itself be relative (job indices and instants offset
// against the boundary), since two boundaries one cycle apart must encode
// identically.
//
// Included: the incremental engine's aggregates (busy demand, the
// fixed-point gain bound, shape/scale flags), the un-banked advance interval,
// every running kernel's full execution state in admission order, every
// context's incrementally maintained sums, and every stream's pending-launch
// and queued kernels with their work specs. Excluded as derived or
// unobservable: the per-priority share caches and per-kernel gain memos
// (refreshed before every read), jitterU and the RNG (see above), and the
// accounting integrals and tier counters (outputs, not dynamics).
func (d *Device) EncodeState(buf []byte, now des.Time, argEnc func(buf []byte, arg any) []byte) []byte {
	buf = des.AppendI64(buf, int64(d.busyDemand))
	buf = des.AppendI64(buf, d.gainBoundQ)
	buf = des.AppendBool(buf, d.shapeValid)
	buf = des.AppendBool(buf, d.lastScaled)
	buf = des.AppendTime(buf, now-d.lastUpdate)
	buf = des.AppendU64(buf, uint64(len(d.running)))
	for _, k := range d.running {
		buf = des.AppendU64(buf, uint64(k.stream.ctx.id))
		buf = des.AppendU64(buf, uint64(k.stream.id))
		buf = encodeKernel(buf, k, argEnc)
	}
	for _, c := range d.contexts {
		buf = des.AppendF64(buf, c.weightSum)
		buf = des.AppendI64(buf, c.gainQ)
		buf = des.AppendU64(buf, uint64(c.activeKernels))
		for _, s := range c.streams {
			// A stream's occupant is either a started kernel (already
			// encoded via d.running), a pending-launch kernel (popped from
			// the queue, its gpu.launch event in flight), or nothing.
			switch {
			case s.running == nil:
				buf = append(buf, 0)
			case s.running.started:
				buf = append(buf, 1)
			default:
				buf = append(buf, 2)
				buf = encodeKernel(buf, s.running, argEnc)
			}
			buf = des.AppendU64(buf, uint64(len(s.queue)-s.head))
			for _, k := range s.queue[s.head:] {
				buf = encodeKernel(buf, k, argEnc)
			}
		}
	}
	return buf
}

// encodeKernel appends one kernel's dynamic execution state and work spec.
func encodeKernel(buf []byte, k *Kernel, argEnc func(buf []byte, arg any) []byte) []byte {
	buf = des.AppendF64(buf, k.remainingFixed)
	buf = des.AppendF64(buf, k.remainingWork)
	buf = des.AppendF64(buf, k.rate)
	buf = des.AppendF64(buf, k.effSMs)
	buf = des.AppendF64(buf, k.pureGain)
	buf = des.AppendF64(buf, k.schedRate)
	buf = des.AppendF64(buf, k.FixedMS)
	buf = des.AppendBool(buf, k.aggOK)
	if k.aggOK {
		// The closed-form coefficients are an exact function of Shares —
		// a compact stand-in for the share list.
		buf = des.AppendF64(buf, k.aggW)
		buf = des.AppendF64(buf, k.aggP)
		buf = des.AppendF64(buf, k.aggQ)
	} else {
		buf = des.AppendU64(buf, uint64(len(k.Shares)))
		for _, s := range k.Shares {
			buf = des.AppendU64(buf, uint64(s.Class))
			buf = des.AppendF64(buf, s.Work)
		}
	}
	return argEnc(buf, k.Arg)
}

// EventTag resolves a pending gpu event's identity for the engine
// fingerprint: a started kernel's finish event is named by its admission
// index (the position every accumulation visits it at), a pending launch by
// its context/stream coordinates. Reports false for foreign events.
func (d *Device) EventTag(arg any) (uint64, bool) {
	k, ok := arg.(*Kernel)
	if !ok || k.stream == nil || k.stream.ctx.device != d {
		return 0, false
	}
	if k.started {
		for i, r := range d.running {
			if r == k {
				return uint64(i) + 1, true
			}
		}
	}
	return 1<<32 | uint64(k.stream.ctx.id)<<16 | uint64(k.stream.id), true
}

// Warp translates the device's clocks forward by delta after whole cycles
// were extrapolated: the banked-progress origin and every running kernel's
// start instant shift with the engine clock. No rate, share, or aggregate
// changes — the warped state is exactly the pre-warp state, later.
func (d *Device) Warp(delta des.Time) {
	d.lastUpdate += delta
	for _, k := range d.running {
		k.startedAt += delta
	}
}

// BeginRecording starts capturing the per-advance accounting operands of one
// measurement cycle. advance chains its adds onto the running totals, so the
// replay must re-apply the identical operand sequence — not a per-cycle sum,
// which would round differently.
func (d *Device) BeginRecording() {
	d.recording = true
	d.recWork = d.recWork[:0]
	d.recBusy = d.recBusy[:0]
	d.recCompleted = d.completedKernels
}

// EndRecording stops capturing and reports how many kernels completed during
// the recorded cycle.
func (d *Device) EndRecording() (completedDelta uint64) {
	d.recording = false
	return d.completedKernels - d.recCompleted
}

// ReplayCycles applies the recorded accounting sequence k more times — the
// exact adds, with the exact operands, full simulation of k further cycles
// would have performed (the operands are functions of the recurring state,
// so they repeat verbatim; only the running totals evolve, exactly as they
// would have).
func (d *Device) ReplayCycles(k int, completedDelta uint64) {
	for c := 0; c < k; c++ {
		for i, w := range d.recWork {
			d.workDone += w
			d.busySMTime += d.recBusy[i]
		}
	}
	d.completedKernels += uint64(k) * completedDelta
}

// ForEachKernelArg visits the scheduler payload of every kernel the device
// currently holds — running, pending launch, or queued — so the fast-forward
// layer can enumerate live jobs that only a kernel still references.
func (d *Device) ForEachKernelArg(f func(arg any)) {
	for _, c := range d.contexts {
		for _, s := range c.streams {
			if s.running != nil {
				f(s.running.Arg)
			}
			for _, k := range s.queue[s.head:] {
				f(k.Arg)
			}
		}
	}
}

package gpu

import (
	"testing"

	"sgprs/internal/des"
)

// TestDeviceResetReplaysFreshDevice: a contended, jittered workload run on a
// reset engine+device must complete at bit-identical instants to the same
// workload on fresh ones, and the accounting must restart from zero.
func TestDeviceResetReplaysFreshDevice(t *testing.T) {
	cfg := DefaultConfig() // stochastic terms on: exercises the rng re-fork
	workload := func(eng *des.Engine, dev *Device) (times []des.Time, util float64) {
		ctx1, err := dev.CreateContext("c0", 40)
		if err != nil {
			t.Fatal(err)
		}
		ctx2, err := dev.CreateContext("c1", 40)
		if err != nil {
			t.Fatal(err)
		}
		s1 := ctx1.AddStream("s0", HighPriority)
		s2 := ctx2.AddStream("s0", LowPriority)
		record := func(now des.Time) { times = append(times, now) }
		for i := 0; i < 3; i++ {
			k1 := convKernel("a", 5)
			k1.OnComplete = record
			s1.Submit(k1)
			k2 := convKernel("b", 7)
			k2.OnComplete = record
			s2.Submit(k2)
		}
		eng.Run()
		return times, dev.Utilization()
	}

	freshEng, freshDev := newTestDevice(t, cfg)
	wantTimes, wantUtil := workload(freshEng, freshDev)

	eng, dev := newTestDevice(t, cfg)
	if _, _ = workload(eng, dev); dev.CompletedKernels() == 0 {
		t.Fatal("dirtying run completed nothing")
	}
	eng.Reset()
	if err := dev.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	if len(dev.Contexts()) != 0 || dev.CompletedKernels() != 0 || dev.BusySMSeconds() != 0 {
		t.Fatalf("reset device kept state: %d contexts, %d kernels, %v busy",
			len(dev.Contexts()), dev.CompletedKernels(), dev.BusySMSeconds())
	}
	gotTimes, gotUtil := workload(eng, dev)

	if len(gotTimes) != len(wantTimes) {
		t.Fatalf("completed %d kernels, want %d", len(gotTimes), len(wantTimes))
	}
	for i := range wantTimes {
		if gotTimes[i] != wantTimes[i] {
			t.Errorf("completion %d at %v, want %v (reset run diverged)", i, gotTimes[i], wantTimes[i])
		}
	}
	if gotUtil != wantUtil {
		t.Errorf("utilization %v, want %v", gotUtil, wantUtil)
	}
}

// TestDeviceResetRejectsBadConfig: Reset validates like NewDevice.
func TestDeviceResetRejectsBadConfig(t *testing.T) {
	_, dev := newTestDevice(t, quietConfig())
	bad := quietConfig()
	bad.TotalSMs = 0
	if err := dev.Reset(bad); err == nil {
		t.Error("invalid config accepted by Reset")
	}
}

package gpu

import (
	"fmt"

	"sgprs/internal/des"
	"sgprs/internal/speedup"
)

// Kernel is a unit of GPU execution: a bundle of work (single-SM
// milliseconds, split by speedup class) plus an optional fixed,
// non-scalable time component.
//
// Fixed time models host-side serialisation — synchronous per-op launch gaps
// and partition reconfiguration — which no SM count shrinks. It is consumed
// at wall-clock rate before the scalable work begins.
type Kernel struct {
	Label string
	// Shares is the scalable work by speedup class, in single-SM ms.
	Shares []speedup.WorkShare
	// FixedMS is non-scalable time in milliseconds.
	FixedMS float64
	// OnStart fires when the kernel begins executing (after launch
	// overhead), OnComplete when it finishes. Either may be nil.
	OnStart    func(now des.Time)
	OnComplete func(now des.Time)
	// OnBegin, when non-nil, fires on start after OnStart, receiving the
	// kernel itself — the start-side twin of OnDone: together with Arg it
	// lets schedulers share one callback across every kernel instead of
	// allocating an OnStart closure per launch.
	OnBegin func(k *Kernel, now des.Time)
	// OnDone, when non-nil, fires on completion after OnComplete,
	// receiving the kernel itself. Together with Arg it lets schedulers
	// share one callback across every kernel instead of allocating a
	// closure per launch. It is the last time the device touches the
	// kernel: the callback may Reset and reuse it immediately.
	OnDone func(k *Kernel, now des.Time)
	// Arg is an opaque scheduler payload carried to OnDone.
	Arg any

	stream *Stream

	// Execution state, owned by the device.
	remainingFixed float64 // ms
	remainingWork  float64 // single-SM ms
	rate           float64 // single-SM ms retired per wall ms (current gain)
	effSMs         float64
	jitterU        float64 // per-kernel uniform draw for contention jitter
	started        bool
	finishEv       *des.Event
	startedAt      des.Time
	// launchSeq is the device-wide launch sequence number assigned each
	// time the kernel starts executing. Fault-injection events captured
	// against one launch compare it (together with Running) at fire time:
	// kernels recycle through scheduler free lists, so a retained pointer
	// alone cannot tell "still the launch I armed against" from "a later
	// launch reusing the same struct".
	launchSeq uint64

	// Closed-form aggregate-gain coefficients, precomputed on first use.
	// The composed gain is a weighted harmonic mean over saturating
	// curves gᵢ(n) = Aᵢ·n/(n+Bᵢ):
	//
	//	gain(n) = W / Σ wᵢ/gᵢ(n) = W / (P + Q/n)
	//
	// with W = Σwᵢ, P = Σ wᵢ/Aᵢ, Q = Σ wᵢ·Bᵢ/Aᵢ — so recompute, which
	// re-evaluates every running kernel's gain on every running-set
	// change, pays two flops per kernel instead of a loop over work
	// classes. The coefficients are pure functions of (Shares, model),
	// both fixed for a kernel's lifetime.
	aggW, aggP, aggQ float64
	aggOK            bool
	// gainN0/gainV0 and gainN1/gainV1 memoize the last two (share, gain)
	// evaluations. Under steady-state processor sharing a kernel's share
	// oscillates between the values before and after a neighbour's
	// start/finish pair, so this two-entry cache turns most recompute
	// gain evaluations into a load. Replaying a memoized value is
	// bit-identical to re-dividing: the closed form is a pure function of
	// the share.
	gainN0, gainV0 float64
	gainN1, gainV1 float64
	// pureGain is the kernel's latest pre-ceiling, pre-jitter share-gain —
	// the value the full sweep's first pass assigns. The incremental
	// engine's lean path rebuilds the exact admission-ordered gain sum
	// from these cached values instead of re-deriving every kernel's gain
	// (DESIGN.md §10).
	pureGain float64
	// schedRate is the rate the finish event was last scheduled under;
	// recompute skips the reschedule when the rate is unchanged.
	schedRate float64
}

// aggregateGain returns the model's composed gain at n effective SMs via the
// precomputed closed form.
func (k *Kernel) aggregateGain(m *speedup.Model, n float64) float64 {
	if !k.aggOK {
		for _, p := range k.Shares {
			if p.Work < 0 {
				panic(fmt.Sprintf("gpu: kernel %q has negative work", k.Label))
			}
			if p.Work == 0 {
				continue
			}
			c := m.Curve(p.Class)
			k.aggW += p.Work
			k.aggP += p.Work / c.A
			k.aggQ += p.Work * c.B / c.A
		}
		k.aggOK = true
	}
	if n <= 0 || k.aggW == 0 {
		return 0
	}
	return k.aggW / (k.aggP + k.aggQ/n)
}

// gainAt is aggregateGain behind the kernel's two-entry (share, gain) memo.
// A hit returns the previously computed float for the identical share bits —
// indistinguishable from recomputing it — and a miss evicts the older entry.
func (k *Kernel) gainAt(m *speedup.Model, n float64) float64 {
	if k.aggOK {
		if n == k.gainN0 {
			return k.gainV0
		}
		if n == k.gainN1 {
			k.gainN0, k.gainV0, k.gainN1, k.gainV1 = k.gainN1, k.gainV1, k.gainN0, k.gainV0
			return k.gainV0
		}
	}
	g := k.aggregateGain(m, n)
	k.gainN1, k.gainV1 = k.gainN0, k.gainV0
	k.gainN0, k.gainV0 = n, g
	return g
}

// totalWork sums the scalable work across classes.
func (k *Kernel) totalWork() float64 {
	var w float64
	for _, s := range k.Shares {
		if s.Work < 0 {
			panic(fmt.Sprintf("gpu: kernel %q has negative work", k.Label))
		}
		w += s.Work
	}
	return w
}

// Reset clears the kernel for reuse from a free list. Resetting a submitted
// kernel that has not completed is a programming error and panics.
func (k *Kernel) Reset() {
	if k.started || k.finishEv != nil {
		panic(fmt.Sprintf("gpu: reset of running kernel %q", k.Label))
	}
	*k = Kernel{}
}

// Running reports whether the kernel is currently executing.
func (k *Kernel) Running() bool { return k.started }

// LaunchSeq reports the device-wide sequence number of the kernel's current
// (or most recent) launch — zero before the first start. See launchSeq.
func (k *Kernel) LaunchSeq() uint64 { return k.launchSeq }

// InflateWork multiplies the kernel's remaining scalable work by factor — the
// WCET-overrun injection point — and returns the extra single-SM milliseconds
// injected. It is only meaningful between Submit and the rate recompute of
// the launch (the gpu.Hook's KernelLaunched callback sits exactly there);
// factors at or below 1 are ignored so a disabled overrun model is a no-op.
func (k *Kernel) InflateWork(factor float64) float64 {
	if factor <= 1 {
		return 0
	}
	extra := k.remainingWork * (factor - 1)
	k.remainingWork += extra
	return extra
}

// StartedAt reports when execution began (zero until started).
func (k *Kernel) StartedAt() des.Time { return k.startedAt }

// EffectiveSMs reports the kernel's current effective SM share (diagnostic).
func (k *Kernel) EffectiveSMs() float64 { return k.effSMs }

// IsolatedLatencyMS predicts the kernel's latency if it ran alone in a
// context of n SMs on a device using model m, with no contention. This is
// what the offline profiler measures and what WCET estimates derive from.
func (k *Kernel) IsolatedLatencyMS(m *speedup.Model, n float64) float64 {
	work := k.totalWork()
	if work == 0 {
		return k.FixedMS
	}
	g := m.Aggregate(k.Shares, n)
	if g <= 0 {
		return 0
	}
	return k.FixedMS + work/g
}

// Stream is an in-order kernel queue within a context, with a fixed priority,
// mirroring a CUDA stream. Kernels on one stream serialise; kernels on
// different streams of one context run concurrently and share its SMs.
//
// The FIFO is a head-indexed slice rather than a reslice-on-pop queue: the
// backing array is reclaimed every time the queue drains, so steady-state
// submit/pump churn allocates nothing (a reslice-forward queue leaks its
// capacity and pays one allocation per kernel).
type Stream struct {
	ctx      *Context
	id       int
	name     string
	priority Priority

	queue   []*Kernel
	head    int
	running *Kernel
}

// Context returns the owning context.
func (s *Stream) Context() *Context { return s.ctx }

// Priority reports the stream's priority.
func (s *Stream) Priority() Priority { return s.priority }

// Name reports the diagnostic name.
func (s *Stream) Name() string { return s.name }

// QueueLen reports the number of kernels waiting (excluding a running one).
func (s *Stream) QueueLen() int { return len(s.queue) - s.head }

// Busy reports whether the stream has running or queued work.
func (s *Stream) Busy() bool { return s.running != nil || s.QueueLen() > 0 }

// Running returns the currently executing kernel, or nil.
func (s *Stream) Running() *Kernel { return s.running }

// String renders "ctx0/s1(high)".
func (s *Stream) String() string {
	return fmt.Sprintf("%s/s%d(%s)", s.ctx.name, s.id, s.priority)
}

// Submit enqueues k on the stream. If the stream is idle the kernel starts
// after the device's launch overhead. Submitting a kernel twice or to a
// foreign device is a programming error and panics.
func (s *Stream) Submit(k *Kernel) {
	if k.stream != nil {
		panic(fmt.Sprintf("gpu: kernel %q submitted twice", k.Label))
	}
	if k.totalWork() == 0 && k.FixedMS <= 0 {
		panic(fmt.Sprintf("gpu: kernel %q has no work", k.Label))
	}
	k.stream = s
	k.remainingFixed = k.FixedMS
	k.remainingWork = k.totalWork()
	s.queue = append(s.queue, k)
	s.ctx.device.pump(s)
}

// Stream returns the stream the kernel was submitted to (nil before Submit).
func (k *Kernel) Stream() *Stream { return k.stream }

// Flush detaches every queued (not yet dispatched) kernel from the stream in
// submission order, handing each to fn with its stream pointer already
// cleared — the caller owns it again and may Reset and pool it. The running
// or launch-window kernel, if any, is untouched: evict it with Device.Abort
// or Device.CancelLaunch. This is the device-loss drain path.
func (s *Stream) Flush(fn func(*Kernel)) {
	for i := s.head; i < len(s.queue); i++ {
		k := s.queue[i]
		s.queue[i] = nil
		k.stream = nil
		fn(k)
	}
	s.queue = s.queue[:0]
	s.head = 0
}

package gpu

import "fmt"

// Priority is a CUDA stream priority. The hardware exposes two levels; the
// scheduler's third, logical "medium" level (promoted stages) is mapped onto
// these by the scheduling layer.
type Priority int

// Stream priorities. HighPriority streams receive a larger SM share when
// competing inside one context, modelling the preferential block dispatch of
// CUDA priority streams.
const (
	LowPriority Priority = iota
	HighPriority
)

// String names the priority for traces.
func (p Priority) String() string {
	switch p {
	case LowPriority:
		return "low"
	case HighPriority:
		return "high"
	default:
		return fmt.Sprintf("priority(%d)", int(p))
	}
}

// Priority SM-sharing weights. They are small exact integers on purpose:
// per-context weight sums maintained with += / -= as kernels start and
// finish stay exact (integer float arithmetic never rounds below 2⁵³), so
// the incrementally tracked sums are bit-identical to re-deriving them from
// the running set — the foundation of the incremental rate engine
// (DESIGN.md §10).
const (
	lowWeight  = 1
	highWeight = 3
)

// weight is the SM-sharing weight within a context. High-priority kernels get
// a 3:1 edge over low-priority ones, approximating CUDA's greedy
// high-priority block scheduling without full preemption.
func (p Priority) weight() float64 {
	if p == HighPriority {
		return highWeight
	}
	return lowWeight
}

// Context is a pre-created CUDA-like context owning a fixed SM allocation.
// Moving work between contexts carries no reconfiguration cost — the
// "seamless partition switch" that SGPRS exploits. Streams are created once,
// up front, mirroring the paper's fixed two-high/two-low layout.
type Context struct {
	device  *Device
	id      int
	name    string
	sms     int
	streams []*Stream

	activeKernels int // kernels currently executing in this context

	// Incrementally maintained aggregates (DESIGN.md §10), updated by
	// Device.start/complete instead of being re-derived from the global
	// running set on every recompute:
	//
	//   - weightSum is the summed priority weight of the context's running
	//     kernels — exact, because weights are small integers;
	//   - running lists those kernels in admission order, so a fast-path
	//     recompute visits exactly the kernels the full sweep would, in the
	//     same order;
	//   - gainQ is the context's fixed-point pure-gain sum, the per-context
	//     slice of the device's conservative aggregate-ceiling bound.
	weightSum float64
	running   []*Kernel
	gainQ     int64

	// shareLow/shareHigh are the per-priority intra-context SM shares of
	// the latest recompute. A context's kernels can take only two distinct
	// weights, so the share expression alloc·w/weightSum has only two
	// distinct values — computed once per context instead of once per
	// kernel, with byte-identical arithmetic.
	shareLow, shareHigh float64
}

// setShares precomputes both priority shares at the given SM allocation.
// Only meaningful for busy contexts (weightSum > 0).
func (c *Context) setShares(alloc float64) {
	c.shareLow = alloc * lowWeight / c.weightSum
	c.shareHigh = alloc * highWeight / c.weightSum
}

// share reads the precomputed share for k's priority.
func (c *Context) share(k *Kernel) float64 {
	if k.stream.priority == HighPriority {
		return c.shareHigh
	}
	return c.shareLow
}

// ID reports the context's index in creation order.
func (c *Context) ID() int { return c.id }

// Name reports the diagnostic name.
func (c *Context) Name() string { return c.name }

// SMs reports the context's SM allocation.
func (c *Context) SMs() int { return c.sms }

// Streams lists the context's streams in creation order.
func (c *Context) Streams() []*Stream { return c.streams }

// ActiveKernels reports how many kernels are executing right now.
func (c *Context) ActiveKernels() int { return c.activeKernels }

// AddStream creates a stream with the given priority.
func (c *Context) AddStream(name string, p Priority) *Stream {
	s := &Stream{
		ctx:      c,
		id:       len(c.streams),
		name:     name,
		priority: p,
	}
	c.streams = append(c.streams, s)
	return s
}

// Busy reports whether any stream of the context is occupied (running or
// queued work).
func (c *Context) Busy() bool {
	for _, s := range c.streams {
		if s.Busy() {
			return true
		}
	}
	return false
}

// QueuedKernels reports the total number of kernels queued or running across
// the context's streams.
func (c *Context) QueuedKernels() int {
	n := 0
	for _, s := range c.streams {
		n += s.QueueLen()
		if s.running != nil {
			n++
		}
	}
	return n
}

// String renders "ctx0(name,34sm)".
func (c *Context) String() string {
	return fmt.Sprintf("ctx%d(%s,%dsm)", c.id, c.name, c.sms)
}

package gpu

import "fmt"

// Priority is a CUDA stream priority. The hardware exposes two levels; the
// scheduler's third, logical "medium" level (promoted stages) is mapped onto
// these by the scheduling layer.
type Priority int

// Stream priorities. HighPriority streams receive a larger SM share when
// competing inside one context, modelling the preferential block dispatch of
// CUDA priority streams.
const (
	LowPriority Priority = iota
	HighPriority
)

// String names the priority for traces.
func (p Priority) String() string {
	switch p {
	case LowPriority:
		return "low"
	case HighPriority:
		return "high"
	default:
		return fmt.Sprintf("priority(%d)", int(p))
	}
}

// weight is the SM-sharing weight within a context. High-priority kernels get
// a 3:1 edge over low-priority ones, approximating CUDA's greedy
// high-priority block scheduling without full preemption.
func (p Priority) weight() float64 {
	if p == HighPriority {
		return 3
	}
	return 1
}

// Context is a pre-created CUDA-like context owning a fixed SM allocation.
// Moving work between contexts carries no reconfiguration cost — the
// "seamless partition switch" that SGPRS exploits. Streams are created once,
// up front, mirroring the paper's fixed two-high/two-low layout.
type Context struct {
	device  *Device
	id      int
	name    string
	sms     int
	streams []*Stream

	activeKernels int // kernels currently executing in this context
}

// ID reports the context's index in creation order.
func (c *Context) ID() int { return c.id }

// Name reports the diagnostic name.
func (c *Context) Name() string { return c.name }

// SMs reports the context's SM allocation.
func (c *Context) SMs() int { return c.sms }

// Streams lists the context's streams in creation order.
func (c *Context) Streams() []*Stream { return c.streams }

// ActiveKernels reports how many kernels are executing right now.
func (c *Context) ActiveKernels() int { return c.activeKernels }

// AddStream creates a stream with the given priority.
func (c *Context) AddStream(name string, p Priority) *Stream {
	s := &Stream{
		ctx:      c,
		id:       len(c.streams),
		name:     name,
		priority: p,
	}
	c.streams = append(c.streams, s)
	return s
}

// Busy reports whether any stream of the context is occupied (running or
// queued work).
func (c *Context) Busy() bool {
	for _, s := range c.streams {
		if s.Busy() {
			return true
		}
	}
	return false
}

// QueuedKernels reports the total number of kernels queued or running across
// the context's streams.
func (c *Context) QueuedKernels() int {
	n := 0
	for _, s := range c.streams {
		n += s.QueueLen()
		if s.running != nil {
			n++
		}
	}
	return n
}

// String renders "ctx0(name,34sm)".
func (c *Context) String() string {
	return fmt.Sprintf("ctx%d(%s,%dsm)", c.id, c.name, c.sms)
}

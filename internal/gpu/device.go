// Package gpu is a discrete-event model of a spatially partitioned NVIDIA
// GPU: a pool of streaming multiprocessors (SMs) carved into CUDA-like
// contexts, each exposing priority streams that execute kernels.
//
// This is the substitute for the paper's RTX 2080 Ti + CUDA MPS substrate
// (see DESIGN.md §2). The model reproduces the timing phenomena the
// schedulers react to:
//
//   - sub-linear per-kernel speedup in the SM count (package speedup);
//   - spatial sharing: concurrent kernels within a context split its SMs,
//     weighted by stream priority;
//   - over-subscription: when the summed SM demand of busy contexts exceeds
//     the device, every kernel's effective share shrinks proportionally, a
//     deterministic contention penalty grows with the over-subscription
//     ratio, and a seeded per-kernel jitter widens execution-time variance
//     (the paper's "poor predictability");
//   - a device-wide aggregate throughput ceiling (DRAM bandwidth bound), so
//     carving more partitions cannot multiply total throughput without bound;
//   - per-kernel launch overhead and non-scalable fixed time (synchronous
//     launch and reconfiguration costs are modelled as fixed milliseconds
//     that no amount of SMs shrinks).
//
// Execution is processor sharing: whenever the set of running kernels
// changes, every kernel's progress is banked and its completion event is
// recomputed from the new rates. All randomness is drawn from seeded streams,
// so runs are exactly reproducible.
package gpu

import (
	"fmt"

	"sgprs/internal/des"
	"sgprs/internal/speedup"
)

// Config holds the device parameters. The zero Config is invalid; start from
// DefaultConfig.
type Config struct {
	// TotalSMs is the number of streaming multiprocessors on the device.
	TotalSMs int
	// AggregateGainCap is the device-wide ceiling on the sum of concurrent
	// kernels' speedup gains — the DRAM-bandwidth bound. When concurrent
	// kernels' combined gain exceeds it, all rates scale down
	// proportionally.
	AggregateGainCap float64
	// LaunchOverhead is the host-side latency between a kernel reaching
	// the head of its stream and starting to execute.
	LaunchOverhead des.Time
	// ContentionPenalty is the deterministic slowdown coefficient applied
	// under over-subscription: every running kernel's gain is divided by
	// 1 + ContentionPenalty·(ratio−1)² where ratio = demanded/total SMs.
	// The quadratic keeps mild over-subscription nearly free while making
	// heavy over-subscription (Scenario 2 at 2.0x) genuinely costly.
	ContentionPenalty float64
	// ContentionJitter scales the seeded per-kernel slowdown spread under
	// over-subscription: each kernel draws u ∈ [0,1) at start and its gain
	// is further divided by 1 + ContentionJitter·(ratio−1)·u.
	ContentionJitter float64
	// Seed feeds every stochastic draw in the device.
	Seed uint64
	// DisableIncremental forces the full reference sweep on every
	// running-set change instead of the dirty-context fast path
	// (DESIGN.md §10). Results are bit-identical either way — the
	// equivalence tests run both engines against each other — so this
	// exists only as the retained reference those tests compare to.
	DisableIncremental bool
}

// DefaultConfig returns the calibrated RTX 2080 Ti model parameters.
func DefaultConfig() Config {
	return Config{
		TotalSMs: speedup.DeviceSMs,
		// ≈ the full-device composed ResNet18 gain: a saturated device
		// retires ~1/1.4ms inferences per second in aggregate no
		// matter how it is partitioned (DESIGN.md §4).
		AggregateGainCap:  23.3,
		LaunchOverhead:    des.FromMicros(8),
		ContentionPenalty: 0.008,
		ContentionJitter:  0.03,
		Seed:              1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.TotalSMs <= 0 {
		return fmt.Errorf("gpu: TotalSMs %d must be positive", c.TotalSMs)
	}
	if c.AggregateGainCap <= 0 {
		return fmt.Errorf("gpu: AggregateGainCap %v must be positive", c.AggregateGainCap)
	}
	if c.LaunchOverhead < 0 {
		return fmt.Errorf("gpu: LaunchOverhead %v must be non-negative", c.LaunchOverhead)
	}
	if c.ContentionPenalty < 0 || c.ContentionJitter < 0 {
		return fmt.Errorf("gpu: contention coefficients must be non-negative")
	}
	return nil
}

// Device is the simulated GPU. It is driven by a des.Engine and is not safe
// for concurrent use (the engine is single-threaded by design).
type Device struct {
	eng      *des.Engine
	model    *speedup.Model
	cfg      Config
	rng      *des.RNG
	contexts []*Context

	// running holds the executing kernels in admission order. It is a
	// slice, not a set, so every accumulation over it (work banked,
	// weight sums, gain sums) visits kernels in a deterministic order:
	// floating-point results are then bit-identical across processes,
	// threads, and map-layout changes — a property the parallel
	// experiment runner relies on (DESIGN.md §6).
	running    []*Kernel
	lastUpdate des.Time
	observer   Observer
	hook       Hook

	// effSMs is the device capacity every dynamic-rate computation divides
	// by — DemandRatio, the over-subscription ratio, and the waterfill
	// budget. It equals cfg.TotalSMs except inside an SM-degradation
	// window (fault injection), when SetEffectiveSMs lowers it. Static
	// quantities — context creation bounds, Utilization's denominator,
	// fingerprint encoding — stay on the nominal cfg.TotalSMs: degraded
	// runs are ineligible for fast-forward, and utilisation against
	// nominal capacity is what a fleet operator reads.
	effSMs int

	// kernelSeq numbers kernel launches device-wide; start stamps it onto
	// the launching kernel (Kernel.LaunchSeq).
	kernelSeq uint64

	// Per-context scratch buffers reused across recompute/waterfill calls
	// (indexed by context ID). recompute runs on every running-set change
	// — twice per kernel — so allocating these per call dominated the
	// simulator's allocation profile.
	allocScratch  []float64
	cappedScratch []bool

	// Incremental rate-engine state (DESIGN.md §10), maintained by
	// start/complete alongside the per-context aggregates:
	//
	//   - busyDemand is the summed SM allocation of busy contexts (the
	//     demand the full sweep used to re-derive every recompute);
	//   - gainBoundQ is Σ Context.gainQ, the fixed-point conservative
	//     upper bound on the pure gain sum; ceilingQ is the aggregate
	//     ceiling on the same grid;
	//   - shapeValid records that the previous recompute used the rigid
	//     demand-fits allocation (ratio ≤ 1), making untouched contexts'
	//     cached shares and pure gains reusable;
	//   - lastScaled records that the stored rates carry a ceiling factor
	//     (they are not the pure gains), so dropping back below the
	//     ceiling must revert every kernel, not just the touched context.
	busyDemand int
	gainBoundQ int64
	ceilingQ   int64
	shapeValid bool
	lastScaled bool

	// fast/lean/full count which tier each running-set transition took
	// (diagnostics; RecomputeStats).
	fastRecomputes uint64
	leanRecomputes uint64
	fullRecomputes uint64

	// Accounting.
	completedKernels uint64
	busySMTime       float64 // ∫ (effective SMs in use) dt, in SM·seconds
	workDone         float64 // single-SM milliseconds retired

	// Fast-forward measurement-cycle recording (ff.go): while recording,
	// advance appends each accounting operand pair so ReplayCycles can
	// re-apply the identical add sequence over extrapolated cycles.
	recording    bool
	recWork      []float64
	recBusy      []float64
	recCompleted uint64
}

// deviceRNG derives the device's stochastic stream from its seed; NewDevice
// and Reset must agree on it for a reset device to replay a fresh one.
func deviceRNG(seed uint64) *des.RNG { return des.NewRNG(seed).Fork(0xDE71CE) }

// NewDevice builds a device on the given engine with the given speedup model.
func NewDevice(eng *des.Engine, model *speedup.Model, cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if eng == nil || model == nil {
		return nil, fmt.Errorf("gpu: nil engine or model")
	}
	return &Device{
		eng:        eng,
		model:      model,
		cfg:        cfg,
		rng:        deviceRNG(cfg.Seed),
		ceilingQ:   quantizeCeiling(cfg.AggregateGainCap),
		shapeValid: true,
		effSMs:     cfg.TotalSMs,
	}, nil
}

// Reset returns the device to its just-constructed state under a (possibly
// different) configuration, retaining its allocations — the scratch buffers
// and slice capacities survive, so a reused device recomputes without
// growing. Contexts are discarded (schedulers recreate their pool on
// Attach), the stochastic stream is re-derived from the new seed, and all
// accounting restarts; a run on a reset device is bit-identical to one on a
// fresh device. The caller must Reset the driving engine in the same breath:
// finish events of still-running kernels live in its queue.
func (d *Device) Reset(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	d.cfg = cfg
	d.rng = deviceRNG(cfg.Seed)
	d.contexts = d.contexts[:0]
	d.running = d.running[:0]
	d.lastUpdate = 0
	d.observer = nil
	d.hook = nil
	d.effSMs = cfg.TotalSMs
	d.kernelSeq = 0
	d.busyDemand = 0
	d.gainBoundQ = 0
	d.ceilingQ = quantizeCeiling(cfg.AggregateGainCap)
	d.shapeValid = true
	d.lastScaled = false
	d.fastRecomputes = 0
	d.leanRecomputes = 0
	d.fullRecomputes = 0
	d.completedKernels = 0
	d.busySMTime = 0
	d.workDone = 0
	d.recording = false
	d.recWork = d.recWork[:0]
	d.recBusy = d.recBusy[:0]
	d.recCompleted = 0
	return nil
}

// Observer receives kernel lifecycle callbacks, e.g. for execution tracing.
// Callbacks run synchronously on the simulation goroutine; observers must not
// mutate device state.
type Observer interface {
	// KernelStarted fires when a kernel begins executing on its stream.
	KernelStarted(k *Kernel, now des.Time)
	// KernelFinished fires when a kernel completes.
	KernelFinished(k *Kernel, now des.Time)
}

// SetObserver installs the lifecycle observer (nil to remove).
func (d *Device) SetObserver(o Observer) { d.observer = o }

// Hook intercepts kernel lifecycle transitions for fault injection. Unlike
// Observer it runs at precisely placed points and is allowed to mutate the
// kernel it receives:
//
//   - KernelLaunched fires after the launch's admission bookkeeping but
//     before the device recomputes rates, so work inflated there
//     (Kernel.InflateWork) flows into the very first rate assignment,
//     the waterfill, and the aggregate ceiling;
//   - KernelRetired fires after a completion's bookkeeping and recompute,
//     before OnDone (which may Reset and reuse the kernel).
//
// A Hook is deliberately a separate interface from Observer: HasObserver
// gates diagnostic label formatting, and installing a fault hook must not
// flip that gate.
type Hook interface {
	KernelLaunched(k *Kernel, now des.Time)
	KernelRetired(k *Kernel, now des.Time)
}

// SetHook installs the fault-injection hook (nil to remove).
func (d *Device) SetHook(h Hook) { d.hook = h }

// HasObserver reports whether a lifecycle observer is installed. Schedulers
// use it to skip building per-kernel label strings nobody will read — label
// formatting is pure diagnostics, so eliding it never changes results.
func (d *Device) HasObserver() bool { return d.observer != nil }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Model returns the speedup model the device executes against.
func (d *Device) Model() *speedup.Model { return d.model }

// Engine returns the simulation engine driving the device.
func (d *Device) Engine() *des.Engine { return d.eng }

// Contexts lists the created contexts in creation order.
func (d *Device) Contexts() []*Context { return d.contexts }

// CompletedKernels reports how many kernels have finished.
func (d *Device) CompletedKernels() uint64 { return d.completedKernels }

// BusySMSeconds reports the integral of in-use effective SMs over time.
func (d *Device) BusySMSeconds() float64 { return d.busySMTime }

// Utilization reports mean device utilisation in [0,1] over the elapsed
// simulated time (effective busy SM-time over total SM-time).
func (d *Device) Utilization() float64 {
	elapsed := d.eng.Now().Seconds()
	if elapsed <= 0 {
		return 0
	}
	return d.busySMTime / (elapsed * float64(d.cfg.TotalSMs))
}

// CreateContext carves a context with the given SM allocation. Allocations
// may over-subscribe the device in total (that is the point of the paper's
// context pool), but a single context can never exceed the device.
func (d *Device) CreateContext(name string, sms int) (*Context, error) {
	if sms <= 0 {
		return nil, fmt.Errorf("gpu: context %q SM count %d must be positive", name, sms)
	}
	if sms > d.cfg.TotalSMs {
		return nil, fmt.Errorf("gpu: context %q wants %d SMs, device has %d", name, sms, d.cfg.TotalSMs)
	}
	ctx := &Context{
		device: d,
		id:     len(d.contexts),
		name:   name,
		sms:    sms,
	}
	d.contexts = append(d.contexts, ctx)
	return ctx, nil
}

// DemandRatio reports the current total SM demand of busy contexts divided by
// the device's SM count. Values above 1 mean the device is over-subscribed at
// this instant.
func (d *Device) DemandRatio() float64 {
	return float64(d.busyDemand) / float64(d.effSMs)
}

// EffectiveSMs reports the capacity dynamic-rate computations currently
// divide by — cfg.TotalSMs outside SM-degradation windows.
func (d *Device) EffectiveSMs() int { return d.effSMs }

// SetEffectiveSMs changes the device's effective capacity at time now — the
// SM-degradation injection point. Every running kernel's progress is banked
// at the old rates, then a full recompute re-derives shares, contention, and
// the waterfill against the new capacity, so both schedulers immediately see
// the shrunk (or restored) device. n must be in [1, cfg.TotalSMs]: the model
// degrades the configured device, it never grows it.
func (d *Device) SetEffectiveSMs(n int, now des.Time) error {
	if n < 1 || n > d.cfg.TotalSMs {
		return fmt.Errorf("gpu: effective SMs %d outside [1, %d]", n, d.cfg.TotalSMs)
	}
	if n == d.effSMs {
		return nil
	}
	d.advance(now)
	d.effSMs = n
	d.fullRecompute(now)
	return nil
}

// RecomputeStats reports how many running-set transitions took the
// dirty-context fast path, the lean ceiling path, and the full reference
// sweep (DESIGN.md §10).
func (d *Device) RecomputeStats() (fast, lean, full uint64) {
	return d.fastRecomputes, d.leanRecomputes, d.fullRecomputes
}

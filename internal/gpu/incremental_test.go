package gpu

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sgprs/internal/des"
	"sgprs/internal/speedup"
)

// incrScenario is one randomized workload, replayable onto any device: a
// context/stream layout plus per-stream kernel chains with staggered
// submission times. Ratios span under- and over-subscription, so the
// generated runs exercise all three recompute tiers and the transitions
// between them.
type incrScenario struct {
	cfg      Config
	contexts []incrContext
	// submits are (delay, context, stream, kernel) tuples; kernels on one
	// stream serialise, so later submissions on a busy stream queue.
	submits []incrSubmit
}

type incrContext struct {
	sms     int
	streams []Priority
}

type incrSubmit struct {
	at      des.Time
	ctx     int
	stream  int
	shares  []speedup.WorkShare
	fixedMS float64
}

// randomScenario draws a workload. The config varies the aggregate ceiling
// (tight, calibrated, effectively unbounded) and the contention terms, so
// ceiling-bound, jittered, and pure regimes all occur.
func randomScenario(rng *rand.Rand) incrScenario {
	cfg := DefaultConfig()
	cfg.Seed = rng.Uint64()
	switch rng.Intn(3) {
	case 0:
		cfg.AggregateGainCap = 4 + 20*rng.Float64() // often binding
	case 1:
		cfg.AggregateGainCap = 1e9 // never binding
	}
	if rng.Intn(2) == 0 {
		cfg.ContentionPenalty = 0.05 * rng.Float64()
		cfg.ContentionJitter = 0.1 * rng.Float64()
	}
	sc := incrScenario{cfg: cfg}
	classes := speedup.Classes()
	nCtx := 1 + rng.Intn(4)
	for c := 0; c < nCtx; c++ {
		ctx := incrContext{sms: 1 + rng.Intn(cfg.TotalSMs)}
		for s := 0; s < 1+rng.Intn(4); s++ {
			p := LowPriority
			if rng.Intn(2) == 0 {
				p = HighPriority
			}
			ctx.streams = append(ctx.streams, p)
		}
		sc.contexts = append(sc.contexts, ctx)
	}
	for c, ctx := range sc.contexts {
		for s := range ctx.streams {
			for k := 0; k < 1+rng.Intn(5); k++ {
				sub := incrSubmit{
					at:     des.FromMicros(float64(rng.Intn(4000))),
					ctx:    c,
					stream: s,
				}
				if rng.Intn(8) == 0 {
					sub.fixedMS = 0.2 * rng.Float64()
				}
				if rng.Intn(8) != 0 {
					n := 1 + rng.Intn(3)
					for i := 0; i < n; i++ {
						sub.shares = append(sub.shares, speedup.WorkShare{
							Class: classes[rng.Intn(len(classes))],
							Work:  0.2 + 4*rng.Float64(),
						})
					}
				} else if sub.fixedMS == 0 {
					sub.fixedMS = 0.1
				}
				sc.submits = append(sc.submits, sub)
			}
		}
	}
	return sc
}

// buildRun materialises the scenario on a fresh engine/device pair and
// returns the kernels in construction order plus a completion log.
func buildRun(t *testing.T, sc incrScenario, disableIncremental bool) (*des.Engine, *Device, []*Kernel, *[]string) {
	t.Helper()
	cfg := sc.cfg
	cfg.DisableIncremental = disableIncremental
	eng := des.NewEngine()
	dev, err := NewDevice(eng, speedup.DefaultModel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	streams := make([][]*Stream, len(sc.contexts))
	for c, ic := range sc.contexts {
		ctx, err := dev.CreateContext(fmt.Sprintf("c%d", c), ic.sms)
		if err != nil {
			t.Fatal(err)
		}
		for s, p := range ic.streams {
			streams[c] = append(streams[c], ctx.AddStream(fmt.Sprintf("s%d", s), p))
		}
	}
	log := &[]string{}
	kernels := make([]*Kernel, len(sc.submits))
	for i, sub := range sc.submits {
		i, sub := i, sub
		k := &Kernel{
			Label:   fmt.Sprintf("k%d", i),
			Shares:  sub.shares,
			FixedMS: sub.fixedMS,
		}
		k.OnComplete = func(now des.Time) {
			*log = append(*log, fmt.Sprintf("%s@%d", k.Label, int64(now)))
		}
		kernels[i] = k
		eng.ScheduleFunc(sub.at, "submit", func(des.Time) {
			streams[sub.ctx][sub.stream].Submit(k)
		})
	}
	return eng, dev, kernels, log
}

// TestIncrementalMatchesReferenceEventForEvent is the randomized cross-check
// of DESIGN.md §10: the incremental engine and the retained full-recompute
// reference run the same generated workloads in lockstep, and after every
// single event the clocks and the complete per-kernel execution state must
// agree to the last float bit.
func TestIncrementalMatchesReferenceEventForEvent(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))
		sc := randomScenario(rng)
		engInc, devInc, ksInc, logInc := buildRun(t, sc, false)
		engRef, devRef, ksRef, logRef := buildRun(t, sc, true)
		step := 0
		for {
			aInc := engInc.Step()
			aRef := engRef.Step()
			if aInc != aRef {
				t.Fatalf("trial %d step %d: engines diverge (inc fired=%v ref fired=%v)", trial, step, aInc, aRef)
			}
			if !aInc {
				break
			}
			if engInc.Now() != engRef.Now() {
				t.Fatalf("trial %d step %d: clock %v vs %v", trial, step, engInc.Now(), engRef.Now())
			}
			for i := range ksInc {
				ki, kr := ksInc[i], ksRef[i]
				if math.Float64bits(ki.rate) != math.Float64bits(kr.rate) ||
					math.Float64bits(ki.effSMs) != math.Float64bits(kr.effSMs) ||
					math.Float64bits(ki.remainingWork) != math.Float64bits(kr.remainingWork) ||
					math.Float64bits(ki.remainingFixed) != math.Float64bits(kr.remainingFixed) {
					t.Fatalf("trial %d step %d: kernel %s state diverges:\n inc rate=%x eff=%x work=%x fixed=%x\n ref rate=%x eff=%x work=%x fixed=%x",
						trial, step, ki.Label,
						math.Float64bits(ki.rate), math.Float64bits(ki.effSMs), math.Float64bits(ki.remainingWork), math.Float64bits(ki.remainingFixed),
						math.Float64bits(kr.rate), math.Float64bits(kr.effSMs), math.Float64bits(kr.remainingWork), math.Float64bits(kr.remainingFixed))
				}
			}
			step++
		}
		if devInc.CompletedKernels() != uint64(len(sc.submits)) {
			t.Fatalf("trial %d: %d of %d kernels completed", trial, devInc.CompletedKernels(), len(sc.submits))
		}
		if math.Float64bits(devInc.workDone) != math.Float64bits(devRef.workDone) ||
			math.Float64bits(devInc.busySMTime) != math.Float64bits(devRef.busySMTime) {
			t.Fatalf("trial %d: accounting diverges: work %x vs %x, busy %x vs %x", trial,
				math.Float64bits(devInc.workDone), math.Float64bits(devRef.workDone),
				math.Float64bits(devInc.busySMTime), math.Float64bits(devRef.busySMTime))
		}
		if fmt.Sprint(*logInc) != fmt.Sprint(*logRef) {
			t.Fatalf("trial %d: completion logs diverge:\n%v\n%v", trial, *logInc, *logRef)
		}
		if fast, lean, full := devRef.RecomputeStats(); fast != 0 || lean != 0 || full == 0 {
			t.Fatalf("trial %d: reference device took incremental tiers (fast=%d lean=%d full=%d)", trial, fast, lean, full)
		}
	}
}

// TestRecomputeTiersTaken pins that the tiers actually fire in the regimes
// they were built for — a fast path that never runs would make the
// equivalence suite vacuously green.
func TestRecomputeTiersTaken(t *testing.T) {
	submitChains := func(dev *Device, ctxs []*Context, perStream int) {
		for _, ctx := range ctxs {
			for _, s := range ctx.Streams() {
				for i := 0; i < perStream; i++ {
					s.Submit(convKernel("k", 2))
				}
			}
		}
	}

	// Two rigid half-device contexts, huge ceiling: every transition must
	// take the dirty-context fast path.
	cfg := quietConfig()
	eng, dev := newTestDevice(t, cfg)
	a, _ := dev.CreateContext("a", 34)
	b, _ := dev.CreateContext("b", 34)
	a.AddStream("s0", LowPriority)
	a.AddStream("s1", HighPriority)
	b.AddStream("s0", LowPriority)
	submitChains(dev, []*Context{a, b}, 4)
	eng.Run()
	if fast, lean, full := dev.RecomputeStats(); fast == 0 || lean != 0 || full != 0 {
		t.Errorf("rigid pool with slack ceiling: fast=%d lean=%d full=%d, want all fast", fast, lean, full)
	}

	// Same layout with a binding ceiling: the bound cannot clear it, so
	// the lean tier must decide (and never the full sweep — ratio stays
	// at 1).
	cfg = quietConfig()
	cfg.AggregateGainCap = 8
	eng, dev = newTestDevice(t, cfg)
	a, _ = dev.CreateContext("a", 34)
	b, _ = dev.CreateContext("b", 34)
	a.AddStream("s0", LowPriority)
	a.AddStream("s1", LowPriority)
	b.AddStream("s0", LowPriority)
	submitChains(dev, []*Context{a, b}, 4)
	eng.Run()
	if _, lean, full := dev.RecomputeStats(); lean == 0 || full != 0 {
		t.Errorf("ceiling-bound rigid pool: lean=%d full=%d, want lean only", lean, full)
	}

	// Over-subscribed pool: whenever both contexts are busy the ratio
	// exceeds 1 and the full sweep must run.
	eng, dev = newTestDevice(t, quietConfig())
	a, _ = dev.CreateContext("a", 68)
	b, _ = dev.CreateContext("b", 68)
	a.AddStream("s0", LowPriority)
	b.AddStream("s0", LowPriority)
	submitChains(dev, []*Context{a, b}, 4)
	eng.Run()
	if _, _, full := dev.RecomputeStats(); full == 0 {
		t.Errorf("over-subscribed pool never took the full sweep")
	}

	// Reference mode: only the full sweep, whatever the regime.
	cfg = quietConfig()
	cfg.DisableIncremental = true
	eng, dev = newTestDevice(t, cfg)
	a, _ = dev.CreateContext("a", 34)
	a.AddStream("s0", LowPriority)
	submitChains(dev, []*Context{a}, 3)
	eng.Run()
	if fast, lean, full := dev.RecomputeStats(); fast != 0 || lean != 0 || full == 0 {
		t.Errorf("reference mode: fast=%d lean=%d full=%d, want full only", fast, lean, full)
	}
}

// TestIncrementalStateMaintenance pins the incrementally maintained
// aggregates against re-derivation from the running set at quiescence.
func TestIncrementalStateMaintenance(t *testing.T) {
	eng, dev := newTestDevice(t, quietConfig())
	a, _ := dev.CreateContext("a", 40)
	b, _ := dev.CreateContext("b", 40)
	sa := a.AddStream("hi", HighPriority)
	sb := b.AddStream("lo", LowPriority)
	sa.Submit(convKernel("ka", 60))
	sb.Submit(convKernel("kb", 50))
	// Sample mid-run, while both kernels execute.
	eng.After(des.FromMillis(1), "sample", func(des.Time) {
		if a.weightSum != 3 || b.weightSum != 1 {
			t.Errorf("weight sums = %v/%v, want 3/1", a.weightSum, b.weightSum)
		}
		if dev.busyDemand != 80 {
			t.Errorf("busyDemand = %d, want 80", dev.busyDemand)
		}
		if len(a.running) != 1 || a.running[0].Label != "ka" {
			t.Errorf("context a running list = %v", a.running)
		}
	})
	eng.Run()
	if a.weightSum != 0 || b.weightSum != 0 || dev.busyDemand != 0 {
		t.Errorf("drained device retains weight/demand: %v/%v/%d", a.weightSum, b.weightSum, dev.busyDemand)
	}
	if len(a.running) != 0 || len(b.running) != 0 || len(dev.running) != 0 {
		t.Errorf("drained device retains running lists")
	}
	if dev.gainBoundQ != 0 {
		t.Errorf("drained device retains gain bound %d", dev.gainBoundQ)
	}
}

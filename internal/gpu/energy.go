package gpu

// Energy accounting. The device integrates a simple linear power model over
// simulated time:
//
//	P(t) = IdlePower + PerSMPower · (effective SMs busy at t)
//
// which is the standard first-order GPU power abstraction (static leakage +
// activity-proportional dynamic power). The busy-SM integral is the same one
// utilisation reporting uses, so energy costs nothing extra to track.
//
// Defaults approximate an RTX 2080 Ti: ~55 W idle, 250 W TDP at 68 busy SMs
// → ~2.87 W per active SM.

// PowerModel holds the linear power coefficients, in watts.
type PowerModel struct {
	IdleW  float64 // static power while powered on
	PerSMW float64 // additional power per busy effective SM
}

// DefaultPowerModel returns the RTX 2080 Ti approximation.
func DefaultPowerModel() PowerModel {
	return PowerModel{IdleW: 55, PerSMW: 2.87}
}

// EnergyJoules reports the energy consumed so far under the power model:
// idle power over elapsed time plus dynamic power over the busy-SM integral.
func (d *Device) EnergyJoules(pm PowerModel) float64 {
	elapsed := d.eng.Now().Seconds()
	return pm.IdleW*elapsed + pm.PerSMW*d.busySMTime
}

// AveragePowerW reports mean power draw over the elapsed simulated time.
func (d *Device) AveragePowerW(pm PowerModel) float64 {
	elapsed := d.eng.Now().Seconds()
	if elapsed <= 0 {
		return pm.IdleW
	}
	return d.EnergyJoules(pm) / elapsed
}

// EnergyPerInferenceJ reports energy divided by completed kernels-per-job —
// callers pass the completed inference count (the device only sees kernels).
func (d *Device) EnergyPerInferenceJ(pm PowerModel, inferences int) float64 {
	if inferences <= 0 {
		return 0
	}
	return d.EnergyJoules(pm) / float64(inferences)
}

package gpu

import (
	"math"
	"testing"

	"sgprs/internal/des"
	"sgprs/internal/speedup"
)

func TestEnergyIdleOnly(t *testing.T) {
	eng, dev := newTestDevice(t, quietConfig())
	pm := PowerModel{IdleW: 50, PerSMW: 2}
	eng.RunUntil(des.FromSeconds(2)) // nothing running
	if got := dev.EnergyJoules(pm); math.Abs(got-100) > 1e-9 {
		t.Errorf("idle energy = %v J, want 100", got)
	}
	if got := dev.AveragePowerW(pm); math.Abs(got-50) > 1e-9 {
		t.Errorf("idle power = %v W, want 50", got)
	}
}

func TestEnergyScalesWithWork(t *testing.T) {
	run := func(workMS float64) float64 {
		eng, dev := newTestDevice(t, quietConfig())
		ctx, _ := dev.CreateContext("c", 68)
		ctx.AddStream("s", LowPriority).Submit(convKernel("k", workMS))
		eng.Run()
		eng.RunUntil(des.FromSeconds(1)) // equal elapsed time for both runs
		return dev.EnergyJoules(PowerModel{IdleW: 50, PerSMW: 2})
	}
	light, heavy := run(10), run(40)
	if heavy <= light {
		t.Errorf("4x work should cost more energy: %v vs %v", heavy, light)
	}
	// Dynamic part scales ~4x: heavy-idle ≈ 4·(light-idle).
	idle := 50.0
	ratio := (heavy - idle) / (light - idle)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("dynamic energy ratio = %v, want ~4", ratio)
	}
}

func TestEnergyPerInference(t *testing.T) {
	eng, dev := newTestDevice(t, quietConfig())
	ctx, _ := dev.CreateContext("c", 68)
	s := ctx.AddStream("s", LowPriority)
	for i := 0; i < 10; i++ {
		s.Submit(convKernel("k", 5))
	}
	eng.Run()
	pm := DefaultPowerModel()
	per := dev.EnergyPerInferenceJ(pm, 10)
	if per <= 0 {
		t.Errorf("energy per inference = %v", per)
	}
	if math.Abs(per*10-dev.EnergyJoules(pm)) > 1e-9 {
		t.Error("per-inference energy inconsistent with total")
	}
	if dev.EnergyPerInferenceJ(pm, 0) != 0 {
		t.Error("zero inferences should report 0")
	}
}

func TestDefaultPowerModelScale(t *testing.T) {
	pm := DefaultPowerModel()
	// Full device busy ≈ TDP.
	tdp := pm.IdleW + pm.PerSMW*float64(speedup.DeviceSMs)
	if tdp < 230 || tdp > 270 {
		t.Errorf("full-load power = %v W, want ~250 (2080 Ti TDP)", tdp)
	}
}

func TestAveragePowerZeroTime(t *testing.T) {
	_, dev := newTestDevice(t, quietConfig())
	pm := PowerModel{IdleW: 42, PerSMW: 1}
	if got := dev.AveragePowerW(pm); got != 42 {
		t.Errorf("power at t=0 = %v, want idle", got)
	}
}

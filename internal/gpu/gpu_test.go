package gpu

import (
	"math"
	"testing"
	"testing/quick"

	"sgprs/internal/des"
	"sgprs/internal/speedup"
)

// quietConfig removes stochastic and overhead terms so tests can predict
// latencies in closed form.
func quietConfig() Config {
	cfg := DefaultConfig()
	cfg.LaunchOverhead = 0
	cfg.ContentionPenalty = 0
	cfg.ContentionJitter = 0
	cfg.AggregateGainCap = 1e9
	return cfg
}

func newTestDevice(t *testing.T, cfg Config) (*des.Engine, *Device) {
	t.Helper()
	eng := des.NewEngine()
	dev, err := NewDevice(eng, speedup.DefaultModel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, dev
}

func convKernel(label string, workMS float64) *Kernel {
	return &Kernel{
		Label:  label,
		Shares: []speedup.WorkShare{{Class: speedup.Conv, Work: workMS}},
	}
}

func TestSingleKernelLatency(t *testing.T) {
	eng, dev := newTestDevice(t, quietConfig())
	ctx, err := dev.CreateContext("c0", 68)
	if err != nil {
		t.Fatal(err)
	}
	s := ctx.AddStream("s0", LowPriority)

	var done des.Time
	k := convKernel("k", 32) // 32 single-SM ms
	k.OnComplete = func(now des.Time) { done = now }
	s.Submit(k)
	eng.Run()

	want := 32.0 / speedup.DefaultModel().Gain(speedup.Conv, 68)
	if got := done.Milliseconds(); math.Abs(got-want) > 1e-4 {
		t.Errorf("latency = %.6f ms, want %.6f", got, want)
	}
	if dev.CompletedKernels() != 1 {
		t.Errorf("completed = %d", dev.CompletedKernels())
	}
}

func TestLaunchOverheadDelaysStart(t *testing.T) {
	cfg := quietConfig()
	cfg.LaunchOverhead = des.FromMicros(100)
	eng, dev := newTestDevice(t, cfg)
	ctx, _ := dev.CreateContext("c0", 68)
	s := ctx.AddStream("s0", LowPriority)

	var started des.Time
	k := convKernel("k", 10)
	k.OnStart = func(now des.Time) { started = now }
	s.Submit(k)
	eng.Run()
	if started != des.FromMicros(100) {
		t.Errorf("started at %v, want 100us", started)
	}
}

func TestFixedOnlyKernel(t *testing.T) {
	eng, dev := newTestDevice(t, quietConfig())
	ctx, _ := dev.CreateContext("c0", 34)
	s := ctx.AddStream("s0", LowPriority)
	var done des.Time
	k := &Kernel{Label: "fixed", FixedMS: 2.5, OnComplete: func(n des.Time) { done = n }}
	s.Submit(k)
	eng.Run()
	if math.Abs(done.Milliseconds()-2.5) > 1e-4 {
		t.Errorf("fixed-only latency = %v ms, want 2.5", done.Milliseconds())
	}
}

func TestFixedPlusWorkKernel(t *testing.T) {
	eng, dev := newTestDevice(t, quietConfig())
	ctx, _ := dev.CreateContext("c0", 68)
	s := ctx.AddStream("s0", LowPriority)
	var done des.Time
	k := convKernel("k", 16)
	k.FixedMS = 1.0
	k.OnComplete = func(n des.Time) { done = n }
	s.Submit(k)
	eng.Run()
	want := 1.0 + 16.0/speedup.DefaultModel().Gain(speedup.Conv, 68)
	if got := done.Milliseconds(); math.Abs(got-want) > 1e-4 {
		t.Errorf("latency = %.6f, want %.6f", got, want)
	}
}

func TestStreamSerializesFIFO(t *testing.T) {
	eng, dev := newTestDevice(t, quietConfig())
	ctx, _ := dev.CreateContext("c0", 68)
	s := ctx.AddStream("s0", LowPriority)

	var order []string
	for _, name := range []string{"a", "b", "c"} {
		k := convKernel(name, 10)
		name := name
		k.OnComplete = func(des.Time) { order = append(order, name) }
		s.Submit(k)
	}
	if s.QueueLen() != 2 {
		t.Errorf("queue length = %d, want 2 (one pumped)", s.QueueLen())
	}
	eng.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("completion order = %v", order)
	}
}

func TestIntraContextSharingHalvesSMs(t *testing.T) {
	eng, dev := newTestDevice(t, quietConfig())
	ctx, _ := dev.CreateContext("c0", 68)
	s1 := ctx.AddStream("s1", LowPriority)
	s2 := ctx.AddStream("s2", LowPriority)

	var d1, d2 des.Time
	k1 := convKernel("k1", 32)
	k1.OnComplete = func(n des.Time) { d1 = n }
	k2 := convKernel("k2", 32)
	k2.OnComplete = func(n des.Time) { d2 = n }
	s1.Submit(k1)
	s2.Submit(k2)
	eng.Run()

	want := 32.0 / speedup.DefaultModel().Gain(speedup.Conv, 34)
	if math.Abs(d1.Milliseconds()-want) > 1e-4 || math.Abs(d2.Milliseconds()-want) > 1e-4 {
		t.Errorf("latencies = %.4f, %.4f ms; want both %.4f (34 SMs each)",
			d1.Milliseconds(), d2.Milliseconds(), want)
	}
}

func TestPriorityWeightedSharing(t *testing.T) {
	eng, dev := newTestDevice(t, quietConfig())
	ctx, _ := dev.CreateContext("c0", 68)
	hi := ctx.AddStream("hi", HighPriority)
	lo := ctx.AddStream("lo", LowPriority)

	var dHi, dLo des.Time
	kh := convKernel("kh", 32)
	kh.OnComplete = func(n des.Time) { dHi = n }
	kl := convKernel("kl", 32)
	kl.OnComplete = func(n des.Time) { dLo = n }
	hi.Submit(kh)
	lo.Submit(kl)
	eng.Run()

	if dHi >= dLo {
		t.Errorf("high-priority kernel (%v) should finish before low (%v)", dHi, dLo)
	}
	// While both run, high holds 3/4 of the context: 51 vs 17 SMs.
	m := speedup.DefaultModel()
	if g51, g17 := m.Gain(speedup.Conv, 51), m.Gain(speedup.Conv, 17); g51 <= g17 {
		t.Fatalf("model sanity: %v <= %v", g51, g17)
	}
}

func TestOverSubscriptionScalesShares(t *testing.T) {
	eng, dev := newTestDevice(t, quietConfig())
	// Two contexts of 68 SMs each: 2x over-subscription when both busy.
	c1, _ := dev.CreateContext("c1", 68)
	c2, _ := dev.CreateContext("c2", 68)
	s1 := c1.AddStream("s", LowPriority)
	s2 := c2.AddStream("s", LowPriority)

	var d1 des.Time
	k1 := convKernel("k1", 32)
	k1.OnComplete = func(n des.Time) { d1 = n }
	k2 := convKernel("k2", 32)
	s1.Submit(k1)
	s2.Submit(k2)
	eng.Run()

	// Each kernel effectively gets 34 SMs while both are running.
	want := 32.0 / speedup.DefaultModel().Gain(speedup.Conv, 34)
	if math.Abs(d1.Milliseconds()-want) > 1e-4 {
		t.Errorf("oversubscribed latency = %.4f, want %.4f", d1.Milliseconds(), want)
	}
}

func TestContentionPenaltySlowsOverSubscribed(t *testing.T) {
	run := func(penalty float64) des.Time {
		cfg := quietConfig()
		// The penalty degrades the bandwidth ceiling, so it only
		// shows when the ceiling binds.
		cfg.AggregateGainCap = 30
		cfg.ContentionPenalty = penalty
		eng, dev := newTestDevice(t, cfg)
		c1, _ := dev.CreateContext("c1", 68)
		c2, _ := dev.CreateContext("c2", 68)
		var done des.Time
		k1 := convKernel("k1", 32)
		k1.OnComplete = func(n des.Time) { done = n }
		c1.AddStream("s", LowPriority).Submit(k1)
		c2.AddStream("s", LowPriority).Submit(convKernel("k2", 32))
		eng.Run()
		return done
	}
	if noPen, pen := run(0), run(0.5); pen <= noPen {
		t.Errorf("contention penalty did not slow execution: %v vs %v", pen, noPen)
	}
	// Penalty must not apply when the device is not over-subscribed.
	cfg := quietConfig()
	cfg.ContentionPenalty = 0.5
	eng, dev := newTestDevice(t, cfg)
	ctx, _ := dev.CreateContext("c", 68)
	var done des.Time
	k := convKernel("k", 32)
	k.OnComplete = func(n des.Time) { done = n }
	ctx.AddStream("s", LowPriority).Submit(k)
	eng.Run()
	want := 32.0 / speedup.DefaultModel().Gain(speedup.Conv, 68)
	if math.Abs(done.Milliseconds()-want) > 1e-4 {
		t.Errorf("penalty applied without over-subscription: %v vs %v", done.Milliseconds(), want)
	}
}

func TestContentionJitterIsDeterministic(t *testing.T) {
	run := func(seed uint64) des.Time {
		cfg := quietConfig()
		cfg.ContentionJitter = 0.5
		cfg.Seed = seed
		eng, dev := newTestDevice(t, cfg)
		c1, _ := dev.CreateContext("c1", 68)
		c2, _ := dev.CreateContext("c2", 68)
		var done des.Time
		k1 := convKernel("k1", 32)
		k1.OnComplete = func(n des.Time) { done = n }
		c1.AddStream("s", LowPriority).Submit(k1)
		c2.AddStream("s", LowPriority).Submit(convKernel("k2", 32))
		eng.Run()
		return done
	}
	if run(7) != run(7) {
		t.Error("same seed produced different timings")
	}
	if run(7) == run(8) {
		t.Error("different seeds produced identical jittered timings")
	}
}

func TestAggregateGainCapLimitsThroughput(t *testing.T) {
	// Four non-oversubscribed contexts of 17 SMs running conv: raw gain
	// sum = 4·g(17); with a cap of half that, execution takes twice as
	// long.
	m := speedup.DefaultModel()
	rawSum := 4 * m.Gain(speedup.Conv, 17)

	run := func(ceiling float64) des.Time {
		cfg := quietConfig()
		cfg.AggregateGainCap = ceiling
		eng, dev := newTestDevice(t, cfg)
		var done des.Time
		for i := 0; i < 4; i++ {
			ctx, _ := dev.CreateContext("c", 17)
			k := convKernel("k", 10)
			if i == 0 {
				k.OnComplete = func(n des.Time) { done = n }
			}
			ctx.AddStream("s", LowPriority).Submit(k)
		}
		eng.Run()
		return done
	}
	uncapped := run(1e9)
	capped := run(rawSum / 2)
	ratio := float64(capped) / float64(uncapped)
	if math.Abs(ratio-2) > 1e-4 {
		t.Errorf("cap at half raw gain should double latency; ratio = %v", ratio)
	}
}

func TestWorkConservation(t *testing.T) {
	cfg := DefaultConfig() // realistic: jitter, penalty, cap all active
	eng, dev := newTestDevice(t, cfg)
	c1, _ := dev.CreateContext("c1", 51)
	c2, _ := dev.CreateContext("c2", 51)
	streams := []*Stream{
		c1.AddStream("h", HighPriority), c1.AddStream("l", LowPriority),
		c2.AddStream("h", HighPriority), c2.AddStream("l", LowPriority),
	}
	var submitted float64
	for i := 0; i < 40; i++ {
		w := 1.0 + float64(i%7)
		submitted += w
		streams[i%len(streams)].Submit(convKernel("k", w))
	}
	eng.Run()
	if dev.CompletedKernels() != 40 {
		t.Fatalf("completed %d kernels, want 40", dev.CompletedKernels())
	}
	if math.Abs(dev.workDone-submitted) > 1e-3 {
		t.Errorf("work retired %.6f, submitted %.6f", dev.workDone, submitted)
	}
	if dev.Utilization() <= 0 || dev.Utilization() > 1 {
		t.Errorf("utilization = %v", dev.Utilization())
	}
}

func TestDemandRatio(t *testing.T) {
	eng, dev := newTestDevice(t, quietConfig())
	c1, _ := dev.CreateContext("c1", 68)
	c2, _ := dev.CreateContext("c2", 68)
	if r := dev.DemandRatio(); r != 0 {
		t.Errorf("idle demand ratio = %v", r)
	}
	k := convKernel("k1", 50)
	var during float64
	k2 := convKernel("k2", 1)
	k2.OnStart = func(des.Time) { during = dev.DemandRatio() }
	c1.AddStream("s", LowPriority).Submit(k)
	c2.AddStream("s", LowPriority).Submit(k2)
	eng.Run()
	if during != 2.0 {
		t.Errorf("demand ratio with both contexts busy = %v, want 2", during)
	}
}

func TestCreateContextErrors(t *testing.T) {
	_, dev := newTestDevice(t, quietConfig())
	if _, err := dev.CreateContext("bad", 0); err == nil {
		t.Error("0-SM context accepted")
	}
	if _, err := dev.CreateContext("bad", -3); err == nil {
		t.Error("negative-SM context accepted")
	}
	if _, err := dev.CreateContext("bad", 69); err == nil {
		t.Error("context larger than device accepted")
	}
	ctx, err := dev.CreateContext("ok", 68)
	if err != nil || ctx.SMs() != 68 || ctx.ID() != 0 {
		t.Errorf("context creation: %v %+v", err, ctx)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{TotalSMs: 68},
		{TotalSMs: 68, AggregateGainCap: 26, LaunchOverhead: -1},
		{TotalSMs: 68, AggregateGainCap: 26, ContentionPenalty: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestNewDeviceErrors(t *testing.T) {
	if _, err := NewDevice(nil, speedup.DefaultModel(), DefaultConfig()); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewDevice(des.NewEngine(), nil, DefaultConfig()); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewDevice(des.NewEngine(), speedup.DefaultModel(), Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSubmitTwicePanics(t *testing.T) {
	_, dev := newTestDevice(t, quietConfig())
	ctx, _ := dev.CreateContext("c", 68)
	s := ctx.AddStream("s", LowPriority)
	k := convKernel("k", 1)
	s.Submit(k)
	defer func() {
		if recover() == nil {
			t.Fatal("double submit did not panic")
		}
	}()
	s.Submit(k)
}

func TestEmptyKernelPanics(t *testing.T) {
	_, dev := newTestDevice(t, quietConfig())
	ctx, _ := dev.CreateContext("c", 68)
	s := ctx.AddStream("s", LowPriority)
	defer func() {
		if recover() == nil {
			t.Fatal("empty kernel did not panic")
		}
	}()
	s.Submit(&Kernel{Label: "empty"})
}

func TestIsolatedLatencyMS(t *testing.T) {
	m := speedup.DefaultModel()
	k := convKernel("k", 32)
	k.FixedMS = 1
	want := 1 + 32/m.Gain(speedup.Conv, 68)
	if got := k.IsolatedLatencyMS(m, 68); math.Abs(got-want) > 1e-12 {
		t.Errorf("IsolatedLatencyMS = %v, want %v", got, want)
	}
	fixedOnly := &Kernel{Label: "f", FixedMS: 3}
	if got := fixedOnly.IsolatedLatencyMS(m, 68); got != 3 {
		t.Errorf("fixed-only = %v, want 3", got)
	}
}

func TestStringers(t *testing.T) {
	_, dev := newTestDevice(t, quietConfig())
	ctx, _ := dev.CreateContext("pool0", 34)
	s := ctx.AddStream("hi", HighPriority)
	if got := ctx.String(); got != "ctx0(pool0,34sm)" {
		t.Errorf("context string = %q", got)
	}
	if got := s.String(); got != "pool0/s0(high)" {
		t.Errorf("stream string = %q", got)
	}
	if LowPriority.String() != "low" || HighPriority.String() != "high" {
		t.Error("priority names wrong")
	}
	if Priority(9).String() != "priority(9)" {
		t.Error("unknown priority name wrong")
	}
}

func TestContextAccessors(t *testing.T) {
	eng, dev := newTestDevice(t, quietConfig())
	ctx, _ := dev.CreateContext("c", 68)
	s1 := ctx.AddStream("a", HighPriority)
	ctx.AddStream("b", LowPriority)
	if len(ctx.Streams()) != 2 || ctx.Name() != "c" {
		t.Error("context accessors wrong")
	}
	if ctx.Busy() || ctx.QueuedKernels() != 0 {
		t.Error("fresh context should be idle")
	}
	s1.Submit(convKernel("k1", 5))
	s1.Submit(convKernel("k2", 5))
	if !ctx.Busy() || ctx.QueuedKernels() != 2 {
		t.Errorf("busy=%v queued=%d, want true/2", ctx.Busy(), ctx.QueuedKernels())
	}
	eng.Run()
	if ctx.Busy() || ctx.ActiveKernels() != 0 {
		t.Error("context should drain")
	}
	if len(dev.Contexts()) != 1 {
		t.Error("device context list wrong")
	}
}

// Property: with sharing, total completion time of n identical conv kernels
// in one context is monotonically non-decreasing in n, and all work retires.
func TestSharingMonotoneProperty(t *testing.T) {
	f := func(rawN uint8) bool {
		n := int(rawN%6) + 1
		eng, dev := newTestDevice(t, quietConfig())
		ctx, _ := dev.CreateContext("c", 68)
		var last des.Time
		for i := 0; i < n; i++ {
			s := ctx.AddStream("s", LowPriority)
			k := convKernel("k", 10)
			k.OnComplete = func(now des.Time) {
				if now > last {
					last = now
				}
			}
			s.Submit(k)
		}
		eng.Run()
		if dev.CompletedKernels() != uint64(n) {
			return false
		}
		// n concurrent kernels at 68/n SMs each: makespan must be at
		// least the single-kernel latency and grow with n.
		single := 10 / speedup.DefaultModel().Gain(speedup.Conv, 68)
		return last.Milliseconds() >= single-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

package gpu

import (
	"math"
	"testing"
	"testing/quick"

	"sgprs/internal/des"
	"sgprs/internal/speedup"
)

// TestWaterfillWorkConserving: with over-subscribed contexts and uneven
// load, the busier context must receive more SMs — the benefit larger
// partitions buy (DESIGN.md §4, layer 2).
func TestWaterfillWorkConserving(t *testing.T) {
	eng, dev := newTestDevice(t, quietConfig())
	// Two 68-SM contexts (2x over-subscription): 1 kernel in A, 3 in B.
	a, _ := dev.CreateContext("a", 68)
	bctx, _ := dev.CreateContext("b", 68)
	var aSMs, bSMs float64
	ka := convKernel("ka", 50)
	streams := []*Stream{
		bctx.AddStream("s0", LowPriority),
		bctx.AddStream("s1", LowPriority),
		bctx.AddStream("s2", LowPriority),
	}
	var kbs []*Kernel
	for _, s := range streams {
		kb := convKernel("kb", 50)
		kbs = append(kbs, kb)
		s.Submit(kb)
	}
	a.AddStream("s", LowPriority).Submit(ka)
	// Sample effective SMs shortly after all four started.
	eng.After(des.FromMillis(1), "sample", func(des.Time) {
		aSMs = ka.EffectiveSMs()
		for _, kb := range kbs {
			bSMs += kb.EffectiveSMs()
		}
		eng.Stop()
	})
	eng.Run()
	// Weights 1 vs 3 → A gets 17, B gets 51 (both under their 68 caps).
	if math.Abs(aSMs-17) > 0.01 || math.Abs(bSMs-51) > 0.01 {
		t.Errorf("allocation A=%v B=%v, want 17/51 (load-proportional)", aSMs, bSMs)
	}
}

// TestWaterfillRigidAtNoOversubscription: with disjoint partitions (no
// over-subscription) each busy context gets exactly its own allocation, no
// matter how uneven the load — the rigidity the paper's Scenario 1 os=1.0
// suffers from.
func TestWaterfillRigidAtNoOversubscription(t *testing.T) {
	eng, dev := newTestDevice(t, quietConfig())
	a, _ := dev.CreateContext("a", 34)
	bctx, _ := dev.CreateContext("b", 34)
	ka := convKernel("ka", 50)
	kb1 := convKernel("kb1", 50)
	kb2 := convKernel("kb2", 50)
	a.AddStream("s", LowPriority).Submit(ka)
	bctx.AddStream("s0", LowPriority).Submit(kb1)
	bctx.AddStream("s1", LowPriority).Submit(kb2)
	eng.After(des.FromMillis(1), "sample", func(des.Time) {
		if math.Abs(ka.EffectiveSMs()-34) > 0.01 {
			t.Errorf("A kernel = %v SMs, want its full 34", ka.EffectiveSMs())
		}
		if math.Abs(kb1.EffectiveSMs()-17) > 0.01 || math.Abs(kb2.EffectiveSMs()-17) > 0.01 {
			t.Errorf("B kernels = %v/%v SMs, want 17 each", kb1.EffectiveSMs(), kb2.EffectiveSMs())
		}
		eng.Stop()
	})
	eng.Run()
}

// Property: waterfill never allocates more than a context's own SMs, never
// more than the device in total, and gives every loaded context a positive
// share.
func TestWaterfillBoundsProperty(t *testing.T) {
	f := func(rawSMs [4]uint8, rawLoad [4]uint8) bool {
		eng := des.NewEngine()
		dev, err := NewDevice(eng, speedup.DefaultModel(), quietConfig())
		if err != nil {
			return false
		}
		var ctxs []*Context
		for i := 0; i < 4; i++ {
			sms := int(rawSMs[i]%68) + 1
			ctx, err := dev.CreateContext("c", sms)
			if err != nil {
				return false
			}
			ctx.weightSum = float64(rawLoad[i] % 5)
			ctxs = append(ctxs, ctx)
		}
		alloc := dev.waterfill()
		var total float64
		for i, ctx := range ctxs {
			if alloc[i] < 0 || alloc[i] > float64(ctx.sms)+1e-9 {
				return false
			}
			if ctx.weightSum > 0 && alloc[i] <= 0 {
				return false
			}
			if ctx.weightSum == 0 && alloc[i] != 0 {
				return false
			}
			total += alloc[i]
		}
		return total <= float64(dev.cfg.TotalSMs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: when total demand fits the device, every loaded context receives
// exactly — to the last float bit, since the early out in waterfill claims
// bit-identity with the redistribution loop — its full allocation
// (waterfilling degenerates to rigid partitions).
func TestWaterfillFullAllocationProperty(t *testing.T) {
	f := func(rawSMs [3]uint8, rawLoad [3]uint8) bool {
		eng := des.NewEngine()
		dev, err := NewDevice(eng, speedup.DefaultModel(), quietConfig())
		if err != nil {
			return false
		}
		var ctxs []*Context
		budget := 68
		for i := 0; i < 3; i++ {
			s := int(rawSMs[i]%20) + 1 // ≤ 60 total: never over-subscribed
			budget -= s
			ctx, err := dev.CreateContext("c", s)
			if err != nil {
				return false
			}
			ctx.weightSum = float64(rawLoad[i] % 3)
			ctxs = append(ctxs, ctx)
		}
		if budget < 0 {
			return true
		}
		alloc := dev.waterfill()
		for i, ctx := range ctxs {
			if ctx.weightSum > 0 && math.Float64bits(alloc[i]) != math.Float64bits(float64(ctx.sms)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestWaterfillEarlyOutMatchesLoop pins the early out's bit-identity claim
// directly: for demand that exactly fills or just fits the device, the
// redistribution loop (forced by bypassing the early out via an
// over-subscribed twin whose extra context carries no weight — impossible in
// real runs, where weight implies demand) would agree with the rigid split.
// Real coverage of the mixed regimes comes from the randomized engine
// cross-check in incremental_test.go; this asserts the boundary case where
// demand == TotalSMs with uneven integer weights.
func TestWaterfillEarlyOutMatchesLoop(t *testing.T) {
	eng := des.NewEngine()
	dev, err := NewDevice(eng, speedup.DefaultModel(), quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	sms := []int{7, 20, 41}
	weights := []float64{3, 1, 7}
	for i, s := range sms {
		ctx, err := dev.CreateContext("c", s)
		if err != nil {
			t.Fatal(err)
		}
		ctx.weightSum = weights[i]
	}
	alloc := dev.waterfill()
	for i, s := range sms {
		if math.Float64bits(alloc[i]) != math.Float64bits(float64(s)) {
			t.Errorf("ctx %d: alloc %v, want exactly %d", i, alloc[i], s)
		}
	}
}

package analysis

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"sgprs/internal/des"
	"sgprs/internal/dnn"
	"sgprs/internal/gpu"
	"sgprs/internal/profile"
	"sgprs/internal/rt"
	"sgprs/internal/sim"
	"sgprs/internal/speedup"
)

// refLoad is the calibrated ResNet18 benchmark load at 30 fps.
func refLoad(t *testing.T) TaskLoad {
	t.Helper()
	model := speedup.DefaultModel()
	g := sim.ReferenceGraph(model)
	stages, err := dnn.Partition(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	period := des.FromSeconds(1.0 / 30)
	task, err := rt.NewTask(0, "resnet18", g, stages, period, period, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := profile.New(model, gpu.DefaultConfig()).ProfileTask(task, 34); err != nil {
		t.Fatal(err)
	}
	l, err := FromTask(task)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestFromTaskRequiresProfile(t *testing.T) {
	g := dnn.TinyCNN(dnn.DefaultCostModel())
	stages, _ := dnn.Partition(g, 2)
	task, _ := rt.NewTask(0, "t", g, stages, des.Second, des.Second, 0)
	if _, err := FromTask(task); err == nil {
		t.Error("unprofiled task accepted")
	}
	if _, err := FromTasks([]*rt.Task{task}); err == nil {
		t.Error("unprofiled task set accepted")
	}
}

func TestUtilizationAndWorkRate(t *testing.T) {
	l := refLoad(t)
	loads := []TaskLoad{l, l, l}
	u := Utilization(loads)
	// Three ResNet18 tasks at ~2ms WCET / 33.3ms period ≈ 0.18.
	if u < 0.1 || u > 0.3 {
		t.Errorf("utilization = %v", u)
	}
	r := WorkRate(loads)
	want := 3 * l.WorkMS / l.Period.Milliseconds()
	if math.Abs(r-want) > 1e-9 {
		t.Errorf("work rate = %v, want %v", r, want)
	}
}

func TestCapacityMarginSign(t *testing.T) {
	l := refLoad(t)
	dev := gpu.DefaultConfig()
	light := make([]TaskLoad, 5)
	heavy := make([]TaskLoad, 40)
	for i := range light {
		light[i] = l
	}
	for i := range heavy {
		heavy[i] = l
	}
	if m := CapacityMargin(light, dev); m <= 0 {
		t.Errorf("5 tasks should have headroom, margin %v", m)
	}
	if m := CapacityMargin(heavy, dev); m >= 0 {
		t.Errorf("40 tasks should overload, margin %v", m)
	}
}

func TestEDFFeasibleBoundary(t *testing.T) {
	l := refLoad(t)
	dev := gpu.DefaultConfig()
	pivot := PredictPivot(l, dev)
	// At the predicted pivot the demand test passes...
	loads := make([]TaskLoad, pivot)
	for i := range loads {
		loads[i] = l
	}
	if at, ok := EDFFeasible(loads, dev); !ok {
		t.Errorf("pivot-sized set infeasible at %v", at)
	}
	// ...and one more task breaks it.
	loads = append(loads, l)
	if _, ok := EDFFeasible(loads, dev); ok {
		t.Error("pivot+1 set reported feasible")
	}
	// Empty set is trivially feasible.
	if _, ok := EDFFeasible(nil, dev); !ok {
		t.Error("empty set infeasible")
	}
}

func TestPredictionsMatchSimulation(t *testing.T) {
	// The analytic pivot and saturation ceiling must agree with the
	// measured sweep within the fluid-model slack (the simulator pays
	// launch overheads and jitter the analysis ignores).
	l := refLoad(t)
	dev := gpu.DefaultConfig()
	predPivot := PredictPivot(l, dev)
	predFPS := PredictSaturationFPS(l, dev)

	series, err := sim.SweepSeries(sim.RunConfig{
		Kind:       sim.KindSGPRS,
		Name:       "sgprs",
		ContextSMs: []int{34, 34},
		NumTasks:   1,
		HorizonSec: 4,
		Seed:       1,
	}, []int{predPivot - 1, predPivot, predPivot + 2, predPivot + 5})
	if err != nil {
		t.Fatal(err)
	}
	measuredPivot := 0
	var maxFPS float64
	for _, p := range series {
		if p.Summary.Missed == 0 {
			measuredPivot = p.Tasks
		}
		if p.Summary.TotalFPS > maxFPS {
			maxFPS = p.Summary.TotalFPS
		}
	}
	if diff := measuredPivot - predPivot; diff < -2 || diff > 2 {
		t.Errorf("measured pivot %d vs predicted %d", measuredPivot, predPivot)
	}
	if maxFPS > predFPS*1.05 {
		t.Errorf("measured saturation %.0f beats the analytic ceiling %.0f", maxFPS, predFPS)
	}
	if maxFPS < predFPS*0.85 {
		t.Errorf("measured saturation %.0f far below ceiling %.0f", maxFPS, predFPS)
	}
}

func TestResponseEstimate(t *testing.T) {
	l := refLoad(t)
	dev := gpu.DefaultConfig()
	r := ResponseEstimate(l, dev, 23)
	// 23 frames × ~32.6 ssm-ms / 23.3 ≈ 32 ms.
	if ms := r.Milliseconds(); ms < 25 || ms > 40 {
		t.Errorf("response estimate = %v, want ~32ms", r)
	}
	if ResponseEstimate(l, gpu.Config{}, 1) != des.Never {
		t.Error("zero-capacity estimate should be Never")
	}
}

func TestAnalyzeReport(t *testing.T) {
	l := refLoad(t)
	dev := gpu.DefaultConfig()
	loads := []TaskLoad{l, l, l, l}
	rep := Analyze(loads, dev)
	if rep.Tasks != 4 || !rep.Feasible || rep.Margin <= 0 {
		t.Errorf("report = %+v", rep)
	}
	if !strings.Contains(rep.String(), "FEASIBLE") {
		t.Errorf("report string = %q", rep.String())
	}
	heavy := make([]TaskLoad, 40)
	for i := range heavy {
		heavy[i] = l
	}
	rep = Analyze(heavy, dev)
	if rep.Feasible || rep.FirstViolation == 0 {
		t.Errorf("overloaded report = %+v", rep)
	}
	if !strings.Contains(rep.String(), "INFEASIBLE") {
		t.Errorf("report string = %q", rep.String())
	}
}

func TestSensitivityFrontier(t *testing.T) {
	l := refLoad(t)
	dev := gpu.DefaultConfig()
	frontier, margins := Sensitivity(l, dev, 30)
	if frontier != PredictPivot(l, dev) {
		t.Errorf("frontier %d != predicted pivot %d", frontier, PredictPivot(l, dev))
	}
	if len(margins) != 30 {
		t.Fatalf("margins = %d", len(margins))
	}
	for i := 1; i < len(margins); i++ {
		if margins[i] >= margins[i-1] {
			t.Fatalf("margins must strictly decrease: %v", margins[:i+1])
		}
	}
}

func TestDBFProperties(t *testing.T) {
	l := refLoad(t)
	if dbf(l, l.Deadline-1) != 0 {
		t.Error("dbf before first deadline must be 0")
	}
	if got := dbf(l, l.Deadline); got != l.WorkMS {
		t.Errorf("dbf at first deadline = %v, want one job", got)
	}
	if got := dbf(l, l.Deadline.Add(l.Period)); got != 2*l.WorkMS {
		t.Errorf("dbf at second deadline = %v, want two jobs", got)
	}
}

// Property: dbf is monotone in t and never exceeds the fluid envelope
// (t/T + 1)·W.
func TestDBFMonotoneProperty(t *testing.T) {
	l := refLoad(t)
	f := func(rawA, rawB uint32) bool {
		a := des.Time(rawA) * des.Microsecond
		b := des.Time(rawB) * des.Microsecond
		if a > b {
			a, b = b, a
		}
		da, db := dbf(l, a), dbf(l, b)
		env := (b.Milliseconds()/l.Period.Milliseconds() + 1) * l.WorkMS
		return da <= db && db <= env+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

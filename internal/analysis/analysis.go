// Package analysis provides offline schedulability analysis for the SGPRS
// task and device model: utilisation and work-rate accounting, an
// EDF-style demand-bound test against the device's aggregate service
// capacity, and closed-form predictions of the pivot point and saturated
// throughput that the simulator can be checked against.
//
// The analysis views the GPU the way the timing model does (DESIGN.md §4):
// a fluid resource that retires at most G single-SM milliseconds of work per
// millisecond of wall time (the aggregate gain cap), shared by every running
// stage. That abstraction is deliberately coarser than the simulator — it
// ignores stream slots, assignment policy, and contention jitter — which is
// what makes it an *analysis*: a necessary-condition bound that the measured
// system can approach but never beat.
package analysis

import (
	"fmt"
	"sort"

	"sgprs/internal/des"
	"sgprs/internal/gpu"
	"sgprs/internal/rt"
)

// TaskLoad is the analysable abstraction of one periodic task.
type TaskLoad struct {
	Name string
	// WorkMS is the job's total single-SM work in milliseconds.
	WorkMS float64
	// Period and Deadline are the task's timing parameters.
	Period   des.Time
	Deadline des.Time
	// WCET is the profiled worst-case execution time (isolation).
	WCET des.Time
}

// FromTask extracts the analysable load of a profiled rt.Task.
func FromTask(t *rt.Task) (TaskLoad, error) {
	if !t.Profiled() {
		return TaskLoad{}, fmt.Errorf("analysis: task %s not profiled", t)
	}
	return TaskLoad{
		Name:     t.Name,
		WorkMS:   t.Graph.TotalWorkMS(),
		Period:   t.Period,
		Deadline: t.Deadline,
		WCET:     t.WCET(),
	}, nil
}

// FromTasks extracts loads for a whole task set.
func FromTasks(tasks []*rt.Task) ([]TaskLoad, error) {
	out := make([]TaskLoad, 0, len(tasks))
	for _, t := range tasks {
		l, err := FromTask(t)
		if err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	return out, nil
}

// Utilization reports the classical Σ Cᵢ/Tᵢ over profiled WCETs. Values
// above the pool's parallelism indicate certain overload of the *isolated*
// service rate; the work-rate test below is the sharper device-level bound.
func Utilization(loads []TaskLoad) float64 {
	var u float64
	for _, l := range loads {
		u += float64(l.WCET) / float64(l.Period)
	}
	return u
}

// WorkRate reports the task set's demanded service rate in single-SM
// milliseconds per millisecond: Σ Wᵢ/Tᵢ.
func WorkRate(loads []TaskLoad) float64 {
	var r float64
	for _, l := range loads {
		r += l.WorkMS / l.Period.Milliseconds()
	}
	return r
}

// CapacityMargin reports capacity − demand for the device: positive values
// mean the fluid model has headroom; negative values mean certain overload
// (a necessary schedulability condition — no scheduler can beat it).
func CapacityMargin(loads []TaskLoad, dev gpu.Config) float64 {
	return dev.AggregateGainCap - WorkRate(loads)
}

// dbf is the EDF demand-bound function of one sporadic task at horizon t:
// the single-SM work of every job that both arrives and has its deadline
// within an interval of length t.
func dbf(l TaskLoad, t des.Time) float64 {
	if t < l.Deadline {
		return 0
	}
	n := int64((t-l.Deadline)/l.Period) + 1
	return float64(n) * l.WorkMS
}

// EDFFeasible runs the processor-demand test against the fluid device:
// for every absolute deadline t up to the test horizon, the accumulated
// demand Σ dbfᵢ(t) must not exceed the supply G·t. It returns the first
// violating instant (and false), or (0, true) when the set passes.
//
// The test horizon is the standard bounded one: the first busy-period
// estimate or the hyperperiod cap, whichever is smaller; for the identical
// task sets the paper evaluates, a handful of deadlines decide the answer.
func EDFFeasible(loads []TaskLoad, dev gpu.Config) (des.Time, bool) {
	if len(loads) == 0 {
		return 0, true
	}
	g := dev.AggregateGainCap
	if WorkRate(loads) > g {
		// Unbounded backlog: report the first deadline as a witness.
		first := loads[0].Deadline
		for _, l := range loads {
			if l.Deadline < first {
				first = l.Deadline
			}
		}
		return first, false
	}
	// Candidate instants: deadlines dᵢ + k·Tᵢ up to the horizon.
	horizon := testHorizon(loads, g)
	var points []des.Time
	for _, l := range loads {
		for t := l.Deadline; t <= horizon; t = t.Add(l.Period) {
			points = append(points, t)
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	for _, t := range points {
		var demand float64
		for _, l := range loads {
			demand += dbf(l, t)
		}
		if demand > g*t.Milliseconds()+1e-9 {
			return t, false
		}
	}
	return 0, true
}

// testHorizon bounds the processor-demand test: the classical
// L = Σ(Tᵢ−Dᵢ)·Wᵢ/Tᵢ / (G − ΣWᵢ/Tᵢ) busy-period bound, clamped to at least
// one maximal period and at most 1000 periods (identical-task sets decide
// in one).
func testHorizon(loads []TaskLoad, g float64) des.Time {
	rate := WorkRate(loads)
	var num float64
	var maxPeriod des.Time
	for _, l := range loads {
		num += (l.Period.Milliseconds() - l.Deadline.Milliseconds()) * l.WorkMS / l.Period.Milliseconds()
		if l.Period > maxPeriod {
			maxPeriod = l.Period
		}
	}
	lo := maxPeriod
	if g <= rate {
		return lo
	}
	L := des.FromMillis(num / (g - rate))
	if L < lo {
		L = lo
	}
	hi := des.Time(int64(maxPeriod) * 1000)
	if L > hi {
		L = hi
	}
	return L
}

// PredictPivot reports the analytic pivot point for n identical tasks of the
// given load: the largest n with n·W/T ≤ G, i.e. ⌊G·T/W⌋. This is the fluid
// ceiling the simulator's measured pivot approaches from below.
func PredictPivot(l TaskLoad, dev gpu.Config) int {
	if l.WorkMS <= 0 {
		return 0
	}
	return int(dev.AggregateGainCap * l.Period.Milliseconds() / l.WorkMS)
}

// PredictSaturationFPS reports the fluid throughput ceiling for identical
// tasks: G/W jobs per millisecond.
func PredictSaturationFPS(l TaskLoad, dev gpu.Config) float64 {
	if l.WorkMS <= 0 {
		return 0
	}
	return 1000 * dev.AggregateGainCap / l.WorkMS
}

// ResponseEstimate predicts steady-state pipeline latency for k admitted
// frames of the given load under processor sharing (Little's law on the
// fluid device): R ≈ k·W/G.
func ResponseEstimate(l TaskLoad, dev gpu.Config, inflight int) des.Time {
	if dev.AggregateGainCap <= 0 {
		return des.Never
	}
	return des.FromMillis(float64(inflight) * l.WorkMS / dev.AggregateGainCap)
}

// Report is a human-readable schedulability summary.
type Report struct {
	Tasks          int
	Utilization    float64
	WorkRate       float64
	Capacity       float64
	Margin         float64
	Feasible       bool
	FirstViolation des.Time
}

// Analyze produces the full report for a task set on a device.
func Analyze(loads []TaskLoad, dev gpu.Config) Report {
	viol, ok := EDFFeasible(loads, dev)
	return Report{
		Tasks:          len(loads),
		Utilization:    Utilization(loads),
		WorkRate:       WorkRate(loads),
		Capacity:       dev.AggregateGainCap,
		Margin:         CapacityMargin(loads, dev),
		Feasible:       ok,
		FirstViolation: viol,
	}
}

// String renders the report.
func (r Report) String() string {
	verdict := "FEASIBLE (fluid EDF demand test)"
	if !r.Feasible {
		verdict = fmt.Sprintf("INFEASIBLE (first violation at %v)", r.FirstViolation)
	}
	return fmt.Sprintf(
		"tasks=%d utilization=%.3f work-rate=%.2f ssm-ms/ms capacity=%.2f margin=%.2f → %s",
		r.Tasks, r.Utilization, r.WorkRate, r.Capacity, r.Margin, verdict)
}

// Sensitivity sweeps identical-task counts from 1 to max and reports the
// feasibility frontier: the largest feasible n (the analytic pivot) plus the
// margin at each count.
func Sensitivity(l TaskLoad, dev gpu.Config, max int) (frontier int, margins []float64) {
	margins = make([]float64, 0, max)
	for n := 1; n <= max; n++ {
		loads := make([]TaskLoad, n)
		for i := range loads {
			loads[i] = l
		}
		m := CapacityMargin(loads, dev)
		margins = append(margins, m)
		if _, ok := EDFFeasible(loads, dev); ok {
			frontier = n
		}
	}
	return frontier, margins
}

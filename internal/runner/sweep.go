package runner

import (
	"context"
	"fmt"

	"sgprs/internal/metrics"
	"sgprs/internal/sim"
	"sgprs/internal/speedup"
)

// variantName labels a base configuration the way Normalize would.
func variantName(base sim.RunConfig) string {
	if base.Name != "" {
		return base.Name
	}
	return base.Kind.String()
}

// SweepJobs expands one base configuration over the task counts into a job
// list, fixing every job's seed at expansion time (see Options.DecorrelateSeeds).
func SweepJobs(base sim.RunConfig, taskCounts []int, opt Options) []Job {
	jobs := make([]Job, 0, len(taskCounts))
	name := variantName(base)
	for _, n := range taskCounts {
		cfg := base
		cfg.NumTasks = n
		if opt.DecorrelateSeeds {
			cfg.Seed = DeriveSeed(base.Seed, name, n)
		}
		jobs = append(jobs, Job{Variant: name, Tasks: n, Config: cfg})
	}
	return jobs
}

// seriesOf folds one variant's ordered results into a figure series,
// keeping every completed point even when siblings failed.
func seriesOf(results []JobResult) []metrics.Point {
	series := make([]metrics.Point, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		series = append(series, metrics.Point{
			Tasks:       r.Job.Tasks,
			Summary:     r.Result.Summary,
			FastForward: r.Result.FastForward,
		})
	}
	return series
}

// SweepSeries is the parallel equivalent of sim.SweepSeries: one variant
// swept across the task counts. With default Options the returned series is
// bit-identical to the sequential driver. Unlike the sequential driver it
// never discards finished points: on failure it returns every completed
// point alongside an Errors value attributing each failed (variant, n).
func SweepSeries(ctx context.Context, base sim.RunConfig, taskCounts []int, opt Options) ([]metrics.Point, error) {
	results := Run(ctx, SweepJobs(base, taskCounts, opt), opt)
	return seriesOf(results), Err(results)
}

// SweepGrid sweeps several base configurations over the same task counts as
// one flat fan-out (better worker utilisation than series-at-a-time). It
// returns the per-variant series keyed by name plus the submission order,
// with completed points preserved across any failures.
//
// Two bases resolving to the same variant name are rejected up front: the
// result map is keyed by name, so duplicates would silently merge two
// series into one key (the later block shadowing the earlier).
func SweepGrid(ctx context.Context, bases []sim.RunConfig, taskCounts []int, opt Options) (map[string][]metrics.Point, []string, error) {
	var jobs []Job
	var order []string
	seen := make(map[string]bool, len(bases))
	offsets := make([]int, 0, len(bases)) // start index of each base's block
	for _, base := range bases {
		name := variantName(base)
		if seen[name] {
			return nil, nil, fmt.Errorf("runner: duplicate variant name %q in sweep grid", name)
		}
		seen[name] = true
		offsets = append(offsets, len(jobs))
		jobs = append(jobs, SweepJobs(base, taskCounts, opt)...)
		order = append(order, name)
	}
	results := Run(ctx, jobs, opt)
	series := make(map[string][]metrics.Point, len(bases))
	for i, start := range offsets {
		end := len(results)
		if i+1 < len(offsets) {
			end = offsets[i+1]
		}
		series[order[i]] = seriesOf(results[start:end])
	}
	return series, order, Err(results)
}

// ScenarioJobs expands one paper scenario (naive baseline plus SGPRS at
// over-subscription 1.0/1.5/2.0, each over the task counts) into a flat
// job list.
func ScenarioJobs(scenario int, taskCounts []int, horizonSec float64, seed uint64, opt Options) ([]Job, error) {
	np, err := sim.ScenarioContexts(scenario)
	if err != nil {
		return nil, err
	}
	var jobs []Job
	for _, v := range sim.ScenarioVariants() {
		base := sim.RunConfig{
			Kind:       v.Kind,
			Name:       v.Name,
			ContextSMs: sim.ContextPool(np, v.OS, speedup.DeviceSMs),
			HorizonSec: horizonSec,
			Seed:       seed,
			NumTasks:   1, // overwritten by the sweep
		}
		jobs = append(jobs, SweepJobs(base, taskCounts, opt)...)
	}
	return jobs, nil
}

// RunScenario regenerates one paper scenario (Figures 3 or 4) on the worker
// pool. With default Options the result is bit-identical to the sequential
// sim.RunScenario for any worker count. On job failures it returns the
// partial scenario (completed points only) together with an Errors value.
func RunScenario(ctx context.Context, scenario int, taskCounts []int, horizonSec float64, seed uint64, opt Options) (*sim.ScenarioRun, error) {
	jobs, err := ScenarioJobs(scenario, taskCounts, horizonSec, seed, opt)
	if err != nil {
		return nil, err
	}
	results := Run(ctx, jobs, opt)
	out := &sim.ScenarioRun{
		Scenario:   scenario,
		TaskCounts: taskCounts,
		Series:     map[string][]metrics.Point{},
	}
	per := len(taskCounts)
	for i, v := range sim.ScenarioVariants() {
		out.Series[v.Name] = seriesOf(results[i*per : (i+1)*per])
		out.Order = append(out.Order, v.Name)
	}
	return out, Err(results)
}

package runner

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"sgprs/internal/des"
	"sgprs/internal/gpu"
)

// panicObserver blows up on the first kernel start — a stand-in for any
// buggy user-supplied observer.
type panicObserver struct{}

func (panicObserver) KernelStarted(k *gpu.Kernel, now des.Time)  { panic("observer exploded") }
func (panicObserver) KernelFinished(k *gpu.Kernel, now des.Time) {}

// TestRunRecoversPanickingJob pins the pool's fault isolation: a job that
// panics mid-simulation is finalized with a JobError carrying the panic and
// its stack, while its siblings — including later jobs drained by the same
// worker — complete normally and bit-identically to a clean sweep.
func TestRunRecoversPanickingJob(t *testing.T) {
	good := testBase("good")
	bad := testBase("bad")
	bad.Observer = panicObserver{}
	jobs := []Job{
		{Variant: "good", Tasks: 2, Config: withTasks(good, 2)},
		{Variant: "bad", Tasks: 2, Config: withTasks(bad, 2)},
		{Variant: "good", Tasks: 4, Config: withTasks(good, 4)},
	}
	// One worker forces the panicking job and a later clean job through the
	// same (rebuilt) session.
	results := Run(context.Background(), jobs, Options{Jobs: 1})
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("clean jobs failed: %v / %v", results[0].Err, results[2].Err)
	}
	err := results[1].Err
	if err == nil {
		t.Fatal("panicking job reported no error")
	}
	if !strings.Contains(err.Error(), "observer exploded") {
		t.Errorf("error does not carry the panic value: %v", err)
	}
	if !strings.Contains(err.Error(), "panic_test.go") {
		t.Errorf("error does not carry the stack: %v", err)
	}

	// The post-panic session rebuild keeps later results bit-identical to a
	// sweep that never panicked.
	clean := Run(context.Background(), []Job{
		{Variant: "good", Tasks: 4, Config: withTasks(good, 4)},
	}, Options{Jobs: 1})
	if clean[0].Err != nil {
		t.Fatalf("reference run failed: %v", clean[0].Err)
	}
	if !reflect.DeepEqual(results[2].Result, clean[0].Result) {
		t.Error("job after a panic differs from a clean run")
	}
}

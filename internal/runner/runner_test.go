package runner

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"sgprs/internal/sim"
)

// testCounts and testHorizon keep the determinism sweeps fast: the light
// half of the ramp at a 2-second horizon still exercises every variant.
var testCounts = []int{2, 4}

const testHorizon = 2

func testBase(name string) sim.RunConfig {
	return sim.RunConfig{
		Kind:       sim.KindSGPRS,
		Name:       name,
		ContextSMs: sim.ContextPool(2, 1.5, 68),
		NumTasks:   1,
		HorizonSec: testHorizon,
		Seed:       1,
	}
}

// TestScenarioMatchesSequential proves the tentpole determinism claim: for
// both paper scenarios, parallel RunScenario output is bit-identical to the
// sequential reference driver in package sim, regardless of worker count.
func TestScenarioMatchesSequential(t *testing.T) {
	for _, scenario := range []int{1, 2} {
		seq, err := sim.RunScenario(scenario, testCounts, testHorizon, 1)
		if err != nil {
			t.Fatalf("scenario %d sequential: %v", scenario, err)
		}
		for _, jobs := range []int{0, 1, 3, 8} {
			par, err := RunScenario(context.Background(), scenario, testCounts, testHorizon, 1, Options{Jobs: jobs})
			if err != nil {
				t.Fatalf("scenario %d jobs=%d: %v", scenario, jobs, err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("scenario %d jobs=%d: parallel output differs from sequential", scenario, jobs)
			}
		}
	}
}

// TestSweepSeriesMatchesSequential pins the single-series driver to the
// sequential reference as well.
func TestSweepSeriesMatchesSequential(t *testing.T) {
	base := testBase("sgprs")
	seq, err := sim.SweepSeries(base, testCounts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepSeries(context.Background(), base, testCounts, Options{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel series differs from sequential")
	}
}

// TestWorkerCountInvariance: one worker and many workers yield identical
// full results (not just summaries).
func TestWorkerCountInvariance(t *testing.T) {
	jobs := SweepJobs(testBase("sgprs"), []int{1, 2, 3, 4}, Options{})
	one := Run(context.Background(), jobs, Options{Jobs: 1})
	many := Run(context.Background(), jobs, Options{Jobs: 8})
	if !reflect.DeepEqual(one, many) {
		t.Error("results differ between 1 and 8 workers")
	}
}

// TestFailureAttribution: a failing job reports its (variant, task count)
// without cancelling or discarding completed siblings.
func TestFailureAttribution(t *testing.T) {
	good := testBase("good")
	bad := testBase("broken")
	bad.ContextSMs = nil // fails Normalize
	jobs := []Job{
		{Variant: "good", Tasks: 2, Config: withTasks(good, 2)},
		{Variant: "broken", Tasks: 3, Config: withTasks(bad, 3)},
		{Variant: "good", Tasks: 4, Config: withTasks(good, 4)},
	}
	results := Run(context.Background(), jobs, Options{Jobs: 2})
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy siblings failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[0].Result.Summary.TotalFPS <= 0 || results[2].Result.Summary.TotalFPS <= 0 {
		t.Error("completed siblings lost their results")
	}
	if results[1].Err == nil {
		t.Fatal("broken job reported no error")
	}
	var je JobError
	if !errors.As(results[1].Err, &je) {
		t.Fatalf("error %T does not unwrap to JobError", results[1].Err)
	}
	if je.Variant != "broken" || je.Tasks != 3 {
		t.Errorf("attribution = (%q, %d), want (broken, 3)", je.Variant, je.Tasks)
	}

	err := Err(results)
	if err == nil {
		t.Fatal("Err(results) = nil with one failure")
	}
	var es Errors
	if !errors.As(err, &es) || len(es) != 1 {
		t.Fatalf("Err(results) = %v, want one-element Errors", err)
	}
	if msg := err.Error(); !strings.Contains(msg, "broken") || !strings.Contains(msg, "n=3") {
		t.Errorf("error message %q lacks coordinates", msg)
	}
}

// TestSweepSeriesKeepsFinishedPoints: the parallel sweep returns completed
// points alongside the error instead of discarding them.
func TestSweepSeriesKeepsFinishedPoints(t *testing.T) {
	base := testBase("sgprs")
	counts := []int{2, 0, 4} // 0 tasks fails Normalize
	series, err := SweepSeries(context.Background(), base, counts, Options{Jobs: 2})
	if err == nil {
		t.Fatal("want error for n=0 point")
	}
	if len(series) != 2 || series[0].Tasks != 2 || series[1].Tasks != 4 {
		t.Fatalf("series = %+v, want completed points n=2 and n=4", series)
	}
}

// TestProgress: the callback is serialized, called once per job, with a
// monotonic done count ending at total.
func TestProgress(t *testing.T) {
	jobs := SweepJobs(testBase("sgprs"), []int{1, 2, 3}, Options{})
	var calls int
	last := 0
	seen := map[int]bool{}
	_ = Run(context.Background(), jobs, Options{Jobs: 3, Progress: func(done, total int, r JobResult) {
		calls++
		if total != 3 {
			t.Errorf("total = %d, want 3", total)
		}
		if done != last+1 {
			t.Errorf("done jumped from %d to %d", last, done)
		}
		last = done
		seen[r.Index] = true
	}})
	if calls != 3 || len(seen) != 3 {
		t.Errorf("calls = %d, distinct indices = %d, want 3/3", calls, len(seen))
	}
}

// TestDeriveSeed: pure, stable, and sensitive to every coordinate.
func TestDeriveSeed(t *testing.T) {
	s := DeriveSeed(1, "sgprs-1.5x", 8)
	if s != DeriveSeed(1, "sgprs-1.5x", 8) {
		t.Error("DeriveSeed is not deterministic")
	}
	for _, other := range []uint64{
		DeriveSeed(2, "sgprs-1.5x", 8),
		DeriveSeed(1, "sgprs-2.0x", 8),
		DeriveSeed(1, "sgprs-1.5x", 9),
	} {
		if other == s {
			t.Error("DeriveSeed collides across adjacent coordinates")
		}
	}
}

// TestDecorrelateSeeds: expansion stamps DeriveSeed per job; the default
// keeps the base seed (the sequential contract).
func TestDecorrelateSeeds(t *testing.T) {
	base := testBase("sgprs")
	plain := SweepJobs(base, testCounts, Options{})
	for _, j := range plain {
		if j.Config.Seed != base.Seed {
			t.Errorf("default expansion changed seed: %d", j.Config.Seed)
		}
	}
	dec := SweepJobs(base, testCounts, Options{DecorrelateSeeds: true})
	for i, j := range dec {
		want := DeriveSeed(base.Seed, "sgprs", testCounts[i])
		if j.Config.Seed != want {
			t.Errorf("decorrelated seed[%d] = %d, want %d", i, j.Config.Seed, want)
		}
	}
	if dec[0].Config.Seed == dec[1].Config.Seed {
		t.Error("decorrelated seeds collide across task counts")
	}
}

// TestSweepGrid: a flat multi-variant fan-out groups results back into
// per-variant series in submission order.
func TestSweepGrid(t *testing.T) {
	bases := []sim.RunConfig{testBase("a"), testBase("b")}
	series, order, err := SweepGrid(context.Background(), bases, testCounts, Options{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []string{"a", "b"}) {
		t.Errorf("order = %v", order)
	}
	for _, name := range order {
		if len(series[name]) != len(testCounts) {
			t.Errorf("series %q has %d points, want %d", name, len(series[name]), len(testCounts))
		}
	}
	if !reflect.DeepEqual(series["a"], series["b"]) {
		t.Error("identical bases produced different series")
	}
}

// TestSweepGridEmptyCounts: an empty sweep axis yields empty series per
// variant, not a panic (regression: order was only populated per non-empty
// job block while the fold indexed it per base).
func TestSweepGridEmptyCounts(t *testing.T) {
	bases := []sim.RunConfig{testBase("a"), {Kind: sim.KindNaive}}
	series, order, err := SweepGrid(context.Background(), bases, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []string{"a", "naive"}) {
		t.Errorf("order = %v", order)
	}
	for _, name := range order {
		if got, ok := series[name]; !ok || len(got) != 0 {
			t.Errorf("series[%q] = %v, want present and empty", name, got)
		}
	}
}

// TestRunEmpty: a zero-job fan-out returns cleanly.
func TestRunEmpty(t *testing.T) {
	if got := Run(context.Background(), nil, Options{}); len(got) != 0 {
		t.Errorf("Run(nil) = %v", got)
	}
	if err := Err(nil); err != nil {
		t.Errorf("Err(nil) = %v", err)
	}
}

func withTasks(cfg sim.RunConfig, n int) sim.RunConfig {
	cfg.NumTasks = n
	return cfg
}

// TestCancellationSingleWorker pins the exact cancellation contract with one
// worker (deterministic on the single-core container): the job in flight
// when cancel fires drains and keeps its result, no further job is
// dispatched, and every undispatched job carries a ctx-attributed error.
func TestCancellationSingleWorker(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := SweepJobs(testBase("sgprs"), []int{2, 3, 4, 5}, Options{})
	var streamed int
	results := Run(ctx, jobs, Options{Jobs: 1, Progress: func(done, total int, r JobResult) {
		streamed++
		if done == 1 {
			cancel() // while job 0 is being finalized; jobs 1..3 are undispatched
		}
	}})
	if streamed != len(jobs) {
		t.Errorf("progress streamed %d results, want %d (cancelled jobs included)", streamed, len(jobs))
	}
	if results[0].Err != nil {
		t.Fatalf("in-flight job was not drained: %v", results[0].Err)
	}
	if results[0].Result.Summary.TotalFPS <= 0 {
		t.Error("drained job lost its result")
	}
	for i := 1; i < len(results); i++ {
		if !errors.Is(results[i].Err, context.Canceled) {
			t.Errorf("job %d error = %v, want context.Canceled attribution", i, results[i].Err)
		}
		var je JobError
		if !errors.As(results[i].Err, &je) || je.Tasks != jobs[i].Tasks {
			t.Errorf("job %d lost its sweep coordinates: %v", i, results[i].Err)
		}
	}
	err := Err(results)
	if err == nil {
		t.Fatal("Err(results) = nil after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("aggregate error %v does not unwrap to context.Canceled", err)
	}
}

// TestCancellationPreCancelled: a context cancelled before Run dispatches
// anything yields zero executed jobs and one ctx-attributed error per job.
func TestCancellationPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := SweepJobs(testBase("sgprs"), testCounts, Options{})
	results := Run(ctx, jobs, Options{Jobs: 2})
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d = %+v, want context.Canceled", i, r.Err)
		}
	}
}

// TestCancelledSweepKeepsPoints: a cancelled sweep returns the completed
// points alongside the ctx-attributed Errors value — the partial-results
// contract extends to cancellation.
func TestCancelledSweepKeepsPoints(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := Options{Jobs: 1, Progress: func(done, total int, r JobResult) {
		if done == 2 {
			cancel()
		}
	}}
	series, err := SweepSeries(ctx, testBase("sgprs"), []int{2, 3, 4, 5}, opt)
	if len(series) != 2 || series[0].Tasks != 2 || series[1].Tasks != 3 {
		t.Fatalf("series = %+v, want the two completed points", series)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("sweep error = %v, want context.Canceled", err)
	}
}

// TestSweepGridDuplicateNames: two bases resolving to the same variant name
// are rejected instead of silently merging into one map key.
func TestSweepGridDuplicateNames(t *testing.T) {
	bases := []sim.RunConfig{testBase("dup"), testBase("dup")}
	series, order, err := SweepGrid(context.Background(), bases, testCounts, Options{})
	if err == nil || !strings.Contains(err.Error(), "duplicate variant name") {
		t.Fatalf("err = %v, want duplicate variant name error", err)
	}
	if series != nil || order != nil {
		t.Errorf("duplicate grid still returned series %v order %v", series, order)
	}
	// Unnamed configs of the same kind collide on the kind name too.
	anon := []sim.RunConfig{{Kind: sim.KindSGPRS}, {Kind: sim.KindSGPRS}}
	if _, _, err := SweepGrid(context.Background(), anon, testCounts, Options{}); err == nil {
		t.Error("unnamed same-kind bases were not rejected")
	}
}

package runner

import (
	"context"
	"reflect"
	"testing"

	"sgprs/internal/cluster"
	"sgprs/internal/fault"
	"sgprs/internal/rt"
	"sgprs/internal/sim"
)

// fleetBase is a crash-and-failover fleet point: three devices, device 1
// lost mid-measurement, migrate failover with an admission ceiling that
// bites while degraded.
func fleetBase(name string) sim.RunConfig {
	cfg := sim.RunConfig{
		Kind:         sim.KindSGPRS,
		Name:         name,
		ContextSMs:   sim.ContextPool(3, 1.0, 68),
		NumTasks:     1,
		HorizonSec:   testHorizon + 1,
		Seed:         7,
		Devices:      3,
		Placement:    cluster.PlaceBinPack,
		Failover:     rt.FailoverMigrate,
		AdmitCeiling: 0.7,
		Faults: &fault.Config{
			DeviceFaults: []fault.DeviceFault{{Device: 1, StartSec: 1.2, RestartSec: 2.2}},
		},
	}
	return cfg
}

// TestFleetWorkerInvariance extends the worker-equivalence contract to fleet
// runs: the same crash-and-failover job list yields bit-identical full
// results at 1, 2, and 4 workers, and the failover path actually fired (the
// equality is not vacuous).
func TestFleetWorkerInvariance(t *testing.T) {
	jobs := SweepJobs(fleetBase("fleet"), []int{6, 12, 18}, Options{})
	ref := Run(context.Background(), jobs, Options{Jobs: 1})
	for _, r := range ref {
		if r.Err != nil {
			t.Fatalf("fleet job n=%d: %v", r.Job.Tasks, r.Err)
		}
		fl := r.Result.Summary.Fleet
		if fl.Crashes != 1 || fl.Migrations == 0 {
			t.Fatalf("fleet job n=%d saw no failover activity: %+v", r.Job.Tasks, fl)
		}
	}
	for _, workers := range []int{2, 4} {
		got := Run(context.Background(), jobs, Options{Jobs: workers})
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("fleet results differ between 1 and %d workers", workers)
		}
	}
}

// TestFleetMixedPool: fleet and single-device jobs interleaved through the
// same pool (whose workers reuse one session each) leave each other's
// results untouched — the single-device points still match a pool that never
// saw a fleet job.
func TestFleetMixedPool(t *testing.T) {
	single := SweepJobs(testBase("sgprs"), testCounts, Options{})
	ref := Run(context.Background(), single, Options{Jobs: 1})

	mixed := []Job{
		single[0],
		SweepJobs(fleetBase("fleet"), []int{8}, Options{})[0],
		single[1],
	}
	got := Run(context.Background(), mixed, Options{Jobs: 1})
	for i, want := range []int{0, 2} {
		if got[want].Err != nil {
			t.Fatalf("mixed job %d: %v", want, got[want].Err)
		}
		if !reflect.DeepEqual(ref[i].Result, got[want].Result) {
			t.Errorf("single-device job %d changed after sharing a session with a fleet run", i)
		}
	}
	if got[1].Err != nil {
		t.Fatalf("fleet job in mixed pool: %v", got[1].Err)
	}
}

// Package runner is the parallel experiment driver: it fans independent
// simulation runs out across a bounded worker pool and aggregates ordered
// results with per-job error attribution.
//
// Every figure-regenerating sweep in this repository is a grid of mutually
// independent sim.Run calls (variant × task count), so the fan-out is
// embarrassingly parallel. Determinism is preserved by construction: each
// job's seed is a pure function of its identity (base seed, variant, task
// count) fixed at expansion time, never of worker scheduling, so results
// are bit-identical across worker counts — runner output with any Jobs
// setting equals the sequential drivers in package sim, which remain the
// reference implementation (see DESIGN.md §5-§6).
//
// A failed job never cancels or discards its siblings: Run always returns
// one JobResult per Job, and Err collects the failures — with their sweep
// coordinates — into a single Errors value.
//
// Cancellation is cooperative and job-grained: when the context passed to
// Run is cancelled the pool stops dispatching new jobs, drains the runs
// already in flight (a discrete-event run is not interruptible midway), and
// attributes every undispatched job's error to the context. Completed
// results are always returned; errors.Is(Err(results), context.Canceled)
// reports the cancellation.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"

	"sgprs/internal/memo"
	"sgprs/internal/sim"
)

// Job is one unit of work: a fully specified simulation run plus the sweep
// coordinates it is attributed to in results and errors.
type Job struct {
	// Variant names the series the job belongs to (e.g. "sgprs-1.5x").
	Variant string
	// Tasks is the job's sweep coordinate (task count).
	Tasks int
	// Config is the run to execute. Jobs must not share a mutable
	// Observer: observers attached here are invoked concurrently from
	// pool workers.
	Config sim.RunConfig
}

// JobResult pairs a job with its outcome. Exactly one of Result/Err is
// meaningful: Err non-nil means the run failed.
type JobResult struct {
	Job Job
	// Index is the job's position in the submitted slice; Run returns
	// results sorted by it regardless of completion order.
	Index  int
	Result sim.Result
	Err    error
}

// JobError attributes one failed run to its sweep coordinates.
type JobError struct {
	Variant string
	Tasks   int
	Err     error
}

// Error formats the failure with its coordinates.
func (e JobError) Error() string {
	return fmt.Sprintf("%s n=%d: %v", e.Variant, e.Tasks, e.Err)
}

// Unwrap exposes the underlying run error.
func (e JobError) Unwrap() error { return e.Err }

// Errors aggregates every failed job of a fan-out. It is returned alongside
// the completed results, never instead of them.
type Errors []JobError

// Unwrap exposes the individual failures, so errors.Is sees through the
// aggregate — a cancelled sweep satisfies errors.Is(err, context.Canceled).
func (es Errors) Unwrap() []error {
	out := make([]error, len(es))
	for i, e := range es {
		out[i] = e
	}
	return out
}

// Error lists every failure, one per line.
func (es Errors) Error() string {
	if len(es) == 1 {
		return "runner: 1 job failed: " + es[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "runner: %d jobs failed:", len(es))
	for _, e := range es {
		b.WriteString("\n  ")
		b.WriteString(e.Error())
	}
	return b.String()
}

// Progress streams per-job results as the pool finalizes them. Calls are
// serialized by the pool; done is the number of finalized jobs so far
// (monotonic, ends at total even when the context is cancelled — skipped
// jobs stream through with their ctx-attributed error). Completion order is
// scheduling-dependent — use r.Index for identity.
type Progress func(done, total int, r JobResult)

// Options configures a fan-out.
type Options struct {
	// Jobs is the worker count. Zero or negative means one worker per
	// available CPU (runtime.GOMAXPROCS(0)). The worker count never
	// affects results, only wall-clock time.
	Jobs int
	// Progress, when non-nil, is invoked after every job is finalized —
	// the streaming per-job result callback.
	Progress Progress
	// DecorrelateSeeds gives every expanded job a distinct seed derived
	// from (base seed, variant, task count) via DeriveSeed. The default
	// (false) keeps the base seed on every job, matching the sequential
	// drivers in package sim bit-for-bit. Only affects the expansion
	// helpers (SweepSeries, RunScenario, ...), not explicit Job lists;
	// the spec-backed facade wrappers translate it to exp.SeedDerived,
	// which stamps the same seeds.
	DecorrelateSeeds bool
	// Cache is the offline-phase cache shared by the pool's workers; nil
	// means the process-wide memo.Default(). The cache's per-key
	// singleflight ensures each distinct (graph, task shape) is profiled
	// by exactly one worker while the others proceed. Cache hits never
	// change results (memo's package comment has the argument; tests in
	// internal/sim pin it).
	Cache *memo.Cache
	// NoOfflineCache disables offline-phase memoization entirely: every
	// run rebuilds the reference graph and re-profiles every task. Only
	// useful for benchmarking the cache itself and for equivalence tests.
	NoOfflineCache bool
}

// cache resolves the effective offline cache for a fan-out.
func (o Options) cache() *memo.Cache {
	if o.NoOfflineCache {
		return nil
	}
	if o.Cache != nil {
		return o.Cache
	}
	return memo.Default()
}

func (o Options) workers(jobs int) int {
	w := o.Jobs
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every job on the worker pool and returns results in job
// order. It never returns early: a failing job records its error and the
// pool keeps draining, so completed siblings are always present. Collect
// failures with Err.
//
// A cancelled ctx stops the dispatch of new jobs; runs already in flight
// drain to completion (their results are kept), and every job not yet
// dispatched is finalized with a JobError wrapping ctx.Err(). A nil ctx is
// treated as context.Background().
func Run(ctx context.Context, jobs []Job, opt Options) []JobResult {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]JobResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	var (
		next int64 = -1
		done int
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	total := len(jobs)
	cache := opt.cache()
	for w := opt.workers(total); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns one long-lived run session: engine,
			// device, job pool, and task structures are reused across
			// every job the worker drains. Session reuse is
			// bit-identical to fresh runs (sim's session-equivalence
			// tests pin it), so this changes wall-clock and
			// allocation, never results.
			sess := sim.NewSession(cache)
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= total {
					return
				}
				r := JobResult{Job: jobs[i], Index: i}
				// The ctx check sits between claim and run: a job
				// claimed after cancellation is finalized with the
				// context's error instead of executing, while runs
				// already past this point drain to completion.
				if cerr := ctx.Err(); cerr != nil {
					r.Err = JobError{Variant: jobs[i].Variant, Tasks: jobs[i].Tasks, Err: cerr}
				} else if res, ok, err := runJob(sess, jobs[i].Config); err != nil {
					r.Err = JobError{Variant: jobs[i].Variant, Tasks: jobs[i].Tasks, Err: err}
					if !ok {
						// A panic leaves the session's engine, device,
						// and collector in unknown state; reusing it
						// could corrupt every later job on this worker.
						sess = sim.NewSession(cache)
					}
				} else {
					r.Result = res
				}
				results[i] = r
				if opt.Progress != nil {
					mu.Lock()
					done++
					opt.Progress(done, total, r)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return results
}

// runJob executes one job on the worker's session, converting a panic
// anywhere inside the simulation (a buggy observer, a scheduler invariant
// violation) into an ordinary per-job error carrying the stack — one bad job
// must not tear down the pool or lose its finished siblings. The ok result
// reports whether the session survived: false after a panic, telling the
// caller to discard it.
func runJob(sess *sim.Session, cfg sim.RunConfig) (res sim.Result, ok bool, err error) {
	ok = true
	defer func() {
		if p := recover(); p != nil {
			ok = false
			err = fmt.Errorf("runner: run panicked: %v\n%s", p, debug.Stack())
		}
	}()
	res, err = sess.Run(cfg)
	return res, ok, err
}

// Err collects the failures of a result set into an Errors value, or nil
// if every job succeeded.
func Err(results []JobResult) error {
	var es Errors
	for _, r := range results {
		if r.Err != nil {
			var je JobError
			if e, ok := r.Err.(JobError); ok {
				je = e
			} else {
				je = JobError{Variant: r.Job.Variant, Tasks: r.Job.Tasks, Err: r.Err}
			}
			es = append(es, je)
		}
	}
	if len(es) == 0 {
		return nil
	}
	return es
}

// DeriveSeed mixes a per-job seed from the base seed and the job's sweep
// coordinates. It is a pure function — the same (base, variant, tasks)
// always yields the same seed, independent of scheduling — so decorrelated
// sweeps stay exactly reproducible. FNV-1a absorbs the coordinates and a
// splitmix64 finalizer scrambles the result.
func DeriveSeed(base uint64, variant string, tasks int) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	mix := func(b byte) { h ^= uint64(b); h *= fnvPrime }
	for i := 0; i < 8; i++ {
		mix(byte(base >> (8 * i)))
	}
	for i := 0; i < len(variant); i++ {
		mix(variant[i])
	}
	for i := 0; i < 8; i++ {
		mix(byte(uint64(tasks) >> (8 * i)))
	}
	// splitmix64 finalizer.
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

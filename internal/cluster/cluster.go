// Package cluster is the fleet layer (DESIGN.md §15): N gpu.Device instances
// behind one dispatcher on the single shared des.Engine loop. Each device
// hosts its own scheduler instance; the dispatcher owns chain placement —
// every task is homed on exactly one device — and routes releases to the
// home's scheduler. Pluggable placement policies decide the homes (bin-pack
// by offline utilization, SGPRS context-fit, load-stealing with a per-chain
// migration cost), and device-level failure domains make the fleet
// survivable: a crash aborts the device's resident kernels, drains its
// queues, and re-places the affected chains under an rt.FailoverPolicy,
// while an admission controller sheds the lowest-priority chains' releases
// when surviving capacity falls below a configurable ceiling.
//
// Determinism discipline: devices and chains are iterated in admission order
// (fleet position, task ID) everywhere; crash/restart edges are ordinary
// seeded engine events; the dispatcher's dedicated RNG stream is forked from
// the fleet seed so any future randomized policy never perturbs the workload
// or device cursors. The current policies are draw-free, so a fleet run is a
// pure function of its configuration.
package cluster

import (
	"fmt"

	"sgprs/internal/des"
	"sgprs/internal/fault"
	"sgprs/internal/gpu"
	"sgprs/internal/metrics"
	"sgprs/internal/rt"
	"sgprs/internal/sched"
)

// rngSalt separates the dispatcher's draw stream from every other consumer
// of the fleet seed. The stream is reserved — the built-in policies are
// draw-free — so future randomized placement never shifts another cursor.
const rngSalt = 0xF1EE7

// Placement selects how chains are homed onto fleet devices.
type Placement int

const (
	// PlaceBinPack homes each chain (in task order) on the device with the
	// smallest summed offline load — TotalWorkMS/period over the chains
	// already homed there — ties to the lowest fleet index.
	PlaceBinPack Placement = iota
	// PlaceContextFit homes each chain on the device whose scheduler
	// contexts are least crowded (chains per context), ties to the lowest
	// fleet index — the SGPRS-shaped heuristic: context slots, not raw
	// load, are the admission bottleneck.
	PlaceContextFit
	// PlaceLoadSteal starts round-robin and re-homes a chain at release
	// time when its home device's demand ratio exceeds the least-loaded
	// survivor's by more than the steal margin, paying the migration cost
	// and honouring a per-chain cooldown.
	PlaceLoadSteal
)

// String names the policy for reports and config round-trips.
func (p Placement) String() string {
	switch p {
	case PlaceBinPack:
		return "bin-pack"
	case PlaceContextFit:
		return "context-fit"
	case PlaceLoadSteal:
		return "load-steal"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// ParsePlacement resolves the config-file spelling of a placement policy;
// the empty string means PlaceBinPack.
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "", "bin-pack", "binpack":
		return PlaceBinPack, nil
	case "context-fit":
		return PlaceContextFit, nil
	case "load-steal":
		return PlaceLoadSteal, nil
	default:
		return PlaceBinPack, fmt.Errorf("cluster: unknown placement policy %q (want bin-pack, context-fit, or load-steal)", s)
	}
}

// Config parameterises the dispatcher. Zero-valued cost knobs take the
// defaults documented on each field.
type Config struct {
	// Placement selects the chain-homing policy.
	Placement Placement
	// Failover selects what happens to chains homed on a crashed device;
	// FailoverDefault means FailoverMigrate.
	Failover rt.FailoverPolicy
	// AdmitCeiling, when positive, is the surviving-capacity fraction
	// below which the admission controller sheds releases: with upFrac =
	// surviving SMs / total SMs < AdmitCeiling, only the first
	// ⌈upFrac·N⌉ chains (task order — lowest IDs are highest priority)
	// keep releasing.
	AdmitCeiling float64
	// MigrationBaseMS and MigrationPerStageMS price a chain migration:
	// base + perStage·stages of blackout while weights and state re-stage
	// (defaults 5 and 1).
	MigrationBaseMS     float64
	MigrationPerStageMS float64
	// RetryBackoffMS delays the first release delivered to a restarted
	// origin device under FailoverRetry (default 10).
	RetryBackoffMS float64
	// StealMargin is the demand-ratio gap that triggers a load-steal
	// migration (default 0.5); StealCooldownMS is the per-chain minimum
	// time between steals (default 100).
	StealMargin     float64
	StealCooldownMS float64
	// Seed feeds the dispatcher's dedicated RNG stream.
	Seed uint64
	// DeviceFaults lists the device-level crash/restart events to inject.
	DeviceFaults []fault.DeviceFault
}

// Member is one fleet device with its resident scheduler, already attached.
type Member struct {
	Dev *gpu.Device
	Sch sched.Scheduler
}

// Marker receives fleet-degradation transitions — the metrics collector
// implements it to attribute released jobs to intervals where at least one
// device was down.
type Marker interface {
	SetFleetDegraded(on bool)
}

// node is the dispatcher's bookkeeping for one fleet member.
type node struct {
	dev *gpu.Device
	sch sched.Scheduler
	ev  sched.Evictor
	up  bool
}

// Fleet is the dispatcher. It implements sched.Scheduler so the workload
// generator drives it exactly like a single-device scheduler; it is wired at
// construction (New), so Attach always errors.
type Fleet struct {
	cfg     Config
	eng     *des.Engine
	nodes   []*node
	tasks   []*rt.Task // admission order; IDs are dense [0, len)
	horizon des.Time

	home     []int      // task ID → fleet index
	shed     []bool     // task ID → chain permanently shed
	admitted []bool     // task ID → passes the admission controller
	blackout []des.Time // task ID → releases before this instant are delayed
	nextOK   []des.Time // task ID → earliest next load-steal (cooldown)

	// rng is the dispatcher's reserved draw stream (see rngSalt).
	rng *des.RNG

	marker        Marker
	downCount     int
	stats         metrics.FleetStats
	failoverSumMS float64
	failoverN     int

	fwdFn func(now des.Time, arg any)
}

// New builds the dispatcher over the given members and homes every chain.
// Members' schedulers must already be attached to their devices (placement
// inspects their contexts) and must implement sched.Evictor — a fleet member
// that cannot drain on device loss is rejected.
func New(eng *des.Engine, cfg Config, members []Member, tasks []*rt.Task, horizon des.Time) (*Fleet, error) {
	if len(members) < 2 {
		return nil, fmt.Errorf("cluster: fleet needs at least 2 devices, got %d", len(members))
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("cluster: fleet needs at least one task")
	}
	if cfg.AdmitCeiling < 0 || cfg.AdmitCeiling > 1 {
		return nil, fmt.Errorf("cluster: admission ceiling %v outside [0, 1]", cfg.AdmitCeiling)
	}
	for i, df := range cfg.DeviceFaults {
		if df.Device >= len(members) {
			return nil, fmt.Errorf("cluster: device fault %d targets device %d, fleet has %d", i, df.Device, len(members))
		}
	}
	f := &Fleet{
		cfg:     cfg,
		eng:     eng,
		tasks:   tasks,
		horizon: horizon,
		rng:     des.NewRNG(cfg.Seed).Fork(rngSalt),
	}
	if f.cfg.MigrationBaseMS == 0 {
		f.cfg.MigrationBaseMS = 5
	}
	if f.cfg.MigrationPerStageMS == 0 {
		f.cfg.MigrationPerStageMS = 1
	}
	if f.cfg.RetryBackoffMS == 0 {
		f.cfg.RetryBackoffMS = 10
	}
	if f.cfg.StealMargin == 0 {
		f.cfg.StealMargin = 0.5
	}
	if f.cfg.StealCooldownMS == 0 {
		f.cfg.StealCooldownMS = 100
	}
	for i, m := range members {
		ev, ok := m.Sch.(sched.Evictor)
		if !ok {
			return nil, fmt.Errorf("cluster: device %d scheduler %q implements no EvictAll", i, m.Sch.Name())
		}
		f.nodes = append(f.nodes, &node{dev: m.Dev, sch: m.Sch, ev: ev, up: true})
	}
	n := 0
	for _, t := range tasks {
		if t.ID < 0 {
			return nil, fmt.Errorf("cluster: task %s has negative ID", t)
		}
		if t.ID+1 > n {
			n = t.ID + 1
		}
	}
	f.home = make([]int, n)
	f.shed = make([]bool, n)
	f.admitted = make([]bool, n)
	f.blackout = make([]des.Time, n)
	f.nextOK = make([]des.Time, n)
	for i := range f.home {
		f.home[i] = -1
	}
	for i, t := range tasks {
		f.admitted[t.ID] = true
		f.home[t.ID] = f.place(i, t)
	}
	f.fwdFn = func(now des.Time, arg any) { f.OnRelease(arg.(*rt.Job), now) }
	return f, nil
}

// place homes task t (the i-th of the admission order) under the configured
// placement policy. Homes of earlier tasks are already set.
func (f *Fleet) place(i int, t *rt.Task) int {
	switch f.cfg.Placement {
	case PlaceLoadSteal:
		return i % len(f.nodes)
	case PlaceContextFit:
		best, bestFill := 0, 0.0
		for di, nd := range f.nodes {
			fill := float64(f.homedCount(di)) / float64(max(1, len(nd.dev.Contexts())))
			if di == 0 || fill < bestFill {
				best, bestFill = di, fill
			}
		}
		return best
	case PlaceBinPack:
		best, bestW := 0, 0.0
		for di := range f.nodes {
			w := f.nodeWeight(di)
			if di == 0 || w < bestW {
				best, bestW = di, w
			}
		}
		return best
	}
	panic(fmt.Sprintf("cluster: unknown placement %d", int(f.cfg.Placement)))
}

// taskWeight is a chain's offline load: profiled work per period.
func taskWeight(t *rt.Task) float64 {
	ms := t.Period.Milliseconds()
	if ms <= 0 {
		return 0
	}
	return t.Graph.TotalWorkMS() / ms
}

// nodeWeight sums the offline load of the live chains homed on device di, in
// task order — a fixed summation order, so the float result is a pure
// function of the homing state.
func (f *Fleet) nodeWeight(di int) float64 {
	var w float64
	for _, t := range f.tasks {
		if f.home[t.ID] == di && !f.shed[t.ID] {
			w += taskWeight(t)
		}
	}
	return w
}

// homedCount counts the live chains homed on device di.
func (f *Fleet) homedCount(di int) int {
	n := 0
	for _, t := range f.tasks {
		if f.home[t.ID] == di && !f.shed[t.ID] {
			n++
		}
	}
	return n
}

// Name implements sched.Scheduler, delegating to the member schedulers (all
// members share one configuration, so reports keep the familiar label).
func (f *Fleet) Name() string { return f.nodes[0].sch.Name() }

// Attach implements sched.Scheduler by rejecting the call: the fleet is
// wired at construction — members attach to their own devices before New.
func (f *Fleet) Attach(eng *des.Engine, dev *gpu.Device, tasks []*rt.Task) error {
	return fmt.Errorf("cluster: fleet is wired at construction, not via Attach")
}

// Install schedules the configured device-fault edges and connects the
// fleet-degradation marker (may be nil). Call once, before the run starts.
func (f *Fleet) Install(marker Marker) {
	f.marker = marker
	for _, df := range f.cfg.DeviceFaults {
		df := df
		f.eng.ScheduleFunc(des.FromSeconds(df.StartSec), "cluster.crash", func(now des.Time) {
			f.crash(df.Device, df.RestartSec, now)
		})
		if df.RestartSec > 0 {
			f.eng.ScheduleFunc(des.FromSeconds(df.RestartSec), "cluster.restart", func(now des.Time) {
				f.restore(df.Device, now)
			})
		}
	}
}

// OnRelease implements sched.Scheduler: it routes one released job through
// shedding, admission, stealing, and blackout to its home device's
// scheduler. Releases that cannot be served — shed or unadmitted chains,
// blackouts outlasting the horizon, homes that are down with no plan — are
// discarded immediately and counted as shed.
func (f *Fleet) OnRelease(job *rt.Job, now des.Time) {
	id := job.Task.ID
	if f.shed[id] || !f.admitted[id] {
		f.shedRelease(job, now)
		return
	}
	if f.cfg.Placement == PlaceLoadSteal {
		f.maybeSteal(job.Task, now)
	}
	if bl := f.blackout[id]; now < bl {
		if bl >= f.horizon {
			f.shedRelease(job, now)
			return
		}
		// Deliver when the blackout lifts; the delay is the visible cost
		// of migration or restart-wait, paid by the frames it straddles.
		f.eng.AfterArg(bl-now, "cluster.forward", f.fwdFn, job)
		return
	}
	nd := f.nodes[f.home[id]]
	if !nd.up {
		f.shedRelease(job, now)
		return
	}
	nd.sch.OnRelease(job, now)
}

// shedRelease discards one release the fleet will not serve.
func (f *Fleet) shedRelease(job *rt.Job, now des.Time) {
	f.stats.ShedReleases++
	job.Discard(now)
}

// maybeSteal re-homes a chain whose home device is overloaded relative to
// the least-loaded survivor (PlaceLoadSteal), paying the migration cost as a
// blackout and honouring the per-chain cooldown.
func (f *Fleet) maybeSteal(t *rt.Task, now des.Time) {
	id := t.ID
	if now < f.nextOK[id] {
		return
	}
	hi := f.home[id]
	if !f.nodes[hi].up {
		return
	}
	best, bestR := -1, 0.0
	for di, nd := range f.nodes {
		if !nd.up || di == hi {
			continue
		}
		if r := nd.dev.DemandRatio(); best < 0 || r < bestR {
			best, bestR = di, r
		}
	}
	if best < 0 || f.nodes[hi].dev.DemandRatio() <= bestR+f.cfg.StealMargin {
		return
	}
	f.migrate(t, best, now)
	f.nextOK[id] = now.Add(des.FromMillis(f.cfg.StealCooldownMS))
}

// migrate re-homes chain t onto device di, pricing the move as a blackout.
func (f *Fleet) migrate(t *rt.Task, di int, now des.Time) {
	costMS := f.cfg.MigrationBaseMS + f.cfg.MigrationPerStageMS*float64(len(t.Stages))
	f.home[t.ID] = di
	f.blackout[t.ID] = now.Add(des.FromMillis(costMS))
	f.stats.Migrations++
	f.stats.MigrationCostMS += costMS
}

// crash takes device di down: its scheduler drains (kernels aborted, queues
// flushed, live frames discarded) and every chain homed there is re-placed
// under the failover policy. restartSec is the configured restart instant in
// seconds (0 = permanent loss), which FailoverRetry turns into a blackout.
func (f *Fleet) crash(di int, restartSec float64, now des.Time) {
	nd := f.nodes[di]
	if !nd.up {
		return
	}
	nd.up = false
	f.downCount++
	f.stats.Crashes++
	if f.downCount == 1 && f.marker != nil {
		f.marker.SetFleetDegraded(true)
	}
	nd.ev.EvictAll(now)

	policy := f.cfg.Failover
	if policy == rt.FailoverDefault {
		policy = rt.FailoverMigrate
	}
	for _, t := range f.tasks {
		id := t.ID
		if f.home[id] != di || f.shed[id] {
			continue
		}
		switch policy {
		case rt.FailoverMigrate, rt.FailoverDefault: // Default resolved above
			tgt := f.pickSurvivor()
			if tgt < 0 {
				f.shedChain(id)
				continue
			}
			f.migrate(t, tgt, now)
			f.failoverSumMS += (f.blackout[id] - now).Milliseconds()
			f.failoverN++
		case rt.FailoverRetry:
			if restartSec <= 0 {
				// Permanent loss: there is no origin to wait for.
				f.shedChain(id)
				continue
			}
			bl := des.FromSeconds(restartSec).Add(des.FromMillis(f.cfg.RetryBackoffMS))
			f.blackout[id] = bl
			f.failoverSumMS += (bl - now).Milliseconds()
			f.failoverN++
		case rt.FailoverShed:
			f.shedChain(id)
		}
	}
	f.recomputeAdmission()
}

// restore brings device di back up after a crash window.
func (f *Fleet) restore(di int, now des.Time) {
	nd := f.nodes[di]
	if nd.up {
		return
	}
	nd.up = true
	f.downCount--
	f.stats.Restarts++
	if f.downCount == 0 && f.marker != nil {
		f.marker.SetFleetDegraded(false)
	}
	f.recomputeAdmission()
}

// pickSurvivor returns the least-loaded up device (lowest index ties), or -1
// when the whole fleet is down.
func (f *Fleet) pickSurvivor() int {
	best, bestW := -1, 0.0
	for di, nd := range f.nodes {
		if !nd.up {
			continue
		}
		if w := f.nodeWeight(di); best < 0 || w < bestW {
			best, bestW = di, w
		}
	}
	return best
}

// shedChain permanently drops a chain: every subsequent release discards.
func (f *Fleet) shedChain(id int) {
	f.shed[id] = true
	f.stats.ShedChains++
}

// recomputeAdmission re-derives the admission cut from surviving capacity:
// below the ceiling, only the first ⌈upFrac·N⌉ chains keep releasing.
func (f *Fleet) recomputeAdmission() {
	if f.cfg.AdmitCeiling <= 0 {
		return
	}
	upSMs, totalSMs := 0, 0
	for _, nd := range f.nodes {
		sms := nd.dev.Config().TotalSMs
		totalSMs += sms
		if nd.up {
			upSMs += sms
		}
	}
	cut := len(f.tasks)
	if frac := float64(upSMs) / float64(totalSMs); frac < f.cfg.AdmitCeiling {
		cut = int(frac * float64(len(f.tasks)))
		if cut < 1 {
			cut = 1
		}
	}
	for i, t := range f.tasks {
		f.admitted[t.ID] = i < cut
	}
}

// Stats reports the fleet accounting accumulated so far, including each
// device's utilization at the instant of the call.
func (f *Fleet) Stats() metrics.FleetStats {
	s := f.stats
	s.Devices = len(f.nodes)
	s.PerDeviceUtilization = make([]float64, len(f.nodes))
	for i, nd := range f.nodes {
		s.PerDeviceUtilization[i] = nd.dev.Utilization()
	}
	if f.failoverN > 0 {
		s.FailoverLatencyMeanMS = f.failoverSumMS / float64(f.failoverN)
	}
	return s
}

// Package report renders experiment results in the shapes the paper reports
// them: the Figure 1 speedup table and the Figure 3/4 FPS and DMR series,
// as aligned text for terminals and as CSV for plotting.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"

	"sgprs/internal/metrics"
	"sgprs/internal/speedup"
)

// Figure1 is the speedup-gain dataset: measured gain per operation class
// (plus whole networks) at each SM count.
type Figure1 struct {
	SMCounts []int
	// Rows maps a series name ("conv", "resnet18") to gains aligned with
	// SMCounts. Order lists the series in display order.
	Rows  map[string][]float64
	Order []string
}

// AddRow appends a named gain series. It panics on a length mismatch — a
// misaligned figure is a programming error.
func (f *Figure1) AddRow(name string, gains []float64) {
	if len(gains) != len(f.SMCounts) {
		panic(fmt.Sprintf("report: row %q has %d points, figure has %d SM counts", name, len(gains), len(f.SMCounts)))
	}
	if f.Rows == nil {
		f.Rows = map[string][]float64{}
	}
	f.Rows[name] = gains
	f.Order = append(f.Order, name)
}

// WriteText renders the figure as an aligned table.
func (f *Figure1) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	// Tab-terminate every cell — a trailing cell without a tab escapes
	// tabwriter's alignment and glues itself to the previous column.
	fmt.Fprint(tw, "operation")
	for _, n := range f.SMCounts {
		fmt.Fprintf(tw, "\t%dsm", n)
	}
	fmt.Fprint(tw, "\t\n")
	for _, name := range f.Order {
		fmt.Fprint(tw, name)
		for _, g := range f.Rows[name] {
			fmt.Fprintf(tw, "\t%.2fx", g)
		}
		fmt.Fprint(tw, "\t\n")
	}
	return tw.Flush()
}

// WriteCSV renders the figure as CSV (one row per series).
func (f *Figure1) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"operation"}
	for _, n := range f.SMCounts {
		header = append(header, strconv.Itoa(n))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, name := range f.Order {
		row := []string{name}
		for _, g := range f.Rows[name] {
			row = append(row, strconv.FormatFloat(g, 'f', 3, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Scenario renders a Figure 3/4 dataset: per-variant FPS and DMR series over
// task counts, plus the derived pivot points.
type Scenario struct {
	Title      string
	TaskCounts []int
	Series     map[string][]metrics.Point
	Order      []string
}

// metricTables lists the per-metric tables WriteText renders: the paper's
// FPS and DMR always, the tail latency always (it is computed either way),
// the overload pair — drop rate, SLO hit rate — only when some point
// recorded them, and the fast-forward cycle counters only when some point
// actually skipped cycles, so closed-loop output keeps its classic shape.
func (s *Scenario) metricTables() []string {
	tables := []string{"total FPS", "DMR", "p99 ms"}
	dropped, slo, ff, faults, degraded := false, false, false, false, false
	fleet, fleetDegraded := false, false
	for _, name := range s.Order {
		for _, p := range s.Series[name] {
			dropped = dropped || p.Summary.Dropped > 0
			slo = slo || p.Summary.SLOMS > 0
			ff = ff || p.FastForward.CyclesSkipped > 0
			f := p.Summary.Faults
			faults = faults || f.Overruns > 0 || f.TransientFaults > 0
			degraded = degraded || f.DegradedReleased > 0
			fl := p.Summary.Fleet
			fleet = fleet || fl.Devices > 1
			fleetDegraded = fleetDegraded || fl.FleetDegradedReleased > 0
		}
	}
	if dropped {
		tables = append(tables, "drop rate")
	}
	if slo {
		tables = append(tables, "SLO hit rate")
	}
	if ff {
		tables = append(tables, "ff cycles (detected/skipped)")
	}
	if faults {
		tables = append(tables, "faults (overruns/transients/recovered)")
	}
	if degraded {
		tables = append(tables, "degraded DMR")
	}
	if fleet {
		tables = append(tables, "fleet (crashes/migrations/shed)")
	}
	if fleetDegraded {
		tables = append(tables, "fleet-degraded DMR")
	}
	return tables
}

// WriteText renders FPS, DMR, and tail-latency tables (plus drop-rate and
// SLO tables for open-loop runs) and the pivot points.
func (s *Scenario) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", s.Title); err != nil {
		return err
	}
	for _, metric := range s.metricTables() {
		fmt.Fprintf(w, "\n%s:\n", metric)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
		// Every cell is tab-terminated (including the last): a cell
		// without a trailing tab is outside tabwriter's alignment and
		// glues itself to the previous column.
		fmt.Fprint(tw, "tasks")
		for _, n := range s.TaskCounts {
			fmt.Fprintf(tw, "\t%d", n)
		}
		fmt.Fprint(tw, "\t\n")
		for _, name := range s.Order {
			fmt.Fprint(tw, name)
			// Align each point under its own task-count column: a
			// series may have gaps when individual sweep points
			// failed (the runner keeps finished siblings).
			byTasks := make(map[int]metrics.Point, len(s.Series[name]))
			for _, p := range s.Series[name] {
				byTasks[p.Tasks] = p
			}
			for _, n := range s.TaskCounts {
				p, ok := byTasks[n]
				switch {
				case !ok:
					fmt.Fprint(tw, "\t-")
				case metric == "total FPS":
					fmt.Fprintf(tw, "\t%.0f", p.Summary.TotalFPS)
				case metric == "p99 ms":
					fmt.Fprintf(tw, "\t%.1f", p.Summary.RespP99MS)
				case metric == "drop rate":
					fmt.Fprintf(tw, "\t%.3f", p.Summary.DropRate)
				case metric == "SLO hit rate":
					fmt.Fprintf(tw, "\t%.3f", p.Summary.SLOHitRate)
				case metric == "ff cycles (detected/skipped)":
					fmt.Fprintf(tw, "\t%d/%d", p.FastForward.CyclesDetected, p.FastForward.CyclesSkipped)
				case metric == "faults (overruns/transients/recovered)":
					f := p.Summary.Faults
					fmt.Fprintf(tw, "\t%d/%d/%d", f.Overruns, f.TransientFaults, f.Recoveries)
				case metric == "degraded DMR":
					fmt.Fprintf(tw, "\t%.3f", p.Summary.Faults.DegradedDMR)
				case metric == "fleet (crashes/migrations/shed)":
					fl := p.Summary.Fleet
					fmt.Fprintf(tw, "\t%d/%d/%d", fl.Crashes, fl.Migrations, fl.ShedReleases)
				case metric == "fleet-degraded DMR":
					fmt.Fprintf(tw, "\t%.3f", p.Summary.Fleet.FleetDegradedDMR)
				default:
					fmt.Fprintf(tw, "\t%.3f", p.Summary.DMR)
				}
			}
			fmt.Fprint(tw, "\t\n")
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "\npivot points (largest task count with zero misses):")
	for _, name := range s.Order {
		fmt.Fprintf(w, "  %-12s %d tasks (saturation %.0f fps, final %.0f fps)",
			name,
			metrics.PivotPoint(s.Series[name]),
			metrics.SaturationFPS(s.Series[name]),
			metrics.FinalFPS(s.Series[name]))
		// Derived numbers over a gapped series (failed sweep points)
		// would otherwise read as trustworthy.
		if missing := len(s.TaskCounts) - len(s.Series[name]); missing > 0 {
			fmt.Fprintf(w, " [incomplete: %d/%d points]", len(s.Series[name]), len(s.TaskCounts))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteCSV renders the dataset as long-form CSV: variant,tasks,fps,dmr,
// released,completed,missed plus the open-loop columns (dropped,drop_rate,
// p99_ms,p999_ms,queue_max,queue_mean,slo_hit_rate), the steady-state
// fast-forward counters (ff_cycles_detected,ff_cycles_skipped), and the
// fault-injection accounting (overruns,overrun_mass_ms,transient_faults,
// retries,recoveries,skipped_jobs,killed_chains,degraded_released,
// degraded_missed,degraded_dmr), and the fleet accounting (devices,
// device_util — per-device utilizations joined with ';' in fleet-position
// order — crashes,migrations,shed_releases,failover_ms,fleet_dmr) — zero (or
// empty, for device_util) on closed-loop, ineligible, fault-free, or
// single-device runs, so the schema is stable across traffic, fault, and
// fleet models.
func (s *Scenario) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"variant", "tasks", "fps", "dmr", "released", "completed", "missed",
		"dropped", "drop_rate", "p99_ms", "p999_ms", "queue_max", "queue_mean", "slo_hit_rate",
		"ff_cycles_detected", "ff_cycles_skipped",
		"overruns", "overrun_mass_ms", "transient_faults", "retries", "recoveries",
		"skipped_jobs", "killed_chains", "degraded_released", "degraded_missed", "degraded_dmr",
		"devices", "device_util", "crashes", "migrations", "shed_releases", "failover_ms", "fleet_dmr",
	}); err != nil {
		return err
	}
	for _, name := range s.Order {
		for _, p := range s.Series[name] {
			rec := []string{
				name,
				strconv.Itoa(p.Tasks),
				strconv.FormatFloat(p.Summary.TotalFPS, 'f', 1, 64),
				strconv.FormatFloat(p.Summary.DMR, 'f', 4, 64),
				strconv.Itoa(p.Summary.Released),
				strconv.Itoa(p.Summary.Completed),
				strconv.Itoa(p.Summary.Missed),
				strconv.Itoa(p.Summary.Dropped),
				strconv.FormatFloat(p.Summary.DropRate, 'f', 4, 64),
				strconv.FormatFloat(p.Summary.RespP99MS, 'f', 2, 64),
				strconv.FormatFloat(p.Summary.RespP999MS, 'f', 2, 64),
				strconv.Itoa(p.Summary.QueueDepthMax),
				strconv.FormatFloat(p.Summary.QueueDepthMean, 'f', 3, 64),
				strconv.FormatFloat(p.Summary.SLOHitRate, 'f', 4, 64),
				strconv.FormatUint(p.FastForward.CyclesDetected, 10),
				strconv.FormatUint(p.FastForward.CyclesSkipped, 10),
				strconv.Itoa(p.Summary.Faults.Overruns),
				strconv.FormatFloat(p.Summary.Faults.OverrunMassMS, 'f', 2, 64),
				strconv.Itoa(p.Summary.Faults.TransientFaults),
				strconv.Itoa(p.Summary.Faults.Retries),
				strconv.Itoa(p.Summary.Faults.Recoveries),
				strconv.Itoa(p.Summary.Faults.SkippedJobs),
				strconv.Itoa(p.Summary.Faults.KilledChains),
				strconv.Itoa(p.Summary.Faults.DegradedReleased),
				strconv.Itoa(p.Summary.Faults.DegradedMissed),
				strconv.FormatFloat(p.Summary.Faults.DegradedDMR, 'f', 4, 64),
				strconv.Itoa(p.Summary.Fleet.Devices),
				deviceUtil(p.Summary.Fleet.PerDeviceUtilization),
				strconv.Itoa(p.Summary.Fleet.Crashes),
				strconv.Itoa(p.Summary.Fleet.Migrations),
				strconv.Itoa(p.Summary.Fleet.ShedReleases),
				strconv.FormatFloat(p.Summary.Fleet.FailoverLatencyMeanMS, 'f', 2, 64),
				strconv.FormatFloat(p.Summary.Fleet.FleetDegradedDMR, 'f', 4, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// deviceUtil renders per-device utilizations as one CSV cell, joined with
// ';' in fleet-position order (empty for single-device runs).
func deviceUtil(utils []float64) string {
	out := ""
	for i, u := range utils {
		if i > 0 {
			out += ";"
		}
		out += strconv.FormatFloat(u, 'f', 3, 64)
	}
	return out
}

// Figure1Model samples the analytic speedup model into a Figure1 dataset —
// the fallback when measured data is not wanted.
func Figure1Model(m *speedup.Model, smCounts []int) *Figure1 {
	f := &Figure1{SMCounts: smCounts}
	tab := m.Table(smCounts)
	for _, cl := range speedup.Classes() {
		f.AddRow(cl.String(), tab[cl])
	}
	return f
}

package report

import (
	"bytes"
	"strings"
	"testing"

	"sgprs/internal/metrics"
	"sgprs/internal/speedup"
)

func TestFigure1Text(t *testing.T) {
	f := &Figure1{SMCounts: []int{1, 34, 68}}
	f.AddRow("conv", []float64{1, 21.9, 32})
	f.AddRow("resnet18", []float64{1, 18, 23})
	var buf bytes.Buffer
	if err := f.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"operation", "1sm", "34sm", "68sm", "conv", "32.00x", "resnet18", "23.00x"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1CSV(t *testing.T) {
	f := &Figure1{SMCounts: []int{1, 68}}
	f.AddRow("conv", []float64{1, 32})
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "operation,1,68" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "conv,1.000,32.000" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestFigure1AddRowPanicsOnMismatch(t *testing.T) {
	f := &Figure1{SMCounts: []int{1, 2}}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row did not panic")
		}
	}()
	f.AddRow("bad", []float64{1})
}

func TestFigure1Model(t *testing.T) {
	f := Figure1Model(speedup.DefaultModel(), []int{1, 68})
	if len(f.Order) != len(speedup.Classes()) {
		t.Fatalf("rows = %d", len(f.Order))
	}
	conv := f.Rows["conv"]
	if conv[1] < 31.9 || conv[1] > 32.1 {
		t.Errorf("conv at 68 = %v", conv[1])
	}
}

func mkScenario() *Scenario {
	mk := func(fps float64, missed int) metrics.Summary {
		return metrics.Summary{TotalFPS: fps, DMR: float64(missed) / 100, Missed: missed, Released: 100, Completed: int(fps)}
	}
	return &Scenario{
		Title:      "Scenario 1 (2 contexts)",
		TaskCounts: []int{10, 20, 30},
		Series: map[string][]metrics.Point{
			"naive": {
				{Tasks: 10, Summary: mk(300, 0)},
				{Tasks: 20, Summary: mk(490, 80)},
				{Tasks: 30, Summary: mk(474, 100)},
			},
			"sgprs-2.0x": {
				{Tasks: 10, Summary: mk(300, 0)},
				{Tasks: 20, Summary: mk(600, 0)},
				{Tasks: 30, Summary: mk(750, 17)},
			},
		},
		Order: []string{"naive", "sgprs-2.0x"},
	}
}

func TestScenarioText(t *testing.T) {
	var buf bytes.Buffer
	if err := mkScenario().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Scenario 1 (2 contexts)", "total FPS:", "DMR:", "pivot points",
		"naive", "sgprs-2.0x", "750", "0.170",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Pivot of naive is 10, of sgprs is 20.
	if !strings.Contains(out, "10 tasks") || !strings.Contains(out, "20 tasks") {
		t.Errorf("pivots missing:\n%s", out)
	}
}

// TestScenarioTextGaps: a series missing some sweep points (failed runs
// kept out by the parallel runner) renders each surviving point under its
// own task-count column with "-" placeholders, instead of shifting values
// left into the wrong columns.
func TestScenarioTextGaps(t *testing.T) {
	s := &Scenario{
		Title:      "gaps",
		TaskCounts: []int{10, 20, 30},
		Series: map[string][]metrics.Point{
			"partial": {
				{Tasks: 10, Summary: metrics.Summary{TotalFPS: 100}},
				{Tasks: 30, Summary: metrics.Summary{TotalFPS: 300}},
			},
		},
		Order: []string{"partial"},
	}
	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var fpsRow string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "partial") && strings.Contains(line, "100") {
			fpsRow = line
			break
		}
	}
	if fpsRow == "" {
		t.Fatalf("no FPS row in:\n%s", out)
	}
	fields := strings.Fields(fpsRow)
	want := []string{"partial", "100", "-", "300"}
	if len(fields) != len(want) {
		t.Fatalf("row fields = %v, want %v", fields, want)
	}
	for i := range want {
		if fields[i] != want[i] {
			t.Errorf("field %d = %q, want %q (row %q)", i, fields[i], want[i], fpsRow)
		}
	}
	if !strings.Contains(out, "[incomplete: 2/3 points]") {
		t.Errorf("pivot summary lacks incompleteness marker:\n%s", out)
	}
}

// TestScenarioFFTable pins the fast-forward table's gating: absent from
// classic output, present (with detected/skipped cells) once any point
// actually skipped cycles.
func TestScenarioFFTable(t *testing.T) {
	var buf bytes.Buffer
	if err := mkScenario().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "ff cycles") {
		t.Errorf("fast-forward table rendered for a run that never engaged:\n%s", buf.String())
	}
	s := mkScenario()
	s.Series["naive"][0].FastForward = metrics.FFStats{CyclesDetected: 1, CyclesSkipped: 178}
	buf.Reset()
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ff cycles (detected/skipped):", "1/178", "0/0"} {
		if !strings.Contains(out, want) {
			t.Errorf("fast-forward table missing %q:\n%s", want, out)
		}
	}
}

// TestScenarioFleetTable pins the fleet tables' gating (mirroring the fault
// tables): absent from single-device output, present once any point ran on a
// fleet, with the fleet-degraded DMR table additionally gated on degraded
// activity.
func TestScenarioFleetTable(t *testing.T) {
	var buf bytes.Buffer
	if err := mkScenario().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "fleet") {
		t.Errorf("fleet table rendered for a single-device run:\n%s", buf.String())
	}
	s := mkScenario()
	s.Series["naive"][0].Summary.Fleet = metrics.FleetStats{
		Devices: 3, PerDeviceUtilization: []float64{0.5, 0.4, 0.6},
		Crashes: 1, Migrations: 7, ShedReleases: 12,
		FleetDegradedReleased: 40, FleetDegradedMissed: 10, FleetDegradedDMR: 0.25,
	}
	buf.Reset()
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fleet (crashes/migrations/shed):", "1/7/12", "0/0/0", "fleet-degraded DMR:", "0.250"} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet tables missing %q:\n%s", want, out)
		}
	}
}

// TestScenarioCSVFleetColumns: a fleet point serialises its device count,
// ';'-joined per-device utilizations, and failover counters; single-device
// points keep zero/empty cells so the schema is stable.
func TestScenarioCSVFleetColumns(t *testing.T) {
	s := mkScenario()
	s.Series["naive"][0].Summary.Fleet = metrics.FleetStats{
		Devices: 3, PerDeviceUtilization: []float64{0.5, 0.4, 0.6},
		Crashes: 1, Migrations: 7, ShedReleases: 12,
		FailoverLatencyMeanMS: 4.5, FleetDegradedDMR: 0.25,
	}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasSuffix(lines[1], ",3,0.500;0.400;0.600,1,7,12,4.50,0.2500") {
		t.Errorf("fleet row = %q", lines[1])
	}
	if !strings.HasSuffix(lines[2], ",0,,0,0,0,0.00,0.0000") {
		t.Errorf("single-device row = %q", lines[2])
	}
}

func TestScenarioCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := mkScenario().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7 { // header + 2 variants x 3 points
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "variant,tasks,fps,dmr,released,completed,missed,"+
		"dropped,drop_rate,p99_ms,p999_ms,queue_max,queue_mean,slo_hit_rate,"+
		"ff_cycles_detected,ff_cycles_skipped,"+
		"overruns,overrun_mass_ms,transient_faults,retries,recoveries,"+
		"skipped_jobs,killed_chains,degraded_released,degraded_missed,degraded_dmr,"+
		"devices,device_util,crashes,migrations,shed_releases,failover_ms,fleet_dmr" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "naive,10,300.0,") {
		t.Errorf("first row = %q", lines[1])
	}
}

// Package profile implements the offline phase's measurement half (Section
// IV-A2): per-stage and per-task WCETs obtained by running kernels in
// isolation on the simulated device, plus the speedup-gain measurements
// behind the paper's Figure 1.
//
// Measurements run real simulated executions on a private device rather than
// evaluating the analytic model directly, so the profiler exercises exactly
// the code path the online phase uses (launch overhead included).
package profile

import (
	"fmt"

	"sgprs/internal/des"
	"sgprs/internal/dnn"
	"sgprs/internal/gpu"
	"sgprs/internal/rt"
	"sgprs/internal/speedup"
)

// Profiler measures execution times in isolation.
type Profiler struct {
	model *speedup.Model
	cfg   gpu.Config
	// Margin inflates measured times into WCETs: WCET = measured ×
	// (1 + Margin). Isolation measurements carry no contention jitter, so
	// a margin gives the online phase headroom, exactly like padding a
	// measured WCET on real hardware.
	Margin float64
}

// New builds a profiler over the given speedup model and device config.
func New(model *speedup.Model, cfg gpu.Config) *Profiler {
	return &Profiler{model: model, cfg: cfg, Margin: 0.05}
}

// Model returns the speedup model measurements run against.
func (p *Profiler) Model() *speedup.Model { return p.model }

// Config returns the device configuration measurements run against.
func (p *Profiler) Config() gpu.Config { return p.cfg }

// measure runs a single kernel alone on a fresh device with a context of sms
// SMs and returns its wall latency (including launch overhead).
func (p *Profiler) measure(k *gpu.Kernel, sms int) (des.Time, error) {
	eng := des.NewEngine()
	cfg := p.cfg
	// Isolation: no contention is possible, but zero the stochastic terms
	// anyway so profiling is independent of seed.
	cfg.ContentionJitter = 0
	cfg.ContentionPenalty = 0
	dev, err := gpu.NewDevice(eng, p.model, cfg)
	if err != nil {
		return 0, err
	}
	ctx, err := dev.CreateContext("profile", sms)
	if err != nil {
		return 0, err
	}
	var done des.Time
	k.OnComplete = func(now des.Time) { done = now }
	ctx.AddStream("s0", gpu.LowPriority).Submit(k)
	eng.Run()
	if done == 0 {
		return 0, fmt.Errorf("profile: kernel %q never completed", k.Label)
	}
	return done, nil
}

// pad applies the WCET margin.
func (p *Profiler) pad(t des.Time) des.Time {
	return des.Time(float64(t) * (1 + p.Margin))
}

// StageWCET measures stage st in isolation on a context of sms SMs.
func (p *Profiler) StageWCET(st *dnn.Stage, sms int) (des.Time, error) {
	k := &gpu.Kernel{Label: st.Name(), Shares: st.Shares}
	t, err := p.measure(k, sms)
	if err != nil {
		return 0, err
	}
	return p.pad(t), nil
}

// ProfileTask measures every stage of the task on a context of sms SMs and
// installs the WCETs (which also derives the virtual deadlines). The SM count
// should be the smallest context of the pool the task will run in — the
// conservative choice.
func (p *Profiler) ProfileTask(task *rt.Task, sms int) error {
	wcets := make([]des.Time, len(task.Stages))
	for j, st := range task.Stages {
		c, err := p.StageWCET(st, sms)
		if err != nil {
			return fmt.Errorf("profile: task %s stage %d: %w", task.Name, j, err)
		}
		wcets[j] = c
	}
	return task.SetWCETs(wcets)
}

// OperationGain measures the speedup gain of workMS single-SM milliseconds of
// class cl at sms SMs relative to one SM — one point of Figure 1.
func (p *Profiler) OperationGain(cl speedup.Class, workMS float64, sms int) (float64, error) {
	mk := func() *gpu.Kernel {
		return &gpu.Kernel{
			Label:  cl.String(),
			Shares: []speedup.WorkShare{{Class: cl, Work: workMS}},
		}
	}
	t1, err := p.measure(mk(), 1)
	if err != nil {
		return 0, err
	}
	tn, err := p.measure(mk(), sms)
	if err != nil {
		return 0, err
	}
	if tn == 0 {
		return 0, fmt.Errorf("profile: zero latency at %d SMs", sms)
	}
	return float64(t1) / float64(tn), nil
}

// NetworkGain measures the composed speedup of a whole network at sms SMs
// relative to one SM — the "ResNet18" series of Figure 1.
func (p *Profiler) NetworkGain(g *dnn.Graph, sms int) (float64, error) {
	mk := func() *gpu.Kernel {
		return &gpu.Kernel{Label: g.Name, Shares: g.WorkByClass()}
	}
	t1, err := p.measure(mk(), 1)
	if err != nil {
		return 0, err
	}
	tn, err := p.measure(mk(), sms)
	if err != nil {
		return 0, err
	}
	if tn == 0 {
		return 0, fmt.Errorf("profile: zero latency at %d SMs", sms)
	}
	return float64(t1) / float64(tn), nil
}

// NetworkLatency measures the isolated inference latency of a whole network
// at sms SMs (no WCET margin — this is a raw measurement).
func (p *Profiler) NetworkLatency(g *dnn.Graph, sms int) (des.Time, error) {
	return p.measure(&gpu.Kernel{Label: g.Name, Shares: g.WorkByClass()}, sms)
}

package profile

import (
	"math"
	"testing"

	"sgprs/internal/des"
	"sgprs/internal/dnn"
	"sgprs/internal/gpu"
	"sgprs/internal/rt"
	"sgprs/internal/speedup"
)

func newProfiler() *Profiler {
	return New(speedup.DefaultModel(), gpu.DefaultConfig())
}

func TestStageWCETMatchesAnalyticLatency(t *testing.T) {
	p := newProfiler()
	p.Margin = 0 // compare raw measurement to the analytic model
	g := dnn.ResNet18(dnn.DefaultCostModel())
	stages, err := dnn.Partition(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	m := speedup.DefaultModel()
	for _, st := range stages {
		got, err := p.StageWCET(st, 34)
		if err != nil {
			t.Fatal(err)
		}
		want := st.LatencyMS(m, 34)
		launch := gpu.DefaultConfig().LaunchOverhead
		diff := math.Abs(got.Milliseconds() - want - launch.Milliseconds())
		if diff > 1e-3 {
			t.Errorf("%s WCET %.4f ms, analytic %.4f + launch", st.Name(), got.Milliseconds(), want)
		}
	}
}

func TestMarginInflatesWCET(t *testing.T) {
	g := dnn.ResNet18(dnn.DefaultCostModel())
	stages, _ := dnn.Partition(g, 6)
	p := newProfiler()
	p.Margin = 0
	raw, err := p.StageWCET(stages[0], 34)
	if err != nil {
		t.Fatal(err)
	}
	p.Margin = 0.10
	padded, err := p.StageWCET(stages[0], 34)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(padded) / float64(raw)
	if math.Abs(ratio-1.10) > 1e-6 {
		t.Errorf("margin ratio = %v, want 1.10", ratio)
	}
}

func TestProfileTaskSetsWCETsAndVirtualDeadlines(t *testing.T) {
	g := dnn.ResNet18(dnn.DefaultCostModel())
	stages, _ := dnn.Partition(g, 6)
	period := des.FromSeconds(1.0 / 30)
	task, err := rt.NewTask(0, "resnet18", g, stages, period, period, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := newProfiler().ProfileTask(task, 34); err != nil {
		t.Fatal(err)
	}
	if !task.Profiled() {
		t.Fatal("task not profiled")
	}
	var sum des.Time
	for j := 0; j < task.NumStages(); j++ {
		if task.StageWCET(j) <= 0 {
			t.Errorf("stage %d WCET %v", j, task.StageWCET(j))
		}
		sum += task.VirtualDeadline(j)
	}
	if sum != task.Deadline {
		t.Errorf("virtual deadlines sum to %v, want %v", sum, task.Deadline)
	}
	// At 34 SMs, the whole ResNet18 should take ~1.8 ms×1.05 margin.
	if w := task.WCET().Milliseconds(); w < 1.2 || w > 3.5 {
		t.Errorf("task WCET = %.3f ms, want ~2", w)
	}
}

func TestOperationGainReproducesFigure1(t *testing.T) {
	p := newProfiler()
	cases := []struct {
		class speedup.Class
		want  float64
	}{
		{speedup.Conv, 32},
		{speedup.MaxPool, 14},
		{speedup.AvgPool, 7},
	}
	for _, c := range cases {
		got, err := p.OperationGain(c.class, 50, speedup.DeviceSMs)
		if err != nil {
			t.Fatal(err)
		}
		// Launch overhead dilutes the measured ratio slightly.
		if math.Abs(got-c.want) > 0.5 {
			t.Errorf("%v measured gain = %.2f, want ~%.0f", c.class, got, c.want)
		}
	}
	// "Other operations failed to exceed 7x."
	for _, cl := range []speedup.Class{speedup.ReLU, speedup.BatchNorm, speedup.Linear, speedup.Add} {
		got, err := p.OperationGain(cl, 50, speedup.DeviceSMs)
		if err != nil {
			t.Fatal(err)
		}
		if got > 7.1 {
			t.Errorf("%v measured gain = %.2f, want <= 7", cl, got)
		}
	}
}

func TestNetworkGainNearPaper(t *testing.T) {
	p := newProfiler()
	g := dnn.ResNet18(dnn.DefaultCostModel())
	got, err := p.NetworkGain(g, speedup.DeviceSMs)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ResNet18 reaches "only 23x".
	if got < 20 || got > 26 {
		t.Errorf("ResNet18 measured gain = %.2f, want ~23", got)
	}
	// The composed gain must sit below conv's.
	conv, _ := p.OperationGain(speedup.Conv, 50, speedup.DeviceSMs)
	if got >= conv {
		t.Errorf("network gain %.2f should be below conv %.2f", got, conv)
	}
}

func TestNetworkLatencyScalesWithSMs(t *testing.T) {
	p := newProfiler()
	g := dnn.ResNet18(dnn.DefaultCostModel())
	l10, err := p.NetworkLatency(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	l68, err := p.NetworkLatency(g, 68)
	if err != nil {
		t.Fatal(err)
	}
	if l68 >= l10 {
		t.Errorf("latency should shrink with SMs: %v at 10, %v at 68", l10, l68)
	}
}

func TestMeasureErrorPaths(t *testing.T) {
	p := newProfiler()
	g := dnn.ResNet18(dnn.DefaultCostModel())
	if _, err := p.NetworkLatency(g, 0); err == nil {
		t.Error("0-SM context accepted")
	}
	if _, err := p.OperationGain(speedup.Conv, 10, 9999); err == nil {
		t.Error("oversized context accepted")
	}
	stages, _ := dnn.Partition(g, 6)
	if _, err := p.StageWCET(stages[0], -1); err == nil {
		t.Error("negative SMs accepted")
	}
}

func TestProfilingIsDeterministic(t *testing.T) {
	g := dnn.ResNet18(dnn.DefaultCostModel())
	stages, _ := dnn.Partition(g, 6)
	a, err := newProfiler().StageWCET(stages[2], 23)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newProfiler().StageWCET(stages[2], 23)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("profiling not deterministic: %v vs %v", a, b)
	}
}

// Package naive implements the paper's comparison baseline (Section V): a
// simple spatial-partitioning scheduler with no temporal partitioning and no
// seamless context switch.
//
// Each task is statically pinned to one partition at attach time
// (round-robin). A partition executes whole inferences sequentially on a
// single stream: every operation is launched synchronously (the "sequential
// execution in existing frameworks" the paper's introduction blames for
// underutilisation), which adds a fixed per-operation host synchronisation
// gap. When a partition switches from one resident model to another it pays
// a reconfiguration cost that grows with the number of models sharing the
// partition — weights and state must be re-staged, and the working set
// thrashes. SGPRS pays neither cost: stages launch asynchronously on
// pre-created contexts.
//
// Past its saturation point this design exhibits the paper's domino effect:
// with FIFO queueing and no temporal partitioning, one late job delays every
// job behind it, so misses cascade and total FPS degrades rather than
// plateauing.
package naive

import (
	"fmt"

	"sgprs/internal/des"
	"sgprs/internal/gpu"
	"sgprs/internal/rt"
	"sgprs/internal/sched"
	"sgprs/internal/speedup"
)

// Config parameterises the baseline.
type Config struct {
	// Name labels the instance in reports.
	Name string
	// ContextSMs is the SM allocation per partition (no over-subscription
	// in the naive design: partitions tile the device).
	ContextSMs []int
	// SyncOverheadMS is the host-side synchronisation gap per operation
	// launch, in milliseconds. Whole-network execution pays it for every
	// operation of the graph.
	SyncOverheadMS float64
	// ReconfigBaseMS is the fixed cost of switching a partition to a
	// different resident model.
	ReconfigBaseMS float64
	// ReconfigPerResidentMS is the additional switch cost per extra model
	// resident on the same partition (working-set thrash).
	ReconfigPerResidentMS float64
}

// DefaultConfig returns the calibrated baseline over the given partitions.
func DefaultConfig(name string, contextSMs []int) Config {
	return Config{
		Name:                  name,
		ContextSMs:            contextSMs,
		SyncOverheadMS:        0.012, // 12 µs per synchronous op launch
		ReconfigBaseMS:        0.30,
		ReconfigPerResidentMS: 0.03,
	}
}

// partition is one static spatial partition.
type partition struct {
	ctx      *gpu.Context
	stream   *gpu.Stream
	tasks    []*rt.Task // resident tasks
	lastTask int        // task ID last executed, -1 initially
}

// Scheduler is the naive baseline. Create with New, wire with Attach.
type Scheduler struct {
	cfg   Config
	eng   *des.Engine
	dev   *gpu.Device
	parts []*partition
	homes map[int]*partition // task ID → partition
	// baseShares caches each task's per-class work vector (task ID →
	// Graph.WorkByClass()), computed once at Attach. Jobs without work
	// variation submit the shared slice directly — the device only reads
	// it — so the per-release map-and-slice rebuild is gone.
	baseShares map[int][]speedup.WorkShare

	// kernelPool recycles gpu.Kernel structs across releases, exactly as
	// the SGPRS scheduler does for stage launches: with the job carried in
	// Arg and the shared begin/done callbacks, a release allocates no
	// kernel and no closures.
	kernelPool []*gpu.Kernel
	beginFn    func(k *gpu.Kernel, now des.Time)
	doneFn     func(k *gpu.Kernel, now des.Time)

	reconfigs uint64
}

// New validates cfg and returns an unattached scheduler.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("naive: config needs a name")
	}
	if len(cfg.ContextSMs) == 0 {
		return nil, fmt.Errorf("naive: config needs at least one partition")
	}
	if cfg.SyncOverheadMS < 0 || cfg.ReconfigBaseMS < 0 || cfg.ReconfigPerResidentMS < 0 {
		return nil, fmt.Errorf("naive: overheads must be non-negative")
	}
	return &Scheduler{cfg: cfg, homes: map[int]*partition{}}, nil
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return s.cfg.Name }

// Reconfigurations reports how many partition switches were paid.
func (s *Scheduler) Reconfigurations() uint64 { return s.reconfigs }

// Attach creates the partitions and pins each task to one, round-robin.
func (s *Scheduler) Attach(eng *des.Engine, dev *gpu.Device, tasks []*rt.Task) error {
	if s.eng != nil {
		return fmt.Errorf("naive: scheduler %q attached twice", s.cfg.Name)
	}
	s.eng = eng
	s.dev = dev
	s.beginFn = s.kernelBegin
	s.doneFn = s.kernelDone
	for i, sms := range s.cfg.ContextSMs {
		ctx, err := dev.CreateContext(fmt.Sprintf("part%d", i), sms)
		if err != nil {
			return fmt.Errorf("naive: partition: %w", err)
		}
		s.parts = append(s.parts, &partition{
			ctx:      ctx,
			stream:   ctx.AddStream("s0", gpu.LowPriority),
			lastTask: -1,
		})
	}
	s.baseShares = map[int][]speedup.WorkShare{}
	for i, t := range tasks {
		s.baseShares[t.ID] = t.Graph.WorkByClass()
		p := s.parts[i%len(s.parts)]
		p.tasks = append(p.tasks, t)
		s.homes[t.ID] = p
	}
	return nil
}

// OnRelease submits the whole inference as one synchronous-execution kernel
// on the task's home partition. FIFO order on the stream — no deadlines, no
// priorities, no partition switching.
func (s *Scheduler) OnRelease(job *rt.Job, now des.Time) {
	p, ok := s.homes[job.Task.ID]
	if !ok {
		panic(fmt.Sprintf("naive: job %s from unattached task", job))
	}
	for _, st := range job.Stages {
		st.MarkReady(now)
	}

	fixed := s.cfg.SyncOverheadMS * float64(len(job.Task.Graph.Ops))
	if p.lastTask != job.Task.ID {
		fixed += s.cfg.ReconfigBaseMS +
			s.cfg.ReconfigPerResidentMS*float64(len(p.tasks)-1)
		s.reconfigs++
	}
	p.lastTask = job.Task.ID

	shares := s.baseShares[job.Task.ID]
	if job.WorkScale != 1 && job.WorkScale > 0 {
		scaled := make([]speedup.WorkShare, len(shares))
		for i, ws := range shares {
			scaled[i] = speedup.WorkShare{Class: ws.Class, Work: ws.Work * job.WorkScale}
		}
		shares = scaled
	}
	k := s.getKernel()
	if s.dev.HasObserver() {
		k.Label = job.Label()
	} else {
		k.Label = "job"
	}
	k.Shares = shares
	k.FixedMS = fixed
	k.Arg = job
	k.OnBegin = s.beginFn
	k.OnDone = s.doneFn
	p.stream.Submit(k)
}

// getKernel pops a kernel from the free list or allocates one.
func (s *Scheduler) getKernel() *gpu.Kernel {
	if n := len(s.kernelPool); n > 0 {
		k := s.kernelPool[n-1]
		s.kernelPool[n-1] = nil
		s.kernelPool = s.kernelPool[:n-1]
		return k
	}
	return &gpu.Kernel{}
}

// RecoverKernel implements sched.FaultHandler: the fault injector has
// aborted one of this scheduler's whole-inference kernels mid-flight and
// hands it back with the resolved recovery decision. A retry re-submits the
// very same kernel — Submit re-derives the remainders from Shares and
// FixedMS, so the inference restarts from scratch (including its fixed
// synchronisation cost) at the back of the partition FIFO. Skip-job and
// kill-chain coincide here: the baseline's only backlog is the partition
// FIFO, which a static partitioner cannot retract entries from — precisely
// the inflexibility the comparison is about.
func (s *Scheduler) RecoverKernel(k *gpu.Kernel, stream *gpu.Stream, action sched.RecoveryAction, backoff des.Time, now des.Time) {
	job := k.Arg.(*rt.Job)
	switch action {
	case sched.ActionRetry:
		if backoff <= 0 {
			stream.Submit(k)
		} else {
			gen := job.Gen
			s.eng.AfterFunc(backoff, "naive.retry", func(now des.Time) {
				// A device-loss drain (EvictAll) may have discarded the
				// job — and the JobPool may have recycled the struct into
				// a different frame — while this retry was backed off.
				if job.Discarded || job.Gen != gen {
					k.Reset()
					s.kernelPool = append(s.kernelPool, k)
					return
				}
				stream.Submit(k)
			})
		}
	case sched.ActionSkipJob, sched.ActionKillChain:
		k.Reset()
		s.kernelPool = append(s.kernelPool, k)
		job.Discard(now)
	}
}

// EvictAll implements sched.Evictor: the device hosting this baseline was
// lost (fleet failover, DESIGN.md §15). Each partition's FIFO is flushed
// first — so the abort-side pump finds nothing to relaunch — then the running
// or launch-window kernel is evicted; every live job is discarded. A
// launch-window kernel is cancelled and deliberately leaked (the detached
// gpu.launch event still references it; see gpu.Device.CancelLaunch).
func (s *Scheduler) EvictAll(now des.Time) {
	for _, p := range s.parts {
		p.stream.Flush(func(k *gpu.Kernel) {
			job := k.Arg.(*rt.Job)
			k.Reset()
			s.kernelPool = append(s.kernelPool, k)
			if !job.Discarded {
				job.Discard(now)
			}
		})
		if k := p.stream.Running(); k != nil {
			job := k.Arg.(*rt.Job)
			if k.Running() {
				s.dev.Abort(k, now)
				k.Reset()
				s.kernelPool = append(s.kernelPool, k)
			} else {
				s.dev.CancelLaunch(k)
			}
			if !job.Discarded {
				job.Discard(now)
			}
		}
		p.lastTask = -1
	}
}

// kernelBegin is the shared start callback: the whole inference begins
// executing, so every stage marks started at once.
func (s *Scheduler) kernelBegin(k *gpu.Kernel, now des.Time) {
	job := k.Arg.(*rt.Job)
	for _, st := range job.Stages {
		st.MarkStarted(now)
	}
}

// kernelDone is the shared completion callback: it unpacks the job, hands
// the kernel back to the free list (the device guarantees it no longer
// touches it), and retires every stage — the final MarkFinished completes
// the job and notifies its watcher, exactly when the OnComplete closure
// used to.
func (s *Scheduler) kernelDone(k *gpu.Kernel, now des.Time) {
	job := k.Arg.(*rt.Job)
	k.Reset()
	s.kernelPool = append(s.kernelPool, k)
	for _, st := range job.Stages {
		st.MarkFinished(now)
	}
}

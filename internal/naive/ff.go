package naive

import "sgprs/internal/des"

// EncodeState appends the baseline's dynamic state for the fast-forward
// fingerprint (DESIGN.md §12). Beyond the device — which encodes every
// stream's queued and running kernels itself — the only state a partition
// carries is which task it last executed (it decides the next reconfiguration
// charge). Jobs are referenced only through kernel Args, so the device's
// enumeration covers live-job discovery and no ForEachJob is needed here.
func (s *Scheduler) EncodeState(buf []byte) []byte {
	for _, p := range s.parts {
		buf = des.AppendI64(buf, int64(p.lastTask))
	}
	return buf
}

package naive

import (
	"testing"

	"sgprs/internal/des"
	"sgprs/internal/dnn"
	"sgprs/internal/gpu"
	"sgprs/internal/profile"
	"sgprs/internal/rt"
	"sgprs/internal/speedup"
)

func newRig(t *testing.T, cfg Config, n int) (*des.Engine, *gpu.Device, *Scheduler, []*rt.Task) {
	t.Helper()
	eng := des.NewEngine()
	model := speedup.DefaultModel()
	gcfg := gpu.DefaultConfig()
	dev, err := gpu.NewDevice(eng, model, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	g := dnn.ResNet18(dnn.DefaultCostModel())
	dnn.Calibrate(g, model, speedup.DeviceSMs, 1.40)
	stages, err := dnn.Partition(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	period := des.FromSeconds(1.0 / 30)
	prof := profile.New(model, gcfg)
	var tasks []*rt.Task
	for i := 0; i < n; i++ {
		task, err := rt.NewTask(i, "resnet18", g, stages, period, period, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := prof.ProfileTask(task, cfg.ContextSMs[0]); err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, task)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Attach(eng, dev, tasks); err != nil {
		t.Fatal(err)
	}
	return eng, dev, s, tasks
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{ContextSMs: []int{34}}); err == nil {
		t.Error("nameless config accepted")
	}
	if _, err := New(Config{Name: "x"}); err == nil {
		t.Error("partitionless config accepted")
	}
	bad := DefaultConfig("x", []int{34})
	bad.SyncOverheadMS = -1
	if _, err := New(bad); err == nil {
		t.Error("negative overhead accepted")
	}
	if _, err := New(DefaultConfig("naive", []int{34, 34})); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestStaticPinningRoundRobin(t *testing.T) {
	_, dev, s, tasks := newRig(t, DefaultConfig("naive", []int{34, 34}), 5)
	if len(dev.Contexts()) != 2 {
		t.Fatalf("partitions = %d", len(dev.Contexts()))
	}
	// Tasks 0,2,4 on partition 0; tasks 1,3 on partition 1.
	if got := len(s.parts[0].tasks); got != 3 {
		t.Errorf("partition 0 holds %d tasks, want 3", got)
	}
	if got := len(s.parts[1].tasks); got != 2 {
		t.Errorf("partition 1 holds %d tasks, want 2", got)
	}
	for i, task := range tasks {
		if s.homes[task.ID] != s.parts[i%2] {
			t.Errorf("task %d pinned to wrong partition", i)
		}
	}
}

func TestWholeNetworkExecution(t *testing.T) {
	eng, dev, s, tasks := newRig(t, DefaultConfig("naive", []int{34, 34}), 1)
	job := tasks[0].NewJob(0, 0)
	s.OnRelease(job, 0)
	eng.Run()
	if !job.Done {
		t.Fatal("job incomplete")
	}
	// One kernel per inference, not one per stage.
	if got := dev.CompletedKernels(); got != 1 {
		t.Errorf("kernels = %d, want 1 (whole network)", got)
	}
	// All stage bookkeeping still filled for metrics parity.
	for _, st := range job.Stages {
		if !st.Finished {
			t.Errorf("stage %d not marked finished", st.Index)
		}
	}
}

func TestSequentialExecutionOverheadSlowsInference(t *testing.T) {
	run := func(sync float64) des.Time {
		cfg := DefaultConfig("naive", []int{68})
		cfg.SyncOverheadMS = sync
		eng, _, s, tasks := newRig(t, cfg, 1)
		job := tasks[0].NewJob(0, 0)
		s.OnRelease(job, 0)
		eng.Run()
		return job.FinishedAt
	}
	fast := run(0)
	slow := run(0.05)
	// 71 ops × 50 µs ≈ 3.55 ms extra.
	extra := (slow - fast).Milliseconds()
	if extra < 3 || extra > 4.5 {
		t.Errorf("sync overhead added %.2f ms, want ~3.5", extra)
	}
}

func TestReconfigurationCostOnTaskSwitch(t *testing.T) {
	cfg := DefaultConfig("naive", []int{68})
	eng, _, s, tasks := newRig(t, cfg, 2) // both tasks share one partition
	// Alternate releases: every job switches the resident model.
	j0 := tasks[0].NewJob(0, 0)
	j1 := tasks[1].NewJob(0, 0)
	s.OnRelease(j0, 0)
	s.OnRelease(j1, 0)
	eng.Run()
	if s.Reconfigurations() != 2 {
		t.Errorf("reconfigurations = %d, want 2 (cold + switch)", s.Reconfigurations())
	}
	// Same task twice: only the first pays.
	eng2, _, s2, tasks2 := newRig(t, cfg, 2)
	s2.OnRelease(tasks2[0].NewJob(0, 0), 0)
	s2.OnRelease(tasks2[0].NewJob(1, 0), 0)
	eng2.Run()
	if s2.Reconfigurations() != 1 {
		t.Errorf("reconfigurations = %d, want 1", s2.Reconfigurations())
	}
}

func TestDominoEffectUnderOverload(t *testing.T) {
	// FIFO with no temporal partitioning: once saturated, every
	// subsequent job of the backlog misses — the paper's domino effect.
	cfg := DefaultConfig("naive", []int{34, 34})
	eng, _, s, tasks := newRig(t, cfg, 24)
	var jobs []*rt.Job
	for _, task := range tasks {
		task := task
		var release func(k int)
		release = func(k int) {
			at := des.Time(int64(task.Period) * int64(k))
			if at >= des.FromSeconds(2) {
				return
			}
			eng.Schedule(at, "rel", func(now des.Time) {
				j := task.NewJob(k, now)
				jobs = append(jobs, j)
				s.OnRelease(j, now)
				release(k + 1)
			})
		}
		release(0)
	}
	eng.RunUntil(des.FromSeconds(2))
	missed, considered := 0, 0
	for _, j := range jobs {
		if j.Release < des.Second || j.Deadline >= des.FromSeconds(2) {
			continue
		}
		considered++
		if j.Missed(des.FromSeconds(2)) {
			missed++
		}
	}
	if considered == 0 {
		t.Fatal("no jobs in window")
	}
	if dmr := float64(missed) / float64(considered); dmr < 0.9 {
		t.Errorf("overloaded naive DMR = %.2f, want near 1 (domino)", dmr)
	}
}

func TestAttachErrors(t *testing.T) {
	eng, dev, s, tasks := newRig(t, DefaultConfig("naive", []int{34}), 1)
	if err := s.Attach(eng, dev, tasks); err == nil {
		t.Error("double attach accepted")
	}
	s2, _ := New(DefaultConfig("naive", []int{999}))
	eng2 := des.NewEngine()
	dev2, _ := gpu.NewDevice(eng2, speedup.DefaultModel(), gpu.DefaultConfig())
	if err := s2.Attach(eng2, dev2, tasks); err == nil {
		t.Error("oversized partition accepted")
	}
}

func TestOnReleaseUnknownTaskPanics(t *testing.T) {
	_, _, s, tasks := newRig(t, DefaultConfig("naive", []int{34}), 1)
	g := dnn.TinyCNN(dnn.DefaultCostModel())
	stages, _ := dnn.Partition(g, 2)
	alien, _ := rt.NewTask(99, "alien", g, stages, des.Second, des.Second, 0)
	alien.SetWCETs([]des.Time{des.Millisecond, des.Millisecond})
	_ = tasks
	defer func() {
		if recover() == nil {
			t.Fatal("release of unattached task did not panic")
		}
	}()
	s.OnRelease(alien.NewJob(0, 0), 0)
}

func TestName(t *testing.T) {
	s, _ := New(DefaultConfig("naive", []int{34}))
	if s.Name() != "naive" {
		t.Errorf("Name = %q", s.Name())
	}
}

package fault

import (
	"fmt"
	"math"

	"sgprs/internal/des"
	"sgprs/internal/gpu"
	"sgprs/internal/rt"
	"sgprs/internal/sched"
)

// rngSalt separates the fault streams from every other consumer of the run
// seed; the overrun and transient families then fork their own children so
// adding one family never shifts the other's cursor.
const rngSalt = 0xFA017

// Marker receives degradation-window transitions — the metrics collector
// implements it to attribute released jobs to degraded intervals.
type Marker interface {
	SetDegraded(on bool)
}

// Injector drives all three fault families of a run. It installs itself as
// the device's gpu.Hook, schedules degradation-window edges on the engine,
// and hands aborted kernels to the scheduler's sched.FaultHandler. One
// injector serves one run; build a fresh one per run.
type Injector struct {
	cfg     *Config
	eng     *des.Engine
	dev     *gpu.Device
	handler sched.FaultHandler
	marker  Marker

	// orng and trng are the overrun and transient draw streams. They are
	// separate forks so the families' cursors are independent, and they
	// exist only while faults are configured: a nil-Faults run never
	// constructs them.
	orng, trng *des.RNG

	defPolicy  rt.RecoveryPolicy
	defRetries int
	backoff    des.Time

	stats Stats
}

// NewInjector builds the injector for one run. handler is the scheduler's
// recovery half; it may be nil only when no transient faults are configured.
// seed feeds the dedicated fault RNG streams (the caller resolves Config.Seed
// = 0 to a run-derived value).
func NewInjector(cfg *Config, eng *des.Engine, dev *gpu.Device, handler sched.FaultHandler, seed uint64) (*Injector, error) {
	if cfg == nil {
		return nil, fmt.Errorf("fault: nil config")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{
		cfg:        cfg,
		eng:        eng,
		dev:        dev,
		handler:    handler,
		defPolicy:  rt.RecoverRetry,
		defRetries: 1,
	}
	if t := cfg.Transient; t != nil {
		if t.Prob > 0 && handler == nil {
			return nil, fmt.Errorf("fault: transient faults configured but the scheduler implements no recovery")
		}
		pol, err := rt.ParseRecoveryPolicy(t.Policy)
		if err != nil {
			return nil, err
		}
		if pol != rt.RecoverDefault {
			in.defPolicy = pol
		}
		if t.MaxRetries > 0 {
			in.defRetries = t.MaxRetries
		}
		in.backoff = des.Time(t.BackoffMS * float64(des.Millisecond))
	}
	for i, w := range cfg.Degradation {
		if w.SMs > dev.Config().TotalSMs {
			return nil, fmt.Errorf("fault: degradation window %d wants %d SMs, device has %d",
				i, w.SMs, dev.Config().TotalSMs)
		}
	}
	base := des.NewRNG(seed).Fork(rngSalt)
	in.orng = base.Fork(1)
	in.trng = base.Fork(2)
	return in, nil
}

// Install hooks the injector into the device and schedules the degradation
// window edges. marker (may be nil) is flipped at each edge so the metrics
// collector can attribute releases to degraded intervals. Call once, before
// the run starts.
func (in *Injector) Install(marker Marker) {
	in.marker = marker
	in.dev.SetHook(in)
	total := in.dev.Config().TotalSMs
	for _, w := range in.cfg.Degradation {
		w := w
		in.eng.ScheduleFunc(des.FromSeconds(w.StartSec), "fault.degrade", func(now des.Time) {
			// Bounds were checked at construction; a failure here
			// would be an engine bug, not bad input.
			if err := in.dev.SetEffectiveSMs(w.SMs, now); err != nil {
				panic(err)
			}
			if in.marker != nil {
				in.marker.SetDegraded(true)
			}
		})
		in.eng.ScheduleFunc(des.FromSeconds(w.EndSec), "fault.restore", func(now des.Time) {
			if err := in.dev.SetEffectiveSMs(total, now); err != nil {
				panic(err)
			}
			if in.marker != nil {
				in.marker.SetDegraded(false)
			}
		})
	}
}

// Stats returns the fault accounting accumulated so far.
func (in *Injector) Stats() Stats { return in.stats }

// jobOf resolves the job a kernel executes for from its scheduler payload —
// SGPRS stamps the stage instance, naive the whole job. Kernels with a
// foreign payload are invisible to the transient and spike families.
func jobOf(k *gpu.Kernel) *rt.Job {
	switch a := k.Arg.(type) {
	case *rt.StageJob:
		return a.Job
	case *rt.Job:
		return a
	}
	return nil
}

// KernelLaunched implements gpu.Hook: it runs after the launch's admission
// bookkeeping and before rates are derived, so inflated work flows into the
// launch's first rate assignment, the waterfill, and the aggregate ceiling.
func (in *Injector) KernelLaunched(k *gpu.Kernel, now des.Time) {
	if o := in.cfg.Overrun; o != nil {
		factor := 1.0
		switch o.Model {
		case OverrunConstant:
			factor = o.Factor
		case OverrunHeavyTail:
			alpha := o.Alpha
			if alpha == 0 {
				alpha = 3
			}
			// Pareto with unit minimum: most draws sit just above 1,
			// the tail — capped at Factor — overruns badly.
			factor = math.Min(o.Factor, math.Pow(1-in.orng.Float64(), -1/alpha))
		case OverrunSpike:
			every := o.Every
			if every == 0 {
				every = 10
			}
			if j := jobOf(k); j != nil && j.Index%every == 0 {
				factor = o.Factor
			}
		}
		if extra := k.InflateWork(factor); extra > 0 {
			in.stats.Overruns++
			in.stats.OverrunMassMS += extra
		}
	}
	if t := in.cfg.Transient; t != nil && t.Prob > 0 {
		// Both draws happen on every launch-with-a-job, so whether one
		// kernel faults never shifts a later kernel's draw.
		if j := jobOf(k); j != nil {
			hit := in.trng.Float64() < t.Prob
			frac := in.trng.Float64()
			if hit {
				in.armFault(k, frac)
			}
		}
	}
}

// armFault schedules the mid-flight abort of k's current launch at fraction
// frac of its estimated isolated latency. The estimate deliberately ignores
// contention — isolated latency at the full context is a lower bound on the
// real duration, so the fault usually lands while the kernel still runs; a
// kernel that finishes first simply escapes the fault (fireTransient's
// staleness check), which is exactly how a fault window behaves in hardware.
func (in *Injector) armFault(k *gpu.Kernel, frac float64) {
	est := k.IsolatedLatencyMS(in.dev.Model(), float64(k.Stream().Context().SMs()))
	delay := des.Time(frac * est * float64(des.Millisecond))
	in.eng.AfterArg(delay, "fault.transient", fireTransient, &pendingFault{
		in:  in,
		k:   k,
		seq: k.LaunchSeq(),
	})
}

// pendingFault carries a scheduled transient fault to its firing instant.
// The launch sequence number detects staleness: kernels recycle through
// scheduler free lists, so the pointer alone cannot prove the armed launch is
// still the running one.
type pendingFault struct {
	in  *Injector
	k   *gpu.Kernel
	seq uint64
}

// fireTransient aborts the kernel mid-flight and drives the scheduler's
// recovery policy. Stale faults — the kernel finished (or was recycled and
// relaunched) before the fault instant — dissolve silently.
func fireTransient(now des.Time, arg any) {
	pf := arg.(*pendingFault)
	k := pf.k
	if !k.Running() || k.LaunchSeq() != pf.seq {
		return
	}
	in := pf.in
	in.stats.TransientFaults++
	job := jobOf(k)
	task := job.Task

	pol := task.Recovery
	if pol == rt.RecoverDefault {
		pol = in.defPolicy
	}
	budget := task.MaxRetries
	if budget == 0 {
		budget = in.defRetries
	}
	var action sched.RecoveryAction
	switch {
	case pol == rt.RecoverRetry && job.Retries < budget:
		action = sched.ActionRetry
		job.Retries++
		in.stats.Retries++
	case pol == rt.RecoverKillChain:
		action = sched.ActionKillChain
		in.stats.KilledChains++
	default:
		// Skip-job, or retry with an exhausted budget.
		action = sched.ActionSkipJob
		in.stats.SkippedJobs++
	}

	stream := k.Stream()
	in.dev.Abort(k, now)
	in.handler.RecoverKernel(k, stream, action, in.backoff, now)
}

// KernelRetired implements gpu.Hook: a job completing its final kernel with a
// retry on record survived its fault — a recovery.
func (in *Injector) KernelRetired(k *gpu.Kernel, now des.Time) {
	switch a := k.Arg.(type) {
	case *rt.StageJob:
		if a.Index == len(a.Job.Stages)-1 && a.Job.Retries > 0 {
			in.stats.Recoveries++
		}
	case *rt.Job:
		if a.Retries > 0 {
			in.stats.Recoveries++
		}
	}
}

// Package fault is the seeded, deterministic fault-injection layer
// (DESIGN.md §13). It threads three injector families through the gpu stack:
// WCET overruns (per-kernel work inflation applied at launch, so rates and
// the waterfill see the true inflated demand), transient kernel faults (a
// running kernel is aborted mid-flight and the scheduler's recovery policy —
// retry, skip-job, or kill-chain — reconciles), and SM degradation windows
// (device capacity drops to K SMs over [t0, t1), forcing every scheduler to
// recompute shares against the shrunk device).
//
// Every draw comes from a dedicated RNG stream forked from the fault seed:
// enabling faults never perturbs the workload generator's or the device's
// jitter cursors, so a faulted run differs from its clean twin only by the
// faults themselves. A nil *Config disables the layer entirely and is
// bit-identical to a build without it.
package fault

import (
	"fmt"
	"sort"

	"sgprs/internal/rt"
)

// Overrun model names.
const (
	// OverrunConstant inflates every kernel's work by Factor.
	OverrunConstant = "constant"
	// OverrunHeavyTail draws a Pareto(Alpha) factor per kernel, capped at
	// Factor — most kernels barely overrun, a heavy tail overruns badly.
	OverrunHeavyTail = "heavy-tail"
	// OverrunSpike inflates every Every-th frame of each task by Factor —
	// the periodic "hard frame" (keyframe, scene cut) pattern.
	OverrunSpike = "spike"
)

// Overrun configures WCET-overrun injection: how per-kernel execution demand
// is inflated beyond the profiled nominal at launch.
type Overrun struct {
	// Model selects the inflation shape: OverrunConstant,
	// OverrunHeavyTail, or OverrunSpike.
	Model string `json:"model"`
	// Factor is the inflation multiplier (constant, spike) or the cap on
	// the heavy-tailed draw. Must be at least 1; 1 disables inflation.
	Factor float64 `json:"factor"`
	// Alpha is the Pareto shape of the heavy-tailed draw (default 3;
	// smaller = heavier tail). Ignored by the other models.
	Alpha float64 `json:"alpha,omitempty"`
	// Every is the spike cadence in frames (default 10). Ignored by the
	// other models.
	Every int `json:"every,omitempty"`
}

// Transient configures mid-flight kernel faults and the run-level recovery
// defaults tasks fall back to when their own rt.RecoveryPolicy is unset.
type Transient struct {
	// Prob is the per-kernel-launch fault probability in [0, 1].
	Prob float64 `json:"prob"`
	// Policy is the default recovery policy name ("retry", "skip-job",
	// "kill-chain"); empty means retry.
	Policy string `json:"policy,omitempty"`
	// MaxRetries is the default per-job retry budget (default 1).
	MaxRetries int `json:"max_retries,omitempty"`
	// BackoffMS delays a retry's re-submission (default 0: immediate).
	BackoffMS float64 `json:"backoff_ms,omitempty"`
}

// Window is one SM-degradation interval: the device runs at SMs effective
// capacity over [StartSec, EndSec).
type Window struct {
	StartSec float64 `json:"start_sec"`
	EndSec   float64 `json:"end_sec"`
	SMs      int     `json:"sms"`
}

// DeviceFault is one device-level failure domain event: device Device
// crashes at StartSec and — unless the loss is permanent — restarts at
// RestartSec. A crash aborts every resident kernel, drains the device's
// queues, and hands the affected chains to the fleet dispatcher's failover
// policy (the cluster layer, DESIGN.md §15). Only meaningful on fleet runs
// (sim.RunConfig.Devices > 1).
type DeviceFault struct {
	// Device is the fleet index of the failing device.
	Device int `json:"device"`
	// StartSec is the crash instant in simulated seconds.
	StartSec float64 `json:"start_sec"`
	// RestartSec is the restart instant; 0 means the loss is permanent.
	RestartSec float64 `json:"restart_sec,omitempty"`
}

// Config is the fault-injection configuration of one run. The zero value
// (all families nil/empty) installs the injection hook but injects nothing —
// useful for pinning hook placement as bit-identical to no hook at all. A
// nil *Config skips the layer entirely.
type Config struct {
	// Seed feeds the dedicated fault RNG streams; 0 derives one from the
	// run seed, so sweeps decorrelate automatically.
	Seed uint64 `json:"seed,omitempty"`
	// Overrun, when non-nil, enables WCET-overrun injection.
	Overrun *Overrun `json:"overrun,omitempty"`
	// Transient, when non-nil with Prob > 0, enables transient kernel
	// faults.
	Transient *Transient `json:"transient,omitempty"`
	// Degradation lists SM-degradation windows; they must be sorted and
	// non-overlapping.
	Degradation []Window `json:"degradation,omitempty"`
	// DeviceFaults lists device-level crash/restart events; they require a
	// fleet run (sim.RunConfig.Devices > 1), which checks each Device index
	// against the fleet size.
	DeviceFaults []DeviceFault `json:"device_faults,omitempty"`
}

// Validate reports whether the configuration is usable. It never mutates the
// receiver: a Config may be shared across experiment cells, so defaults are
// resolved at injection time instead of being written back.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	if o := c.Overrun; o != nil {
		switch o.Model {
		case OverrunConstant, OverrunHeavyTail, OverrunSpike:
		default:
			return fmt.Errorf("fault: unknown overrun model %q (want %s, %s, or %s)",
				o.Model, OverrunConstant, OverrunHeavyTail, OverrunSpike)
		}
		if o.Factor < 1 {
			return fmt.Errorf("fault: overrun factor %v must be at least 1", o.Factor)
		}
		if o.Alpha < 0 {
			return fmt.Errorf("fault: overrun alpha %v must be non-negative", o.Alpha)
		}
		if o.Every < 0 {
			return fmt.Errorf("fault: overrun cadence %d must be non-negative", o.Every)
		}
	}
	if t := c.Transient; t != nil {
		if t.Prob < 0 || t.Prob > 1 {
			return fmt.Errorf("fault: transient probability %v outside [0, 1]", t.Prob)
		}
		if _, err := rt.ParseRecoveryPolicy(t.Policy); err != nil {
			return err
		}
		if t.MaxRetries < 0 {
			return fmt.Errorf("fault: retry budget %d must be non-negative", t.MaxRetries)
		}
		if t.BackoffMS < 0 {
			return fmt.Errorf("fault: retry backoff %v ms must be non-negative", t.BackoffMS)
		}
	}
	if !sort.SliceIsSorted(c.Degradation, func(i, j int) bool {
		return c.Degradation[i].StartSec < c.Degradation[j].StartSec
	}) {
		return fmt.Errorf("fault: degradation windows must be sorted by start")
	}
	for i, w := range c.Degradation {
		if w.SMs < 1 {
			return fmt.Errorf("fault: degradation window %d SM count %d must be positive", i, w.SMs)
		}
		if w.StartSec < 0 || w.EndSec <= w.StartSec {
			return fmt.Errorf("fault: degradation window %d [%v, %v) is not a forward interval", i, w.StartSec, w.EndSec)
		}
		if i > 0 && w.StartSec < c.Degradation[i-1].EndSec {
			return fmt.Errorf("fault: degradation windows %d and %d overlap", i-1, i)
		}
	}
	for i, f := range c.DeviceFaults {
		if f.Device < 0 {
			return fmt.Errorf("fault: device fault %d device index %d must be non-negative", i, f.Device)
		}
		if f.StartSec < 0 {
			return fmt.Errorf("fault: device fault %d start %v must be non-negative", i, f.StartSec)
		}
		if f.RestartSec != 0 && f.RestartSec <= f.StartSec {
			return fmt.Errorf("fault: device fault %d restart %v must follow crash %v (or be 0 for permanent loss)",
				i, f.RestartSec, f.StartSec)
		}
	}
	return nil
}

// Clone deep-copies the configuration (nil-safe). Experiment axes mutate
// per-cell copies; the variant's own Config must stay pristine.
func (c *Config) Clone() *Config {
	if c == nil {
		return nil
	}
	out := &Config{Seed: c.Seed}
	if c.Overrun != nil {
		o := *c.Overrun
		out.Overrun = &o
	}
	if c.Transient != nil {
		t := *c.Transient
		out.Transient = &t
	}
	if len(c.Degradation) > 0 {
		out.Degradation = append([]Window(nil), c.Degradation...)
	}
	if len(c.DeviceFaults) > 0 {
		out.DeviceFaults = append([]DeviceFault(nil), c.DeviceFaults...)
	}
	return out
}

// Stats is the injector's fault accounting, merged into the run summary.
type Stats struct {
	// Overruns counts kernels whose work was inflated; OverrunMassMS is
	// the total extra single-SM milliseconds injected.
	Overruns      int
	OverrunMassMS float64
	// TransientFaults counts kernels aborted mid-flight. Retries,
	// SkippedJobs, and KilledChains partition the recovery decisions
	// taken; Recoveries counts jobs that completed despite at least one
	// retried fault.
	TransientFaults int
	Retries         int
	Recoveries      int
	SkippedJobs     int
	KilledChains    int
}

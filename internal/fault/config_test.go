package fault

import (
	"strings"
	"testing"
)

// TestValidate walks the rejection surface: every malformed field must fail
// with a message naming the offending value, and the accept cases — including
// nil and the empty Config — must pass.
func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  *Config
		want string // substring of the error; empty means valid
	}{
		{"nil", nil, ""},
		{"empty", &Config{}, ""},
		{"full", &Config{
			Overrun:     &Overrun{Model: OverrunHeavyTail, Factor: 2, Alpha: 3},
			Transient:   &Transient{Prob: 0.1, Policy: "kill-chain", MaxRetries: 2, BackoffMS: 5},
			Degradation: []Window{{StartSec: 0, EndSec: 1, SMs: 10}, {StartSec: 1, EndSec: 2, SMs: 30}},
		}, ""},
		{"bad model", &Config{Overrun: &Overrun{Model: "gaussian", Factor: 2}}, "unknown overrun model"},
		{"deflating factor", &Config{Overrun: &Overrun{Model: OverrunConstant, Factor: 0.5}}, "must be at least 1"},
		{"negative alpha", &Config{Overrun: &Overrun{Model: OverrunHeavyTail, Factor: 2, Alpha: -1}}, "alpha"},
		{"negative cadence", &Config{Overrun: &Overrun{Model: OverrunSpike, Factor: 2, Every: -3}}, "cadence"},
		{"prob above 1", &Config{Transient: &Transient{Prob: 1.5}}, "outside [0, 1]"},
		{"negative prob", &Config{Transient: &Transient{Prob: -0.1}}, "outside [0, 1]"},
		{"bad policy", &Config{Transient: &Transient{Prob: 0.1, Policy: "pray"}}, "recovery policy"},
		{"negative retries", &Config{Transient: &Transient{Prob: 0.1, MaxRetries: -1}}, "retry budget"},
		{"negative backoff", &Config{Transient: &Transient{Prob: 0.1, BackoffMS: -2}}, "backoff"},
		{"zero SMs", &Config{Degradation: []Window{{StartSec: 0, EndSec: 1, SMs: 0}}}, "must be positive"},
		{"backward window", &Config{Degradation: []Window{{StartSec: 2, EndSec: 1, SMs: 5}}}, "not a forward interval"},
		{"negative start", &Config{Degradation: []Window{{StartSec: -1, EndSec: 1, SMs: 5}}}, "not a forward interval"},
		{"unsorted windows", &Config{Degradation: []Window{
			{StartSec: 2, EndSec: 3, SMs: 5}, {StartSec: 0, EndSec: 1, SMs: 5},
		}}, "sorted"},
		{"overlapping windows", &Config{Degradation: []Window{
			{StartSec: 0, EndSec: 2, SMs: 5}, {StartSec: 1, EndSec: 3, SMs: 5},
		}}, "overlap"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestCloneIndependence pins the deep copy: mutating every level of a clone
// must leave the original untouched, and nil clones to nil. Experiment axes
// rely on this to stamp per-cell fault rates without corrupting the variant.
func TestCloneIndependence(t *testing.T) {
	if (*Config)(nil).Clone() != nil {
		t.Error("nil did not clone to nil")
	}
	orig := &Config{
		Seed:        9,
		Overrun:     &Overrun{Model: OverrunSpike, Factor: 1.5, Every: 10},
		Transient:   &Transient{Prob: 0.05, Policy: "retry", MaxRetries: 1},
		Degradation: []Window{{StartSec: 0.5, EndSec: 1, SMs: 20}},
	}
	c := orig.Clone()
	c.Seed = 1
	c.Overrun.Factor = 99
	c.Transient.Prob = 1
	c.Degradation[0].SMs = 1
	if orig.Seed != 9 || orig.Overrun.Factor != 1.5 || orig.Transient.Prob != 0.05 || orig.Degradation[0].SMs != 20 {
		t.Errorf("mutating the clone reached the original: %+v", orig)
	}
}

package memo

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"sgprs/internal/dnn"
	"sgprs/internal/gpu"
	"sgprs/internal/profile"
	"sgprs/internal/rt"
	"sgprs/internal/speedup"
)

func testTask(t *testing.T, model *speedup.Model, id, stages int) *rt.Task {
	t.Helper()
	g := dnn.ResNet18(dnn.DefaultCostModel())
	parts, err := dnn.Partition(g, stages)
	if err != nil {
		t.Fatal(err)
	}
	task, err := rt.NewTask(id, "t", g, parts, 1e6, 1e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

// TestGraphSingleflight: concurrent Graph calls for one key build exactly
// once and share the pointer.
func TestGraphSingleflight(t *testing.T) {
	c := New()
	model := speedup.DefaultModel()
	key := GraphKey{Model: model, Name: "ref", SMs: 68, TargetMS: 1.4}
	var builds atomic.Int32
	build := func() *dnn.Graph {
		builds.Add(1)
		return dnn.ResNet18(dnn.DefaultCostModel())
	}
	const workers = 8
	got := make([]*dnn.Graph, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = c.Graph(key, build)
		}()
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times, want 1", n)
	}
	for i := 1; i < workers; i++ {
		if got[i] != got[0] {
			t.Fatal("workers received different graph instances")
		}
	}
	st := c.Stats()
	if st.GraphMisses != 1 || st.GraphHits != workers-1 {
		t.Fatalf("stats = %v, want 1 miss / %d hits", st, workers-1)
	}
}

// TestProfileTasksDedupAndEquality: N identical tasks profile once, and the
// installed WCETs equal the uncached profiler's output exactly.
func TestProfileTasksDedupAndEquality(t *testing.T) {
	model := speedup.DefaultModel()
	prof := profile.New(model, gpu.DefaultConfig())

	const n = 5
	tasks := make([]*rt.Task, n)
	for i := range tasks {
		tasks[i] = testTask(t, model, i, 6)
	}
	c := New()
	if err := c.ProfileTasks(prof, tasks, 34); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.ProfileMisses != 1 || st.ProfileHits != n-1 {
		t.Fatalf("stats = %v, want 1 miss / %d hits", st, n-1)
	}

	ref := testTask(t, model, 99, 6)
	if err := prof.ProfileTask(ref, 34); err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		for j := 0; j < task.NumStages(); j++ {
			if task.StageWCET(j) != ref.StageWCET(j) {
				t.Fatalf("stage %d WCET %v differs from uncached %v", j, task.StageWCET(j), ref.StageWCET(j))
			}
			if task.VirtualDeadline(j) != ref.VirtualDeadline(j) {
				t.Fatalf("stage %d virtual deadline differs", j)
			}
		}
	}
}

// TestProfileKeySeparation: dimensions that can change the measurement (SM
// count, stage count, launch overhead) key separately; dimensions that
// provably cannot (seed, gain cap, contention coefficients) share entries.
func TestProfileKeySeparation(t *testing.T) {
	model := speedup.DefaultModel()
	base := gpu.DefaultConfig()
	c := New()

	profileOne := func(cfg gpu.Config, stages, sms int) {
		t.Helper()
		task := testTask(t, model, 0, stages)
		if err := c.ProfileTasks(profile.New(model, cfg), []*rt.Task{task}, sms); err != nil {
			t.Fatal(err)
		}
	}

	profileOne(base, 6, 34)
	if st := c.Stats(); st.ProfileMisses != 1 {
		t.Fatalf("misses = %d, want 1", st.ProfileMisses)
	}

	// Irrelevant dimensions: hits.
	withSeed := base
	withSeed.Seed = 12345
	profileOne(withSeed, 6, 34)
	withCap := base
	withCap.AggregateGainCap = 99
	profileOne(withCap, 6, 34)
	withJitter := base
	withJitter.ContentionJitter = 0.5
	withJitter.ContentionPenalty = 0.5
	profileOne(withJitter, 6, 34)
	if st := c.Stats(); st.ProfileMisses != 1 || st.ProfileHits != 3 {
		t.Fatalf("after irrelevant-dimension lookups: %v, want 1 miss / 3 hits", st)
	}

	// Relevant dimensions: fresh misses.
	profileOne(base, 6, 51) // different context size
	profileOne(base, 3, 34) // different shape
	withOverhead := base
	withOverhead.LaunchOverhead = 2 * base.LaunchOverhead
	profileOne(withOverhead, 6, 34)
	if st := c.Stats(); st.ProfileMisses != 4 {
		t.Fatalf("after relevant-dimension lookups: %v, want 4 misses", st)
	}
}

// TestShapeFingerprintDistinguishesShapes: the fingerprint is exact — equal
// for equal share vectors, different for different work or partitioning.
func TestShapeFingerprintDistinguishesShapes(t *testing.T) {
	g := dnn.ResNet18(dnn.DefaultCostModel())
	s6a, _ := dnn.Partition(g, 6)
	s6b, _ := dnn.Partition(g, 6)
	s3, _ := dnn.Partition(g, 3)
	if ShapeFingerprint(s6a) != ShapeFingerprint(s6b) {
		t.Fatal("identical partitions fingerprint differently")
	}
	if ShapeFingerprint(s6a) == ShapeFingerprint(s3) {
		t.Fatal("different stage counts share a fingerprint")
	}
	scaled := dnn.ResNet18(dnn.DefaultCostModel()).Scale(1.001)
	s6c, _ := dnn.Partition(scaled, 6)
	if ShapeFingerprint(s6a) == ShapeFingerprint(s6c) {
		t.Fatal("different work totals share a fingerprint")
	}
}

// TestConcurrentProfileTasksSingleflight: many goroutines profiling the same
// shape through one cache must agree and account exactly one miss.
func TestConcurrentProfileTasksSingleflight(t *testing.T) {
	model := speedup.DefaultModel()
	prof := profile.New(model, gpu.DefaultConfig())
	c := New()
	const workers = 8
	tasks := make([]*rt.Task, workers)
	for i := range tasks {
		tasks[i] = testTask(t, model, i, 6)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = c.ProfileTasks(prof, tasks[i:i+1], 34)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.ProfileMisses != 1 || st.ProfileHits != workers-1 {
		t.Fatalf("stats = %v, want 1 miss / %d hits", st, workers-1)
	}
	var wcets [][]int64
	for _, task := range tasks {
		row := make([]int64, task.NumStages())
		for j := range row {
			row[j] = int64(task.StageWCET(j))
		}
		wcets = append(wcets, row)
	}
	for i := 1; i < workers; i++ {
		if !reflect.DeepEqual(wcets[i], wcets[0]) {
			t.Fatalf("worker %d got different WCETs", i)
		}
	}
}

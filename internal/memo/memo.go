// Package memo is the cross-run offline-phase cache: it memoizes the two
// deterministic, purely-functional computations every simulation run repeats
// — building + calibrating the reference DNN graph, and profiling a task
// shape's per-stage WCETs in isolation — so a sweep that executes hundreds
// of runs performs each distinct offline computation exactly once.
//
// # Why cache hits cannot change results
//
// Both cached computations are pure functions of their cache key:
//
//   - The calibrated graph depends only on the speedup model and the
//     calibration target (SM count, target latency). Graph construction and
//     dnn.Calibrate draw no randomness.
//   - A WCET profile runs each stage kernel alone on a private device
//     (profile.Profiler.measure). Isolation makes every stochastic device
//     input dead: the profiler zeroes ContentionJitter and
//     ContentionPenalty, a single kernel never trips the aggregate gain cap
//     (it binds only with ≥ 2 concurrent kernels), and the per-kernel jitter
//     draw is consumed but never applied at demand ratio ≤ 1. The
//     measurement is therefore independent of gpu.Config.Seed,
//     AggregateGainCap, and the contention coefficients — which is exactly
//     why those fields are excluded from the profile key (see profileKey).
//
// Replaying a memoized float64 result is bit-identical to recomputing it, so
// cached and uncached runs produce byte-for-byte equal outputs; the
// equality tests in internal/sim pin this for both paper scenarios.
//
// # Concurrency
//
// A Cache is safe for concurrent use by the parallel experiment runner's
// workers. Each entry carries its own sync.Once (keyed singleflight): the
// first worker to need a key computes it while later workers block on that
// entry only, then share the result. Shared values (graphs, stage slices,
// WCET tables) are immutable after construction — rt.Task.SetWCETs copies —
// so handing one instance to many concurrent runs is safe.
package memo

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"sgprs/internal/des"
	"sgprs/internal/dnn"
	"sgprs/internal/gpu"
	"sgprs/internal/profile"
	"sgprs/internal/rt"
	"sgprs/internal/speedup"
)

// GraphKey identifies one calibrated reference graph. Name distinguishes
// network families; SMs and TargetMS are the calibration anchor
// (dnn.Calibrate arguments).
type GraphKey struct {
	Model    *speedup.Model
	Name     string
	SMs      float64
	TargetMS float64
}

type graphEntry struct {
	once sync.Once
	g    *dnn.Graph
}

// profileKey identifies one WCET profile table: a task shape (the stage
// fingerprint) measured at sms SMs under a model, device config, and WCET
// margin. The gpu.Config inside is normalized by profileConfigKey: fields
// that provably cannot influence an isolated single-kernel measurement
// (Seed, ContentionJitter, ContentionPenalty, AggregateGainCap — see the
// package comment) are zeroed so that e.g. a seed-decorrelated sweep or a
// gain-cap calibration grid still shares one profile per shape.
type profileKey struct {
	model  *speedup.Model
	cfg    gpu.Config
	sms    int
	margin uint64 // math.Float64bits of the profiler margin
	shape  string // collision-free stage-shape fingerprint
}

type profileEntry struct {
	once  sync.Once
	wcets []des.Time
	err   error
}

// profileConfigKey zeroes the gpu.Config fields an isolated measurement
// cannot observe. DisableIncremental is among them by construction: the
// incremental rate engine is bit-identical to the full reference sweep
// (DESIGN.md §10), so profiles measured under either mode are
// interchangeable.
func profileConfigKey(cfg gpu.Config) gpu.Config {
	cfg.Seed = 0
	cfg.ContentionJitter = 0
	cfg.ContentionPenalty = 0
	cfg.AggregateGainCap = 0
	cfg.DisableIncremental = false
	return cfg
}

// ShapeFingerprint serializes a stage chain's execution-relevant shape: for
// each stage, its per-class work shares (exact float bits). Two tasks with
// equal fingerprints are indistinguishable to the profiler, whatever graph
// or task objects they came from. The encoding is exact (no hashing), so
// distinct shapes can never collide.
func ShapeFingerprint(stages []*dnn.Stage) string {
	buf := make([]byte, 0, 16+32*len(stages))
	buf = strconv.AppendInt(buf, int64(len(stages)), 10)
	for _, st := range stages {
		buf = append(buf, '|')
		for _, sh := range st.Shares {
			buf = strconv.AppendInt(buf, int64(sh.Class), 10)
			buf = append(buf, ':')
			buf = strconv.AppendUint(buf, math.Float64bits(sh.Work), 16)
			buf = append(buf, ',')
		}
	}
	return string(buf)
}

// Stats counts cache traffic. Hits are lookups served from a completed (or
// in-flight) entry; misses are lookups that created the entry and ran the
// computation.
type Stats struct {
	GraphHits, GraphMisses     uint64
	ProfileHits, ProfileMisses uint64
}

// String renders "offline cache: graphs 1 miss / 47 hits, profiles 4 misses / 380 hits".
func (s Stats) String() string {
	return fmt.Sprintf("offline cache: graphs %d misses / %d hits, profiles %d misses / %d hits",
		s.GraphMisses, s.GraphHits, s.ProfileMisses, s.ProfileHits)
}

// Cache memoizes offline-phase computations. The zero value is not usable;
// call New. See the package comment for the safety argument.
type Cache struct {
	mu       sync.Mutex
	graphs   map[GraphKey]*graphEntry
	profiles map[profileKey]*profileEntry

	graphHits, graphMisses     atomic.Uint64
	profileHits, profileMisses atomic.Uint64
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{
		graphs:   map[GraphKey]*graphEntry{},
		profiles: map[profileKey]*profileEntry{},
	}
}

var defaultCache = New()

// Default returns the process-wide cache shared by sim.Run and the parallel
// experiment runner.
func Default() *Cache { return defaultCache }

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		GraphHits:     c.graphHits.Load(),
		GraphMisses:   c.graphMisses.Load(),
		ProfileHits:   c.profileHits.Load(),
		ProfileMisses: c.profileMisses.Load(),
	}
}

// Graph returns the memoized graph for key, calling build exactly once per
// key across all goroutines. The returned graph is shared: callers must
// treat it as immutable (in particular, never Scale/Calibrate it again).
func (c *Cache) Graph(key GraphKey, build func() *dnn.Graph) *dnn.Graph {
	c.mu.Lock()
	e, ok := c.graphs[key]
	if !ok {
		e = &graphEntry{}
		c.graphs[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.graphHits.Add(1)
	} else {
		c.graphMisses.Add(1)
	}
	e.once.Do(func() { e.g = build() })
	return e.g
}

// ProfileTasks installs per-stage WCETs on every task, measuring each
// distinct task shape exactly once — within this call, across runs, and
// across concurrent runner workers — instead of once per task. sms is the
// context size to profile on (the pool's smallest, as in the uncached
// offline phase). The memoized table is installed through
// rt.Task.SetWCETs, which copies, so tasks never alias cache memory.
func (c *Cache) ProfileTasks(p *profile.Profiler, tasks []*rt.Task, sms int) error {
	cfgKey := profileConfigKey(p.Config())
	model := p.Model()
	margin := math.Float64bits(p.Margin)
	for _, t := range tasks {
		key := profileKey{
			model:  model,
			cfg:    cfgKey,
			sms:    sms,
			margin: margin,
			shape:  ShapeFingerprint(t.Stages),
		}
		c.mu.Lock()
		e, ok := c.profiles[key]
		if !ok {
			e = &profileEntry{}
			c.profiles[key] = e
		}
		c.mu.Unlock()
		if ok {
			c.profileHits.Add(1)
		} else {
			c.profileMisses.Add(1)
		}
		t := t
		e.once.Do(func() { e.wcets, e.err = measureWCETs(p, t, sms) })
		if e.err != nil {
			return e.err
		}
		if err := t.SetWCETs(e.wcets); err != nil {
			return fmt.Errorf("memo: task %s: %w", t.Name, err)
		}
	}
	return nil
}

// measureWCETs is the uncached per-shape measurement: every stage in
// isolation at sms SMs, exactly what profile.Profiler.ProfileTask measures.
func measureWCETs(p *profile.Profiler, t *rt.Task, sms int) ([]des.Time, error) {
	wcets := make([]des.Time, len(t.Stages))
	for j, st := range t.Stages {
		c, err := p.StageWCET(st, sms)
		if err != nil {
			return nil, fmt.Errorf("memo: task %s stage %d: %w", t.Name, j, err)
		}
		wcets[j] = c
	}
	return wcets, nil
}

// Package config loads and saves experiment configurations as JSON, so
// sweeps are reproducible artifacts rather than command-line folklore.
package config

import (
	"encoding/json"
	"fmt"
	"os"

	"sgprs/internal/cluster"
	"sgprs/internal/exp"
	"sgprs/internal/fault"
	"sgprs/internal/rt"
	"sgprs/internal/sim"
	"sgprs/internal/workload"
)

// Experiment is the serialisable description of a figure regeneration run.
type Experiment struct {
	// Scenario is 1 (two contexts) or 2 (three contexts); 0 means the
	// Variants' explicit context pools are used instead.
	Scenario int `json:"scenario,omitempty"`
	// TaskCounts is the sweep axis (defaults to 1..30).
	TaskCounts []int `json:"task_counts,omitempty"`
	// HorizonSec is the simulated duration per point (default 10).
	HorizonSec float64 `json:"horizon_sec,omitempty"`
	// WarmUpSec is excluded from metrics (default 1).
	WarmUpSec float64 `json:"warmup_sec,omitempty"`
	// Seed drives every stochastic element (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// FPS is the per-task frame rate (default 30).
	FPS float64 `json:"fps,omitempty"`
	// Stages is the per-task stage count (default 6).
	Stages int `json:"stages,omitempty"`
	// Stagger spreads task offsets across the period instead of the
	// paper's synchronous releases.
	Stagger bool `json:"stagger,omitempty"`
	// Variants lists the scheduler configurations to sweep; empty means
	// the paper's four (naive + SGPRS at 1.0/1.5/2.0x).
	Variants []Variant `json:"variants,omitempty"`
	// Arrival switches every variant to an open-loop arrival process;
	// omitted keeps the classic closed-loop periodic releases.
	Arrival *Arrival `json:"arrival,omitempty"`
	// SLOMS is the response-time objective in milliseconds (0 = none).
	SLOMS float64 `json:"slo_ms,omitempty"`
	// RateFactors adds an arrival-rate axis multiplying the arrival
	// intensity per sweep cell; requires Arrival.
	RateFactors []float64 `json:"rate_factors,omitempty"`
	// Faults configures the fault-injection layer for every variant (WCET
	// overruns, transient kernel faults, SM degradation windows — DESIGN.md
	// §13); omitted keeps the fault-free dynamics. The block serialises
	// with fault.Config's own JSON tags.
	Faults *fault.Config `json:"faults,omitempty"`
	// Devices sizes the fleet (DESIGN.md §15); 0 or 1 keeps the classic
	// single-device run. Device-level failure windows ride in the faults
	// block's device_faults list.
	Devices int `json:"devices,omitempty"`
	// Placement is the fleet chain-homing policy: "bin-pack" (default),
	// "context-fit", or "load-steal". Requires devices > 1.
	Placement string `json:"placement,omitempty"`
	// Failover is the device-crash policy: "migrate" (default), "retry",
	// or "shed". Requires devices > 1.
	Failover string `json:"failover,omitempty"`
	// AdmitCeiling load-sheds new releases while surviving fleet capacity
	// is below this utilization fraction (0 disables admission control).
	AdmitCeiling float64 `json:"admit_ceiling,omitempty"`
}

// Arrival is the serialisable arrival-process description; Build translates
// it into the workload layer's process value.
type Arrival struct {
	// Kind selects the process: "periodic", "poisson", "bursty", "mmpp",
	// "diurnal", or "trace".
	Kind string `json:"kind"`
	// Rate is the per-task arrival rate, arrivals per second (periodic:
	// a multiple of the natural rate). 0 means each task's natural rate.
	Rate float64 `json:"rate,omitempty"`
	// OnSec and OffSec are the bursty window lengths, seconds.
	OnSec  float64 `json:"on_sec,omitempty"`
	OffSec float64 `json:"off_sec,omitempty"`
	// RatesPerSec and MeanSojournSec are the MMPP state lists.
	RatesPerSec    []float64 `json:"rates_per_sec,omitempty"`
	MeanSojournSec []float64 `json:"mean_sojourn_sec,omitempty"`
	// PeriodSec, MinRate, and MaxRate shape the diurnal curve.
	PeriodSec float64 `json:"period_sec,omitempty"`
	MinRate   float64 `json:"min_rate,omitempty"`
	MaxRate   float64 `json:"max_rate,omitempty"`
	// Trace is the trace file path (CSV or JSON) for kind "trace".
	Trace string `json:"trace,omitempty"`
	// Speed is the trace replay speed (0 = as recorded).
	Speed float64 `json:"speed,omitempty"`
}

// Build translates the description into a workload arrival process,
// loading the trace file for kind "trace".
func (a *Arrival) Build() (workload.Arrival, error) {
	var p workload.Arrival
	switch a.Kind {
	case "periodic":
		p = workload.Periodic{Rate: a.Rate}
	case "poisson":
		p = workload.Poisson{Rate: a.Rate}
	case "bursty":
		p = workload.Bursty{OnSec: a.OnSec, OffSec: a.OffSec, Rate: a.Rate}
	case "mmpp":
		p = workload.MMPP{RatesPerSec: a.RatesPerSec, MeanSojournSec: a.MeanSojournSec}
	case "diurnal":
		p = workload.Diurnal{PeriodSec: a.PeriodSec, MinRate: a.MinRate, MaxRate: a.MaxRate}
	case "trace":
		data, err := workload.LoadTrace(a.Trace)
		if err != nil {
			return nil, err
		}
		p = workload.Trace{Data: data, Speed: a.Speed}
	default:
		return nil, fmt.Errorf("config: unknown arrival kind %q (want periodic, poisson, bursty, mmpp, diurnal, or trace)", a.Kind)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("config: arrival: %w", err)
	}
	return p, nil
}

// Variant is one serialisable scheduler configuration.
type Variant struct {
	Kind string  `json:"kind"` // "sgprs" or "naive"
	Name string  `json:"name"`
	OS   float64 `json:"os,omitempty"` // over-subscription level
	// ContextSMs overrides the scenario-derived pool when non-empty.
	ContextSMs []int `json:"context_sms,omitempty"`
}

// Normalize fills defaults and validates.
func (e *Experiment) Normalize() error {
	if e.Scenario != 0 {
		if _, err := sim.ScenarioContexts(e.Scenario); err != nil {
			return err
		}
	}
	if len(e.TaskCounts) == 0 {
		for n := 1; n <= 30; n++ {
			e.TaskCounts = append(e.TaskCounts, n)
		}
	}
	for _, n := range e.TaskCounts {
		if n <= 0 {
			return fmt.Errorf("config: task count %d must be positive", n)
		}
	}
	if e.HorizonSec == 0 {
		e.HorizonSec = 10
	}
	if e.WarmUpSec == 0 {
		e.WarmUpSec = 1
	}
	if e.HorizonSec <= e.WarmUpSec {
		return fmt.Errorf("config: horizon %vs must exceed warm-up %vs", e.HorizonSec, e.WarmUpSec)
	}
	if e.Seed == 0 {
		e.Seed = 1
	}
	if e.FPS == 0 {
		e.FPS = 30
	}
	if e.Stages == 0 {
		e.Stages = 6
	}
	if len(e.Variants) == 0 {
		for _, v := range sim.ScenarioVariants() {
			e.Variants = append(e.Variants, Variant{Kind: v.Kind.String(), Name: v.Name, OS: v.OS})
		}
	}
	for i := range e.Variants {
		v := &e.Variants[i]
		if v.Kind != "sgprs" && v.Kind != "naive" {
			return fmt.Errorf("config: variant %q has unknown kind %q", v.Name, v.Kind)
		}
		if v.Name == "" {
			return fmt.Errorf("config: variant %d needs a name", i)
		}
		if len(v.ContextSMs) == 0 {
			if e.Scenario == 0 {
				return fmt.Errorf("config: variant %q needs context_sms when no scenario is set", v.Name)
			}
			if v.OS <= 0 {
				return fmt.Errorf("config: variant %q needs an over-subscription level", v.Name)
			}
		}
	}
	if e.SLOMS < 0 {
		return fmt.Errorf("config: slo_ms %v must be non-negative", e.SLOMS)
	}
	if len(e.RateFactors) > 0 && e.Arrival == nil {
		return fmt.Errorf("config: rate_factors need an arrival block")
	}
	if err := e.Faults.Validate(); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if e.Devices < 0 {
		return fmt.Errorf("config: devices %d must be non-negative", e.Devices)
	}
	if _, err := cluster.ParsePlacement(e.Placement); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if _, err := rt.ParseFailoverPolicy(e.Failover); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if e.Devices <= 1 && (e.Placement != "" || e.Failover != "" || e.AdmitCeiling != 0) {
		return fmt.Errorf("config: placement/failover/admit_ceiling need devices > 1")
	}
	return nil
}

// RunConfigs expands the experiment into one sim.RunConfig per variant (task
// count left to the sweep driver).
func (e *Experiment) RunConfigs() ([]sim.RunConfig, error) {
	if err := e.Normalize(); err != nil {
		return nil, err
	}
	var arrival workload.Arrival
	if e.Arrival != nil {
		p, err := e.Arrival.Build()
		if err != nil {
			return nil, err
		}
		arrival = p
	}
	placement, err := cluster.ParsePlacement(e.Placement)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	failover, err := rt.ParseFailoverPolicy(e.Failover)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	var out []sim.RunConfig
	for _, v := range e.Variants {
		kind := sim.KindSGPRS
		if v.Kind == "naive" {
			kind = sim.KindNaive
		}
		pool := v.ContextSMs
		if len(pool) == 0 {
			np, err := sim.ScenarioContexts(e.Scenario)
			if err != nil {
				return nil, err
			}
			os := v.OS
			if kind == sim.KindNaive {
				os = 1.0 // the naive baseline tiles the device
			}
			pool = sim.ContextPool(np, os, 68)
		}
		out = append(out, sim.RunConfig{
			Kind:         kind,
			Name:         v.Name,
			ContextSMs:   pool,
			NumTasks:     1,
			FPS:          e.FPS,
			Stages:       e.Stages,
			Stagger:      e.Stagger,
			HorizonSec:   e.HorizonSec,
			WarmUpSec:    e.WarmUpSec,
			Seed:         e.Seed,
			Arrival:      arrival,
			SLOMS:        e.SLOMS,
			Faults:       e.Faults.Clone(),
			Devices:      e.Devices,
			Placement:    placement,
			Failover:     failover,
			AdmitCeiling: e.AdmitCeiling,
		})
	}
	return out, nil
}

// Spec compiles the serialised experiment into a declarative exp.Spec (one
// variant per configuration, the task counts as the sweep axis), so JSON
// experiment files run through the same spec pipeline as registry entries.
func (e *Experiment) Spec(name string) (*exp.Spec, error) {
	bases, err := e.RunConfigs()
	if err != nil {
		return nil, err
	}
	s := exp.Grid(bases, e.TaskCounts)
	s.Name = name
	s.Description = "JSON experiment file"
	if len(e.RateFactors) > 0 {
		// Prepend so the task axis stays innermost (Grid's contract).
		s.Axes = append([]exp.Axis{exp.Rate(e.RateFactors...)}, s.Axes...)
	}
	return s, nil
}

// Load reads an Experiment from a JSON file.
func Load(path string) (*Experiment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	var e Experiment
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("config: parse %s: %w", path, err)
	}
	if err := e.Normalize(); err != nil {
		return nil, err
	}
	return &e, nil
}

// Save writes the experiment as indented JSON.
func (e *Experiment) Save(path string) error {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return nil
}

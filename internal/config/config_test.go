package config

import (
	"os"
	"path/filepath"
	"testing"

	"sgprs/internal/sim"
)

func TestNormalizeDefaults(t *testing.T) {
	e := &Experiment{Scenario: 1}
	if err := e.Normalize(); err != nil {
		t.Fatal(err)
	}
	if len(e.TaskCounts) != 30 || e.TaskCounts[0] != 1 || e.TaskCounts[29] != 30 {
		t.Errorf("task counts = %v", e.TaskCounts)
	}
	if e.HorizonSec != 10 || e.WarmUpSec != 1 || e.Seed != 1 || e.FPS != 30 || e.Stages != 6 {
		t.Errorf("defaults wrong: %+v", e)
	}
	if len(e.Variants) != 4 {
		t.Fatalf("variants = %d, want the paper's 4", len(e.Variants))
	}
	if e.Variants[0].Kind != "naive" || e.Variants[3].Name != "sgprs-2.0x" {
		t.Errorf("variants = %+v", e.Variants)
	}
}

func TestNormalizeErrors(t *testing.T) {
	cases := []*Experiment{
		{Scenario: 3},
		{Scenario: 1, TaskCounts: []int{0}},
		{Scenario: 1, HorizonSec: 1, WarmUpSec: 2},
		{Scenario: 1, Variants: []Variant{{Kind: "quantum", Name: "x", OS: 1}}},
		{Scenario: 1, Variants: []Variant{{Kind: "sgprs", OS: 1}}},
		{Scenario: 0, Variants: []Variant{{Kind: "sgprs", Name: "x", OS: 1}}},
		{Scenario: 1, Variants: []Variant{{Kind: "sgprs", Name: "x"}}},
	}
	for i, e := range cases {
		if err := e.Normalize(); err == nil {
			t.Errorf("case %d accepted: %+v", i, e)
		}
	}
}

func TestRunConfigsScenarioPools(t *testing.T) {
	e := &Experiment{Scenario: 2}
	cfgs, err := e.RunConfigs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 4 {
		t.Fatalf("configs = %d", len(cfgs))
	}
	// Naive tiles the device regardless of its nominal OS.
	if got := cfgs[0].ContextSMs; len(got) != 3 || got[0] != 23 {
		t.Errorf("naive pool = %v, want [23 23 23]", got)
	}
	// SGPRS 1.5x in scenario 2: 34 SMs per context.
	if got := cfgs[2].ContextSMs; len(got) != 3 || got[0] != 34 {
		t.Errorf("sgprs-1.5x pool = %v, want [34 34 34]", got)
	}
	if cfgs[1].Kind != sim.KindSGPRS || cfgs[0].Kind != sim.KindNaive {
		t.Error("kinds wrong")
	}
}

func TestRunConfigsExplicitPool(t *testing.T) {
	e := &Experiment{Variants: []Variant{{Kind: "sgprs", Name: "custom", ContextSMs: []int{10, 20, 30}}}}
	cfgs, err := e.RunConfigs()
	if err != nil {
		t.Fatal(err)
	}
	if got := cfgs[0].ContextSMs; len(got) != 3 || got[2] != 30 {
		t.Errorf("pool = %v", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "exp.json")
	e := &Experiment{Scenario: 1, TaskCounts: []int{5, 10}, Seed: 42}
	if err := e.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scenario != 1 || got.Seed != 42 || len(got.TaskCounts) != 2 {
		t.Errorf("round trip = %+v", got)
	}
	// Load normalises: variants filled in.
	if len(got.Variants) != 4 {
		t.Errorf("variants = %d", len(got.Variants))
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("/nonexistent/exp.json"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := Load(bad); err == nil {
		t.Error("bad JSON accepted")
	}
	invalid := filepath.Join(dir, "invalid.json")
	os.WriteFile(invalid, []byte(`{"scenario": 7}`), 0o644)
	if _, err := Load(invalid); err == nil {
		t.Error("invalid scenario accepted")
	}
}

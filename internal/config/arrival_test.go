package config

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sgprs/internal/exp"
	"sgprs/internal/workload"
)

// TestArrivalBuildKinds: every serialisable kind translates into its
// workload process, and the name round-trips so sweep labels stay readable.
func TestArrivalBuildKinds(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "t.csv")
	if err := os.WriteFile(trace, []byte("time_s,task\n0.1,0\n0.2,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		arr  Arrival
		name string
	}{
		{Arrival{Kind: "periodic"}, "periodic"},
		{Arrival{Kind: "periodic", Rate: 2}, "periodic-2x"},
		{Arrival{Kind: "poisson", Rate: 40}, "poisson-40"},
		{Arrival{Kind: "bursty", OnSec: 0.5, OffSec: 0.5, Rate: 60}, "bursty"},
		{Arrival{Kind: "mmpp", RatesPerSec: []float64{10, 80}, MeanSojournSec: []float64{1, 0.2}}, "mmpp"},
		{Arrival{Kind: "diurnal", PeriodSec: 10, MinRate: 5, MaxRate: 50}, "diurnal"},
		{Arrival{Kind: "trace", Trace: trace}, "trace:t"},
	}
	for _, c := range cases {
		p, err := c.arr.Build()
		if err != nil {
			t.Errorf("%s: %v", c.arr.Kind, err)
			continue
		}
		if got := p.Name(); !strings.HasPrefix(got, c.name) {
			t.Errorf("%s: name = %q, want prefix %q", c.arr.Kind, got, c.name)
		}
	}
}

// TestArrivalBuildErrors: bad kinds and bad parameters fail at Build time
// with config-scoped errors, not at simulation time.
func TestArrivalBuildErrors(t *testing.T) {
	cases := map[string]Arrival{
		"unknown-kind":  {Kind: "quantum"},
		"negative-rate": {Kind: "poisson", Rate: -1},
		"bursty-no-on":  {Kind: "bursty", OffSec: 1},
		"mmpp-mismatch": {Kind: "mmpp", RatesPerSec: []float64{1, 2}, MeanSojournSec: []float64{1}},
		"diurnal-flip":  {Kind: "diurnal", PeriodSec: 10, MinRate: 50, MaxRate: 5},
		"trace-missing": {Kind: "trace", Trace: filepath.Join(t.TempDir(), "nope.csv")},
	}
	for name, arr := range cases {
		if _, err := arr.Build(); err == nil {
			t.Errorf("%s: built %+v", name, arr)
		}
	}
}

// TestNormalizeArrivalRules: slo_ms must be non-negative, and rate_factors
// are only meaningful with an arrival block to scale.
func TestNormalizeArrivalRules(t *testing.T) {
	bad := []*Experiment{
		{Scenario: 1, SLOMS: -1},
		{Scenario: 1, RateFactors: []float64{1, 2}},
	}
	for i, e := range bad {
		if err := e.Normalize(); err == nil {
			t.Errorf("case %d accepted: %+v", i, e)
		}
	}
	ok := &Experiment{Scenario: 1, Arrival: &Arrival{Kind: "poisson"}, RateFactors: []float64{1, 2}, SLOMS: 33.4}
	if err := ok.Normalize(); err != nil {
		t.Errorf("valid open-loop experiment rejected: %v", err)
	}
}

// TestRunConfigsCarryArrival: the arrival block and SLO reach every variant's
// RunConfig, and the Spec gains a rate axis ahead of the task axis.
func TestRunConfigsCarryArrival(t *testing.T) {
	e := &Experiment{
		Scenario:    1,
		TaskCounts:  []int{4, 8},
		Arrival:     &Arrival{Kind: "poisson", Rate: 45},
		SLOMS:       33.4,
		RateFactors: []float64{1, 2},
	}
	cfgs, err := e.RunConfigs()
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range cfgs {
		if cfg.Arrival == nil || cfg.Arrival.Name() != "poisson-45" {
			t.Errorf("%s: arrival = %v", cfg.Name, cfg.Arrival)
		}
		if cfg.SLOMS != 33.4 {
			t.Errorf("%s: slo = %v", cfg.Name, cfg.SLOMS)
		}
	}
	spec, err := e.Spec("json-open-loop")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Axes) != 2 || spec.Axes[0].Kind != exp.AxisRate || spec.Axes[1].Kind != exp.AxisTasks {
		t.Fatalf("axes = %+v, want rate then tasks", spec.Axes)
	}
	c, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * 2 * 2; len(c.Jobs) != want {
		t.Errorf("compiled %d jobs, want %d", len(c.Jobs), want)
	}
}

// TestSaveLoadArrivalRoundTrip: the arrival block survives a save/load cycle
// and still builds the same process.
func TestSaveLoadArrivalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.json")
	e := &Experiment{
		Scenario: 2,
		Arrival:  &Arrival{Kind: "bursty", OnSec: 0.3, OffSec: 0.7, Rate: 50},
		SLOMS:    40,
	}
	if err := e.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Arrival == nil || !reflect.DeepEqual(got.Arrival, e.Arrival) || got.SLOMS != 40 {
		t.Fatalf("round trip lost the arrival block: %+v", got)
	}
	p, err := got.Arrival.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(workload.Bursty); !ok {
		t.Errorf("built %T, want workload.Bursty", p)
	}
}

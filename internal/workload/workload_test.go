package workload

import (
	"testing"

	"sgprs/internal/des"
	"sgprs/internal/dnn"
	"sgprs/internal/gpu"
	"sgprs/internal/rt"
)

func specResNet() TaskSpec {
	return TaskSpec{
		Name:   "resnet18",
		Graph:  dnn.ResNet18(dnn.DefaultCostModel()),
		Stages: 6,
		FPS:    30,
	}
}

func TestIdenticalSpecs(t *testing.T) {
	specs := Identical(5, specResNet(), false)
	if len(specs) != 5 {
		t.Fatalf("got %d specs", len(specs))
	}
	for i, sp := range specs {
		if sp.Offset != 0 {
			t.Errorf("unstaggered spec %d has offset %v", i, sp.Offset)
		}
		if sp.FPS != 30 || sp.Stages != 6 {
			t.Errorf("spec %d lost fields", i)
		}
	}
	if specs[0].Name == specs[1].Name {
		t.Error("specs share a name")
	}
}

func TestIdenticalStaggered(t *testing.T) {
	specs := Identical(4, specResNet(), true)
	period := des.FromSeconds(1.0 / 30)
	for i, sp := range specs {
		want := des.Time(int64(period) * int64(i) / 4)
		if sp.Offset != want {
			t.Errorf("spec %d offset = %v, want %v", i, sp.Offset, want)
		}
	}
}

func TestBuild(t *testing.T) {
	tasks, err := Build(Identical(3, specResNet(), false))
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 3 {
		t.Fatalf("got %d tasks", len(tasks))
	}
	for i, task := range tasks {
		if task.ID != i {
			t.Errorf("task %d has ID %d", i, task.ID)
		}
		if task.NumStages() != 6 {
			t.Errorf("task %d has %d stages", i, task.NumStages())
		}
		if task.Period != des.FromSeconds(1.0/30) {
			t.Errorf("task %d period %v", i, task.Period)
		}
		if task.Deadline != task.Period {
			t.Errorf("implicit deadline expected, got %v", task.Deadline)
		}
		if task.Profiled() {
			t.Error("Build must not profile")
		}
	}
}

func TestBuildDeadlineFactor(t *testing.T) {
	sp := specResNet()
	sp.DeadlineFactor = 0.5
	tasks, err := Build([]TaskSpec{sp})
	if err != nil {
		t.Fatal(err)
	}
	if tasks[0].Deadline != tasks[0].Period/2 {
		t.Errorf("deadline = %v, want half period", tasks[0].Deadline)
	}
}

func TestBuildErrors(t *testing.T) {
	bad := specResNet()
	bad.FPS = 0
	if _, err := Build([]TaskSpec{bad}); err == nil {
		t.Error("zero fps accepted")
	}
	bad = specResNet()
	bad.Graph = nil
	if _, err := Build([]TaskSpec{bad}); err == nil {
		t.Error("nil graph accepted")
	}
	bad = specResNet()
	bad.Stages = 10000
	if _, err := Build([]TaskSpec{bad}); err == nil {
		t.Error("impossible stage count accepted")
	}
	bad = specResNet()
	bad.DeadlineFactor = 1.5
	if _, err := Build([]TaskSpec{bad}); err == nil {
		t.Error("deadline factor > 1 accepted")
	}
}

// genRecorder counts releases without doing any scheduling.
type genRecorder struct{ n int }

func (g *genRecorder) Name() string                                      { return "recorder" }
func (g *genRecorder) Attach(*des.Engine, *gpu.Device, []*rt.Task) error { return nil }
func (g *genRecorder) OnRelease(*rt.Job, des.Time)                       { g.n++ }

func TestGeneratorPeriodicReleases(t *testing.T) {
	tasks, err := Build(Identical(2, specResNet(), false))
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		wcets := make([]des.Time, task.NumStages())
		for i := range wcets {
			wcets[i] = des.Millisecond
		}
		if err := task.SetWCETs(wcets); err != nil {
			t.Fatal(err)
		}
	}
	eng := des.NewEngine()
	rec := &genRecorder{}
	gen := NewGenerator(eng, rec)
	horizon := des.FromSeconds(1)
	gen.Start(tasks, horizon)
	eng.RunUntil(horizon)

	// 30 fps for 1 s from offset 0. The period rounds to 33333333 ns,
	// so release 30 lands at 0.9999... s, just inside the horizon:
	// 31 releases per task.
	if got := len(gen.Jobs()); got != 62 {
		t.Fatalf("released %d jobs, want 62 (2 tasks x 31)", got)
	}
	// Job indices and releases are periodic per task.
	per := map[int]int{}
	for _, j := range gen.Jobs() {
		want := j.Task.Offset.Add(des.Time(int64(j.Task.Period) * int64(j.Index)))
		if j.Release != want {
			t.Fatalf("job %s released at %v, want %v", j, j.Release, want)
		}
		per[j.Task.ID]++
	}
	if per[0] != 31 || per[1] != 31 {
		t.Errorf("per-task releases = %v", per)
	}
	if rec.n != 62 {
		t.Errorf("scheduler saw %d releases, want 62", rec.n)
	}
}

func TestGeneratorStaggeredOffsets(t *testing.T) {
	tasks, err := Build(Identical(3, specResNet(), true))
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		wcets := make([]des.Time, task.NumStages())
		for i := range wcets {
			wcets[i] = des.Millisecond
		}
		task.SetWCETs(wcets)
	}
	eng := des.NewEngine()
	gen := NewGenerator(eng, &genRecorder{})
	gen.Start(tasks, des.FromSeconds(0.1))
	eng.RunUntil(des.FromSeconds(0.1))
	for _, j := range gen.Jobs() {
		if j.Index == 0 && j.Release != j.Task.Offset {
			t.Errorf("job %s first release %v != offset %v", j, j.Release, j.Task.Offset)
		}
	}
}

func TestReleaseJitterShiftsReleases(t *testing.T) {
	sp := specResNet()
	sp.ReleaseJitter = des.FromMillis(5)
	tasks, err := Build([]TaskSpec{sp})
	if err != nil {
		t.Fatal(err)
	}
	wcets := make([]des.Time, tasks[0].NumStages())
	for i := range wcets {
		wcets[i] = des.Millisecond
	}
	tasks[0].SetWCETs(wcets)
	eng := des.NewEngine()
	gen := NewGeneratorSeeded(eng, &genRecorder{}, 7)
	gen.Start(tasks, des.FromSeconds(1))
	eng.RunUntil(des.FromSeconds(1))

	period := tasks[0].Period
	jittered := 0
	for _, j := range gen.Jobs() {
		nominal := des.Time(int64(period) * int64(j.Index))
		off := j.Release - nominal
		if off < 0 || off >= des.FromMillis(5) {
			t.Fatalf("job %d jitter %v outside [0, 5ms)", j.Index, off)
		}
		if off > 0 {
			jittered++
		}
	}
	if jittered == 0 {
		t.Error("no release was actually jittered")
	}
}

func TestWorkVariationStampsJobs(t *testing.T) {
	sp := specResNet()
	sp.WorkVariation = 0.2
	tasks, err := Build([]TaskSpec{sp})
	if err != nil {
		t.Fatal(err)
	}
	wcets := make([]des.Time, tasks[0].NumStages())
	for i := range wcets {
		wcets[i] = des.Millisecond
	}
	tasks[0].SetWCETs(wcets)
	eng := des.NewEngine()
	gen := NewGeneratorSeeded(eng, &genRecorder{}, 7)
	gen.Start(tasks, des.FromSeconds(1))
	eng.RunUntil(des.FromSeconds(1))

	varied := 0
	for _, j := range gen.Jobs() {
		if j.WorkScale < 0.5 || j.WorkScale > 1.6+1e-9 {
			t.Fatalf("work scale %v outside clamp", j.WorkScale)
		}
		if j.WorkScale != 1 {
			varied++
		}
	}
	if varied == 0 {
		t.Error("no job received a varied work scale")
	}
}

// TestIdenticalRejectsInvalidFPSLater: Identical must not derive Inf/NaN
// periods from a non-positive FPS (the old 1/FPS-before-validation bug);
// the invalid spec flows through for Build to reject cleanly.
func TestIdenticalRejectsInvalidFPSLater(t *testing.T) {
	for _, fps := range []float64{0, -30} {
		sp := specResNet()
		sp.FPS = fps
		specs := Identical(3, sp, true) // stagger forces the period path
		for i, got := range specs {
			if got.Offset != 0 {
				t.Errorf("fps=%v: spec %d has offset %v from an invalid period", fps, i, got.Offset)
			}
		}
		if _, err := Build(specs); err == nil {
			t.Errorf("fps=%v: Build accepted invalid rate", fps)
		}
	}
}

// TestJobsReturnsCopy: mutating the returned slice must not corrupt the
// generator's internal record.
func TestJobsReturnsCopy(t *testing.T) {
	tasks, err := Build(Identical(1, specResNet(), false))
	if err != nil {
		t.Fatal(err)
	}
	wcets := make([]des.Time, tasks[0].NumStages())
	for i := range wcets {
		wcets[i] = des.Millisecond
	}
	tasks[0].SetWCETs(wcets)
	eng := des.NewEngine()
	gen := NewGenerator(eng, &genRecorder{})
	gen.Start(tasks, des.FromSeconds(0.2))
	eng.RunUntil(des.FromSeconds(0.2))

	jobs := gen.Jobs()
	if len(jobs) == 0 {
		t.Fatal("no jobs released")
	}
	jobs[0] = nil
	if again := gen.Jobs(); again[0] == nil {
		t.Error("Jobs aliases the generator's internal slice")
	}
}

// sinkRecorder counts the streamed lifecycle.
type sinkRecorder struct {
	released, done, discarded int
}

func (s *sinkRecorder) JobReleased(j *rt.Job, now des.Time) { s.released++ }
func (s *sinkRecorder) JobDone(j *rt.Job, now des.Time)     { s.done++ }
func (s *sinkRecorder) JobDiscarded(j *rt.Job, now des.Time) {
	s.discarded++
}

// completingSched finishes every job's stages at release time — the
// simplest scheduler that drives the full streamed lifecycle.
type completingSched struct{}

func (completingSched) Name() string                                      { return "completing" }
func (completingSched) Attach(*des.Engine, *gpu.Device, []*rt.Task) error { return nil }
func (completingSched) OnRelease(j *rt.Job, now des.Time) {
	for _, st := range j.Stages {
		st.MarkFinished(now)
	}
}

// TestGeneratorStreamsAndRecycles: with a sink and pool attached the
// generator retains nothing, streams every release and completion, and
// recycles jobs through a pool bounded by the in-flight count (1 here —
// each job completes before the next release).
func TestGeneratorStreamsAndRecycles(t *testing.T) {
	tasks, err := Build(Identical(2, specResNet(), false))
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		wcets := make([]des.Time, task.NumStages())
		for i := range wcets {
			wcets[i] = des.Millisecond
		}
		task.SetWCETs(wcets)
	}
	eng := des.NewEngine()
	gen := NewGenerator(eng, completingSched{})
	sink := &sinkRecorder{}
	var pool rt.JobPool
	gen.SetSink(sink)
	gen.UsePool(&pool)
	horizon := des.FromSeconds(1)
	gen.Start(tasks, horizon)
	eng.RunUntil(horizon)

	if sink.released != 62 || sink.done != 62 || sink.discarded != 0 {
		t.Errorf("streamed %d released / %d done / %d discarded, want 62/62/0",
			sink.released, sink.done, sink.discarded)
	}
	if got := gen.Jobs(); got != nil {
		t.Errorf("streaming generator retained %d jobs", len(got))
	}
	// Every job completed synchronously at release, so the pool never
	// holds more than the two structs (one per task) in steady state.
	if pool.Len() > 2 {
		t.Errorf("pool grew to %d jobs; want ≤ 2 (O(in-flight), not O(released))", pool.Len())
	}
}

func TestBuildRejectsBadJitter(t *testing.T) {
	sp := specResNet()
	sp.ReleaseJitter = des.FromSeconds(1) // ≥ period
	if _, err := Build([]TaskSpec{sp}); err == nil {
		t.Error("jitter >= period accepted")
	}
	sp = specResNet()
	sp.WorkVariation = -1
	if _, err := Build([]TaskSpec{sp}); err == nil {
		t.Error("negative variation accepted")
	}
}

package workload

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sgprs/internal/des"
)

// maxTraceSec bounds a parseable release instant: seconds beyond it would
// overflow the nanosecond clock in des.FromSeconds, and float-to-int
// conversion of an out-of-range value is platform-defined — a corrupt row
// could silently become a huge positive instant on one architecture and a
// negative one on another. ~292 simulated years is not a schedulable time.
const maxTraceSec = float64(math.MaxInt64) / float64(des.Second)

// TraceData is a parsed release trace: one row per recorded arrival, in
// non-decreasing time order. Tasks, when present, carries the recorded
// per-row task id (demultiplexed onto the simulated task set modulo its
// size); without it, rows are dealt round-robin. TraceData is immutable
// after parsing and safe to share across concurrent runs.
type TraceData struct {
	// Name labels the trace in experiment labels ("trace:azure-1h").
	Name string
	// Times are the recorded release instants, sorted non-decreasing.
	Times []des.Time
	// Tasks are the recorded task ids, parallel to Times; empty means
	// round-robin assignment.
	Tasks []int
}

// validate checks the invariants the parsers establish — callers that
// build TraceData by hand get the same errors through Trace.Validate.
func (d *TraceData) validate() error {
	if len(d.Times) == 0 {
		return fmt.Errorf("workload: trace %q has no arrivals", d.Name)
	}
	if len(d.Tasks) > 0 && len(d.Tasks) != len(d.Times) {
		return fmt.Errorf("workload: trace %q has %d task ids for %d arrivals", d.Name, len(d.Tasks), len(d.Times))
	}
	for i, t := range d.Times {
		if t < 0 {
			return fmt.Errorf("workload: trace %q row %d: negative time %v", d.Name, i, t)
		}
		if i > 0 && t < d.Times[i-1] {
			return fmt.Errorf("workload: trace %q row %d: time %v before predecessor %v", d.Name, i, t, d.Times[i-1])
		}
	}
	for i, id := range d.Tasks {
		if id < 0 {
			return fmt.Errorf("workload: trace %q row %d: negative task id %d", d.Name, i, id)
		}
	}
	return nil
}

// LoadTrace reads a trace file, dispatching on extension: ".csv" to
// ParseTraceCSV, ".json" to ParseTraceJSON. The trace name is the file's
// base name without extension.
func LoadTrace(path string) (*TraceData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".csv":
		return ParseTraceCSV(name, f)
	case ".json":
		return ParseTraceJSON(name, f)
	default:
		return nil, fmt.Errorf("workload: trace %q: unsupported extension %q (want .csv or .json)", path, ext)
	}
}

// ParseTraceCSV parses the CSV trace format: a header line naming the
// columns ("time_s" required, "task" optional), then one row per arrival
// with the release instant in seconds. Rows must be sorted by time.
//
//	time_s,task
//	0.000,0
//	0.013,1
func ParseTraceCSV(name string, r io.Reader) (*TraceData, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: trace %q: reading header: %w", name, err)
	}
	timeCol, taskCol := -1, -1
	for i, h := range header {
		switch strings.TrimSpace(strings.ToLower(h)) {
		case "time_s", "time":
			timeCol = i
		case "task", "task_id":
			taskCol = i
		}
	}
	if timeCol < 0 {
		return nil, fmt.Errorf("workload: trace %q: header %v has no time_s column", name, header)
	}
	d := &TraceData{Name: name}
	for row := 1; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace %q row %d: %w", name, row, err)
		}
		sec, err := strconv.ParseFloat(strings.TrimSpace(rec[timeCol]), 64)
		if err != nil || !finite(sec) || sec < 0 || sec > maxTraceSec {
			return nil, fmt.Errorf("workload: trace %q row %d: bad time %q", name, row, rec[timeCol])
		}
		d.Times = append(d.Times, des.FromSeconds(sec))
		if taskCol >= 0 {
			id, err := strconv.Atoi(strings.TrimSpace(rec[taskCol]))
			if err != nil {
				return nil, fmt.Errorf("workload: trace %q row %d: bad task id %q", name, row, rec[taskCol])
			}
			d.Tasks = append(d.Tasks, id)
		}
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// traceJSON is the JSON trace schema: release instants in seconds plus an
// optional parallel task-id list.
type traceJSON struct {
	Name   string    `json:"name"`
	TimesS []float64 `json:"times_s"`
	Tasks  []int     `json:"tasks"`
}

// ParseTraceJSON parses the JSON trace format:
//
//	{"name": "azure-1h", "times_s": [0.0, 0.013, ...], "tasks": [0, 1, ...]}
//
// "tasks" may be omitted for round-robin assignment; a "name" in the file
// overrides the caller's.
func ParseTraceJSON(name string, r io.Reader) (*TraceData, error) {
	var tj traceJSON
	if err := json.NewDecoder(r).Decode(&tj); err != nil {
		return nil, fmt.Errorf("workload: trace %q: %w", name, err)
	}
	if tj.Name != "" {
		name = tj.Name
	}
	d := &TraceData{Name: name, Tasks: tj.Tasks}
	for i, sec := range tj.TimesS {
		if !finite(sec) || sec < 0 || sec > maxTraceSec {
			return nil, fmt.Errorf("workload: trace %q row %d: bad time %v", name, i, sec)
		}
		d.Times = append(d.Times, des.FromSeconds(sec))
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// SyntheticTrace generates a deterministic Poisson trace — ratePerSec
// arrivals per second per task over durationSec seconds across the given
// task count — using the house RNG fork pattern (one stream per task, so
// the trace is a pure function of the arguments). The trace-replay builtin
// and the determinism tests use it in place of a checked-in recording.
func SyntheticTrace(name string, seed uint64, ratePerSec, durationSec float64, tasks int) *TraceData {
	if !(ratePerSec > 0) || !(durationSec > 0) || tasks <= 0 {
		panic(fmt.Sprintf("workload: invalid synthetic trace rate=%v duration=%v tasks=%d",
			ratePerSec, durationSec, tasks))
	}
	type row struct {
		at   des.Time
		task int
	}
	var rows []row
	root := des.NewRNG(seed)
	horizon := des.FromSeconds(durationSec)
	meanNS := float64(des.Second) / ratePerSec
	for task := 0; task < tasks; task++ {
		rng := root.Fork(uint64(task) + 1)
		at := des.Time(0)
		for {
			at = at.Add(des.Time(rng.Exp(meanNS) + 0.5))
			if at >= horizon {
				break
			}
			rows = append(rows, row{at: at, task: task})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].at != rows[j].at {
			return rows[i].at < rows[j].at
		}
		return rows[i].task < rows[j].task
	})
	d := &TraceData{Name: name}
	for _, r := range rows {
		d.Times = append(d.Times, r.at)
		d.Tasks = append(d.Tasks, r.task)
	}
	return d
}

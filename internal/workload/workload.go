// Package workload builds periodic task sets and drives job releases.
//
// The paper's evaluation uses identical periodic ResNet18 tasks at 30 fps
// with explicit deadlines, six stages each; this package generalises that to
// arbitrary mixes of networks, rates, stage counts, and release offsets.
package workload

import (
	"fmt"
	"math"

	"sgprs/internal/des"
	"sgprs/internal/dnn"
	"sgprs/internal/rt"
	"sgprs/internal/sched"
)

// TaskSpec describes one periodic task to generate.
type TaskSpec struct {
	Name   string
	Graph  *dnn.Graph
	Stages int
	FPS    float64
	// DeadlineFactor scales the relative deadline as a fraction of the
	// period; 1.0 (implicit deadline) when zero.
	DeadlineFactor float64
	Offset         des.Time
	// ReleaseJitter bounds a uniform random delay added to every release
	// (sporadic arrivals with a minimum inter-arrival of Period).
	ReleaseJitter des.Time
	// WorkVariation is the relative standard deviation of per-job
	// execution demand around the profiled nominal (truncated normal,
	// clamped to [1−2σ, 1+3σ] with a floor of 0.5). Zero means every job
	// costs exactly its nominal work; positive values model WCET
	// overruns the offline profile did not capture.
	WorkVariation float64
}

// Identical returns n copies of one spec, optionally staggering release
// offsets evenly across the period (stagger=false reproduces the paper's
// synchronous releases — the worst case for contention).
//
// A non-positive FPS cannot yield a period, so staggered offsets are only
// derived when the rate is valid; the invalid spec itself flows through
// unchanged for Build to reject with a proper error (rather than an Inf/NaN
// period corrupting the offsets here, before validation ever runs).
func Identical(n int, spec TaskSpec, stagger bool) []TaskSpec {
	return Replicate(Options{Count: n, Spec: spec, Stagger: stagger})
}

// Options names the parameters of Replicate — the struct-constructor form
// of Identical, for call sites where positional (n, spec, stagger) reads
// poorly or will grow more knobs.
type Options struct {
	// Count is the number of task copies.
	Count int
	// Spec is the task template each copy starts from.
	Spec TaskSpec
	// Stagger spreads release offsets evenly across the period;
	// false reproduces the paper's synchronous releases.
	Stagger bool
}

// Replicate expands the options into Count task specs; Identical is a thin
// positional wrapper over it, and both produce identical output.
func Replicate(o Options) []TaskSpec {
	out := make([]TaskSpec, o.Count)
	for i := range out {
		out[i] = o.Spec
		out[i].Name = fmt.Sprintf("%s-%d", o.Spec.Name, i)
	}
	if o.Stagger && o.Spec.FPS > 0 {
		period := des.FromSeconds(1 / o.Spec.FPS)
		for i := range out {
			out[i].Offset = des.Time(int64(period) * int64(i) / int64(o.Count))
		}
	}
	return out
}

// Build materialises rt.Tasks from specs: partitions each graph into its
// stage chain and wires periods, deadlines, and offsets. WCETs remain unset;
// run the profiler before attaching a scheduler.
//
// Specs sharing a graph and stage count — the common Identical case —
// share one partition: the balanced-partition DP runs once per distinct
// (graph, stages) pair and the resulting stage chain is handed to every
// task. Stages are immutable after Partition (schedulers only read Shares
// and WorkMS), so the sharing is invisible to results.
func Build(specs []TaskSpec) ([]*rt.Task, error) {
	type partKey struct {
		graph  *dnn.Graph
		stages int
	}
	partitions := map[partKey][]*dnn.Stage{}
	tasks := make([]*rt.Task, 0, len(specs))
	for i, sp := range specs {
		// NaN compares false against everything, so "fps <= 0" alone
		// would wave NaN through into a NaN period; test positivity in
		// the form that fails for NaN and reject Inf alongside it.
		if !(sp.FPS > 0) || math.IsInf(sp.FPS, 0) {
			return nil, fmt.Errorf("workload: task %q fps %v must be positive and finite", sp.Name, sp.FPS)
		}
		if sp.Graph == nil {
			return nil, fmt.Errorf("workload: task %q has no graph", sp.Name)
		}
		key := partKey{graph: sp.Graph, stages: sp.Stages}
		stages, ok := partitions[key]
		if !ok {
			var err error
			stages, err = dnn.Partition(sp.Graph, sp.Stages)
			if err != nil {
				return nil, fmt.Errorf("workload: task %q: %w", sp.Name, err)
			}
			partitions[key] = stages
		}
		period := des.FromSeconds(1 / sp.FPS)
		df := sp.DeadlineFactor
		if df == 0 {
			df = 1
		}
		if !(df > 0 && df <= 1) {
			return nil, fmt.Errorf("workload: task %q deadline factor %v must be in (0,1]", sp.Name, df)
		}
		deadline := des.Time(float64(period) * df)
		t, err := rt.NewTask(i, sp.Name, sp.Graph, stages, period, deadline, sp.Offset)
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		if sp.ReleaseJitter < 0 || !(sp.WorkVariation >= 0) || math.IsInf(sp.WorkVariation, 0) {
			return nil, fmt.Errorf("workload: task %q jitter/variation must be non-negative and finite", sp.Name)
		}
		if sp.ReleaseJitter >= period {
			return nil, fmt.Errorf("workload: task %q release jitter %v must stay below the period %v", sp.Name, sp.ReleaseJitter, period)
		}
		t.ReleaseJitter = sp.ReleaseJitter
		t.WorkVariation = sp.WorkVariation
		tasks = append(tasks, t)
	}
	return tasks, nil
}

// JobSink consumes the streaming job lifecycle: one JobReleased per job, in
// release order, followed by exactly one of the rt.JobWatcher callbacks
// (JobDone or JobDiscarded). metrics.Collector is the canonical sink.
type JobSink interface {
	JobReleased(j *rt.Job, now des.Time)
	rt.JobWatcher
}

// Generator schedules periodic releases on an engine. Release jitter and
// per-job work variation draw from a seeded stream forked per task, so
// adding a task never perturbs another task's draws.
//
// By default every released job is retained for a post-hoc metrics.Evaluate
// scan — the reference batch path. Attaching a JobSink (SetSink) switches
// the generator to streaming delivery, and attaching an rt.JobPool (UsePool)
// recycles each job the moment its lifecycle ends; in either mode nothing
// is retained and live memory stays O(in-flight jobs).
type Generator struct {
	eng     *des.Engine
	sched   sched.Scheduler
	rng     *des.RNG
	jobs    []*rt.Job
	sink    JobSink
	pool    *rt.JobPool
	arrival Arrival
	chains  []*releaseChain
}

// NewGenerator wires a generator to the engine and scheduler. The seed feeds
// jitter and work-variation draws; generators for deterministic workloads
// may pass anything.
func NewGenerator(eng *des.Engine, s sched.Scheduler) *Generator {
	return NewGeneratorSeeded(eng, s, 1)
}

// NewGeneratorSeeded is NewGenerator with an explicit random seed.
func NewGeneratorSeeded(eng *des.Engine, s sched.Scheduler, seed uint64) *Generator {
	return &Generator{eng: eng, sched: s, rng: des.NewRNG(seed).Fork(0x30B5)}
}

// SetSink streams the job lifecycle to s instead of retaining jobs: Jobs
// returns nothing once a sink is attached. Must be called before Start.
func (g *Generator) SetSink(s JobSink) { g.sink = s }

// UsePool recycles every job through p as soon as it completes or is
// discarded (and stops retaining jobs, like SetSink). Must be called before
// Start.
func (g *Generator) UsePool(p *rt.JobPool) { g.pool = p }

// SetArrival replaces the default periodic release model with an arrival
// process (nil restores the default). Each task gets its own process,
// started with the task's RNG stream — the same stream work variation
// draws from, which is what lets Periodic{} reproduce the default path
// bit for bit. Must be called before Start.
func (g *Generator) SetArrival(a Arrival) { g.arrival = a }

// Jobs lists every job released so far, in release order, as a fresh slice
// the caller may keep or mutate. It is empty when a sink or pool is
// attached — streamed jobs are not retained (and pooled ones get recycled).
func (g *Generator) Jobs() []*rt.Job {
	if len(g.jobs) == 0 {
		return nil
	}
	return append([]*rt.Job(nil), g.jobs...)
}

// JobDone implements rt.JobWatcher: it forwards the completion to the sink,
// then hands the job to the pool. Ordering matters — the sink must record
// the job before the pool may reuse its struct.
func (g *Generator) JobDone(j *rt.Job, now des.Time) {
	if g.sink != nil {
		g.sink.JobDone(j, now)
	}
	if g.pool != nil {
		g.pool.Put(j)
	}
}

// JobDiscarded implements rt.JobWatcher for abandoned (dropped/replaced)
// frames; see JobDone.
func (g *Generator) JobDiscarded(j *rt.Job, now des.Time) {
	if g.sink != nil {
		g.sink.JobDiscarded(j, now)
	}
	if g.pool != nil {
		g.pool.Put(j)
	}
}

// Start schedules all releases of the task set up to the horizon. Releases
// exactly at the horizon are excluded (their deadline would extend past the
// measured window). With no arrival process attached, tasks release
// periodically: tasks with ReleaseJitter release sporadically (a uniform
// delay in [0, jitter) on top of the periodic instant). With SetArrival,
// each task's process emits the release instants instead. Either way,
// tasks with WorkVariation stamp each job with a truncated-normal work
// scale.
func (g *Generator) Start(tasks []*rt.Task, horizon des.Time) {
	for _, t := range tasks {
		// One release is in flight per task at any instant (the next is
		// scheduled from the current one's callback), so a single mutable
		// chain struct serves the task's whole release sequence; the events
		// themselves are detached and recycle through the engine's pool. The
		// chain is also the unit the fast-forward layer warps and
		// fingerprints (see SteadyPeriod, Warp, and DESIGN.md §12).
		c := &releaseChain{
			g:       g,
			t:       t,
			rng:     g.rng.Fork(uint64(t.ID) + 1),
			label:   "release:" + t.Name,
			horizon: horizon,
		}
		if g.arrival != nil {
			c.proc = g.arrival.Start(ArrivalTask{
				Index:  t.ID,
				Count:  len(tasks),
				Period: t.Period,
				Offset: t.Offset,
				Jitter: t.ReleaseJitter,
			}, c.rng)
		}
		g.chains = append(g.chains, c)
		c.scheduleNext()
	}
}

// releaseChain is the mutable state of one task's release sequence: the next
// frame index, the previous emission (the monotonicity clamp for arrival
// processes), and the process itself when one is attached.
type releaseChain struct {
	g       *Generator
	t       *rt.Task
	rng     *des.RNG
	label   string
	proc    ArrivalProcess
	idx     int
	last    des.Time
	horizon des.Time
}

// fireChain releases one job and schedules the task's next release. The
// horizon guard is unreachable during plain simulation (scheduleNext never
// queues an event at or past the horizon); it exists for warped pending
// events — a release that lands at or past the horizon after a fast-forward
// warp must not fire, exactly as full simulation would never have scheduled
// it.
func fireChain(now des.Time, arg any) {
	c := arg.(*releaseChain)
	if now >= c.horizon {
		return
	}
	g, t := c.g, c.t
	var job *rt.Job
	if g.pool != nil {
		job = g.pool.Get(t, c.idx, now)
	} else {
		job = t.NewJob(c.idx, now)
	}
	if t.WorkVariation > 0 {
		job.WorkScale = c.rng.TruncNormal(
			1, t.WorkVariation,
			math.Max(0.5, 1-2*t.WorkVariation),
			1+3*t.WorkVariation)
	}
	if g.sink != nil || g.pool != nil {
		job.Watcher = g
	} else {
		g.jobs = append(g.jobs, job)
	}
	if g.sink != nil {
		g.sink.JobReleased(job, now)
	}
	g.sched.OnRelease(job, now)
	c.idx++
	c.scheduleNext()
}

func (c *releaseChain) scheduleNext() {
	var at des.Time
	if c.proc != nil {
		next, ok := c.proc.Next()
		if !ok {
			return
		}
		// Processes promise non-decreasing instants; clamp instead of
		// letting a marginally early emission (a rounding artifact) trip
		// the engine's no-past-events panic.
		if next < c.last {
			next = c.last
		}
		at, c.last = next, next
	} else {
		at = c.t.Offset.Add(des.Time(int64(c.t.Period) * int64(c.idx)))
		if c.t.ReleaseJitter > 0 {
			at = at.Add(des.Time(c.rng.Float64() * float64(c.t.ReleaseJitter)))
		}
		// last is the monotonicity clamp of the process path and is never
		// read here, but tracking it keeps the chain's state a pure
		// function of phase either way — the fast-forward fingerprint
		// encodes it relative to the boundary.
		c.last = at
	}
	if at >= c.horizon {
		return
	}
	c.g.eng.AfterArg(at-c.g.eng.Now(), c.label, fireChain, c)
}

// SteadyPeriod reports whether every release chain is deterministic and
// periodic with one shared spacing — the workload half of fast-forward
// eligibility: zero release jitter, zero work variation, and either the
// legacy periodic path or a Periodic arrival process with no jitter. Any
// stochastic process (Poisson, bursty, MMPP, diurnal) or finite trace makes
// the run ineligible, as does a mix of spacings. Must be called after Start.
func (g *Generator) SteadyPeriod() (des.Time, bool) {
	if len(g.chains) == 0 {
		return 0, false
	}
	var period des.Time
	for _, c := range g.chains {
		if c.t.ReleaseJitter != 0 || c.t.WorkVariation != 0 {
			return 0, false
		}
		p := c.t.Period
		if c.proc != nil {
			pp, ok := c.proc.(*periodicProcess)
			if !ok || pp.jitter != 0 {
				return 0, false
			}
			p = pp.period
		}
		if period == 0 {
			period = p
		} else if p != period {
			return 0, false
		}
	}
	return period, period > 0
}

// Warp translates every release chain forward by delta = frames · period:
// frame indices advance by frames (so future releases and job indices match
// what full simulation of the skipped interval would have produced — the
// k-th release instant is an absolute function of the index) and the
// monotonicity clamp shifts with the clock. Only valid for chains
// SteadyPeriod accepted; their RNG streams are never consumed, so no draws
// need replaying.
func (g *Generator) Warp(delta des.Time, frames int) {
	for _, c := range g.chains {
		c.idx += frames
		c.last += delta
		if pp, ok := c.proc.(*periodicProcess); ok {
			pp.idx += frames
		}
	}
}

// ForEachChain reports each task's ID, next frame index, and previous
// emission instant. The index is the base the fast-forward fingerprint
// encodes pending job indices relative to (two boundaries one cycle apart
// must encode identically, and absolute frame indices grow by the cycle
// length); the last emission is the monotonicity clamp, dynamic state the
// fingerprint encodes relative to the boundary.
func (g *Generator) ForEachChain(f func(taskID, nextIdx int, last des.Time)) {
	for _, c := range g.chains {
		f(c.t.ID, c.idx, c.last)
	}
}

// EventTag resolves a pending release event's identity for the engine
// fingerprint: chains of replicated tasks share one label ("release:" plus
// the task name), so the tag distinguishes them by task ID.
func (g *Generator) EventTag(arg any) (uint64, bool) {
	if c, ok := arg.(*releaseChain); ok && c.g == g {
		return uint64(c.t.ID) + 1, true
	}
	return 0, false
}

package workload

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"sgprs/internal/des"
)

// arrTask is the canonical 30 fps task view the arrival tests use.
func arrTask(index, count int) ArrivalTask {
	return ArrivalTask{
		Index:  index,
		Count:  count,
		Period: des.FromSeconds(1.0 / 30),
	}
}

// drain collects up to n instants from a process.
func drain(p ArrivalProcess, n int) []des.Time {
	var out []des.Time
	for len(out) < n {
		at, ok := p.Next()
		if !ok {
			break
		}
		out = append(out, at)
	}
	return out
}

// TestArrivalMonotone: every process emits non-decreasing instants — the
// contract the generator's release chain relies on.
func TestArrivalMonotone(t *testing.T) {
	procs := []Arrival{
		Periodic{},
		Periodic{Rate: 1.7},
		Poisson{},
		Poisson{Rate: 120},
		Bursty{OnSec: 0.5, OffSec: 1.5},
		Bursty{OnSec: 1, OffSec: 0, Rate: 90},
		MMPP{RatesPerSec: []float64{0, 200}, MeanSojournSec: []float64{0.2, 0.1}},
		Diurnal{PeriodSec: 2},
		Diurnal{PeriodSec: 1, MinRate: 10, MaxRate: 100},
		Trace{Data: SyntheticTrace("mono", 3, 80, 2, 3)},
		Poisson{}.Scale(1.5),
	}
	for _, a := range procs {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: validate: %v", a.Name(), err)
			continue
		}
		rng := des.NewRNG(11).Fork(1)
		p := a.Start(arrTask(0, 3), rng)
		times := drain(p, 500)
		if len(times) == 0 {
			t.Errorf("%s: no arrivals", a.Name())
			continue
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				t.Errorf("%s: instant %d (%v) before %v", a.Name(), i, times[i], times[i-1])
				break
			}
		}
	}
}

// TestArrivalValidateRejects: malformed parameters — including NaN and Inf,
// which naive sign comparisons wave through — fail validation.
func TestArrivalValidateRejects(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	bad := []Arrival{
		Periodic{Rate: -1},
		Periodic{Rate: nan},
		Periodic{Rate: inf},
		Poisson{Rate: -5},
		Poisson{Rate: nan},
		Bursty{OnSec: 0, OffSec: 1},
		Bursty{OnSec: nan, OffSec: 1},
		Bursty{OnSec: 1, OffSec: -1},
		Bursty{OnSec: 1, OffSec: 1, Rate: inf},
		MMPP{},
		MMPP{RatesPerSec: []float64{10}, MeanSojournSec: []float64{1, 2}},
		MMPP{RatesPerSec: []float64{0, 0}, MeanSojournSec: []float64{1, 1}},
		MMPP{RatesPerSec: []float64{10}, MeanSojournSec: []float64{0}},
		MMPP{RatesPerSec: []float64{nan}, MeanSojournSec: []float64{1}},
		Diurnal{PeriodSec: 0},
		Diurnal{PeriodSec: inf},
		Diurnal{PeriodSec: 1, MinRate: 50, MaxRate: 10},
		Diurnal{PeriodSec: 1, MinRate: -1},
		Trace{},
		Trace{Data: &TraceData{Name: "empty"}},
		Trace{Data: SyntheticTrace("x", 1, 10, 1, 1), Speed: -2},
		Poisson{}.Scale(0),
		Poisson{}.Scale(nan),
	}
	for _, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("%#v: invalid parameters accepted", a)
		}
	}
}

// TestArrivalScale: explicit rates scale in place (stable names); natural-
// rate anchors defer to Start and then produce the identical stream an
// explicitly scaled process would.
func TestArrivalScale(t *testing.T) {
	if name := (Poisson{Rate: 2}).Scale(2).Name(); name != "poisson-4" {
		t.Errorf("explicit scale name = %q", name)
	}
	if name := (Poisson{}).Scale(2).Name(); name != "poisson-2x" {
		t.Errorf("deferred scale name = %q", name)
	}

	// A 0.5 s period keeps the natural rate (2/s) exact in float64, so the
	// deferred-scale stream must equal the explicit-rate stream bit for bit.
	task := ArrivalTask{Index: 0, Count: 1, Period: des.FromSeconds(0.5)}
	want := drain(Poisson{Rate: 4}.Start(task, des.NewRNG(5).Fork(1)), 100)
	got := drain(Poisson{}.Scale(2).Start(task, des.NewRNG(5).Fork(1)), 100)
	if !reflect.DeepEqual(want, got) {
		t.Error("scaled natural-rate Poisson differs from explicit double rate")
	}

	// Scale composes: 4x then 2x = 8x.
	want = drain(Poisson{Rate: 16}.Start(task, des.NewRNG(5).Fork(1)), 100)
	got = drain(Poisson{}.Scale(4).Scale(2).Start(task, des.NewRNG(5).Fork(1)), 100)
	if !reflect.DeepEqual(want, got) {
		t.Error("composed scale differs from direct 8x rate")
	}
}

// TestPeriodicRateSpeedsReleases: Periodic{Rate: 2} halves the inter-release
// gap while Rate 0 and 1 keep the task period.
func TestPeriodicRateSpeedsReleases(t *testing.T) {
	task := arrTask(0, 1)
	base := drain(Periodic{}.Start(task, des.NewRNG(1).Fork(1)), 10)
	one := drain(Periodic{Rate: 1}.Start(task, des.NewRNG(1).Fork(1)), 10)
	fast := drain(Periodic{Rate: 2}.Start(task, des.NewRNG(1).Fork(1)), 10)
	if !reflect.DeepEqual(base, one) {
		t.Error("Rate 1 differs from Rate 0")
	}
	// The halved period rounds to the nearest ns, so two fast steps may
	// land 1-2 ns off one base step — equality up to that rounding.
	if diff := int64(fast[2]) - int64(base[1]); diff < -2 || diff > 2 {
		t.Errorf("Rate 2 instant 2 = %v, want ≈ base instant 1 = %v", fast[2], base[1])
	}
}

// TestTraceDemux: recorded task ids route rows modulo the simulated task
// count; without ids, rows deal round-robin by position.
func TestTraceDemux(t *testing.T) {
	data := &TraceData{
		Name:  "demux",
		Times: []des.Time{10, 20, 30, 40, 50, 60},
		Tasks: []int{0, 1, 0, 3, 2, 5},
	}
	a := Trace{Data: data}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Count 2: task 0 owns even recorded ids (0, 0, 2), task 1 odd (1, 3, 5).
	got0 := drain(a.Start(ArrivalTask{Index: 0, Count: 2}, nil), 10)
	got1 := drain(a.Start(ArrivalTask{Index: 1, Count: 2}, nil), 10)
	if want := []des.Time{10, 30, 50}; !reflect.DeepEqual(got0, want) {
		t.Errorf("task 0 rows = %v, want %v", got0, want)
	}
	if want := []des.Time{20, 40, 60}; !reflect.DeepEqual(got1, want) {
		t.Errorf("task 1 rows = %v, want %v", got1, want)
	}

	// No ids: round-robin by row index.
	rr := Trace{Data: &TraceData{Name: "rr", Times: []des.Time{10, 20, 30, 40}}}
	if got := drain(rr.Start(ArrivalTask{Index: 1, Count: 2}, nil), 10); !reflect.DeepEqual(got, []des.Time{20, 40}) {
		t.Errorf("round-robin rows = %v", got)
	}

	// Speed 2 halves the replay timestamps.
	fast := drain(Trace{Data: data, Speed: 2}.Start(ArrivalTask{Index: 0, Count: 1}, nil), 10)
	if fast[0] != 5 || fast[len(fast)-1] != 30 {
		t.Errorf("speed-2 rows = %v", fast)
	}
}

// TestParseTraceCSV covers the header contract, the optional task column,
// and the malformed-input rejections.
func TestParseTraceCSV(t *testing.T) {
	d, err := ParseTraceCSV("ok", strings.NewReader("time_s,task\n0.0,0\n0.5,1\n1.0,0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Times) != 3 || d.Times[1] != des.FromSeconds(0.5) || d.Tasks[1] != 1 {
		t.Errorf("parsed trace = %+v", d)
	}

	if _, err := ParseTraceCSV("t", strings.NewReader("time\n1.0\n2.5\n")); err != nil {
		t.Errorf("time-only header rejected: %v", err)
	}

	for name, body := range map[string]string{
		"no-time-column": "task\n1\n",
		"unsorted":       "time_s\n2.0\n1.0\n",
		"negative":       "time_s\n-1.0\n",
		"bad-float":      "time_s\nxyz\n",
		"empty":          "time_s\n",
	} {
		if _, err := ParseTraceCSV(name, strings.NewReader(body)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestParseTraceJSON covers the JSON schema and its name override.
func TestParseTraceJSON(t *testing.T) {
	d, err := ParseTraceJSON("fallback", strings.NewReader(
		`{"name": "azure", "times_s": [0.0, 0.25, 0.5], "tasks": [0, 1, 0]}`))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "azure" || len(d.Times) != 3 || d.Tasks[2] != 0 {
		t.Errorf("parsed trace = %+v", d)
	}
	if _, err := ParseTraceJSON("bad", strings.NewReader(`{"times_s": [1.0, 0.5]}`)); err == nil {
		t.Error("unsorted JSON trace accepted")
	}
	if _, err := ParseTraceJSON("bad", strings.NewReader(`{not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

// TestSyntheticTraceDeterministic: the trace is a pure function of its
// arguments, sorted, and routes every row to a valid task.
func TestSyntheticTraceDeterministic(t *testing.T) {
	a := SyntheticTrace("s", 7, 60, 2, 4)
	b := SyntheticTrace("s", 7, 60, 2, 4)
	if !reflect.DeepEqual(a, b) {
		t.Error("identical arguments produced different traces")
	}
	if err := a.validate(); err != nil {
		t.Fatal(err)
	}
	for i, id := range a.Tasks {
		if id < 0 || id >= 4 {
			t.Fatalf("row %d task id %d out of range", i, id)
		}
	}
	// ~60/s × 2 s × 4 tasks ≈ 480 rows; the Poisson spread stays well
	// inside ±50%.
	if n := len(a.Times); n < 240 || n > 720 {
		t.Errorf("synthetic trace has %d rows, want ≈480", n)
	}
	if c := SyntheticTrace("s", 8, 60, 2, 4); reflect.DeepEqual(a, c) {
		t.Error("different seeds produced the same trace")
	}
}

// TestReplicateMatchesIdentical pins the struct-constructor refactor: the
// positional wrapper and the Options form are interchangeable.
func TestReplicateMatchesIdentical(t *testing.T) {
	for _, stagger := range []bool{false, true} {
		want := Identical(6, specResNet(), stagger)
		got := Replicate(Options{Count: 6, Spec: specResNet(), Stagger: stagger})
		if !reflect.DeepEqual(want, got) {
			t.Errorf("stagger=%v: Replicate differs from Identical", stagger)
		}
	}
}

// TestBuildRejectsNonFinite: NaN and Inf in the float-valued spec fields
// must fail validation instead of corrupting periods or work draws.
func TestBuildRejectsNonFinite(t *testing.T) {
	for _, mutate := range []func(*TaskSpec){
		func(sp *TaskSpec) { sp.FPS = math.NaN() },
		func(sp *TaskSpec) { sp.FPS = math.Inf(1) },
		func(sp *TaskSpec) { sp.WorkVariation = math.NaN() },
		func(sp *TaskSpec) { sp.WorkVariation = math.Inf(1) },
		func(sp *TaskSpec) { sp.DeadlineFactor = math.NaN() },
	} {
		sp := specResNet()
		mutate(&sp)
		if _, err := Build([]TaskSpec{sp}); err == nil {
			t.Errorf("non-finite spec accepted: %+v", sp)
		}
	}
}

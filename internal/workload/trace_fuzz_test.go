package workload

import (
	"strings"
	"testing"
)

// FuzzParseTraceCSV drives the CSV trace parser with arbitrary input and
// checks the contract both ways: it must never panic, and whenever it
// accepts, the returned TraceData must satisfy every invariant the replay
// layer relies on — times finite, non-negative, and non-decreasing; task ids
// non-negative and parallel to the times. Accepting a trace that violates
// these would surface as a panic (or silent corruption) deep inside a
// simulation run instead of a line-numbered parse error.
func FuzzParseTraceCSV(f *testing.F) {
	f.Add("time_s,task\n0.000,0\n0.013,1\n")
	f.Add("time_s\n0\n1\n2\n")
	f.Add("time,task_id\n0.5,3\n")
	f.Add("time_s,task\n0.013,1\n0.000,0\n")   // non-monotone
	f.Add("time_s\nNaN\n")                     // non-finite
	f.Add("time_s\n+Inf\n")                    // non-finite
	f.Add("time_s\n-1\n")                      // negative
	f.Add("time_s\n1e300\n")                   // clock overflow
	f.Add("time_s,task\n0,-2\n")               // negative task id
	f.Add("time_s,task\n0\n")                  // short record
	f.Add("task\n0\n")                         // no time column
	f.Add("")                                  // no header
	f.Add("time_s\n0x1p-3\n")                  // hex float
	f.Add("time_s,task\n\"0.1\",\"0\"\njunk,") // quoting + trailing junk
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ParseTraceCSV("fuzz", strings.NewReader(input))
		checkTraceContract(t, d, err)
	})
}

// FuzzParseTraceJSON drives the JSON trace parser with arbitrary input and
// holds it to the same contract as the CSV parser: no panics, and every
// accepted trace satisfies the replay-layer invariants. The JSON path has its
// own failure surface — decoder errors, a name override, and a times/tasks
// pair that arrives as independent arrays rather than rows — so it gets its
// own corpus.
func FuzzParseTraceJSON(f *testing.F) {
	f.Add(`{"name":"t","times_s":[0.0,0.013],"tasks":[0,1]}`)
	f.Add(`{"times_s":[0,1,2]}`)
	f.Add(`{"times_s":[0.013,0.0]}`)             // non-monotone
	f.Add(`{"times_s":[null]}`)                  // null time
	f.Add(`{"times_s":[-1]}`)                    // negative
	f.Add(`{"times_s":[1e300]}`)                 // clock overflow
	f.Add(`{"times_s":[0],"tasks":[-2]}`)        // negative task id
	f.Add(`{"times_s":[0,1],"tasks":[0]}`)       // tasks not parallel
	f.Add(`{"times_s":[]}`)                      // no arrivals
	f.Add(`{}`)                                  // empty object
	f.Add(`[]`)                                  // wrong top-level type
	f.Add(`{"times_s":[0],`)                     // truncated
	f.Add(`{"name":123,"times_s":[0]}`)          // wrong name type
	f.Add(`{"times_s":["0.5"]}`)                 // string time
	f.Add("{\"times_s\":[0]}\n{\"x\":1}")        // trailing document
	f.Add(`{"TIMES_S":[0],"times_s":[0.5,.25]}`) // case fold + bad literal
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ParseTraceJSON("fuzz", strings.NewReader(input))
		checkTraceContract(t, d, err)
	})
}

// checkTraceContract asserts the parser postcondition shared by every trace
// format: an error yields no data, and accepted data satisfies the replay
// invariants (at least one arrival; times non-negative and non-decreasing;
// task ids non-negative and parallel to the times when present).
func checkTraceContract(t *testing.T, d *TraceData, err error) {
	t.Helper()
	if err != nil {
		if d != nil {
			t.Fatalf("error %v alongside non-nil data", err)
		}
		return
	}
	if len(d.Times) == 0 {
		t.Fatal("accepted a trace with no arrivals")
	}
	if len(d.Tasks) > 0 && len(d.Tasks) != len(d.Times) {
		t.Fatalf("tasks (%d) not parallel to times (%d)", len(d.Tasks), len(d.Times))
	}
	for i, at := range d.Times {
		if at < 0 {
			t.Fatalf("row %d: accepted negative time %v", i, at)
		}
		if i > 0 && at < d.Times[i-1] {
			t.Fatalf("row %d: accepted non-monotone time %v after %v", i, at, d.Times[i-1])
		}
	}
	for i, id := range d.Tasks {
		if id < 0 {
			t.Fatalf("row %d: accepted negative task id %d", i, id)
		}
	}
}

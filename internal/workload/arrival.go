package workload

import (
	"fmt"
	"math"

	"sgprs/internal/des"
)

// ArrivalTask is the per-task view an Arrival receives when the generator
// starts it: the task's position in the set plus the timing parameters the
// closed-loop periodic model would use. Open-loop processes are free to
// ignore Period (it still defines the job deadline) — it is the natural
// rate anchor for processes whose Rate field is zero.
type ArrivalTask struct {
	// Index and Count locate the task inside the generated set; trace
	// replay uses them to demultiplex recorded rows onto tasks.
	Index, Count int
	// Period, Offset, and Jitter are the task's closed-loop release
	// parameters (Jitter is consumed only by Periodic — open-loop
	// processes have their own randomness).
	Period, Offset, Jitter des.Time
}

// ArrivalProcess emits one task's release instants, in non-decreasing
// order. Next returns ok=false when the process is exhausted (only finite
// processes such as trace replay ever are); the generator additionally
// stops at the first instant at or past the horizon.
type ArrivalProcess interface {
	Next() (at des.Time, ok bool)
}

// Arrival is a pluggable release-time model: the generator starts one
// process per task, handing it the task's parameters and a deterministic
// RNG forked from the generator's seed by task ID (the house fork pattern,
// so processes never perturb each other and parallel sweeps stay
// bit-identical to sequential ones).
//
// Implementations are immutable values: Scale returns a derived process
// with the arrival intensity multiplied by factor (the exp.Rate axis), and
// Start may be called many times concurrently from different runs.
type Arrival interface {
	// Name is a short stable identifier ("poisson", "trace:azure") used
	// in expanded experiment labels and -list output.
	Name() string
	// Validate rejects malformed parameters; sim.RunConfig.Normalize and
	// exp.Compile call it so bad processes fail with the run named.
	Validate() error
	// Scale returns a copy with the arrival intensity multiplied by
	// factor (>1 = more load). Used by the exp arrival-rate axis.
	Scale(factor float64) Arrival
	// Start instantiates the process for one task.
	Start(t ArrivalTask, rng *des.RNG) ArrivalProcess
}

// finite rejects NaN and ±Inf.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// natRate converts a task period into its closed-loop arrival rate
// (arrivals per second) — the anchor processes use when Rate is zero.
func natRate(period des.Time) float64 { return 1 / period.Seconds() }

// Periodic is the closed-loop model as an explicit Arrival: releases every
// period (plus the task's uniform jitter, drawn exactly like the legacy
// generator path, so Periodic{} is bit-identical to Arrival == nil — the
// retained-reference equivalence the sim tests pin). Rate, when set,
// multiplies the release rate: jobs arrive every Period/Rate while
// deadlines stay derived from Period, making Rate > 1 open-loop periodic
// overload.
type Periodic struct {
	// Rate multiplies the task's natural release rate; 0 and 1 both mean
	// the task's own period.
	Rate float64
}

// Name implements Arrival.
func (p Periodic) Name() string {
	if p.Rate != 0 && p.Rate != 1 {
		return fmt.Sprintf("periodic-%gx", p.Rate)
	}
	return "periodic"
}

// Validate implements Arrival.
func (p Periodic) Validate() error {
	if p.Rate < 0 || !finite(p.Rate) {
		return fmt.Errorf("workload: periodic rate %v must be non-negative and finite", p.Rate)
	}
	return nil
}

// Scale implements Arrival.
func (p Periodic) Scale(factor float64) Arrival {
	r := p.Rate
	if r == 0 {
		r = 1
	}
	return Periodic{Rate: r * factor}
}

// Start implements Arrival.
func (p Periodic) Start(t ArrivalTask, rng *des.RNG) ArrivalProcess {
	period := t.Period
	if p.Rate != 0 && p.Rate != 1 {
		period = des.Time(float64(t.Period)/p.Rate + 0.5)
		if period < 1 {
			period = 1
		}
	}
	return &periodicProcess{period: period, offset: t.Offset, jitter: t.Jitter, rng: rng}
}

// periodicProcess replicates the legacy release loop term for term: the
// k-th instant is Offset + Period·k, and the jitter draw happens on every
// Next — including the final beyond-horizon one — so the RNG stream
// interleaves with the generator's work-variation draws exactly as before.
type periodicProcess struct {
	period, offset, jitter des.Time
	rng                    *des.RNG
	idx                    int
}

func (p *periodicProcess) Next() (des.Time, bool) {
	at := p.offset.Add(des.Time(int64(p.period) * int64(p.idx)))
	if p.jitter > 0 {
		at = at.Add(des.Time(p.rng.Float64() * float64(p.jitter)))
	}
	p.idx++
	return at, true
}

// Poisson is a memoryless open-loop stream: exponential inter-arrivals at
// Rate arrivals per second per task, starting from the task's offset.
type Poisson struct {
	// Rate is arrivals per second per task; 0 means the task's natural
	// closed-loop rate (1/Period) — useful as a Scale anchor.
	Rate float64
}

// Name implements Arrival.
func (p Poisson) Name() string {
	if p.Rate > 0 {
		return fmt.Sprintf("poisson-%g", p.Rate)
	}
	return "poisson"
}

// Validate implements Arrival.
func (p Poisson) Validate() error {
	if p.Rate < 0 || !finite(p.Rate) {
		return fmt.Errorf("workload: poisson rate %v must be non-negative and finite", p.Rate)
	}
	return nil
}

// Scale implements Arrival. A zero Rate scales the natural rate, which is
// only known per task — so that case carries the factor for Start to
// resolve. Factor 1 (the baseline cell of a rate sweep) is the identity.
func (p Poisson) Scale(factor float64) Arrival {
	if factor == 1 {
		return p
	}
	if p.Rate > 0 {
		return Poisson{Rate: p.Rate * factor}
	}
	return scaled{base: p, factor: factor}
}

// Start implements Arrival.
func (p Poisson) Start(t ArrivalTask, rng *des.RNG) ArrivalProcess {
	rate := p.Rate
	if rate == 0 {
		rate = natRate(t.Period)
	}
	return &poissonProcess{cur: t.Offset, meanNS: float64(des.Second) / rate, rng: rng}
}

type poissonProcess struct {
	cur    des.Time
	meanNS float64
	rng    *des.RNG
}

func (p *poissonProcess) Next() (des.Time, bool) {
	p.cur = p.cur.Add(des.Time(p.rng.Exp(p.meanNS) + 0.5))
	return p.cur, true
}

// Bursty is a deterministic on/off source: fixed-length ON windows (Poisson
// arrivals at Rate) alternating with silent OFF windows, phase-locked to
// the task offset. It models camera groups or clients that synchronise into
// bursts — the adversarial regime for admission control.
type Bursty struct {
	// OnSec and OffSec are the window lengths in seconds.
	OnSec, OffSec float64
	// Rate is the ON-window arrival rate per task, arrivals per second;
	// 0 means the task's natural rate (so the average rate is below
	// closed-loop by the duty cycle).
	Rate float64
}

// Name implements Arrival.
func (b Bursty) Name() string { return fmt.Sprintf("bursty-%g/%g", b.OnSec, b.OffSec) }

// Validate implements Arrival.
func (b Bursty) Validate() error {
	if !(b.OnSec > 0) || !finite(b.OnSec) {
		return fmt.Errorf("workload: bursty on-window %vs must be positive and finite", b.OnSec)
	}
	if b.OffSec < 0 || !finite(b.OffSec) {
		return fmt.Errorf("workload: bursty off-window %vs must be non-negative and finite", b.OffSec)
	}
	if b.Rate < 0 || !finite(b.Rate) {
		return fmt.Errorf("workload: bursty rate %v must be non-negative and finite", b.Rate)
	}
	return nil
}

// Scale implements Arrival.
func (b Bursty) Scale(factor float64) Arrival {
	if factor == 1 {
		return b
	}
	if b.Rate > 0 {
		c := b
		c.Rate *= factor
		return c
	}
	return scaled{base: b, factor: factor}
}

// Start implements Arrival.
func (b Bursty) Start(t ArrivalTask, rng *des.RNG) ArrivalProcess {
	rate := b.Rate
	if rate == 0 {
		rate = natRate(t.Period)
	}
	return &burstyProcess{
		offset: t.Offset,
		onNS:   b.OnSec * float64(des.Second),
		cycNS:  (b.OnSec + b.OffSec) * float64(des.Second),
		meanNS: float64(des.Second) / rate,
		rng:    rng,
	}
}

// burstyProcess draws a Poisson stream in "busy time" (cumulative ON time)
// and maps it onto wall time by inserting the OFF windows: busy instant b
// lands in cycle ⌊b/on⌋ at offset b mod on. The mapping is monotone, so
// the emitted instants are too.
type burstyProcess struct {
	offset      des.Time
	busyNS      float64
	onNS, cycNS float64
	meanNS      float64
	rng         *des.RNG
}

func (p *burstyProcess) Next() (des.Time, bool) {
	p.busyNS += p.rng.Exp(p.meanNS)
	cycles := math.Floor(p.busyNS / p.onNS)
	wall := cycles*p.cycNS + (p.busyNS - cycles*p.onNS)
	return p.offset.Add(des.Time(wall + 0.5)), true
}

// MMPP is a Markov-modulated Poisson process: the source cycles through
// states, each with its own arrival rate, staying in state i for an
// exponential sojourn with the given mean. A rate-0 state is a silent
// phase. The classic two-state (interrupted Poisson) overload model is
// MMPP{RatesPerSec: []float64{low, high}, MeanSojournSec: []float64{a, b}}.
type MMPP struct {
	// RatesPerSec are the per-state arrival rates (arrivals per second
	// per task); at least one must be positive.
	RatesPerSec []float64
	// MeanSojournSec are the matching mean state-holding times, seconds.
	MeanSojournSec []float64
}

// Name implements Arrival.
func (m MMPP) Name() string { return fmt.Sprintf("mmpp-%d", len(m.RatesPerSec)) }

// Validate implements Arrival.
func (m MMPP) Validate() error {
	if len(m.RatesPerSec) == 0 || len(m.RatesPerSec) != len(m.MeanSojournSec) {
		return fmt.Errorf("workload: mmpp needs matching non-empty rate/sojourn lists (got %d/%d)",
			len(m.RatesPerSec), len(m.MeanSojournSec))
	}
	anyPositive := false
	for i, r := range m.RatesPerSec {
		if r < 0 || !finite(r) {
			return fmt.Errorf("workload: mmpp state %d rate %v must be non-negative and finite", i, r)
		}
		if r > 0 {
			anyPositive = true
		}
		if s := m.MeanSojournSec[i]; !(s > 0) || !finite(s) {
			return fmt.Errorf("workload: mmpp state %d sojourn %vs must be positive and finite", i, s)
		}
	}
	if !anyPositive {
		return fmt.Errorf("workload: mmpp needs at least one state with a positive rate")
	}
	return nil
}

// Scale implements Arrival.
func (m MMPP) Scale(factor float64) Arrival {
	rates := make([]float64, len(m.RatesPerSec))
	for i, r := range m.RatesPerSec {
		rates[i] = r * factor
	}
	return MMPP{RatesPerSec: rates, MeanSojournSec: append([]float64(nil), m.MeanSojournSec...)}
}

// Start implements Arrival.
func (m MMPP) Start(t ArrivalTask, rng *des.RNG) ArrivalProcess {
	p := &mmppProcess{m: m, cur: t.Offset, rng: rng}
	p.phaseEnd = p.cur.Add(des.Time(rng.Exp(m.MeanSojournSec[0]*float64(des.Second)) + 0.5))
	return p
}

// mmppProcess exploits memorylessness: at a state boundary the pending
// exponential inter-arrival is simply redrawn at the new state's rate,
// which has the same distribution as the textbook competing-clocks
// construction and needs no thinning.
type mmppProcess struct {
	m        MMPP
	state    int
	cur      des.Time
	phaseEnd des.Time
	rng      *des.RNG
}

func (p *mmppProcess) Next() (des.Time, bool) {
	for {
		if rate := p.m.RatesPerSec[p.state]; rate > 0 {
			at := p.cur.Add(des.Time(p.rng.Exp(float64(des.Second)/rate) + 0.5))
			if at < p.phaseEnd {
				p.cur = at
				return at, true
			}
		}
		// Silent state, or the draw crossed the boundary: jump to the
		// next state and redraw there.
		p.cur = p.phaseEnd
		p.state = (p.state + 1) % len(p.m.RatesPerSec)
		p.phaseEnd = p.cur.Add(des.Time(p.rng.Exp(p.m.MeanSojournSec[p.state]*float64(des.Second)) + 0.5))
	}
}

// Diurnal is a smoothly varying open-loop source: a sinusoidal rate curve
// from MinRate (at the start of each cycle) up to MaxRate (mid-cycle) and
// back, sampled by Lewis–Shedler thinning against the peak rate. One cycle
// per PeriodSec compresses a day-scale load curve into simulated seconds.
type Diurnal struct {
	// PeriodSec is the cycle length in simulated seconds.
	PeriodSec float64
	// MinRate and MaxRate bound the rate curve, arrivals per second per
	// task. MaxRate 0 means twice the task's natural rate.
	MinRate, MaxRate float64
}

// Name implements Arrival.
func (d Diurnal) Name() string { return fmt.Sprintf("diurnal-%gs", d.PeriodSec) }

// Validate implements Arrival.
func (d Diurnal) Validate() error {
	if !(d.PeriodSec > 0) || !finite(d.PeriodSec) {
		return fmt.Errorf("workload: diurnal period %vs must be positive and finite", d.PeriodSec)
	}
	if d.MinRate < 0 || !finite(d.MinRate) {
		return fmt.Errorf("workload: diurnal min rate %v must be non-negative and finite", d.MinRate)
	}
	if d.MaxRate < 0 || !finite(d.MaxRate) {
		return fmt.Errorf("workload: diurnal max rate %v must be non-negative and finite", d.MaxRate)
	}
	if d.MaxRate > 0 && d.MaxRate < d.MinRate {
		return fmt.Errorf("workload: diurnal max rate %v below min rate %v", d.MaxRate, d.MinRate)
	}
	return nil
}

// Scale implements Arrival.
func (d Diurnal) Scale(factor float64) Arrival {
	if factor == 1 {
		return d
	}
	if d.MaxRate > 0 {
		c := d
		c.MinRate *= factor
		c.MaxRate *= factor
		return c
	}
	return scaled{base: d, factor: factor}
}

// Start implements Arrival.
func (d Diurnal) Start(t ArrivalTask, rng *des.RNG) ArrivalProcess {
	maxRate := d.MaxRate
	if maxRate == 0 {
		maxRate = 2 * natRate(t.Period)
	}
	return &diurnalProcess{
		offset:   t.Offset,
		periodNS: d.PeriodSec * float64(des.Second),
		min:      d.MinRate,
		max:      maxRate,
		rng:      rng,
	}
}

type diurnalProcess struct {
	offset   des.Time
	curNS    float64
	periodNS float64
	min, max float64
	rng      *des.RNG
}

func (p *diurnalProcess) Next() (des.Time, bool) {
	meanNS := float64(des.Second) / p.max
	for {
		p.curNS += p.rng.Exp(meanNS)
		phase := 2 * math.Pi * (p.curNS / p.periodNS)
		rate := p.min + (p.max-p.min)*0.5*(1-math.Cos(phase))
		if p.rng.Float64()*p.max < rate {
			return p.offset.Add(des.Time(p.curNS + 0.5)), true
		}
	}
}

// Trace replays recorded release timestamps (see TraceData and LoadTrace):
// each task replays the rows assigned to it, in recorded order. Task
// offsets and jitter are ignored — the trace IS the timing.
type Trace struct {
	// Data is the parsed trace (shared, immutable).
	Data *TraceData
	// Speed compresses (>1) or stretches (<1) replay time; 0 means 1
	// (as recorded). The arrival-rate axis multiplies it.
	Speed float64
}

// Name implements Arrival.
func (t Trace) Name() string {
	name := "trace"
	if t.Data != nil && t.Data.Name != "" {
		name += ":" + t.Data.Name
	}
	if t.Speed != 0 && t.Speed != 1 {
		name += fmt.Sprintf("-%gx", t.Speed)
	}
	return name
}

// Validate implements Arrival.
func (t Trace) Validate() error {
	if t.Data == nil {
		return fmt.Errorf("workload: trace arrival has no data")
	}
	if t.Speed < 0 || !finite(t.Speed) {
		return fmt.Errorf("workload: trace speed %v must be non-negative and finite", t.Speed)
	}
	return t.Data.validate()
}

// Scale implements Arrival.
func (t Trace) Scale(factor float64) Arrival {
	s := t.Speed
	if s == 0 {
		s = 1
	}
	return Trace{Data: t.Data, Speed: s * factor}
}

// Start implements Arrival.
func (t Trace) Start(task ArrivalTask, rng *des.RNG) ArrivalProcess {
	speed := t.Speed
	if speed == 0 {
		speed = 1
	}
	return &traceProcess{data: t.Data, speed: speed, task: task}
}

type traceProcess struct {
	data  *TraceData
	speed float64
	task  ArrivalTask
	row   int
}

func (p *traceProcess) Next() (des.Time, bool) {
	for ; p.row < len(p.data.Times); p.row++ {
		owner := p.row
		if len(p.data.Tasks) > 0 {
			owner = p.data.Tasks[p.row]
		}
		if owner%p.task.Count != p.task.Index {
			continue
		}
		at := p.data.Times[p.row]
		if p.speed != 1 {
			at = des.Time(float64(at)/p.speed + 0.5)
		}
		p.row++
		return at, true
	}
	return 0, false
}

// scaled wraps an Arrival whose intensity anchor (the task's natural rate)
// is only known at Start time, deferring the multiplication until then. It
// keeps Scale closed under composition for every process type.
type scaled struct {
	base   Arrival
	factor float64
}

// Name implements Arrival.
func (s scaled) Name() string { return fmt.Sprintf("%s-%gx", s.base.Name(), s.factor) }

// Validate implements Arrival.
func (s scaled) Validate() error {
	if !(s.factor > 0) || !finite(s.factor) {
		return fmt.Errorf("workload: arrival scale factor %v must be positive and finite", s.factor)
	}
	return s.base.Validate()
}

// Scale implements Arrival.
func (s scaled) Scale(factor float64) Arrival {
	return scaled{base: s.base, factor: s.factor * factor}
}

// Start implements Arrival: the wrapped process runs with a virtually
// shortened period, which multiplies every natural-rate anchor by the
// factor without touching deadlines (those derive from the real task).
func (s scaled) Start(t ArrivalTask, rng *des.RNG) ArrivalProcess {
	switch b := s.base.(type) {
	case Poisson:
		rate := b.Rate
		if rate == 0 {
			rate = natRate(t.Period)
		}
		return Poisson{Rate: rate * s.factor}.Start(t, rng)
	case Bursty:
		rate := b.Rate
		if rate == 0 {
			rate = natRate(t.Period)
		}
		c := b
		c.Rate = rate * s.factor
		return c.Start(t, rng)
	case Diurnal:
		c := b
		if c.MaxRate == 0 {
			c.MaxRate = 2 * natRate(t.Period)
		}
		c.MinRate *= s.factor
		c.MaxRate *= s.factor
		return c.Start(t, rng)
	default:
		// Processes with absolute rates already resolved their own
		// Scale; reaching here means a new Arrival forgot to implement
		// it — scale what Validate accepted as best effort.
		return s.base.Scale(s.factor).Start(t, rng)
	}
}

# Local targets mirror .github/workflows/ci.yml exactly: `make ci` runs the
# same gates in the same order as a push.

GO ?= go

## Benchmark JSON snapshots: BENCH_BASELINE is the frozen reference the delta
## report and the allocation gate compare against; BENCH_CURRENT is the
## snapshot bench-json rewrites. Bump BENCH_CURRENT (and, when a baseline is
## re-frozen, BENCH_BASELINE) here instead of editing the recipes.
BENCH_BASELINE ?= BENCH_5.json
BENCH_CURRENT ?= BENCH_7.json

.PHONY: build test race bench bench-json bench-gate bench-long bench-ff lint vuln experiments examples fuzz-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: one iteration of every benchmark (the CI smoke); use
## `go test -bench . -benchtime 5x .` for stable figure numbers.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## bench-json: rewrite $(BENCH_CURRENT) (machine-readable ns/op, B/op,
## allocs/op, and custom metrics per benchmark) from a 3-iteration run,
## printing the ns/op and allocs/op delta against $(BENCH_BASELINE) — the
## frozen reference snapshot — first. This is how the perf trajectory
## stays trackable across PRs.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 3x . \
		| $(GO) run ./cmd/sgprs-benchjson -baseline $(BENCH_BASELINE) -out $(BENCH_CURRENT)

## bench-gate: the CI allocation gate — re-run the pinned benches and fail
## on a >25% allocs/op regression against the committed $(BENCH_CURRENT).
bench-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkScenarioRegeneration|BenchmarkSingleRun|BenchmarkEngineThroughput|BenchmarkLongHorizon|BenchmarkDenseContention|BenchmarkOverloadTail|BenchmarkSteadyState|BenchmarkFleetFailover' \
		-benchmem -benchtime 1x . \
		| $(GO) run ./cmd/sgprs-benchjson -baseline $(BENCH_CURRENT) -out /tmp/bench-current.json \
			-gate 'BenchmarkSingleRun/|BenchmarkScenarioRegeneration/(uncached|cold|warm)-offline|BenchmarkLongHorizon/|BenchmarkOverloadTail/|BenchmarkSteadyState/|BenchmarkFleetFailover/' \
			-max-allocs-regress 25

## bench-long: the long-horizon memory benchmark alone — verifies that
## allocations per simulated second are independent of horizon length
## (streaming metrics + job recycling; see DESIGN.md §8).
bench-long:
	$(GO) test -run '^$$' -bench BenchmarkLongHorizon -benchmem -benchtime 1x .

## bench-ff: the steady-state fast-forward benchmarks — the eligible 60 s
## run with the detector on versus DisableFastForward, plus the long-horizon
## sweep it collapses (see DESIGN.md §12).
bench-ff:
	$(GO) test -run '^$$' -bench 'BenchmarkSteadyState|BenchmarkLongHorizon' -benchmem -benchtime 1x .

## lint: vet, gofmt, and the sgprs-lint determinism suite (DESIGN.md §14) —
## the same blocking gate CI runs.
lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi
	$(GO) run ./cmd/sgprs-lint ./...

## vuln: scan the module against the Go vulnerability database. Uses a
## govulncheck binary when one is installed; otherwise reports how to get
## one rather than failing the build (the tool needs network access).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; install with:" >&2; \
		echo "  go install golang.org/x/vuln/cmd/govulncheck@latest" >&2; \
		exit 1; \
	fi

## experiments: enumerate the declarative experiment registry (name,
## shape, description) via the sweep CLI.
experiments:
	$(GO) run ./cmd/sgprs-sweep -list

## examples: build every example, then smoke-run the quickstart, the
## registry-driven experiment example, and the fault-injection and
## fleet-failover walkthroughs (the CI examples gate).
examples:
	$(GO) build ./examples/...
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/registry
	$(GO) run ./examples/faultinjection
	$(GO) run ./examples/fleet

## fuzz-smoke: a short bounded run of every fuzz target — enough to catch
## parser regressions on each push without burning CI minutes. Targets are
## enumerated with `go test -list '^Fuzz'` per package, so adding a fuzz
## function anywhere in the tree adds it to this gate automatically.
fuzz-smoke:
	@set -e; \
	for pkg in $$($(GO) list ./...); do \
		targets=$$($(GO) test -list '^Fuzz' "$$pkg" | grep '^Fuzz' || true); \
		for t in $$targets; do \
			echo "fuzz-smoke: $$pkg $$t"; \
			$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime 10s "$$pkg"; \
		done; \
	done

ci: lint build race examples fuzz-smoke bench bench-gate

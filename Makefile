# Local targets mirror .github/workflows/ci.yml exactly: `make ci` runs the
# same gates in the same order as a push.

GO ?= go

.PHONY: build test race bench bench-json bench-gate bench-long bench-ff lint experiments examples fuzz-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: one iteration of every benchmark (the CI smoke); use
## `go test -bench . -benchtime 5x .` for stable figure numbers.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## bench-json: rewrite BENCH_7.json (machine-readable ns/op, B/op,
## allocs/op, and custom metrics per benchmark) from a 3-iteration run,
## printing the ns/op and allocs/op delta against BENCH_5.json — the frozen
## pre-fast-forward baseline — first. This is how the perf trajectory
## stays trackable across PRs.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 3x . \
		| $(GO) run ./cmd/sgprs-benchjson -baseline BENCH_5.json -out BENCH_7.json

## bench-gate: the CI allocation gate — re-run the pinned benches and fail
## on a >25% allocs/op regression against the committed BENCH_7.json.
bench-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkScenarioRegeneration|BenchmarkSingleRun|BenchmarkEngineThroughput|BenchmarkLongHorizon|BenchmarkDenseContention|BenchmarkOverloadTail|BenchmarkSteadyState' \
		-benchmem -benchtime 1x . \
		| $(GO) run ./cmd/sgprs-benchjson -baseline BENCH_7.json -out /tmp/bench-current.json \
			-gate 'BenchmarkSingleRun/|BenchmarkScenarioRegeneration/(uncached|cold|warm)-offline|BenchmarkLongHorizon/|BenchmarkOverloadTail/|BenchmarkSteadyState/' \
			-max-allocs-regress 25

## bench-long: the long-horizon memory benchmark alone — verifies that
## allocations per simulated second are independent of horizon length
## (streaming metrics + job recycling; see DESIGN.md §8).
bench-long:
	$(GO) test -run '^$$' -bench BenchmarkLongHorizon -benchmem -benchtime 1x .

## bench-ff: the steady-state fast-forward benchmarks — the eligible 60 s
## run with the detector on versus DisableFastForward, plus the long-horizon
## sweep it collapses (see DESIGN.md §12).
bench-ff:
	$(GO) test -run '^$$' -bench 'BenchmarkSteadyState|BenchmarkLongHorizon' -benchmem -benchtime 1x .

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

## experiments: enumerate the declarative experiment registry (name,
## shape, description) via the sweep CLI.
experiments:
	$(GO) run ./cmd/sgprs-sweep -list

## examples: build every example, then smoke-run the quickstart, the
## registry-driven experiment example, and the fault-injection walkthrough
## (the CI examples gate).
examples:
	$(GO) build ./examples/...
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/registry
	$(GO) run ./examples/faultinjection

## fuzz-smoke: a short bounded run of every fuzz target — enough to catch
## parser regressions on each push without burning CI minutes.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParseTraceCSV -fuzztime 10s ./internal/workload/

ci: lint build race examples fuzz-smoke bench bench-gate

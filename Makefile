# Local targets mirror .github/workflows/ci.yml exactly: `make ci` runs the
# same gates in the same order as a push.

GO ?= go

.PHONY: build test race bench bench-json lint ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: one iteration of every benchmark (the CI smoke); use
## `go test -bench . -benchtime 5x .` for stable figure numbers.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## bench-json: rewrite BENCH_2.json (machine-readable ns/op, B/op,
## allocs/op, and custom metrics per benchmark) from a 3-iteration run,
## printing the delta against the committed numbers first. This is how the
## perf trajectory stays trackable across PRs.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 3x . \
		| $(GO) run ./cmd/sgprs-benchjson -baseline BENCH_2.json -out BENCH_2.json

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

ci: lint build race bench

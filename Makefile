# Local targets mirror .github/workflows/ci.yml exactly: `make ci` runs the
# same gates in the same order as a push.

GO ?= go

.PHONY: build test race bench lint ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: one iteration of every benchmark (the CI smoke); use
## `go test -bench . -benchtime 5x .` for stable figure numbers.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

ci: lint build race bench

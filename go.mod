module sgprs

go 1.24

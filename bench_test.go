// Benchmark harness: one benchmark per table/figure of the paper, plus
// ablation benches for the design choices called out in DESIGN.md §7.
//
// These benches report *experiment* metrics (fps, dmr, pivot) through
// b.ReportMetric alongside the usual ns/op, so a single
//
//	go test -bench=. -benchmem
//
// regenerates every figure's headline numbers. Full-resolution sweeps (all
// task counts, 10 s horizons) are produced by cmd/sgprs-sweep; the benches
// use shorter horizons and the load levels where the paper's claims live.
package sgprs_test

import (
	"fmt"
	"runtime"
	"testing"

	"sgprs"
	"sgprs/internal/core"
	"sgprs/internal/des"
	"sgprs/internal/dnn"
	"sgprs/internal/fault"
	"sgprs/internal/gpu"
	"sgprs/internal/memo"
	"sgprs/internal/profile"
	"sgprs/internal/sim"
	"sgprs/internal/speedup"
)

// benchCounts are the sweep points the benches sample: the linear ramp, the
// paper's pivot region (23-25), and deep overload.
var benchCounts = []int{8, 16, 23, 25, 28, 30}

const benchHorizon = 3 // simulated seconds per sweep point

// sweepVariant runs one scheduler variant over benchCounts and reports the
// figure metrics.
func sweepVariant(b *testing.B, scenario int, v sgprs.RunConfig, reportDMR bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		series, err := sgprs.SweepSeries(v, benchCounts)
		if err != nil {
			b.Fatal(err)
		}
		if reportDMR {
			b.ReportMetric(series[len(series)-1].Summary.DMR, "dmr@30tasks")
			b.ReportMetric(series[2].Summary.DMR, "dmr@23tasks")
		} else {
			b.ReportMetric(sgprs.SaturationFPS(series), "sat_fps")
			b.ReportMetric(series[len(series)-1].Summary.TotalFPS, "fps@30tasks")
			b.ReportMetric(float64(sgprs.PivotPoint(series)), "pivot_tasks")
		}
	}
}

// scenarioVariants builds the paper's four per-scenario configurations.
func scenarioVariants(scenario int) []sgprs.RunConfig {
	np := 2
	if scenario == 2 {
		np = 3
	}
	mk := func(kind sgprs.Kind, name string, os float64) sgprs.RunConfig {
		return sgprs.RunConfig{
			Kind:       kind,
			Name:       name,
			ContextSMs: sgprs.ContextPool(np, os, 68),
			NumTasks:   1,
			HorizonSec: benchHorizon,
			Seed:       1,
		}
	}
	return []sgprs.RunConfig{
		mk(sgprs.KindNaive, "naive", 1.0),
		mk(sgprs.KindSGPRS, "sgprs-1.0x", 1.0),
		mk(sgprs.KindSGPRS, "sgprs-1.5x", 1.5),
		mk(sgprs.KindSGPRS, "sgprs-2.0x", 2.0),
	}
}

// BenchmarkFig1SpeedupGain regenerates Figure 1: per-operation speedup gain
// measured in isolation on the simulated device, at the full 68 SMs and at
// the half-device point.
func BenchmarkFig1SpeedupGain(b *testing.B) {
	prof := profile.New(speedup.DefaultModel(), gpu.DefaultConfig())
	for _, cl := range speedup.Classes() {
		cl := cl
		b.Run(cl.String(), func(b *testing.B) {
			var g68, g34 float64
			for i := 0; i < b.N; i++ {
				var err error
				g68, err = prof.OperationGain(cl, 50, 68)
				if err != nil {
					b.Fatal(err)
				}
				g34, err = prof.OperationGain(cl, 50, 34)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(g68, "gain@68sm")
			b.ReportMetric(g34, "gain@34sm")
		})
	}
	b.Run("resnet18", func(b *testing.B) {
		g := dnn.ResNet18(dnn.DefaultCostModel())
		var gain float64
		for i := 0; i < b.N; i++ {
			var err error
			gain, err = prof.NetworkGain(g, 68)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(gain, "gain@68sm")
	})
}

// BenchmarkFig3aTotalFPS regenerates Figure 3a: total FPS vs task count in
// Scenario 1 (two contexts).
func BenchmarkFig3aTotalFPS(b *testing.B) {
	for _, v := range scenarioVariants(1) {
		v := v
		b.Run(v.Name, func(b *testing.B) { sweepVariant(b, 1, v, false) })
	}
}

// BenchmarkFig3bDMR regenerates Figure 3b: deadline miss rate vs task count
// in Scenario 1.
func BenchmarkFig3bDMR(b *testing.B) {
	for _, v := range scenarioVariants(1) {
		v := v
		b.Run(v.Name, func(b *testing.B) { sweepVariant(b, 1, v, true) })
	}
}

// BenchmarkFig4aTotalFPS regenerates Figure 4a: total FPS vs task count in
// Scenario 2 (three contexts).
func BenchmarkFig4aTotalFPS(b *testing.B) {
	for _, v := range scenarioVariants(2) {
		v := v
		b.Run(v.Name, func(b *testing.B) { sweepVariant(b, 2, v, false) })
	}
}

// BenchmarkFig4bDMR regenerates Figure 4b: deadline miss rate vs task count
// in Scenario 2.
func BenchmarkFig4bDMR(b *testing.B) {
	for _, v := range scenarioVariants(2) {
		v := v
		b.Run(v.Name, func(b *testing.B) { sweepVariant(b, 2, v, true) })
	}
}

// ablationBase is the configuration ablations perturb: SGPRS 1.5x in
// Scenario 2 at a saturating load (26 tasks).
func ablationBase() sgprs.RunConfig {
	return sgprs.RunConfig{
		Kind:       sgprs.KindSGPRS,
		Name:       "ablation",
		ContextSMs: sgprs.ContextPool(3, 1.5, 68),
		NumTasks:   26,
		HorizonSec: benchHorizon,
		Seed:       1,
	}
}

func runAblation(b *testing.B, cfg sgprs.RunConfig) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := sgprs.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary.TotalFPS, "fps")
		b.ReportMetric(res.Summary.DMR, "dmr")
		b.ReportMetric(res.Summary.RespP99MS, "p99_ms")
	}
}

// BenchmarkAblationPriorityLevels (A1): the paper's two-level priority
// assignment versus flattened pure-EDF stages.
func BenchmarkAblationPriorityLevels(b *testing.B) {
	b.Run("two-level", func(b *testing.B) { runAblation(b, ablationBase()) })
	b.Run("flat-edf", func(b *testing.B) {
		cfg := ablationBase()
		cfg.FlattenPriorities = true
		runAblation(b, cfg)
	})
}

// BenchmarkAblationMediumPromotion (A2): the online third priority level on
// versus off.
func BenchmarkAblationMediumPromotion(b *testing.B) {
	b.Run("promotion-on", func(b *testing.B) { runAblation(b, ablationBase()) })
	b.Run("promotion-off", func(b *testing.B) {
		cfg := ablationBase()
		cfg.DisableMediumPromotion = true
		runAblation(b, cfg)
	})
}

// BenchmarkAblationContextPolicy (A3): the paper's three-rule context
// assignment versus single-rule baselines.
func BenchmarkAblationContextPolicy(b *testing.B) {
	policies := []struct {
		name string
		pol  int
	}{
		{"paper", 0}, {"shortest-queue", 1}, {"earliest-finish", 2}, {"round-robin", 3},
	}
	for _, p := range policies {
		p := p
		b.Run(p.name, func(b *testing.B) {
			cfg := ablationBase()
			cfg.AssignPolicy = core.AssignPolicy(p.pol)
			runAblation(b, cfg)
		})
	}
}

// BenchmarkAblationStageCount (A4): pipeline granularity.
func BenchmarkAblationStageCount(b *testing.B) {
	for _, stages := range []int{1, 2, 3, 6, 12} {
		stages := stages
		b.Run(fmt.Sprintf("stages-%d", stages), func(b *testing.B) {
			cfg := ablationBase()
			cfg.Stages = stages
			runAblation(b, cfg)
		})
	}
}

// BenchmarkAblationSwitchCost (A5): sensitivity of the naive baseline to the
// reconfiguration cost SGPRS avoids entirely.
func BenchmarkAblationSwitchCost(b *testing.B) {
	for _, reconfig := range []float64{0.05, 0.3, 0.6, 1.2} {
		reconfig := reconfig
		b.Run(fmt.Sprintf("reconfig-%dus", int(reconfig*1000)), func(b *testing.B) {
			cfg := ablationBase()
			cfg.Kind = sgprs.KindNaive
			cfg.ContextSMs = sgprs.ContextPool(3, 1.0, 68)
			cfg.NaiveReconfigBaseMS = reconfig
			runAblation(b, cfg)
		})
	}
}

// BenchmarkAblationLateDrop (A6): the temporal-partitioning discipline
// (skip frames that are already lost) on versus off.
func BenchmarkAblationLateDrop(b *testing.B) {
	b.Run("drop-on", func(b *testing.B) { runAblation(b, ablationBase()) })
	b.Run("drop-off", func(b *testing.B) {
		cfg := ablationBase()
		cfg.DisableLateDrop = true
		runAblation(b, cfg)
	})
}

// BenchmarkScenarioRegeneration compares regeneration of a full paper
// scenario (the 4-variant × task-count grid behind Figures 3a/3b) across the
// execution strategies. Outputs are bit-identical across every case (the
// runner's determinism tests and the sim cache-equality tests pin this);
// only wall-clock differs:
//
//   - uncached-offline: the reference path — every run rebuilds the
//     calibrated graph and profiles each task from scratch.
//   - cold-offline: a fresh offline cache per iteration, so each distinct
//     shape is profiled once per scenario (intra-run and intra-sweep reuse).
//   - warm-offline: the steady-state path (shared cache, all hits) — what
//     sim.RunScenario and the CLIs see after their first run.
//   - parallel-jobsN: warm cache through the experiment runner; on a
//     multi-core host wall-clock approaches 1/min(workers, cores, 12 jobs),
//     on a single core it matches sequential to within pool overhead.
func BenchmarkScenarioRegeneration(b *testing.B) {
	counts := []int{8, 16, 24}
	const horizon = 2
	b.Run("uncached-offline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunScenarioWith(1, counts, horizon, 1, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold-offline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunScenarioWith(1, counts, horizon, 1, memo.New()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-offline", func(b *testing.B) {
		b.ReportAllocs()
		cache := memo.New()
		if _, err := sim.RunScenarioWith(1, counts, horizon, 1, cache); err != nil {
			b.Fatal(err) // populate outside the timed loop
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunScenarioWith(1, counts, horizon, 1, cache); err != nil {
				b.Fatal(err)
			}
		}
	})
	workers := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workers = append(workers, n)
	}
	for _, w := range workers {
		w := w
		b.Run(fmt.Sprintf("parallel-jobs%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sgprs.RunScenarioWith(1, counts, horizon, 1, sgprs.SweepOptions{Jobs: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSingleRun is the allocation microbenchmark: one simulation run at
// a saturating load (SGPRS 1.5x, Scenario 2 pool, 26 tasks, 2 s horizon),
// with the warm-cache and uncached offline phases reported separately so
// per-run allocation regressions are visible in isolation.
func BenchmarkSingleRun(b *testing.B) {
	cfg := ablationBase()
	cfg.HorizonSec = 2
	b.Run("warm-offline", func(b *testing.B) {
		b.ReportAllocs()
		cache := memo.New()
		if _, err := sim.RunWith(cfg, cache); err != nil {
			b.Fatal(err) // populate outside the timed loop
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunWith(cfg, cache); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("uncached-offline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunWith(cfg, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The steady-state path: one Session reused across runs, as every
	// sweep worker does. Engine, device, job pool, and task structures
	// all survive between iterations.
	b.Run("warm-session", func(b *testing.B) {
		b.ReportAllocs()
		sess := sim.NewSession(memo.New())
		if _, err := sess.Run(cfg); err != nil {
			b.Fatal(err) // populate caches and pools outside the timed loop
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ffEligible makes a configuration fast-forward eligible: contention
// jitter — the only stochastic draw inside the device — zeroed, everything
// else the calibrated default, with the seed offset Normalize would apply.
func ffEligible(cfg sgprs.RunConfig) sgprs.RunConfig {
	g := gpu.DefaultConfig()
	g.ContentionJitter = 0
	g.Seed = cfg.Seed + 1
	cfg.GPU = g
	return cfg
}

// BenchmarkLongHorizon is the long-horizon cost benchmark: the same
// saturating workload simulated over 2 s, 60 s, and 600 s horizons through
// a reused Session. With streaming metrics and job recycling, allocations
// per simulated second are independent of horizon length — before PR 3,
// every released job was retained and the 60 s run held ~30× the heap. The
// configuration is fast-forward eligible, so past the first recurrence the
// detector extrapolates whole hyperperiod cycles analytically: wall time
// and allocations collapse to roughly one cycle's worth however long the
// horizon (the 600 s case is the stress point — simulating it in full costs
// ~100× the 6 s acceptance grids). The allocs/simsec metric feeds the CI
// benchmark-delta report via BENCH_7.json.
func BenchmarkLongHorizon(b *testing.B) {
	for _, sec := range []float64{2, 60, 600} {
		sec := sec
		b.Run(fmt.Sprintf("horizon-%.0fs", sec), func(b *testing.B) {
			b.ReportAllocs()
			cfg := ffEligible(ablationBase())
			cfg.HorizonSec = sec
			sess := sim.NewSession(memo.New())
			if _, err := sess.Run(cfg); err != nil {
				b.Fatal(err) // reach steady state outside the timed loop
			}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(b.N)/sec, "allocs/simsec")
		})
	}
}

// BenchmarkSteadyState is the fast-forward headline: the identical eligible
// 60 s run with the detector on versus DisableFastForward. The reference
// simulates every one of the ~1800 release cycles; fast-forward simulates a
// few dozen boundaries, extrapolates the rest analytically, and the results
// stay bit-identical (TestFastForwardBitIdenticalScenarios pins this).
// cycles_skipped reports how much of the horizon was never simulated.
func BenchmarkSteadyState(b *testing.B) {
	base := ffEligible(ablationBase())
	base.HorizonSec = 60
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"fast-forward", false}, {"full-sim", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := base
			cfg.DisableFastForward = mode.disable
			sess := sim.NewSession(memo.New())
			var res sgprs.Result
			var err error
			if _, err = sess.Run(cfg); err != nil {
				b.Fatal(err) // reach steady state outside the timed loop
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res, err = sess.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.FastForward.CyclesSkipped), "cycles_skipped")
		})
	}
}

// BenchmarkOverloadTail is the open-loop overload benchmark (the headline
// cell of the overload-tail registry entry): SGPRS 1.5x versus the naive
// baseline under Poisson arrivals at 1.5x the tasks' natural rate with a
// one-frame SLO. SGPRS sheds the excess through late drops and keeps the
// tail short; naive queues unboundedly and lets p99 grow with the backlog.
// Drop rate, SLO hit rate, and tail latency are reported alongside the
// allocation figures the CI gate pins.
func BenchmarkOverloadTail(b *testing.B) {
	run := func(cfg sgprs.RunConfig) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			var res sgprs.Result
			var err error
			for i := 0; i < b.N; i++ {
				if res, err = sgprs.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
			s := res.Summary
			b.ReportMetric(s.DropRate, "drop_rate")
			b.ReportMetric(s.SLOHitRate, "slo_hit_rate")
			b.ReportMetric(s.RespP99MS, "p99_ms")
			b.ReportMetric(s.QueueDepthMean, "queue_mean")
		}
	}
	over := ablationBase()
	over.Arrival = sgprs.PoissonArrival(45) // 1.5x the 30 fps natural rate
	over.SLOMS = 1000.0 / 30.0
	b.Run("sgprs-1.5x", run(over))
	naive := over
	naive.Kind = sgprs.KindNaive
	naive.Name = "naive"
	naive.ContextSMs = sgprs.ContextPool(3, 1.0, 68)
	b.Run("naive", run(naive))
}

// BenchmarkDenseContention stresses the incremental rate engine where the
// paper's dense-contention regimes live: many contexts × many streams, all
// continuously busy, swept across demand ratios from half-subscribed to the
// paper's 2.0x over-subscription. Every kernel completion triggers a
// running-set transition over ~32 concurrent kernels, so this benchmark is
// almost pure rate-engine work: ratio ≤ 1 exercises the dirty-context fast
// path and the lean ceiling path, ratio > 1 the full sweep (DESIGN.md §10).
// The recompute tier counts are reported per iteration.
func BenchmarkDenseContention(b *testing.B) {
	const (
		perStream = 12
		kernelMS  = 2.0 // single-SM ms per kernel
	)
	// Explicit context layouts rather than a derived division: the 1.0 case
	// sits exactly on the demand == TotalSMs boundary (4×17 = 68), the last
	// point the incremental tiers may handle, and the sub-benchmark names
	// carry the achieved ratio (also reported as a metric).
	cases := []struct {
		name   string
		nCtx   int
		smsPer int
	}{
		{"ratio-0.5", 8, 4},  // demand 32/68 ≈ 0.47
		{"ratio-1.0", 4, 17}, // demand 68/68 = 1.00: the exact-fit boundary
		{"ratio-1.5", 8, 12}, // demand 96/68 ≈ 1.41
		{"ratio-2.0", 8, 17}, // demand 136/68 = 2.00
	}
	for _, tc := range cases {
		nCtx, smsPer := tc.nCtx, tc.smsPer
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := gpu.DefaultConfig()
			eng := des.NewEngine()
			dev, err := gpu.NewDevice(eng, sim.DefaultModel(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			var fast, lean, full uint64
			for i := 0; i < b.N; i++ {
				eng.Reset()
				if err := dev.Reset(cfg); err != nil {
					b.Fatal(err)
				}
				for c := 0; c < nCtx; c++ {
					ctx, err := dev.CreateContext("dc", smsPer)
					if err != nil {
						b.Fatal(err)
					}
					for s := 0; s < 4; s++ {
						p := gpu.LowPriority
						if s < 2 {
							p = gpu.HighPriority
						}
						stream := ctx.AddStream("s", p)
						for k := 0; k < perStream; k++ {
							stream.Submit(&gpu.Kernel{
								Label:  "dc",
								Shares: []speedup.WorkShare{{Class: speedup.Conv, Work: kernelMS}},
							})
						}
					}
				}
				eng.Run()
				if got, want := dev.CompletedKernels(), uint64(nCtx*4*perStream); got != want {
					b.Fatalf("completed %d kernels, want %d", got, want)
				}
				fast, lean, full = dev.RecomputeStats()
			}
			b.ReportMetric(float64(nCtx*smsPer)/68, "demand_ratio")
			b.ReportMetric(float64(fast), "fast_recomputes")
			b.ReportMetric(float64(lean), "lean_recomputes")
			b.ReportMetric(float64(full), "full_recomputes")
		})
	}
}

// BenchmarkEngineThroughput measures raw simulator speed: simulated kernel
// completions per wall second at a saturating load (not a paper figure —
// infrastructure health).
func BenchmarkEngineThroughput(b *testing.B) {
	b.ReportAllocs()
	cfg := ablationBase()
	cfg.HorizonSec = 2
	for i := 0; i < b.N; i++ {
		if _, err := sgprs.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRobustnessOverrun injects per-job execution-time variation (WCET
// overruns the offline profile never saw) and reports how gracefully each
// scheduler degrades at a saturating load.
func BenchmarkRobustnessOverrun(b *testing.B) {
	for _, variation := range []float64{0, 0.15, 0.3} {
		variation := variation
		b.Run(fmt.Sprintf("sgprs-var%.0f%%", variation*100), func(b *testing.B) {
			cfg := ablationBase()
			cfg.WorkVariation = variation
			runAblation(b, cfg)
		})
		b.Run(fmt.Sprintf("naive-var%.0f%%", variation*100), func(b *testing.B) {
			cfg := ablationBase()
			cfg.Kind = sgprs.KindNaive
			cfg.ContextSMs = sgprs.ContextPool(3, 1.0, 68)
			cfg.WorkVariation = variation
			runAblation(b, cfg)
		})
	}
}

// BenchmarkEnergyEfficiency reports fps-per-watt at light and saturating
// load (the device power model is linear in busy SMs; see gpu.PowerModel).
func BenchmarkEnergyEfficiency(b *testing.B) {
	for _, n := range []int{8, 26} {
		n := n
		b.Run(fmt.Sprintf("tasks-%d", n), func(b *testing.B) {
			cfg := ablationBase()
			cfg.NumTasks = n
			var res sgprs.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = sgprs.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.FPSPerWatt, "fps_per_watt")
			b.ReportMetric(res.AvgPowerW, "watts")
		})
	}
}

// BenchmarkFleetFailover is the fleet-layer benchmark (DESIGN.md §15): a
// 3-device fleet loses device 1 mid-run and recovers it a second later,
// once per failover policy, against a clean fleet twin. The failover
// counters ride alongside the allocation figures the CI gate pins.
func BenchmarkFleetFailover(b *testing.B) {
	base := ablationBase()
	base.Name = "fleet"
	base.ContextSMs = sgprs.ContextPool(3, 1.0, 68)
	base.Devices = 3
	base.AdmitCeiling = 0.7
	for _, bench := range []struct {
		name    string
		policy  sgprs.FailoverPolicy
		crashed bool
	}{
		{"clean", sgprs.FailoverDefault, false},
		{"migrate", sgprs.FailoverMigrate, true},
		{"retry", sgprs.FailoverRetry, true},
		{"shed", sgprs.FailoverShed, true},
	} {
		bench := bench
		b.Run(bench.name, func(b *testing.B) {
			cfg := base
			cfg.Failover = bench.policy
			if bench.crashed {
				cfg.Faults = &fault.Config{
					DeviceFaults: []fault.DeviceFault{{Device: 1, StartSec: 2, RestartSec: 3}},
				}
			}
			b.ReportAllocs()
			var res sgprs.Result
			var err error
			for i := 0; i < b.N; i++ {
				if res, err = sgprs.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
			fl := res.Summary.Fleet
			b.ReportMetric(res.Summary.TotalFPS, "fps")
			b.ReportMetric(res.Summary.DMR, "dmr")
			b.ReportMetric(float64(fl.Migrations), "migrations")
			b.ReportMetric(float64(fl.ShedReleases), "shed_releases")
			b.ReportMetric(fl.FleetDegradedDMR, "fleet_dmr")
		})
	}
}

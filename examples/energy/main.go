// Energy: compare the energy efficiency (fps per watt) of SGPRS and the
// naive baseline across load levels, using the device's linear power model
// (idle + per-active-SM dynamic power, calibrated to an RTX 2080 Ti's TDP).
//
// The interesting effect: at equal load both schedulers draw similar power,
// but past the naive baseline's pivot its completions stall while the device
// keeps burning — efficiency diverges exactly where deadlines start failing.
//
//	go run ./examples/energy
package main

import (
	"fmt"
	"log"

	"sgprs/internal/sim"
)

func main() {
	log.SetFlags(0)
	fmt.Println("energy efficiency across load, Scenario 1 (two contexts)")
	fmt.Printf("\n%-6s | %-28s | %-28s\n", "", "naive", "sgprs-2.0x")
	fmt.Printf("%-6s | %8s %8s %9s | %8s %8s %9s\n",
		"tasks", "fps", "watts", "fps/W", "fps", "watts", "fps/W")
	for _, n := range []int{4, 8, 12, 16, 20, 24, 28} {
		naive := run(sim.KindNaive, sim.ContextPool(2, 1.0, 68), n)
		sgprs := run(sim.KindSGPRS, sim.ContextPool(2, 2.0, 68), n)
		fmt.Printf("%-6d | %8.1f %8.1f %9.2f | %8.1f %8.1f %9.2f\n",
			n,
			naive.Summary.TotalFPS, naive.AvgPowerW, naive.FPSPerWatt,
			sgprs.Summary.TotalFPS, sgprs.AvgPowerW, sgprs.FPSPerWatt)
	}
}

func run(kind sim.Kind, pool []int, n int) sim.Result {
	res, err := sim.Run(sim.RunConfig{
		Kind:       kind,
		ContextSMs: pool,
		NumTasks:   n,
		HorizonSec: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// Registry: enumerate the declarative experiment registry, then run a
// smoke-scale clone of the built-in jitter ladder through RunExperiment —
// with a cancellable context and per-job streaming results, the way a
// long campaign would be driven.
//
// Lookup returns an independent clone, so shrinking the axes here never
// affects what `sgprs-sweep -experiment jitter-ladder` runs.
//
//	go run ./examples/registry
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"sgprs"
)

func main() {
	log.SetFlags(0)
	fmt.Println("registered experiments:")
	for _, e := range sgprs.Experiments() {
		fmt.Printf("  %-18s %s\n", e.Name, e.Description)
	}

	spec, ok := sgprs.LookupExperiment("jitter-ladder")
	if !ok {
		log.Fatal("jitter-ladder is not registered")
	}
	// Scale the clone down to smoke size: two jitter rungs, three loads,
	// a 3-second horizon.
	spec.Axes = []sgprs.ExperimentAxis{
		sgprs.JitterAxis(0, 10),
		sgprs.TasksAxis(8, 16, 24),
	}
	for i := range spec.Variants {
		spec.Variants[i].HorizonSec = 3
	}

	// Ctrl-C cancels: dispatched runs drain, the rest are attributed to
	// the context, and every finished point below still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Println("\nrunning a smoke-scale jitter-ladder clone:")
	rs, err := sgprs.RunExperiment(ctx, spec, sgprs.SweepOptions{
		Progress: func(done, total int, r sgprs.SweepJobResult) {
			fmt.Printf("  [%d/%d] %-14s n=%-2d", done, total, r.Job.Variant, r.Job.Tasks)
			if r.Err != nil {
				fmt.Printf("  %v\n", r.Err)
			} else {
				fmt.Printf("  %6.1f fps  dmr %.4f\n", r.Result.Summary.TotalFPS, r.Result.Summary.DMR)
			}
		},
	})
	if rs == nil {
		log.Fatal(err)
	}
	if err != nil {
		log.Print(err) // partial results below are still valid
	}

	fmt.Println("\npivot by jitter bound:")
	series := rs.Series()
	for _, label := range rs.Order {
		fmt.Printf("  %-14s pivot %2d tasks, saturation %5.0f fps\n",
			label, sgprs.PivotPoint(series[label]), sgprs.SaturationFPS(series[label]))
	}
}

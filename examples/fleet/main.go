// Fleet failover: run the same 24-task SGPRS workload on a 3-device fleet
// that loses device 1 mid-run and gets it back a second later, once per
// failover policy, and compare what each policy preserves — migrations pay a
// placement cost, retries wait out the blackout, shedding sacrifices chains.
// A clean fleet twin anchors the comparison.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"

	"sgprs"
	"sgprs/internal/fault"
)

func main() {
	log.SetFlags(0)
	base := sgprs.RunConfig{
		Kind:         sgprs.KindSGPRS,
		Name:         "clean",
		ContextSMs:   []int{23, 23, 23},
		NumTasks:     24,
		HorizonSec:   5,
		Seed:         7,
		Devices:      3,
		AdmitCeiling: 0.7,
	}
	crash := &fault.Config{
		// Device 1 goes dark from 2 s to 3 s; its chains fail over.
		DeviceFaults: []fault.DeviceFault{{Device: 1, StartSec: 2, RestartSec: 3}},
	}

	fmt.Println("Fleet failover — 24 ResNet18 tasks on 3 devices, device 1 down 2s..3s")
	fmt.Printf("%-10s %8s %8s %6s %6s %6s %9s %9s\n",
		"policy", "fps", "dmr", "migr", "shed", "chains", "failov-ms", "deg-dmr")
	for _, policy := range []sgprs.FailoverPolicy{
		sgprs.FailoverDefault, sgprs.FailoverMigrate, sgprs.FailoverRetry, sgprs.FailoverShed,
	} {
		cfg := base
		if policy != sgprs.FailoverDefault {
			cfg.Name = policy.String()
			cfg.Failover = policy
			cfg.Faults = crash.Clone()
		}
		res, err := sgprs.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fl := res.Summary.Fleet
		name := cfg.Name
		if policy == sgprs.FailoverDefault {
			name = "(no crash)"
		}
		fmt.Printf("%-10s %8.1f %8.4f %6d %6d %6d %9.2f %9.4f\n",
			name, res.Summary.TotalFPS, res.Summary.DMR,
			fl.Migrations, fl.ShedReleases, fl.ShedChains,
			fl.FailoverLatencyMeanMS, fl.FleetDegradedDMR)
	}
}

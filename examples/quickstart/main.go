// Quickstart: schedule eight periodic ResNet18 inference tasks on a
// simulated RTX 2080 Ti with SGPRS and print the run metrics, through the
// public sgprs facade.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sgprs"
)

func main() {
	log.SetFlags(0)
	res, err := sgprs.Run(sgprs.RunConfig{
		Kind:       sgprs.KindSGPRS,
		Name:       "sgprs-quickstart",
		ContextSMs: []int{34, 34}, // two-context pool (paper Scenario 1)
		NumTasks:   8,             // 8 x ResNet18 @ 30 fps, 6 stages each
		HorizonSec: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SGPRS quickstart — 8 periodic ResNet18 tasks @ 30 fps")
	fmt.Printf("  total FPS          %.1f (offered %.0f)\n", res.Summary.TotalFPS, 8*30.0)
	fmt.Printf("  deadline miss rate %.4f\n", res.Summary.DMR)
	fmt.Printf("  response p99       %.2f ms (deadline 33.33 ms)\n", res.Summary.RespP99MS)
	fmt.Printf("  device utilisation %.1f%%\n", res.DeviceUtilization*100)
}

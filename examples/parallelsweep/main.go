// Parallelsweep: regenerate a paper scenario through the parallel
// experiment runner, with a progress callback, and double-check that the
// result is bit-identical to a single-worker run (it always is — worker
// count only changes wall-clock; see DESIGN.md §5-§6).
//
//	go run ./examples/parallelsweep
package main

import (
	"fmt"
	"log"
	"reflect"

	"sgprs"
)

func main() {
	log.SetFlags(0)
	counts := []int{4, 8, 12, 16}

	par, err := sgprs.RunScenarioWith(1, counts, 3, 1, sgprs.SweepOptions{
		Progress: func(done, total int, r sgprs.SweepJobResult) {
			fmt.Printf("  [%2d/%d] %-10s n=%d\n", done, total, r.Job.Variant, r.Job.Tasks)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	one, err := sgprs.RunScenarioWith(1, counts, 3, 1, sgprs.SweepOptions{Jobs: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bit-identical to 1 worker: %v\n\n", reflect.DeepEqual(par, one))

	for _, name := range par.Order {
		series := par.Series[name]
		fmt.Printf("%-10s  pivot %2d tasks, saturation %5.0f fps\n",
			name, sgprs.PivotPoint(series), sgprs.SaturationFPS(series))
	}
}

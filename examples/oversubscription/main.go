// Oversubscription: run the registry's built-in over-subscription
// experiment at a single saturating task count and report how FPS, miss
// rate, latency, and utilisation respond — the paper's Figure 4 trade-off
// ("higher over-subscription leads to poor predictability and increased
// resource contention"). The over-subscription level is a declarative
// sweep axis; this example shrinks a clone of the registered spec to one
// load point instead of hand-rolling a loop of runs.
//
//	go run ./examples/oversubscription
package main

import (
	"context"
	"fmt"
	"log"

	"sgprs"
)

func main() {
	log.SetFlags(0)
	const tasks = 26 // just past the pivot: over-subscription differences matter here
	spec, ok := sgprs.LookupExperiment("oversubscription")
	if !ok {
		log.Fatal("oversubscription experiment is not registered")
	}
	for i, a := range spec.Axes {
		if a.Kind == sgprs.AxisTasks {
			spec.Axes[i] = sgprs.TasksAxis(tasks)
		}
	}
	for i := range spec.Variants {
		spec.Variants[i].HorizonSec = 8
	}
	rs, err := sgprs.RunExperiment(context.Background(), spec, sgprs.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("over-subscription sweep, three contexts, %d tasks @ 30 fps\n\n", tasks)
	fmt.Printf("%-16s %-14s %8s %8s %10s %10s\n", "variant", "pool", "fps", "dmr", "p99(ms)", "util")
	for _, r := range rs.Results {
		res := r.Result
		fmt.Printf("%-16s %-14s %8.1f %8.4f %10.2f %9.1f%%\n",
			r.Job.Variant, fmt.Sprint(r.Job.Config.ContextSMs), res.Summary.TotalFPS, res.Summary.DMR,
			res.Summary.RespP99MS, res.DeviceUtilization*100)
	}
}

// Oversubscription: sweep the context pool's over-subscription level in
// Scenario 2 (three contexts) at a fixed, saturating task count, and report
// how FPS, miss rate, and latency respond — the paper's Figure 4 trade-off
// ("higher over-subscription leads to poor predictability and increased
// resource contention").
//
//	go run ./examples/oversubscription
package main

import (
	"fmt"
	"log"

	"sgprs/internal/sim"
)

func main() {
	log.SetFlags(0)
	const tasks = 26 // just past the pivot: over-subscription differences matter here
	fmt.Printf("over-subscription sweep, Scenario 2 (three contexts), %d tasks @ 30 fps\n\n", tasks)
	fmt.Printf("%-6s %-14s %8s %8s %10s %10s\n", "os", "pool", "fps", "dmr", "p99(ms)", "util")
	for _, os := range []float64{1.0, 1.25, 1.5, 1.75, 2.0} {
		pool := sim.ContextPool(3, os, 68)
		res, err := sim.Run(sim.RunConfig{
			Kind:       sim.KindSGPRS,
			Name:       fmt.Sprintf("sgprs-%.2fx", os),
			ContextSMs: pool,
			NumTasks:   tasks,
			HorizonSec: 8,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.2f %-14v %8.1f %8.4f %10.2f %9.1f%%\n",
			os, pool, res.Summary.TotalFPS, res.Summary.DMR,
			res.Summary.RespP99MS, res.DeviceUtilization*100)
	}
}

// Pivot: find the pivot point — the largest task count a scheduler handles
// without a single deadline miss (paper Section V) — for both the naive
// baseline and SGPRS in Scenario 1, by sweeping the task count.
//
//	go run ./examples/pivot
package main

import (
	"fmt"
	"log"

	"sgprs/internal/metrics"
	"sgprs/internal/sim"
)

func main() {
	log.SetFlags(0)
	counts := []int{4, 8, 12, 14, 16, 18, 20, 22, 24, 26, 28}
	configs := []sim.RunConfig{
		{Kind: sim.KindNaive, Name: "naive", ContextSMs: sim.ContextPool(2, 1.0, 68)},
		{Kind: sim.KindSGPRS, Name: "sgprs-2.0x", ContextSMs: sim.ContextPool(2, 2.0, 68)},
	}
	fmt.Println("pivot search, Scenario 1 (two contexts), 30 fps ResNet18 tasks")
	for _, base := range configs {
		base.HorizonSec = 5
		series, err := sim.SweepSeries(base, counts)
		if err != nil {
			log.Fatal(err)
		}
		pivot := metrics.PivotPoint(series)
		fmt.Printf("\n%s:\n", base.Name)
		for _, p := range series {
			marker := ""
			if p.Tasks == pivot {
				marker = "  <- pivot point"
			}
			fmt.Printf("  %2d tasks: %6.1f fps, DMR %.3f%s\n",
				p.Tasks, p.Summary.TotalFPS, p.Summary.DMR, marker)
		}
		fmt.Printf("  pivot: %d tasks, saturation %.0f fps\n",
			pivot, metrics.SaturationFPS(series))
	}
}

// Multitenant: the paper's motivating scenario — co-located DNN services of
// different sizes and rates sharing one GPU. Three tenant classes (a 30 fps
// ResNet18 vision pipeline, a 10 fps VGG11 analytics pass, and a 60 fps
// TinyCNN gesture detector) run under SGPRS on a three-context pool.
//
// This example wires the lower-level API directly — device, profiler,
// scheduler, generator — instead of going through the sim front end, to show
// how heterogeneous task sets are assembled.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"sgprs/internal/core"
	"sgprs/internal/des"
	"sgprs/internal/dnn"
	"sgprs/internal/gpu"
	"sgprs/internal/metrics"
	"sgprs/internal/profile"
	"sgprs/internal/sim"
	"sgprs/internal/speedup"
	"sgprs/internal/workload"
)

func main() {
	log.SetFlags(0)
	eng := des.NewEngine()
	model := speedup.DefaultModel()
	dev, err := gpu.NewDevice(eng, model, gpu.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	cm := dnn.DefaultCostModel()
	vgg := dnn.VGG11(cm)
	// VGG11's raw cost model is relative; pin it to a plausible absolute
	// latency the same way the ResNet18 reference is calibrated.
	dnn.Calibrate(vgg, model, speedup.DeviceSMs, 6.5)
	tiny := dnn.TinyCNN(cm)
	dnn.Calibrate(tiny, model, speedup.DeviceSMs, 0.12)

	specs := []workload.TaskSpec{
		{Name: "vision-resnet18", Graph: sim.ReferenceGraph(model), Stages: 6, FPS: 30},
		{Name: "vision-resnet18-b", Graph: sim.ReferenceGraph(model), Stages: 6, FPS: 30},
		{Name: "analytics-vgg11", Graph: vgg, Stages: 6, FPS: 10},
		{Name: "gesture-tinycnn", Graph: tiny, Stages: 2, FPS: 60},
		{Name: "gesture-tinycnn-b", Graph: tiny, Stages: 2, FPS: 60},
	}
	tasks, err := workload.Build(specs)
	if err != nil {
		log.Fatal(err)
	}

	// Offline phase: profile WCETs on the smallest pool context.
	pool := sim.ContextPool(3, 1.5, speedup.DeviceSMs)
	prof := profile.New(model, dev.Config())
	for _, t := range tasks {
		if err := prof.ProfileTask(t, pool[0]); err != nil {
			log.Fatal(err)
		}
	}

	sched, err := core.New(core.DefaultConfig("sgprs-multitenant", pool))
	if err != nil {
		log.Fatal(err)
	}
	if err := sched.Attach(eng, dev, tasks); err != nil {
		log.Fatal(err)
	}

	horizon := des.FromSeconds(6)
	gen := workload.NewGenerator(eng, sched)
	gen.Start(tasks, horizon)
	eng.RunUntil(horizon)

	fmt.Printf("multi-tenant inference under SGPRS: %v SMs, 6 s simulated\n\n", pool)
	fmt.Printf("%-20s %6s %8s %8s %10s\n", "tenant", "rate", "fps", "dmr", "p99(ms)")
	for _, task := range tasks {
		sum := perTask(gen, task.ID, des.Second, horizon)
		fmt.Printf("%-20s %6.0f %8.1f %8.4f %10.2f\n",
			task.Name, 1/task.Period.Seconds(), sum.TotalFPS, sum.DMR, sum.RespP99MS)
	}
	total := metrics.Evaluate(gen.Jobs(), des.Second, horizon)
	fmt.Printf("\ntotal: %s\n", total)
	fmt.Printf("device utilisation %.1f%%, medium promotions %d\n",
		dev.Utilization()*100, sched.Promotions())
}

// perTask evaluates the metric window over one task's jobs only.
func perTask(gen *workload.Generator, taskID int, warm, horizon des.Time) metrics.Summary {
	var jobs = gen.Jobs()[:0:0]
	for _, j := range gen.Jobs() {
		if j.Task.ID == taskID {
			jobs = append(jobs, j)
		}
	}
	return metrics.Evaluate(jobs, warm, horizon)
}

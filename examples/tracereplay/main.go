// Tracereplay: open-loop traffic through the experiment API — replay a
// recorded arrival trace against SGPRS and the naive baseline, then sweep
// a Poisson overload across rate factors and watch SGPRS trade a bounded
// drop rate for a short tail while naive queues without limit.
//
// The trace here is synthetic (a seeded Poisson merge, so the example is
// hermetic), but LoadTrace/ParseTraceCSV accept recorded files with the
// same two columns: `time_s` and an optional `task` owner.
//
//	go run ./examples/tracereplay
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"sgprs"
)

func main() {
	log.SetFlags(0)

	// --- Part 1: trace replay -------------------------------------------
	// 8 seconds of arrivals at ~60/s spread over 8 owner tasks. A real
	// deployment would use sgprs.LoadTrace("arrivals.csv") instead; the
	// CSV form of this trace is just:
	//
	//	time_s,task
	//	0.013,3
	//	0.029,0
	//	...
	trace := sgprs.SyntheticTrace("demo-60", 42, 60, 8, 8)
	fmt.Printf("trace %q: %d arrivals over 8s across 8 tasks\n", "demo-60", len(trace.Times))

	// The same trace can also come from CSV text, e.g. recorded in prod.
	csv := "time_s,task\n0.10,0\n0.25,1\n0.40,0\n"
	if _, err := sgprs.ParseTraceCSV("inline", strings.NewReader(csv)); err != nil {
		log.Fatal(err)
	}

	replay := sgprs.RunConfig{
		Kind:       sgprs.KindSGPRS,
		Name:       "sgprs-1.5x",
		ContextSMs: sgprs.ContextPool(2, 1.5, 68),
		NumTasks:   8,
		HorizonSec: 8,
		Seed:       1,
		Arrival:    sgprs.TraceArrival(trace, 1),
		SLOMS:      1000.0 / 30.0,
	}
	res, err := sgprs.Run(replay)
	if err != nil {
		log.Fatal(err)
	}
	s := res.Summary
	fmt.Printf("replay: released %d, completed %d, drop rate %.3f, SLO hit rate %.3f, p99 %.1fms\n\n",
		s.Released, s.Completed, s.DropRate, s.SLOHitRate, s.RespP99MS)

	// --- Part 2: overload sweep -----------------------------------------
	// An arrival axis crossed with a rate axis: periodic vs Poisson at the
	// natural rate and at 1.5x. The rate axis multiplies whatever process
	// the arrival axis put on the cell, so the four cells below cover the
	// closed-loop baseline and the open-loop overload in one spec.
	naive := replay
	naive.Kind = sgprs.KindNaive
	naive.Name = "naive"
	naive.ContextSMs = sgprs.ContextPool(2, 1.0, 68)
	spec := &sgprs.Experiment{
		Name:        "overload-demo",
		Description: "drop rate and tail latency under Poisson overload",
		Variants:    []sgprs.RunConfig{replay, naive},
		Axes: []sgprs.ExperimentAxis{
			sgprs.ArrivalAxis(sgprs.PeriodicArrival(0), sgprs.PoissonArrival(0)),
			sgprs.RateAxis(1.0, 1.5),
			sgprs.TasksAxis(8, 16),
		},
	}
	rs, err := sgprs.RunExperiment(context.Background(), spec, sgprs.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("variant                              n   drops    slo-hit  p99ms")
	series := rs.Series()
	for _, label := range rs.Order {
		for _, p := range series[label] {
			fmt.Printf("%-35s %2d   %.3f    %.3f    %6.1f\n",
				label, p.Tasks, p.Summary.DropRate, p.Summary.SLOHitRate, p.Summary.RespP99MS)
		}
	}
}

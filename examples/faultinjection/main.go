// Fault injection: run the same 24-task SGPRS workload clean and under a
// combined fault load — heavy-tailed WCET overruns, 5% transient kernel
// faults, and a mid-run SM-degradation window — once per recovery policy,
// and compare what each policy salvages.
//
//	go run ./examples/faultinjection
package main

import (
	"fmt"
	"log"

	"sgprs"
	"sgprs/internal/fault"
)

func main() {
	log.SetFlags(0)
	base := sgprs.RunConfig{
		Kind:       sgprs.KindSGPRS,
		Name:       "clean",
		ContextSMs: []int{23, 23, 23},
		NumTasks:   24,
		HorizonSec: 5,
		Seed:       7,
	}
	faults := &fault.Config{
		Overrun:   &fault.Overrun{Model: fault.OverrunHeavyTail, Factor: 2},
		Transient: &fault.Transient{Prob: 0.05, MaxRetries: 2},
		Degradation: []fault.Window{
			// The device drops to 20 effective SMs for one second mid-run.
			{StartSec: 2, EndSec: 3, SMs: 20},
		},
	}

	fmt.Println("Fault injection — 24 ResNet18 tasks, overruns + 5% transients + SM loss")
	fmt.Printf("%-12s %8s %8s %10s %10s %8s\n", "policy", "fps", "dmr", "transients", "recovered", "deg-dmr")
	for _, policy := range []string{"", "retry", "skip-job", "kill-chain"} {
		cfg := base
		if policy != "" {
			fc := faults.Clone()
			fc.Transient.Policy = policy
			cfg.Name = policy
			cfg.Faults = fc
		}
		res, err := sgprs.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		f := res.Summary.Faults
		name := cfg.Name
		if policy == "" {
			name = "(no faults)"
		}
		fmt.Printf("%-12s %8.1f %8.4f %10d %10d %8.4f\n",
			name, res.Summary.TotalFPS, res.Summary.DMR, f.TransientFaults, f.Recoveries, f.DegradedDMR)
	}
}

// Command sgprs-benchjson converts `go test -bench` output (stdin) into
// machine-readable JSON, so the repository's performance trajectory is
// trackable across PRs (BENCH_<n>.json), and optionally compares the fresh
// numbers — ns/op and allocs/op — against a committed baseline.
//
// The delta report is informational by default: the command exits 0 on
// valid input, whatever the regression, and a baseline benchmark missing
// from the fresh run (renamed or retired) is a warning, not an error — so
// CI can surface drift in the log without turning benchmark churn into a
// gate.
//
// -gate promotes a pinned subset to a hard gate: every baseline benchmark
// whose name matches the regexp must be present in the fresh run, and its
// allocs/op must not regress by more than -max-allocs-regress percent.
// Allocations — unlike ns/op — are deterministic enough to gate on with
// single-iteration CI runs; a one-line leak in the simulator's steady state
// multiplies allocs/op immediately.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -benchtime 3x . | sgprs-benchjson -out BENCH_5.json -baseline BENCH_3.json
//	go test -run '^$' -bench <pinned> -benchmem -benchtime 1x . | sgprs-benchjson -baseline BENCH_5.json \
//	    -gate 'BenchmarkSingleRun/|BenchmarkScenarioRegeneration/(uncached|cold|warm)|BenchmarkLongHorizon/' \
//	    -max-allocs-regress 25
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem (-1 without).
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric values (unit → value).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_<n>.json schema.
type File struct {
	Package    string      `json:"package,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sgprs-benchjson: ")
	out := flag.String("out", "", "write JSON here (default stdout)")
	baseline := flag.String("baseline", "", "committed baseline JSON to diff against (report-only)")
	gate := flag.String("gate", "", "regexp of baseline benchmarks whose allocs/op regressions fail the run")
	maxAllocsRegress := flag.Float64("max-allocs-regress", 25, "allowed allocs/op regression for gated benchmarks, in percent")
	flag.Parse()
	var gateRE *regexp.Regexp
	if *gate != "" {
		var err error
		if gateRE, err = regexp.Compile(*gate); err != nil {
			log.Fatalf("bad -gate pattern: %v", err)
		}
	}

	// Read the baseline before writing, so -out and -baseline may be the
	// same file.
	var base *File
	if *baseline != "" {
		if b, err := os.ReadFile(*baseline); err == nil {
			base = &File{}
			if err := json.Unmarshal(b, base); err != nil {
				log.Printf("baseline %s unreadable (%v); skipping delta", *baseline, err)
				base = nil
			}
		} else {
			log.Printf("no baseline at %s; skipping delta", *baseline)
		}
	}

	file, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		log.Fatal(err)
	}
	if len(file.Benchmarks) == 0 {
		log.Fatal("no benchmark lines on stdin")
	}

	enc, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}

	if base != nil {
		report(base, file)
		if gateRE != nil {
			if failures := checkGate(base, file, gateRE, *maxAllocsRegress); len(failures) > 0 {
				for _, f := range failures {
					fmt.Fprintf(os.Stderr, "GATE FAILURE: %s\n", f)
				}
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "allocs/op gate passed (limit +%.0f%%)\n", *maxAllocsRegress)
		}
	}
}

// checkGate enforces the allocs/op regression gate: every baseline benchmark
// matching the pattern must appear in the fresh run (a silently renamed or
// dropped pinned benchmark would otherwise dodge the gate forever) with
// allocs/op within the allowed regression. Benchmarks without -benchmem data
// on either side are skipped.
func checkGate(base, cur *File, gate *regexp.Regexp, maxRegressPct float64) []string {
	byName := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		byName[b.Name] = b
	}
	var failures []string
	for _, o := range base.Benchmarks {
		if !gate.MatchString(o.Name) {
			continue
		}
		b, ok := byName[o.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("pinned benchmark %q missing from this run", o.Name))
			continue
		}
		if o.AllocsPerOp < 0 || b.AllocsPerOp < 0 {
			continue
		}
		limit := float64(o.AllocsPerOp) * (1 + maxRegressPct/100)
		if float64(b.AllocsPerOp) > limit {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %d exceeds baseline %d by more than %.0f%%",
				o.Name, b.AllocsPerOp, o.AllocsPerOp, maxRegressPct))
		}
	}
	return failures
}

// parse consumes `go test -bench` output. Benchmark lines look like
//
//	BenchmarkName-8   3   75296901 ns/op   11691829 B/op   285225 allocs/op   740.9 sat_fps
//
// where the -8 GOMAXPROCS suffix, the memory columns, and custom metric
// columns are all optional.
func parse(sc *bufio.Scanner) (*File, error) {
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	file := &File{}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg:"):
			file.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			file.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err1 := strconv.ParseInt(fields[1], 10, 64)
		ns, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("malformed benchmark line: %q", line)
		}
		b := Benchmark{Name: name, Iterations: iters, NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1}
		// Remaining fields come in (value, unit) pairs.
		for i := 3; i+2 < len(fields); i += 2 {
			val, unit := fields[i+1], fields[i+2]
			switch unit {
			case "B/op":
				b.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				b.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			default:
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					continue
				}
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		file.Benchmarks = append(file.Benchmarks, b)
	}
	return file, sc.Err()
}

// report prints a benchstat-style delta table covering both ns/op and
// allocs/op (report-only; never fails). Benchmarks present only in the
// baseline — typically renamed or retired benches — are listed as warnings
// rather than breaking the run, so `make bench-json` survives bench churn.
func report(base, cur *File) {
	old := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		old[b.Name] = b
	}
	names := make([]string, 0, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		names = append(names, b.Name)
	}
	sort.Strings(names)
	byName := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		byName[b.Name] = b
	}
	fmt.Fprintf(os.Stderr, "benchmark delta vs baseline (report-only; single-iteration smoke numbers are noisy):\n")
	fmt.Fprintf(os.Stderr, "%-64s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")
	for _, name := range names {
		b := byName[name]
		o, ok := old[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "%-64s %14s %14.0f %8s %12s %12s %8s\n",
				name, "-", b.NsPerOp, "new", "-", allocsCell(b.AllocsPerOp), "new")
			continue
		}
		fmt.Fprintf(os.Stderr, "%-64s %14.0f %14.0f %8s %12s %12s %8s\n",
			name, o.NsPerOp, b.NsPerOp, pctDelta(o.NsPerOp, b.NsPerOp),
			allocsCell(o.AllocsPerOp), allocsCell(b.AllocsPerOp),
			allocsDelta(o.AllocsPerOp, b.AllocsPerOp))
	}
	missing := make([]string, 0, len(old))
	for name := range old {
		if _, ok := byName[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(os.Stderr, "warning: baseline benchmark %q missing from this run (renamed or removed?); skipping its delta\n", name)
	}
}

// pctDelta renders the relative change, or "~" when the base is unusable.
func pctDelta(old, new float64) string {
	if old <= 0 {
		return "~"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

// allocsCell renders an allocs/op figure, or "-" when -benchmem was absent.
func allocsCell(v int64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

// allocsDelta renders the allocs/op change when both sides measured it.
func allocsDelta(old, new int64) string {
	if old < 0 || new < 0 {
		return "~"
	}
	return pctDelta(float64(old), float64(new))
}

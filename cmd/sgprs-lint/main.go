// sgprs-lint runs the determinism-discipline analyzers (internal/lint,
// DESIGN.md §14) over package patterns and fails on any finding — including
// a //sgprs:allow annotation that suppresses nothing. `make lint` and CI run
// it as a blocking gate:
//
//	go run ./cmd/sgprs-lint ./...
//
// Flags:
//
//	-list          print the analyzers and exit
//	-run a,b,...   run only the named analyzers (allows for the others
//	               are left unverified, not flagged)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sgprs/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "sgprs-lint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sgprs-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// Command sgprs-trace runs a short simulation with kernel tracing enabled
// and writes the execution timeline as Chrome trace JSON (open in
// chrome://tracing or https://ui.perfetto.dev) or CSV.
//
// Usage:
//
//	sgprs-trace -sched sgprs -contexts 51,51 -n 12 -horizon 0.5 -o trace.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"sgprs/internal/sim"
	"sgprs/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sgprs-trace: ")
	schedName := flag.String("sched", "sgprs", `scheduler: "sgprs" or "naive"`)
	contexts := flag.String("contexts", "34,34", "comma-separated per-context SM allocations")
	n := flag.Int("n", 8, "number of tasks")
	horizon := flag.Float64("horizon", 0.5, "simulated seconds (keep short: traces grow fast)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	out := flag.String("o", "trace.json", "output file (.json for Chrome trace, .csv for CSV)")
	flag.Parse()

	kind := sim.KindSGPRS
	switch *schedName {
	case "sgprs":
	case "naive":
		kind = sim.KindNaive
	default:
		log.Fatalf("unknown scheduler %q", *schedName)
	}
	pool, err := parsePool(*contexts)
	if err != nil {
		log.Fatal(err)
	}

	rec := trace.NewRecorder()
	res, err := sim.Run(sim.RunConfig{
		Kind:       kind,
		Name:       *schedName,
		ContextSMs: pool,
		NumTasks:   *n,
		HorizonSec: *horizon,
		WarmUpSec:  *horizon / 10,
		Seed:       *seed,
		Observer:   rec,
	})
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if strings.HasSuffix(*out, ".csv") {
		err = rec.WriteCSV(f)
	} else {
		err = rec.WriteChromeTrace(f)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d kernel spans to %s (run: %s)\n", len(rec.Spans()), *out, res.Summary)
}

func parsePool(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid SM allocation %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// Command sgprs-sim executes a single simulation run and prints its metrics:
// total FPS, deadline miss rate, response-time statistics, and device
// utilisation.
//
// Usage:
//
//	sgprs-sim -sched sgprs -contexts 51,51 -n 24 [-horizon 10] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"sgprs/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sgprs-sim: ")
	schedName := flag.String("sched", "sgprs", `scheduler: "sgprs" or "naive"`)
	contexts := flag.String("contexts", "34,34", "comma-separated per-context SM allocations")
	n := flag.Int("n", 8, "number of identical periodic ResNet18 tasks")
	fps := flag.Float64("fps", 30, "per-task frame rate")
	stages := flag.Int("stages", 6, "stages per task")
	horizon := flag.Float64("horizon", 10, "simulated seconds")
	warmup := flag.Float64("warmup", 1, "warm-up seconds excluded from metrics")
	seed := flag.Uint64("seed", 1, "simulation seed")
	stagger := flag.Bool("stagger", false, "stagger task release offsets across the period")
	flag.Parse()

	kind := sim.KindSGPRS
	switch *schedName {
	case "sgprs":
	case "naive":
		kind = sim.KindNaive
	default:
		log.Fatalf("unknown scheduler %q", *schedName)
	}
	pool, err := parsePool(*contexts)
	if err != nil {
		log.Fatal(err)
	}

	res, err := sim.Run(sim.RunConfig{
		Kind:       kind,
		Name:       *schedName,
		ContextSMs: pool,
		NumTasks:   *n,
		FPS:        *fps,
		Stages:     *stages,
		Stagger:    *stagger,
		HorizonSec: *horizon,
		WarmUpSec:  *warmup,
		Seed:       *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	s := res.Summary
	fmt.Printf("scheduler        %s\n", res.Name)
	fmt.Printf("contexts         %v SMs\n", pool)
	fmt.Printf("tasks            %d x ResNet18 @ %.0f fps, %d stages\n", res.Tasks, *fps, *stages)
	fmt.Printf("window           [%.1fs, %.1fs)\n", *warmup, *horizon)
	fmt.Printf("total FPS        %.1f\n", s.TotalFPS)
	fmt.Printf("deadline misses  %d / %d (DMR %.4f)\n", s.Missed, s.Released, s.DMR)
	fmt.Printf("completed        %d\n", s.Completed)
	fmt.Printf("response (ms)    mean %.2f  p50 %.2f  p99 %.2f  max %.2f\n",
		s.RespMeanMS, s.RespP50MS, s.RespP99MS, s.RespMaxMS)
	fmt.Printf("device util      %.1f%%\n", res.DeviceUtilization*100)
	fmt.Printf("energy           %.1f J (avg %.1f W, %.2f fps/W)\n",
		res.EnergyJoules, res.AvgPowerW, res.FPSPerWatt)
}

func parsePool(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid SM allocation %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// Command sgprs-profile runs the offline phase in isolation and prints the
// per-stage WCET and virtual-deadline table for a network — the inputs the
// online scheduler works from (paper Section IV-A).
//
// Usage:
//
//	sgprs-profile [-net resnet18] [-stages 6] [-sms 34] [-fps 30] [-margin 0.05]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"sgprs/internal/des"
	"sgprs/internal/dnn"
	"sgprs/internal/gpu"
	"sgprs/internal/profile"
	"sgprs/internal/rt"
	"sgprs/internal/sim"
	"sgprs/internal/speedup"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sgprs-profile: ")
	net := flag.String("net", "resnet18", "network: resnet18, vgg11, tinycnn, mlp")
	stages := flag.Int("stages", 6, "pipeline stage count")
	sms := flag.Int("sms", 34, "context SM allocation to profile on")
	fps := flag.Float64("fps", 30, "task frame rate (sets the deadline)")
	margin := flag.Float64("margin", 0.05, "WCET safety margin")
	flag.Parse()

	model := speedup.DefaultModel()
	graph, err := buildNet(*net, model)
	if err != nil {
		log.Fatal(err)
	}
	parts, err := dnn.Partition(graph, *stages)
	if err != nil {
		log.Fatal(err)
	}
	period := des.FromSeconds(1 / *fps)
	task, err := rt.NewTask(0, *net, graph, parts, period, period, 0)
	if err != nil {
		log.Fatal(err)
	}
	prof := profile.New(model, gpu.DefaultConfig())
	prof.Margin = *margin
	if err := prof.ProfileTask(task, *sms); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network %s: %d ops, %.1f single-SM ms, %.2f GMACs\n",
		graph.Name, len(graph.Ops), graph.TotalWorkMS(), float64(graph.TotalMACs())/1e9)
	fmt.Printf("profiled on %d SMs (margin %.0f%%), period/deadline %v\n\n", *sms, *margin*100, period)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "stage\tops\twork(ssm·ms)\tWCET\tvirtual deadline\tlevel\t")
	for j, st := range parts {
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t%v\t%v\t%v\t\n",
			j, st.Kernels(), st.WorkMS, task.StageWCET(j), task.VirtualDeadline(j), task.StageLevel(j))
	}
	fmt.Fprintf(tw, "total\t%d\t%.2f\t%v\t%v\t\t\n",
		len(graph.Ops), graph.TotalWorkMS(), task.WCET(), task.Deadline)
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nutilisation C/T = %.3f\n", task.Utilization())
}

func buildNet(name string, model *speedup.Model) (*dnn.Graph, error) {
	cm := dnn.DefaultCostModel()
	switch name {
	case "resnet18":
		return sim.ReferenceGraph(model), nil
	case "vgg11":
		return dnn.VGG11(cm), nil
	case "tinycnn":
		return dnn.TinyCNN(cm), nil
	case "mlp":
		return dnn.MLP(cm, 784, 512, 10), nil
	default:
		return nil, fmt.Errorf("unknown network %q", name)
	}
}

// Command sgprs-analyze runs the offline schedulability analysis for an
// identical-task configuration and compares the analytic predictions (pivot
// point, saturation FPS) against a short simulation. The verification sweep
// shares the offline cache with the direct profile below and reuses one run
// session per worker (streaming metrics, recycled jobs).
//
// Instead of hand-typed flags, -experiment <name> pulls the workload shape
// (frame rate, stages, context pool, peak task count) from a registered
// experiment's first SGPRS variant; -list enumerates the registry.
//
// Usage:
//
//	sgprs-analyze [-n 24] [-fps 30] [-stages 6] [-contexts 34,34] [-verify] [-jobs N]
//	sgprs-analyze -experiment oversubscription [-verify]
//	sgprs-analyze -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"sgprs/internal/analysis"
	"sgprs/internal/des"
	"sgprs/internal/dnn"
	"sgprs/internal/exp"
	"sgprs/internal/fault"
	"sgprs/internal/gpu"
	"sgprs/internal/memo"
	"sgprs/internal/profile"
	"sgprs/internal/rt"
	"sgprs/internal/runner"
	"sgprs/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sgprs-analyze: ")
	n := flag.Int("n", 24, "number of identical ResNet18 tasks")
	fps := flag.Float64("fps", 30, "per-task frame rate")
	stages := flag.Int("stages", 6, "stages per task")
	contexts := flag.String("contexts", "34,34", "context pool (for the verification run)")
	experiment := flag.String("experiment", "", "take the workload shape from a registered experiment (see -list)")
	list := flag.Bool("list", false, "list the experiment registry and exit")
	verify := flag.Bool("verify", false, "run a simulation sweep around the predicted pivot")
	jobs := flag.Int("jobs", 0, "parallel workers for the verification sweep (0 = all CPUs)")
	noCache := flag.Bool("no-offline-cache", false, "disable offline-phase memoization")
	faults := flag.String("faults", "", "fault-injection config for the verification sweep: inline JSON or a file path (the analysis itself stays fault-free)")
	flag.Parse()

	if *list {
		for _, s := range exp.List() {
			axes := make([]string, len(s.Axes))
			for i, a := range s.Axes {
				axes[i] = a.String()
			}
			fmt.Printf("%-18s %-34s %s\n", s.Name, exp.Summarize(s), s.Description)
			if len(axes) > 0 {
				fmt.Printf("%-18s   axes: %s\n", "", strings.Join(axes, " "))
			}
		}
		return
	}
	pool, err := parsePool(*contexts)
	if err != nil {
		log.Fatal(err)
	}
	if *experiment != "" {
		if pool, err = fromExperiment(*experiment, n, fps, stages); err != nil {
			log.Fatal(err)
		}
	}

	// sim.DefaultModel (not a fresh speedup.DefaultModel) so the direct
	// profile below and the verification sweep share cache entries: the
	// offline cache keys on model identity.
	model := sim.DefaultModel()
	dev := gpu.DefaultConfig()
	g := sim.ReferenceGraph(model)
	parts, err := dnn.Partition(g, *stages)
	if err != nil {
		log.Fatal(err)
	}
	period := des.FromSeconds(1 / *fps)
	task, err := rt.NewTask(0, "resnet18", g, parts, period, period, 0)
	if err != nil {
		log.Fatal(err)
	}
	// The analytic profile shares the offline cache with the verification
	// sweep below: the task shape is measured once for both.
	prof := profile.New(model, dev)
	if *noCache {
		if err := prof.ProfileTask(task, minOf(pool)); err != nil {
			log.Fatal(err)
		}
	} else if err := memo.Default().ProfileTasks(prof, []*rt.Task{task}, minOf(pool)); err != nil {
		log.Fatal(err)
	}
	load, err := analysis.FromTask(task)
	if err != nil {
		log.Fatal(err)
	}

	loads := make([]analysis.TaskLoad, *n)
	for i := range loads {
		loads[i] = load
	}
	rep := analysis.Analyze(loads, dev)
	fmt.Println(rep)

	pivot := analysis.PredictPivot(load, dev)
	satFPS := analysis.PredictSaturationFPS(load, dev)
	fmt.Printf("analytic pivot       %d tasks\n", pivot)
	fmt.Printf("analytic saturation  %.0f fps\n", satFPS)
	fmt.Printf("response @pivot      %v (deadline %v)\n",
		analysis.ResponseEstimate(load, dev, pivot), task.Deadline)

	if !*verify {
		if *faults != "" {
			log.Fatal("-faults applies to the verification sweep; add -verify")
		}
		return
	}
	fc, err := parseFaults(*faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nverification sweep (4 s simulated per point):")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	counts := []int{pivot - 2, pivot, pivot + 2}
	series, runErr := runner.SweepSeries(ctx, sim.RunConfig{
		Kind:       sim.KindSGPRS,
		Name:       "sgprs",
		ContextSMs: pool,
		NumTasks:   1,
		FPS:        *fps,
		Stages:     *stages,
		HorizonSec: 4,
		Faults:     fc,
	}, counts, runner.Options{Jobs: *jobs, NoOfflineCache: *noCache})
	// A failed point is reported with its coordinates; finished points
	// still print.
	if runErr != nil {
		log.Print(runErr)
	}
	for _, p := range series {
		fmt.Printf("  %2d tasks: %6.1f fps, %d misses",
			p.Tasks, p.Summary.TotalFPS, p.Summary.Missed)
		if ff := p.FastForward; ff.CyclesSkipped > 0 {
			fmt.Printf(" (fast-forward: %d cycles detected, %d skipped)",
				ff.CyclesDetected, ff.CyclesSkipped)
		}
		if f := p.Summary.Faults; f.Overruns > 0 || f.TransientFaults > 0 {
			fmt.Printf(" (faults: %d overruns, %d transients, %d recovered, %d skipped, %d killed)",
				f.Overruns, f.TransientFaults, f.Recoveries, f.SkippedJobs, f.KilledChains)
		}
		fmt.Println()
	}
	if runErr != nil {
		os.Exit(1)
	}
}

// fromExperiment resolves the analysis inputs from a registered
// experiment: the first SGPRS variant supplies frame rate, stage count,
// and context pool, and the task axis's largest value becomes the analyzed
// task count — so the analysis answers "is this experiment's heaviest
// point schedulable?".
func fromExperiment(name string, n *int, fps *float64, stages *int) ([]int, error) {
	spec, ok := exp.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q (registered: %s)", name, strings.Join(exp.Names(), ", "))
	}
	for _, v := range spec.Variants {
		if v.Kind != sim.KindSGPRS || len(v.ContextSMs) == 0 {
			continue
		}
		if v.FPS > 0 {
			*fps = v.FPS
		}
		if v.Stages > 0 {
			*stages = v.Stages
		}
		*n = v.NumTasks
		for _, a := range spec.Axes {
			if a.Kind == exp.AxisTasks {
				for _, c := range a.Values {
					if int(c) > *n {
						*n = int(c)
					}
				}
			}
		}
		fmt.Printf("experiment %q: analyzing variant %q at its peak load (%d tasks)\n\n", name, v.Name, *n)
		return append([]int(nil), v.ContextSMs...), nil
	}
	return nil, fmt.Errorf("experiment %q has no SGPRS variant with a context pool", name)
}

// parseFaults translates the -faults flag — inline JSON (recognised by its
// leading '{') or a file path — into a validated fault configuration; empty
// means none.
func parseFaults(arg string) (*fault.Config, error) {
	if arg == "" {
		return nil, nil
	}
	data := []byte(arg)
	if !strings.HasPrefix(strings.TrimSpace(arg), "{") {
		b, err := os.ReadFile(arg)
		if err != nil {
			return nil, fmt.Errorf("faults config: %w", err)
		}
		data = b
	}
	var fc fault.Config
	if err := json.Unmarshal(data, &fc); err != nil {
		return nil, fmt.Errorf("faults config: %w", err)
	}
	if err := fc.Validate(); err != nil {
		return nil, err
	}
	return &fc, nil
}

func parsePool(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid SM allocation %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func minOf(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

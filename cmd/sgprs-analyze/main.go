// Command sgprs-analyze runs the offline schedulability analysis for an
// identical-task configuration and compares the analytic predictions (pivot
// point, saturation FPS) against a short simulation. The verification sweep
// shares the offline cache with the direct profile below and reuses one run
// session per worker (streaming metrics, recycled jobs).
//
// Usage:
//
//	sgprs-analyze [-n 24] [-fps 30] [-stages 6] [-contexts 34,34] [-verify] [-jobs N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"sgprs/internal/analysis"
	"sgprs/internal/des"
	"sgprs/internal/dnn"
	"sgprs/internal/gpu"
	"sgprs/internal/memo"
	"sgprs/internal/profile"
	"sgprs/internal/rt"
	"sgprs/internal/runner"
	"sgprs/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sgprs-analyze: ")
	n := flag.Int("n", 24, "number of identical ResNet18 tasks")
	fps := flag.Float64("fps", 30, "per-task frame rate")
	stages := flag.Int("stages", 6, "stages per task")
	contexts := flag.String("contexts", "34,34", "context pool (for the verification run)")
	verify := flag.Bool("verify", false, "run a simulation sweep around the predicted pivot")
	jobs := flag.Int("jobs", 0, "parallel workers for the verification sweep (0 = all CPUs)")
	noCache := flag.Bool("no-offline-cache", false, "disable offline-phase memoization")
	flag.Parse()

	// sim.DefaultModel (not a fresh speedup.DefaultModel) so the direct
	// profile below and the verification sweep share cache entries: the
	// offline cache keys on model identity.
	model := sim.DefaultModel()
	dev := gpu.DefaultConfig()
	g := sim.ReferenceGraph(model)
	parts, err := dnn.Partition(g, *stages)
	if err != nil {
		log.Fatal(err)
	}
	period := des.FromSeconds(1 / *fps)
	task, err := rt.NewTask(0, "resnet18", g, parts, period, period, 0)
	if err != nil {
		log.Fatal(err)
	}
	pool, err := parsePool(*contexts)
	if err != nil {
		log.Fatal(err)
	}
	// The analytic profile shares the offline cache with the verification
	// sweep below: the task shape is measured once for both.
	prof := profile.New(model, dev)
	if *noCache {
		if err := prof.ProfileTask(task, minOf(pool)); err != nil {
			log.Fatal(err)
		}
	} else if err := memo.Default().ProfileTasks(prof, []*rt.Task{task}, minOf(pool)); err != nil {
		log.Fatal(err)
	}
	load, err := analysis.FromTask(task)
	if err != nil {
		log.Fatal(err)
	}

	loads := make([]analysis.TaskLoad, *n)
	for i := range loads {
		loads[i] = load
	}
	rep := analysis.Analyze(loads, dev)
	fmt.Println(rep)

	pivot := analysis.PredictPivot(load, dev)
	satFPS := analysis.PredictSaturationFPS(load, dev)
	fmt.Printf("analytic pivot       %d tasks\n", pivot)
	fmt.Printf("analytic saturation  %.0f fps\n", satFPS)
	fmt.Printf("response @pivot      %v (deadline %v)\n",
		analysis.ResponseEstimate(load, dev, pivot), task.Deadline)

	if !*verify {
		return
	}
	fmt.Println("\nverification sweep (4 s simulated per point):")
	counts := []int{pivot - 2, pivot, pivot + 2}
	series, runErr := runner.SweepSeries(sim.RunConfig{
		Kind:       sim.KindSGPRS,
		Name:       "sgprs",
		ContextSMs: pool,
		NumTasks:   1,
		FPS:        *fps,
		Stages:     *stages,
		HorizonSec: 4,
	}, counts, runner.Options{Jobs: *jobs, NoOfflineCache: *noCache})
	// A failed point is reported with its coordinates; finished points
	// still print.
	if runErr != nil {
		log.Print(runErr)
	}
	for _, p := range series {
		fmt.Printf("  %2d tasks: %6.1f fps, %d misses\n",
			p.Tasks, p.Summary.TotalFPS, p.Summary.Missed)
	}
	if runErr != nil {
		os.Exit(1)
	}
}

func parsePool(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid SM allocation %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func minOf(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

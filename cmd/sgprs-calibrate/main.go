// Command sgprs-calibrate documents and re-derives the simulator's
// calibration: it searches the device's aggregate gain cap (and reports the
// implied reference latency) so that the simulated SGPRS saturation
// throughput and pivot point land on chosen targets — by default the paper's
// 741 fps and pivot 24.
//
// This is the methodology artifact behind DESIGN.md §2: absolute numbers in
// this repository are calibrated, and this tool shows exactly how.
//
// The calibration grid (gain cap × task count) is embarrassingly parallel
// and fans out across a worker pool (-jobs, default all CPUs) as one flat
// job list; a failed grid point is reported with its coordinates and only
// its own cap row is dropped.
//
// Usage:
//
//	sgprs-calibrate [-target-fps 741] [-target-pivot 24] [-scenario 2] [-jobs N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"sgprs/internal/gpu"
	"sgprs/internal/metrics"
	"sgprs/internal/runner"
	"sgprs/internal/sim"
	"sgprs/internal/speedup"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sgprs-calibrate: ")
	targetFPS := flag.Float64("target-fps", 741, "saturation FPS to calibrate toward")
	targetPivot := flag.Int("target-pivot", 24, "pivot point to calibrate toward")
	scenario := flag.Int("scenario", 2, "paper scenario to calibrate on")
	osLevel := flag.Float64("os", 1.5, "over-subscription level of the calibration variant")
	jobs := flag.Int("jobs", 0, "parallel workers (0 = all CPUs)")
	noCache := flag.Bool("no-offline-cache", false, "disable offline-phase memoization")
	flag.Parse()

	np, err := sim.ScenarioContexts(*scenario)
	if err != nil {
		log.Fatal(err)
	}
	pool := sim.ContextPool(np, *osLevel, speedup.DeviceSMs)

	fmt.Printf("calibrating AggregateGainCap for sat≈%.0f fps, pivot≈%d (scenario %d, %.1fx, pool %v)\n\n",
		*targetFPS, *targetPivot, *scenario, *osLevel, pool)
	fmt.Printf("%8s %10s %8s %8s\n", "cap", "sat fps", "pivot", "score")

	type point struct {
		cap   float64
		fps   float64
		pivot int
		score float64
	}
	best := point{score: 1e18}
	counts := []int{*targetPivot - 2, *targetPivot - 1, *targetPivot, *targetPivot + 1, *targetPivot + 2, *targetPivot + 4}

	// One flat grid: every (cap, count) pair is an independent run.
	var caps []float64
	var bases []sim.RunConfig
	for cap := 20.0; cap <= 26.5; cap += 0.5 {
		gcfg := gpu.DefaultConfig()
		gcfg.AggregateGainCap = cap
		caps = append(caps, cap)
		bases = append(bases, sim.RunConfig{
			Kind:       sim.KindSGPRS,
			Name:       fmt.Sprintf("cap=%.1f", cap),
			ContextSMs: pool,
			NumTasks:   1,
			HorizonSec: 4,
			GPU:        gcfg,
		})
	}
	// The offline cache collapses the whole grid to one WCET profile: the
	// gain cap under calibration cannot affect an isolated single-kernel
	// measurement, so it is excluded from the profile key and every cap
	// row shares the same profiled task shape.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	grid, order, gridErr := runner.SweepGrid(ctx, bases, counts, runner.Options{Jobs: *jobs, NoOfflineCache: *noCache})
	if gridErr != nil {
		log.Print(gridErr)
	}
	for i, cap := range caps {
		series := grid[order[i]]
		if len(series) != len(counts) { // some points failed
			fmt.Printf("%8.1f %10s %8s %8s\n", cap, "-", "-", "-")
			continue
		}
		fps := metrics.SaturationFPS(series)
		pivot := metrics.PivotPoint(series)
		// Relative FPS error plus one "FPS-percent" per pivot step off.
		score := abs(fps-*targetFPS) / *targetFPS * 100
		score += abs(float64(pivot - *targetPivot))
		fmt.Printf("%8.1f %10.1f %8d %8.2f\n", cap, fps, pivot, score)
		if score < best.score {
			best = point{cap: cap, fps: fps, pivot: pivot, score: score}
		}
	}

	if best.score == 1e18 {
		log.Print("no cap row completed; cannot recommend a calibration")
		os.Exit(1)
	}
	fmt.Printf("\nbest cap: %.1f (sat %.1f fps, pivot %d)\n", best.cap, best.fps, best.pivot)
	fmt.Printf("shipping default: %.1f (reference latency %.2f ms)\n",
		gpu.DefaultConfig().AggregateGainCap, sim.ReferenceLatencyMS)
	fmt.Println("\nNote: the reference latency pins absolute time (dnn.Calibrate); the cap")
	fmt.Println("pins aggregate throughput. Together they fix saturation FPS ≈ 1000·G/W,")
	fmt.Println("with W the calibrated per-inference single-SM work (~32.6 ssm·ms).")
	// Failed grid points excluded caps from the search: the recommendation
	// above is incomplete, so the exit status must say so.
	if gridErr != nil {
		os.Exit(1)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Command sgprs-sweep regenerates the paper's Figures 3 and 4: total FPS and
// deadline miss rate versus task count, for the naive baseline and SGPRS at
// over-subscription levels 1.0/1.5/2.0, in Scenario 1 (two contexts) or
// Scenario 2 (three contexts).
//
// Usage:
//
//	sgprs-sweep -scenario 1 [-tasks 1..30] [-horizon 10] [-seed 1] [-csv]
//	sgprs-sweep -config experiment.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"sgprs/internal/config"
	"sgprs/internal/metrics"
	"sgprs/internal/report"
	"sgprs/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sgprs-sweep: ")
	scenario := flag.Int("scenario", 1, "paper scenario: 1 (two contexts) or 2 (three contexts)")
	tasks := flag.String("tasks", "1..30", "task counts: \"a..b\" range or comma-separated list")
	horizon := flag.Float64("horizon", 10, "simulated seconds per point")
	seed := flag.Uint64("seed", 1, "simulation seed")
	csvOut := flag.Bool("csv", false, "emit long-form CSV instead of tables")
	cfgPath := flag.String("config", "", "experiment JSON (overrides other flags)")
	flag.Parse()

	var scen *report.Scenario
	if *cfgPath != "" {
		s, err := runFromConfig(*cfgPath)
		if err != nil {
			log.Fatal(err)
		}
		scen = s
	} else {
		counts, err := parseCounts(*tasks)
		if err != nil {
			log.Fatal(err)
		}
		run, err := sim.RunScenario(*scenario, counts, *horizon, *seed)
		if err != nil {
			log.Fatal(err)
		}
		np, _ := sim.ScenarioContexts(*scenario)
		scen = &report.Scenario{
			Title:      fmt.Sprintf("Scenario %d (%d contexts) — Figures %da/%db analogue", *scenario, np, *scenario+2, *scenario+2),
			TaskCounts: run.TaskCounts,
			Series:     run.Series,
			Order:      run.Order,
		}
	}

	var err error
	if *csvOut {
		err = scen.WriteCSV(os.Stdout)
	} else {
		err = scen.WriteText(os.Stdout)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func runFromConfig(path string) (*report.Scenario, error) {
	exp, err := config.Load(path)
	if err != nil {
		return nil, err
	}
	bases, err := exp.RunConfigs()
	if err != nil {
		return nil, err
	}
	scen := &report.Scenario{
		Title:      fmt.Sprintf("Experiment %s", path),
		TaskCounts: exp.TaskCounts,
		Series:     map[string][]metrics.Point{},
	}
	for _, base := range bases {
		series, err := sim.SweepSeries(base, exp.TaskCounts)
		if err != nil {
			return nil, err
		}
		scen.Series[base.Name] = series
		scen.Order = append(scen.Order, base.Name)
	}
	return scen, nil
}

func parseCounts(s string) ([]int, error) {
	if a, b, ok := strings.Cut(s, ".."); ok {
		lo, err1 := strconv.Atoi(strings.TrimSpace(a))
		hi, err2 := strconv.Atoi(strings.TrimSpace(b))
		if err1 != nil || err2 != nil || lo < 1 || hi < lo {
			return nil, fmt.Errorf("invalid range %q", s)
		}
		var out []int
		for n := lo; n <= hi; n++ {
			out = append(out, n)
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid task count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// Command sgprs-sweep runs declarative experiments: the paper's Figures 3
// and 4 scenario sweeps, any experiment in the process-wide registry
// (-experiment, enumerate with -list), or a JSON experiment file (-config).
//
// Runs fan out across a worker pool (-jobs, default all CPUs); results are
// bit-identical to a sequential run for any worker count. A failing point
// is reported with its (variant, task count) on stderr and the sweep keeps
// going: every finished point is still printed, and the exit status is
// non-zero. Interrupting the sweep (Ctrl-C) cancels cleanly: in-flight
// points drain, finished points print, undispatched points are attributed
// to the cancellation.
//
// The offline phase (graph calibration, WCET profiling) is memoized across
// the sweep's runs — bit-identical to re-profiling, just not redundant.
// -no-offline-cache disables the cache; -offline-stats reports its traffic.
// Each worker additionally reuses one run session (engine, device, job pool,
// task structures) across every point it drains, and metrics stream as each
// run progresses, so memory stays flat however long the -horizon.
//
// Open-loop traffic rides on any of these: -arrival swaps the closed-loop
// periodic releases for a stochastic process (poisson, bursty, ...), -trace
// replays a recorded arrival log, -rate sweeps the intensity as an extra
// axis, and -slo reports a response-time objective's hit rate alongside the
// overload metrics (drop rate, p99/p999, backlog depth).
//
// Fleet runs (DESIGN.md §15) layer on the same way: -devices puts every
// variant on an N-device fleet behind the dispatcher, -placement picks the
// chain-homing policy, -failover the device-crash policy, and -admit the
// degraded-capacity admission ceiling; device failure windows ride in the
// -faults block's device_faults list.
//
// Usage:
//
//	sgprs-sweep -list
//	sgprs-sweep -experiment jitter-ladder [-tasks 1..30] [-horizon 10] [-seed 1] [-jobs N] [-csv] [-progress]
//	sgprs-sweep -experiment overload-tail [-rate 1,1.5,2] [-slo 33.3]
//	sgprs-sweep -experiment fault-resilience [-faults '{"transient":{"prob":0.05,"policy":"retry"}}']
//	sgprs-sweep -experiment fleet-failover [-failover retry] [-admit 0.8]
//	sgprs-sweep -scenario 2 -devices 3 -placement context-fit -faults '{"device_faults":[{"device":1,"start_sec":3,"restart_sec":5}]}'
//	sgprs-sweep -scenario 1 [-arrival poisson] [-arrival-period 8] [-trace arrivals.csv] [-tasks 1..30] [-horizon 10] [-seed 1] [-jobs N] [-csv] [-progress] [-no-offline-cache] [-offline-stats]
//	sgprs-sweep -config experiment.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"

	"sgprs/internal/cluster"
	"sgprs/internal/config"
	"sgprs/internal/exp"
	"sgprs/internal/fault"
	"sgprs/internal/memo"
	"sgprs/internal/report"
	"sgprs/internal/rt"
	"sgprs/internal/runner"
	"sgprs/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sgprs-sweep: ")
	scenario := flag.Int("scenario", 1, "paper scenario: 1 (two contexts) or 2 (three contexts)")
	experiment := flag.String("experiment", "", "run a registered experiment by name (see -list)")
	list := flag.Bool("list", false, "list the experiment registry and exit")
	tasks := flag.String("tasks", "1..30", "task counts: \"a..b\" range or comma-separated list")
	horizon := flag.Float64("horizon", 10, "simulated seconds per point")
	seed := flag.Uint64("seed", 1, "simulation seed")
	jobs := flag.Int("jobs", 0, "parallel workers (0 = all CPUs)")
	progress := flag.Bool("progress", false, "report per-point completion on stderr")
	csvOut := flag.Bool("csv", false, "emit long-form CSV instead of tables")
	cfgPath := flag.String("config", "", "experiment JSON (overrides other flags)")
	noCache := flag.Bool("no-offline-cache", false, "disable offline-phase memoization (re-profile every run)")
	cacheStats := flag.Bool("offline-stats", false, "report offline-cache hit/miss counts on stderr")
	arrival := flag.String("arrival", "", "open-loop arrival process: periodic|poisson|bursty|diurnal, optionally kind:rate (arrivals/s per task, 0 = natural rate; mmpp and full control via -config)")
	arrivalPeriod := flag.Float64("arrival-period", 0, "cycle length in seconds for bursty/diurnal -arrival processes (0 = defaults: 5 s diurnal cycle, 1 s on + 1 s off bursty windows); bursty splits the period into equal halves")
	tracePath := flag.String("trace", "", "replay a trace file (.csv or .json) as the arrival process (overrides -arrival)")
	rates := flag.String("rate", "", "arrival-rate axis: comma-separated intensity multipliers (e.g. 1,1.25,1.5); needs -arrival, -trace, or an experiment with arrivals")
	slo := flag.Float64("slo", 0, "response-time SLO in milliseconds (0 = none); reported as SLO hit rate")
	faults := flag.String("faults", "", "fault-injection config applied to every variant: inline JSON ('{\"transient\":{\"prob\":0.05}}') or a file path")
	devices := flag.Int("devices", 0, "fleet size: run every variant on N devices behind the dispatcher (0 = leave the spec as declared; 1 = force single-device)")
	placement := flag.String("placement", "", "fleet chain-homing policy: bin-pack|context-fit|load-steal (needs a fleet: -devices > 1 or a fleet experiment)")
	failover := flag.String("failover", "", "device-crash policy: migrate|retry|shed (needs a fleet)")
	admit := flag.Float64("admit", -1, "fleet admission ceiling: shed new releases while surviving capacity is below this utilization fraction (-1 = leave the spec as declared)")
	flag.Parse()

	if *list {
		if err := writeRegistry(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Ctrl-C / SIGTERM cancels the sweep: no new points are dispatched,
	// in-flight points drain, and everything finished still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := runner.Options{Jobs: *jobs, NoOfflineCache: *noCache}
	if *progress {
		opt.Progress = func(done, total int, r runner.JobResult) {
			log.Printf("[%d/%d] %s n=%d", done, total, r.Job.Variant, r.Job.Tasks)
		}
	}

	spec, err := resolveSpec(*cfgPath, *experiment, *scenario, *tasks, *horizon, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := applyTraffic(spec, *arrival, *tracePath, *rates, *slo, *arrivalPeriod); err != nil {
		log.Fatal(err)
	}
	if err := applyFaults(spec, *faults); err != nil {
		log.Fatal(err)
	}
	if err := applyFleet(spec, *devices, *placement, *failover, *admit); err != nil {
		log.Fatal(err)
	}

	rs, runErr := exp.Run(ctx, spec, opt)
	// Per-job failures (and cancellation) are surfaced but never discard
	// finished points.
	if runErr != nil {
		log.Print(runErr)
	}
	if *cacheStats {
		log.Print(memo.Default().Stats())
	}
	if rs == nil {
		os.Exit(1)
	}

	title := spec.Name
	if spec.Description != "" {
		title += " — " + spec.Description
	}
	scen := &report.Scenario{
		Title:      title,
		TaskCounts: rs.TaskCounts,
		Series:     rs.Series(),
		Order:      rs.Order,
	}
	if *csvOut {
		err = scen.WriteCSV(os.Stdout)
	} else {
		err = scen.WriteText(os.Stdout)
	}
	if err != nil {
		log.Fatal(err)
	}
	if runErr != nil {
		os.Exit(1)
	}
}

// resolveSpec picks the experiment to run: a JSON file, a registry entry
// (with explicit -tasks/-horizon/-seed flags overriding the spec), or the
// classic scenario flags compiled into the equivalent spec.
func resolveSpec(cfgPath, experiment string, scenario int, tasks string, horizon float64, seed uint64) (*exp.Spec, error) {
	if cfgPath != "" {
		e, err := config.Load(cfgPath)
		if err != nil {
			return nil, err
		}
		return e.Spec(cfgPath)
	}
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if experiment != "" {
		spec, ok := exp.Lookup(experiment)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (registered: %s)",
				experiment, strings.Join(exp.Names(), ", "))
		}
		// Explicit flags override the registered defaults on this
		// run's clone; the registry itself is untouched.
		if set["tasks"] {
			counts, err := parseCounts(tasks)
			if err != nil {
				return nil, err
			}
			replaced := false
			for i := range spec.Axes {
				if spec.Axes[i].Kind == exp.AxisTasks {
					spec.Axes[i] = exp.Tasks(counts...)
					replaced = true
				}
			}
			if !replaced {
				spec.Axes = append(spec.Axes, exp.Tasks(counts...))
			}
		}
		if set["horizon"] {
			// A horizon axis would overwrite the per-variant field
			// each grid cell; collapse it to the override value.
			for i := range spec.Axes {
				if spec.Axes[i].Kind == exp.AxisHorizonSec {
					spec.Axes[i] = exp.HorizonSec(horizon)
				}
			}
			for i := range spec.Variants {
				spec.Variants[i].HorizonSec = horizon
			}
		}
		if set["seed"] {
			for i := range spec.Variants {
				spec.Variants[i].Seed = seed
			}
		}
		return spec, nil
	}
	counts, err := parseCounts(tasks)
	if err != nil {
		return nil, err
	}
	return exp.Scenario(scenario, counts, horizon, seed)
}

// applyTraffic overlays the open-loop traffic flags on the resolved spec:
// the arrival process (or trace) on every variant, the SLO, and the
// arrival-rate axis. Empty flags leave the spec untouched, so registered
// experiments with their own arrivals run as declared.
func applyTraffic(spec *exp.Spec, arrival, tracePath, rates string, sloMS, periodSec float64) error {
	var proc workload.Arrival
	switch {
	case tracePath != "":
		data, err := workload.LoadTrace(tracePath)
		if err != nil {
			return err
		}
		proc = workload.Trace{Data: data}
	case arrival != "":
		p, err := parseArrival(arrival, periodSec)
		if err != nil {
			return err
		}
		proc = p
	}
	for i := range spec.Variants {
		if proc != nil {
			spec.Variants[i].Arrival = proc
		}
		if sloMS > 0 {
			spec.Variants[i].SLOMS = sloMS
		}
	}
	if rates != "" {
		var factors []float64
		for _, part := range strings.Split(rates, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return fmt.Errorf("invalid rate factor %q", part)
			}
			factors = append(factors, v)
		}
		replaced := false
		for i := range spec.Axes {
			if spec.Axes[i].Kind == exp.AxisRate {
				spec.Axes[i] = exp.Rate(factors...)
				replaced = true
			}
		}
		if !replaced {
			spec.Axes = append(spec.Axes, exp.Rate(factors...))
		}
	}
	return nil
}

// applyFaults overlays the -faults flag on every variant of the resolved
// spec: the argument is either inline JSON (recognised by its leading '{')
// or a path to a JSON file holding a fault.Config. Empty leaves the spec
// untouched, so registered experiments with their own fault blocks run as
// declared. Each variant gets its own deep copy — experiment axes mutate
// per-cell clones and must never reach a shared block.
func applyFaults(spec *exp.Spec, arg string) error {
	if arg == "" {
		return nil
	}
	data := []byte(arg)
	if !strings.HasPrefix(strings.TrimSpace(arg), "{") {
		b, err := os.ReadFile(arg)
		if err != nil {
			return fmt.Errorf("faults config: %w", err)
		}
		data = b
	}
	var fc fault.Config
	if err := json.Unmarshal(data, &fc); err != nil {
		return fmt.Errorf("faults config: %w", err)
	}
	if err := fc.Validate(); err != nil {
		return err
	}
	for i := range spec.Variants {
		spec.Variants[i].Faults = fc.Clone()
	}
	return nil
}

// applyFleet overlays the fleet flags on every variant of the resolved spec
// (DESIGN.md §15). Zero values leave the spec untouched, so fleet experiments
// (fleet-failover, fleet-shootout) run as declared; -devices 1 explicitly
// collapses a fleet spec back to single-device runs, clearing the fleet-only
// options so sim.Normalize accepts the result. A devices axis keeps priority
// over the flag — the axis overwrites the field per grid cell anyway.
func applyFleet(spec *exp.Spec, devices int, placement, failover string, admit float64) error {
	if devices == 0 && placement == "" && failover == "" && admit < 0 {
		return nil
	}
	pl, err := cluster.ParsePlacement(placement)
	if err != nil {
		return err
	}
	fo, err := rt.ParseFailoverPolicy(failover)
	if err != nil {
		return err
	}
	for i := range spec.Variants {
		v := &spec.Variants[i]
		if devices != 0 {
			v.Devices = devices
		}
		if devices == 1 {
			v.Placement, v.Failover, v.AdmitCeiling = 0, 0, 0
			v.Faults = v.Faults.Clone()
			if v.Faults != nil {
				v.Faults.DeviceFaults = nil
			}
			continue
		}
		if placement != "" {
			v.Placement = pl
		}
		if failover != "" {
			v.Failover = fo
		}
		if admit >= 0 {
			v.AdmitCeiling = admit
		}
	}
	return nil
}

// parseArrival translates the -arrival flag ("poisson", "poisson:45",
// "bursty:60", ...) into a process. periodSec is the -arrival-period flag:
// the diurnal cycle length, or the bursty on+off window pair (split into
// equal halves); zero keeps the historical defaults (5 s diurnal cycle,
// 1 s + 1 s bursty windows). Richer shapes (MMPP, custom windows) go
// through a -config file's arrival block.
func parseArrival(s string, periodSec float64) (workload.Arrival, error) {
	kind, rest, _ := strings.Cut(s, ":")
	rate := 0.0
	if rest != "" {
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return nil, fmt.Errorf("invalid arrival rate %q", rest)
		}
		rate = v
	}
	if periodSec < 0 {
		return nil, fmt.Errorf("invalid arrival period %v (must be >= 0)", periodSec)
	}
	k := strings.TrimSpace(kind)
	if periodSec > 0 && k != "bursty" && k != "diurnal" {
		return nil, fmt.Errorf("-arrival-period applies only to bursty and diurnal arrivals, not %q", k)
	}
	switch k {
	case "periodic":
		return workload.Periodic{Rate: rate}, nil
	case "poisson":
		return workload.Poisson{Rate: rate}, nil
	case "bursty":
		on := 1.0
		if periodSec > 0 {
			on = periodSec / 2
		}
		return workload.Bursty{OnSec: on, OffSec: on, Rate: rate}, nil
	case "diurnal":
		period := 5.0
		if periodSec > 0 {
			period = periodSec
		}
		return workload.Diurnal{PeriodSec: period, MaxRate: rate}, nil
	default:
		return nil, fmt.Errorf("unknown arrival %q (want periodic, poisson, bursty, or diurnal; mmpp and traces via -config/-trace)", kind)
	}
}

// writeRegistry renders the experiment registry as an aligned table,
// including each experiment's axes with their value ranges.
func writeRegistry(w *os.File) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "experiment\tshape\taxes\tdescription\t\n")
	for _, s := range exp.List() {
		axes := make([]string, len(s.Axes))
		for i, a := range s.Axes {
			axes[i] = a.String()
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t\n",
			s.Name, exp.Summarize(s), strings.Join(axes, " "), s.Description)
	}
	return tw.Flush()
}

func parseCounts(s string) ([]int, error) {
	if a, b, ok := strings.Cut(s, ".."); ok {
		lo, err1 := strconv.Atoi(strings.TrimSpace(a))
		hi, err2 := strconv.Atoi(strings.TrimSpace(b))
		if err1 != nil || err2 != nil || lo < 1 || hi < lo {
			return nil, fmt.Errorf("invalid range %q", s)
		}
		var out []int
		for n := lo; n <= hi; n++ {
			out = append(out, n)
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid task count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

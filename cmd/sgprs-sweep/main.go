// Command sgprs-sweep runs declarative experiments: the paper's Figures 3
// and 4 scenario sweeps, any experiment in the process-wide registry
// (-experiment, enumerate with -list), or a JSON experiment file (-config).
//
// Runs fan out across a worker pool (-jobs, default all CPUs); results are
// bit-identical to a sequential run for any worker count. A failing point
// is reported with its (variant, task count) on stderr and the sweep keeps
// going: every finished point is still printed, and the exit status is
// non-zero. Interrupting the sweep (Ctrl-C) cancels cleanly: in-flight
// points drain, finished points print, undispatched points are attributed
// to the cancellation.
//
// The offline phase (graph calibration, WCET profiling) is memoized across
// the sweep's runs — bit-identical to re-profiling, just not redundant.
// -no-offline-cache disables the cache; -offline-stats reports its traffic.
// Each worker additionally reuses one run session (engine, device, job pool,
// task structures) across every point it drains, and metrics stream as each
// run progresses, so memory stays flat however long the -horizon.
//
// Usage:
//
//	sgprs-sweep -list
//	sgprs-sweep -experiment jitter-ladder [-tasks 1..30] [-horizon 10] [-seed 1] [-jobs N] [-csv] [-progress]
//	sgprs-sweep -scenario 1 [-tasks 1..30] [-horizon 10] [-seed 1] [-jobs N] [-csv] [-progress] [-no-offline-cache] [-offline-stats]
//	sgprs-sweep -config experiment.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"

	"sgprs/internal/config"
	"sgprs/internal/exp"
	"sgprs/internal/memo"
	"sgprs/internal/report"
	"sgprs/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sgprs-sweep: ")
	scenario := flag.Int("scenario", 1, "paper scenario: 1 (two contexts) or 2 (three contexts)")
	experiment := flag.String("experiment", "", "run a registered experiment by name (see -list)")
	list := flag.Bool("list", false, "list the experiment registry and exit")
	tasks := flag.String("tasks", "1..30", "task counts: \"a..b\" range or comma-separated list")
	horizon := flag.Float64("horizon", 10, "simulated seconds per point")
	seed := flag.Uint64("seed", 1, "simulation seed")
	jobs := flag.Int("jobs", 0, "parallel workers (0 = all CPUs)")
	progress := flag.Bool("progress", false, "report per-point completion on stderr")
	csvOut := flag.Bool("csv", false, "emit long-form CSV instead of tables")
	cfgPath := flag.String("config", "", "experiment JSON (overrides other flags)")
	noCache := flag.Bool("no-offline-cache", false, "disable offline-phase memoization (re-profile every run)")
	cacheStats := flag.Bool("offline-stats", false, "report offline-cache hit/miss counts on stderr")
	flag.Parse()

	if *list {
		if err := writeRegistry(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Ctrl-C / SIGTERM cancels the sweep: no new points are dispatched,
	// in-flight points drain, and everything finished still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := runner.Options{Jobs: *jobs, NoOfflineCache: *noCache}
	if *progress {
		opt.Progress = func(done, total int, r runner.JobResult) {
			log.Printf("[%d/%d] %s n=%d", done, total, r.Job.Variant, r.Job.Tasks)
		}
	}

	spec, err := resolveSpec(*cfgPath, *experiment, *scenario, *tasks, *horizon, *seed)
	if err != nil {
		log.Fatal(err)
	}

	rs, runErr := exp.Run(ctx, spec, opt)
	// Per-job failures (and cancellation) are surfaced but never discard
	// finished points.
	if runErr != nil {
		log.Print(runErr)
	}
	if *cacheStats {
		log.Print(memo.Default().Stats())
	}
	if rs == nil {
		os.Exit(1)
	}

	title := spec.Name
	if spec.Description != "" {
		title += " — " + spec.Description
	}
	scen := &report.Scenario{
		Title:      title,
		TaskCounts: rs.TaskCounts,
		Series:     rs.Series(),
		Order:      rs.Order,
	}
	if *csvOut {
		err = scen.WriteCSV(os.Stdout)
	} else {
		err = scen.WriteText(os.Stdout)
	}
	if err != nil {
		log.Fatal(err)
	}
	if runErr != nil {
		os.Exit(1)
	}
}

// resolveSpec picks the experiment to run: a JSON file, a registry entry
// (with explicit -tasks/-horizon/-seed flags overriding the spec), or the
// classic scenario flags compiled into the equivalent spec.
func resolveSpec(cfgPath, experiment string, scenario int, tasks string, horizon float64, seed uint64) (*exp.Spec, error) {
	if cfgPath != "" {
		e, err := config.Load(cfgPath)
		if err != nil {
			return nil, err
		}
		return e.Spec(cfgPath)
	}
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if experiment != "" {
		spec, ok := exp.Lookup(experiment)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (registered: %s)",
				experiment, strings.Join(exp.Names(), ", "))
		}
		// Explicit flags override the registered defaults on this
		// run's clone; the registry itself is untouched.
		if set["tasks"] {
			counts, err := parseCounts(tasks)
			if err != nil {
				return nil, err
			}
			replaced := false
			for i := range spec.Axes {
				if spec.Axes[i].Kind == exp.AxisTasks {
					spec.Axes[i] = exp.Tasks(counts...)
					replaced = true
				}
			}
			if !replaced {
				spec.Axes = append(spec.Axes, exp.Tasks(counts...))
			}
		}
		if set["horizon"] {
			// A horizon axis would overwrite the per-variant field
			// each grid cell; collapse it to the override value.
			for i := range spec.Axes {
				if spec.Axes[i].Kind == exp.AxisHorizonSec {
					spec.Axes[i] = exp.HorizonSec(horizon)
				}
			}
			for i := range spec.Variants {
				spec.Variants[i].HorizonSec = horizon
			}
		}
		if set["seed"] {
			for i := range spec.Variants {
				spec.Variants[i].Seed = seed
			}
		}
		return spec, nil
	}
	counts, err := parseCounts(tasks)
	if err != nil {
		return nil, err
	}
	return exp.Scenario(scenario, counts, horizon, seed)
}

// writeRegistry renders the experiment registry as an aligned table.
func writeRegistry(w *os.File) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "experiment\tshape\tdescription\t\n")
	for _, s := range exp.List() {
		fmt.Fprintf(tw, "%s\t%s\t%s\t\n", s.Name, exp.Summarize(s), s.Description)
	}
	return tw.Flush()
}

func parseCounts(s string) ([]int, error) {
	if a, b, ok := strings.Cut(s, ".."); ok {
		lo, err1 := strconv.Atoi(strings.TrimSpace(a))
		hi, err2 := strconv.Atoi(strings.TrimSpace(b))
		if err1 != nil || err2 != nil || lo < 1 || hi < lo {
			return nil, fmt.Errorf("invalid range %q", s)
		}
		var out []int
		for n := lo; n <= hi; n++ {
			out = append(out, n)
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid task count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

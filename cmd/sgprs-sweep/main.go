// Command sgprs-sweep regenerates the paper's Figures 3 and 4: total FPS and
// deadline miss rate versus task count, for the naive baseline and SGPRS at
// over-subscription levels 1.0/1.5/2.0, in Scenario 1 (two contexts) or
// Scenario 2 (three contexts).
//
// Runs fan out across a worker pool (-jobs, default all CPUs); results are
// bit-identical to a sequential run for any worker count. A failing point
// is reported with its (variant, task count) on stderr and the sweep keeps
// going: every finished point is still printed, and the exit status is
// non-zero.
//
// The offline phase (graph calibration, WCET profiling) is memoized across
// the sweep's runs — bit-identical to re-profiling, just not redundant.
// -no-offline-cache disables the cache; -offline-stats reports its traffic.
// Each worker additionally reuses one run session (engine, device, job pool,
// task structures) across every point it drains, and metrics stream as each
// run progresses, so memory stays flat however long the -horizon.
//
// Usage:
//
//	sgprs-sweep -scenario 1 [-tasks 1..30] [-horizon 10] [-seed 1] [-jobs N] [-csv] [-progress] [-no-offline-cache] [-offline-stats]
//	sgprs-sweep -config experiment.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"sgprs/internal/config"
	"sgprs/internal/memo"
	"sgprs/internal/report"
	"sgprs/internal/runner"
	"sgprs/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sgprs-sweep: ")
	scenario := flag.Int("scenario", 1, "paper scenario: 1 (two contexts) or 2 (three contexts)")
	tasks := flag.String("tasks", "1..30", "task counts: \"a..b\" range or comma-separated list")
	horizon := flag.Float64("horizon", 10, "simulated seconds per point")
	seed := flag.Uint64("seed", 1, "simulation seed")
	jobs := flag.Int("jobs", 0, "parallel workers (0 = all CPUs)")
	progress := flag.Bool("progress", false, "report per-point completion on stderr")
	csvOut := flag.Bool("csv", false, "emit long-form CSV instead of tables")
	cfgPath := flag.String("config", "", "experiment JSON (overrides other flags)")
	noCache := flag.Bool("no-offline-cache", false, "disable offline-phase memoization (re-profile every run)")
	cacheStats := flag.Bool("offline-stats", false, "report offline-cache hit/miss counts on stderr")
	flag.Parse()

	opt := runner.Options{Jobs: *jobs, NoOfflineCache: *noCache}
	if *progress {
		opt.Progress = func(done, total int, r runner.JobResult) {
			log.Printf("[%d/%d] %s n=%d", done, total, r.Job.Variant, r.Job.Tasks)
		}
	}

	var scen *report.Scenario
	var runErr error
	if *cfgPath != "" {
		scen, runErr = runFromConfig(*cfgPath, opt)
	} else {
		counts, err := parseCounts(*tasks)
		if err != nil {
			log.Fatal(err)
		}
		var run *sim.ScenarioRun
		run, runErr = runner.RunScenario(*scenario, counts, *horizon, *seed, opt)
		if run != nil {
			np, _ := sim.ScenarioContexts(*scenario)
			scen = &report.Scenario{
				Title:      fmt.Sprintf("Scenario %d (%d contexts) — Figures %da/%db analogue", *scenario, np, *scenario+2, *scenario+2),
				TaskCounts: run.TaskCounts,
				Series:     run.Series,
				Order:      run.Order,
			}
		}
	}
	// Per-job failures are surfaced but never discard finished points.
	if runErr != nil {
		log.Print(runErr)
	}
	if *cacheStats {
		log.Print(memo.Default().Stats())
	}
	if scen == nil {
		os.Exit(1)
	}

	var err error
	if *csvOut {
		err = scen.WriteCSV(os.Stdout)
	} else {
		err = scen.WriteText(os.Stdout)
	}
	if err != nil {
		log.Fatal(err)
	}
	if runErr != nil {
		os.Exit(1)
	}
}

func runFromConfig(path string, opt runner.Options) (*report.Scenario, error) {
	exp, err := config.Load(path)
	if err != nil {
		return nil, err
	}
	bases, err := exp.RunConfigs()
	if err != nil {
		return nil, err
	}
	series, order, runErr := runner.SweepGrid(bases, exp.TaskCounts, opt)
	return &report.Scenario{
		Title:      fmt.Sprintf("Experiment %s", path),
		TaskCounts: exp.TaskCounts,
		Series:     series,
		Order:      order,
	}, runErr
}

func parseCounts(s string) ([]int, error) {
	if a, b, ok := strings.Cut(s, ".."); ok {
		lo, err1 := strconv.Atoi(strings.TrimSpace(a))
		hi, err2 := strconv.Atoi(strings.TrimSpace(b))
		if err1 != nil || err2 != nil || lo < 1 || hi < lo {
			return nil, fmt.Errorf("invalid range %q", s)
		}
		var out []int
		for n := lo; n <= hi; n++ {
			out = append(out, n)
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid task count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

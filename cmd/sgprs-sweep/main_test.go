package main

import (
	"reflect"
	"testing"

	"sgprs/internal/workload"
)

// TestParseArrivalPeriod pins the -arrival/-arrival-period flag pair: the
// period threads into the diurnal cycle and the bursty window pair, zero
// keeps the historical defaults, and misuse (negative periods, periods on
// memoryless processes) is rejected rather than silently ignored.
func TestParseArrivalPeriod(t *testing.T) {
	cases := []struct {
		name    string
		arrival string
		period  float64
		want    workload.Arrival
		wantErr bool
	}{
		{"diurnal-default", "diurnal:40", 0, workload.Diurnal{PeriodSec: 5, MaxRate: 40}, false},
		{"diurnal-period", "diurnal:40", 12, workload.Diurnal{PeriodSec: 12, MaxRate: 40}, false},
		{"bursty-default", "bursty:60", 0, workload.Bursty{OnSec: 1, OffSec: 1, Rate: 60}, false},
		{"bursty-period", "bursty:60", 4, workload.Bursty{OnSec: 2, OffSec: 2, Rate: 60}, false},
		{"poisson-unaffected", "poisson:45", 0, workload.Poisson{Rate: 45}, false},
		{"poisson-period", "poisson:45", 3, nil, true},
		{"periodic-period", "periodic", 3, nil, true},
		{"negative-period", "diurnal", -1, nil, true},
		{"bad-kind", "sawtooth", 0, nil, true},
		{"bad-rate", "diurnal:fast", 0, nil, true},
	}
	for _, tc := range cases {
		got, err := parseArrival(tc.arrival, tc.period)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: parseArrival(%q, %v) = %+v, want error", tc.name, tc.arrival, tc.period, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: parseArrival(%q, %v): %v", tc.name, tc.arrival, tc.period, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: parseArrival(%q, %v) = %+v, want %+v", tc.name, tc.arrival, tc.period, got, tc.want)
		}
	}
}

// Command sgprs-speedup regenerates the paper's Figure 1: speedup gain as a
// function of the SM count for each operation class running in isolation,
// plus the composed whole-ResNet18 curve.
//
// Gains are measured by running kernels on the simulated device (via the
// offline profiler), not by sampling the analytic model, unless -model is
// given.
//
// Usage:
//
//	sgprs-speedup [-sms 1,2,4,...] [-csv] [-model]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"sgprs/internal/dnn"
	"sgprs/internal/gpu"
	"sgprs/internal/profile"
	"sgprs/internal/report"
	"sgprs/internal/speedup"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sgprs-speedup: ")
	smsFlag := flag.String("sms", "1,2,4,8,16,24,34,48,68", "comma-separated SM counts to sample")
	csvOut := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	analytic := flag.Bool("model", false, "sample the analytic model instead of measuring on the simulated device")
	workMS := flag.Float64("work", 50, "single-SM milliseconds of work per measured kernel")
	flag.Parse()

	smCounts, err := parseSMs(*smsFlag)
	if err != nil {
		log.Fatal(err)
	}

	model := speedup.DefaultModel()
	var fig *report.Figure1
	if *analytic {
		fig = report.Figure1Model(model, smCounts)
		g := dnn.ResNet18(dnn.DefaultCostModel())
		row := make([]float64, len(smCounts))
		for i, n := range smCounts {
			row[i] = g.Gain(model, float64(n))
		}
		fig.AddRow("resnet18", row)
	} else {
		fig, err = measure(model, smCounts, *workMS)
		if err != nil {
			log.Fatal(err)
		}
	}

	if *csvOut {
		err = fig.WriteCSV(os.Stdout)
	} else {
		err = fig.WriteText(os.Stdout)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func parseSMs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 || n > speedup.DeviceSMs {
			return nil, fmt.Errorf("invalid SM count %q (device has %d SMs)", part, speedup.DeviceSMs)
		}
		out = append(out, n)
	}
	return out, nil
}

func measure(model *speedup.Model, smCounts []int, workMS float64) (*report.Figure1, error) {
	prof := profile.New(model, gpu.DefaultConfig())
	fig := &report.Figure1{SMCounts: smCounts}
	for _, cl := range speedup.Classes() {
		row := make([]float64, len(smCounts))
		for i, n := range smCounts {
			g, err := prof.OperationGain(cl, workMS, n)
			if err != nil {
				return nil, err
			}
			row[i] = g
		}
		fig.AddRow(cl.String(), row)
	}
	g := dnn.ResNet18(dnn.DefaultCostModel())
	row := make([]float64, len(smCounts))
	for i, n := range smCounts {
		gain, err := prof.NetworkGain(g, n)
		if err != nil {
			return nil, err
		}
		row[i] = gain
	}
	fig.AddRow("resnet18", row)
	return fig, nil
}
